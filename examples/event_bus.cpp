// Event handling (one of the paper's three motivating uses): many event
// sources fan into one bounded non-blocking queue; a dispatcher drains it
// and routes events to handlers. Per-source FIFO order is a queue guarantee,
// so causally ordered events from one source are always handled in order.
//
// Build & run:   ./build/examples/event_bus
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "evq/core/llsc_array_queue.hpp"

namespace {

enum class EventType : std::uint8_t { kKey, kTimer, kIo };

struct Event {
  EventType type = EventType::kKey;
  std::uint32_t source = 0;
  std::uint64_t seq = 0;  // per-source sequence number
};

constexpr std::uint32_t kSources = 3;
constexpr std::uint64_t kEventsPerSource = 15000;

}  // namespace

int main() {
  // Algorithm 1 (LL/SC emulation): zero per-thread state, so sources can be
  // short-lived threads without any registration protocol.
  evq::LlscArrayQueue<Event> bus(128);
  std::vector<std::vector<Event>> storage(kSources);

  std::vector<std::thread> sources;
  for (std::uint32_t s = 0; s < kSources; ++s) {
    storage[s].resize(kEventsPerSource);
    sources.emplace_back([&, s] {
      auto h = bus.handle();
      for (std::uint64_t i = 0; i < kEventsPerSource; ++i) {
        Event& e = storage[s][i];
        e.type = static_cast<EventType>(i % 3);
        e.source = s;
        e.seq = i;
        while (!bus.try_push(h, &e)) {
          std::this_thread::yield();  // bus full: dispatcher is behind
        }
      }
    });
  }

  // The dispatcher: counts per type and checks per-source ordering.
  std::uint64_t handled[3] = {0, 0, 0};
  std::uint64_t next_seq[kSources] = {0};
  bool ordered = true;
  {
    auto h = bus.handle();
    std::uint64_t total = 0;
    while (total < kSources * kEventsPerSource) {
      Event* e = bus.try_pop(h);
      if (e == nullptr) {
        std::this_thread::yield();
        continue;
      }
      ++handled[static_cast<int>(e->type)];
      ordered = ordered && (e->seq == next_seq[e->source]);
      next_seq[e->source] = e->seq + 1;
      ++total;
    }
  }
  for (auto& t : sources) {
    t.join();
  }

  std::printf("dispatched %llu key, %llu timer, %llu io events; per-source order %s\n",
              static_cast<unsigned long long>(handled[0]),
              static_cast<unsigned long long>(handled[1]),
              static_cast<unsigned long long>(handled[2]), ordered ? "intact" : "BROKEN");
  return ordered ? 0 : 1;
}
