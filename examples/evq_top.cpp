// evq-top: a live terminal view of the evq::health layer — the third
// observability layer end to end in one screen.
//
// Spawns a deliberately unbalanced workload over three queue families (a
// flat CAS ring, an SCQ ring, and a flat-combining facade), runs a health
// Monitor over the global registry, and redraws a top(1)-style panel each
// poll: per-queue derived rates, latency-reservoir percentiles, per-thread
// progress, and whatever findings the Diagnoser currently holds active.
//
// Build & run:   ./build/examples/evq-top [polls] [interval_ms] [--once]
//                [--json]
//
//   --once   single poll, plain dump, no screen clearing (CI smoke mode)
//   --json   print the versioned health_json document after the last poll
//
// Nothing here is example-only instrumentation: the same Monitor pumped by
// the torture watchdog and `evq-bench --health` drives the display.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string_view>
#include <thread>
#include <vector>

#include "evq/core/cas_array_queue.hpp"
#include "evq/core/combining_queue.hpp"
#include "evq/core/scq_queue.hpp"
#include "evq/health/health.hpp"
#include "evq/health/monitor.hpp"
#include "evq/telemetry/flight_recorder.hpp"

namespace {

struct Job {
  int id;
};

template <typename Q>
void churn(Q& queue, std::atomic<bool>& stop, unsigned push_bias_pct) {
  auto h = queue.handle();
  Job jobs[32];
  unsigned next = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    ++next;
    if (next % 100 < push_bias_pct) {
      Job* j = &jobs[next % 32];
      j->id = static_cast<int>(next);
      if (!queue.try_push(h, j)) {
        (void)queue.try_pop(h);
      }
    } else {
      (void)queue.try_pop(h);
    }
  }
  while (queue.try_pop(h) != nullptr) {
  }
}

void draw(const evq::health::HealthSnapshot& snap, bool clear) {
  if (clear) {
    std::printf("\x1b[2J\x1b[H");  // clear + home, like top(1)
  }
  std::printf("evq-top — poll %llu\n", static_cast<unsigned long long>(snap.poll));
  std::printf("%-18s %10s %8s %8s %8s %8s %9s %9s\n", "QUEUE", "ops", "casfail", "skip/op",
              "faawaste", "combeng", "p50push", "p99push");
  for (const evq::health::QueueRates& q : snap.queues) {
    if (q.ops == 0) {
      continue;
    }
    std::printf("%-18s %10llu %8.3f %8.3f %8.3f %8.3f %9.0f %9.0f\n", q.queue.c_str(),
                static_cast<unsigned long long>(q.ops), q.cas_fail_ratio, q.slot_skip_per_op,
                q.faa_waste, q.comb_engagement, q.push_p50_ns, q.push_p99_ns);
  }
  std::printf("\n%-8s %6s %12s %8s  %s\n", "THREAD", "live", "op_seq", "stalled", "last op");
  for (const evq::health::ThreadProgress& t : snap.threads) {
    std::printf("%-8u %6s %12llu %8u  %s %s[%llu]\n", t.thread_ord, t.live ? "yes" : "no",
                static_cast<unsigned long long>(t.op_seq), t.stalled_polls,
                t.last_op.c_str(), t.last_queue.c_str(),
                static_cast<unsigned long long>(t.last_index));
  }
  std::printf("\nFINDINGS (%zu active)\n", snap.findings.size());
  for (const evq::health::Finding& f : snap.findings) {
    std::printf("  [%s] %s: %s (since poll %llu)\n", evq::health::finding_type_name(f.type),
                f.subject.c_str(), f.detail.c_str(),
                static_cast<unsigned long long>(f.since_poll));
  }
  if (snap.findings.empty()) {
    std::printf("  (none — system healthy)\n");
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  bool json = false;
  std::vector<const char*> positional;
  for (int a = 1; a < argc; ++a) {
    const std::string_view arg = argv[a];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--json") {
      json = true;
    } else {
      positional.push_back(argv[a]);
    }
  }
  const int polls = once ? 1 : (positional.size() > 0 ? std::atoi(positional[0]) : 10);
  const int interval_ms = positional.size() > 1 ? std::atoi(positional[1]) : 500;

  // Tracing feeds the per-thread progress panel (and the stall detector).
  evq::telemetry::set_tracing(true);

  evq::CasArrayQueue<Job> cas(256, "top-cas");
  evq::ScqQueue<Job> scq(256, "top-scq");
  evq::CombiningQueue<evq::CasArrayQueue<Job>> comb(256, "top-comb");

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.emplace_back([&] { churn(cas, stop, 60); });
  workers.emplace_back([&] { churn(cas, stop, 40); });
  workers.emplace_back([&] { churn(scq, stop, 70); });  // push-heavy: skips + waste
  workers.emplace_back([&] { churn(scq, stop, 30); });
  workers.emplace_back([&] { churn(comb, stop, 50); });
  workers.emplace_back([&] { churn(comb, stop, 50); });

  evq::health::Monitor monitor;  // latency reservoir on at 1-in-64
  evq::health::HealthSnapshot snap;
  for (int p = 0; p < polls; ++p) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    snap = monitor.poll();
    draw(snap, /*clear=*/!once);
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) {
    t.join();
  }

  if (json) {
    evq::health::health_json(std::cout, snap);
  }
  return 0;
}
