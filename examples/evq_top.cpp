// evq-top: a live terminal view of the evq::health layer — the third and
// fourth observability layers end to end in one screen.
//
// Spawns a deliberately unbalanced workload over three queue families (a
// flat CAS ring, an SCQ ring, and a flat-combining facade), runs a health
// Monitor over the global registry, and redraws a top(1)-style panel each
// poll: per-queue derived rates, latency-reservoir percentiles, hardware
// cycles/op and IPC (evq::perf, when the host lets us count), per-thread
// progress, and whatever findings the Diagnoser currently holds active.
// On perf-denied hosts the panel says so explicitly instead of silently
// dropping the columns.
//
// Build & run:   ./build/examples/evq-top [polls] [interval_ms] [--once]
//                [--json]
//
//   --once   single poll, plain dump, no screen clearing (CI smoke mode)
//   --json   print the versioned health_json document after the last poll
//
// Nothing here is example-only instrumentation: the same Monitor pumped by
// the torture watchdog and `evq-bench --health` drives the display.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string_view>
#include <thread>
#include <vector>

#include "evq/core/cas_array_queue.hpp"
#include "evq/core/combining_queue.hpp"
#include "evq/core/scq_queue.hpp"
#include "evq/health/health.hpp"
#include "evq/health/monitor.hpp"
#include "evq/perf/backend.hpp"
#include "evq/perf/perf.hpp"
#include "evq/telemetry/flight_recorder.hpp"

namespace {

struct Job {
  int id;
};

template <typename Q>
void churn(Q& queue, const char* name, std::atomic<bool>& stop, unsigned push_bias_pct) {
  // Layer 4: this thread's hardware counters, attributed to `name` in the
  // global table. Flushed periodically so the Monitor's per-poll delta sees
  // fresh numbers, not one lump at thread exit.
  evq::perf::QueuePerfScope pscope(name);
  auto h = queue.handle();
  Job jobs[32];
  unsigned next = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    ++next;
    if (next % 100 < push_bias_pct) {
      Job* j = &jobs[next % 32];
      j->id = static_cast<int>(next);
      if (!queue.try_push(h, j)) {
        (void)queue.try_pop(h);
      }
    } else {
      (void)queue.try_pop(h);
    }
    pscope.add_ops(1);
    if (next % 8192 == 0) {
      pscope.flush();
    }
  }
  while (queue.try_pop(h) != nullptr) {
  }
}

void draw(const evq::health::HealthSnapshot& snap, bool clear) {
  if (clear) {
    std::printf("\x1b[2J\x1b[H");  // clear + home, like top(1)
  }
  std::printf("evq-top — poll %llu\n", static_cast<unsigned long long>(snap.poll));
  const evq::perf::Backend& backend = evq::perf::default_backend();
  if (!backend.available()) {
    std::printf("perf: unavailable (%s)\n", backend.unavailable_reason().c_str());
  }
  std::printf("%-18s %10s %8s %8s %8s %8s %9s %9s %9s %6s\n", "QUEUE", "ops", "casfail",
              "skip/op", "faawaste", "combeng", "p50push", "p99push", "cyc/op", "ipc");
  for (const evq::health::QueueRates& q : snap.queues) {
    if (q.ops == 0 && !q.perf_live) {
      continue;
    }
    std::printf("%-18s %10llu %8.3f %8.3f %8.3f %8.3f %9.0f %9.0f", q.queue.c_str(),
                static_cast<unsigned long long>(q.ops), q.cas_fail_ratio, q.slot_skip_per_op,
                q.faa_waste, q.comb_engagement, q.push_p50_ns, q.push_p99_ns);
    if (q.perf_live && q.cycles_per_op >= 0.0) {
      std::printf(" %9.0f", q.cycles_per_op);
    } else {
      std::printf(" %9s", "-");
    }
    if (q.perf_live && q.ipc >= 0.0) {
      std::printf(" %6.2f\n", q.ipc);
    } else {
      std::printf(" %6s\n", "-");
    }
  }
  std::printf("\n%-8s %6s %12s %8s  %s\n", "THREAD", "live", "op_seq", "stalled", "last op");
  for (const evq::health::ThreadProgress& t : snap.threads) {
    std::printf("%-8u %6s %12llu %8u  %s %s[%llu]\n", t.thread_ord, t.live ? "yes" : "no",
                static_cast<unsigned long long>(t.op_seq), t.stalled_polls,
                t.last_op.c_str(), t.last_queue.c_str(),
                static_cast<unsigned long long>(t.last_index));
  }
  std::printf("\nFINDINGS (%zu active)\n", snap.findings.size());
  for (const evq::health::Finding& f : snap.findings) {
    std::printf("  [%s] %s: %s (since poll %llu)\n", evq::health::finding_type_name(f.type),
                f.subject.c_str(), f.detail.c_str(),
                static_cast<unsigned long long>(f.since_poll));
  }
  if (snap.findings.empty()) {
    std::printf("  (none — system healthy)\n");
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  bool json = false;
  std::vector<const char*> positional;
  for (int a = 1; a < argc; ++a) {
    const std::string_view arg = argv[a];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--json") {
      json = true;
    } else {
      positional.push_back(argv[a]);
    }
  }
  const int polls = once ? 1 : (positional.size() > 0 ? std::atoi(positional[0]) : 10);
  const int interval_ms = positional.size() > 1 ? std::atoi(positional[1]) : 500;

  // Tracing feeds the per-thread progress panel (and the stall detector).
  evq::telemetry::set_tracing(true);

  evq::CasArrayQueue<Job> cas(256, "top-cas");
  evq::ScqQueue<Job> scq(256, "top-scq");
  evq::CombiningQueue<evq::CasArrayQueue<Job>> comb(256, "top-comb");

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.emplace_back([&] { churn(cas, "top-cas", stop, 60); });
  workers.emplace_back([&] { churn(cas, "top-cas", stop, 40); });
  workers.emplace_back([&] { churn(scq, "top-scq", stop, 70); });  // push-heavy: skips + waste
  workers.emplace_back([&] { churn(scq, "top-scq", stop, 30); });
  workers.emplace_back([&] { churn(comb, "top-comb", stop, 50); });
  workers.emplace_back([&] { churn(comb, "top-comb", stop, 50); });

  evq::health::MonitorOptions mopts;  // latency reservoir on at 1-in-64
  mopts.perf = &evq::perf::AttributionTable::global();  // layer 4 joined in
  evq::health::Monitor monitor(mopts);
  evq::health::HealthSnapshot snap;
  for (int p = 0; p < polls; ++p) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    snap = monitor.poll();
    draw(snap, /*clear=*/!once);
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) {
    t.join();
  }

  if (json) {
    evq::health::health_json(std::cout, snap);
  }
  return 0;
}
