// Message buffering (one of the paper's three motivating uses): a bounded
// two-stage processing pipeline connected by non-blocking FIFO queues.
//
//   producers -> [parse queue] -> parsers -> [result queue] -> aggregator
//
// The bounded arrays provide natural backpressure: a full stage-1 queue
// slows producers without any lock, and a stalled parser can never wedge
// the others (lock-freedom) — the property the paper's introduction argues
// mutex-based buffers lack under preemption.
//
// Build & run:   ./build/examples/mpmc_pipeline
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "evq/core/cas_array_queue.hpp"

namespace {

struct Record {
  std::uint64_t raw = 0;     // "wire" payload
  std::uint64_t parsed = 0;  // filled in by stage 1
};

constexpr int kProducers = 2;
constexpr int kParsers = 2;
constexpr std::uint64_t kRecordsPerProducer = 20000;
constexpr std::uint64_t kTotal = kProducers * kRecordsPerProducer;

}  // namespace

int main() {
  evq::CasArrayQueue<Record> parse_queue(64);
  evq::CasArrayQueue<Record> result_queue(64);
  std::vector<Record> records(kTotal);

  std::atomic<std::uint64_t> parsed_count{0};
  std::vector<std::thread> threads;

  // Stage 0: producers synthesize raw records.
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      auto h = parse_queue.handle();
      for (std::uint64_t i = 0; i < kRecordsPerProducer; ++i) {
        Record& r = records[p * kRecordsPerProducer + i];
        r.raw = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!parse_queue.try_push(h, &r)) {
          std::this_thread::yield();  // backpressure from stage 1
        }
      }
    });
  }

  // Stage 1: parsers transform records and forward them.
  for (int w = 0; w < kParsers; ++w) {
    threads.emplace_back([&] {
      auto in = parse_queue.handle();
      auto out = result_queue.handle();
      for (;;) {
        Record* r = parse_queue.try_pop(in);
        if (r == nullptr) {
          if (parsed_count.load() >= kTotal) {
            return;
          }
          std::this_thread::yield();
          continue;
        }
        r->parsed = (r->raw & 0xFFFFFFFFu) * 2 + 1;  // the "parse"
        while (!result_queue.try_push(out, r)) {
          std::this_thread::yield();
        }
        parsed_count.fetch_add(1);
      }
    });
  }

  // Stage 2: the aggregator folds results as they arrive.
  std::uint64_t seen = 0;
  std::uint64_t checksum = 0;
  {
    auto h = result_queue.handle();
    while (seen < kTotal) {
      if (Record* r = result_queue.try_pop(h)) {
        checksum += r->parsed;
        ++seen;
      } else {
        std::this_thread::yield();
      }
    }
  }
  for (auto& t : threads) {
    t.join();
  }

  // Every record passed both stages exactly once:
  // sum over p,i of (2i + 1) = kProducers * kRecordsPerProducer^2
  const std::uint64_t expected = static_cast<std::uint64_t>(kProducers) * kRecordsPerProducer *
                                 kRecordsPerProducer;
  std::printf("pipeline processed %llu records, checksum %llu (expected %llu) -> %s\n",
              static_cast<unsigned long long>(seen), static_cast<unsigned long long>(checksum),
              static_cast<unsigned long long>(expected),
              checksum == expected ? "OK" : "MISMATCH");
  return checksum == expected ? 0 : 1;
}
