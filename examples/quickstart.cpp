// Quickstart: the two queue algorithms of the paper, both as raw pointer
// queues (the paper's native interface) and through the value adapter.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>
#include <string>
#include <thread>

#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/value_queue.hpp"

namespace {

struct Message {
  int id;
};

void pointer_queue_tour() {
  std::printf("-- Algorithm 2 (CAS-only), pointer interface --\n");
  // Capacity rounds up to a power of two; slots hold Message* (never null).
  evq::CasArrayQueue<Message> queue(8);

  // Each thread needs a Handle: it carries the thread's registered LLSCvar
  // (the paper's Register/ReRegister/Deregister protocol). RAII: the
  // registration is released when the handle dies.
  auto handle = queue.handle();

  Message hello{1};
  Message world{2};
  if (queue.try_push(handle, &hello) && queue.try_push(handle, &world)) {
    std::printf("pushed #%d and #%d\n", hello.id, world.id);
  }
  while (Message* m = queue.try_pop(handle)) {
    std::printf("popped #%d\n", m->id);
  }
  // try_pop returns nullptr on empty; try_push returns false on full:
  std::printf("empty pop -> %s\n", queue.try_pop(handle) == nullptr ? "nullptr" : "??");
}

void llsc_queue_tour() {
  std::printf("-- Algorithm 1 (LL/SC), no per-thread state --\n");
  // The LL/SC queue's handle is stateless (reservations live in stack-local
  // links) — that is what makes it population-oblivious with space
  // depending only on the queue length.
  evq::LlscArrayQueue<Message> queue(8);
  auto handle = queue.handle();
  Message m{42};
  queue.try_push(handle, &m);
  std::printf("popped #%d\n", queue.try_pop(handle)->id);
}

void value_queue_tour() {
  std::printf("-- Value adapter: push/pop by value --\n");
  evq::ValueQueue<std::string, evq::CasArrayQueue> queue(16);
  auto handle = queue.handle();
  queue.try_push(handle, std::string("non-blocking"));
  queue.try_push(handle, std::string("fifo"));
  while (auto s = queue.try_pop(handle)) {
    std::printf("popped '%s'\n", s->c_str());
  }
}

void concurrency_teaser() {
  std::printf("-- Two threads, one queue --\n");
  evq::CasArrayQueue<Message> queue(4);
  static Message msgs[100];
  std::thread producer([&] {
    auto h = queue.handle();
    for (int i = 0; i < 100; ++i) {
      msgs[i].id = i;
      while (!queue.try_push(h, &msgs[i])) {
        std::this_thread::yield();  // full: a consumer will make room
      }
    }
  });
  int received = 0;
  int last = -1;
  bool ordered = true;
  {
    auto h = queue.handle();
    while (received < 100) {
      if (Message* m = queue.try_pop(h)) {
        ordered = ordered && (m->id > last);
        last = m->id;
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  }
  producer.join();
  std::printf("received %d messages, order %s\n", received, ordered ? "intact" : "BROKEN");
}

}  // namespace

int main() {
  pointer_queue_tour();
  llsc_queue_tour();
  value_queue_tour();
  concurrency_teaser();
  return 0;
}
