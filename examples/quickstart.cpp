// Quickstart: the two queue algorithms of the paper, both as raw pointer
// queues (the paper's native interface) and through the value adapter.
//
// Build & run:   ./build/examples/quickstart
#include <cstddef>
#include <cstdio>
#include <string>
#include <thread>

#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/sharded_queue.hpp"
#include "evq/core/value_queue.hpp"

namespace {

struct Message {
  int id;
};

void pointer_queue_tour() {
  std::printf("-- Algorithm 2 (CAS-only), pointer interface --\n");
  // Capacity rounds up to a power of two; slots hold Message* (never null).
  evq::CasArrayQueue<Message> queue(8);

  // Each thread needs a Handle: it carries the thread's registered LLSCvar
  // (the paper's Register/ReRegister/Deregister protocol). RAII: the
  // registration is released when the handle dies.
  auto handle = queue.handle();

  Message hello{1};
  Message world{2};
  if (queue.try_push(handle, &hello) && queue.try_push(handle, &world)) {
    std::printf("pushed #%d and #%d\n", hello.id, world.id);
  }
  while (Message* m = queue.try_pop(handle)) {
    std::printf("popped #%d\n", m->id);
  }
  // try_pop returns nullptr on empty; try_push returns false on full:
  std::printf("empty pop -> %s\n", queue.try_pop(handle) == nullptr ? "nullptr" : "??");
}

void llsc_queue_tour() {
  std::printf("-- Algorithm 1 (LL/SC), no per-thread state --\n");
  // The LL/SC queue's handle is stateless (reservations live in stack-local
  // links) — that is what makes it population-oblivious with space
  // depending only on the queue length.
  evq::LlscArrayQueue<Message> queue(8);
  auto handle = queue.handle();
  Message m{42};
  queue.try_push(handle, &m);
  std::printf("popped #%d\n", queue.try_pop(handle)->id);
}

void value_queue_tour() {
  std::printf("-- Value adapter: push/pop by value --\n");
  evq::ValueQueue<std::string, evq::CasArrayQueue> queue(16);
  auto handle = queue.handle();
  queue.try_push(handle, std::string("non-blocking"));
  queue.try_push(handle, std::string("fifo"));
  while (auto s = queue.try_pop(handle)) {
    std::printf("popped '%s'\n", s->c_str());
  }
}

void concurrency_teaser() {
  std::printf("-- Two threads, one queue --\n");
  evq::CasArrayQueue<Message> queue(4);
  static Message msgs[100];
  std::thread producer([&] {
    auto h = queue.handle();
    for (int i = 0; i < 100; ++i) {
      msgs[i].id = i;
      while (!queue.try_push(h, &msgs[i])) {
        std::this_thread::yield();  // full: a consumer will make room
      }
    }
  });
  int received = 0;
  int last = -1;
  bool ordered = true;
  {
    auto h = queue.handle();
    while (received < 100) {
      if (Message* m = queue.try_pop(h)) {
        ordered = ordered && (m->id > last);
        last = m->id;
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  }
  producer.join();
  std::printf("received %d messages, order %s\n", received, ordered ? "intact" : "BROKEN");
}

void batch_and_sharded_tour() {
  std::printf("-- Batch ops and the sharded scaling layer --\n");
  // Every array queue exposes batch entry points; consecutive elements seed
  // each other's index read, saving one shared-counter load per amortized
  // operation. A short return means full (push) / empty (pop) at that point.
  evq::LlscArrayQueue<Message> flat(8);
  auto fh = flat.handle();
  static Message batch[6] = {{10}, {11}, {12}, {13}, {14}, {15}};
  Message* in[6];
  for (int i = 0; i < 6; ++i) {
    in[i] = &batch[i];
  }
  std::size_t pushed = flat.try_push_n(fh, in, 6);
  Message* out[6];
  std::size_t popped = flat.try_pop_n(fh, out, 6);
  std::printf("batch pushed %zu, popped %zu (first #%d, last #%d)\n", pushed, popped,
              out[0]->id, out[popped - 1]->id);

  // ShardedQueue stripes any array queue across independent rings: handles
  // get an affinity shard, overflow spills and empty steals across shards.
  // Per-handle order is kept; cross-producer FIFO is deliberately traded.
  evq::ShardedCasQueue<Message> sharded(16, 4);
  auto sh = sharded.handle();
  std::size_t landed = sharded.try_push_n(sh, in, 6);
  std::size_t drained = sharded.try_pop_n(sh, out, 6);
  std::printf("sharded (%zu shards): pushed %zu, popped %zu\n", sharded.shard_count(), landed,
              drained);
}

}  // namespace

int main() {
  pointer_queue_tour();
  llsc_queue_tour();
  value_queue_tour();
  batch_and_sharded_tour();
  concurrency_teaser();
  return 0;
}
