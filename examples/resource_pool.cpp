// Resource management (one of the paper's three motivating uses): a bounded
// non-blocking FIFO queue as a pool of pre-allocated resources (think DMA
// buffers or connection slots). Threads check a resource out, use it, and
// return it; FIFO recycling gives fair rotation through the pool, and
// lock-freedom means a preempted thread never blocks others' checkouts.
//
// Build & run:   ./build/examples/resource_pool
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "evq/core/cas_array_queue.hpp"
#include "evq/core/queue_ops.hpp"

namespace {

struct Buffer {
  std::uint32_t id = 0;
  std::uint64_t uses = 0;          // how often this buffer was checked out
  std::atomic<bool> in_use{false}; // corruption detector
  char data[256] = {};
};

constexpr std::uint32_t kBuffers = 8;
constexpr int kWorkers = 4;
constexpr std::uint64_t kJobsPerWorker = 25000;

}  // namespace

int main() {
  evq::CasArrayQueue<Buffer> pool(kBuffers);
  std::vector<Buffer> buffers(kBuffers);
  {
    auto h = pool.handle();
    for (std::uint32_t i = 0; i < kBuffers; ++i) {
      buffers[i].id = i;
      if (!pool.try_push(h, &buffers[i])) {
        std::fprintf(stderr, "pool sizing bug\n");
        return 1;
      }
    }
  }

  std::atomic<bool> double_checkout{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      auto h = pool.handle();
      for (std::uint64_t j = 0; j < kJobsPerWorker; ++j) {
        // pop_wait/push_wait wrap the try_* API in a spin-then-yield loop —
        // the idiomatic way to wait on a non-blocking queue.
        Buffer* buf = evq::pop_wait(pool, h);
        // Exclusive use: the queue must never hand one buffer to two
        // workers at once.
        if (buf->in_use.exchange(true)) {
          double_checkout.store(true);
        }
        buf->data[j % sizeof(buf->data)] = static_cast<char>(j);  // "work"
        ++buf->uses;
        buf->in_use.store(false);
        evq::push_wait(pool, h, buf);  // cannot block long: pool-sized queue
      }
    });
  }
  for (auto& t : workers) {
    t.join();
  }

  std::uint64_t total_uses = 0;
  std::uint64_t min_uses = UINT64_MAX;
  std::uint64_t max_uses = 0;
  for (const Buffer& b : buffers) {
    total_uses += b.uses;
    min_uses = b.uses < min_uses ? b.uses : min_uses;
    max_uses = b.uses > max_uses ? b.uses : max_uses;
  }
  const std::uint64_t expected = static_cast<std::uint64_t>(kWorkers) * kJobsPerWorker;
  std::printf("%llu checkouts across %u buffers (min %llu / max %llu per buffer)\n",
              static_cast<unsigned long long>(total_uses), kBuffers,
              static_cast<unsigned long long>(min_uses),
              static_cast<unsigned long long>(max_uses));
  std::printf("conservation: %s, exclusivity: %s\n",
              total_uses == expected ? "OK" : "MISMATCH",
              double_checkout.load() ? "VIOLATED" : "OK");
  return (total_uses == expected && !double_checkout.load()) ? 0 : 1;
}
