// evq-stats: the telemetry subsystem end to end in ~100 lines.
//
// Runs a small mixed workload over both paper algorithms (one flat LL/SC
// ring, one sharded CAS facade), scrapes the global registry on an interval
// like a Prometheus agent would, and finishes with the interval delta and a
// flight-recorder dump of each worker's last operation.
//
// Build & run:   ./build/examples/evq-stats [scrapes] [interval_ms]
//                [--format=text|trace]
//
// --format=trace swaps the final flight-recorder dump for Chrome Trace
// Format JSON on stdout (pipe to a file and open in https://ui.perfetto.dev
// — the same format EVQ_FLIGHT_DUMP_FORMAT=trace selects for torture wedge
// artifacts).
//
// Every counter here is the always-on production instrumentation — nothing
// is enabled for the example beyond telemetry::set_tracing (the flight
// recorder is the one opt-in piece; counters are on unconditionally unless
// the tree was built with -DEVQ_TELEMETRY=OFF).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string_view>
#include <thread>
#include <vector>

#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/sharded_queue.hpp"
#include "evq/telemetry/flight_recorder.hpp"
#include "evq/telemetry/prometheus.hpp"

namespace {

struct Job {
  int id;
};

template <typename Q>
void churn(Q& queue, std::atomic<bool>& stop) {
  auto h = queue.handle();
  Job jobs[16];
  int next = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    Job* j = &jobs[next++ % 16];
    j->id = next;
    if (!queue.try_push(h, j)) {
      (void)queue.try_pop(h);  // full: drain one and move on
    }
    if (next % 3 == 0) {
      (void)queue.try_pop(h);
    }
  }
  while (queue.try_pop(h) != nullptr) {
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool chrome_format = false;
  std::vector<const char*> positional;
  for (int a = 1; a < argc; ++a) {
    const std::string_view arg = argv[a];
    if (arg == "--format=trace") {
      chrome_format = true;
    } else if (arg == "--format=text") {
      chrome_format = false;
    } else {
      positional.push_back(argv[a]);
    }
  }
  const int scrapes = positional.size() > 0 ? std::atoi(positional[0]) : 3;
  const int interval_ms = positional.size() > 1 ? std::atoi(positional[1]) : 200;
  // In trace mode stdout carries ONLY the JSON document (so it can be piped
  // straight into Perfetto); the scrape/delta text moves to stderr.
  std::FILE* text = chrome_format ? stderr : stdout;
  std::ostream& text_os = chrome_format ? std::cerr : std::cout;

  // Arm the flight recorder so the final dump shows per-thread last ops.
  evq::telemetry::set_tracing(true);

  evq::LlscArrayQueue<Job> flat(64, "stats-flat-llsc");
  evq::ShardedCasQueue<Job> sharded(64, 4, "stats-sharded-cas");

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.emplace_back([&] { churn(flat, stop); });
  workers.emplace_back([&] { churn(flat, stop); });
  workers.emplace_back([&] { churn(sharded, stop); });
  workers.emplace_back([&] { churn(sharded, stop); });

  const evq::telemetry::RegistrySnapshot start = evq::telemetry::snapshot_registry();
  for (int s = 0; s < scrapes; ++s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    std::fprintf(text, "=== scrape %d/%d ===\n", s + 1, scrapes);
    evq::telemetry::render_prometheus(text_os);
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) {
    t.join();
  }

  // What a delta-based collector (evq-bench --telemetry) reports: counters
  // over the observation window only, not process-lifetime totals.
  std::fprintf(text, "=== delta over the run ===\n");
  const evq::telemetry::RegistrySnapshot delta =
      evq::telemetry::snapshot_delta(start, evq::telemetry::snapshot_registry());
  for (const evq::telemetry::QueueCounters& q : delta.queues) {
    if (!q.counters.any()) {
      continue;
    }
    std::fprintf(text, "%s:", q.queue.c_str());
    for (std::size_t c = 0; c < evq::telemetry::kCounterCount; ++c) {
      const auto counter = static_cast<evq::telemetry::Counter>(c);
      if (q.counters[counter] != 0) {
        std::fprintf(text, " %s=%llu", evq::telemetry::counter_name(counter),
                     static_cast<unsigned long long>(q.counters[counter]));
      }
    }
    std::fprintf(text, "\n");
  }

  if (chrome_format) {
    evq::telemetry::dump_flight_recorder_chrome(std::cout);
  } else {
    std::printf("=== flight recorder ===\n");
    evq::telemetry::dump_flight_recorder(std::cout, /*last_n=*/2);
  }
  return 0;
}
