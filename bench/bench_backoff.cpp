// Contention-management ablation: NoBackoff (paper-faithful busy retry) vs
// ExpBackoff (common/backoff.hpp threaded through every ring-engine retry
// loop) on both paper algorithms, at and beyond hardware oversubscription.
//
// The paper's Fig. 3/Fig. 5 loops retry immediately; Sec. 6 measures under
// preemption (more threads than processors) where immediate retry burns the
// preempted holder's quantum. Exponential backoff is the classic remedy —
// this ablation quantifies it on this host. Thread counts default to 1x and
// 2x the hardware concurrency (the oversubscription regime), plus a
// single-thread row as the uncontended floor.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "evq/harness/runner.hpp"

int main(int argc, char** argv) {
  using namespace evq::harness;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> sweep = {1, hw, 2 * hw};
  if (hw == 1) {
    sweep = {1, 2, 4};  // single-core host: 2x and 4x oversubscription
  }
  const CliOptions opts = parse_cli(argc, argv, sweep, 5000, 3);
  const std::vector<std::string> algos = {"fifo-llsc", "fifo-llsc-backoff", "fifo-simcas",
                                          "fifo-simcas-backoff"};
  const FigureResult fig = run_figure(algos, opts);
  print_absolute(fig, opts, "Backoff ablation: NoBackoff vs ExpBackoff under oversubscription");

  if (!opts.csv) {
    auto series_of = [&](const std::string& name) -> const SeriesResult* {
      for (const SeriesResult& s : fig.series) {
        if (s.name == name) {
          return &s;
        }
      }
      return nullptr;
    };
    std::printf("\nBackoff speedup (NoBackoff mean time / ExpBackoff mean time):\n");
    std::printf("%8s %14s %14s\n", "threads", "llsc", "simcas");
    for (std::size_t i = 0; i < fig.thread_counts.size(); ++i) {
      std::printf("%8u %13.2fx %13.2fx\n", fig.thread_counts[i],
                  series_of("fifo-llsc")->by_threads[i].mean /
                      series_of("fifo-llsc-backoff")->by_threads[i].mean,
                  series_of("fifo-simcas")->by_threads[i].mean /
                      series_of("fifo-simcas-backoff")->by_threads[i].mean);
    }
    std::printf("(>1 means backoff helped; expect ~1.0 uncontended, gains only when "
                "threads > cores)\n");
  }
  return 0;
}
