// Fig. 6a — actual running time vs number of threads on the LL/SC-capable
// machine (the paper's PowerPC G4). Algorithms, in the paper's legend order:
// MS-Doherty et al., FIFO Array Simulated CAS, MS-Hazard Pointers Not
// Sorted, MS-Hazard Pointers Sorted, FIFO Array LL/SC.
//
// Expected shape (paper): FIFO Array LL/SC fastest (~27% faster than FIFO
// Array Simulated CAS); MS-HP best at moderate thread counts, overtaken by
// the array queues as threads grow; MS-Doherty slowest everywhere.
#include <cstdio>

#include "evq/harness/runner.hpp"

int main(int argc, char** argv) {
  using namespace evq::harness;
  const CliOptions opts = parse_cli(argc, argv, {1, 2, 4, 8, 16, 32}, 5000, 3);
  const std::vector<std::string> algos = {"ms-doherty", "fifo-simcas", "ms-hp", "ms-hp-sorted",
                                          "fifo-llsc"};
  const FigureResult fig = run_figure(algos, opts);
  print_absolute(fig, opts, "Fig. 6a: actual running time, LL/SC machine analog");

  // In-text claim T3: "Our LL/SC-based implementation is the fastest and it
  // is approximately 27% faster than our CAS-based implementation."
  if (!opts.csv) {
    double llsc_sum = 0.0;
    double simcas_sum = 0.0;
    for (std::size_t i = 0; i < fig.thread_counts.size(); ++i) {
      for (const SeriesResult& s : fig.series) {
        if (s.name == "fifo-llsc") {
          llsc_sum += s.by_threads[i].mean;
        }
        if (s.name == "fifo-simcas") {
          simcas_sum += s.by_threads[i].mean;
        }
      }
    }
    if (llsc_sum > 0.0) {
      std::printf("\nLL/SC vs Simulated-CAS speedup (mean over sweep): %.1f%% "
                  "(paper: ~27%%)\n",
                  (simcas_sum / llsc_sum - 1.0) * 100.0);
    }
  }
  return 0;
}
