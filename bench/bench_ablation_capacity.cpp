// Ablation A3 (DESIGN.md §5): array capacity vs throughput for the two
// contributed queues.
//
// Capacity is the array queues' only tuning knob: a small array maximizes
// index wraparound and full/empty stalls (the regime where Sec. 3's ABA
// analysis matters and where Tsigas–Zhang-style approaches would need an
// "exceedingly oversized array"); a large array spreads contention across
// slots. Burst is fixed at 1 so even the smallest capacity stays
// deadlock-free at every thread count.
#include <cstdio>
#include <string>
#include <vector>

#include "evq/harness/runner.hpp"

int main(int argc, char** argv) {
  using namespace evq::harness;
  CliOptions opts = parse_cli(argc, argv, {4}, 20000, 2);
  opts.workload.burst = 1;

  const std::vector<std::size_t> capacities = {16, 64, 256, 1024, 4096};
  const std::vector<std::string> algos = {"fifo-llsc", "fifo-simcas", "shann", "tsigas-zhang"};

  if (opts.csv) {
    std::printf("capacity");
    for (const auto& a : algos) {
      std::printf(",%s", a.c_str());
    }
    std::printf("\n");
  } else {
    std::printf("== Ablation A3: capacity sweep (threads=%u, burst=1) ==\n",
                opts.thread_counts[0]);
    std::printf("%-10s", "capacity");
    for (const auto& a : algos) {
      std::printf("  %-18s", a.c_str());
    }
    std::printf("\n");
  }
  for (std::size_t cap : capacities) {
    std::printf(opts.csv ? "%zu" : "%-10zu", cap);
    for (const std::string& name : algos) {
      const QueueSpec& spec = find_queue(name);
      WorkloadParams p = opts.workload;
      p.threads = opts.thread_counts[0];
      p.capacity = cap;
      std::fprintf(stderr, "# %-12s capacity=%zu ...\n", spec.name.c_str(), cap);
      const Summary s = summarize(run_workload(spec, p));
      std::printf(opts.csv ? ",%.6f" : "  %10.4f s       ", s.mean);
    }
    std::printf("\n");
  }
  return 0;
}
