// In-text experiment T2b: per-operation atomic-instruction profile of every
// algorithm, measured from the running implementations.
//
// The paper's cost accounting, checked here row by row:
//  * MS queue: "2 successful CASs to enqueue and a single successful CAS to
//    dequeue ... the algorithm with the least number of synchronization
//    instructions" (its cost lives in reclamation instead).
//  * FIFO Array Simulated CAS: "three 32-bit CAS and two FetchAndAdd" per
//    queueing operation.
//  * Shann et al.: "a 32- and a 64-bit CAS operation to enqueue or dequeue".
//  * MS-Doherty et al.: "7 successful CAS instructions per queueing
//    operation" — the reason it is the slowest curve in Fig. 6.
//
// Measured uncontended (single thread, the regime the paper's counts refer
// to); a second table under 2-thread contention shows how attempts grow
// while successes stay put.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "evq/common/op_stats.hpp"
#include "evq/common/spin_barrier.hpp"
#include "evq/harness/queue_registry.hpp"

namespace {

using namespace evq;
using namespace evq::harness;

struct Profile {
  stats::OpCounters push;
  stats::OpCounters pop;
};

/// Measures per-op counter deltas over `ops` uncontended pushes, then `ops`
/// pops. `ops` must be below the queue capacity so no push reports full
/// (a rejected push performs no atomic RMW and would dilute the averages).
Profile profile_uncontended(const QueueSpec& spec, std::uint64_t ops) {
  auto queue = spec.make(2048);
  auto handle = queue->handle();
  std::vector<Payload> payloads(ops);
  // Warm up: one pair so lazily-created structures (dummy nodes, pool)
  // do not pollute the counts.
  (void)handle->try_push(&payloads[0]);
  (void)handle->try_pop();

  Profile out;
  {
    stats::ScopedOpRecording rec(out.push);
    for (std::uint64_t i = 0; i < ops; ++i) {
      (void)handle->try_push(&payloads[i]);
    }
  }
  {
    stats::ScopedOpRecording rec(out.pop);
    for (std::uint64_t i = 0; i < ops; ++i) {
      (void)handle->try_pop();
    }
  }
  return out;
}

/// Per-op counters for one thread of a 2-thread contended run.
Profile profile_contended(const QueueSpec& spec, std::uint64_t ops) {
  auto queue = spec.make(64);
  Profile out;
  SpinBarrier barrier(2);
  std::thread other([&] {
    auto handle = queue->handle();
    static Payload p;
    barrier.wait();
    for (std::uint64_t i = 0; i < ops; ++i) {
      while (!handle->try_push(&p)) {
      }
      while (handle->try_pop() == nullptr) {
      }
    }
  });
  {
    auto handle = queue->handle();
    static Payload p;
    barrier.wait();
    stats::ScopedOpRecording rec(out.push);  // both phases recorded together
    for (std::uint64_t i = 0; i < ops; ++i) {
      while (!handle->try_push(&p)) {
      }
      while (handle->try_pop() == nullptr) {
      }
    }
  }
  other.join();
  return out;
}

void print_row(const std::string& name, const char* op, const stats::OpCounters& c,
               std::uint64_t ops, bool csv) {
  const double n = static_cast<double>(ops);
  if (csv) {
    std::printf("%s,%s,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n", name.c_str(), op, c.cas_attempts / n,
                c.cas_success / n, c.wide_cas_attempts / n, c.wide_cas_success / n,
                c.wide_loads / n, c.faa / n);
  } else {
    std::printf("%-18s %-9s %8.2f %8.2f %9.2f %9.2f %9.2f %7.2f\n", name.c_str(), op,
                c.cas_attempts / n, c.cas_success / n, c.wide_cas_attempts / n,
                c.wide_cas_success / n, c.wide_loads / n, c.faa / n);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  constexpr std::uint64_t kOps = 1024;  // < capacity: every push must land
  const std::vector<std::string> algos = {"fifo-llsc", "fifo-llsc-versioned", "fifo-simcas",
                                          "shann",     "ms-hp",               "ms-pool",
                                          "ms-doherty"};

  if (csv) {
    std::printf("queue,op,cas,cas_ok,wcas,wcas_ok,wload,faa\n");
  } else {
    std::printf("== Per-operation atomic-instruction profile (uncontended) ==\n");
    std::printf("(counts per queue operation; paper Sec. 6 quotes: MS = 2/1 successful CAS,\n");
    std::printf(" SimCAS = 3 CAS + 2 FAA, Shann = narrow+wide CAS, Doherty = 7 CAS)\n");
    std::printf("%-18s %-9s %8s %8s %9s %9s %9s %7s\n", "queue", "op", "cas", "cas_ok", "wcas",
                "wcas_ok", "wload", "faa");
  }
  for (const std::string& name : algos) {
    const QueueSpec& spec = find_queue(name);
    const Profile p = profile_uncontended(spec, kOps);
    print_row(spec.name, "enqueue", p.push, kOps, csv);
    print_row(spec.name, "dequeue", p.pop, kOps, csv);
  }

  if (!csv) {
    std::printf("\n== Same, one thread of a 2-thread contended run (enq+deq pairs) ==\n");
    std::printf("%-18s %-9s %8s %8s %9s %9s %9s %7s\n", "queue", "op", "cas", "cas_ok", "wcas",
                "wcas_ok", "wload", "faa");
  }
  for (const std::string& name : algos) {
    const QueueSpec& spec = find_queue(name);
    const Profile p = profile_contended(spec, kOps / 4);
    print_row(spec.name, "pair", p.push, kOps / 4, csv);
  }
  return 0;
}
