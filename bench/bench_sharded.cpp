// Sharded scaling layer vs the flat paper queues (core/sharded_queue.hpp).
//
// The paper's array queues funnel every operation through one Head and one
// Tail counter; the sharded composition stripes the same per-slot protocol
// across 4 independent rings with handle affinity + overflow/steal. This
// bench measures what that buys (and what strict FIFO costs) by sweeping
// threads over each flat queue and its 4-shard composition.
//
// Expected shape: near parity single-threaded (affinity makes the scans
// degenerate to one shard), widening aggregate-throughput advantage for the
// sharded variants as threads — and therefore counter contention — grow.
#include <cstdio>

#include "evq/harness/runner.hpp"

int main(int argc, char** argv) {
  using namespace evq::harness;
  const CliOptions opts = parse_cli(argc, argv, {1, 2, 4, 8}, 5000, 3);
  const std::vector<std::string> algos = {"fifo-llsc", "sharded-llsc", "fifo-simcas",
                                          "sharded-simcas"};
  const FigureResult fig = run_figure(algos, opts);
  print_absolute(fig, opts, "Sharded scaling: 4-shard compositions vs flat paper queues");

  if (!opts.csv) {
    // Aggregate-throughput ratio (flat time / sharded time) per thread count.
    auto series_of = [&](const std::string& name) -> const SeriesResult* {
      for (const SeriesResult& s : fig.series) {
        if (s.name == name) {
          return &s;
        }
      }
      return nullptr;
    };
    std::printf("\nSharded speedup (flat mean time / sharded mean time):\n");
    std::printf("%8s %14s %14s\n", "threads", "llsc", "simcas");
    for (std::size_t i = 0; i < fig.thread_counts.size(); ++i) {
      const SeriesResult* flat_llsc = series_of("fifo-llsc");
      const SeriesResult* shard_llsc = series_of("sharded-llsc");
      const SeriesResult* flat_cas = series_of("fifo-simcas");
      const SeriesResult* shard_cas = series_of("sharded-simcas");
      std::printf("%8u %13.2fx %13.2fx\n", fig.thread_counts[i],
                  flat_llsc->by_threads[i].mean / shard_llsc->by_threads[i].mean,
                  flat_cas->by_threads[i].mean / shard_cas->by_threads[i].mean);
    }
    std::printf("(>1 means the sharded composition finished the same workload faster)\n");
  }
  return 0;
}
