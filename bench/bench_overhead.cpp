// In-text experiment T1 (Sec. 6): single-thread overhead of each
// synchronized implementation over an unsynchronized array ring.
//
// Paper numbers: "Our LL/SC and CAS-based implementations are respectively
// 12% and 50% slower on the PowerPC, and the CAS-based implementation is
// 90% slower on the AMD."
#include <cstdio>
#include <string>
#include <vector>

#include "evq/harness/runner.hpp"
#include "evq/harness/workload.hpp"

int main(int argc, char** argv) {
  using namespace evq::harness;
  CliOptions opts = parse_cli(argc, argv, {1}, 20000, 3);
  opts.thread_counts = {1};  // this experiment is single-threaded by definition

  const std::vector<std::string> algos = {"unsync",      "fifo-llsc", "fifo-llsc-versioned",
                                          "fifo-simcas", "shann",     "ms-hp",
                                          "ms-doherty",  "mutex"};
  struct Row {
    std::string name;
    std::string label;
    double seconds;
  };
  std::vector<Row> rows;
  double base = 0.0;
  for (const std::string& name : algos) {
    const QueueSpec& spec = find_queue(name);
    WorkloadParams p = opts.workload;
    p.threads = 1;
    std::fprintf(stderr, "# %-18s ...\n", spec.name.c_str());
    const Summary s = summarize(run_workload(spec, p));
    rows.push_back({spec.name, spec.paper_label, s.mean});
    if (name == "unsync") {
      base = s.mean;
    }
  }

  if (opts.csv) {
    std::printf("queue,seconds,overhead_pct\n");
    for (const Row& r : rows) {
      std::printf("%s,%.6f,%.1f\n", r.name.c_str(), r.seconds,
                  (r.seconds / base - 1.0) * 100.0);
    }
    return 0;
  }
  std::printf("== Single-thread overhead vs unsynchronized ring (Sec. 6 in-text) ==\n");
  std::printf("(paper: LL/SC +12%%, Simulated CAS +50%% (PowerPC) / +90%% (AMD))\n");
  std::printf("%-18s  %-32s  %10s  %9s\n", "queue", "paper label", "seconds", "overhead");
  for (const Row& r : rows) {
    std::printf("%-18s  %-32s  %10.4f  %+8.1f%%\n", r.name.c_str(), r.label.c_str(), r.seconds,
                (r.seconds / base - 1.0) * 100.0);
  }
  return 0;
}
