// In-text experiment T2 (Sec. 6): relative cost of the atomic primitives.
//
// The paper explains the ~5% gap between Algorithm 2 (three narrow CAS +
// two FetchAndAdd per op) and Shann et al. (one narrow + one WIDE CAS per
// op) by "a 64-bit CAS roughly takes 4.5 more time than its 32-bit
// counterpart on the AMD". The x86-64 analog measured here: 64-bit
// (pointer-wide) CAS vs 128-bit cmpxchg16b, plus FetchAndAdd and the
// simulated-LL/SC reserve+write pair for completeness.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>

#include "evq/common/cacheline.hpp"
#include "evq/common/dwcas.hpp"
#include "evq/registry/registry.hpp"
#include "evq/registry/sim_llsc_cell.hpp"

namespace {

using namespace evq;

// Uncontended primitives (single thread): the raw instruction-cost ratio.

void BM_Cas32(benchmark::State& state) {
  CachePadded<std::atomic<std::uint32_t>> cell{0u};
  std::uint32_t v = 0;
  for (auto _ : state) {
    std::uint32_t expected = v;
    benchmark::DoNotOptimize(
        cell.value.compare_exchange_strong(expected, v + 1, std::memory_order_seq_cst));
    ++v;
  }
}
BENCHMARK(BM_Cas32);

void BM_Cas64(benchmark::State& state) {
  CachePadded<std::atomic<std::uint64_t>> cell{std::uint64_t{0}};
  std::uint64_t v = 0;
  for (auto _ : state) {
    std::uint64_t expected = v;
    benchmark::DoNotOptimize(
        cell.value.compare_exchange_strong(expected, v + 1, std::memory_order_seq_cst));
    ++v;
  }
}
BENCHMARK(BM_Cas64);

void BM_Cas128(benchmark::State& state) {
  AtomicDwWord cell(DwWord{0, 0});
  std::uint64_t v = 0;
  for (auto _ : state) {
    DwWord expected{v, v};
    benchmark::DoNotOptimize(cell.compare_exchange(expected, DwWord{v + 1, v + 1}));
    ++v;
  }
}
BENCHMARK(BM_Cas128);

void BM_FetchAndAdd(benchmark::State& state) {
  CachePadded<std::atomic<std::uint64_t>> cell{std::uint64_t{0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.value.fetch_add(1, std::memory_order_seq_cst));
  }
}
BENCHMARK(BM_FetchAndAdd);

// One full simulated-LL/SC reserve+write pair (Algorithm 2's slot update:
// 2 CAS when uncontended) vs one wide CAS (Shann's slot update).

void BM_SimLlscReserveWrite(benchmark::State& state) {
  registry::Registry reg;
  registry::SimLlscCell<std::uint64_t*> cell;
  static std::uint64_t item;
  registry::LlscVar* var = reg.register_var();
  bool filled = false;
  for (auto _ : state) {
    cell.ll(var);
    benchmark::DoNotOptimize(cell.sc(var, filled ? nullptr : &item));
    filled = !filled;
  }
  reg.deregister(var);
}
BENCHMARK(BM_SimLlscReserveWrite);

void BM_WideCasSlotWrite(benchmark::State& state) {
  AtomicDwWord cell(DwWord{0, 0});
  static std::uint64_t item;
  bool filled = false;
  for (auto _ : state) {
    DwWord cur = cell.load();
    benchmark::DoNotOptimize(cell.compare_exchange(
        cur, DwWord{filled ? 0 : reinterpret_cast<std::uint64_t>(&item), cur.hi + 1}));
    filled = !filled;
  }
}
BENCHMARK(BM_WideCasSlotWrite);

// Contended versions: all benchmark threads hammer one cell.

void BM_Cas64Contended(benchmark::State& state) {
  static CachePadded<std::atomic<std::uint64_t>> cell{std::uint64_t{0}};
  for (auto _ : state) {
    std::uint64_t expected = cell.value.load(std::memory_order_relaxed);
    benchmark::DoNotOptimize(
        cell.value.compare_exchange_strong(expected, expected + 1, std::memory_order_seq_cst));
  }
}
BENCHMARK(BM_Cas64Contended)->Threads(2)->Threads(4);

void BM_Cas128Contended(benchmark::State& state) {
  static AtomicDwWord cell(DwWord{0, 0});
  for (auto _ : state) {
    DwWord expected = cell.load();
    benchmark::DoNotOptimize(
        cell.compare_exchange(expected, DwWord{expected.lo + 1, expected.hi + 1}));
  }
}
BENCHMARK(BM_Cas128Contended)->Threads(2)->Threads(4);

}  // namespace

BENCHMARK_MAIN();
