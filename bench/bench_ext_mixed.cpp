// Extension experiment E1 (beyond the paper): sensitivity of the algorithm
// ranking to the operation mix.
//
// The paper's workload is a rigid 5-enqueue/5-dequeue burst. Real queue
// clients interleave randomly and asymmetrically; this bench sweeps a
// randomized workload over push bias in {25%, 50%, 75%} to check that
// Fig. 6's ranking is a property of the algorithms, not of the burst
// pattern. (Per-thread balance stays bounded by `burst`, so the bounded
// queues remain deadlock-free at every bias.)
#include <cstdio>
#include <string>
#include <vector>

#include "evq/harness/runner.hpp"
#include "evq/harness/workload.hpp"

int main(int argc, char** argv) {
  using namespace evq::harness;
  const CliOptions opts = parse_cli(argc, argv, {4, 16}, 3000, 2);
  const std::vector<std::string> algos = {"fifo-llsc", "fifo-simcas", "shann", "ms-hp",
                                          "ms-doherty"};
  const std::vector<unsigned> biases = {25, 50, 75};

  if (opts.csv) {
    std::printf("bias,threads");
    for (const auto& a : algos) {
      std::printf(",%s", a.c_str());
    }
    std::printf("\n");
  } else {
    std::printf("== Extension E1: randomized workload, push-bias sweep ==\n");
    std::printf("(seconds per run; paper's burst pattern replaced by random mixed ops)\n");
    std::printf("%-6s %-8s", "bias", "threads");
    for (const auto& a : algos) {
      std::printf("  %-18s", a.c_str());
    }
    std::printf("\n");
  }
  for (unsigned bias : biases) {
    for (unsigned threads : opts.thread_counts) {
      if (opts.csv) {
        std::printf("%u,%u", bias, threads);
      } else {
        std::printf("%-6u %-8u", bias, threads);
      }
      for (const std::string& name : algos) {
        const QueueSpec& spec = find_queue(name);
        WorkloadParams p = opts.workload;
        p.threads = threads;
        p.pattern = WorkloadPattern::kRandomMixed;
        p.push_bias_pct = bias;
        std::fprintf(stderr, "# %-12s bias=%u threads=%u ...\n", spec.name.c_str(), bias,
                     threads);
        const Summary s = summarize(run_workload(spec, p));
        std::printf(opts.csv ? ",%.6f" : "  %10.4f s       ", s.mean);
      }
      std::printf("\n");
    }
  }
  return 0;
}
