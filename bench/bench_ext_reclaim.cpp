// Extension experiment E2 (beyond the paper): the reclamation spectrum for
// link-based queues.
//
// The paper's related-work section enumerates the ways a link-based FIFO
// can cope with memory reclamation — free pools ("never free"), hazard
// pointers, Doherty-style simulated LL/SC — and benchmarks two of them
// against the array queues. This bench lines up all four MS variants (plus
// epoch-based reclamation, the "almost a garbage collector" option) so the
// reclamation cost itself is isolated: the queue algorithm is identical in
// every column.
#include "evq/harness/runner.hpp"

int main(int argc, char** argv) {
  using namespace evq::harness;
  const CliOptions opts = parse_cli(argc, argv, {1, 4, 16, 32}, 3000, 2);
  const std::vector<std::string> algos = {"ms-pool", "ms-ebr", "ms-hp", "ms-hp-sorted",
                                          "ms-doherty"};
  const FigureResult fig = run_figure(algos, opts);
  print_absolute(fig, opts,
                 "Extension E2: Michael-Scott queue under five reclamation schemes");
  return 0;
}
