// Fig. 6b — actual running time vs number of threads on the CAS-only
// machine (the paper's AMD Sempron). Algorithms, in the paper's legend
// order: MS-Doherty et al., MS-Hazard Pointers Not Sorted, MS-Hazard
// Pointers Sorted, FIFO Array Simulated CAS, Shann et al. (wide CAS).
//
// Expected shape (paper): Shann and FIFO Simulated CAS within ~5% of each
// other (Shann slightly ahead, paying 1 wide CAS vs 3 narrow CAS + 2 FAA);
// MS-HP competitive at moderate thread counts; MS-Doherty slowest.
#include "evq/harness/runner.hpp"

int main(int argc, char** argv) {
  using namespace evq::harness;
  const CliOptions opts = parse_cli(argc, argv, {1, 4, 8, 16, 32, 64}, 5000, 3);
  const std::vector<std::string> algos = {"ms-doherty", "ms-hp", "ms-hp-sorted", "fifo-simcas",
                                          "shann"};
  const FigureResult fig = run_figure(algos, opts);
  print_absolute(fig, opts, "Fig. 6b: actual running time, CAS machine analog");
  return 0;
}
