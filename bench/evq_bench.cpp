// evq-bench — the unified driver for every reproduced figure, in-text
// table, ablation and extension experiment (src/harness/scenario.hpp).
//
//   evq-bench list                     # scenarios with one-line summaries
//   evq-bench run fig6a fig6b          # named scenarios, CI-scale defaults
//   evq-bench run --all                # the full measurement suite
//   evq-bench run fig6a --csv          # legacy per-figure CSV (byte-compatible
//                                      # with the retired bench_fig6a binary)
//   evq-bench run --all --json out.json  # versioned JSON perf document
//
// Flags after the scenario names (see harness/cli.hpp) override each
// scenario's own defaults; only flags the user actually set are applied, so
// `run --all --runs 5` raises every scenario's repetition count without
// flattening their distinct sweeps.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "evq/harness/bench_json.hpp"
#include "evq/harness/scenario.hpp"
#include "evq/trace/chrome_trace.hpp"
#include "evq/trace/trace.hpp"

namespace {

using namespace evq::harness;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: evq-bench list\n"
               "       evq-bench run <scenario>... [flags]\n"
               "       evq-bench run --all [flags]\n"
               "flags: --threads a,b,c  --iters N  --runs R  --burst B  --capacity C\n"
               "       --csv  --paper  --latency-sample N  --stable-cv PCT\n"
               "       --max-runs N  --op-stats  --telemetry  --health  --perf\n"
               "       --json PATH ('-' = stdout)  --trace PATH  --trace-sample N\n"
               "`evq-bench list` prints the available scenarios.\n");
  std::exit(2);
}

int cmd_list() {
  for (const ScenarioSpec& spec : all_scenarios()) {
    std::printf("%-20s %s\n", spec.name.c_str(), spec.summary.c_str());
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  // Scenario names come first; the first --flag starts the overrides.
  std::vector<std::string> names;
  int flags_at = 2;
  bool all = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--all") == 0) {
      all = true;
      flags_at = i + 1;
    } else if (argv[i][0] == '-') {
      break;
    } else {
      names.emplace_back(argv[i]);
      flags_at = i + 1;
    }
  }
  if (all != names.empty()) {  // exactly one of --all / explicit names
    usage();
  }
  const CliOverrides overrides = parse_overrides(argc, argv, flags_at);

  // Tracing spans the whole command: sampling goes live before the first
  // scenario and the export at the end covers the surviving ring window
  // (newest ~4096 spans per thread). --trace-sample alone enables recording
  // without an export — that is what the trace-overhead A/B uses.
  unsigned trace_every = overrides.trace_sample_every.value_or(0);
  if (trace_every == 0 && !overrides.trace_path.empty()) {
    trace_every = 64;
  }
  if (trace_every != 0) {
    evq::trace::set_sampling(trace_every);
  }

  std::vector<const ScenarioSpec*> specs;
  if (all) {
    for (const ScenarioSpec& spec : all_scenarios()) {
      specs.push_back(&spec);
    }
  } else {
    for (const std::string& name : names) {
      specs.push_back(&find_scenario(name));
    }
  }

  std::vector<ScenarioResult> results;
  std::vector<CliOptions> options;
  bool first = true;
  for (const ScenarioSpec* spec : specs) {
    const CliOptions opts = scenario_options(*spec, overrides);
    if (!first) {
      std::printf("\n");
    }
    first = false;
    const ScenarioResult result = run_scenario(*spec, opts);
    print_scenario(*spec, result, opts);
    results.push_back(result);
    options.push_back(opts);
  }

  if (!overrides.json_path.empty()) {
    const std::string doc = bench_results_to_json(current_host_info(), results, options);
    if (overrides.json_path == "-") {
      std::fwrite(doc.data(), 1, doc.size(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::FILE* f = std::fopen(overrides.json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "evq-bench: cannot open '%s' for writing\n",
                     overrides.json_path.c_str());
        return 1;
      }
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::fprintf(stderr, "# wrote %s\n", overrides.json_path.c_str());
    }
  }

  if (!overrides.trace_path.empty()) {
    std::ofstream out(overrides.trace_path);
    if (!out) {
      std::fprintf(stderr, "evq-bench: cannot open '%s' for writing\n",
                   overrides.trace_path.c_str());
      return 1;
    }
    evq::trace::export_chrome_trace(out);
    std::fprintf(stderr, "# wrote %s (open in https://ui.perfetto.dev)\n",
                 overrides.trace_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
  }
  if (std::strcmp(argv[1], "list") == 0) {
    return cmd_list();
  }
  if (std::strcmp(argv[1], "run") == 0) {
    return cmd_run(argc, argv);
  }
  usage();
}
