// Fig. 6d — Fig. 6b's series normalized to FIFO Array Simulated CAS.
#include "evq/harness/runner.hpp"

int main(int argc, char** argv) {
  using namespace evq::harness;
  const CliOptions opts = parse_cli(argc, argv, {1, 4, 8, 16, 32, 64}, 5000, 3);
  const std::vector<std::string> algos = {"ms-doherty", "ms-hp", "ms-hp-sorted", "fifo-simcas",
                                          "shann"};
  const FigureResult fig = run_figure(algos, opts);
  print_normalized(fig, opts, "Fig. 6d: normalized running time, CAS machine analog",
                   "fifo-simcas");
  return 0;
}
