// Ablation A1 (DESIGN.md §5): cost of the LL/SC emulation policy under
// Algorithm 1, supporting the paper's Sec. 5 portability discussion.
//
//   fifo-llsc          {value, 64-bit version} via cmpxchg16b (reference)
//   fifo-llsc-packed   48-bit pointer + 16-bit version, single 64-bit word
//   weak variants      spurious SC failure injected at 5% / 25% (hardware
//                      limitation #3: reservations lost to cache pressure
//                      or preemption) — measures retry-loop resilience.
#include <memory>
#include <string>
#include <vector>

#include "evq/core/llsc_array_queue.hpp"
#include "evq/harness/runner.hpp"
#include "evq/llsc/versioned_llsc.hpp"
#include "evq/llsc/weak_llsc.hpp"

namespace {

using namespace evq;
using namespace evq::harness;

template <typename T>
using Weak5 = llsc::WeakLlsc<llsc::VersionedLlsc<T>, 5>;
template <typename T>
using Weak25 = llsc::WeakLlsc<llsc::VersionedLlsc<T>, 25>;

/// Local (non-registry) specs for the weak variants.
QueueSpec weak_spec(const std::string& name, const std::string& label, int which) {
  QueueFactory make;
  if (which == 5) {
    make = [](std::size_t cap) -> std::unique_ptr<AnyQueue> {
      return std::make_unique<QueueAdapter<LlscArrayQueue<Payload, Weak5>>>(cap);
    };
  } else {
    make = [](std::size_t cap) -> std::unique_ptr<AnyQueue> {
      return std::make_unique<QueueAdapter<LlscArrayQueue<Payload, Weak25>>>(cap);
    };
  }
  return QueueSpec{name, label, true, true, true, std::move(make)};
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opts = parse_cli(argc, argv, {1, 4, 16}, 3000, 2);

  std::vector<QueueSpec> specs;
  specs.push_back(find_queue("fifo-llsc"));
  specs.push_back(find_queue("fifo-llsc-versioned"));
  specs.push_back(weak_spec("fifo-llsc-weak5", "LL/SC, 5% spurious SC failure", 5));
  specs.push_back(weak_spec("fifo-llsc-weak25", "LL/SC, 25% spurious SC failure", 25));

  FigureResult fig;
  fig.thread_counts = opts.thread_counts;
  for (const QueueSpec& spec : specs) {
    SeriesResult series{spec.name, spec.paper_label, {}};
    for (unsigned threads : opts.thread_counts) {
      WorkloadParams p = opts.workload;
      p.threads = threads;
      std::fprintf(stderr, "# %-18s threads=%u ...\n", spec.name.c_str(), threads);
      series.by_threads.push_back(summarize(run_workload(spec, p)));
    }
    fig.series.push_back(std::move(series));
  }
  print_absolute(fig, opts, "Ablation A1: LL/SC emulation policy under Algorithm 1");
  return 0;
}
