// Fig. 6c — Fig. 6a's series normalized to FIFO Array Simulated CAS ("the
// basis of normalization was chosen to be our CAS-based implementation
// because this algorithm is common to both experiments").
#include "evq/harness/runner.hpp"

int main(int argc, char** argv) {
  using namespace evq::harness;
  const CliOptions opts = parse_cli(argc, argv, {1, 2, 4, 8, 16, 32}, 5000, 3);
  const std::vector<std::string> algos = {"ms-doherty", "fifo-simcas", "ms-hp", "ms-hp-sorted",
                                          "fifo-llsc"};
  const FigureResult fig = run_figure(algos, opts);
  print_normalized(fig, opts, "Fig. 6c: normalized running time, LL/SC machine analog",
                   "fifo-simcas");
  return 0;
}
