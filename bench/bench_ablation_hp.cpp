// Ablation A2 (DESIGN.md §5): hazard-pointer scan strategy and free
// threshold for the MS-HP baseline.
//
// The paper fixes the threshold at 4x the thread count ("huge waste of
// memory [but] the cost to reclaim the nodes becomes fairly low") and
// observes that SORTING the collected hazard array pays off once the thread
// count is moderate-to-high. This bench sweeps multiplier x scan-mode.
#include <cstdio>
#include <memory>
#include <string>

#include "evq/baselines/ms_hp_queue.hpp"
#include "evq/harness/runner.hpp"

namespace {

using namespace evq;
using namespace evq::harness;

QueueSpec hp_spec(hazard::ScanMode mode, std::size_t multiplier) {
  const std::string name = std::string("ms-hp-") +
                           (mode == hazard::ScanMode::kSorted ? "sorted" : "linear") + "-x" +
                           std::to_string(multiplier);
  QueueFactory make = [mode, multiplier](std::size_t) -> std::unique_ptr<AnyQueue> {
    return std::make_unique<QueueAdapter<baselines::MsHpQueue<Payload>>>(mode, multiplier);
  };
  return QueueSpec{name, name, false, true, true, std::move(make)};
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opts = parse_cli(argc, argv, {2, 8, 16}, 3000, 2);

  FigureResult fig;
  fig.thread_counts = opts.thread_counts;
  for (hazard::ScanMode mode : {hazard::ScanMode::kUnsorted, hazard::ScanMode::kSorted}) {
    for (std::size_t multiplier : {1, 4, 16}) {
      const QueueSpec spec = hp_spec(mode, multiplier);
      SeriesResult series{spec.name, spec.paper_label, {}};
      for (unsigned threads : opts.thread_counts) {
        WorkloadParams p = opts.workload;
        p.threads = threads;
        std::fprintf(stderr, "# %-22s threads=%u ...\n", spec.name.c_str(), threads);
        series.by_threads.push_back(summarize(run_workload(spec, p)));
      }
      fig.series.push_back(std::move(series));
    }
  }
  print_absolute(fig, opts, "Ablation A2: MS-HP scan mode x free threshold");
  return 0;
}
