// google-benchmark micro throughput: per-operation-pair latency of every
// queue in the study, uncontended and under symmetric contention.
//
// Complements the figure benches: Fig. 6 measures the paper's composite
// workload (bursts + allocation); these numbers isolate the raw
// enqueue+dequeue pair so regressions in a single algorithm's fast path are
// visible without workload noise.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "evq/harness/queue_registry.hpp"

namespace {

using namespace evq::harness;

/// One enqueue+dequeue pair per iteration. The queue is shared by all
/// benchmark threads of the run; each thread uses its own handle and
/// payload, so the queue stays near-empty and the pair cost dominates.
void pair_bench(benchmark::State& state, AnyQueue* queue) {
  auto handle = queue->handle();
  Payload payload;
  for (auto _ : state) {
    while (!handle->try_push(&payload)) {
    }
    Payload* out = nullptr;
    while ((out = handle->try_pop()) == nullptr) {
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

// Queues live for the whole program; each registered benchmark owns one.
std::vector<std::unique_ptr<AnyQueue>>& live_queues() {
  static std::vector<std::unique_ptr<AnyQueue>> queues;
  return queues;
}

void register_benches() {
  const std::vector<std::string> names = {"fifo-llsc", "fifo-simcas", "ms-hp", "ms-doherty",
                                          "shann",     "tsigas-zhang", "mutex"};
  for (const std::string& name : names) {
    const QueueSpec& spec = find_queue(name);
    live_queues().push_back(spec.make(1024));
    AnyQueue* queue = live_queues().back().get();
    benchmark::RegisterBenchmark(("pair/" + name).c_str(),
                                 [queue](benchmark::State& st) { pair_bench(st, queue); })
        ->Threads(1)
        ->Threads(2)
        ->Threads(4);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
