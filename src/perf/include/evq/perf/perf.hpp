// evq::perf — observability layer 4 (DESIGN.md §16): hardware counters with
// per-op attribution.
//
// Layering: telemetry counts what the software did, trace shows when, health
// says what is wrong — perf explains what the *hardware* paid for it
// (cycles, cache misses, branch misses per completed queue op).
//
// Attribution model. Hardware counters are per-thread, not per-queue, so
// attribution happens where a thread knows which queue it is serving:
//
//   * ThreadPerfScope — a worker wraps its measured region (the harness
//     worker loop body) and harvests {counter deltas, op count} into a
//     PerfAgg. Per-op metric = sum(counter) / sum(ops) over all workers.
//     Valid because a harness worker touches exactly one queue per cell.
//   * QueuePerfScope — whole-queue mode: the same per-thread counter, but
//     deposits flow into the process-global AttributionTable keyed by the
//     queue's telemetry-registry name, so long-running services (evq-top,
//     the torture rig) accumulate per-queue totals across many threads and
//     a health Monitor can join them with its telemetry-derived QueueRates
//     by name.
//
// Per-op math (PerfAgg): per_op(e) = Σ value[e] / Σ ops, where value is the
// multiplexing-corrected estimate (backend.hpp); ipc = Σ instructions /
// Σ cycles. worst_mux_scale = min scale seen — 1.0 means every number is a
// true count, below ~0.9 the estimates deserve suspicion (say so in reports).
//
// Cost discipline: scopes are per worker *run*, not per op — two syscalls
// and a group read per harvest. The hot loop carries nothing, which is why
// the CI A/B gate (compiled-out vs --perf) sits far below its 1% / 5%
// budgets on any host.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "evq/perf/backend.hpp"

namespace evq::perf {

/// Aggregated counter totals with an op denominator. Sums across threads,
/// harvests and runs; the per-op division happens at presentation time.
struct PerfAgg {
  std::uint64_t ops = 0;
  std::uint64_t scopes = 0;  ///< harvests folded in (0 = empty/unused agg)
  std::array<std::uint64_t, kEventCount> value{};
  std::array<bool, kEventCount> available{};
  double worst_mux_scale = 1.0;

  PerfAgg& operator+=(const PerfAgg& other) noexcept;
  /// Folds one counter-sample delta (see ThreadPerfScope::harvest).
  void add_sample(const CounterSample& delta) noexcept;

  [[nodiscard]] bool any_available() const noexcept;
  [[nodiscard]] std::uint64_t total(Event e) const noexcept {
    return value[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] bool has(Event e) const noexcept {
    return available[static_cast<std::size_t>(e)];
  }
  /// Counter-per-op; -1 when the event is unavailable or ops == 0.
  [[nodiscard]] double per_op(Event e) const noexcept;
  /// Instructions per cycle; -1 unless both events are available and cycles > 0.
  [[nodiscard]] double ipc() const noexcept;
};

/// Interval difference `later - earlier` of two cumulative aggregates for
/// the same key (AttributionTable deposits only grow).
PerfAgg agg_delta(const PerfAgg& later, const PerfAgg& earlier) noexcept;

/// Per-thread RAII counting scope. Construction opens and starts a counter
/// group on the calling thread (a no-op handle when the backend is
/// unavailable or EVQ_PERF=OFF); harvest(ops) reads the delta since the last
/// harvest — without stopping the counters — and returns it folded into a
/// PerfAgg with `ops` as the denominator. Scopes nest freely: each holds an
/// independent counter group, so an inner scope simply measures a subset of
/// the outer one's interval.
class ThreadPerfScope {
 public:
  explicit ThreadPerfScope(Backend* backend = nullptr);  // nullptr = default_backend()
  ~ThreadPerfScope();

  ThreadPerfScope(const ThreadPerfScope&) = delete;
  ThreadPerfScope& operator=(const ThreadPerfScope&) = delete;

  /// True when a real (or mock) counter is live underneath.
  [[nodiscard]] bool live() const noexcept;
  [[nodiscard]] PerfAgg harvest(std::uint64_t ops);

 private:
  std::unique_ptr<ThreadCounter> counter_;
  CounterSample last_{};
  bool live_ = false;
};

// ---------------------------------------------------------------------------
// Whole-queue attribution
// ---------------------------------------------------------------------------

/// Process-global per-queue aggregates, keyed by the telemetry registry
/// name. Mirrors telemetry::Registry's contract: entries are append-only and
/// never removed, so before/after snapshot deltas are exact.
struct AttributionSnapshot {
  std::vector<std::pair<std::string, PerfAgg>> queues;  // name-sorted

  [[nodiscard]] const PerfAgg* find(std::string_view queue) const noexcept;
};

class AttributionTable {
 public:
  static AttributionTable& global();

  void deposit(std::string_view queue, const PerfAgg& delta);
  [[nodiscard]] AttributionSnapshot snapshot() const;
  /// Tests share the global table; this re-zeros it between them.
  void reset_for_testing();

 private:
  mutable std::mutex mu_;
  std::map<std::string, PerfAgg, std::less<>> queues_;
};

/// Whole-queue RAII scope: a ThreadPerfScope whose harvests are deposited
/// into an AttributionTable under the queue's registry name. The worker
/// calls add_ops() as it completes operations and flush() periodically (the
/// destructor flushes the remainder) so a concurrently-polling Monitor sees
/// fresh deltas, not only end-of-thread totals.
class QueuePerfScope {
 public:
  explicit QueuePerfScope(std::string_view queue, Backend* backend = nullptr,
                          AttributionTable* table = nullptr);  // nullptr = global()
  ~QueuePerfScope();

  QueuePerfScope(const QueuePerfScope&) = delete;
  QueuePerfScope& operator=(const QueuePerfScope&) = delete;

  [[nodiscard]] bool live() const noexcept { return scope_.live(); }
  void add_ops(std::uint64_t n) noexcept { pending_ops_ += n; }
  void flush();

 private:
  std::string queue_;
  AttributionTable* table_;
  ThreadPerfScope scope_;
  std::uint64_t pending_ops_ = 0;
};

/// Prometheus exposition of a whole-queue snapshot: evq_perf_ops and
/// evq_perf_per_op{queue,event} gauges plus evq_perf_mux_scale, and — when
/// `backend` is given — evq_perf_backend_available{backend,reason}. Only
/// available events are emitted; a fully-degraded process exports just the
/// backend line, never silent absence.
void render_prometheus_perf(std::ostream& os, const AttributionSnapshot& snap,
                            const Backend* backend = nullptr);

}  // namespace evq::perf
