// evq::perf backend contract (DESIGN.md §16): who actually reads the PMU.
//
// A Backend opens ThreadCounters — one hardware counter *group* bound to the
// calling thread — and reports its own availability. Three implementations:
//
//   perf_event  the real thing: one perf_event_open(2) group per thread
//               (leader = cycles) read with PERF_FORMAT_GROUP |
//               TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING | ID, so one read()
//               syscall yields every event plus the multiplexing times;
//   mock        deterministic virtual-clock counters for unit tests — it
//               fabricates the same group-read buffer the kernel would and
//               pushes it through decode_group_read(), so the tests pin the
//               production decode path, not a parallel one;
//   null        selected when the syscall is denied (perf_event_paranoid,
//               seccomp, no PMU — the common container case). Carries the
//               reason string; counters read as all-unavailable.
//
// Fallback matrix (every cell must leave the full test suite green):
//   perf_event_open succeeds            -> perf_event backend, available
//   EACCES/EPERM (paranoid/seccomp)     -> null, "perf_event_paranoid=N ..."
//   ENOENT/ENODEV/EOPNOTSUPP (no PMU)   -> null, "no hardware PMU ..."
//   non-Linux build                     -> null, "perf_event_open is Linux-only"
//   EVQ_PERF=OFF build                  -> null, "compiled out (EVQ_PERF=OFF)"
//   EVQ_PERF_BACKEND=null               -> null, forced (degradation tests)
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#ifndef EVQ_PERF
#define EVQ_PERF 1
#endif

namespace evq::perf {

/// The fixed counter set. Order is the group order and the JSON/Prometheus
/// emission order; kEventCount-sized arrays are indexed by it.
enum class Event : std::uint8_t {
  kCycles = 0,
  kInstructions,
  kL1dMisses,
  kLlcMisses,
  kBranchMisses,
  kContextSwitches,
};
inline constexpr std::size_t kEventCount = 6;

/// Stable short name ("cycles", "llc_misses", ...) used for Prometheus
/// labels and as the stem of the JSON per-op keys.
const char* event_name(Event e) noexcept;

/// One event's reading, multiplexing-corrected.
struct EventSample {
  std::uint64_t value = 0;  ///< scaled estimate: raw * time_enabled/time_running
  std::uint64_t raw = 0;    ///< as counted while actually scheduled on the PMU
  double scale = 1.0;       ///< time_running / time_enabled (1 = never multiplexed)
  bool available = false;   ///< false: event not opened / not supported here
};

struct CounterSample {
  std::array<EventSample, kEventCount> events{};

  [[nodiscard]] const EventSample& operator[](Event e) const noexcept {
    return events[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] EventSample& operator[](Event e) noexcept {
    return events[static_cast<std::size_t>(e)];
  }
};

/// Decodes one PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING |
/// PERF_FORMAT_ID read buffer:
///
///   u64 nr; u64 time_enabled; u64 time_running; { u64 value; u64 id; }[nr]
///
/// `id_of_event[e]` is the kernel-assigned id of event e's group member and
/// `opened[e]` whether that member opened at all (unopened events decode as
/// unavailable). The multiplexing estimate is value * enabled/running; an
/// event group that was enabled but never scheduled (running == 0) decodes
/// as value 0 with scale 0. Pure — unit-tested against hand-built buffers.
CounterSample decode_group_read(const std::uint64_t* buf, std::size_t n_words,
                                const std::array<std::uint64_t, kEventCount>& id_of_event,
                                const std::array<bool, kEventCount>& opened);

/// One thread-bound counter group. start() resets and enables, read() returns
/// cumulative-since-start() samples WITHOUT stopping (periodic harvests keep
/// counting), stop() disables. Not thread-safe; owned by the thread it counts.
class ThreadCounter {
 public:
  virtual ~ThreadCounter() = default;
  virtual void start() = 0;
  virtual void stop() = 0;
  [[nodiscard]] virtual CounterSample read() = 0;
};

class Backend {
 public:
  virtual ~Backend() = default;
  /// "perf_event", "mock" or "null".
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual bool available() const noexcept = 0;
  /// Empty when available; else the fallback-matrix reason above.
  [[nodiscard]] virtual std::string unavailable_reason() const = 0;
  /// Never returns nullptr: an unavailable backend hands out counters whose
  /// samples read as all-unavailable, so callers need no error path.
  [[nodiscard]] virtual std::unique_ptr<ThreadCounter> open_thread_counter() = 0;
};

/// Deterministic backend for unit tests. Time is a virtual clock advanced by
/// tick(); each event counts rate[e] per tick, and mux in (0, 1] simulates
/// kernel multiplexing (a perf group schedules as a unit, so one duty cycle
/// covers all members — exactly the kernel's semantics). read() fabricates
/// the kernel's group buffer and decodes it through decode_group_read, so
/// the scale arithmetic under test is the production one:
/// raw = true_count * mux, decoded estimate == true_count.
class MockBackend : public Backend {
 public:
  struct Config {
    std::array<std::uint64_t, kEventCount> rate{3000, 2400, 20, 2, 5, 0};
    double mux = 1.0;
    std::array<bool, kEventCount> present{true, true, true, true, true, true};
  };

  MockBackend() = default;
  explicit MockBackend(Config config) : config_(config) {}

  void tick(std::uint64_t n) noexcept;
  [[nodiscard]] std::uint64_t now() const noexcept;

  [[nodiscard]] const char* name() const noexcept override { return "mock"; }
  [[nodiscard]] bool available() const noexcept override { return true; }
  [[nodiscard]] std::string unavailable_reason() const override { return {}; }
  [[nodiscard]] std::unique_ptr<ThreadCounter> open_thread_counter() override;

 private:
  friend class MockThreadCounter;
  Config config_;
  std::atomic<std::uint64_t> clock_{0};  // atomic: repro tests tick under load
};

/// The degraded backend: remembers why hardware counting is off.
class NullBackend : public Backend {
 public:
  explicit NullBackend(std::string reason) : reason_(std::move(reason)) {}

  [[nodiscard]] const char* name() const noexcept override { return "null"; }
  [[nodiscard]] bool available() const noexcept override { return false; }
  [[nodiscard]] std::string unavailable_reason() const override { return reason_; }
  [[nodiscard]] std::unique_ptr<ThreadCounter> open_thread_counter() override;

 private:
  std::string reason_;
};

/// The process-wide backend, chosen once on first use:
///   EVQ_PERF=OFF build        -> null ("compiled out")
///   EVQ_PERF_BACKEND=null     -> null ("forced by EVQ_PERF_BACKEND=null")
///   otherwise                 -> probe perf_event_open; real backend on
///                                success, null with the errno-derived
///                                reason (including the current
///                                perf_event_paranoid value) on denial.
Backend& default_backend();

/// Test hook: overrides default_backend()'s choice (nullptr restores the
/// probed one). Not thread-safe against concurrent default_backend() users;
/// tests swap it while no scopes are live.
void set_default_backend_for_testing(Backend* backend);

}  // namespace evq::perf
