// evq::perf implementation: the perf_event_open backend, the mock and null
// backends, scope/aggregation plumbing, the whole-queue attribution table and
// the Prometheus exporter. Cold path throughout — like evq_telemetry and
// evq_health this TU includes no injectable headers, so evq_perf links
// safely into the EVQ_INJECT_ENABLED torture binary.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <string_view>

#include "evq/perf/backend.hpp"
#include "evq/perf/perf.hpp"
#include "evq/telemetry/prometheus.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace evq::perf {

namespace {

/// Same deterministic double formatting as the telemetry/health sinks.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Events + group-read decoding
// ---------------------------------------------------------------------------

const char* event_name(Event e) noexcept {
  switch (e) {
    case Event::kCycles:
      return "cycles";
    case Event::kInstructions:
      return "instructions";
    case Event::kL1dMisses:
      return "l1d_misses";
    case Event::kLlcMisses:
      return "llc_misses";
    case Event::kBranchMisses:
      return "branch_misses";
    case Event::kContextSwitches:
      return "ctx_switches";
  }
  return "unknown";
}

CounterSample decode_group_read(const std::uint64_t* buf, std::size_t n_words,
                                const std::array<std::uint64_t, kEventCount>& id_of_event,
                                const std::array<bool, kEventCount>& opened) {
  CounterSample out;
  if (buf == nullptr || n_words < 3) {
    return out;  // truncated read: everything stays unavailable
  }
  const std::uint64_t nr = buf[0];
  const std::uint64_t enabled = buf[1];
  const std::uint64_t running = buf[2];
  if (n_words < 3 + 2 * nr) {
    return out;
  }
  // A perf group schedules as a unit: one duty cycle for every member.
  // enabled == 0 means start() was never reached (nothing counted, scale 1
  // by convention); running == 0 means enabled but never scheduled (true
  // zero-confidence: value 0, scale 0).
  const double scale =
      enabled == 0 ? 1.0 : static_cast<double>(running) / static_cast<double>(enabled);
  for (std::uint64_t i = 0; i < nr; ++i) {
    const std::uint64_t raw = buf[3 + 2 * i];
    const std::uint64_t id = buf[3 + 2 * i + 1];
    for (std::size_t e = 0; e < kEventCount; ++e) {
      if (!opened[e] || id_of_event[e] != id) {
        continue;
      }
      EventSample& s = out.events[e];
      s.available = true;
      s.raw = raw;
      s.scale = scale;
      s.value = running == 0
                    ? 0
                    : static_cast<std::uint64_t>(static_cast<double>(raw) *
                                                     static_cast<double>(enabled) /
                                                     static_cast<double>(running) +
                                                 0.5);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Null backend
// ---------------------------------------------------------------------------

namespace {

class NullThreadCounter final : public ThreadCounter {
 public:
  void start() override {}
  void stop() override {}
  [[nodiscard]] CounterSample read() override { return {}; }
};

}  // namespace

std::unique_ptr<ThreadCounter> NullBackend::open_thread_counter() {
  return std::make_unique<NullThreadCounter>();
}

// ---------------------------------------------------------------------------
// Mock backend
// ---------------------------------------------------------------------------

void MockBackend::tick(std::uint64_t n) noexcept {
  clock_.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t MockBackend::now() const noexcept {
  return clock_.load(std::memory_order_relaxed);
}

namespace {

class MockThreadCounter final : public ThreadCounter {
 public:
  MockThreadCounter(const MockBackend* backend, MockBackend::Config config)
      : backend_(backend), config_(config) {}

  void start() override { start_clock_ = backend_->now(); }
  void stop() override {}

  [[nodiscard]] CounterSample read() override {
    const std::uint64_t elapsed = backend_->now() - start_clock_;
    // Fabricate exactly the kernel's PERF_FORMAT_GROUP buffer and decode it
    // through the production path. Times are in fake-nanoseconds (x1000) so
    // the raw * enabled / running division rounds cleanly.
    std::array<std::uint64_t, 3 + 2 * kEventCount> buf{};
    std::array<std::uint64_t, kEventCount> ids{};
    const std::uint64_t enabled = elapsed * 1000;
    const auto running = static_cast<std::uint64_t>(static_cast<double>(enabled) * config_.mux);
    std::size_t nr = 0;
    for (std::size_t e = 0; e < kEventCount; ++e) {
      ids[e] = 100 + e;  // fixed fake kernel ids
      if (!config_.present[e]) {
        continue;
      }
      const double true_count =
          static_cast<double>(config_.rate[e]) * static_cast<double>(elapsed);
      buf[3 + 2 * nr] = static_cast<std::uint64_t>(true_count * config_.mux);
      buf[3 + 2 * nr + 1] = ids[e];
      ++nr;
    }
    buf[0] = nr;
    buf[1] = enabled;
    buf[2] = running;
    return decode_group_read(buf.data(), 3 + 2 * nr, ids, config_.present);
  }

 private:
  const MockBackend* backend_;
  MockBackend::Config config_;
  std::uint64_t start_clock_ = 0;
};

}  // namespace

std::unique_ptr<ThreadCounter> MockBackend::open_thread_counter() {
  return std::make_unique<MockThreadCounter>(this, config_);
}

// ---------------------------------------------------------------------------
// perf_event backend (Linux)
// ---------------------------------------------------------------------------

#if defined(__linux__)

namespace {

long sys_perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                         unsigned long flags) {
  return syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags);
}

/// attr for one of our six events; `leader` toggles start-disabled.
perf_event_attr make_attr(Event e, bool leader, bool exclude_kernel) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  switch (e) {
    case Event::kCycles:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CPU_CYCLES;
      break;
    case Event::kInstructions:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_INSTRUCTIONS;
      break;
    case Event::kL1dMisses:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      break;
    case Event::kLlcMisses:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CACHE_MISSES;
      break;
    case Event::kBranchMisses:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_BRANCH_MISSES;
      break;
    case Event::kContextSwitches:
      attr.type = PERF_TYPE_SOFTWARE;
      attr.config = PERF_COUNT_SW_CONTEXT_SWITCHES;
      break;
  }
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING | PERF_FORMAT_ID;
  attr.disabled = leader ? 1 : 0;
  attr.exclude_kernel = exclude_kernel ? 1 : 0;
  attr.exclude_hv = 1;
  return attr;
}

int read_paranoid_level() {
  std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "re");
  if (f == nullptr) {
    return -100;  // sentinel: unreadable
  }
  int level = -100;
  if (std::fscanf(f, "%d", &level) != 1) {
    level = -100;
  }
  std::fclose(f);
  return level;
}

class PerfThreadCounter final : public ThreadCounter {
 public:
  explicit PerfThreadCounter(bool exclude_kernel) {
    fds_.fill(-1);
    for (std::size_t e = 0; e < kEventCount; ++e) {
      perf_event_attr attr =
          make_attr(static_cast<Event>(e), /*leader=*/leader_ < 0, exclude_kernel);
      const long fd =
          sys_perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1, /*group_fd=*/leader_, 0);
      if (fd < 0) {
        continue;  // this event isn't countable here; the rest still are
      }
      fds_[e] = static_cast<int>(fd);
      if (leader_ < 0) {
        leader_ = fds_[e];
      }
      std::uint64_t id = 0;
      if (ioctl(fds_[e], PERF_EVENT_IOC_ID, &id) == 0) {
        ids_[e] = id;
        opened_[e] = true;
      } else {
        close(fds_[e]);
        fds_[e] = -1;
      }
    }
  }

  ~PerfThreadCounter() override {
    for (const int fd : fds_) {
      if (fd >= 0) {
        close(fd);
      }
    }
  }

  void start() override {
    if (leader_ >= 0) {
      ioctl(leader_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
      ioctl(leader_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    }
  }

  void stop() override {
    if (leader_ >= 0) {
      ioctl(leader_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    }
  }

  [[nodiscard]] CounterSample read() override {
    if (leader_ < 0) {
      return {};
    }
    std::array<std::uint64_t, 3 + 2 * kEventCount> buf{};
    const ssize_t n = ::read(leader_, buf.data(), sizeof(buf));
    if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) {
      return {};
    }
    return decode_group_read(buf.data(), static_cast<std::size_t>(n) / sizeof(std::uint64_t),
                             ids_, opened_);
  }

 private:
  std::array<int, kEventCount> fds_{};
  std::array<std::uint64_t, kEventCount> ids_{};
  std::array<bool, kEventCount> opened_{};
  int leader_ = -1;
};

class PerfEventBackend final : public Backend {
 public:
  PerfEventBackend() {
    // Probe: can we count cycles on this thread at all? Retry excluding
    // kernel space — perf_event_paranoid=1/2 often allows user-only counting.
    for (const bool exclude_kernel : {false, true}) {
      perf_event_attr attr = make_attr(Event::kCycles, /*leader=*/true, exclude_kernel);
      const long fd = sys_perf_event_open(&attr, 0, -1, -1, 0);
      if (fd >= 0) {
        close(static_cast<int>(fd));
        available_ = true;
        exclude_kernel_ = exclude_kernel;
        return;
      }
      probe_errno_ = errno;
      if (probe_errno_ != EACCES && probe_errno_ != EPERM) {
        break;  // not a permission problem: excluding the kernel won't help
      }
    }
    const int paranoid = read_paranoid_level();
    char buf[128];
    if (probe_errno_ == EACCES || probe_errno_ == EPERM) {
      std::snprintf(buf, sizeof buf, "perf_event_open denied (errno=%d, perf_event_paranoid=%d)",
                    probe_errno_, paranoid);
    } else if (probe_errno_ == ENOENT || probe_errno_ == ENODEV ||
               probe_errno_ == EOPNOTSUPP) {
      std::snprintf(buf, sizeof buf, "no hardware PMU (errno=%d, perf_event_paranoid=%d)",
                    probe_errno_, paranoid);
    } else {
      std::snprintf(buf, sizeof buf, "perf_event_open failed (errno=%d)", probe_errno_);
    }
    reason_ = buf;
  }

  [[nodiscard]] const char* name() const noexcept override { return "perf_event"; }
  [[nodiscard]] bool available() const noexcept override { return available_; }
  [[nodiscard]] std::string unavailable_reason() const override { return reason_; }

  [[nodiscard]] std::unique_ptr<ThreadCounter> open_thread_counter() override {
    if (!available_) {
      return std::make_unique<NullThreadCounter>();
    }
    return std::make_unique<PerfThreadCounter>(exclude_kernel_);
  }

 private:
  bool available_ = false;
  bool exclude_kernel_ = false;
  int probe_errno_ = 0;
  std::string reason_;
};

}  // namespace

#endif  // defined(__linux__)

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

namespace {

std::atomic<Backend*> g_backend_override{nullptr};

Backend* probe_backend() {
#if !EVQ_PERF
  return new NullBackend("compiled out (EVQ_PERF=OFF)");
#else
  if (const char* env = std::getenv("EVQ_PERF_BACKEND");
      env != nullptr && std::string_view(env) == "null") {
    return new NullBackend("forced by EVQ_PERF_BACKEND=null");
  }
#if defined(__linux__)
  auto* backend = new PerfEventBackend();
  if (backend->available()) {
    return backend;
  }
  auto* null = new NullBackend(backend->unavailable_reason());
  delete backend;
  return null;
#else
  return new NullBackend("perf_event_open is Linux-only");
#endif
#endif
}

}  // namespace

Backend& default_backend() {
  if (Backend* o = g_backend_override.load(std::memory_order_acquire); o != nullptr) {
    return *o;
  }
  static Backend* chosen = probe_backend();  // leaked singleton, like Registry
  return *chosen;
}

void set_default_backend_for_testing(Backend* backend) {
  g_backend_override.store(backend, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

PerfAgg& PerfAgg::operator+=(const PerfAgg& other) noexcept {
  ops += other.ops;
  scopes += other.scopes;
  for (std::size_t e = 0; e < kEventCount; ++e) {
    if (other.available[e]) {
      available[e] = true;
      value[e] += other.value[e];
    }
  }
  worst_mux_scale = std::min(worst_mux_scale, other.worst_mux_scale);
  return *this;
}

void PerfAgg::add_sample(const CounterSample& delta) noexcept {
  for (std::size_t e = 0; e < kEventCount; ++e) {
    const EventSample& s = delta.events[e];
    if (s.available) {
      available[e] = true;
      value[e] += s.value;
      worst_mux_scale = std::min(worst_mux_scale, s.scale);
    }
  }
}

bool PerfAgg::any_available() const noexcept {
  for (const bool a : available) {
    if (a) {
      return true;
    }
  }
  return false;
}

double PerfAgg::per_op(Event e) const noexcept {
  if (!has(e) || ops == 0) {
    return -1.0;
  }
  return static_cast<double>(total(e)) / static_cast<double>(ops);
}

double PerfAgg::ipc() const noexcept {
  if (!has(Event::kCycles) || !has(Event::kInstructions) || total(Event::kCycles) == 0) {
    return -1.0;
  }
  return static_cast<double>(total(Event::kInstructions)) /
         static_cast<double>(total(Event::kCycles));
}

PerfAgg agg_delta(const PerfAgg& later, const PerfAgg& earlier) noexcept {
  PerfAgg d;
  d.ops = later.ops - earlier.ops;
  d.scopes = later.scopes - earlier.scopes;
  for (std::size_t e = 0; e < kEventCount; ++e) {
    if (later.available[e]) {
      d.available[e] = true;
      d.value[e] = later.value[e] - earlier.value[e];
    }
  }
  d.worst_mux_scale = later.worst_mux_scale;
  return d;
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

ThreadPerfScope::ThreadPerfScope(Backend* backend) {
#if EVQ_PERF
  Backend& b = backend != nullptr ? *backend : default_backend();
  if (b.available()) {
    counter_ = b.open_thread_counter();
    counter_->start();
    live_ = true;
  }
#else
  (void)backend;
#endif
}

ThreadPerfScope::~ThreadPerfScope() {
  if (counter_ != nullptr) {
    counter_->stop();
  }
}

bool ThreadPerfScope::live() const noexcept { return live_; }

PerfAgg ThreadPerfScope::harvest(std::uint64_t ops) {
  PerfAgg agg;
  agg.ops = ops;
  if (!live_) {
    return agg;  // dead scope: ops counted, no events available
  }
  const CounterSample cum = counter_->read();
  CounterSample delta;
  for (std::size_t e = 0; e < kEventCount; ++e) {
    const EventSample& now = cum.events[e];
    if (!now.available) {
      continue;
    }
    EventSample& d = delta.events[e];
    d.available = true;
    d.value = now.value - last_.events[e].value;
    d.raw = now.raw - last_.events[e].raw;
    d.scale = now.scale;
  }
  last_ = cum;
  agg.add_sample(delta);
  agg.scopes = 1;
  return agg;
}

// ---------------------------------------------------------------------------
// Whole-queue attribution
// ---------------------------------------------------------------------------

const PerfAgg* AttributionSnapshot::find(std::string_view queue) const noexcept {
  for (const auto& [name, agg] : queues) {
    if (name == queue) {
      return &agg;
    }
  }
  return nullptr;
}

AttributionTable& AttributionTable::global() {
  static AttributionTable table;
  return table;
}

void AttributionTable::deposit(std::string_view queue, const PerfAgg& delta) {
  if (delta.ops == 0 && delta.scopes == 0) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find(queue);
  if (it == queues_.end()) {
    it = queues_.emplace(std::string(queue), PerfAgg{}).first;
  }
  it->second += delta;
}

AttributionSnapshot AttributionTable::snapshot() const {
  AttributionSnapshot snap;
  const std::lock_guard<std::mutex> lock(mu_);
  snap.queues.reserve(queues_.size());
  for (const auto& [name, agg] : queues_) {  // std::map: already name-sorted
    snap.queues.emplace_back(name, agg);
  }
  return snap;
}

void AttributionTable::reset_for_testing() {
  const std::lock_guard<std::mutex> lock(mu_);
  queues_.clear();
}

QueuePerfScope::QueuePerfScope(std::string_view queue, Backend* backend,
                               AttributionTable* table)
    : queue_(queue),
      table_(table != nullptr ? table : &AttributionTable::global()),
      scope_(backend) {}

QueuePerfScope::~QueuePerfScope() { flush(); }

void QueuePerfScope::flush() {
  if (!scope_.live()) {
    pending_ops_ = 0;  // degraded: drop silently; the exporter reports why
    return;
  }
  const PerfAgg agg = scope_.harvest(pending_ops_);
  pending_ops_ = 0;
  table_->deposit(queue_, agg);
}

// ---------------------------------------------------------------------------
// Prometheus exporter
// ---------------------------------------------------------------------------

void render_prometheus_perf(std::ostream& os, const AttributionSnapshot& snap,
                            const Backend* backend) {
  if (backend != nullptr) {
    os << "# HELP evq_perf_backend_available Hardware perf backend status (1 = counting).\n";
    os << "# TYPE evq_perf_backend_available gauge\n";
    os << "evq_perf_backend_available{backend=\"" << backend->name() << "\",reason=\""
       << telemetry::escape_label_value(backend->unavailable_reason()) << "\"} "
       << (backend->available() ? 1 : 0) << "\n";
  }
  os << "# HELP evq_perf_ops Queue operations attributed to whole-queue perf scopes.\n";
  os << "# TYPE evq_perf_ops counter\n";
  for (const auto& [name, agg] : snap.queues) {
    os << "evq_perf_ops{queue=\"" << telemetry::escape_label_value(name) << "\"} " << agg.ops
       << "\n";
  }
  os << "# HELP evq_perf_per_op Multiplex-corrected hardware events per queue operation.\n";
  os << "# TYPE evq_perf_per_op gauge\n";
  for (const auto& [name, agg] : snap.queues) {
    const std::string label = telemetry::escape_label_value(name);
    for (std::size_t e = 0; e < kEventCount; ++e) {
      const double v = agg.per_op(static_cast<Event>(e));
      if (v >= 0.0) {
        os << "evq_perf_per_op{queue=\"" << label << "\",event=\""
           << event_name(static_cast<Event>(e)) << "\"} " << fmt(v) << "\n";
      }
    }
  }
  os << "# HELP evq_perf_ipc Instructions retired per cycle.\n";
  os << "# TYPE evq_perf_ipc gauge\n";
  for (const auto& [name, agg] : snap.queues) {
    if (const double ipc = agg.ipc(); ipc >= 0.0) {
      os << "evq_perf_ipc{queue=\"" << telemetry::escape_label_value(name) << "\"} "
         << fmt(ipc) << "\n";
    }
  }
  os << "# HELP evq_perf_mux_scale Worst multiplexing duty cycle seen (1 = true counts).\n";
  os << "# TYPE evq_perf_mux_scale gauge\n";
  for (const auto& [name, agg] : snap.queues) {
    if (agg.any_available()) {
      os << "evq_perf_mux_scale{queue=\"" << telemetry::escape_label_value(name) << "\"} "
         << fmt(agg.worst_mux_scale) << "\n";
    }
  }
}

}  // namespace evq::perf
