// Type-erased queue interface for the benchmark harness and cross-algorithm
// tests.
//
// Every queue in the study — both paper algorithms and all baselines — is
// wrapped behind AnyQueue/AnyHandle so the workload driver, the conformance
// test suite and the figure benches are written once. The payload is the
// harness's Payload struct; following the paper's workload, payloads are
// heap-allocated immediately before each enqueue and freed after each
// dequeue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "evq/core/queue_traits.hpp"

namespace evq::harness {

/// What the benchmark enqueues: a small heap node, as in the paper's
/// "a node allocation immediately precedes each enqueue operation".
struct alignas(8) Payload {
  std::uint64_t value = 0;
  Payload* free_next = nullptr;  // pool linkage for allocation-free tests
};

/// Per-thread handle, type-erased.
class AnyHandle {
 public:
  virtual ~AnyHandle() = default;
  virtual bool try_push(Payload* p) = 0;
  virtual Payload* try_pop() = 0;

  /// Batch entry points. Queues with native batch support (BatchPtrQueue)
  /// override these with a single amortized call; for everything else the
  /// defaults degrade to an op-by-op loop with the same maximal-prefix
  /// semantics, so harness code can always use the batch form.
  virtual std::size_t try_push_n(Payload* const* in, std::size_t count) {
    std::size_t done = 0;
    while (done < count && try_push(in[done])) {
      ++done;
    }
    return done;
  }
  virtual std::size_t try_pop_n(Payload** out, std::size_t count) {
    std::size_t done = 0;
    while (done < count) {
      Payload* p = try_pop();
      if (p == nullptr) {
        break;
      }
      out[done++] = p;
    }
    return done;
  }
};

/// A queue instance, type-erased. handle() is called once per worker thread.
class AnyQueue {
 public:
  virtual ~AnyQueue() = default;
  [[nodiscard]] virtual std::unique_ptr<AnyHandle> handle() = 0;
};

/// Adapter from any ConcurrentPtrQueue<Payload> to AnyQueue.
template <ConcurrentPtrQueue Q>
  requires std::same_as<typename Q::value_type, Payload>
class QueueAdapter final : public AnyQueue {
 public:
  template <typename... Args>
  explicit QueueAdapter(Args&&... args) : queue_(std::forward<Args>(args)...) {}

  [[nodiscard]] std::unique_ptr<AnyHandle> handle() override {
    return std::make_unique<HandleAdapter>(queue_);
  }

  [[nodiscard]] Q& underlying() noexcept { return queue_; }

 private:
  class HandleAdapter final : public AnyHandle {
   public:
    explicit HandleAdapter(Q& q) : queue_(q), handle_(q.handle()) {}
    bool try_push(Payload* p) override { return queue_.try_push(handle_, p); }
    Payload* try_pop() override { return queue_.try_pop(handle_); }

    std::size_t try_push_n(Payload* const* in, std::size_t count) override {
      if constexpr (BatchPtrQueue<Q>) {
        return queue_.try_push_n(handle_, in, count);
      } else {
        return AnyHandle::try_push_n(in, count);
      }
    }
    std::size_t try_pop_n(Payload** out, std::size_t count) override {
      if constexpr (BatchPtrQueue<Q>) {
        return queue_.try_pop_n(handle_, out, count);
      } else {
        return AnyHandle::try_pop_n(out, count);
      }
    }

   private:
    Q& queue_;
    typename Q::Handle handle_;
  };

  Q queue_;
};

}  // namespace evq::harness
