// Named factories for every queue implementation in the study.
//
// Names follow the labels of the paper's Fig. 6 so benchmark output maps
// directly onto the figures:
//
//   fifo-llsc          "FIFO Array LL/SC" (Algorithm 1 over the single-word
//                      packed emulation — plain-load LL, the cost analog of
//                      real lwarx/stwcx)
//   fifo-llsc-versioned Algorithm 1 over the {value,version} DWCAS emulation
//                      (exact Fig. 2 semantics, but LL costs a cmpxchg16b)
//   fifo-simcas        "FIFO Array Simulated CAS" (Algorithm 2)
//   ms-hp              "MS-Hazard Pointers Not Sorted"
//   ms-hp-sorted       "MS-Hazard Pointers Sorted"
//   ms-doherty         "MS-Doherty et al." (MS over CAS-simulated LL/SC)
//   shann              "Shann et al. (CAS64)" (double-width-CAS array queue)
//   ms-pool            MS with free-pool reclamation (related-work scheme)
//   ms-ebr             MS with epoch-based reclamation (the related-work
//                      "assume a garbage collector" option, approximated)
//   tsigas-zhang       Tsigas-Zhang two-null array queue (assumption-bound)
//   mutex              blocking baseline
//   unsync             single-thread unsynchronized ring (overhead baseline)
//   fifo-llsc-backoff  Algorithm 1 with exponential backoff in retry loops
//   fifo-simcas-backoff Algorithm 2 with exponential backoff in retry loops
//   sharded-llsc       4-shard ShardedQueue over Algorithm 1 (not per-
//                      producer FIFO under MPMC; see core/sharded_queue.hpp)
//   sharded-simcas     4-shard ShardedQueue over Algorithm 2 (ditto)
//   scq                SCQ FAA ring (Nikolaev, arXiv:1908.04511)
//   scq-backoff        SCQ with exponential backoff in retry loops
//   sharded-scq        4-shard ShardedQueue over SCQ
//   seg-cas            SegmentedQueue over Algorithm 2 segments (LCRQ-style
//                      unbounded; `capacity` sizes each segment)
//   seg-scq            SegmentedQueue over SCQ segments (LSCQ-style)
//   sharded-seg-scq    4-shard ShardedQueue over seg-scq (unbounded AND not
//                      per-producer FIFO)
//   comb-cas           CombiningQueue facade over Algorithm 2 (flat-combining
//                      announce records; see core/combining_queue.hpp)
//   comb-scq           CombiningQueue facade over the SCQ FAA ring
//   sharded-comb-scq   4-shard ShardedQueue over comb-scq (not per-producer
//                      FIFO)
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "evq/harness/any_queue.hpp"

namespace evq::harness {

/// capacity applies to bounded (array-based) queues and is ignored by the
/// link-based ones.
using QueueFactory = std::function<std::unique_ptr<AnyQueue>(std::size_t capacity)>;

struct QueueSpec {
  std::string name;        // registry key (also CLI token)
  std::string paper_label; // label used in the paper's Fig. 6, if any
  bool bounded = false;    // array-based: respects `capacity`
  bool concurrent = true;  // false only for the unsynchronized ring
  bool fifo = true;        // per-producer FIFO under MPMC (sharded queues
                           // trade this for scalability; checkers skip the
                           // order assertion when false)
  QueueFactory make;
};

/// All registered queue implementations, in presentation order.
const std::vector<QueueSpec>& all_queues();

/// Lookup by registry name; aborts with a message listing valid names if
/// `name` is unknown.
const QueueSpec& find_queue(const std::string& name);

}  // namespace evq::harness
