// Declarative experiment scenarios for the unified evq-bench driver.
//
// Each reproduced figure, in-text table, ablation and extension experiment
// is a ScenarioSpec registered the same way queue_registry registers queues:
// a name, the sweep grid (rows), the algorithm series (columns), and
// presentation callbacks — a human table with the paper-claim commentary and
// a CSV printer byte-compatible with the pre-refactor per-figure binaries.
// One driver (bench/evq_bench.cpp) runs any subset and can additionally emit
// the versioned JSON document (bench_json.hpp) with throughput, latency
// percentiles and op_stats counters per cell.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "evq/common/op_stats.hpp"
#include "evq/harness/cli.hpp"
#include "evq/harness/queue_registry.hpp"
#include "evq/harness/stats.hpp"
#include "evq/harness/workload.hpp"
#include "evq/health/health.hpp"
#include "evq/telemetry/prometheus.hpp"

namespace evq::harness {

/// Measurements for one (series, row) cell.
struct CellStats {
  Summary time;                 // seconds per run (paper metric)
  double throughput = 0.0;      // completed ops / wall second, aggregate
  std::uint64_t total_ops = 0;  // completed ops across all runs
  LogHistogram latency;         // sampled per-op latency (ns); empty when off
  stats::OpCounters ops{};      // aggregate counters (op_stats mode / op-profile)
  bool has_ops = false;
  perf::PerfAgg perf{};         // hardware-counter totals (--perf)
  bool has_perf = false;        // true only when at least one event counted
};

/// One column: an algorithm (or configuration) across every row.
struct ScenarioSeries {
  std::string name;
  std::string label;
  std::vector<CellStats> cells;  // parallel to ScenarioResult::rows
};

/// One row of the sweep grid, with the fully-resolved workload parameters
/// that produced it (recorded into the JSON document).
struct ScenarioRow {
  std::string label;      // e.g. "4" (threads axis) or "25,4" (bias,threads)
  WorkloadParams params;
};

/// Health-monitor digest of a scenario run (--health): the Monitor is
/// pumped once per (series, row) cell plus a final poll, and the digest
/// keeps the final rates, the findings still active at the end, and how
/// many polls each finding type spent active — the number the CI overhead
/// gate and bench_diff.py compare across runs.
struct ScenarioHealth {
  bool enabled = false;
  std::uint64_t polls = 0;
  std::vector<health::QueueRates> queues;  // final poll, nonzero-ops entries
  std::vector<health::Finding> findings;   // active at scenario end
  std::array<std::uint64_t, health::kFindingTypeCount> finding_polls{};
};

/// Backend record of a --perf run. Always present when perf was requested —
/// a degraded host reports backend "null" with the denial reason instead of
/// silently omitting the section (the degradation tests pin this).
struct ScenarioPerf {
  bool enabled = false;
  std::string backend;  // "perf_event", "mock" or "null"
  bool available = false;
  std::string reason;   // why counting is off; empty when available
};

struct ScenarioResult {
  std::string name;
  std::string title;
  std::string axis;  // row-label column header ("threads", "capacity", ...)
  std::vector<ScenarioRow> rows;
  std::vector<ScenarioSeries> series;
  /// Per-queue telemetry counter deltas accumulated over the whole scenario
  /// (only entries with at least one nonzero counter; populated when the
  /// scenario runs with --telemetry).
  std::vector<telemetry::QueueCounters> telemetry;
  /// Populated when the scenario runs with --health.
  ScenarioHealth health;
  /// Populated when the scenario runs with --perf.
  ScenarioPerf perf;

  [[nodiscard]] const ScenarioSeries* series_named(const std::string& name) const;
};

struct ScenarioSpec {
  std::string name;     // registry key (also CLI token)
  std::string title;    // heading printed above the table
  std::string summary;  // one-liner for `evq-bench list`
  std::string axis = "threads";

  // CI-scale defaults (the pre-refactor binaries' argument-free behavior).
  std::vector<unsigned> default_threads;
  std::uint64_t default_iters = 5000;
  unsigned default_runs = 3;

  /// Builds the fully-resolved sweep grid from the scenario's options.
  std::function<std::vector<ScenarioRow>(const CliOptions&)> rows;
  /// The algorithm series. Usually registry lookups; ablations build
  /// non-registry specs (weak LL/SC, HP threshold sweeps) here.
  std::function<std::vector<QueueSpec>()> series;
  /// Optional custom runner for scenarios that do not fit the rows x series
  /// workload sweep (the op-profile instruction-count tables). When set, it
  /// fully replaces the default sweep.
  std::function<ScenarioResult(const ScenarioSpec&, const CliOptions&)> run;
  /// Human-readable output: table plus paper-claim postprocessing.
  std::function<void(const ScenarioResult&, const CliOptions&)> print_table;
  /// Legacy CSV output, byte-compatible with the pre-refactor binary.
  std::function<void(const ScenarioResult&, const CliOptions&)> print_csv;
};

/// All registered scenarios, in presentation order.
const std::vector<ScenarioSpec>& all_scenarios();

/// Lookup by name; aborts with a message listing valid names if unknown.
const ScenarioSpec& find_scenario(const std::string& name);

/// Scenario defaults + user overrides = the options the scenario runs with.
CliOptions scenario_options(const ScenarioSpec& spec, const CliOverrides& overrides);

/// Runs the scenario (default sweep or its custom runner). Progress notes go
/// to stderr so stdout stays a clean table/CSV.
ScenarioResult run_scenario(const ScenarioSpec& spec, const CliOptions& opts);

/// Dispatches to print_csv or print_table according to opts.csv.
void print_scenario(const ScenarioSpec& spec, const ScenarioResult& result,
                    const CliOptions& opts);

// ---------------------------------------------------------------------------
// Shared helpers for scenario definitions (also used by tests).
// ---------------------------------------------------------------------------

/// One row per opts.thread_counts entry — the standard Fig. 6 sweep.
std::vector<ScenarioRow> thread_rows(const CliOptions& opts);

/// A series() callback resolving registry names.
std::function<std::vector<QueueSpec>()> registry_series(std::vector<std::string> names);

/// Prints absolute times (seconds), one row per sweep point — Fig. 6a/6b
/// shape; byte-compatible with the pre-refactor print_absolute.
void print_absolute(const ScenarioResult& result, const CliOptions& opts,
                    const std::string& title);

/// Prints times normalized to `baseline_name` — Fig. 6c/6d shape ("The basis
/// of normalization was chosen to be our CAS-based implementation").
void print_normalized(const ScenarioResult& result, const CliOptions& opts,
                      const std::string& title, const std::string& baseline_name);

}  // namespace evq::harness
