// Cheap per-op timestamps for sampled latency recording.
//
// The workload layer samples individual operation latencies at a configured
// rate; a std::chrono call per sampled op would be acceptable, but rdtsc is
// ~5x cheaper and monotonic-enough across the short intervals we measure
// (one queue operation including its retry/backoff loop). On x86-64 the
// counter is the invariant TSC, calibrated once per process against
// steady_clock; elsewhere we fall back to steady_clock nanoseconds with a
// 1:1 tick ratio.
#pragma once

#include <chrono>
#include <cstdint>

#include "evq/common/config.hpp"

#if EVQ_ARCH_X86_64
#include <x86intrin.h>
#endif

namespace evq::harness {

/// Raw timestamp in ticks (TSC cycles on x86-64, nanoseconds elsewhere).
inline std::uint64_t tsc_now() noexcept {
#if EVQ_ARCH_X86_64
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

namespace detail {

inline double calibrate_ns_per_tick() noexcept {
#if EVQ_ARCH_X86_64
  // One short spin against steady_clock; ~2ms keeps process startup cheap
  // while bounding the calibration error well below the histogram's ~6%
  // bucket quantization.
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t c0 = tsc_now();
  for (;;) {
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t c1 = tsc_now();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    if (ns >= 2'000'000 && c1 > c0) {
      return static_cast<double>(ns) / static_cast<double>(c1 - c0);
    }
  }
#else
  return 1.0;
#endif
}

}  // namespace detail

/// Nanoseconds per tick (1.0 on the steady_clock fallback). Calibrated once;
/// thread-safe via static initialization.
inline double tsc_ns_per_tick() noexcept {
  static const double ns_per_tick = detail::calibrate_ns_per_tick();
  return ns_per_tick;
}

/// Converts a tick delta to nanoseconds.
inline std::uint64_t tsc_to_ns(std::uint64_t ticks) noexcept {
  return static_cast<std::uint64_t>(static_cast<double>(ticks) * tsc_ns_per_tick());
}

}  // namespace evq::harness
