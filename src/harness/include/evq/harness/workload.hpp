// The paper's synthetic benchmark workload (Sec. 6).
//
// "Each thread performs [N] iterations consisting of a series of 5 enqueue
//  operations followed by 5 dequeue operations. A node allocation
//  immediately precedes each enqueue operation, and each dequeued node is
//  freed. We synchronized the threads so that none can begin its iterations
//  before all others finished their initialization phase. We report the
//  average of [R] runs where each run is the mean time needed to complete
//  the thread's iterations."
//
// Full/empty handling: a full queue makes the pusher spin (bounded backoff)
// until space appears, and an empty queue makes the popper spin until an
// item appears. The workload is deadlock-free provided the queue holds
// burst x threads items (each thread has at most `burst` un-popped pushes
// outstanding); run_workload enforces that precondition.
//
// Beyond the paper-fidelity mean-time metric, every run also records wall
// time and completed-op counts (throughput = total ops / wall time), and can
// optionally sample per-op latencies (every Nth op per thread, rdtsc
// timestamps into per-thread log-scale histograms — see stats.hpp) and
// aggregate op_stats atomic-instruction counters. Both extras are off by
// default so the paper's metric is unperturbed.
#pragma once

#include <cstdint>
#include <vector>

#include "evq/common/op_stats.hpp"
#include "evq/harness/any_queue.hpp"
#include "evq/harness/queue_registry.hpp"
#include "evq/harness/stats.hpp"
#include "evq/perf/perf.hpp"

namespace evq::harness {

/// Operation mix per iteration.
enum class WorkloadPattern {
  kPaperBurst,   // the paper's: `burst` enqueues then `burst` dequeues
  kRandomMixed,  // randomized push/pop per step, balance-bounded by `burst`
};

struct WorkloadParams {
  unsigned threads = 1;
  std::uint64_t iterations = 100000;  // paper: 100000
  unsigned burst = 5;                 // paper: 5 enqueues then 5 dequeues
  unsigned runs = 50;                 // paper: 50
  std::size_t capacity = 0;           // 0 = auto (2 x burst x threads, >= 256)
  WorkloadPattern pattern = WorkloadPattern::kPaperBurst;
  unsigned push_bias_pct = 50;        // kRandomMixed: P(step is a push)
  std::uint64_t seed = 42;            // kRandomMixed: per-thread stream base

  // Measurement extras (all off by default: paper-fidelity mode).
  unsigned latency_sample_every = 0;  // 0 = off; else time every Nth op per thread
  double stable_cv = 0.0;             // >0: repeat runs until per-run CV <= this
  unsigned max_runs = 0;              // adaptive cap; 0 = 4 x runs
  bool record_op_stats = false;       // aggregate OpCounters over all workers
  bool record_perf = false;           // hardware counters per worker (evq::perf)
};

/// One run's raw measurements.
struct RunResult {
  double thread_seconds = 0.0;  // mean per-thread completion time (paper metric)
  double wall_seconds = 0.0;    // makespan: first worker start to last finish
  std::uint64_t total_ops = 0;  // pushes + pops completed across all threads
};

/// Full experiment result for one (queue, params) cell.
struct WorkloadResult {
  std::vector<RunResult> runs;
  LogHistogram latency;         // merged sampled per-op latencies (ns); empty when off
  stats::OpCounters ops{};      // aggregate counters; all-zero unless record_op_stats
  perf::PerfAgg perf{};         // hardware-counter totals; empty unless record_perf

  /// The paper's per-run time series (thread_seconds of each run).
  [[nodiscard]] std::vector<double> times() const;
  /// Aggregate throughput: total completed ops / total wall time.
  [[nodiscard]] double throughput_ops_per_sec() const;
  [[nodiscard]] std::uint64_t total_ops() const;
};

/// Capacity actually used for bounded queues under `p` (auto rule above).
std::size_t effective_capacity(const WorkloadParams& p);

/// One run: builds nothing (operates on an existing queue), spawns
/// p.threads workers, synchronizes their start, and returns the mean
/// per-thread completion time in seconds (the paper's per-run metric).
double run_once(AnyQueue& queue, const WorkloadParams& p);

/// One run with full measurements. `latency` (may be null) receives sampled
/// per-op latencies when p.latency_sample_every > 0; `ops` (may be null)
/// receives aggregated counters when p.record_op_stats; `perf` (may be null)
/// accumulates each worker's hardware-counter harvest when p.record_perf
/// (one perf::ThreadPerfScope per worker around its whole measured region,
/// including the start barrier — amortized over the run, see DESIGN.md §16).
RunResult run_once_ex(AnyQueue& queue, const WorkloadParams& p, LogHistogram* latency,
                      stats::OpCounters* ops, perf::PerfAgg* perf = nullptr);

/// Full experiment for one algorithm: constructs a fresh queue per run via
/// `spec` and returns the p.runs per-run times in seconds.
std::vector<double> run_workload(const QueueSpec& spec, const WorkloadParams& p);

/// Full experiment with throughput/latency/op-stats measurements and the
/// CV-based adaptive repetition rule (p.stable_cv / p.max_runs).
WorkloadResult run_workload_ex(const QueueSpec& spec, const WorkloadParams& p);

}  // namespace evq::harness
