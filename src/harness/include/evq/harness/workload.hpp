// The paper's synthetic benchmark workload (Sec. 6).
//
// "Each thread performs [N] iterations consisting of a series of 5 enqueue
//  operations followed by 5 dequeue operations. A node allocation
//  immediately precedes each enqueue operation, and each dequeued node is
//  freed. We synchronized the threads so that none can begin its iterations
//  before all others finished their initialization phase. We report the
//  average of [R] runs where each run is the mean time needed to complete
//  the thread's iterations."
//
// Full/empty handling: a full queue makes the pusher spin (bounded backoff)
// until space appears, and an empty queue makes the popper spin until an
// item appears. The workload is deadlock-free provided the queue holds
// burst x threads items (each thread has at most `burst` un-popped pushes
// outstanding); run_workload enforces that precondition.
#pragma once

#include <cstdint>
#include <vector>

#include "evq/harness/any_queue.hpp"
#include "evq/harness/queue_registry.hpp"

namespace evq::harness {

/// Operation mix per iteration.
enum class WorkloadPattern {
  kPaperBurst,   // the paper's: `burst` enqueues then `burst` dequeues
  kRandomMixed,  // randomized push/pop per step, balance-bounded by `burst`
};

struct WorkloadParams {
  unsigned threads = 1;
  std::uint64_t iterations = 100000;  // paper: 100000
  unsigned burst = 5;                 // paper: 5 enqueues then 5 dequeues
  unsigned runs = 50;                 // paper: 50
  std::size_t capacity = 0;           // 0 = auto (2 x burst x threads, >= 256)
  WorkloadPattern pattern = WorkloadPattern::kPaperBurst;
  unsigned push_bias_pct = 50;        // kRandomMixed: P(step is a push)
  std::uint64_t seed = 42;            // kRandomMixed: per-thread stream base
};

/// Capacity actually used for bounded queues under `p` (auto rule above).
std::size_t effective_capacity(const WorkloadParams& p);

/// One run: builds nothing (operates on an existing queue), spawns
/// p.threads workers, synchronizes their start, and returns the mean
/// per-thread completion time in seconds (the paper's per-run metric).
double run_once(AnyQueue& queue, const WorkloadParams& p);

/// Full experiment for one algorithm: constructs a fresh queue per run via
/// `spec` and returns the p.runs per-run times in seconds.
std::vector<double> run_workload(const QueueSpec& spec, const WorkloadParams& p);

}  // namespace evq::harness
