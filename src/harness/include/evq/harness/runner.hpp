// Figure-style experiment runner: sweeps thread counts over a set of
// algorithms and prints the same rows/series the paper's Fig. 6 plots.
#pragma once

#include <string>
#include <vector>

#include "evq/harness/cli.hpp"
#include "evq/harness/stats.hpp"

namespace evq::harness {

struct SeriesResult {
  std::string name;               // registry name
  std::string label;              // paper label
  std::vector<Summary> by_threads;  // parallel to the runner's thread_counts
};

struct FigureResult {
  std::vector<unsigned> thread_counts;
  std::vector<SeriesResult> series;
};

/// Runs the workload for every algorithm in `names` at every thread count.
/// Progress notes go to stderr so stdout stays a clean table/CSV.
FigureResult run_figure(const std::vector<std::string>& names, const CliOptions& opts);

/// Prints absolute times (seconds), one row per thread count — Fig. 6a/6b
/// shape.
void print_absolute(const FigureResult& fig, const CliOptions& opts, const std::string& title);

/// Prints times normalized to `baseline_name` — Fig. 6c/6d shape ("The basis
/// of normalization was chosen to be our CAS-based implementation").
void print_normalized(const FigureResult& fig, const CliOptions& opts, const std::string& title,
                      const std::string& baseline_name);

}  // namespace evq::harness
