// Minimal streaming JSON writer for the bench document (bench_json.hpp).
//
// Deliberately tiny — the repo has no JSON dependency and the bench document
// only needs objects, arrays, strings and numbers. Output is deterministic:
// keys are emitted in call order and numbers are formatted with
// std::to_chars (shortest round-trip), so equal documents are equal strings
// and the golden-file test can pin the schema byte-for-byte.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "evq/common/config.hpp"

namespace evq::harness {

class JsonWriter {
 public:
  void begin_object() {
    comma();
    out_ += '{';
    stack_.push_back(false);
  }
  void end_object() {
    pop();
    out_ += '}';
  }
  void begin_array() {
    comma();
    out_ += '[';
    stack_.push_back(false);
  }
  void end_array() {
    pop();
    out_ += ']';
  }

  /// Emits `"name":`; the next value call supplies the member value.
  void key(std::string_view name) {
    comma();
    quote(name);
    out_ += ':';
    pending_key_ = true;
  }

  void string(std::string_view v) {
    comma();
    quote(v);
  }
  void boolean(bool v) {
    comma();
    out_ += v ? "true" : "false";
  }
  void number(std::uint64_t v) { number_impl(v); }
  void number(std::int64_t v) { number_impl(v); }
  void number(unsigned v) { number_impl(static_cast<std::uint64_t>(v)); }
  void number(int v) { number_impl(static_cast<std::int64_t>(v)); }
  void number(double v) { number_impl(v); }

  // key/value in one call, for the common case.
  void member(std::string_view name, std::string_view v) {
    key(name);
    string(v);
  }
  void member(std::string_view name, const char* v) {
    key(name);
    string(v);
  }
  template <typename N>
    requires std::is_arithmetic_v<N>
  void member(std::string_view name, N v) {
    key(name);
    number(v);
  }

  [[nodiscard]] const std::string& str() const {
    EVQ_CHECK(stack_.empty(), "unbalanced JSON document");
    return out_;
  }

 private:
  /// Emits the separating comma unless this value is an object/array's first
  /// element or the value belonging to a just-written key.
  void comma() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) {
        out_ += ',';
      }
      stack_.back() = true;
    }
  }

  void pop() {
    EVQ_CHECK(!stack_.empty() && !pending_key_, "unbalanced JSON container");
    stack_.pop_back();
    if (!stack_.empty()) {
      stack_.back() = true;
    }
  }

  template <typename N>
  void number_impl(N v) {
    comma();
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    EVQ_CHECK(ec == std::errc{}, "number formatting failed");
    out_.append(buf, ptr);
  }

  void quote(std::string_view v) {
    out_ += '"';
    for (const char c : v) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        case '\r':
          out_ += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> stack_;  // per open container: "already has an element"
  bool pending_key_ = false;
};

}  // namespace evq::harness
