// Summary statistics over repeated benchmark runs.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "evq/common/config.hpp"

namespace evq::harness {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  std::size_t n = 0;
};

/// Computes mean/stddev (sample, n-1)/min/max/median of `samples`.
inline Summary summarize(std::vector<double> samples) {
  EVQ_CHECK(!samples.empty(), "cannot summarize zero samples");
  Summary s;
  s.n = samples.size();
  double sum = 0.0;
  s.min = samples.front();
  s.max = samples.front();
  for (double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double ss = 0.0;
    for (double v : samples) {
      ss += (v - s.mean) * (v - s.mean);
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = s.n / 2;
  s.median = (s.n % 2 == 1) ? samples[mid] : 0.5 * (samples[mid - 1] + samples[mid]);
  return s;
}

}  // namespace evq::harness
