// Summary statistics over repeated benchmark runs, plus the latency
// substrate of the unified evq-bench driver: a mergeable fixed-bucket
// log-scale histogram (percentile summaries over sampled per-op latencies)
// and a coefficient-of-variation stop rule so runs can adaptively repeat
// until the per-run time series is stable.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "evq/common/config.hpp"

namespace evq::harness {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  std::size_t n = 0;

  /// Coefficient of variation (stddev / mean); 0 when the mean is not
  /// positive (degenerate or empty sample sets).
  [[nodiscard]] double cv() const noexcept { return mean > 0.0 ? stddev / mean : 0.0; }
};

/// Computes mean/stddev (sample, n-1)/min/max/median of `samples`.
inline Summary summarize(std::vector<double> samples) {
  EVQ_CHECK(!samples.empty(), "cannot summarize zero samples");
  Summary s;
  s.n = samples.size();
  double sum = 0.0;
  s.min = samples.front();
  s.max = samples.front();
  for (double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double ss = 0.0;
    for (double v : samples) {
      ss += (v - s.mean) * (v - s.mean);
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = s.n / 2;
  s.median = (s.n % 2 == 1) ? samples[mid] : 0.5 * (samples[mid - 1] + samples[mid]);
  return s;
}

/// Fixed-bucket log-scale histogram over non-negative 64-bit values
/// (nanoseconds in the workload layer). HdrHistogram-style layout: values
/// below 2^kSubBucketBits are recorded exactly; every higher octave is split
/// into 2^kSubBucketBits sub-buckets, bounding the relative quantization
/// error at 1/2^kSubBucketBits (~6%). The bucket array is a plain value
/// member, so histograms copy, and merging is element-wise addition —
/// associative and commutative, which lets per-thread recorders merge into
/// per-run and per-experiment aggregates in any order.
class LogHistogram {
 public:
  static constexpr unsigned kSubBucketBits = 4;
  static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;
  static constexpr std::size_t kBucketCount =
      kSubBuckets + (64 - kSubBucketBits) * static_cast<std::size_t>(kSubBuckets);

  void record(std::uint64_t value) noexcept { record_n(value, 1); }

  void record_n(std::uint64_t value, std::uint64_t weight) noexcept {
    if (weight == 0) {
      return;
    }
    counts_[index_of(value)] += weight;
    count_ += weight;
    sum_ += value * weight;
    min_ = count_ == weight ? value : std::min(min_, value);
    max_ = std::max(max_, value);
  }

  void merge(const LogHistogram& other) noexcept {
    if (other.count_ == 0) {
      return;
    }
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      counts_[i] += other.counts_[i];
    }
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at percentile `pct` in [0, 100]: the representative (bucket
  /// midpoint; exact below 2^kSubBucketBits) of the bucket holding the
  /// pct-th ranked recording. 0 when the histogram is empty.
  [[nodiscard]] std::uint64_t value_at_percentile(double pct) const noexcept {
    if (count_ == 0) {
      return 0;
    }
    pct = std::clamp(pct, 0.0, 100.0);
    const double want = pct / 100.0 * static_cast<double>(count_);
    std::uint64_t target = static_cast<std::uint64_t>(std::ceil(want));
    target = std::max<std::uint64_t>(1, std::min(target, count_));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      cumulative += counts_[i];
      if (cumulative >= target) {
        return std::min(representative(i), max_);
      }
    }
    return max_;  // unreachable: cumulative == count_ at the last bucket
  }

  [[nodiscard]] std::uint64_t p50() const noexcept { return value_at_percentile(50.0); }
  [[nodiscard]] std::uint64_t p90() const noexcept { return value_at_percentile(90.0); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return value_at_percentile(99.0); }
  [[nodiscard]] std::uint64_t p999() const noexcept { return value_at_percentile(99.9); }

  bool operator==(const LogHistogram& other) const noexcept {
    return count_ == other.count_ && sum_ == other.sum_ && min() == other.min() &&
           max_ == other.max_ && counts_ == other.counts_;
  }

 private:
  static std::size_t index_of(std::uint64_t v) noexcept {
    if (v < kSubBuckets) {
      return static_cast<std::size_t>(v);
    }
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const std::uint64_t sub = (v >> (msb - kSubBucketBits)) & (kSubBuckets - 1);
    return kSubBuckets + static_cast<std::size_t>(msb - kSubBucketBits) * kSubBuckets +
           static_cast<std::size_t>(sub);
  }

  /// Midpoint of bucket `idx`'s value range (exact for the direct buckets).
  static std::uint64_t representative(std::size_t idx) noexcept {
    if (idx < kSubBuckets) {
      return idx;
    }
    const std::size_t octave = (idx - kSubBuckets) / kSubBuckets;
    const std::uint64_t sub = (idx - kSubBuckets) % kSubBuckets;
    const unsigned shift = static_cast<unsigned>(octave);  // msb - kSubBucketBits
    const std::uint64_t lower = (static_cast<std::uint64_t>(kSubBuckets) + sub) << shift;
    const std::uint64_t width = std::uint64_t{1} << shift;
    return lower + width / 2;
  }

  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Adaptive-repetition stop rule: keep collecting per-run samples until the
/// coefficient of variation falls to `cv_target`, bounded by [min_runs,
/// max_runs]. A non-positive cv_target disables adaptation (stop exactly at
/// min_runs — the paper-faithful fixed run count).
struct StopRule {
  double cv_target = 0.0;
  unsigned min_runs = 1;
  unsigned max_runs = 0;  // 0 = 4 x min_runs

  [[nodiscard]] unsigned effective_max() const noexcept {
    return max_runs != 0 ? std::max(max_runs, min_runs) : 4 * std::max(1u, min_runs);
  }
};

/// True when sampling should stop under `rule` given the samples so far.
inline bool stop_sampling(const std::vector<double>& samples, const StopRule& rule) {
  const unsigned n = static_cast<unsigned>(samples.size());
  if (n < std::max(1u, rule.min_runs)) {
    return false;
  }
  if (rule.cv_target <= 0.0) {
    return true;
  }
  if (n >= rule.effective_max()) {
    return true;
  }
  return n >= 2 && summarize(samples).cv() <= rule.cv_target;
}

}  // namespace evq::harness
