// The versioned JSON perf document emitted by `evq-bench ... --json`.
//
// Schema (kBenchJsonSchemaVersion — bump when changing ANY key or shape;
// tests/scenario_test.cpp pins the layout with a golden file):
//
//   {
//     "schema_version": 2,
//     "generator": "evq-bench",
//     "timestamp": "...",              // omitted when empty (deterministic runs)
//     "host": { "hardware_concurrency", "compiler", "build" },
//     "scenarios": [ {
//       "name", "title", "axis",
//       "rows": [ { "label", "threads", "iterations", "runs", "burst",
//                   "capacity", "pattern", "push_bias_pct",
//                   "latency_sample_every", "stable_cv", "max_runs" } ],
//       "series": [ { "name", "label", "cells": [ {
//         "mean_seconds", "stddev_seconds", "median_seconds", "min_seconds",
//         "max_seconds", "cv", "runs_executed",
//         "throughput_ops_per_sec", "total_ops",
//         "latency_ns": { "count", "min", "max", "mean",
//                         "p50", "p90", "p99", "p999" },   // when sampled
//         "op_counters": { ... },                          // when recorded
//         "perf": { "ops", "cycles_per_op", "instructions_per_op", "ipc",
//                   "l1d_miss_per_op", "llc_miss_per_op",
//                   "branch_miss_per_op", "ctx_switches",
//                   "mux_scale" }      // --perf on a counting host; per-op
//                                      // keys appear only for events the
//                                      // host's PMU actually provided
//       } ] } ],
//       "telemetry": [ { "queue", "counters": { ... },      // when --telemetry
//                        "depth" } ],                       // gauge, if any
//       "health": { ... },                                  // when --health
//       "perf": { "backend", "available", "reason" }        // when --perf —
//                                      // ALWAYS present then, so a degraded
//                                      // host is an explicit record, not a
//                                      // missing section
//     } ]
//   }
//
// v1 -> v2: the per-cell and per-scenario "perf" sections (ISSUE 10). The
// sections are structurally additive, but the version was bumped anyway so
// trajectory tooling can distinguish "no perf support" (v1 baseline) from
// "perf off" (v2 without the section); scripts/bench_diff.py accepts both
// versions and joins them cleanly.
//
// The optional "telemetry"/"health" sections and the hp_* keys inside
// op_counters remain additive optional keys within a version.
//
// rows[i] and every series' cells[i] correspond; scripts/bench_diff.py joins
// two documents on (scenario, series, row label) to flag regressions across
// the BENCH_*.json trajectory.
#pragma once

#include <string>
#include <vector>

#include "evq/harness/scenario.hpp"

namespace evq::harness {

inline constexpr int kBenchJsonSchemaVersion = 2;

/// Host/build provenance recorded into the document header.
struct BenchHostInfo {
  unsigned hardware_concurrency = 0;
  std::string compiler;   // e.g. "GNU 13.2.0"
  std::string build;      // e.g. "Release"
  std::string timestamp;  // ISO-8601; empty = omit (keeps golden tests stable)
};

/// Current host info with `timestamp` filled from the system clock.
BenchHostInfo current_host_info();

/// Serializes scenario results (each paired with the options it ran under)
/// into the schema above. Deterministic for deterministic inputs.
std::string bench_results_to_json(const BenchHostInfo& host,
                                  const std::vector<ScenarioResult>& results,
                                  const std::vector<CliOptions>& options);

}  // namespace evq::harness
