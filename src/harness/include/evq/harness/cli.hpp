// Minimal command-line options shared by the bench binaries.
//
// Every binary runs with NO arguments using CI-scale defaults (so a plain
// `for b in build/bench/*; do $b; done` regenerates everything), and accepts:
//
//   --threads 1,2,4,...    thread counts to sweep
//   --iters N              iterations per thread (paper: 100000)
//   --runs R               repetitions per configuration (paper: 50)
//   --burst B              enqueues-then-dequeues per iteration (paper: 5)
//   --capacity C           array queue capacity (0 = auto)
//   --csv                  machine-readable CSV instead of the table
//   --paper                paper-scale parameters (iters=100000, runs=50)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "evq/harness/workload.hpp"

namespace evq::harness {

struct CliOptions {
  WorkloadParams workload;               // threads field unused (swept)
  std::vector<unsigned> thread_counts;   // sweep
  bool csv = false;
};

/// Parses argv; prints usage and exits(2) on malformed input. `default_threads`
/// supplies the sweep used when --threads is absent.
CliOptions parse_cli(int argc, char** argv, std::vector<unsigned> default_threads,
                     std::uint64_t default_iters, unsigned default_runs);

}  // namespace evq::harness
