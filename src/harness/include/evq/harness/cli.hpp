// Command-line options shared by the evq-bench driver (and, historically,
// the per-figure bench binaries).
//
// Every scenario runs with NO arguments using CI-scale defaults, and accepts:
//
//   --threads 1,2,4,...    thread counts to sweep
//   --iters N              iterations per thread (paper: 100000)
//   --runs R               repetitions per configuration (paper: 50)
//   --burst B              enqueues-then-dequeues per iteration (paper: 5)
//   --capacity C           array queue capacity (0 = auto)
//   --csv                  machine-readable CSV instead of the table
//   --paper                paper-scale parameters (iters=100000, runs=50)
//   --latency-sample N     time every Nth op per thread (0 = off)
//   --stable-cv PCT        adaptively repeat runs until CV <= PCT/100
//   --max-runs N           cap for --stable-cv repetition
//   --op-stats             record aggregate atomic-op counters per cell
//   --telemetry            capture per-queue telemetry counter deltas per cell
//   --health               run a health Monitor across the scenario (poll per
//                          cell, latency reservoir on; adds a "health" JSON
//                          section)
//   --perf                 read hardware counters per worker (evq::perf) and
//                          derive cycles/op, misses/op, IPC per cell; adds a
//                          "perf" JSON section (falls back to an explicit
//                          unavailability record on perf-denied hosts)
//   --json PATH            also emit the versioned JSON document to PATH
//   --trace PATH           export a Chrome Trace Format JSON of sampled ops
//   --trace-sample N       trace 1-in-N ops per thread (implies tracing on;
//                          default 64 when --trace is given alone)
//
// Because each scenario carries its own defaults, flags are parsed into a
// CliOverrides (only what the user actually set) and applied per scenario.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "evq/harness/workload.hpp"

namespace evq::harness {

struct CliOptions {
  WorkloadParams workload;               // threads field unused (swept)
  std::vector<unsigned> thread_counts;   // sweep
  bool csv = false;
  bool telemetry = false;                // capture registry counter deltas
  bool health = false;                   // pump a health Monitor per cell
  bool perf = false;                     // hardware counters (also sets
                                         // workload.record_perf via apply)
  std::string json_path;                 // empty = no JSON output
  std::string trace_path;                // empty = no Chrome trace export
  unsigned trace_sample_every = 0;       // 0 = tracing off
};

/// Flags the user explicitly passed; everything else stays at the
/// scenario's defaults when applied.
struct CliOverrides {
  std::optional<std::vector<unsigned>> thread_counts;
  std::optional<std::uint64_t> iterations;
  std::optional<unsigned> runs;
  std::optional<unsigned> burst;
  std::optional<std::size_t> capacity;
  std::optional<unsigned> latency_sample_every;
  std::optional<double> stable_cv;
  std::optional<unsigned> max_runs;
  std::optional<unsigned> trace_sample_every;
  bool op_stats = false;
  bool telemetry = false;
  bool health = false;
  bool perf = false;
  bool csv = false;
  bool paper = false;
  std::string json_path;
  std::string trace_path;

  void apply(CliOptions& opts) const;
};

/// Parses argv[first..argc); prints usage and exits(2) on malformed input or
/// on any token that is not a recognized flag.
CliOverrides parse_overrides(int argc, char** argv, int first = 1);

/// Legacy single-binary entry point: scenario defaults + overrides in one
/// call. `default_threads` supplies the sweep used when --threads is absent.
CliOptions parse_cli(int argc, char** argv, std::vector<unsigned> default_threads,
                     std::uint64_t default_iters, unsigned default_runs);

}  // namespace evq::harness
