// The reproduced experiments of DESIGN.md §5 as declarative scenarios: every
// Fig. 6 figure, in-text table, ablation and extension that used to be its
// own bench binary is a ScenarioSpec here, compiled into the single
// evq-bench driver. Expected shapes and paper quotes live with each
// definition; the CSV printers are byte-compatible with the pre-refactor
// binaries.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "evq/baselines/ms_hp_queue.hpp"
#include "evq/common/op_stats.hpp"
#include "evq/common/spin_barrier.hpp"
#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/scq_queue.hpp"
#include "evq/core/segmented_queue.hpp"
#include "evq/harness/scenario.hpp"
#include "evq/llsc/versioned_llsc.hpp"
#include "evq/llsc/weak_llsc.hpp"

namespace evq::harness {

namespace {

// ---------------------------------------------------------------------------
// Fig. 6a/6c — LL/SC machine analog. Algorithms in the paper's legend order.
//
// Expected shape (paper): FIFO Array LL/SC fastest (~27% faster than FIFO
// Array Simulated CAS); MS-HP best at moderate thread counts, overtaken by
// the array queues as threads grow; MS-Doherty slowest everywhere.
// ---------------------------------------------------------------------------

const std::vector<std::string> kFig6aAlgos = {"ms-doherty", "fifo-simcas", "ms-hp",
                                              "ms-hp-sorted", "fifo-llsc"};

// In-text claim T3: "Our LL/SC-based implementation is the fastest and it is
// approximately 27% faster than our CAS-based implementation." Reported as
// per-thread-count speedups and their geometric mean — ratioing sums of
// means across the sweep would weight high-thread-count rows arbitrarily.
void print_t3_claim(const ScenarioResult& result) {
  const ScenarioSeries* llsc = result.series_named("fifo-llsc");
  const ScenarioSeries* simcas = result.series_named("fifo-simcas");
  if (llsc == nullptr || simcas == nullptr) {
    return;
  }
  std::printf("\nLL/SC vs Simulated-CAS speedup (simcas mean / llsc mean, per thread "
              "count):\n");
  std::printf("%8s %10s\n", "threads", "speedup");
  double log_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const double l = llsc->cells[i].time.mean;
    const double s = simcas->cells[i].time.mean;
    if (l <= 0.0 || s <= 0.0) {
      continue;
    }
    const double ratio = s / l;
    std::printf("%8s %+9.1f%%\n", result.rows[i].label.c_str(), (ratio - 1.0) * 100.0);
    log_sum += std::log(ratio);
    ++n;
  }
  if (n > 0) {
    std::printf("geomean: %+.1f%% (paper: ~27%%)\n",
                (std::exp(log_sum / static_cast<double>(n)) - 1.0) * 100.0);
  }
}

ScenarioSpec fig6a_spec() {
  ScenarioSpec spec;
  spec.name = "fig6a";
  spec.title = "Fig. 6a: actual running time, LL/SC machine analog";
  spec.summary = "Fig. 6a — running time vs threads, LL/SC machine (+ T3 speedup claim)";
  spec.default_threads = {1, 2, 4, 8, 16, 32};
  spec.rows = thread_rows;
  spec.series = registry_series(kFig6aAlgos);
  spec.print_table = [](const ScenarioResult& r, const CliOptions& o) {
    print_absolute(r, o, r.title);
    print_t3_claim(r);
  };
  return spec;
}

ScenarioSpec fig6c_spec() {
  ScenarioSpec spec;
  spec.name = "fig6c";
  spec.title = "Fig. 6c: normalized running time, LL/SC machine analog";
  spec.summary = "Fig. 6c — Fig. 6a normalized to FIFO Array Simulated CAS";
  spec.default_threads = {1, 2, 4, 8, 16, 32};
  spec.rows = thread_rows;
  spec.series = registry_series(kFig6aAlgos);
  spec.print_table = [](const ScenarioResult& r, const CliOptions& o) {
    print_normalized(r, o, r.title, "fifo-simcas");
  };
  spec.print_csv = spec.print_table;
  return spec;
}

// ---------------------------------------------------------------------------
// Fig. 6b/6d — CAS machine analog, with Shann et al. (wide CAS).
//
// Expected shape (paper): Shann and FIFO Simulated CAS within ~5% of each
// other; MS-HP competitive at moderate thread counts; MS-Doherty slowest.
// ---------------------------------------------------------------------------

const std::vector<std::string> kFig6bAlgos = {"ms-doherty", "ms-hp", "ms-hp-sorted",
                                              "fifo-simcas", "shann"};

ScenarioSpec fig6b_spec() {
  ScenarioSpec spec;
  spec.name = "fig6b";
  spec.title = "Fig. 6b: actual running time, CAS machine analog";
  spec.summary = "Fig. 6b — running time vs threads, CAS machine (incl. Shann wide-CAS)";
  spec.default_threads = {1, 4, 8, 16, 32, 64};
  spec.rows = thread_rows;
  spec.series = registry_series(kFig6bAlgos);
  return spec;
}

ScenarioSpec fig6d_spec() {
  ScenarioSpec spec;
  spec.name = "fig6d";
  spec.title = "Fig. 6d: normalized running time, CAS machine analog";
  spec.summary = "Fig. 6d — Fig. 6b normalized to FIFO Array Simulated CAS";
  spec.default_threads = {1, 4, 8, 16, 32, 64};
  spec.rows = thread_rows;
  spec.series = registry_series(kFig6bAlgos);
  spec.print_table = [](const ScenarioResult& r, const CliOptions& o) {
    print_normalized(r, o, r.title, "fifo-simcas");
  };
  spec.print_csv = spec.print_table;
  return spec;
}

// ---------------------------------------------------------------------------
// In-text experiment T1 (Sec. 6): single-thread overhead of each
// synchronized implementation over an unsynchronized array ring.
//
// Paper numbers: "Our LL/SC and CAS-based implementations are respectively
// 12% and 50% slower on the PowerPC, and the CAS-based implementation is
// 90% slower on the AMD."
// ---------------------------------------------------------------------------

ScenarioSpec overhead_spec() {
  ScenarioSpec spec;
  spec.name = "overhead";
  spec.title = "Single-thread overhead vs unsynchronized ring (Sec. 6 in-text)";
  spec.summary = "Sec. 6 in-text T1 — single-thread overhead vs unsynchronized array";
  spec.default_threads = {1};
  spec.default_iters = 20000;
  spec.default_runs = 3;
  spec.rows = [](const CliOptions& opts) {
    // Single-threaded by definition: the sweep override is ignored.
    WorkloadParams p = opts.workload;
    p.threads = 1;
    return std::vector<ScenarioRow>{{"1", p}};
  };
  spec.series = registry_series({"unsync", "fifo-llsc", "fifo-llsc-versioned", "fifo-simcas",
                                 "shann", "ms-hp", "ms-doherty", "mutex"});
  const auto base_of = [](const ScenarioResult& r) {
    const ScenarioSeries* unsync = r.series_named("unsync");
    return unsync != nullptr ? unsync->cells[0].time.mean : 0.0;
  };
  spec.print_table = [base_of](const ScenarioResult& r, const CliOptions&) {
    const double base = base_of(r);
    std::printf("== Single-thread overhead vs unsynchronized ring (Sec. 6 in-text) ==\n");
    std::printf("(paper: LL/SC +12%%, Simulated CAS +50%% (PowerPC) / +90%% (AMD))\n");
    std::printf("%-18s  %-32s  %10s  %9s\n", "queue", "paper label", "seconds", "overhead");
    for (const ScenarioSeries& s : r.series) {
      std::printf("%-18s  %-32s  %10.4f  %+8.1f%%\n", s.name.c_str(), s.label.c_str(),
                  s.cells[0].time.mean, (s.cells[0].time.mean / base - 1.0) * 100.0);
    }
  };
  spec.print_csv = [base_of](const ScenarioResult& r, const CliOptions&) {
    const double base = base_of(r);
    std::printf("queue,seconds,overhead_pct\n");
    for (const ScenarioSeries& s : r.series) {
      std::printf("%s,%.6f,%.1f\n", s.name.c_str(), s.cells[0].time.mean,
                  (s.cells[0].time.mean / base - 1.0) * 100.0);
    }
  };
  return spec;
}

// ---------------------------------------------------------------------------
// In-text experiment T2b: per-operation atomic-instruction profile, measured
// from the running implementations (custom runner: not a workload sweep).
//
// The paper's cost accounting, checked row by row: MS = 2/1 successful CAS,
// SimCAS = 3 CAS + 2 FAA, Shann = narrow+wide CAS, Doherty = 7 CAS.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kProfileOps = 1024;  // < capacity: every push must land

/// Measures per-op counter deltas over `ops` uncontended pushes, then `ops`
/// pops. `ops` must be below the queue capacity so no push reports full.
void profile_uncontended(const QueueSpec& spec, std::uint64_t ops, stats::OpCounters& push,
                         stats::OpCounters& pop) {
  auto queue = spec.make(2048);
  auto handle = queue->handle();
  std::vector<Payload> payloads(ops);
  // Warm up: one pair so lazily-created structures (dummy nodes, pool)
  // do not pollute the counts.
  (void)handle->try_push(&payloads[0]);
  (void)handle->try_pop();
  {
    stats::ScopedOpRecording rec(push);
    for (std::uint64_t i = 0; i < ops; ++i) {
      (void)handle->try_push(&payloads[i]);
    }
  }
  {
    stats::ScopedOpRecording rec(pop);
    for (std::uint64_t i = 0; i < ops; ++i) {
      (void)handle->try_pop();
    }
  }
}

/// Per-op counters for one thread of a 2-thread contended run.
void profile_contended(const QueueSpec& spec, std::uint64_t ops, stats::OpCounters& pair) {
  auto queue = spec.make(64);
  SpinBarrier barrier(2);
  std::thread other([&] {
    auto handle = queue->handle();
    static Payload p;
    barrier.wait();
    for (std::uint64_t i = 0; i < ops; ++i) {
      while (!handle->try_push(&p)) {
      }
      while (handle->try_pop() == nullptr) {
      }
    }
  });
  {
    auto handle = queue->handle();
    static Payload p;
    barrier.wait();
    stats::ScopedOpRecording rec(pair);  // both phases recorded together
    for (std::uint64_t i = 0; i < ops; ++i) {
      while (!handle->try_push(&p)) {
      }
      while (handle->try_pop() == nullptr) {
      }
    }
  }
  other.join();
}

void print_profile_row(const std::string& name, const char* op, const stats::OpCounters& c,
                       std::uint64_t ops, bool csv) {
  const double n = static_cast<double>(ops);
  if (csv) {
    std::printf("%s,%s,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n", name.c_str(), op, c.cas_attempts / n,
                c.cas_success / n, c.wide_cas_attempts / n, c.wide_cas_success / n,
                c.wide_loads / n, c.faa / n);
  } else {
    std::printf("%-18s %-9s %8.2f %8.2f %9.2f %9.2f %9.2f %7.2f\n", name.c_str(), op,
                c.cas_attempts / n, c.cas_success / n, c.wide_cas_attempts / n,
                c.wide_cas_success / n, c.wide_loads / n, c.faa / n);
  }
}

ScenarioSpec op_profile_spec() {
  ScenarioSpec spec;
  spec.name = "op-profile";
  spec.title = "Per-operation atomic-instruction profile";
  spec.summary = "Sec. 6 in-text T2b — per-op atomic-instruction counts per algorithm";
  spec.axis = "op";
  spec.default_threads = {1};
  spec.run = [](const ScenarioSpec& self, const CliOptions& opts) {
    const std::vector<std::string> algos = {"fifo-llsc", "fifo-llsc-versioned", "fifo-simcas",
                                            "shann",     "ms-hp",               "ms-pool",
                                            "ms-doherty"};
    ScenarioResult result;
    result.name = self.name;
    result.title = self.title;
    result.axis = self.axis;
    WorkloadParams uncontended = opts.workload;
    uncontended.threads = 1;
    WorkloadParams contended = opts.workload;
    contended.threads = 2;
    result.rows = {{"enqueue", uncontended}, {"dequeue", uncontended}, {"pair", contended}};
    for (const std::string& name : algos) {
      const QueueSpec& queue = find_queue(name);
      std::fprintf(stderr, "# %-18s profiling ...\n", queue.name.c_str());
      ScenarioSeries series{queue.name, queue.paper_label, std::vector<CellStats>(3)};
      profile_uncontended(queue, kProfileOps, series.cells[0].ops, series.cells[1].ops);
      profile_contended(queue, kProfileOps / 4, series.cells[2].ops);
      series.cells[0].has_ops = series.cells[1].has_ops = series.cells[2].has_ops = true;
      series.cells[0].total_ops = series.cells[1].total_ops = kProfileOps;
      series.cells[2].total_ops = kProfileOps / 4;
      result.series.push_back(std::move(series));
    }
    return result;
  };
  const auto print = [](const ScenarioResult& r, bool csv) {
    if (csv) {
      std::printf("queue,op,cas,cas_ok,wcas,wcas_ok,wload,faa\n");
    } else {
      std::printf("== Per-operation atomic-instruction profile (uncontended) ==\n");
      std::printf(
          "(counts per queue operation; paper Sec. 6 quotes: MS = 2/1 successful CAS,\n");
      std::printf(" SimCAS = 3 CAS + 2 FAA, Shann = narrow+wide CAS, Doherty = 7 CAS)\n");
      std::printf("%-18s %-9s %8s %8s %9s %9s %9s %7s\n", "queue", "op", "cas", "cas_ok",
                  "wcas", "wcas_ok", "wload", "faa");
    }
    for (const ScenarioSeries& s : r.series) {
      print_profile_row(s.name, "enqueue", s.cells[0].ops, s.cells[0].total_ops, csv);
      print_profile_row(s.name, "dequeue", s.cells[1].ops, s.cells[1].total_ops, csv);
    }
    if (!csv) {
      std::printf("\n== Same, one thread of a 2-thread contended run (enq+deq pairs) ==\n");
      std::printf("%-18s %-9s %8s %8s %9s %9s %9s %7s\n", "queue", "op", "cas", "cas_ok",
                  "wcas", "wcas_ok", "wload", "faa");
    }
    for (const ScenarioSeries& s : r.series) {
      print_profile_row(s.name, "pair", s.cells[2].ops, s.cells[2].total_ops, csv);
    }
  };
  spec.print_table = [print](const ScenarioResult& r, const CliOptions&) { print(r, false); };
  spec.print_csv = [print](const ScenarioResult& r, const CliOptions&) { print(r, true); };
  return spec;
}

// ---------------------------------------------------------------------------
// Ablation A1 (DESIGN.md §5): cost of the LL/SC emulation policy under
// Algorithm 1, supporting the paper's Sec. 5 portability discussion.
//
//   fifo-llsc          48-bit pointer + 16-bit version, single 64-bit word
//   fifo-llsc-versioned {value, 64-bit version} via cmpxchg16b
//   weak variants      spurious SC failure injected at 5% / 25% (hardware
//                      limitation #3) — measures retry-loop resilience.
// ---------------------------------------------------------------------------

template <typename T>
using Weak5 = llsc::WeakLlsc<llsc::VersionedLlsc<T>, 5>;
template <typename T>
using Weak25 = llsc::WeakLlsc<llsc::VersionedLlsc<T>, 25>;

/// Local (non-registry) specs for the weak variants.
QueueSpec weak_spec(const std::string& name, const std::string& label, int which) {
  QueueFactory make;
  if (which == 5) {
    make = [](std::size_t cap) -> std::unique_ptr<AnyQueue> {
      return std::make_unique<QueueAdapter<LlscArrayQueue<Payload, Weak5>>>(cap);
    };
  } else {
    make = [](std::size_t cap) -> std::unique_ptr<AnyQueue> {
      return std::make_unique<QueueAdapter<LlscArrayQueue<Payload, Weak25>>>(cap);
    };
  }
  return QueueSpec{name, label, true, true, true, std::move(make)};
}

ScenarioSpec ablation_llsc_spec() {
  ScenarioSpec spec;
  spec.name = "ablation-llsc";
  spec.title = "Ablation A1: LL/SC emulation policy under Algorithm 1";
  spec.summary = "Ablation A1 — LL/SC emulation policy & spurious-failure cost";
  spec.default_threads = {1, 4, 16};
  spec.default_iters = 3000;
  spec.default_runs = 2;
  spec.rows = thread_rows;
  spec.series = []() {
    std::vector<QueueSpec> specs;
    specs.push_back(find_queue("fifo-llsc"));
    specs.push_back(find_queue("fifo-llsc-versioned"));
    specs.push_back(weak_spec("fifo-llsc-weak5", "LL/SC, 5% spurious SC failure", 5));
    specs.push_back(weak_spec("fifo-llsc-weak25", "LL/SC, 25% spurious SC failure", 25));
    return specs;
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Ablation A2 (DESIGN.md §5): hazard-pointer scan strategy and free
// threshold for the MS-HP baseline.
//
// The paper fixes the threshold at 4x the thread count ("huge waste of
// memory [but] the cost to reclaim the nodes becomes fairly low") and
// observes that SORTING the collected hazard array pays off once the thread
// count is moderate-to-high.
// ---------------------------------------------------------------------------

QueueSpec hp_spec(hazard::ScanMode mode, std::size_t multiplier) {
  const std::string name = std::string("ms-hp-") +
                           (mode == hazard::ScanMode::kSorted ? "sorted" : "linear") + "-x" +
                           std::to_string(multiplier);
  QueueFactory make = [mode, multiplier](std::size_t) -> std::unique_ptr<AnyQueue> {
    return std::make_unique<QueueAdapter<baselines::MsHpQueue<Payload>>>(mode, multiplier);
  };
  return QueueSpec{name, name, false, true, true, std::move(make)};
}

ScenarioSpec ablation_hp_spec() {
  ScenarioSpec spec;
  spec.name = "ablation-hp";
  spec.title = "Ablation A2: MS-HP scan mode x free threshold";
  spec.summary = "Ablation A2 — hazard-pointer scan mode x free threshold";
  spec.default_threads = {2, 8, 16};
  spec.default_iters = 3000;
  spec.default_runs = 2;
  spec.rows = thread_rows;
  spec.series = []() {
    std::vector<QueueSpec> specs;
    for (hazard::ScanMode mode : {hazard::ScanMode::kUnsorted, hazard::ScanMode::kSorted}) {
      for (std::size_t multiplier : {1, 4, 16}) {
        specs.push_back(hp_spec(mode, multiplier));
      }
    }
    return specs;
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Ablation A3 (DESIGN.md §5): array capacity vs throughput for the two
// contributed queues.
//
// Capacity is the array queues' only tuning knob: a small array maximizes
// index wraparound and full/empty stalls (the regime where Sec. 3's ABA
// analysis matters), a large array spreads contention across slots. Burst is
// fixed at 1 so even the smallest capacity stays deadlock-free at every
// thread count.
// ---------------------------------------------------------------------------

ScenarioSpec ablation_capacity_spec() {
  ScenarioSpec spec;
  spec.name = "ablation-capacity";
  spec.title = "Ablation A3: capacity sweep";
  spec.summary = "Ablation A3 — array capacity vs throughput (burst=1)";
  spec.axis = "capacity";
  spec.default_threads = {4};
  spec.default_iters = 20000;
  spec.default_runs = 2;
  spec.rows = [](const CliOptions& opts) {
    const std::vector<std::size_t> capacities = {16, 64, 256, 1024, 4096};
    std::vector<ScenarioRow> rows;
    for (std::size_t cap : capacities) {
      WorkloadParams p = opts.workload;
      p.threads = opts.thread_counts.front();
      p.capacity = cap;
      p.burst = 1;  // deadlock-free at the smallest capacity
      rows.push_back({std::to_string(cap), p});
    }
    return rows;
  };
  spec.series = registry_series({"fifo-llsc", "fifo-simcas", "shann", "tsigas-zhang"});
  spec.print_table = [](const ScenarioResult& r, const CliOptions& o) {
    std::printf("== Ablation A3: capacity sweep (threads=%u, burst=1) ==\n",
                o.thread_counts.front());
    std::printf("%-10s", "capacity");
    for (const ScenarioSeries& s : r.series) {
      std::printf("  %-18s", s.name.c_str());
    }
    std::printf("\n");
    for (std::size_t row = 0; row < r.rows.size(); ++row) {
      std::printf("%-10s", r.rows[row].label.c_str());
      for (const ScenarioSeries& s : r.series) {
        std::printf("  %10.4f s       ", s.cells[row].time.mean);
      }
      std::printf("\n");
    }
  };
  spec.print_csv = [](const ScenarioResult& r, const CliOptions&) {
    std::printf("capacity");
    for (const ScenarioSeries& s : r.series) {
      std::printf(",%s", s.name.c_str());
    }
    std::printf("\n");
    for (std::size_t row = 0; row < r.rows.size(); ++row) {
      std::printf("%s", r.rows[row].label.c_str());
      for (const ScenarioSeries& s : r.series) {
        std::printf(",%.6f", s.cells[row].time.mean);
      }
      std::printf("\n");
    }
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Extension experiment E1 (beyond the paper): sensitivity of the algorithm
// ranking to the operation mix. Sweeps a randomized workload over push bias
// in {25%, 50%, 75%} to check that Fig. 6's ranking is a property of the
// algorithms, not of the burst pattern.
// ---------------------------------------------------------------------------

ScenarioSpec ext_mixed_spec() {
  ScenarioSpec spec;
  spec.name = "ext-mixed";
  spec.title = "Extension E1: randomized workload, push-bias sweep";
  spec.summary = "Extension E1 — Fig. 6 ranking under randomized op mixes";
  spec.axis = "bias,threads";
  spec.default_threads = {4, 16};
  spec.default_iters = 3000;
  spec.default_runs = 2;
  spec.rows = [](const CliOptions& opts) {
    const std::vector<unsigned> biases = {25, 50, 75};
    std::vector<ScenarioRow> rows;
    for (unsigned bias : biases) {
      for (unsigned threads : opts.thread_counts) {
        WorkloadParams p = opts.workload;
        p.threads = threads;
        p.pattern = WorkloadPattern::kRandomMixed;
        p.push_bias_pct = bias;
        rows.push_back({std::to_string(bias) + "," + std::to_string(threads), p});
      }
    }
    return rows;
  };
  spec.series = registry_series({"fifo-llsc", "fifo-simcas", "shann", "ms-hp", "ms-doherty"});
  spec.print_table = [](const ScenarioResult& r, const CliOptions&) {
    std::printf("== Extension E1: randomized workload, push-bias sweep ==\n");
    std::printf("(seconds per run; paper's burst pattern replaced by random mixed ops)\n");
    std::printf("%-6s %-8s", "bias", "threads");
    for (const ScenarioSeries& s : r.series) {
      std::printf("  %-18s", s.name.c_str());
    }
    std::printf("\n");
    for (std::size_t row = 0; row < r.rows.size(); ++row) {
      std::printf("%-6u %-8u", r.rows[row].params.push_bias_pct, r.rows[row].params.threads);
      for (const ScenarioSeries& s : r.series) {
        std::printf("  %10.4f s       ", s.cells[row].time.mean);
      }
      std::printf("\n");
    }
  };
  spec.print_csv = [](const ScenarioResult& r, const CliOptions&) {
    std::printf("bias,threads");
    for (const ScenarioSeries& s : r.series) {
      std::printf(",%s", s.name.c_str());
    }
    std::printf("\n");
    for (std::size_t row = 0; row < r.rows.size(); ++row) {
      std::printf("%u,%u", r.rows[row].params.push_bias_pct, r.rows[row].params.threads);
      for (const ScenarioSeries& s : r.series) {
        std::printf(",%.6f", s.cells[row].time.mean);
      }
      std::printf("\n");
    }
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Extension experiment E2 (beyond the paper): the reclamation spectrum for
// link-based queues — all MS variants lined up so the reclamation cost
// itself is isolated (the queue algorithm is identical in every column).
// ---------------------------------------------------------------------------

ScenarioSpec ext_reclaim_spec() {
  ScenarioSpec spec;
  spec.name = "ext-reclaim";
  spec.title = "Extension E2: Michael-Scott queue under five reclamation schemes";
  spec.summary = "Extension E2 — MS queue under five reclamation schemes";
  spec.default_threads = {1, 4, 16, 32};
  spec.default_iters = 3000;
  spec.default_runs = 2;
  spec.rows = thread_rows;
  spec.series = registry_series({"ms-pool", "ms-ebr", "ms-hp", "ms-hp-sorted", "ms-doherty"});
  return spec;
}

// ---------------------------------------------------------------------------
// Sharded scaling layer vs the flat paper queues (core/sharded_queue.hpp).
//
// Expected shape: near parity single-threaded, widening aggregate-throughput
// advantage for the sharded variants as threads — and therefore counter
// contention — grow.
// ---------------------------------------------------------------------------

ScenarioSpec sharded_spec() {
  ScenarioSpec spec;
  spec.name = "sharded";
  spec.title = "Sharded scaling: 4-shard compositions vs flat paper queues";
  spec.summary = "Extension — 4-shard ShardedQueue compositions vs the flat paper queues";
  spec.default_threads = {1, 2, 4, 8};
  spec.rows = thread_rows;
  spec.series = registry_series({"fifo-llsc", "sharded-llsc", "fifo-simcas", "sharded-simcas"});
  spec.print_table = [](const ScenarioResult& r, const CliOptions& o) {
    print_absolute(r, o, r.title);
    const ScenarioSeries* flat_llsc = r.series_named("fifo-llsc");
    const ScenarioSeries* shard_llsc = r.series_named("sharded-llsc");
    const ScenarioSeries* flat_cas = r.series_named("fifo-simcas");
    const ScenarioSeries* shard_cas = r.series_named("sharded-simcas");
    std::printf("\nSharded speedup (flat mean time / sharded mean time):\n");
    std::printf("%8s %14s %14s\n", "threads", "llsc", "simcas");
    for (std::size_t i = 0; i < r.rows.size(); ++i) {
      std::printf("%8s %13.2fx %13.2fx\n", r.rows[i].label.c_str(),
                  flat_llsc->cells[i].time.mean / shard_llsc->cells[i].time.mean,
                  flat_cas->cells[i].time.mean / shard_cas->cells[i].time.mean);
    }
    std::printf("(>1 means the sharded composition finished the same workload faster)\n");
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Cross-generation head-to-head: the paper's CAS/LL-SC array queues vs the
// SCQ-generation FAA ring (Nikolaev's indirection design, DESIGN.md §12).
// The structural bet under test: an unconditional fetch_add ticket never
// loses under contention, so where the CAS/LL-SC index race burns retries
// (8+ threads), SCQ should hold throughput. EXPERIMENTS.md E8 records the
// expected shape and the measured table.
// ---------------------------------------------------------------------------

ScenarioSpec scq_spec() {
  ScenarioSpec spec;
  spec.name = "scq";
  spec.title = "Cross-generation: SCQ FAA ring vs CAS/LL-SC array queues";
  spec.summary = "Extension — FAA-generation SCQ vs the paper's CAS/LL-SC rings (E8)";
  spec.default_threads = {1, 2, 4, 8, 16};
  spec.rows = thread_rows;
  spec.series =
      registry_series({"fifo-llsc", "fifo-simcas", "scq", "scq-backoff", "sharded-scq"});
  spec.print_table = [](const ScenarioResult& r, const CliOptions& o) {
    print_absolute(r, o, r.title);
    const ScenarioSeries* llsc = r.series_named("fifo-llsc");
    const ScenarioSeries* cas = r.series_named("fifo-simcas");
    const ScenarioSeries* scq = r.series_named("scq");
    const ScenarioSeries* scq_b = r.series_named("scq-backoff");
    if (llsc == nullptr || cas == nullptr || scq == nullptr || scq_b == nullptr) {
      return;
    }
    std::printf("\nSCQ speedup vs best paper ring (min(llsc, simcas) mean time / "
                "min(scq, scq-backoff) mean time):\n");
    std::printf("%8s %10s\n", "threads", "speedup");
    for (std::size_t i = 0; i < r.rows.size(); ++i) {
      const double best = std::min(llsc->cells[i].time.mean, cas->cells[i].time.mean);
      const double best_scq = std::min(scq->cells[i].time.mean, scq_b->cells[i].time.mean);
      if (best <= 0.0 || best_scq <= 0.0) {
        continue;
      }
      std::printf("%8s %9.2fx\n", r.rows[i].label.c_str(), best / best_scq);
    }
    std::printf("(>1 means the FAA generation beat the best CAS/LL-SC ring; the claim "
                "under test holds at 8+ threads)\n");
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Burst absorption: the bounded SCQ ring vs its segmented (unbounded)
// composition — EXPERIMENTS.md E9. Two regimes on the same op counts:
//
//   steady    the paper's burst=5 pattern, far below one segment's capacity:
//             the segmented queue must ride its tail segment and stay within
//             ~10% of the flat bounded ring (the seal path never fires).
//   burst100x burst = 100x the segment capacity: the bounded ring backs the
//             pushers off against its capacity wall while the segmented
//             queue absorbs the whole burst by appending ~100 segments per
//             thread-burst and retiring them on the drain.
//
// The segmented series pin their segment capacity at 64 (a local QueueSpec,
// not the registry's, where the CLI capacity would inflate the segments and
// dodge the seal/append/retire path being priced here).
// ---------------------------------------------------------------------------

constexpr std::size_t kBurstSegCapacity = 64;
constexpr unsigned kBurstFactor = 100;

/// Local specs with the segment capacity pinned (the sweep capacity is
/// deliberately ignored — it sizes the BOUNDED competitor, not the segments).
QueueSpec segmented_spec(const std::string& name, const std::string& label, bool scq) {
  QueueFactory make;
  if (scq) {
    make = [](std::size_t) -> std::unique_ptr<AnyQueue> {
      return std::make_unique<QueueAdapter<SegmentedQueue<ScqQueue<Payload>>>>(
          kBurstSegCapacity, "bench-seg-scq");
    };
  } else {
    make = [](std::size_t) -> std::unique_ptr<AnyQueue> {
      return std::make_unique<QueueAdapter<SegmentedQueue<CasArrayQueue<Payload>>>>(
          kBurstSegCapacity, "bench-seg-cas");
    };
  }
  return QueueSpec{name, label, false, true, true, std::move(make)};
}

ScenarioSpec burst_spec() {
  ScenarioSpec spec;
  spec.name = "burst";
  spec.title = "Burst absorption: bounded SCQ vs segmented compositions";
  spec.summary = "Extension — bounded ring vs LSCQ-style segmented queue under bursts (E9)";
  spec.axis = "phase";
  spec.default_threads = {2};
  spec.default_iters = 2000;
  spec.default_runs = 3;
  spec.rows = [](const CliOptions& opts) {
    std::vector<ScenarioRow> rows;
    WorkloadParams steady = opts.workload;
    steady.threads = opts.thread_counts.front();
    steady.burst = 5;  // paper pattern: never crosses a segment boundary
    rows.push_back({"steady", steady});
    WorkloadParams burst = opts.workload;
    burst.threads = opts.thread_counts.front();
    burst.burst = kBurstFactor * kBurstSegCapacity;
    // Same op count per run as the steady row: one giant burst replaces
    // (burst/5) paper iterations.
    burst.iterations = std::max<std::uint64_t>(
        1, steady.iterations * steady.burst / burst.burst);
    rows.push_back({"burst100x", burst});
    return rows;
  };
  spec.series = []() {
    std::vector<QueueSpec> specs;
    specs.push_back(find_queue("scq"));
    specs.push_back(segmented_spec("seg-scq", "Segmented SCQ, 64-slot segments", true));
    specs.push_back(segmented_spec("seg-cas", "Segmented Simulated CAS, 64-slot segments",
                                   false));
    return specs;
  };
  spec.print_table = [](const ScenarioResult& r, const CliOptions& o) {
    print_absolute(r, o, r.title);
    const ScenarioSeries* scq = r.series_named("scq");
    const ScenarioSeries* seg = r.series_named("seg-scq");
    if (scq == nullptr || seg == nullptr || r.rows.empty()) {
      return;
    }
    const double flat = scq->cells[0].time.mean;
    const double segd = seg->cells[0].time.mean;
    if (flat > 0.0 && segd > 0.0) {
      std::printf("\nSteady-state segmentation overhead (seg-scq vs scq): %+.1f%%\n",
                  (segd / flat - 1.0) * 100.0);
      std::printf("(acceptance: within ~10%% — the seal/append path must stay off the "
                  "steady path)\n");
    }
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Contention-management ablation: NoBackoff (paper-faithful busy retry) vs
// ExpBackoff on both paper algorithms, at and beyond hardware
// oversubscription (thread counts default to 1x and 2x the hardware
// concurrency plus a single-thread uncontended floor).
// ---------------------------------------------------------------------------

std::vector<unsigned> backoff_default_threads() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw == 1) {
    return {1, 2, 4};  // single-core host: 2x and 4x oversubscription
  }
  return {1, hw, 2 * hw};
}

ScenarioSpec backoff_spec() {
  ScenarioSpec spec;
  spec.name = "backoff";
  spec.title = "Backoff ablation: NoBackoff vs ExpBackoff under oversubscription";
  spec.summary = "Extension — immediate-retry (paper) vs exponential backoff";
  spec.default_threads = backoff_default_threads();
  spec.rows = thread_rows;
  spec.series =
      registry_series({"fifo-llsc", "fifo-llsc-backoff", "fifo-simcas", "fifo-simcas-backoff"});
  spec.print_table = [](const ScenarioResult& r, const CliOptions& o) {
    print_absolute(r, o, r.title);
    const ScenarioSeries* llsc = r.series_named("fifo-llsc");
    const ScenarioSeries* llsc_b = r.series_named("fifo-llsc-backoff");
    const ScenarioSeries* cas = r.series_named("fifo-simcas");
    const ScenarioSeries* cas_b = r.series_named("fifo-simcas-backoff");
    std::printf("\nBackoff speedup (NoBackoff mean time / ExpBackoff mean time):\n");
    std::printf("%8s %14s %14s\n", "threads", "llsc", "simcas");
    for (std::size_t i = 0; i < r.rows.size(); ++i) {
      std::printf("%8s %13.2fx %13.2fx\n", r.rows[i].label.c_str(),
                  llsc->cells[i].time.mean / llsc_b->cells[i].time.mean,
                  cas->cells[i].time.mean / cas_b->cells[i].time.mean);
    }
    std::printf("(>1 means backoff helped; expect ~1.0 uncontended, gains only when "
                "threads > cores)\n");
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Telemetry-overhead smoke: the fig6a workload shape on the two paper
// algorithms, small enough for CI. Run once against a telemetry-on build and
// once against -DEVQ_TELEMETRY=OFF, then diff the two JSON documents
// (scripts/bench_diff.py --threshold 1 --fail-on-regress) to prove the
// always-on counters cost < 1% throughput.
// ---------------------------------------------------------------------------

ScenarioSpec telemetry_overhead_spec() {
  ScenarioSpec spec;
  spec.name = "telemetry-overhead";
  spec.title = "Telemetry overhead: paper algorithms with always-on counters";
  spec.summary = "Observability — telemetry-on vs -DEVQ_TELEMETRY=OFF cost (EXPERIMENTS.md)";
  spec.default_threads = {1, 2, 4};
  spec.rows = thread_rows;
  // The two array queues are the worst case (40-60ns/op leaves the couple of
  // striped-counter increments nowhere to hide); ms-hp shows the same
  // absolute cost disappearing into a queue with realistic per-op work.
  spec.series = registry_series({"fifo-llsc", "fifo-simcas", "ms-hp"});
  return spec;
}

// ---------------------------------------------------------------------------
// Pairwise contention demo: the two paper array queues head-to-head on a
// small ring with a randomized op mix — the configuration that maximizes the
// paper's signature mechanism (a committed slot whose index still lags, so
// peers help-advance it). This is the workload EXPERIMENTS.md E7 traces:
//
//   evq-bench run pairwise --trace pairwise.json --trace-sample 64
//
// and the exported Perfetto trace shows per-phase sub-slices plus
// helper→helped flow arrows between threads. The comb-cas series runs the
// same duel through the flat-combining facade, so the trace also carries
// combiner→helped arrows (HelpTarget::kCombiner, DESIGN.md §14) whenever
// the adaptive heuristic engages.
// ---------------------------------------------------------------------------

ScenarioSpec pairwise_spec() {
  ScenarioSpec spec;
  spec.name = "pairwise";
  spec.title = "Pairwise contention: CAS vs LLSC array queues on a small ring";
  spec.summary = "Observability — high-contention array-queue duel (E7 trace workload)";
  spec.default_threads = {2, 4};
  spec.default_iters = 20000;
  spec.default_runs = 2;
  spec.rows = [](const CliOptions& opts) {
    std::vector<ScenarioRow> rows;
    for (unsigned threads : opts.thread_counts) {
      WorkloadParams p = opts.workload;
      p.threads = threads;
      p.pattern = WorkloadPattern::kRandomMixed;
      if (opts.workload.capacity == 0) {
        p.capacity = 64;  // small ring: threads pile onto the same indices
      }
      rows.push_back({std::to_string(threads), p});
    }
    return rows;
  };
  spec.series = registry_series({"fifo-llsc", "fifo-simcas", "comb-cas"});
  return spec;
}

// ---------------------------------------------------------------------------
// Trace-overhead A/B: the telemetry-overhead shape, reused to price the
// evq::trace probes. Three comparisons, all via bench_diff.py on the JSON:
//   baseline   evq-bench run trace-overhead --json off.json
//   sampled    evq-bench run trace-overhead --trace-sample 64 --json on.json
//     (same binary; EXPERIMENTS.md E7 budget: <= 5% mean-op-time overhead)
//   compiled   trace-on vs -DEVQ_TRACE=OFF builds (CI job, < 20% guard on
//     the disarmed-probe cost, which measures ~0 in practice)
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Health-overhead A/B: the telemetry-overhead shape, reused to price the
// evq::health Monitor + latency reservoir. Same-binary comparison via
// bench_diff.py on the JSON documents:
//   baseline   evq-bench run health-overhead --json off.json
//   monitored  evq-bench run health-overhead --health --json on.json
// (EXPERIMENTS.md E11 budget: <= 5% mean-op-time overhead — the Monitor is
// cold-path, so the whole cost is the 1-in-64 latency-timer sampling.)
// ---------------------------------------------------------------------------

ScenarioSpec health_overhead_spec() {
  ScenarioSpec spec;
  spec.name = "health-overhead";
  spec.title = "Health overhead: paper algorithms with Monitor + latency reservoir";
  spec.summary = "Observability — monitor-off vs --health cost (EXPERIMENTS.md E11)";
  spec.default_threads = {1, 2, 4};
  spec.rows = thread_rows;
  // The array queues price the per-op LatencyTimer gate with nowhere to
  // hide; scq exercises the reservoir on the FAA path the burn detector
  // watches.
  spec.series = registry_series({"fifo-llsc", "fifo-simcas", "scq"});
  return spec;
}

// ---------------------------------------------------------------------------
// Perf-overhead A/B: the telemetry-overhead shape, reused to price the
// evq::perf counter scopes. Same-binary comparison via bench_diff.py on the
// JSON documents:
//   baseline   evq-bench run perf-overhead --json off.json
//   counted    evq-bench run perf-overhead --perf --json on.json
// (EXPERIMENTS.md E12 budget: <= 5% mean-op-time overhead — the scopes are
// per-thread RAII around the whole worker body, so the per-op cost is zero;
// what the gate prices is the group open/read at thread start/finish.)
// On a perf-denied host the scopes are dead and the run doubles as the
// null-backend degradation check: same numbers, explicit reason record.
// The CI job also compares against a -DEVQ_PERF=OFF build (<= 1% guard on
// the compiled-out cost, which measures ~0 in practice).
// ---------------------------------------------------------------------------

ScenarioSpec perf_overhead_spec() {
  ScenarioSpec spec;
  spec.name = "perf-overhead";
  spec.title = "Perf overhead: paper algorithms with hardware-counter scopes";
  spec.summary = "Observability — counters-off vs --perf cost (EXPERIMENTS.md E12)";
  spec.default_threads = {1, 2, 4};
  spec.rows = thread_rows;
  // The two array queues are the worst case (any per-op cost would have
  // nowhere to hide in a 40-60ns op); comb-scq is the E12 attribution
  // subject with the most machinery per op.
  spec.series = registry_series({"fifo-llsc", "fifo-simcas", "comb-scq"});
  return spec;
}

ScenarioSpec trace_overhead_spec() {
  ScenarioSpec spec;
  spec.name = "trace-overhead";
  spec.title = "Trace overhead: paper algorithms with sampled phase probes";
  spec.summary = "Observability — tracing-off vs --trace-sample 64 cost (EXPERIMENTS.md E7)";
  spec.default_threads = {1, 2, 4};
  spec.rows = thread_rows;
  // Same worst-case reasoning as telemetry-overhead: the array queues leave
  // a disarmed probe nowhere to hide; ms-hp adds the reclaim-probe paths.
  spec.series = registry_series({"fifo-llsc", "fifo-simcas", "ms-hp"});
  return spec;
}

// ---------------------------------------------------------------------------
// Combining contention ladder: the flat-combining facades vs their bare
// inner rings as threads climb past the core count (EXPERIMENTS.md E10,
// DESIGN.md §14). The bet under test: plain CAS rings collapse once the
// Head/Tail lines ping-pong, while the combiner turns N losers into one
// announce-array pass + N amortized batch ops, so the comb-* series should
// hold (or regain) throughput on the contended rows. Thread counts reuse the
// backoff ladder (1, cores, 2x cores) — contention, not parallelism, is the
// independent variable.
// ---------------------------------------------------------------------------

ScenarioSpec combining_spec() {
  ScenarioSpec spec;
  spec.name = "combining";
  spec.title = "Combining ladder: flat-combining facades vs bare rings";
  spec.summary = "Extension — flat-combining facade vs its inner ring under contention (E10)";
  spec.default_threads = backoff_default_threads();
  spec.default_iters = 3000;
  spec.default_runs = 2;
  spec.rows = thread_rows;
  spec.series = registry_series(
      {"fifo-simcas", "comb-cas", "scq", "comb-scq", "sharded-comb-scq"});
  spec.print_table = [](const ScenarioResult& r, const CliOptions& o) {
    print_absolute(r, o, r.title);
    const ScenarioSeries* cas = r.series_named("fifo-simcas");
    const ScenarioSeries* comb_cas = r.series_named("comb-cas");
    const ScenarioSeries* scq = r.series_named("scq");
    const ScenarioSeries* comb_scq = r.series_named("comb-scq");
    if (cas == nullptr || comb_cas == nullptr || scq == nullptr || comb_scq == nullptr) {
      return;
    }
    std::printf("\nCombining speedup (bare ring mean time / combining mean time):\n");
    std::printf("%8s %14s %14s\n", "threads", "simcas", "scq");
    for (std::size_t i = 0; i < r.rows.size(); ++i) {
      std::printf("%8s %13.2fx %13.2fx\n", r.rows[i].label.c_str(),
                  cas->cells[i].time.mean / comb_cas->cells[i].time.mean,
                  scq->cells[i].time.mean / comb_scq->cells[i].time.mean);
    }
    std::printf("(>1 means combining beat the bare ring; expect ~1.0 at one thread — the "
                "adaptive direct path — and gains only on the contended rows)\n");
  };
  return spec;
}

// ---------------------------------------------------------------------------
// Combining-overhead A/B: each facade and its bare inner ring side by side
// at ONE thread, in one scenario — so scripts/comb_overhead_gate.py can
// compare series WITHIN a single JSON document (bench_diff.py only joins
// identical series names across documents, which an intra-build facade-vs-
// ring comparison cannot use). CI runs this and fails the comb-* facades if
// the adaptive direct path costs more than 5% over the bare ring.
// ---------------------------------------------------------------------------

ScenarioSpec combining_overhead_spec() {
  ScenarioSpec spec;
  spec.name = "combining-overhead";
  spec.title = "Combining overhead: facade vs bare ring, single thread";
  spec.summary = "Observability — uncontended flat-combining facade tax (<=5% CI gate, E10)";
  spec.default_threads = {1};
  spec.default_iters = 5000;
  spec.default_runs = 3;
  spec.rows = thread_rows;
  spec.series = registry_series({"fifo-simcas", "comb-cas", "scq", "comb-scq"});
  spec.print_table = [](const ScenarioResult& r, const CliOptions& o) {
    print_absolute(r, o, r.title);
    const ScenarioSeries* cas = r.series_named("fifo-simcas");
    const ScenarioSeries* comb_cas = r.series_named("comb-cas");
    const ScenarioSeries* scq = r.series_named("scq");
    const ScenarioSeries* comb_scq = r.series_named("comb-scq");
    if (cas == nullptr || comb_cas == nullptr || scq == nullptr || comb_scq == nullptr ||
        r.rows.empty()) {
      return;
    }
    std::printf("\nSingle-thread facade overhead (combining vs bare ring):\n");
    std::printf("  comb-cas vs fifo-simcas: %+.1f%%\n",
                (comb_cas->cells[0].time.mean / cas->cells[0].time.mean - 1.0) * 100.0);
    std::printf("  comb-scq vs scq:         %+.1f%%\n",
                (comb_scq->cells[0].time.mean / scq->cells[0].time.mean - 1.0) * 100.0);
    std::printf("(acceptance: <= 5%% — the adaptive direct path must keep the announce "
                "machinery off the uncontended fast path)\n");
  };
  return spec;
}

std::vector<ScenarioSpec> build_scenarios() {
  std::vector<ScenarioSpec> specs;
  specs.push_back(fig6a_spec());
  specs.push_back(fig6b_spec());
  specs.push_back(fig6c_spec());
  specs.push_back(fig6d_spec());
  specs.push_back(overhead_spec());
  specs.push_back(op_profile_spec());
  specs.push_back(ablation_llsc_spec());
  specs.push_back(ablation_hp_spec());
  specs.push_back(ablation_capacity_spec());
  specs.push_back(ext_mixed_spec());
  specs.push_back(ext_reclaim_spec());
  specs.push_back(sharded_spec());
  specs.push_back(scq_spec());
  specs.push_back(burst_spec());
  specs.push_back(backoff_spec());
  specs.push_back(telemetry_overhead_spec());
  specs.push_back(health_overhead_spec());
  specs.push_back(pairwise_spec());
  specs.push_back(trace_overhead_spec());
  specs.push_back(perf_overhead_spec());
  specs.push_back(combining_spec());
  specs.push_back(combining_overhead_spec());
  return specs;
}

}  // namespace

const std::vector<ScenarioSpec>& all_scenarios() {
  static const std::vector<ScenarioSpec> specs = build_scenarios();
  return specs;
}

}  // namespace evq::harness
