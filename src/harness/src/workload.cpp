#include "evq/harness/workload.hpp"

#include <bit>
#include <chrono>
#include <thread>
#include <vector>

#include "evq/common/backoff.hpp"
#include "evq/common/config.hpp"
#include "evq/common/rng.hpp"
#include "evq/common/spin_barrier.hpp"

namespace evq::harness {

namespace {

void blocking_push(AnyHandle& handle, Payload* node, Backoff& backoff) {
  backoff.reset();
  while (!handle.try_push(node)) {
    backoff.pause();  // full: wait for a consumer
  }
}

Payload* blocking_pop(AnyHandle& handle, Backoff& backoff) {
  backoff.reset();
  Payload* node = handle.try_pop();
  while (node == nullptr) {
    backoff.pause();  // empty: wait for a producer
    node = handle.try_pop();
  }
  return node;
}

/// One worker running the paper's iteration body (burst allocations +
/// enqueues, then burst dequeues + frees), timed from the common start
/// signal.
double paper_burst_worker(AnyHandle& handle, const WorkloadParams& p) {
  const auto start = std::chrono::steady_clock::now();
  Backoff backoff;
  for (std::uint64_t it = 0; it < p.iterations; ++it) {
    for (unsigned b = 0; b < p.burst; ++b) {
      auto* node = new Payload{it * p.burst + b, nullptr};
      blocking_push(handle, node, backoff);
    }
    for (unsigned b = 0; b < p.burst; ++b) {
      delete blocking_pop(handle, backoff);
    }
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Randomized variant: each of iterations x 2 x burst steps is a push with
/// probability push_bias_pct, bounded so a thread never holds more than
/// `burst` un-popped pushes (the deadlock-freedom bound) nor a deficit;
/// ends balanced by draining its remainder.
double random_mixed_worker(AnyHandle& handle, const WorkloadParams& p, unsigned thread_index) {
  auto rng = XorShift64Star::for_stream(p.seed, thread_index);
  const auto start = std::chrono::steady_clock::now();
  Backoff backoff;
  const std::uint64_t steps = p.iterations * 2 * p.burst;
  std::uint64_t outstanding = 0;
  for (std::uint64_t s = 0; s < steps; ++s) {
    const bool want_push = outstanding == 0 ||
                           (outstanding < p.burst && rng.chance(p.push_bias_pct, 100));
    if (want_push) {
      auto* node = new Payload{s, nullptr};
      blocking_push(handle, node, backoff);
      ++outstanding;
    } else {
      delete blocking_pop(handle, backoff);
      --outstanding;
    }
  }
  while (outstanding > 0) {
    delete blocking_pop(handle, backoff);
    --outstanding;
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

double worker(AnyQueue& queue, const WorkloadParams& p, SpinBarrier& barrier,
              unsigned thread_index) {
  auto handle = queue.handle();  // initialization phase (registration etc.)
  barrier.wait();
  if (p.pattern == WorkloadPattern::kRandomMixed) {
    return random_mixed_worker(*handle, p, thread_index);
  }
  return paper_burst_worker(*handle, p);
}

}  // namespace

std::size_t effective_capacity(const WorkloadParams& p) {
  if (p.capacity != 0) {
    return p.capacity;
  }
  // Deadlock-freedom needs capacity >= burst x threads (see header); double
  // it so "full" retries measure contention, not a hard wall, and keep the
  // paper-friendly floor of 256.
  const std::size_t need = static_cast<std::size_t>(p.burst) * p.threads * 2;
  return std::bit_ceil(std::max<std::size_t>(need, 256));
}

double run_once(AnyQueue& queue, const WorkloadParams& p) {
  EVQ_CHECK(p.threads >= 1, "workload needs at least one thread");
  SpinBarrier barrier(p.threads);
  std::vector<double> seconds(p.threads, 0.0);
  std::vector<std::thread> workers;
  workers.reserve(p.threads);
  for (unsigned t = 0; t < p.threads; ++t) {
    workers.emplace_back(
        [&queue, &p, &barrier, &seconds, t] { seconds[t] = worker(queue, p, barrier, t); });
  }
  for (auto& w : workers) {
    w.join();
  }
  // Both patterns are balanced per thread: the queue must drain to empty.
  auto handle = queue.handle();
  EVQ_CHECK(handle->try_pop() == nullptr, "workload left items behind (queue bug?)");
  double sum = 0.0;
  for (double s : seconds) {
    sum += s;
  }
  return sum / static_cast<double>(p.threads);  // the paper's per-run metric
}

std::vector<double> run_workload(const QueueSpec& spec, const WorkloadParams& p) {
  const std::size_t capacity = effective_capacity(p);
  EVQ_CHECK(!spec.bounded || capacity >= static_cast<std::size_t>(p.burst) * p.threads,
            "bounded queue too small for the burst workload (deadlock)");
  EVQ_CHECK(spec.concurrent || p.threads == 1,
            "non-concurrent baseline limited to one thread");
  std::vector<double> times;
  times.reserve(p.runs);
  for (unsigned r = 0; r < p.runs; ++r) {
    auto queue = spec.make(capacity);
    times.push_back(run_once(*queue, p));
  }
  return times;
}

}  // namespace evq::harness
