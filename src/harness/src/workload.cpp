#include "evq/harness/workload.hpp"

#include <bit>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "evq/common/backoff.hpp"
#include "evq/common/config.hpp"
#include "evq/common/rng.hpp"
#include "evq/common/spin_barrier.hpp"
#include "evq/harness/tsc.hpp"

namespace evq::harness {

namespace {

using Clock = std::chrono::steady_clock;

void blocking_push(AnyHandle& handle, Payload* node, Backoff& backoff) {
  backoff.reset();
  while (!handle.try_push(node)) {
    backoff.pause();  // full: wait for a consumer
  }
}

Payload* blocking_pop(AnyHandle& handle, Backoff& backoff) {
  backoff.reset();
  Payload* node = handle.try_pop();
  while (node == nullptr) {
    backoff.pause();  // empty: wait for a producer
    node = handle.try_pop();
  }
  return node;
}

/// Per-worker measurements beyond the paper's per-thread seconds.
struct WorkerResult {
  double seconds = 0.0;
  Clock::time_point start{};
  Clock::time_point end{};
  std::uint64_t ops = 0;
};

/// Sampled per-op latency recorder: times every Nth op into `hist`. With
/// period 0 the per-op cost is one predictable branch, keeping the paper's
/// mean-time metric unperturbed when sampling is off.
class LatencySampler {
 public:
  LatencySampler(unsigned period, LogHistogram* hist) noexcept
      : period_(hist != nullptr ? period : 0), hist_(hist) {}

  [[nodiscard]] bool armed() noexcept {
    if (period_ == 0) {
      return false;
    }
    if (++since_ < period_) {
      return false;
    }
    since_ = 0;
    return true;
  }

  void record(std::uint64_t start_ticks) noexcept {
    hist_->record(tsc_to_ns(tsc_now() - start_ticks));
  }

 private:
  const unsigned period_;
  LogHistogram* hist_;
  unsigned since_ = 0;
};

/// One worker running the paper's iteration body (burst allocations +
/// enqueues, then burst dequeues + frees), timed from the common start
/// signal.
WorkerResult paper_burst_worker(AnyHandle& handle, const WorkloadParams& p, LogHistogram* hist) {
  LatencySampler sampler(p.latency_sample_every, hist);
  WorkerResult out;
  out.start = Clock::now();
  Backoff backoff;
  for (std::uint64_t it = 0; it < p.iterations; ++it) {
    for (unsigned b = 0; b < p.burst; ++b) {
      auto* node = new Payload{it * p.burst + b, nullptr};
      if (sampler.armed()) {
        const std::uint64_t t0 = tsc_now();
        blocking_push(handle, node, backoff);
        sampler.record(t0);
      } else {
        blocking_push(handle, node, backoff);
      }
    }
    for (unsigned b = 0; b < p.burst; ++b) {
      if (sampler.armed()) {
        const std::uint64_t t0 = tsc_now();
        Payload* node = blocking_pop(handle, backoff);
        sampler.record(t0);
        delete node;
      } else {
        delete blocking_pop(handle, backoff);
      }
    }
  }
  out.end = Clock::now();
  out.seconds = std::chrono::duration<double>(out.end - out.start).count();
  out.ops = p.iterations * 2 * p.burst;
  return out;
}

/// Randomized variant: each of iterations x 2 x burst steps is a push with
/// probability push_bias_pct, bounded so a thread never holds more than
/// `burst` un-popped pushes (the deadlock-freedom bound) nor a deficit;
/// ends balanced by draining its remainder.
WorkerResult random_mixed_worker(AnyHandle& handle, const WorkloadParams& p,
                                 unsigned thread_index, LogHistogram* hist) {
  auto rng = XorShift64Star::for_stream(p.seed, thread_index);
  LatencySampler sampler(p.latency_sample_every, hist);
  WorkerResult out;
  out.start = Clock::now();
  Backoff backoff;
  const std::uint64_t steps = p.iterations * 2 * p.burst;
  std::uint64_t outstanding = 0;
  std::uint64_t ops = 0;
  for (std::uint64_t s = 0; s < steps; ++s) {
    const bool want_push = outstanding == 0 ||
                           (outstanding < p.burst && rng.chance(p.push_bias_pct, 100));
    const bool sampled = sampler.armed();
    const std::uint64_t t0 = sampled ? tsc_now() : 0;
    if (want_push) {
      auto* node = new Payload{s, nullptr};
      blocking_push(handle, node, backoff);
      ++outstanding;
      if (sampled) {
        sampler.record(t0);
      }
    } else {
      Payload* node = blocking_pop(handle, backoff);
      if (sampled) {
        sampler.record(t0);
      }
      delete node;
      --outstanding;
    }
    ++ops;
  }
  while (outstanding > 0) {
    delete blocking_pop(handle, backoff);
    --outstanding;
    ++ops;
  }
  out.end = Clock::now();
  out.seconds = std::chrono::duration<double>(out.end - out.start).count();
  out.ops = ops;
  return out;
}

WorkerResult worker(AnyQueue& queue, const WorkloadParams& p, SpinBarrier& barrier,
                    unsigned thread_index, LogHistogram* hist) {
  auto handle = queue.handle();  // initialization phase (registration etc.)
  barrier.wait();
  if (p.pattern == WorkloadPattern::kRandomMixed) {
    return random_mixed_worker(*handle, p, thread_index, hist);
  }
  return paper_burst_worker(*handle, p, hist);
}

}  // namespace

std::vector<double> WorkloadResult::times() const {
  std::vector<double> out;
  out.reserve(runs.size());
  for (const RunResult& r : runs) {
    out.push_back(r.thread_seconds);
  }
  return out;
}

double WorkloadResult::throughput_ops_per_sec() const {
  double wall = 0.0;
  for (const RunResult& r : runs) {
    wall += r.wall_seconds;
  }
  return wall > 0.0 ? static_cast<double>(total_ops()) / wall : 0.0;
}

std::uint64_t WorkloadResult::total_ops() const {
  std::uint64_t ops = 0;
  for (const RunResult& r : runs) {
    ops += r.total_ops;
  }
  return ops;
}

std::size_t effective_capacity(const WorkloadParams& p) {
  if (p.capacity != 0) {
    return p.capacity;
  }
  // Deadlock-freedom needs capacity >= burst x threads (see header); double
  // it so "full" retries measure contention, not a hard wall, and keep the
  // paper-friendly floor of 256.
  const std::size_t need = static_cast<std::size_t>(p.burst) * p.threads * 2;
  return std::bit_ceil(std::max<std::size_t>(need, 256));
}

RunResult run_once_ex(AnyQueue& queue, const WorkloadParams& p, LogHistogram* latency,
                      stats::OpCounters* ops, perf::PerfAgg* perf) {
  EVQ_CHECK(p.threads >= 1, "workload needs at least one thread");
  SpinBarrier barrier(p.threads);
  std::vector<WorkerResult> results(p.threads);
  std::vector<LogHistogram> hists(p.latency_sample_every > 0 && latency != nullptr ? p.threads
                                                                                   : 0);
  std::mutex ops_mutex;
  std::vector<std::thread> workers;
  workers.reserve(p.threads);
  for (unsigned t = 0; t < p.threads; ++t) {
    workers.emplace_back([&, t] {
      LogHistogram* hist = hists.empty() ? nullptr : &hists[t];
      // Optional per-worker hardware counting: one scope around the whole
      // worker body (handle init + barrier + loop), harvested once with the
      // worker's op count. Degrades to a dead scope on perf-denied hosts.
      std::optional<perf::ThreadPerfScope> pscope;
      if (p.record_perf && perf != nullptr) {
        pscope.emplace();
      }
      if (p.record_op_stats && ops != nullptr) {
        stats::OpCounters local;
        {
          stats::ScopedOpRecording rec(local);
          results[t] = worker(queue, p, barrier, t, hist);
        }
        const std::lock_guard<std::mutex> lock(ops_mutex);
        *ops += local;
      } else {
        results[t] = worker(queue, p, barrier, t, hist);
      }
      if (pscope.has_value()) {
        const perf::PerfAgg agg = pscope->harvest(results[t].ops);
        const std::lock_guard<std::mutex> lock(ops_mutex);
        *perf += agg;
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  // Both patterns are balanced per thread: the queue must drain to empty.
  auto handle = queue.handle();
  EVQ_CHECK(handle->try_pop() == nullptr, "workload left items behind (queue bug?)");

  for (const LogHistogram& h : hists) {
    latency->merge(h);
  }
  RunResult run;
  Clock::time_point first_start = results.front().start;
  Clock::time_point last_end = results.front().end;
  double sum = 0.0;
  for (const WorkerResult& r : results) {
    sum += r.seconds;
    run.total_ops += r.ops;
    first_start = std::min(first_start, r.start);
    last_end = std::max(last_end, r.end);
  }
  run.thread_seconds = sum / static_cast<double>(p.threads);  // the paper's per-run metric
  run.wall_seconds = std::chrono::duration<double>(last_end - first_start).count();
  return run;
}

double run_once(AnyQueue& queue, const WorkloadParams& p) {
  return run_once_ex(queue, p, nullptr, nullptr).thread_seconds;
}

WorkloadResult run_workload_ex(const QueueSpec& spec, const WorkloadParams& p) {
  const std::size_t capacity = effective_capacity(p);
  EVQ_CHECK(!spec.bounded || capacity >= static_cast<std::size_t>(p.burst) * p.threads,
            "bounded queue too small for the burst workload (deadlock)");
  EVQ_CHECK(spec.concurrent || p.threads == 1,
            "non-concurrent baseline limited to one thread");
  WorkloadResult result;
  const StopRule rule{p.stable_cv, p.runs, p.max_runs};
  std::vector<double> times;
  while (!stop_sampling(times, rule)) {
    auto queue = spec.make(capacity);
    const RunResult run =
        run_once_ex(*queue, p, &result.latency, p.record_op_stats ? &result.ops : nullptr,
                    p.record_perf ? &result.perf : nullptr);
    result.runs.push_back(run);
    times.push_back(run.thread_seconds);
  }
  return result;
}

std::vector<double> run_workload(const QueueSpec& spec, const WorkloadParams& p) {
  WorkloadParams fixed = p;
  fixed.stable_cv = 0.0;  // legacy entry point: exactly p.runs runs
  return run_workload_ex(spec, fixed).times();
}

}  // namespace evq::harness
