#include "evq/harness/runner.hpp"

#include <cstdio>

#include "evq/common/config.hpp"
#include "evq/harness/queue_registry.hpp"
#include "evq/harness/workload.hpp"

namespace evq::harness {

FigureResult run_figure(const std::vector<std::string>& names, const CliOptions& opts) {
  FigureResult fig;
  fig.thread_counts = opts.thread_counts;
  for (const std::string& name : names) {
    const QueueSpec& spec = find_queue(name);
    SeriesResult series{spec.name, spec.paper_label, {}};
    for (unsigned threads : opts.thread_counts) {
      WorkloadParams p = opts.workload;
      p.threads = threads;
      std::fprintf(stderr, "# %-18s threads=%-3u iters=%llu runs=%u ...\n", spec.name.c_str(),
                   threads, static_cast<unsigned long long>(p.iterations), p.runs);
      series.by_threads.push_back(summarize(run_workload(spec, p)));
    }
    fig.series.push_back(std::move(series));
  }
  return fig;
}

namespace {

void print_header(const FigureResult& fig, bool csv) {
  std::printf(csv ? "threads" : "%-8s", csv ? "" : "threads");
  for (const SeriesResult& s : fig.series) {
    if (csv) {
      std::printf(",%s", s.name.c_str());
    } else {
      std::printf("  %-18s", s.name.c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

void print_absolute(const FigureResult& fig, const CliOptions& opts, const std::string& title) {
  if (!opts.csv) {
    std::printf("== %s ==\n", title.c_str());
    std::printf("(seconds per run: mean per-thread completion time; mean of %u runs)\n",
                opts.workload.runs);
  }
  print_header(fig, opts.csv);
  for (std::size_t row = 0; row < fig.thread_counts.size(); ++row) {
    std::printf(opts.csv ? "%u" : "%-8u", fig.thread_counts[row]);
    for (const SeriesResult& s : fig.series) {
      if (opts.csv) {
        std::printf(",%.6f", s.by_threads[row].mean);
      } else {
        std::printf("  %10.4f s       ", s.by_threads[row].mean);
      }
    }
    std::printf("\n");
  }
}

void print_normalized(const FigureResult& fig, const CliOptions& opts, const std::string& title,
                      const std::string& baseline_name) {
  const SeriesResult* baseline = nullptr;
  for (const SeriesResult& s : fig.series) {
    if (s.name == baseline_name) {
      baseline = &s;
    }
  }
  EVQ_CHECK(baseline != nullptr, "normalization baseline missing from figure");
  if (!opts.csv) {
    std::printf("== %s ==\n", title.c_str());
    std::printf("(running time normalized to %s, as in the paper's Fig. 6c/6d)\n",
                baseline_name.c_str());
  }
  print_header(fig, opts.csv);
  for (std::size_t row = 0; row < fig.thread_counts.size(); ++row) {
    std::printf(opts.csv ? "%u" : "%-8u", fig.thread_counts[row]);
    const double base = baseline->by_threads[row].mean;
    for (const SeriesResult& s : fig.series) {
      const double norm = base > 0.0 ? s.by_threads[row].mean / base : 0.0;
      if (opts.csv) {
        std::printf(",%.4f", norm);
      } else {
        std::printf("  %10.3fx        ", norm);
      }
    }
    std::printf("\n");
  }
}

}  // namespace evq::harness
