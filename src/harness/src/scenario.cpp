#include "evq/harness/scenario.hpp"

#include <cstdio>
#include <cstdlib>
#include <optional>

#include "evq/common/config.hpp"
#include "evq/health/monitor.hpp"
#include "evq/perf/backend.hpp"

namespace evq::harness {

const ScenarioSeries* ScenarioResult::series_named(const std::string& name) const {
  for (const ScenarioSeries& s : series) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

CliOptions scenario_options(const ScenarioSpec& spec, const CliOverrides& overrides) {
  CliOptions opts;
  opts.thread_counts = spec.default_threads;
  opts.workload.iterations = spec.default_iters;
  opts.workload.runs = spec.default_runs;
  overrides.apply(opts);
  return opts;
}

ScenarioResult run_scenario(const ScenarioSpec& spec, const CliOptions& opts) {
  if (spec.run) {
    return spec.run(spec, opts);
  }
  // With --telemetry, the scenario's counter contribution is the registry
  // delta across the whole sweep: entries are never deleted, so a
  // before/after snapshot pair is exact even though queue instances come and
  // go per run.
  telemetry::RegistrySnapshot before;
  if (opts.telemetry) {
    before = telemetry::snapshot_registry();
  }
  // With --health, a caller-pumped Monitor runs across the sweep (one poll
  // per cell + a final one). Constructing it switches the latency reservoir
  // on; the A/B overhead gate in CI runs the same scenario with and without
  // this flag.
  std::optional<health::Monitor> monitor;
  ScenarioHealth health_digest;
  auto pump_health = [&] {
    if (!monitor) {
      return;
    }
    const health::HealthSnapshot s = monitor->poll();
    health_digest.polls = s.poll;
    bool seen[health::kFindingTypeCount] = {};
    for (const health::Finding& f : s.findings) {
      seen[static_cast<std::size_t>(f.type)] = true;
    }
    for (std::size_t i = 0; i < health::kFindingTypeCount; ++i) {
      if (seen[i]) {
        ++health_digest.finding_polls[i];
      }
    }
  };
  if (opts.health) {
    monitor.emplace();
    health_digest.enabled = true;
    monitor->poll();  // baseline: exclude pre-scenario counter history
  }
  ScenarioResult result;
  if (opts.perf) {
    perf::Backend& backend = perf::default_backend();
    result.perf.enabled = true;
    result.perf.backend = backend.name();
    result.perf.available = backend.available();
    result.perf.reason = backend.unavailable_reason();
    if (!backend.available()) {
      std::fprintf(stderr, "# perf: unavailable (%s)\n", result.perf.reason.c_str());
    }
  }
  result.name = spec.name;
  result.title = spec.title;
  result.axis = spec.axis;
  result.rows = spec.rows(opts);
  for (const QueueSpec& queue : spec.series()) {
    ScenarioSeries series{queue.name, queue.paper_label, {}};
    for (const ScenarioRow& row : result.rows) {
      std::fprintf(stderr, "# %-18s %s=%-6s iters=%llu runs=%u ...\n", queue.name.c_str(),
                   spec.axis.c_str(), row.label.c_str(),
                   static_cast<unsigned long long>(row.params.iterations), row.params.runs);
      const WorkloadResult w = run_workload_ex(queue, row.params);
      CellStats cell;
      cell.time = summarize(w.times());
      cell.throughput = w.throughput_ops_per_sec();
      cell.total_ops = w.total_ops();
      cell.latency = w.latency;
      cell.ops = w.ops;
      cell.has_ops = row.params.record_op_stats;
      cell.perf = w.perf;
      // A dead backend harvests ops but no events: the cell stays perf-less
      // and the scenario-level ScenarioPerf record explains why.
      cell.has_perf = row.params.record_perf && w.perf.any_available();
      series.cells.push_back(std::move(cell));
      pump_health();
    }
    result.series.push_back(std::move(series));
  }
  if (monitor) {
    const health::HealthSnapshot final_snap = monitor->last();
    for (const health::QueueRates& q : final_snap.queues) {
      if (q.ops > 0) {
        health_digest.queues.push_back(q);
      }
    }
    health_digest.findings = final_snap.findings;
    result.health = std::move(health_digest);
  }
  if (opts.telemetry) {
    const telemetry::RegistrySnapshot delta =
        telemetry::snapshot_delta(before, telemetry::snapshot_registry());
    for (const telemetry::QueueCounters& q : delta.queues) {
      if (q.counters.any()) {
        result.telemetry.push_back(q);
      }
    }
  }
  return result;
}

void print_scenario(const ScenarioSpec& spec, const ScenarioResult& result,
                    const CliOptions& opts) {
  if (opts.csv && spec.print_csv) {
    spec.print_csv(result, opts);
  } else if (!opts.csv && spec.print_table) {
    spec.print_table(result, opts);
  } else {
    print_absolute(result, opts, result.title);
  }
}

std::vector<ScenarioRow> thread_rows(const CliOptions& opts) {
  std::vector<ScenarioRow> rows;
  rows.reserve(opts.thread_counts.size());
  for (unsigned threads : opts.thread_counts) {
    WorkloadParams p = opts.workload;
    p.threads = threads;
    rows.push_back({std::to_string(threads), p});
  }
  return rows;
}

std::function<std::vector<QueueSpec>()> registry_series(std::vector<std::string> names) {
  return [names = std::move(names)]() {
    std::vector<QueueSpec> specs;
    specs.reserve(names.size());
    for (const std::string& name : names) {
      specs.push_back(find_queue(name));
    }
    return specs;
  };
}

namespace {

void print_header(const ScenarioResult& result, const std::string& axis, bool csv) {
  std::printf(csv ? "%s" : "%-8s", axis.c_str());
  for (const ScenarioSeries& s : result.series) {
    if (csv) {
      std::printf(",%s", s.name.c_str());
    } else {
      std::printf("  %-18s", s.name.c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

void print_absolute(const ScenarioResult& result, const CliOptions& opts,
                    const std::string& title) {
  if (!opts.csv) {
    std::printf("== %s ==\n", title.c_str());
    std::printf("(seconds per run: mean per-thread completion time; mean of %u runs)\n",
                opts.workload.runs);
  }
  print_header(result, result.axis, opts.csv);
  for (std::size_t row = 0; row < result.rows.size(); ++row) {
    std::printf(opts.csv ? "%s" : "%-8s", result.rows[row].label.c_str());
    for (const ScenarioSeries& s : result.series) {
      if (opts.csv) {
        std::printf(",%.6f", s.cells[row].time.mean);
      } else {
        std::printf("  %10.4f s       ", s.cells[row].time.mean);
      }
    }
    std::printf("\n");
  }
}

void print_normalized(const ScenarioResult& result, const CliOptions& opts,
                      const std::string& title, const std::string& baseline_name) {
  const ScenarioSeries* baseline = result.series_named(baseline_name);
  EVQ_CHECK(baseline != nullptr, "normalization baseline missing from figure");
  if (!opts.csv) {
    std::printf("== %s ==\n", title.c_str());
    std::printf("(running time normalized to %s, as in the paper's Fig. 6c/6d)\n",
                baseline_name.c_str());
  }
  print_header(result, result.axis, opts.csv);
  for (std::size_t row = 0; row < result.rows.size(); ++row) {
    std::printf(opts.csv ? "%s" : "%-8s", result.rows[row].label.c_str());
    const double base = baseline->cells[row].time.mean;
    for (const ScenarioSeries& s : result.series) {
      const double norm = base > 0.0 ? s.cells[row].time.mean / base : 0.0;
      if (opts.csv) {
        std::printf(",%.4f", norm);
      } else {
        std::printf("  %10.3fx        ", norm);
      }
    }
    std::printf("\n");
  }
}

const ScenarioSpec& find_scenario(const std::string& name) {
  for (const ScenarioSpec& spec : all_scenarios()) {
    if (spec.name == name) {
      return spec;
    }
  }
  std::fprintf(stderr, "unknown scenario '%s'; known scenarios:\n", name.c_str());
  for (const ScenarioSpec& spec : all_scenarios()) {
    std::fprintf(stderr, "  %-20s %s\n", spec.name.c_str(), spec.summary.c_str());
  }
  std::exit(2);
}

}  // namespace evq::harness
