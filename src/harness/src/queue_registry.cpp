#include "evq/harness/queue_registry.hpp"

#include <cstdio>
#include <cstdlib>

#include "evq/baselines/ms_ebr_queue.hpp"
#include "evq/baselines/ms_hp_queue.hpp"
#include "evq/baselines/ms_pool_queue.hpp"
#include "evq/baselines/ms_sim_queue.hpp"
#include "evq/baselines/mutex_queue.hpp"
#include "evq/baselines/shann_queue.hpp"
#include "evq/baselines/tsigas_zhang_queue.hpp"
#include "evq/baselines/unsync_ring.hpp"
#include "evq/common/backoff.hpp"
#include "evq/core/cas_array_queue.hpp"
#include "evq/core/combining_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/scq_queue.hpp"
#include "evq/core/segmented_queue.hpp"
#include "evq/core/sharded_queue.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/llsc/versioned_llsc.hpp"

namespace evq::harness {

namespace {

template <typename Q, typename... Args>
QueueFactory make_factory(Args... args) {
  return [args...](std::size_t capacity) -> std::unique_ptr<AnyQueue> {
    (void)capacity;
    if constexpr (std::is_constructible_v<Q, std::size_t, Args...>) {
      return std::make_unique<QueueAdapter<Q>>(capacity, args...);
    } else {
      return std::make_unique<QueueAdapter<Q>>(args...);
    }
  };
}

std::vector<QueueSpec> build_registry() {
  using baselines::MsHpQueue;
  using baselines::MsPoolQueue;
  using baselines::MsSimQueue;
  using baselines::MutexQueue;
  using baselines::ShannQueue;
  using baselines::UnsyncRing;
  using LlscQueue = LlscArrayQueue<Payload, llsc::VersionedLlsc>;
  using LlscPackedQueue = LlscArrayQueue<Payload, llsc::PackedLlsc>;

  std::vector<QueueSpec> specs;
  // The headline LL/SC analog is the single-word packed emulation: its LL is
  // a plain load, matching the cost profile of real lwarx/stwcx. The
  // versioned (double-width) emulation has the exact Fig. 2 semantics but
  // pays a cmpxchg16b per LL, which real LL/SC hardware does not — it is
  // kept as the reference-semantics variant for the A1 ablation.
  specs.push_back({"fifo-llsc", "FIFO Array LL/SC", true, true, true,
                   make_factory<LlscPackedQueue>()});
  specs.push_back({"fifo-llsc-versioned", "FIFO Array LL/SC (versioned DWCAS)", true, true, true,
                   make_factory<LlscQueue>("fifo-llsc-versioned")});
  specs.push_back({"fifo-simcas", "FIFO Array Simulated CAS", true, true, true,
                   make_factory<CasArrayQueue<Payload>>()});
  specs.push_back({"ms-hp", "MS-Hazard Pointers Not Sorted", false, true, true,
                   make_factory<MsHpQueue<Payload>>(hazard::ScanMode::kUnsorted, std::size_t{4})});
  specs.push_back({"ms-hp-sorted", "MS-Hazard Pointers Sorted", false, true, true,
                   make_factory<MsHpQueue<Payload>>(hazard::ScanMode::kSorted, std::size_t{4},
                                                    "ms-hp-sorted")});
  specs.push_back({"ms-doherty", "MS-Doherty et al.", false, true, true,
                   make_factory<MsSimQueue<Payload>>()});
  specs.push_back({"shann", "Shann et al. (CAS2w)", true, true, true,
                   make_factory<ShannQueue<Payload>>()});
  specs.push_back({"ms-pool", "MS free-pool", false, true, true,
                   make_factory<MsPoolQueue<Payload>>()});
  specs.push_back({"ms-ebr", "MS epoch-based reclamation", false, true, true,
                   make_factory<baselines::MsEbrQueue<Payload>>()});
  specs.push_back({"tsigas-zhang", "Tsigas-Zhang (two-null, assumption-bound)", true, true, true,
                   make_factory<baselines::TsigasZhangQueue<Payload>>()});
  specs.push_back({"mutex", "Mutex ring", true, true, true,
                   make_factory<MutexQueue<Payload>>()});
  specs.push_back({"unsync", "Unsynchronized ring", true, false, true,
                   make_factory<UnsyncRing<Payload>>()});
  // Contention-management ablation: the same two paper algorithms with
  // ExpBackoff threaded through every retry loop (bench_backoff's subjects).
  specs.push_back({"fifo-llsc-backoff", "FIFO Array LL/SC + exp backoff", true, true, true,
                   make_factory<LlscArrayQueue<Payload, llsc::PackedLlsc, ExpBackoff>>(
                       "fifo-llsc-backoff")});
  specs.push_back({"fifo-simcas-backoff", "FIFO Array Simulated CAS + exp backoff", true, true,
                   true, make_factory<CasArrayQueue<Payload, ExpBackoff>>("fifo-simcas-backoff")});
  // Sharded scaling layer: 4 shards over each paper algorithm. Per-producer
  // MPMC FIFO is traded away (fifo = false) for counter decontention.
  specs.push_back({"sharded-llsc", "Sharded FIFO Array LL/SC (4 shards)", true, true, false,
                   make_factory<ShardedLlscQueue<Payload>>(std::size_t{4}, "sharded-llsc")});
  specs.push_back({"sharded-simcas", "Sharded FIFO Array Simulated CAS (4 shards)", true, true,
                   false,
                   make_factory<ShardedCasQueue<Payload>>(std::size_t{4}, "sharded-simcas")});
  // SCQ generation (Nikolaev, arXiv:1908.04511): FAA ticket reservation over
  // cycle-tagged single-word entries — the post-paper state of the art the
  // head-to-head scenario benches against the Fig. 5/Fig. 3 rings.
  specs.push_back({"scq", "SCQ FAA ring (Nikolaev)", true, true, true,
                   make_factory<ScqQueue<Payload>>()});
  specs.push_back({"scq-backoff", "SCQ FAA ring + exp backoff", true, true, true,
                   make_factory<ScqQueue<Payload, ExpBackoff>>("scq-backoff")});
  specs.push_back({"sharded-scq", "Sharded SCQ FAA ring (4 shards)", true, true, false,
                   make_factory<ShardedQueue<ScqQueue<Payload>>>(std::size_t{4}, "sharded-scq")});
  // Segmented (unbounded) generation: linked chains of sealable rings, the
  // LCRQ/LSCQ composition. `capacity` sizes each SEGMENT; the queue itself is
  // unbounded (bounded = false), so the harness's full-queue assertions flip
  // to their push-always-succeeds duals.
  specs.push_back({"seg-cas", "Segmented FIFO Array Simulated CAS (LCRQ-style)", false, true, true,
                   make_factory<SegmentedQueue<CasArrayQueue<Payload>>>("seg-cas")});
  specs.push_back({"seg-scq", "Segmented SCQ FAA ring (LSCQ-style)", false, true, true,
                   make_factory<SegmentedQueue<ScqQueue<Payload>>>("seg-scq")});
  specs.push_back({"sharded-seg-scq", "Sharded Segmented SCQ (4 shards)", false, true, false,
                   make_factory<ShardedQueue<SegmentedQueue<ScqQueue<Payload>>>>(
                       std::size_t{4}, "sharded-seg-scq")});
  // Flat-combining facade (DESIGN.md §14): announce-record submission with a
  // single-word combiner lock draining batches through try_push_n/try_pop_n.
  // Adaptive — runs direct (ring speed) until contention is observed, so the
  // 1-thread overhead stays within the CI gate.
  specs.push_back({"comb-cas", "Combining over FIFO Array Simulated CAS", true, true, true,
                   make_factory<CombiningQueue<CasArrayQueue<Payload>>>("comb-cas")});
  specs.push_back({"comb-scq", "Combining over SCQ FAA ring", true, true, true,
                   make_factory<CombiningQueue<ScqQueue<Payload>>>("comb-scq")});
  specs.push_back({"sharded-comb-scq", "Sharded Combining SCQ (4 shards)", true, true, false,
                   make_factory<ShardedQueue<CombiningQueue<ScqQueue<Payload>>>>(
                       std::size_t{4}, "sharded-comb-scq")});
  return specs;
}

}  // namespace

const std::vector<QueueSpec>& all_queues() {
  static const std::vector<QueueSpec> specs = build_registry();
  return specs;
}

const QueueSpec& find_queue(const std::string& name) {
  for (const QueueSpec& spec : all_queues()) {
    if (spec.name == name) {
      return spec;
    }
  }
  std::fprintf(stderr, "unknown queue '%s'; known queues:\n", name.c_str());
  for (const QueueSpec& spec : all_queues()) {
    std::fprintf(stderr, "  %-18s %s\n", spec.name.c_str(), spec.paper_label.c_str());
  }
  std::exit(2);
}

}  // namespace evq::harness
