#include "evq/harness/bench_json.hpp"

#include <ctime>
#include <thread>

#include "evq/common/config.hpp"
#include "evq/harness/json_writer.hpp"

namespace evq::harness {

namespace {

const char* pattern_name(WorkloadPattern p) {
  switch (p) {
    case WorkloadPattern::kPaperBurst:
      return "paper-burst";
    case WorkloadPattern::kRandomMixed:
      return "random-mixed";
  }
  return "unknown";
}

void write_row(JsonWriter& w, const ScenarioRow& row) {
  w.begin_object();
  w.member("label", row.label);
  w.member("threads", row.params.threads);
  w.member("iterations", row.params.iterations);
  w.member("runs", row.params.runs);
  w.member("burst", row.params.burst);
  w.member("capacity", static_cast<std::uint64_t>(row.params.capacity));
  w.member("pattern", pattern_name(row.params.pattern));
  w.member("push_bias_pct", row.params.push_bias_pct);
  w.member("latency_sample_every", row.params.latency_sample_every);
  w.member("stable_cv", row.params.stable_cv);
  w.member("max_runs", row.params.max_runs);
  w.end_object();
}

void write_latency(JsonWriter& w, const LogHistogram& h) {
  w.key("latency_ns");
  w.begin_object();
  w.member("count", h.count());
  w.member("min", h.min());
  w.member("max", h.max());
  w.member("mean", h.mean());
  w.member("p50", h.p50());
  w.member("p90", h.p90());
  w.member("p99", h.p99());
  w.member("p999", h.p999());
  w.end_object();
}

void write_op_counters(JsonWriter& w, const stats::OpCounters& c) {
  w.key("op_counters");
  w.begin_object();
  w.member("cas_attempts", c.cas_attempts);
  w.member("cas_success", c.cas_success);
  w.member("wide_cas_attempts", c.wide_cas_attempts);
  w.member("wide_cas_success", c.wide_cas_success);
  w.member("wide_loads", c.wide_loads);
  w.member("faa", c.faa);
  w.member("slot_sc_attempts", c.slot_sc_attempts);
  w.member("slot_sc_failures", c.slot_sc_failures);
  w.member("help_advances", c.help_advances);
  w.member("hp_scans", c.hp_scans);
  w.member("hp_retired", c.hp_retired);
  w.member("hp_freed", c.hp_freed);
  w.end_object();
}

void write_telemetry(JsonWriter& w, const std::vector<telemetry::QueueCounters>& queues) {
  w.key("telemetry");
  w.begin_array();
  for (const telemetry::QueueCounters& q : queues) {
    w.begin_object();
    w.member("queue", q.queue);
    w.key("counters");
    w.begin_object();
    for (std::size_t c = 0; c < telemetry::kCounterCount; ++c) {
      // Only nonzero counters: keeps documents small and diffs readable.
      if (q.counters.counts[c] != 0) {
        w.member(telemetry::counter_name(static_cast<telemetry::Counter>(c)),
                 q.counters.counts[c]);
      }
    }
    w.end_object();
    if (q.has_depth) {
      w.member("depth", q.depth);
    }
    w.end_object();
  }
  w.end_array();
}

// Additive optional section (schema stays v1, same convention as
// "telemetry"): the scenario's health digest — final per-queue rates, active
// findings, and per-type active-poll counts.
void write_health(JsonWriter& w, const ScenarioHealth& h) {
  w.key("health");
  w.begin_object();
  w.member("schema_version",
           static_cast<std::uint64_t>(evq::health::kHealthSchemaVersion));
  w.member("polls", h.polls);
  w.key("finding_polls");
  w.begin_object();
  for (std::size_t i = 0; i < health::kFindingTypeCount; ++i) {
    w.member(health::finding_type_name(static_cast<health::FindingType>(i)),
             h.finding_polls[i]);
  }
  w.end_object();
  w.key("queues");
  w.begin_array();
  for (const health::QueueRates& q : h.queues) {
    w.begin_object();
    w.member("queue", q.queue);
    w.member("ops", q.ops);
    w.member("cas_fail_ratio", q.cas_fail_ratio);
    w.member("slot_skip_per_op", q.slot_skip_per_op);
    w.member("faa_waste", q.faa_waste);
    w.member("comb_engagement", q.comb_engagement);
    w.member("comb_mean_batch", q.comb_mean_batch);
    w.member("seg_in_flight", static_cast<std::int64_t>(q.seg_in_flight));
    if (q.push_p50_ns >= 0.0) {
      w.member("push_p50_ns", q.push_p50_ns);
      w.member("push_p99_ns", q.push_p99_ns);
    }
    if (q.pop_p50_ns >= 0.0) {
      w.member("pop_p50_ns", q.pop_p50_ns);
      w.member("pop_p99_ns", q.pop_p99_ns);
    }
    w.end_object();
  }
  w.end_array();
  w.key("findings");
  w.begin_array();
  for (const health::Finding& f : h.findings) {
    w.begin_object();
    w.member("type", health::finding_type_name(f.type));
    w.member("subject", f.subject);
    w.member("severity", f.severity);
    w.member("since_poll", f.since_poll);
    w.member("detail", f.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

// Per-cell hardware-counter attribution (--perf on a counting host). Per-op
// keys appear only for events the PMU provided; "ops" is the denominator the
// scopes actually attributed (== total_ops for the default sweep).
void write_cell_perf(JsonWriter& w, const perf::PerfAgg& agg) {
  w.key("perf");
  w.begin_object();
  w.member("ops", agg.ops);
  auto per_op = [&](const char* key, perf::Event e) {
    const double v = agg.per_op(e);
    if (v >= 0.0) {
      w.member(key, v);
    }
  };
  per_op("cycles_per_op", perf::Event::kCycles);
  per_op("instructions_per_op", perf::Event::kInstructions);
  if (const double ipc = agg.ipc(); ipc >= 0.0) {
    w.member("ipc", ipc);
  }
  per_op("l1d_miss_per_op", perf::Event::kL1dMisses);
  per_op("llc_miss_per_op", perf::Event::kLlcMisses);
  per_op("branch_miss_per_op", perf::Event::kBranchMisses);
  if (agg.has(perf::Event::kContextSwitches)) {
    w.member("ctx_switches", agg.total(perf::Event::kContextSwitches));
  }
  w.member("mux_scale", agg.worst_mux_scale);
  w.end_object();
}

// The scenario-level backend record (--perf): always present then, so a
// degraded host leaves an explicit reason instead of a missing section.
void write_scenario_perf(JsonWriter& w, const ScenarioPerf& p) {
  w.key("perf");
  w.begin_object();
  w.member("backend", p.backend);
  w.key("available");
  w.boolean(p.available);
  w.member("reason", p.reason);
  w.end_object();
}

void write_cell(JsonWriter& w, const CellStats& cell) {
  w.begin_object();
  w.member("mean_seconds", cell.time.mean);
  w.member("stddev_seconds", cell.time.stddev);
  w.member("median_seconds", cell.time.median);
  w.member("min_seconds", cell.time.min);
  w.member("max_seconds", cell.time.max);
  w.member("cv", cell.time.cv());
  w.member("runs_executed", static_cast<std::uint64_t>(cell.time.n));
  w.member("throughput_ops_per_sec", cell.throughput);
  w.member("total_ops", cell.total_ops);
  if (cell.latency.count() > 0) {
    write_latency(w, cell.latency);
  }
  if (cell.has_ops) {
    write_op_counters(w, cell.ops);
  }
  if (cell.has_perf) {
    write_cell_perf(w, cell.perf);
  }
  w.end_object();
}

void write_scenario(JsonWriter& w, const ScenarioResult& r) {
  w.begin_object();
  w.member("name", r.name);
  w.member("title", r.title);
  w.member("axis", r.axis);
  w.key("rows");
  w.begin_array();
  for (const ScenarioRow& row : r.rows) {
    write_row(w, row);
  }
  w.end_array();
  w.key("series");
  w.begin_array();
  for (const ScenarioSeries& s : r.series) {
    w.begin_object();
    w.member("name", s.name);
    w.member("label", s.label);
    w.key("cells");
    w.begin_array();
    for (const CellStats& cell : s.cells) {
      write_cell(w, cell);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  if (!r.telemetry.empty()) {
    write_telemetry(w, r.telemetry);
  }
  if (r.health.enabled) {
    write_health(w, r.health);
  }
  if (r.perf.enabled) {
    write_scenario_perf(w, r.perf);
  }
  w.end_object();
}

}  // namespace

BenchHostInfo current_host_info() {
  BenchHostInfo info;
  info.hardware_concurrency = std::thread::hardware_concurrency();
#if defined(__VERSION__)
  info.compiler = __VERSION__;
#else
  info.compiler = "unknown";
#endif
#if defined(NDEBUG)
  info.build = "Release";
#else
  info.build = "Debug";
#endif
  std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &now);
#else
  gmtime_r(&now, &tm_utc);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  info.timestamp = buf;
  return info;
}

std::string bench_results_to_json(const BenchHostInfo& host,
                                  const std::vector<ScenarioResult>& results,
                                  const std::vector<CliOptions>& options) {
  EVQ_CHECK(results.size() == options.size(), "results/options size mismatch");
  JsonWriter w;
  w.begin_object();
  w.member("schema_version", kBenchJsonSchemaVersion);
  w.member("generator", "evq-bench");
  if (!host.timestamp.empty()) {
    w.member("timestamp", host.timestamp);
  }
  w.key("host");
  w.begin_object();
  w.member("hardware_concurrency", host.hardware_concurrency);
  w.member("compiler", host.compiler);
  w.member("build", host.build);
  w.end_object();
  w.key("scenarios");
  w.begin_array();
  for (const ScenarioResult& r : results) {
    write_scenario(w, r);
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace evq::harness
