#include "evq/harness/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace evq::harness {

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads a,b,c] [--iters N] [--runs R] [--burst B]\n"
               "          [--capacity C] [--csv] [--paper]\n"
               "Runs with CI-scale defaults when given no arguments; --paper\n"
               "selects the paper's parameters (100000 iterations, 50 runs).\n",
               argv0);
  std::exit(2);
}

std::vector<unsigned> parse_list(const char* s, const char* argv0) {
  std::vector<unsigned> out;
  const char* p = s;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(p, &end, 10);
    if (end == p || v == 0) {
      usage(argv0);
    }
    out.push_back(static_cast<unsigned>(v));
    p = (*end == ',') ? end + 1 : end;
    if (*end != '\0' && *end != ',') {
      usage(argv0);
    }
  }
  if (out.empty()) {
    usage(argv0);
  }
  return out;
}

std::uint64_t parse_u64(const char* s, const char* argv0) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    usage(argv0);
  }
  return v;
}

}  // namespace

CliOptions parse_cli(int argc, char** argv, std::vector<unsigned> default_threads,
                     std::uint64_t default_iters, unsigned default_runs) {
  CliOptions opts;
  opts.thread_counts = std::move(default_threads);
  opts.workload.iterations = default_iters;
  opts.workload.runs = default_runs;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      usage(argv[0]);
    }
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0) {
      opts.thread_counts = parse_list(need_value(i), argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--iters") == 0) {
      opts.workload.iterations = parse_u64(need_value(i), argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--runs") == 0) {
      opts.workload.runs = static_cast<unsigned>(parse_u64(need_value(i), argv[0]));
      ++i;
    } else if (std::strcmp(arg, "--burst") == 0) {
      opts.workload.burst = static_cast<unsigned>(parse_u64(need_value(i), argv[0]));
      ++i;
    } else if (std::strcmp(arg, "--capacity") == 0) {
      opts.workload.capacity = static_cast<std::size_t>(parse_u64(need_value(i), argv[0]));
      ++i;
    } else if (std::strcmp(arg, "--csv") == 0) {
      opts.csv = true;
    } else if (std::strcmp(arg, "--paper") == 0) {
      opts.workload.iterations = 100000;
      opts.workload.runs = 50;
    } else {
      usage(argv[0]);
    }
  }
  if (opts.workload.runs == 0 || opts.workload.burst == 0) {
    usage(argv[0]);
  }
  return opts;
}

}  // namespace evq::harness
