#include "evq/harness/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace evq::harness {

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads a,b,c] [--iters N] [--runs R] [--burst B]\n"
               "          [--capacity C] [--csv] [--paper] [--latency-sample N]\n"
               "          [--stable-cv PCT] [--max-runs N] [--op-stats] [--telemetry]\n"
               "          [--health] [--perf] [--json PATH] [--trace PATH]\n"
               "          [--trace-sample N]\n"
               "Runs with CI-scale defaults when given no arguments; --paper\n"
               "selects the paper's parameters (100000 iterations, 50 runs).\n",
               argv0);
  std::exit(2);
}

std::vector<unsigned> parse_list(const char* s, const char* argv0) {
  std::vector<unsigned> out;
  const char* p = s;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(p, &end, 10);
    if (end == p || v == 0) {
      usage(argv0);
    }
    out.push_back(static_cast<unsigned>(v));
    p = (*end == ',') ? end + 1 : end;
    if (*end != '\0' && *end != ',') {
      usage(argv0);
    }
  }
  if (out.empty()) {
    usage(argv0);
  }
  return out;
}

std::uint64_t parse_u64(const char* s, const char* argv0) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    usage(argv0);
  }
  return v;
}

double parse_double(const char* s, const char* argv0) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || v < 0.0) {
    usage(argv0);
  }
  return v;
}

}  // namespace

void CliOverrides::apply(CliOptions& opts) const {
  if (thread_counts) {
    opts.thread_counts = *thread_counts;
  }
  if (paper) {
    opts.workload.iterations = 100000;
    opts.workload.runs = 50;
  }
  if (iterations) {
    opts.workload.iterations = *iterations;
  }
  if (runs) {
    opts.workload.runs = *runs;
  }
  if (burst) {
    opts.workload.burst = *burst;
  }
  if (capacity) {
    opts.workload.capacity = *capacity;
  }
  if (latency_sample_every) {
    opts.workload.latency_sample_every = *latency_sample_every;
  }
  if (stable_cv) {
    opts.workload.stable_cv = *stable_cv;
  }
  if (max_runs) {
    opts.workload.max_runs = *max_runs;
  }
  if (op_stats) {
    opts.workload.record_op_stats = true;
  }
  if (telemetry) {
    opts.telemetry = true;
  }
  if (health) {
    opts.health = true;
  }
  if (perf) {
    opts.perf = true;
    opts.workload.record_perf = true;
  }
  if (csv) {
    opts.csv = true;
  }
  if (!json_path.empty()) {
    opts.json_path = json_path;
  }
  if (!trace_path.empty()) {
    opts.trace_path = trace_path;
  }
  if (trace_sample_every) {
    opts.trace_sample_every = *trace_sample_every;
  } else if (!trace_path.empty()) {
    opts.trace_sample_every = 64;  // --trace alone: default 1-in-64
  }
}

CliOverrides parse_overrides(int argc, char** argv, int first) {
  CliOverrides ov;
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      usage(argv[0]);
    }
    return argv[i + 1];
  };

  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0) {
      ov.thread_counts = parse_list(need_value(i), argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--iters") == 0) {
      ov.iterations = parse_u64(need_value(i), argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--runs") == 0) {
      ov.runs = static_cast<unsigned>(parse_u64(need_value(i), argv[0]));
      ++i;
    } else if (std::strcmp(arg, "--burst") == 0) {
      ov.burst = static_cast<unsigned>(parse_u64(need_value(i), argv[0]));
      ++i;
    } else if (std::strcmp(arg, "--capacity") == 0) {
      ov.capacity = static_cast<std::size_t>(parse_u64(need_value(i), argv[0]));
      ++i;
    } else if (std::strcmp(arg, "--latency-sample") == 0) {
      ov.latency_sample_every = static_cast<unsigned>(parse_u64(need_value(i), argv[0]));
      ++i;
    } else if (std::strcmp(arg, "--stable-cv") == 0) {
      // Given as a percentage ("5" = stop once stddev/mean <= 0.05).
      ov.stable_cv = parse_double(need_value(i), argv[0]) / 100.0;
      ++i;
    } else if (std::strcmp(arg, "--max-runs") == 0) {
      ov.max_runs = static_cast<unsigned>(parse_u64(need_value(i), argv[0]));
      ++i;
    } else if (std::strcmp(arg, "--op-stats") == 0) {
      ov.op_stats = true;
    } else if (std::strcmp(arg, "--telemetry") == 0) {
      ov.telemetry = true;
    } else if (std::strcmp(arg, "--health") == 0) {
      ov.health = true;
    } else if (std::strcmp(arg, "--perf") == 0) {
      ov.perf = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      ov.json_path = need_value(i);
      ++i;
    } else if (std::strcmp(arg, "--trace") == 0) {
      ov.trace_path = need_value(i);
      ++i;
    } else if (std::strcmp(arg, "--trace-sample") == 0) {
      ov.trace_sample_every = static_cast<unsigned>(parse_u64(need_value(i), argv[0]));
      ++i;
    } else if (std::strcmp(arg, "--csv") == 0) {
      ov.csv = true;
    } else if (std::strcmp(arg, "--paper") == 0) {
      ov.paper = true;
    } else {
      usage(argv[0]);
    }
  }
  if ((ov.runs && *ov.runs == 0) || (ov.burst && *ov.burst == 0)) {
    usage(argv[0]);
  }
  return ov;
}

CliOptions parse_cli(int argc, char** argv, std::vector<unsigned> default_threads,
                     std::uint64_t default_iters, unsigned default_runs) {
  CliOptions opts;
  opts.thread_counts = std::move(default_threads);
  opts.workload.iterations = default_iters;
  opts.workload.runs = default_runs;
  parse_overrides(argc, argv).apply(opts);
  return opts;
}

}  // namespace evq::harness
