// evq::trace — sampled per-operation phase tracing (DESIGN.md §11).
//
// The telemetry counters (src/telemetry) say HOW OFTEN an op retried, backed
// off or help-advanced a lagging index; this layer says WHERE the
// nanoseconds of an individual operation went. A scoped OpProbe in the ring
// engine's push_one/pop_one (and ReclaimProbe in the HP/epoch/free-pool
// reclamation paths) records tsc-stamped span events — index load, slot
// attempt, backoff round, help-advance, reclaim — into pooled per-thread
// lock-free rings, and src/trace/chrome_trace.hpp exports them as Chrome
// Trace Format JSON that Perfetto renders as one track per thread with
// per-phase sub-slices and helper→helped flow arrows.
//
// Cost model (the reason this can ride in every build):
//  * Tracing disabled (default): the OpProbe constructor is one relaxed load
//    of the global sampling period plus a predictable branch — the same
//    shape as telemetry::record_trace and stats::on_cas.
//  * Tracing enabled at 1-in-N: unsampled ops additionally pay one
//    thread-local countdown decrement; only every Nth op per thread stamps
//    timestamps and writes ring records. EXPERIMENTS.md E7 pins the
//    measured overhead at 1-in-64 to <= 5% on the worst-case array queues.
//  * -DEVQ_TRACE=OFF (CMake option EVQ_TRACE): probe bodies compile to
//    nothing. The ring pool, snapshot and export APIs stay compiled (they
//    are cold) so instrumented code and tools need no #ifdefs — the
//    exported trace is simply empty.
//
// Ring infrastructure: this reuses the flight-recorder design one-for-one
// (telemetry/flight_recorder.hpp) — per-thread rings of all-relaxed-atomic
// records, written only by the owning thread, racily-but-atomically readable
// by dumpers while writers run (TSan-clean; a torn logical record is
// acceptable in a diagnostic, a data race is not); rings are pooled, reused
// across thread lifetimes, and every ring ever created stays reachable for
// export. It also reuses the flight recorder's trace_clock() (raw TSC on
// x86-64, steady_clock ticks elsewhere).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "evq/telemetry/flight_recorder.hpp"

#if !defined(EVQ_TRACE)
#define EVQ_TRACE 1
#endif

namespace evq::trace {

/// Reclaim probes from layers that are not wired to a queue use this id;
/// the exporter labels them "(unattributed)".
inline constexpr std::uint32_t kNoQueue = 0xFFFFFFFFu;

/// What a ring record describes. One operation produces one kOp record plus
/// its kPhase sub-slices; help-advance and reclamation get their own kinds
/// because the exporter treats them specially (flow events / always-on
/// recording, see below).
enum class EventKind : std::uint8_t {
  kOp = 0,      // one whole push/pop: code is an OpCode
  kPhase,       // a sub-slice of the enclosing op: code is a Phase
  kHelp,        // a help-advance span: code is a HelpTarget
  kReclaim,     // a reclamation-layer span: code is a ReclaimKind
};

/// Per-op phases of the ring engine's protocol (Fig. 3/Fig. 5 line ranges in
/// parentheses; see ring_engine.hpp for the E/D mapping).
enum class Phase : std::uint8_t {
  kIndexLoad = 0,  // index read + boundary check (E5-E7 / D5-D7)
  kSlotAttempt,    // reserve, re-validate, classify, commit (E8-E15 / D8-D15)
  kBackoff,        // one ContentionPolicy::pause() on a retry path
  kHelpAdvance,    // internal state while a help span is open (never exported
                   // as a kPhase record — it closes as a kHelp record)
  kFaaReserve,     // SCQ-generation ticket claim: the unconditional fetch_add
                   // (no load/validate round — distinct from kIndexLoad)
  kSlotSkip,       // SCQ dequeue skipping an entry: cycle bump or unsafe mark
                   // (a slot given up on, not an attempt — distinct from
                   // kSlotAttempt)
  kSegAppend,      // segmented-queue push slow path: seal the full segment,
                   // get a fresh one and link it
  kSegRetire,      // segmented-queue pop slow path: unlink a drained sealed
                   // segment and retire it to reclamation
};

enum class OpCode : std::uint8_t { kPushOk = 0, kPushFull, kPopOk, kPopEmpty };

/// Which lagging index a help-advance repaired. Tail-helps pair with the
/// push that committed at the index; head-helps pair with the pop.
/// kCombiner is the combining-queue flavor (core/combining_queue.hpp): the
/// combiner records the helper side when it applies a PEER's announced op,
/// the submitting thread records the helped side when it observes its record
/// completed, and the two join on the combiner's per-op serial (carried in
/// `index`) instead of a ring index.
enum class HelpTarget : std::uint8_t { kTail = 0, kHead, kCombiner };

enum class ReclaimKind : std::uint8_t { kHpScan = 0, kEpochAdvance, kPoolTake };

const char* op_code_name(OpCode c) noexcept;
const char* phase_name(Phase p) noexcept;
const char* help_target_name(HelpTarget t) noexcept;
const char* reclaim_kind_name(ReclaimKind k) noexcept;

/// One span record. All fields are relaxed atomics for the same reason as
/// ThreadTrace::Record: the exporter may read while the owner thread writes.
///
/// kHelp records live in their own small area (kHelpSpans) instead of the
/// main ring: helps are orders of magnitude rarer than phases, and in the
/// main ring a help recorded early in a run would be overwritten by phase
/// spam long before export. The separate area retains every recent help, so
/// the exporter can pair the helper's record with the helped thread's
/// always-on marker (see OpProbe::helped) even in million-op runs.
class SpanRing {
 public:
  // kSpans trades post-mortem depth against cache footprint: at 40 bytes per
  // record the main area is 40 KiB, small enough to stay L2-resident while a
  // sampled workload cycles through it. The first cut used 4096 (160 KiB)
  // and the extra evictions nearly doubled the measured 1-in-64 overhead on
  // the 30ns-per-op array queues.
  static constexpr std::size_t kSpans = 1024;      // power of two
  static constexpr std::size_t kHelpSpans = 512;   // power of two

  struct Record {
    std::atomic<std::uint64_t> t_start{0};
    std::atomic<std::uint64_t> t_end{0};
    std::atomic<std::uint64_t> index{0};       // op/help slot index; 0 for reclaim
    std::atomic<std::uint32_t> queue_id{0};    // telemetry registry id (or kNoQueue)
    std::atomic<std::uint32_t> extra{0};       // op: retries; others: 0
    std::atomic<std::uint32_t> thread_ord{0};  // owner at write time (rings are reused)
    std::atomic<std::uint8_t> kind{0};         // EventKind
    std::atomic<std::uint8_t> code{0};         // OpCode/Phase/HelpTarget/ReclaimKind
  };

  /// Single-writer: only the owning thread records, so the position bump is
  /// a plain load+store, not an RMW — a lock-prefixed xadd would cost more
  /// than the rest of the record write combined.
  void record(EventKind kind, std::uint8_t code, std::uint32_t queue_id,
              std::uint64_t index, std::uint32_t extra, std::uint64_t t_start,
              std::uint64_t t_end) noexcept {
    const std::uint64_t at = pos_.load(std::memory_order_relaxed);
    pos_.store(at + 1, std::memory_order_relaxed);
    write(records_[at & (kSpans - 1)], kind, code, queue_id, index, extra, t_start, t_end);
  }

  /// Records into the help area. `extra` distinguishes the two sides of a
  /// help: 0 = helper (this thread advanced a peer's index), 1 = helped
  /// (this thread's own publish found the index already advanced).
  void record_help(std::uint8_t code, std::uint32_t queue_id, std::uint64_t index,
                   std::uint32_t extra, std::uint64_t t_start,
                   std::uint64_t t_end) noexcept {
    const std::uint64_t at = help_pos_.load(std::memory_order_relaxed);
    help_pos_.store(at + 1, std::memory_order_relaxed);
    write(help_records_[at & (kHelpSpans - 1)], EventKind::kHelp, code, queue_id, index,
          extra, t_start, t_end);
  }

  [[nodiscard]] std::uint64_t total_records() const noexcept {
    return pos_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const Record& record_at(std::uint64_t logical_pos) const noexcept {
    return records_[logical_pos & (kSpans - 1)];
  }
  [[nodiscard]] std::uint64_t total_help_records() const noexcept {
    return help_pos_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const Record& help_record_at(std::uint64_t logical_pos) const noexcept {
    return help_records_[logical_pos & (kHelpSpans - 1)];
  }
  [[nodiscard]] std::uint32_t owner_ordinal() const noexcept {
    return owner_ord_.load(std::memory_order_relaxed);
  }

  void assign_owner(std::uint32_t ordinal) noexcept {
    owner_ord_.store(ordinal, std::memory_order_relaxed);
  }
  void reset() noexcept {
    pos_.store(0, std::memory_order_relaxed);
    help_pos_.store(0, std::memory_order_relaxed);
  }

 private:
  void write(Record& r, EventKind kind, std::uint8_t code, std::uint32_t queue_id,
             std::uint64_t index, std::uint32_t extra, std::uint64_t t_start,
             std::uint64_t t_end) noexcept {
    r.t_start.store(t_start, std::memory_order_relaxed);
    r.t_end.store(t_end, std::memory_order_relaxed);
    r.index.store(index, std::memory_order_relaxed);
    r.queue_id.store(queue_id, std::memory_order_relaxed);
    r.extra.store(extra, std::memory_order_relaxed);
    r.thread_ord.store(owner_ord_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    r.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
    r.code.store(code, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> pos_{0};
  std::atomic<std::uint64_t> help_pos_{0};
  std::atomic<std::uint32_t> owner_ord_{0};
  Record records_[kSpans];
  Record help_records_[kHelpSpans];
};

namespace detail {

/// 0 = tracing off; N>0 = each thread records every Nth probe.
extern std::atomic<std::uint32_t> g_sample_every;

/// This thread's ring / sampling countdown (defined in trace.cpp —
/// deliberately NOT inline/COMDAT thread_locals, same reasoning as op_stats).
extern thread_local SpanRing* t_ring;
extern thread_local std::uint32_t t_countdown;

SpanRing& attach_ring();

/// The per-probe sampling gate: arms every `period`-th call on this thread
/// (the first call after enabling always arms, which makes sampling ratios
/// deterministic in tests). Countdown-first so the common unsampled probe
/// touches ONLY the thread-local counter — the global period is consulted
/// just when the countdown expires (and on every probe while tracing is
/// off, where it reads 0 and stays false).
inline bool arm_sample() noexcept {
  const std::uint32_t cd = t_countdown;
  if (cd > 1) {
    t_countdown = cd - 1;
    return false;
  }
  const std::uint32_t every = g_sample_every.load(std::memory_order_relaxed);
  if (every == 0) {
    return false;
  }
  t_countdown = every;
  return true;
}

inline SpanRing& ring() noexcept {
  SpanRing* r = t_ring;
  return r != nullptr ? *r : attach_ring();
}

// --- test seams (trace_test.cpp) ---
/// Clears the pool (rings move to a leaked graveyard), resets ordinals and
/// detaches the calling thread. Only for tests: racing threads must have
/// been joined.
void reset_for_test();
/// Appends a fresh ring with the next ordinal without attaching it to any
/// thread — lets a single-threaded test fabricate multi-track traces.
SpanRing& make_ring_for_test();

}  // namespace detail

/// Enables recording at 1-in-`every` ops per thread (1 = every op,
/// 0 = disable). Also resets the calling thread's countdown so its next
/// probe arms immediately.
void set_sampling(std::uint32_t every) noexcept;
[[nodiscard]] std::uint32_t sampling_period() noexcept;
inline bool enabled() noexcept {
  return detail::g_sample_every.load(std::memory_order_relaxed) != 0;
}

/// Plain-integer copy of one ring record plus its owning ring's ordinal —
/// what the exporter (and tests) consume.
struct SpanSnapshot {
  std::uint32_t thread_ord = 0;
  EventKind kind = EventKind::kOp;
  std::uint8_t code = 0;
  std::uint32_t queue_id = 0;
  std::uint32_t extra = 0;
  std::uint64_t index = 0;
  std::uint64_t t_start = 0;
  std::uint64_t t_end = 0;
};

/// Racy-but-atomic snapshot of every ring's surviving window (newest kSpans
/// records per ring), in per-ring write order. Safe while writers run.
std::vector<SpanSnapshot> snapshot_spans();

/// RAII probe wrapping one ring-engine operation. The ring engine drives it
/// explicitly:
///
///   OpProbe probe(queue_id, OpKind::kPush);
///   loop:
///     probe.begin_phase(Phase::kIndexLoad);   // closes the previous phase
///     ... probe.begin_phase(Phase::kSlotAttempt); ...
///     on help: probe.begin_phase(Phase::kHelpAdvance); <advance>;
///              probe.help_advance(index, HelpTarget::kTail);
///     on exit: probe.finish(OpCode::..., index, retries);
///
/// Every method is a no-op unless the constructor's sampling gate armed —
/// EXCEPT help_advance, which records an instant event even on unsampled
/// ops whenever tracing is enabled: help events are rare, they are the
/// paper's signature mechanism, and the exporter needs them on BOTH sides
/// to draw a helper→helped flow, so dropping 63 of 64 would leave almost
/// no pairs.
class OpProbe {
 public:
  enum class OpKind : std::uint8_t { kPush = 0, kPop };

  /// Values of SpanSnapshot::extra on kHelp records.
  static constexpr std::uint32_t kHelperSide = 0;
  static constexpr std::uint32_t kHelpedSide = 1;

  /// The constructor takes no timestamp: the ring engine opens its first
  /// phase immediately after constructing the probe, so that phase's stamp
  /// doubles as the op start (one rdtsc saved per sampled op).
  OpProbe(std::uint32_t queue_id, OpKind kind) noexcept {
#if EVQ_TRACE
    queue_id_ = queue_id;
    kind_ = kind;
    armed_ = detail::arm_sample();
#else
    (void)queue_id;
    (void)kind;
#endif
  }

  OpProbe(const OpProbe&) = delete;
  OpProbe& operator=(const OpProbe&) = delete;
  ~OpProbe() = default;  // ring-engine ops always reach finish()

  /// Starts phase `p`, emitting the previous phase's sub-slice (if any).
  void begin_phase(Phase p) noexcept {
#if EVQ_TRACE
    if (!armed_) {
      return;
    }
    const std::uint64_t now = telemetry::trace_clock();
    close_phase(now);
    phase_ = static_cast<std::uint8_t>(p);
    t_phase_start_ = now;
    if (t_op_start_ == 0) {
      t_op_start_ = now;
    }
#else
    (void)p;
#endif
  }

  /// Records the help-advance span opened by begin_phase(kHelpAdvance) and
  /// its target index. On unsampled ops (tracing enabled) this still emits
  /// an instant help event — see the class comment. Help records go to the
  /// ring's dedicated help area so they survive phase-record churn.
  void help_advance(std::uint64_t index, HelpTarget target) noexcept {
#if EVQ_TRACE
    if (armed_) {
      const std::uint64_t now = telemetry::trace_clock();
      detail::ring().record_help(static_cast<std::uint8_t>(target), queue_id_, index,
                                 kHelperSide, t_phase_start_, now);
      phase_ = kNoPhase;
      t_phase_start_ = now;
    } else if (enabled()) {
      const std::uint64_t now = telemetry::trace_clock();
      detail::ring().record_help(static_cast<std::uint8_t>(target), queue_id_, index,
                                 kHelperSide, now, now);
    }
#else
    (void)index;
    (void)target;
#endif
  }

  /// The other side of a help: this op's own index publish found the index
  /// already advanced — a peer helped it. Always recorded (instant event)
  /// when tracing is enabled, like the helper side, so the exporter can
  /// join the two into a flow arrow regardless of sampling. Best-effort on
  /// weak LL/SC indices, where a spurious SC failure also lands here (the
  /// exporter drops markers with no matching helper).
  void helped(std::uint64_t index, HelpTarget target) noexcept {
#if EVQ_TRACE
    if (enabled()) {
      const std::uint64_t now = telemetry::trace_clock();
      detail::ring().record_help(static_cast<std::uint8_t>(target), queue_id_, index,
                                 kHelpedSide, now, now);
    }
#else
    (void)index;
    (void)target;
#endif
  }

  /// Ends the op: emits the last phase sub-slice and the op span itself.
  void finish(OpCode code, std::uint64_t index, std::uint32_t retries) noexcept {
#if EVQ_TRACE
    if (!armed_) {
      return;
    }
    const std::uint64_t now = telemetry::trace_clock();
    close_phase(now);
    detail::ring().record(EventKind::kOp, static_cast<std::uint8_t>(code), queue_id_,
                          index, retries, t_op_start_ != 0 ? t_op_start_ : now, now);
    armed_ = false;
#else
    (void)code;
    (void)index;
    (void)retries;
#endif
  }

 private:
#if EVQ_TRACE
  static constexpr std::uint8_t kNoPhase = 0xFF;

  void close_phase(std::uint64_t now) noexcept {
    if (phase_ != kNoPhase) {
      detail::ring().record(EventKind::kPhase, phase_, queue_id_, 0, 0,
                            t_phase_start_, now);
    }
  }

  std::uint32_t queue_id_ = kNoQueue;
  OpKind kind_ = OpKind::kPush;
  bool armed_ = false;
  std::uint8_t phase_ = kNoPhase;
  std::uint64_t t_op_start_ = 0;
  std::uint64_t t_phase_start_ = 0;
#endif
};

/// RAII span over one reclamation pass (HP scan, epoch-advance attempt,
/// free-pool take). Subject to the same per-thread 1-in-N gate as OpProbe:
/// the free-pool take sits on the MS-pool hot path, so it cannot record
/// unconditionally.
class ReclaimProbe {
 public:
  ReclaimProbe(std::uint32_t queue_id, ReclaimKind kind) noexcept {
#if EVQ_TRACE
    armed_ = detail::arm_sample();
    if (armed_) {
      queue_id_ = queue_id;
      kind_ = kind;
      t_start_ = telemetry::trace_clock();
    }
#else
    (void)queue_id;
    (void)kind;
#endif
  }

  ReclaimProbe(const ReclaimProbe&) = delete;
  ReclaimProbe& operator=(const ReclaimProbe&) = delete;

  ~ReclaimProbe() noexcept {
#if EVQ_TRACE
    if (armed_) {
      detail::ring().record(EventKind::kReclaim, static_cast<std::uint8_t>(kind_),
                            queue_id_, 0, 0, t_start_, telemetry::trace_clock());
    }
#endif
  }

 private:
#if EVQ_TRACE
  bool armed_ = false;
  std::uint32_t queue_id_ = kNoQueue;
  ReclaimKind kind_ = ReclaimKind::kHpScan;
  std::uint64_t t_start_ = 0;
#endif
};

}  // namespace evq::trace
