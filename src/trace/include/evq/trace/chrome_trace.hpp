// Chrome Trace Format export of the evq::trace span rings.
//
// Emits the JSON object form ({"traceEvents": [...]}) of the Trace Event
// Format that chrome://tracing and Perfetto load directly:
//
//  * one track per recorded thread ordinal (pid 0, tid = ordinal, named via
//    an "M" thread_name metadata event);
//  * each sampled operation is a "ph":"X" duration event (cat "op", name
//    push_ok/push_full/pop_ok/pop_empty) whose phase sub-slices (cat
//    "phase": index_load, slot_attempt, backoff) nest inside it by time
//    containment;
//  * help-advance spans are duration events (cat "help") that additionally
//    open a flow ("ph":"s") closed ("ph":"f", bp "e") on the op that
//    committed at the helped index — Perfetto draws the helper→helped
//    arrow. Pairing happens here at export time by (queue, index, op kind):
//    no runtime coordination between helper and helped is needed;
//  * reclamation spans are duration events (cat "reclaim").
//
// Timestamps: ring records hold raw trace_clock() ticks; export converts to
// the format's microseconds using a steady_clock calibration (or the caller
// override in ExportOptions, which the golden test uses for byte-stable
// output).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace evq::trace {

struct ExportOptions {
  /// Nanoseconds per trace_clock() tick; 0 = calibrate automatically.
  double ns_per_tick = 0.0;
  /// Tick value mapped to ts=0; kAutoOrigin = the earliest recorded tick.
  static constexpr std::uint64_t kAutoOrigin = ~std::uint64_t{0};
  std::uint64_t origin = kAutoOrigin;
  /// Free-form caller annotations, emitted as global instant events on a
  /// dedicated "health" track at ts=0. The torture watchdog routes the
  /// health layer's active findings here so a wedge trace opens in Perfetto
  /// with the diagnosis pinned alongside the spans.
  std::vector<std::string> annotations;
};

/// Writes every surviving ring record as Chrome Trace Format JSON. Safe to
/// call while writer threads are live (racy-but-atomic ring reads); with
/// -DEVQ_TRACE=OFF (or tracing never enabled) the document is valid and
/// empty.
void export_chrome_trace(std::ostream& os, const ExportOptions& options = {});

}  // namespace evq::trace
