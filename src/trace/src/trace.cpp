// Out-of-line evq::trace state: the ring pool, sampling globals and the
// Chrome Trace Format exporter. Like telemetry.cpp, this TU is linked into
// every binary including the fault-injected torture build, so it must stay
// free of injectable headers — it includes only trace/, telemetry/ and
// common/ (the probes that DO sit in injectable headers are header-only and
// compile inside each binary's own TUs).
#include "evq/trace/trace.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "evq/telemetry/registry.hpp"
#include "evq/trace/chrome_trace.hpp"

namespace evq::trace {

const char* op_code_name(OpCode c) noexcept {
  switch (c) {
    case OpCode::kPushOk:
      return "push_ok";
    case OpCode::kPushFull:
      return "push_full";
    case OpCode::kPopOk:
      return "pop_ok";
    case OpCode::kPopEmpty:
      return "pop_empty";
  }
  return "unknown";
}

const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kIndexLoad:
      return "index_load";
    case Phase::kSlotAttempt:
      return "slot_attempt";
    case Phase::kBackoff:
      return "backoff";
    case Phase::kHelpAdvance:
      return "help_advance";
    case Phase::kFaaReserve:
      return "faa_reserve";
    case Phase::kSlotSkip:
      return "slot_skip";
    case Phase::kSegAppend:
      return "seg_append";
    case Phase::kSegRetire:
      return "seg_retire";
  }
  return "unknown";
}

const char* help_target_name(HelpTarget t) noexcept {
  switch (t) {
    case HelpTarget::kTail:
      return "tail";
    case HelpTarget::kHead:
      return "head";
    case HelpTarget::kCombiner:
      return "combiner";
  }
  return "unknown";
}

const char* reclaim_kind_name(ReclaimKind k) noexcept {
  switch (k) {
    case ReclaimKind::kHpScan:
      return "hp_scan";
    case ReclaimKind::kEpochAdvance:
      return "epoch_advance";
    case ReclaimKind::kPoolTake:
      return "pool_take";
  }
  return "unknown";
}

namespace detail {

std::atomic<std::uint32_t> g_sample_every{0};
thread_local SpanRing* t_ring = nullptr;
thread_local std::uint32_t t_countdown = 0;

namespace {

std::mutex& pool_mutex() {
  static std::mutex mu;
  return mu;
}

struct RingPool {
  std::vector<SpanRing*> all;   // every ring ever created, attach order
  std::vector<SpanRing*> free;  // rings of exited threads, ready to reuse
  std::uint32_t next_ordinal = 0;
};

RingPool& ring_pool() {
  // Leaked on purpose: exports must work during process teardown (the
  // torture watchdog dumps from a detached timeout thread).
  static RingPool* pool = new RingPool();
  return *pool;
}

/// Thread-exit hook mirroring the flight recorder's TraceOwner: the ring
/// returns to the free list but stays reachable through RingPool::all.
struct RingOwner {
  SpanRing* ring = nullptr;
  ~RingOwner() {
    if (ring != nullptr) {
      std::lock_guard<std::mutex> lock(pool_mutex());
      ring_pool().free.push_back(ring);
    }
  }
};

thread_local RingOwner t_owner;

}  // namespace

SpanRing& attach_ring() {
  std::lock_guard<std::mutex> lock(pool_mutex());
  RingPool& pool = ring_pool();
  SpanRing* r;
  if (!pool.free.empty()) {
    r = pool.free.back();
    pool.free.pop_back();
  } else {
    r = new SpanRing();
    pool.all.push_back(r);
  }
  r->assign_owner(pool.next_ordinal++);
  t_owner.ring = r;
  t_ring = r;
  return *r;
}

void reset_for_test() {
  std::lock_guard<std::mutex> lock(pool_mutex());
  RingPool& pool = ring_pool();
  // Rings may still be referenced by exited threads' destructors queued on
  // other threads, so they are leaked (graveyard), not freed.
  pool.all.clear();
  pool.free.clear();
  pool.next_ordinal = 0;
  t_ring = nullptr;
  t_owner.ring = nullptr;
  t_countdown = 0;
}

SpanRing& make_ring_for_test() {
  std::lock_guard<std::mutex> lock(pool_mutex());
  RingPool& pool = ring_pool();
  SpanRing* r = new SpanRing();
  r->assign_owner(pool.next_ordinal++);
  pool.all.push_back(r);
  return *r;
}

}  // namespace detail

void set_sampling(std::uint32_t every) noexcept {
  detail::g_sample_every.store(every, std::memory_order_relaxed);
  detail::t_countdown = 0;  // this thread's next probe arms immediately
}

std::uint32_t sampling_period() noexcept {
  return detail::g_sample_every.load(std::memory_order_relaxed);
}

std::vector<SpanSnapshot> snapshot_spans() {
  std::vector<SpanRing*> rings;
  {
    std::lock_guard<std::mutex> lock(detail::pool_mutex());
    rings = detail::ring_pool().all;
  }
  std::vector<SpanSnapshot> out;
  auto copy_record = [&out](const SpanRing::Record& r) {
    SpanSnapshot s;
    s.thread_ord = r.thread_ord.load(std::memory_order_relaxed);
    s.kind = static_cast<EventKind>(r.kind.load(std::memory_order_relaxed));
    s.code = r.code.load(std::memory_order_relaxed);
    s.queue_id = r.queue_id.load(std::memory_order_relaxed);
    s.extra = r.extra.load(std::memory_order_relaxed);
    s.index = r.index.load(std::memory_order_relaxed);
    s.t_start = r.t_start.load(std::memory_order_relaxed);
    s.t_end = r.t_end.load(std::memory_order_relaxed);
    out.push_back(s);
  };
  for (const SpanRing* ring : rings) {
    const std::uint64_t total = ring->total_records();
    const std::uint64_t window = total < SpanRing::kSpans ? total : SpanRing::kSpans;
    for (std::uint64_t i = total - window; i < total; ++i) {
      copy_record(ring->record_at(i));
    }
    const std::uint64_t helps = ring->total_help_records();
    const std::uint64_t help_window =
        helps < SpanRing::kHelpSpans ? helps : SpanRing::kHelpSpans;
    for (std::uint64_t i = helps - help_window; i < helps; ++i) {
      copy_record(ring->help_record_at(i));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Chrome Trace Format export
// ---------------------------------------------------------------------------

namespace {

/// trace_clock() ns-per-tick, calibrated like harness/tsc.hpp (a short spin
/// against steady_clock); 1.0 on the steady_clock fallback.
double calibrate_ns_per_tick() {
#if defined(__x86_64__)
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t c0 = telemetry::trace_clock();
  for (;;) {
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t c1 = telemetry::trace_clock();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    if (ns >= 2'000'000 && c1 > c0) {
      return static_cast<double>(ns) / static_cast<double>(c1 - c0);
    }
  }
#else
  return 1.0;
#endif
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  return out;
}

/// queue_id -> registered queue name, via the global telemetry registry.
std::unordered_map<std::uint32_t, std::string> queue_names() {
  std::unordered_map<std::uint32_t, std::string> names;
  telemetry::Registry::global().for_each(
      [&](const telemetry::Registry::Entry& e, std::size_t, std::uint64_t) {
        names.emplace(e.id, e.name);
      });
  return names;
}

/// Track id for caller annotations — far above any real thread ordinal so
/// the health track sorts last and never collides with a worker track.
constexpr std::uint32_t kAnnotationTid = 1'000'000;

struct Emitter {
  std::ostream& os;
  double us_per_tick;
  std::uint64_t origin;
  bool first = true;

  void open() { os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"; }
  void close() { os << (first ? "" : "\n") << "]}\n"; }

  void begin_event() {
    if (!first) {
      os << ",\n";
    }
    first = false;
  }

  [[nodiscard]] std::string ts(std::uint64_t ticks) const {
    const std::uint64_t rel = ticks >= origin ? ticks - origin : 0;
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(rel) * us_per_tick);
    return buf;
  }
};

}  // namespace

void export_chrome_trace(std::ostream& os, const ExportOptions& options) {
  const std::vector<SpanSnapshot> spans = snapshot_spans();

  double ns_per_tick = options.ns_per_tick;
  if (ns_per_tick <= 0.0) {
    static const double calibrated = calibrate_ns_per_tick();
    ns_per_tick = calibrated;
  }
  std::uint64_t origin = options.origin;
  if (origin == ExportOptions::kAutoOrigin) {
    origin = 0;
    bool seen = false;
    for (const SpanSnapshot& s : spans) {
      if (!seen || s.t_start < origin) {
        origin = s.t_start;
        seen = true;
      }
    }
  }

  const std::unordered_map<std::uint32_t, std::string> names = queue_names();
  auto queue_label = [&](std::uint32_t id) -> std::string {
    if (id == kNoQueue) {
      return "(unattributed)";
    }
    auto it = names.find(id);
    return it != names.end() ? json_escape(it->second) : std::to_string(id);
  };

  Emitter e{os, ns_per_tick / 1000.0, origin};
  e.open();

  // Track names, in ordinal order.
  std::vector<std::uint32_t> ords;
  for (const SpanSnapshot& s : spans) {
    bool known = false;
    for (std::uint32_t o : ords) {
      known = known || o == s.thread_ord;
    }
    if (!known) {
      ords.push_back(s.thread_ord);
    }
  }
  for (std::uint32_t o : ords) {
    e.begin_event();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << o
       << ",\"args\":{\"name\":\"evq worker " << o << "\"}}";
  }

  // Flow-finish anchors for helper events, by (queue, index, side). Two
  // sources, in preference order: the helped thread's always-on marker
  // (OpProbe::helped — exact, exists regardless of sampling) and, as a
  // fallback, a sampled committed-op record at the same index. Several
  // same-name queue instances share a telemetry id, so a key can recur
  // across runs — keeping the first occurrence is a best-effort pairing,
  // which is all a sampled diagnostic promises.
  struct OpRef {
    std::uint32_t tid;
    std::uint64_t t_end;
  };
  // Key suffix disambiguates the index space: ":e"/":d" are ring tail/head
  // indices, ":c" is the combiner's own serial space (combiner helps join on
  // the serial the combiner stamped into the announce record, never on a
  // ring index).
  auto op_key = [](std::uint32_t queue_id, std::uint64_t index, HelpTarget target) {
    const char* side = target == HelpTarget::kTail ? ":e"
                       : target == HelpTarget::kHead ? ":d"
                                                     : ":c";
    return std::to_string(queue_id) + ":" + std::to_string(index) + side;
  };
  std::unordered_map<std::string, OpRef> committed;
  for (const SpanSnapshot& s : spans) {
    if (s.kind == EventKind::kHelp && s.extra == OpProbe::kHelpedSide) {
      committed.emplace(op_key(s.queue_id, s.index, static_cast<HelpTarget>(s.code)),
                        OpRef{s.thread_ord, s.t_end});
    }
  }
  for (const SpanSnapshot& s : spans) {
    if (s.kind != EventKind::kOp) {
      continue;
    }
    const OpCode code = static_cast<OpCode>(s.code);
    if (code == OpCode::kPushOk || code == OpCode::kPopOk) {
      committed.emplace(op_key(s.queue_id, s.index,
                               code == OpCode::kPushOk ? HelpTarget::kTail : HelpTarget::kHead),
                        OpRef{s.thread_ord, s.t_end});
    }
  }

  std::uint64_t next_flow_id = 1;
  for (const SpanSnapshot& s : spans) {
    const std::string dur = [&] {
      const std::uint64_t d = s.t_end >= s.t_start ? s.t_end - s.t_start : 0;
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(d) * e.us_per_tick);
      return std::string(buf);
    }();
    switch (s.kind) {
      case EventKind::kOp:
        e.begin_event();
        os << "{\"ph\":\"X\",\"name\":\"" << op_code_name(static_cast<OpCode>(s.code))
           << "\",\"cat\":\"op\",\"pid\":0,\"tid\":" << s.thread_ord << ",\"ts\":"
           << e.ts(s.t_start) << ",\"dur\":" << dur << ",\"args\":{\"queue\":\""
           << queue_label(s.queue_id) << "\",\"index\":" << s.index
           << ",\"retries\":" << s.extra << "}}";
        break;
      case EventKind::kPhase:
        e.begin_event();
        os << "{\"ph\":\"X\",\"name\":\"" << phase_name(static_cast<Phase>(s.code))
           << "\",\"cat\":\"phase\",\"pid\":0,\"tid\":" << s.thread_ord << ",\"ts\":"
           << e.ts(s.t_start) << ",\"dur\":" << dur << ",\"args\":{\"queue\":\""
           << queue_label(s.queue_id) << "\"}}";
        break;
      case EventKind::kHelp: {
        const HelpTarget target = static_cast<HelpTarget>(s.code);
        const bool helper = s.extra == OpProbe::kHelperSide;
        e.begin_event();
        os << "{\"ph\":\"X\",\"name\":\"" << (helper ? "help_advance" : "helped")
           << "\",\"cat\":\"help\",\"pid\":0,\"tid\":"
           << s.thread_ord << ",\"ts\":" << e.ts(s.t_start) << ",\"dur\":" << dur
           << ",\"args\":{\"queue\":\"" << queue_label(s.queue_id) << "\",\"index\":"
           << s.index << ",\"target\":\"" << help_target_name(target) << "\"}}";
        if (!helper) {
          break;  // flow arrows start at the helper only
        }
        const auto it = committed.find(op_key(s.queue_id, s.index, target));
        if (it != committed.end() && it->second.tid != s.thread_ord) {
          const std::uint64_t id = next_flow_id++;
          e.begin_event();
          os << "{\"ph\":\"s\",\"name\":\"help\",\"cat\":\"help\",\"id\":" << id
             << ",\"pid\":0,\"tid\":" << s.thread_ord << ",\"ts\":" << e.ts(s.t_start)
             << "}";
          e.begin_event();
          os << "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"help\",\"cat\":\"help\",\"id\":"
             << id << ",\"pid\":0,\"tid\":" << it->second.tid << ",\"ts\":"
             << e.ts(it->second.t_end) << "}";
        }
        break;
      }
      case EventKind::kReclaim:
        e.begin_event();
        os << "{\"ph\":\"X\",\"name\":\"" << reclaim_kind_name(static_cast<ReclaimKind>(s.code))
           << "\",\"cat\":\"reclaim\",\"pid\":0,\"tid\":" << s.thread_ord << ",\"ts\":"
           << e.ts(s.t_start) << ",\"dur\":" << dur << ",\"args\":{\"queue\":\""
           << queue_label(s.queue_id) << "\"}}";
        break;
    }
  }
  // Caller annotations (health findings on a wedge dump): global instants at
  // the timeline origin, on their own named track so Perfetto groups them.
  if (!options.annotations.empty()) {
    e.begin_event();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << kAnnotationTid
       << ",\"args\":{\"name\":\"evq health\"}}";
    for (const std::string& a : options.annotations) {
      e.begin_event();
      os << "{\"ph\":\"i\",\"s\":\"g\",\"name\":\"" << json_escape(a)
         << "\",\"cat\":\"health\",\"pid\":0,\"tid\":" << kAnnotationTid << ",\"ts\":0}";
    }
  }
  e.close();
}

}  // namespace evq::trace
