// Michael–Scott link-based FIFO queue [9] with hazard-pointer reclamation
// [10] — the "MS-Hazard Pointers" comparator of Fig. 6, in both its Sorted
// and Not-Sorted scan configurations.
//
// Two successful CASes per enqueue (link + tail swing, the swing possibly
// helped), one per dequeue, plus the reclamation overhead the paper's study
// is about: every operation publishes hazard pointers with store+fence
// semantics, and every 4 x threads retirements trigger a scan over all
// published hazards.
#pragma once

#include <atomic>
#include <cstddef>
#include <string_view>

#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"
#include "evq/common/op_stats.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/hazard/hp_domain.hpp"
#include "evq/inject/inject.hpp"
#include "evq/telemetry/registry.hpp"

namespace evq::baselines {

template <typename T>
class MsHpQueue {
  static_assert(kQueueableV<T>);

 public:
  using value_type = T;
  using pointer = T*;

  struct Node {
    std::atomic<Node*> next{nullptr};
    T* value{nullptr};
  };

  using Domain = hazard::HpDomain<Node, 2>;

  /// Per-thread handle: an acquired hazard record (slots: 0 = head/tail,
  /// 1 = next).
  class Handle {
   public:
    explicit Handle(Domain& domain) : guard_(domain) {}

   private:
    friend class MsHpQueue;
    hazard::HpGuard<Node, 2> guard_;
  };

  explicit MsHpQueue(hazard::ScanMode mode = hazard::ScanMode::kUnsorted,
                     std::size_t threshold_multiplier = 4, std::string_view name = "ms-hp")
      : telemetry_(name), domain_(mode, threshold_multiplier) {
    domain_.set_metrics(&telemetry_.metrics(), telemetry_.queue_id());
    Node* dummy = new Node;
    head_.value.store(dummy, std::memory_order_relaxed);
    tail_.value.store(dummy, std::memory_order_relaxed);
  }

  MsHpQueue(const MsHpQueue&) = delete;
  MsHpQueue& operator=(const MsHpQueue&) = delete;

  /// Quiescent destruction: frees the remaining chain (retired nodes belong
  /// to the domain, which frees them itself).
  ~MsHpQueue() {
    Node* node = head_.value.load(std::memory_order_relaxed);
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  [[nodiscard]] Handle handle() { return Handle{domain_}; }

  /// Always succeeds (link-based queues are unbounded); returns bool to
  /// satisfy the common queue interface.
  bool try_push(Handle& h, T* value) {
    EVQ_DCHECK(value != nullptr, "cannot enqueue nullptr");
    auto* rec = h.guard_.record();
    Node* node = new Node;
    node->value = value;
    for (;;) {
      EVQ_INJECT_POINT("ms.hp.push.enter");
      Node* tail = domain_.protect(rec, 0, tail_.value);
      Node* next = tail->next.load(std::memory_order_seq_cst);
      EVQ_INJECT_POINT("ms.hp.push.reserved");
      if (tail != tail_.value.load(std::memory_order_seq_cst)) {
        continue;
      }
      if (next != nullptr) {  // tail lagging: help swing it
        if (!EVQ_INJECT_SC_FAILS("ms.hp.tail.swing")) {
          stats::on_cas(
              tail_.value.compare_exchange_strong(tail, next, std::memory_order_seq_cst));
        }
        continue;
      }
      Node* expected = nullptr;
      const bool linked =
          tail->next.compare_exchange_strong(expected, node, std::memory_order_seq_cst);
      stats::on_cas(linked);
      if (linked) {
        // Linearized: node is on the chain but Tail still points at its
        // predecessor until the swing below (or a helper) lands.
        EVQ_INJECT_POINT("ms.hp.push.committed");
        if (!EVQ_INJECT_SC_FAILS("ms.hp.tail.swing")) {
          stats::on_cas(
              tail_.value.compare_exchange_strong(tail, node, std::memory_order_seq_cst));
        }
        domain_.clear(rec, 0);
        telemetry_.inc(telemetry::Counter::kPushOk);
        return true;
      }
    }
  }

  T* try_pop(Handle& h) {
    auto* rec = h.guard_.record();
    for (;;) {
      EVQ_INJECT_POINT("ms.hp.pop.enter");
      Node* head = domain_.protect(rec, 0, head_.value);
      Node* tail = tail_.value.load(std::memory_order_seq_cst);
      Node* next = domain_.protect(rec, 1, head->next);
      EVQ_INJECT_POINT("ms.hp.pop.reserved");
      if (head != head_.value.load(std::memory_order_seq_cst)) {
        continue;
      }
      if (next == nullptr) {  // empty
        domain_.clear(rec, 0);
        domain_.clear(rec, 1);
        telemetry_.inc(telemetry::Counter::kPopEmpty);
        return nullptr;
      }
      if (head == tail) {  // tail lagging: help swing it
        if (!EVQ_INJECT_SC_FAILS("ms.hp.tail.swing")) {
          stats::on_cas(
              tail_.value.compare_exchange_strong(tail, next, std::memory_order_seq_cst));
        }
        continue;
      }
      T* value = next->value;  // read before the dummy hand-off
      const bool moved = head_.value.compare_exchange_strong(head, next, std::memory_order_seq_cst);
      stats::on_cas(moved);
      if (moved) {
        EVQ_INJECT_POINT("ms.hp.pop.committed");
        domain_.clear(rec, 0);
        domain_.clear(rec, 1);
        domain_.retire(rec, head);
        telemetry_.inc(telemetry::Counter::kPopOk);
        return value;
      }
    }
  }

  [[nodiscard]] Domain& domain() noexcept { return domain_; }

 private:
  // FIRST member: destroyed last, so the metrics pointer handed to domain_
  // stays valid through the domain's destructor.
  telemetry::ScopedQueueMetrics telemetry_;
  CachePadded<std::atomic<Node*>> head_{nullptr};
  CachePadded<std::atomic<Node*>> tail_{nullptr};
  Domain domain_;
};

}  // namespace evq::baselines
