// Unsynchronized single-threaded ring buffer.
//
// The zero-synchronization baseline for the paper's overhead experiment
// (Sec. 6: "a single thread accessing the FIFO array in absence of
// contention and without any synchronization", against which Algorithm 1
// measured +12 % and Algorithm 2 +50 %/+90 %). NOT thread-safe by design.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "evq/common/config.hpp"
#include "evq/core/queue_traits.hpp"

namespace evq::baselines {

template <typename T>
class UnsyncRing {
  static_assert(kQueueableV<T>);

 public:
  using value_type = T;
  using pointer = T*;
  using Handle = TrivialHandle;

  explicit UnsyncRing(std::size_t min_capacity)
      : capacity_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<T*[]>(capacity_)) {}

  UnsyncRing(const UnsyncRing&) = delete;
  UnsyncRing& operator=(const UnsyncRing&) = delete;

  [[nodiscard]] Handle handle() noexcept { return {}; }

  bool try_push(Handle&, T* node) noexcept {
    EVQ_DCHECK(node != nullptr, "cannot enqueue nullptr");
    if (tail_ - head_ >= capacity_) {
      return false;
    }
    slots_[tail_ & mask_] = node;
    ++tail_;
    return true;
  }

  T* try_pop(Handle&) noexcept {
    if (head_ == tail_) {
      return nullptr;
    }
    T* node = slots_[head_ & mask_];
    ++head_;
    return node;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  const std::size_t mask_;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
  std::unique_ptr<T*[]> slots_;
};

}  // namespace evq::baselines
