// Michael–Scott queue with free-pool reclamation and single-word counted
// pointers.
//
// This is the "never free the node, store it in a free pool" scheme from the
// paper's related-work discussion (its drawback — the footprint never
// shrinks below the high-water mark — is measured by the A2 ablation). With
// nodes recycled, the bare MS queue suffers address-reuse ABA on Head, Tail
// and next; the original Michael–Scott fix is a counted pointer updated by
// double-width CAS, which is exactly what the paper says 64-bit machines
// lack. Here the count rides in the 16 spare bits of a canonical x86-64
// pointer (PackedLlsc), keeping every update single-word — the same
// discipline as the paper's own algorithms.
#pragma once

#include <atomic>
#include <cstddef>
#include <string_view>

#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/inject/inject.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/reclaim/free_pool.hpp"
#include "evq/telemetry/registry.hpp"

namespace evq::baselines {

template <typename T>
class MsPoolQueue {
  static_assert(kQueueableV<T>);

 public:
  using value_type = T;
  using pointer = T*;
  using Handle = TrivialHandle;

  struct Node {
    llsc::PackedLlsc<Node*> next;
    std::atomic<T*> value{nullptr};
    Node* free_next = nullptr;
  };

  explicit MsPoolQueue(std::string_view name = "ms-pool") : telemetry_(name) {
    pool_.set_metrics(&telemetry_.metrics(), telemetry_.queue_id());
    Node* dummy = pool_.make();
    head_.value.store(dummy);
    tail_.value.store(dummy);
  }

  MsPoolQueue(const MsPoolQueue&) = delete;
  MsPoolQueue& operator=(const MsPoolQueue&) = delete;

  /// Quiescent destruction: the chain goes back to the pool, which owns all
  /// node memory and frees it.
  ~MsPoolQueue() {
    Node* node = head_.value.load();
    while (node != nullptr) {
      Node* next = node->next.load();
      pool_.put(node);
      node = next;
    }
  }

  [[nodiscard]] Handle handle() noexcept { return {}; }

  bool try_push(Handle&, T* value) {
    EVQ_DCHECK(value != nullptr, "cannot enqueue nullptr");
    Node* node = pool_.take_or_new();
    node->value.store(value, std::memory_order_relaxed);
    node->next.store(nullptr);  // version bump invalidates stale reservations
    for (;;) {
      EVQ_INJECT_POINT("ms.pool.push.enter");
      auto tail_link = tail_.value.ll();
      Node* tail = tail_link.value();
      auto next_link = tail->next.ll();
      Node* next = next_link.value();
      EVQ_INJECT_POINT("ms.pool.push.reserved");
      if (!tail_.value.validate(tail_link)) {
        continue;  // tail moved: our reads may be of a recycled node
      }
      if (next != nullptr) {  // tail lagging: help swing it
        tail_.value.sc(tail_link, next);
        continue;
      }
      if (tail->next.sc(next_link, node)) {
        // Linearized: node linked, Tail lags until the swing (or help).
        EVQ_INJECT_POINT("ms.pool.push.committed");
        tail_.value.sc(tail_link, node);
        telemetry_.inc(telemetry::Counter::kPushOk);
        return true;
      }
    }
  }

  T* try_pop(Handle&) {
    for (;;) {
      EVQ_INJECT_POINT("ms.pool.pop.enter");
      auto head_link = head_.value.ll();
      Node* head = head_link.value();
      auto tail_link = tail_.value.ll();
      Node* tail = tail_link.value();
      Node* next = head->next.load();
      EVQ_INJECT_POINT("ms.pool.pop.reserved");
      if (!head_.value.validate(head_link)) {
        continue;
      }
      if (next == nullptr) {
        telemetry_.inc(telemetry::Counter::kPopEmpty);
        return nullptr;  // empty
      }
      if (head == tail) {  // tail lagging: help swing it
        tail_.value.sc(tail_link, next);
        continue;
      }
      // `next` cannot be recycled before Head passes it, and Head cannot
      // pass it before our sc below — so a successful sc certifies `value`.
      T* value = next->value.load(std::memory_order_seq_cst);
      if (head_.value.sc(head_link, next)) {
        // Linearized: Head moved; the old dummy is ours to recycle.
        EVQ_INJECT_POINT("ms.pool.pop.committed");
        pool_.put(head);
        telemetry_.inc(telemetry::Counter::kPopOk);
        return value;
      }
    }
  }

  [[nodiscard]] reclaim::FreePool<Node>& pool() noexcept { return pool_; }

 private:
  // FIRST member: destroyed last, so the metrics pointer handed to pool_
  // stays valid through the pool's destructor.
  telemetry::ScopedQueueMetrics telemetry_;
  CachePadded<llsc::PackedLlsc<Node*>> head_{};
  CachePadded<llsc::PackedLlsc<Node*>> tail_{};
  reclaim::FreePool<Node> pool_;
};

}  // namespace evq::baselines
