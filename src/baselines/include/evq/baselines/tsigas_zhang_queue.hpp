// Tsigas–Zhang-style circular array queue [14] — the related-work baseline
// the paper positions itself against.
//
// Tsigas & Zhang gave the first practical array FIFO on single-word CAS.
// Its two signature ideas are reproduced here:
//
//  * TWO null values. An empty slot is marked null0 or null1 depending on
//    which "generation" (wrap of the array) emptied it, so an enqueuer that
//    slept through a whole drain-and-refill cannot insert into a stale
//    empty slot — the null-ABA fix the paper describes in Sec. 3.
//  * Values are CASed into slots DIRECTLY, with no reservation or version:
//    one narrow CAS per slot update — cheaper than both of the paper's
//    algorithms, but at a price (below).
//
// The price is the data-ABA problem: a dequeuer that reads item A and is
// then preempted while the queue wraps and the SAME pointer A is enqueued
// again will wrongly CAS the NEW A out of order. Tsigas–Zhang handle this
// "by assuming that the duration of preemption cannot be greater than the
// time for the indices to rewind themselves", which the paper criticizes as
// needing "an exceedingly oversized array" or being impossible when the
// thread bound is unknown. This implementation inherits that assumption —
// deliberately: it exists so benches/tests can show what the assumption
// costs and what Evequoz's algorithms buy.
// (tests/aba_scenario_test.cpp's DataAbaStrikesPlainCasSlot is exactly this
// queue's failure mode, scripted deterministically.)
//
// Simplifications vs the SPAA'01 original, documented per DESIGN.md §2:
//  * Indices are monotone 64-bit counters (generation = counter / capacity)
//    rather than wrapped 32-bit indices with lazy m=2 updates. This is
//    strictly favorable to Tsigas–Zhang (index-ABA becomes a non-issue and
//    the null generation is derived exactly), and keeps the remaining
//    difference between it and the paper's queues exactly the data-ABA
//    handling under study.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"
#include "evq/common/op_stats.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/inject/inject.hpp"

namespace evq::baselines {

template <typename T>
class TsigasZhangQueue {
  static_assert(kQueueableV<T>);
  // The two null sentinels must be impossible pointer values: with >=8-byte
  // alignment, 2 and 4 are never valid addresses.
  static_assert(alignof(T) >= 8, "two-null encoding needs >=8-byte-aligned elements");

 public:
  using value_type = T;
  using pointer = T*;
  using Handle = TrivialHandle;

  static constexpr std::uintptr_t kNull0 = 0x2;
  static constexpr std::uintptr_t kNull1 = 0x4;

  explicit TsigasZhangQueue(std::size_t min_capacity)
      : capacity_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<std::atomic<std::uintptr_t>[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      // As if emptied in "generation -1": generation-0 enqueues expect it.
      slots_[i].store(null_for_generation(~std::uint64_t{0}), std::memory_order_relaxed);
    }
  }

  TsigasZhangQueue(const TsigasZhangQueue&) = delete;
  TsigasZhangQueue& operator=(const TsigasZhangQueue&) = delete;

  [[nodiscard]] Handle handle() noexcept { return {}; }

  bool try_push(Handle&, T* node) noexcept {
    EVQ_DCHECK(node != nullptr, "cannot enqueue nullptr");
    for (;;) {
      EVQ_INJECT_POINT("tz.push.enter");
      const std::uint64_t t = tail_.value.load(std::memory_order_seq_cst);
      // Signed occupancy: stale `t` must not underflow into a spurious full
      // (see llsc_array_queue.hpp's E6 comment).
      if (static_cast<std::int64_t>(t - head_.value.load(std::memory_order_seq_cst)) >=
          static_cast<std::int64_t>(capacity_)) {
        return false;  // full
      }
      std::atomic<std::uintptr_t>& slot = slots_[t & mask_];
      // The slot is empty-for-this-generation iff it holds the null written
      // by the PREVIOUS generation's dequeuer (or the initializer).
      std::uintptr_t expected_null = null_for_generation((t / capacity_) - 1);
      std::uintptr_t observed = slot.load(std::memory_order_seq_cst);
      EVQ_INJECT_POINT("tz.push.reserved");
      if (t != tail_.value.load(std::memory_order_seq_cst)) {
        continue;
      }
      if (observed == expected_null) {
        const bool ok = slot.compare_exchange_strong(
            expected_null, reinterpret_cast<std::uintptr_t>(node), std::memory_order_seq_cst);
        stats::on_cas(ok);
        if (ok) {
          EVQ_INJECT_POINT("tz.push.committed");
          advance(tail_, t);
          return true;
        }
      } else if (!is_null(observed)) {
        // Filled by a concurrent enqueuer whose Tail update lags: help.
        advance(tail_, t);
      }
      // observed is the WRONG null: a dequeuer of this generation has not
      // yet ... cannot happen for tail's slot; stale index — retry.
    }
  }

  T* try_pop(Handle&) noexcept {
    for (;;) {
      EVQ_INJECT_POINT("tz.pop.enter");
      const std::uint64_t h = head_.value.load(std::memory_order_seq_cst);
      if (h == tail_.value.load(std::memory_order_seq_cst)) {
        return nullptr;  // empty
      }
      std::atomic<std::uintptr_t>& slot = slots_[h & mask_];
      std::uintptr_t observed = slot.load(std::memory_order_seq_cst);
      EVQ_INJECT_POINT("tz.pop.reserved");
      if (h != head_.value.load(std::memory_order_seq_cst)) {
        continue;
      }
      if (!is_null(observed)) {
        // Direct CAS of the value out — NO reservation: this is the window
        // in which the documented data-ABA assumption applies.
        const bool ok = slot.compare_exchange_strong(
            observed, null_for_generation(h / capacity_), std::memory_order_seq_cst);
        stats::on_cas(ok);
        if (ok) {
          EVQ_INJECT_POINT("tz.pop.committed");
          advance(head_, h);
          return reinterpret_cast<T*>(observed);
        }
      } else {
        // Emptied by a dequeuer whose Head update lags: help.
        advance(head_, h);
      }
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] std::size_t size_estimate() noexcept {
    const std::uint64_t h = head_.value.load(std::memory_order_seq_cst);
    const std::uint64_t t = tail_.value.load(std::memory_order_seq_cst);
    return t >= h ? static_cast<std::size_t>(t - h) : 0;
  }

  [[nodiscard]] std::uint64_t head_index() noexcept {
    return head_.value.load(std::memory_order_seq_cst);
  }
  [[nodiscard]] std::uint64_t tail_index() noexcept {
    return tail_.value.load(std::memory_order_seq_cst);
  }

 private:
  static bool is_null(std::uintptr_t word) noexcept { return word == kNull0 || word == kNull1; }

  static std::uintptr_t null_for_generation(std::uint64_t generation) noexcept {
    return (generation & 1) == 0 ? kNull0 : kNull1;
  }

  static void advance(CachePadded<std::atomic<std::uint64_t>>& index,
                      std::uint64_t expected) noexcept {
    // Delay-only point — see CasArrayQueue::advance: the CAS must always be
    // attempted, since failure means "already advanced by someone else".
    EVQ_INJECT_POINT("tz.index.advance");
    stats::on_cas(
        index.value.compare_exchange_strong(expected, expected + 1, std::memory_order_seq_cst));
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  CachePadded<std::atomic<std::uint64_t>> head_{0};
  CachePadded<std::atomic<std::uint64_t>> tail_{0};
  std::unique_ptr<std::atomic<std::uintptr_t>[]> slots_;
};

}  // namespace evq::baselines
