// Tsigas–Zhang-style circular array queue [14] — the related-work baseline
// the paper positions itself against, expressed as a SlotPolicy over the
// shared ring engine (core/ring_engine.hpp).
//
// Tsigas & Zhang gave the first practical array FIFO on single-word CAS.
// Its two signature ideas are reproduced here:
//
//  * TWO null values. An empty slot is marked null0 or null1 depending on
//    which "generation" (wrap of the array) emptied it, so an enqueuer that
//    slept through a whole drain-and-refill cannot insert into a stale
//    empty slot — the null-ABA fix the paper describes in Sec. 3. In engine
//    terms this is the kStaleEmpty slot class: the only policy in the family
//    that uses it (an enqueuer that reads the WRONG null has a stale index
//    and must retry, not help).
//  * Values are CASed into slots DIRECTLY, with no reservation or version:
//    one narrow CAS per slot update — cheaper than both of the paper's
//    algorithms, but at a price (below).
//
// The price is the data-ABA problem: a dequeuer that reads item A and is
// then preempted while the queue wraps and the SAME pointer A is enqueued
// again will wrongly CAS the NEW A out of order. Tsigas–Zhang handle this
// "by assuming that the duration of preemption cannot be greater than the
// time for the indices to rewind themselves", which the paper criticizes as
// needing "an exceedingly oversized array" or being impossible when the
// thread bound is unknown. This implementation inherits that assumption —
// deliberately: it exists so benches/tests can show what the assumption
// costs and what Evequoz's algorithms buy.
// (tests/aba_scenario_test.cpp's DataAbaStrikesPlainCasSlot is exactly this
// queue's failure mode, scripted deterministically.)
//
// Simplifications vs the SPAA'01 original, documented per DESIGN.md §2:
//  * Indices are monotone 64-bit counters (generation = counter / capacity)
//    rather than wrapped 32-bit indices with lazy m=2 updates. This is
//    strictly favorable to Tsigas–Zhang (index-ABA becomes a non-issue and
//    the null generation is derived exactly), and keeps the remaining
//    difference between it and the paper's queues exactly the data-ABA
//    handling under study.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "evq/common/backoff.hpp"
#include "evq/common/op_stats.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/core/ring_engine.hpp"

namespace evq::baselines {

inline constexpr char kTzIndexAdvancePoint[] = "tz.index.advance";

/// Tsigas–Zhang slot behaviour: a bare atomic word holding either a node
/// pointer or one of two generation-tagged null sentinels; no reservation
/// (reserve() is a plain load, abandon() a no-op) — the direct-CAS window in
/// which the documented data-ABA assumption applies.
template <typename T>
class TzSlotPolicy {
 public:
  static constexpr std::uintptr_t kNull0 = 0x2;
  static constexpr std::uintptr_t kNull1 = 0x4;

  using Slot = std::atomic<std::uintptr_t>;
  using Handle = TrivialHandle;
  struct OpCtx {};
  using Reservation = std::uintptr_t;

  static constexpr const char* kPushEnter = "tz.push.enter";
  static constexpr const char* kPushReserved = "tz.push.reserved";
  static constexpr const char* kPushCommitted = "tz.push.committed";
  static constexpr const char* kPopEnter = "tz.pop.enter";
  static constexpr const char* kPopReserved = "tz.pop.reserved";
  static constexpr const char* kPopCommitted = "tz.pop.committed";

  void attach(std::size_t capacity) noexcept { capacity_ = capacity; }

  void init_slot(Slot& slot, std::uint64_t) noexcept {
    // As if emptied in "generation -1": generation-0 enqueues expect it.
    slot.store(null_for_generation(~std::uint64_t{0}), std::memory_order_relaxed);
  }

  [[nodiscard]] Handle make_handle() noexcept { return {}; }
  OpCtx begin_op(Handle&) noexcept { return {}; }

  Reservation reserve(Slot& slot, OpCtx&) noexcept {
    return slot.load(std::memory_order_seq_cst);
  }

  SlotClass classify(const Reservation& res, std::uint64_t index) noexcept {
    // The slot is empty-for-this-generation iff it holds the null written by
    // the PREVIOUS generation's dequeuer (or the initializer). The other
    // null means the index is stale (kStaleEmpty: a dequeue of the current
    // generation already emptied it, or — on the push side — the slot has
    // not been drained since the previous lap); anything non-null is a value.
    if (res == null_for_generation(index / capacity_ - 1)) {
      return SlotClass::kEmptyFresh;
    }
    return is_null(res) ? SlotClass::kStaleEmpty : SlotClass::kOccupied;
  }

  bool commit_push(Slot& slot, Reservation& res, T* node, std::uint64_t, OpCtx&) noexcept {
    std::uintptr_t expected = res;
    const bool ok = slot.compare_exchange_strong(
        expected, reinterpret_cast<std::uintptr_t>(node), std::memory_order_seq_cst);
    stats::on_cas(ok);
    return ok;
  }

  bool commit_pop(Slot& slot, Reservation& res, std::uint64_t index, OpCtx&) noexcept {
    std::uintptr_t expected = res;
    const bool ok = slot.compare_exchange_strong(expected, null_for_generation(index / capacity_),
                                                 std::memory_order_seq_cst);
    stats::on_cas(ok);
    return ok;
  }

  T* value_of(const Reservation& res) noexcept { return reinterpret_cast<T*>(res); }

  void abandon(Slot&, Reservation&, OpCtx&) noexcept {}  // a plain load reserves nothing

 private:
  static bool is_null(std::uintptr_t word) noexcept { return word == kNull0 || word == kNull1; }

  static std::uintptr_t null_for_generation(std::uint64_t generation) noexcept {
    return (generation & 1) == 0 ? kNull0 : kNull1;
  }

  std::size_t capacity_ = 0;
};

template <typename T, typename ContentionPolicy = NoBackoff>
class TsigasZhangQueue : public BoundedRing<T, TzSlotPolicy<T>,
                                            CasIndexPolicy<kTzIndexAdvancePoint>,
                                            ContentionPolicy> {
  // The two null sentinels must be impossible pointer values: with >=8-byte
  // alignment, 2 and 4 are never valid addresses.
  static_assert(alignof(T) >= 8, "two-null encoding needs >=8-byte-aligned elements");

  using Base =
      BoundedRing<T, TzSlotPolicy<T>, CasIndexPolicy<kTzIndexAdvancePoint>, ContentionPolicy>;

 public:
  static constexpr std::uintptr_t kNull0 = TzSlotPolicy<T>::kNull0;
  static constexpr std::uintptr_t kNull1 = TzSlotPolicy<T>::kNull1;

  explicit TsigasZhangQueue(std::size_t min_capacity, std::string_view name = "tsigas-zhang")
      : Base(min_capacity, name) {}
};

}  // namespace evq::baselines
