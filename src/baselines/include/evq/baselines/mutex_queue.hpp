// Lock-based bounded FIFO queue.
//
// The blocking strawman the paper's introduction argues against: a single
// mutex around a plain ring buffer. Under preemption a lock holder stalls
// every other thread — the exact failure mode non-blocking algorithms
// exclude by construction. Included for the motivation examples and as a
// reference point in the overhead bench.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

#include "evq/common/config.hpp"
#include "evq/core/queue_traits.hpp"

namespace evq::baselines {

template <typename T>
class MutexQueue {
  static_assert(kQueueableV<T>);

 public:
  using value_type = T;
  using pointer = T*;
  using Handle = TrivialHandle;

  explicit MutexQueue(std::size_t min_capacity)
      : capacity_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<T*[]>(capacity_)) {}

  MutexQueue(const MutexQueue&) = delete;
  MutexQueue& operator=(const MutexQueue&) = delete;

  [[nodiscard]] Handle handle() noexcept { return {}; }

  bool try_push(Handle&, T* node) {
    EVQ_DCHECK(node != nullptr, "cannot enqueue nullptr");
    std::lock_guard<std::mutex> lock(mutex_);
    if (tail_ - head_ >= capacity_) {
      return false;
    }
    slots_[tail_ & mask_] = node;
    ++tail_;
    return true;
  }

  T* try_pop(Handle&) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (head_ == tail_) {
      return nullptr;
    }
    T* node = slots_[head_ & mask_];
    ++head_;
    return node;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  const std::size_t mask_;
  std::mutex mutex_;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
  std::unique_ptr<T*[]> slots_;
};

}  // namespace evq::baselines
