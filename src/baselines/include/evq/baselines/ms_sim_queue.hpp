// Michael–Scott queue over CAS-simulated LL/SC — the "MS-Doherty et al."
// comparator of Fig. 6.
//
// The paper benchmarks Michael & Scott's queue running on Doherty et al.'s
// CAS-based simulation of LL/SC [2], whose measured signature is "7
// successful CAS instructions per queueing operation — unquestionably the
// slowest". Per the reproduction's substitution rule (DESIGN.md §2), this
// file rebuilds that comparator with the paper's OWN simulation machinery:
// Head, Tail and every node's next field are SimLlscCells (reservation
// tags + refcounted LLSCvars), nodes are recycled through a free pool, and
// a per-node guard count provides the reuse protection Doherty's exit/entry
// tags provide in the original. The cost profile is the same: every
// operation pays a tag-install CAS per cell touched, two FetchAndAdds per
// foreign read, plus pool traffic — which is the property Fig. 6 measures.
//
// Reuse-safety argument (why a pooled node can never corrupt the list):
//  * A thread that wants to dereference node n first increments n->guards,
//    then validates that its reservation tag is still physically present in
//    the cell it read n from. Validation success means n was in the list at
//    some point after the guard became visible, so the pool (which only
//    hands out nodes with guards == 0) cannot recycle n until the guard
//    drops.
//  * A link-in (`sc(next: null -> node)`) can only succeed while the target
//    is the genuine in-list tail: a node leaves the list only after gaining
//    a successor, which writes its next cell and invalidates any older
//    reservation on it; under a guard the next cell can never return to
//    null, so the "expected null" reservation is unfalsifiable-stale.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"
#include "evq/common/op_stats.hpp"
#include "evq/common/tagged_ptr.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/inject/inject.hpp"
#include "evq/reclaim/free_pool.hpp"
#include "evq/registry/registry.hpp"
#include "evq/registry/sim_llsc_cell.hpp"

namespace evq::baselines {

template <typename T>
class MsSimQueue {
  static_assert(kQueueableV<T>);

 public:
  using value_type = T;
  using pointer = T*;

  struct Node {
    registry::SimLlscCell<Node*> next;
    std::atomic<T*> value{nullptr};
    /// Threads currently entitled to dereference this node; the pool skips
    /// guarded nodes (see file comment).
    std::atomic<std::uint32_t> guards{0};
    Node* free_next = nullptr;
  };

  /// Per-thread handle: two registered LLSCvars, because an operation holds
  /// up to two simultaneous reservations (Tail + next, or Head + Tail).
  class Handle {
   public:
    explicit Handle(registry::Registry& reg) : primary_(reg), secondary_(reg) {}

   private:
    friend class MsSimQueue;
    registry::Registration primary_;
    registry::Registration secondary_;
  };

  MsSimQueue() {
    Node* dummy = pool_.make();
    head_.value.reset(dummy);
    tail_.value.reset(dummy);
  }

  MsSimQueue(const MsSimQueue&) = delete;
  MsSimQueue& operator=(const MsSimQueue&) = delete;

  ~MsSimQueue() {
    Node* node = head_.value.load();
    while (node != nullptr) {
      Node* next = node->next.load();
      pool_.put(node);
      node = next;
    }
  }

  [[nodiscard]] Handle handle() { return Handle{registry_}; }

  bool try_push(Handle& h, T* value) {
    EVQ_DCHECK(value != nullptr, "cannot enqueue nullptr");
    Node* node = take_clean();
    node->value.store(value, std::memory_order_seq_cst);
    node->next.reset(nullptr);  // safe: guards == 0 => no foreign reservation
    registry::LlscVar* var_tail = h.primary_.fresh();
    registry::LlscVar* var_next = h.secondary_.fresh();
    for (;;) {
      EVQ_INJECT_POINT("ms.sim.push.enter");
      Node* tail = tail_.value.ll(var_tail);
      tail->guards.fetch_add(1, std::memory_order_seq_cst);
      stats::on_faa();
      if (tail_.value.raw() != lsb_tag(var_tail)) {
        tail->guards.fetch_sub(1, std::memory_order_seq_cst);
        stats::on_faa();
        continue;  // reservation taken over: `tail` may already be recycled
      }
      Node* next = tail->next.load();
      if (next != nullptr) {  // tail lagging: help swing it
        tail->guards.fetch_sub(1, std::memory_order_seq_cst);
        stats::on_faa();
        tail_.value.sc(var_tail, next);
        continue;
      }
      Node* observed = tail->next.ll(var_next);
      EVQ_INJECT_POINT("ms.sim.push.reserved");
      if (observed != nullptr) {  // raced with another link-in
        tail->next.release(var_next);
        tail->guards.fetch_sub(1, std::memory_order_seq_cst);
        stats::on_faa();
        tail_.value.sc(var_tail, observed);
        continue;
      }
      if (tail->next.sc(var_next, node)) {
        // Linearized: node linked; Tail lags until the swing (or help).
        EVQ_INJECT_POINT("ms.sim.push.committed");
        tail->guards.fetch_sub(1, std::memory_order_seq_cst);
        stats::on_faa();
        tail_.value.sc(var_tail, node);  // swing; failure means we were helped
        return true;
      }
      tail->guards.fetch_sub(1, std::memory_order_seq_cst);
      stats::on_faa();
      tail_.value.release(var_tail);
    }
  }

  T* try_pop(Handle& h) {
    registry::LlscVar* var_head = h.primary_.fresh();
    registry::LlscVar* var_tail = h.secondary_.fresh();
    for (;;) {
      EVQ_INJECT_POINT("ms.sim.pop.enter");
      Node* head = head_.value.ll(var_head);
      head->guards.fetch_add(1, std::memory_order_seq_cst);
      stats::on_faa();
      if (head_.value.raw() != lsb_tag(var_head)) {
        head->guards.fetch_sub(1, std::memory_order_seq_cst);
        stats::on_faa();
        continue;
      }
      EVQ_INJECT_POINT("ms.sim.pop.reserved");
      Node* tail = tail_.value.load();
      Node* next = head->next.load();
      if (next == nullptr) {  // empty (see file comment for linearization)
        head->guards.fetch_sub(1, std::memory_order_seq_cst);
        stats::on_faa();
        head_.value.release(var_head);
        return nullptr;
      }
      if (head == tail) {  // tail lagging: help swing it
        Node* t2 = tail_.value.ll(var_tail);
        if (t2 == head) {
          tail_.value.sc(var_tail, next);
        } else {
          tail_.value.release(var_tail);
        }
        head->guards.fetch_sub(1, std::memory_order_seq_cst);
        stats::on_faa();
        head_.value.release(var_head);
        continue;
      }
      T* value = next->value.load(std::memory_order_seq_cst);
      if (head_.value.sc(var_head, next)) {
        // Linearized: Head moved; the old dummy is ours to recycle.
        EVQ_INJECT_POINT("ms.sim.pop.committed");
        head->guards.fetch_sub(1, std::memory_order_seq_cst);
        stats::on_faa();
        pool_.put(head);
        return value;
      }
      head->guards.fetch_sub(1, std::memory_order_seq_cst);
      stats::on_faa();
    }
  }

  [[nodiscard]] registry::Registry& registry() noexcept { return registry_; }
  [[nodiscard]] reclaim::FreePool<Node>& pool() noexcept { return pool_; }

 private:
  /// Pops a node the guard protocol permits reusing (guards == 0), setting
  /// aside a bounded number of still-guarded nodes; allocates fresh when the
  /// pool yields nothing reusable (population-oblivious growth).
  Node* take_clean() {
    constexpr int kMaxSkipped = 8;
    Node* skipped[kMaxSkipped];
    int n_skipped = 0;
    Node* node = nullptr;
    while ((node = pool_.take()) != nullptr) {
      if (node->guards.load(std::memory_order_seq_cst) == 0) {
        break;
      }
      if (n_skipped == kMaxSkipped) {
        pool_.put(node);
        node = nullptr;
        break;
      }
      skipped[n_skipped++] = node;
    }
    for (int i = 0; i < n_skipped; ++i) {
      pool_.put(skipped[i]);
    }
    return node != nullptr ? node : pool_.make();
  }

  CachePadded<registry::SimLlscCell<Node*>> head_{};
  CachePadded<registry::SimLlscCell<Node*>> tail_{};
  registry::Registry registry_;
  reclaim::FreePool<Node> pool_;
};

}  // namespace evq::baselines
