// Shann–Huang–Chen-style circular array queue [12] — the double-width-CAS
// comparator of Fig. 6b/6d, expressed as a SlotPolicy over the shared ring
// engine (core/ring_engine.hpp).
//
// Each slot packs {node pointer, modification counter} into one 16-byte word
// updated by a single wide CAS; the counter kills both the data-ABA and
// null-ABA problems (Sec. 3's "most common solution"). Head/Tail are the
// same monotone single-word counters as everywhere else (CasIndexPolicy).
//
// This is the design the paper argues is architecture-limited: it needs an
// atomic twice the pointer width (32+32 on the paper's AMD, 64+64 here via
// cmpxchg16b), which "emerging 64-bit architectures" were not guaranteed to
// provide. Per operation it pays one wide read + one wide CAS + one narrow
// CAS, versus the CAS queue's three narrow CAS + two FetchAndAdd — the ~5 %
// gap quoted in Sec. 6 comes from the relative cost of wide CAS, measured
// here by bench_cas_cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "evq/common/backoff.hpp"
#include "evq/common/dwcas.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/core/ring_engine.hpp"

namespace evq::baselines {

inline constexpr char kShannIndexAdvancePoint[] = "shann.index.advance";

/// Shann slot behaviour: a double-width {pointer, counter} word. reserve() is
/// a wide load, commits are one wide CAS that installs/clears the pointer
/// AND bumps the counter (the ABA defence), abandon() a no-op.
template <typename T>
class ShannSlotPolicy {
 public:
  using Slot = AtomicDwWord;
  using Handle = TrivialHandle;
  struct OpCtx {};
  using Reservation = DwWord;

  static constexpr const char* kPushEnter = "shann.push.enter";
  static constexpr const char* kPushReserved = "shann.push.reserved";
  static constexpr const char* kPushCommitted = "shann.push.committed";
  static constexpr const char* kPopEnter = "shann.pop.enter";
  static constexpr const char* kPopReserved = "shann.pop.reserved";
  static constexpr const char* kPopCommitted = "shann.pop.committed";

  void attach(std::size_t) noexcept {}
  void init_slot(Slot&, std::uint64_t) noexcept {}  // zero word: null pointer, counter 0
  [[nodiscard]] Handle make_handle() noexcept { return {}; }
  OpCtx begin_op(Handle&) noexcept { return {}; }

  Reservation reserve(Slot& slot, OpCtx&) noexcept { return slot.load(); }

  SlotClass classify(const Reservation& res, std::uint64_t) noexcept {
    return res.lo == 0 ? SlotClass::kEmptyFresh : SlotClass::kOccupied;
  }

  bool commit_push(Slot& slot, Reservation& res, T* node, std::uint64_t, OpCtx&) noexcept {
    // Empty slot: one wide CAS installs the value and bumps the counter.
    DwWord expected = res;
    return slot.compare_exchange(expected,
                                 DwWord{reinterpret_cast<std::uint64_t>(node), res.hi + 1});
  }

  bool commit_pop(Slot& slot, Reservation& res, std::uint64_t, OpCtx&) noexcept {
    DwWord expected = res;
    return slot.compare_exchange(expected, DwWord{0, res.hi + 1});
  }

  T* value_of(const Reservation& res) noexcept { return reinterpret_cast<T*>(res.lo); }

  void abandon(Slot&, Reservation&, OpCtx&) noexcept {}  // a wide load reserves nothing
};

template <typename T, typename ContentionPolicy = NoBackoff>
class ShannQueue : public BoundedRing<T, ShannSlotPolicy<T>,
                                      CasIndexPolicy<kShannIndexAdvancePoint>, ContentionPolicy> {
  using Base =
      BoundedRing<T, ShannSlotPolicy<T>, CasIndexPolicy<kShannIndexAdvancePoint>, ContentionPolicy>;

 public:
  explicit ShannQueue(std::size_t min_capacity, std::string_view name = "shann")
      : Base(min_capacity, name) {}
};

}  // namespace evq::baselines
