// Shann–Huang–Chen-style circular array queue [12] — the double-width-CAS
// comparator of Fig. 6b/6d.
//
// Each slot packs {node pointer, modification counter} into one 16-byte word
// updated by a single wide CAS; the counter kills both the data-ABA and
// null-ABA problems (Sec. 3's "most common solution"). Head/Tail are the
// same monotone single-word counters as everywhere else.
//
// This is the design the paper argues is architecture-limited: it needs an
// atomic twice the pointer width (32+32 on the paper's AMD, 64+64 here via
// cmpxchg16b), which "emerging 64-bit architectures" were not guaranteed to
// provide. Per operation it pays one wide read + one wide CAS + one narrow
// CAS, versus the CAS queue's three narrow CAS + two FetchAndAdd — the ~5 %
// gap quoted in Sec. 6 comes from the relative cost of wide CAS, measured
// here by bench_cas_cost.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"
#include "evq/common/dwcas.hpp"
#include "evq/common/op_stats.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/inject/inject.hpp"

namespace evq::baselines {

template <typename T>
class ShannQueue {
  static_assert(kQueueableV<T>);

 public:
  using value_type = T;
  using pointer = T*;
  using Handle = TrivialHandle;

  explicit ShannQueue(std::size_t min_capacity)
      : capacity_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<AtomicDwWord[]>(capacity_)) {}

  ShannQueue(const ShannQueue&) = delete;
  ShannQueue& operator=(const ShannQueue&) = delete;

  [[nodiscard]] Handle handle() noexcept { return {}; }

  bool try_push(Handle&, T* node) noexcept {
    EVQ_DCHECK(node != nullptr, "cannot enqueue nullptr");
    for (;;) {
      EVQ_INJECT_POINT("shann.push.enter");
      const std::uint64_t t = tail_.value.load(std::memory_order_seq_cst);
      // Signed occupancy: stale `t` must not underflow into a spurious full
      // (see llsc_array_queue.hpp's E6 comment).
      if (static_cast<std::int64_t>(t - head_.value.load(std::memory_order_seq_cst)) >=
          static_cast<std::int64_t>(capacity_)) {
        return false;  // full
      }
      AtomicDwWord& slot = slots_[t & mask_];
      DwWord s = slot.load();
      EVQ_INJECT_POINT("shann.push.reserved");
      if (t != tail_.value.load(std::memory_order_seq_cst)) {
        continue;  // stale index: the slot we read may not be the tail slot
      }
      if (s.lo == 0) {
        // Empty slot: one wide CAS installs the value and bumps the counter.
        if (slot.compare_exchange(s, DwWord{reinterpret_cast<std::uint64_t>(node), s.hi + 1})) {
          EVQ_INJECT_POINT("shann.push.committed");
          advance(tail_, t);
          return true;
        }
      } else {
        // Occupied: the filling enqueuer has not advanced Tail — help it.
        advance(tail_, t);
      }
    }
  }

  T* try_pop(Handle&) noexcept {
    for (;;) {
      EVQ_INJECT_POINT("shann.pop.enter");
      const std::uint64_t h = head_.value.load(std::memory_order_seq_cst);
      if (h == tail_.value.load(std::memory_order_seq_cst)) {
        return nullptr;  // empty
      }
      AtomicDwWord& slot = slots_[h & mask_];
      DwWord s = slot.load();
      EVQ_INJECT_POINT("shann.pop.reserved");
      if (h != head_.value.load(std::memory_order_seq_cst)) {
        continue;
      }
      if (s.lo != 0) {
        if (slot.compare_exchange(s, DwWord{0, s.hi + 1})) {
          EVQ_INJECT_POINT("shann.pop.committed");
          advance(head_, h);
          return reinterpret_cast<T*>(s.lo);
        }
      } else {
        // Already emptied by a dequeuer whose Head update lags — help it.
        advance(head_, h);
      }
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] std::size_t size_estimate() noexcept {
    const std::uint64_t h = head_.value.load(std::memory_order_seq_cst);
    const std::uint64_t t = tail_.value.load(std::memory_order_seq_cst);
    return t >= h ? static_cast<std::size_t>(t - h) : 0;
  }

 private:
  static void advance(CachePadded<std::atomic<std::uint64_t>>& index,
                      std::uint64_t expected) noexcept {
    // Delay-only point — see CasArrayQueue::advance: the CAS must always be
    // attempted, since failure means "already advanced by someone else".
    EVQ_INJECT_POINT("shann.index.advance");
    stats::on_cas(
        index.value.compare_exchange_strong(expected, expected + 1, std::memory_order_seq_cst));
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  CachePadded<std::atomic<std::uint64_t>> head_{0};
  CachePadded<std::atomic<std::uint64_t>> tail_{0};
  std::unique_ptr<AtomicDwWord[]> slots_;
};

}  // namespace evq::baselines
