// Michael–Scott queue with epoch-based reclamation — extension baseline.
//
// Approximates the paper's "assume a garbage collector" option for
// link-based queues with a practical scheme: operations pin the global
// epoch instead of publishing per-pointer hazards, making the hot path
// cheaper than MS-HP (no protect loops), but reclamation now depends on
// EVERY thread making progress — one preempted thread freezes the epoch
// and memory grows without bound, which is precisely the
// multiprogramming-hostile behaviour the paper's array queues avoid.
#pragma once

#include <atomic>
#include <cstddef>
#include <string_view>

#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"
#include "evq/common/op_stats.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/inject/inject.hpp"
#include "evq/reclaim/epoch.hpp"
#include "evq/telemetry/registry.hpp"

namespace evq::baselines {

template <typename T>
class MsEbrQueue {
  static_assert(kQueueableV<T>);

 public:
  using value_type = T;
  using pointer = T*;

  struct Node {
    std::atomic<Node*> next{nullptr};
    T* value{nullptr};
  };

  using Domain = reclaim::EpochDomain<Node>;

  class Handle {
   public:
    explicit Handle(Domain& domain) : domain_(&domain), rec_(domain.acquire()) {}
    Handle(Handle&& other) noexcept : domain_(other.domain_), rec_(other.rec_) {
      other.domain_ = nullptr;
      other.rec_ = nullptr;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    Handle& operator=(Handle&&) = delete;
    ~Handle() {
      if (domain_ != nullptr) {
        domain_->release(rec_);
      }
    }

   private:
    friend class MsEbrQueue;
    Domain* domain_;
    typename Domain::Record* rec_;
  };

  explicit MsEbrQueue(std::size_t flush_threshold = 64, std::string_view name = "ms-ebr")
      : telemetry_(name), domain_(flush_threshold) {
    domain_.set_metrics(&telemetry_.metrics(), telemetry_.queue_id());
    Node* dummy = new Node;
    head_.value.store(dummy, std::memory_order_relaxed);
    tail_.value.store(dummy, std::memory_order_relaxed);
  }

  MsEbrQueue(const MsEbrQueue&) = delete;
  MsEbrQueue& operator=(const MsEbrQueue&) = delete;

  ~MsEbrQueue() {
    Node* node = head_.value.load(std::memory_order_relaxed);
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  [[nodiscard]] Handle handle() { return Handle{domain_}; }

  bool try_push(Handle& h, T* value) {
    EVQ_DCHECK(value != nullptr, "cannot enqueue nullptr");
    Node* node = new Node;
    node->value = value;
    reclaim::EpochGuard<Node> guard(domain_, h.rec_);
    for (;;) {
      EVQ_INJECT_POINT("ms.ebr.push.enter");
      Node* tail = tail_.value.load(std::memory_order_seq_cst);
      Node* next = tail->next.load(std::memory_order_seq_cst);  // safe: pinned
      EVQ_INJECT_POINT("ms.ebr.push.reserved");
      if (tail != tail_.value.load(std::memory_order_seq_cst)) {
        continue;
      }
      if (next != nullptr) {  // tail lagging: help swing it
        if (!EVQ_INJECT_SC_FAILS("ms.ebr.tail.swing")) {
          stats::on_cas(
              tail_.value.compare_exchange_strong(tail, next, std::memory_order_seq_cst));
        }
        continue;
      }
      Node* expected = nullptr;
      const bool linked =
          tail->next.compare_exchange_strong(expected, node, std::memory_order_seq_cst);
      stats::on_cas(linked);
      if (linked) {
        // Linearized: node linked; Tail lags until the swing (or help).
        EVQ_INJECT_POINT("ms.ebr.push.committed");
        if (!EVQ_INJECT_SC_FAILS("ms.ebr.tail.swing")) {
          stats::on_cas(
              tail_.value.compare_exchange_strong(tail, node, std::memory_order_seq_cst));
        }
        telemetry_.inc(telemetry::Counter::kPushOk);
        return true;
      }
    }
  }

  T* try_pop(Handle& h) {
    reclaim::EpochGuard<Node> guard(domain_, h.rec_);
    for (;;) {
      EVQ_INJECT_POINT("ms.ebr.pop.enter");
      Node* head = head_.value.load(std::memory_order_seq_cst);
      Node* tail = tail_.value.load(std::memory_order_seq_cst);
      Node* next = head->next.load(std::memory_order_seq_cst);  // safe: pinned
      EVQ_INJECT_POINT("ms.ebr.pop.reserved");
      if (head != head_.value.load(std::memory_order_seq_cst)) {
        continue;
      }
      if (next == nullptr) {
        telemetry_.inc(telemetry::Counter::kPopEmpty);
        return nullptr;  // empty
      }
      if (head == tail) {  // tail lagging: help swing it
        if (!EVQ_INJECT_SC_FAILS("ms.ebr.tail.swing")) {
          stats::on_cas(
              tail_.value.compare_exchange_strong(tail, next, std::memory_order_seq_cst));
        }
        continue;
      }
      T* value = next->value;
      const bool moved =
          head_.value.compare_exchange_strong(head, next, std::memory_order_seq_cst);
      stats::on_cas(moved);
      if (moved) {
        EVQ_INJECT_POINT("ms.ebr.pop.committed");
        domain_.retire(h.rec_, head);
        telemetry_.inc(telemetry::Counter::kPopOk);
        return value;
      }
    }
  }

  [[nodiscard]] Domain& domain() noexcept { return domain_; }

 private:
  // FIRST member: destroyed last, so the metrics pointer handed to domain_
  // stays valid through the domain's destructor.
  telemetry::ScopedQueueMetrics telemetry_;
  CachePadded<std::atomic<Node*>> head_{nullptr};
  CachePadded<std::atomic<Node*>> tail_{nullptr};
  Domain domain_;
};

}  // namespace evq::baselines
