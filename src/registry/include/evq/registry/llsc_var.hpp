// The thread-owned variable of the paper's Fig. 5 (`LLSCvar`).
//
// One LlscVar is the published identity a thread uses while simulating LL/SC:
// its address (LSB-tagged) is what gets swapped into a shared cell as a
// reservation marker, `node` is the placeholder for the cell's logical value
// while the reservation is held, and `r` is the reference count that keeps
// the variable from being recycled while other threads are reading through
// it. Variables live forever once allocated (they are only ever *recycled*,
// never freed, exactly as in the paper) — the Registry owns that list.
#pragma once

#include <atomic>
#include <cstdint>

#include "evq/common/cacheline.hpp"

namespace evq::registry {

struct alignas(kCacheLineSize) LlscVar {
  /// Placeholder for the logical value of the cell this variable currently
  /// reserves. Atomic because foreign threads read it (Fig. 5 line L8) while
  /// the owner may be about to reuse the variable.
  std::atomic<std::uintptr_t> node{0};

  /// Reference count: 1 bit of meaning from the owner (+1 while registered)
  /// plus one count per foreign thread currently reading through the
  /// variable (Fig. 5 lines L7/L14). 0 means recyclable.
  std::atomic<std::uint32_t> r{0};

  /// Next variable in the Registry's global LIFO list (immutable once the
  /// variable is published; the list only grows).
  std::atomic<LlscVar*> next{nullptr};
};

static_assert(alignof(LlscVar) >= 2, "LSB tagging requires >=2-byte alignment");

}  // namespace evq::registry
