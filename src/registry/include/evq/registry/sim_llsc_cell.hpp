// CAS-based simulation of LL/SC on a pointer-wide shared cell —
// the paper's Fig. 5 lines L1–L17 plus the SC and "release" CASes that the
// queue code performs on the reserved cell.
//
// Protocol recap. A cell logically holds an even word (a node pointer or 0).
// Physically it may instead hold `var|1` — the LSB-tagged address of some
// thread's LlscVar — meaning "var's owner has a reservation here; the
// logical value is in var->node".
//
//   ll(var):   read the logical value (through a foreign var if tagged,
//              bumping its refcount for the duration per L7/L14), stash it in
//              var->node, and CAS the cell from what we read to var|1.
//              Retry until our tag is installed. Returns the logical value.
//   sc(var,v): CAS(cell, var|1, v) — succeeds iff our reservation survived.
//   release(var,v): same CAS but restoring the previously observed value —
//              used when the caller decides not to write (Fig. 5's
//              `CAS(&Q[tail], var^1, slot)` arms).
//   load():    tag-aware atomic read without taking a reservation (needed by
//              the MS-Doherty comparator); validated against recycling with
//              the same refcount protocol.
//
// Lock-freedom: a reservation never blocks anyone — any other thread's ll()
// simply takes the reservation over, failing the original owner's sc. The
// refcount + ReRegister rule prevents the tagged-pointer ABA analysed in
// Sec. 5 (a recycled var reappearing in the same cell while a stale reader
// still holds its address).
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "evq/common/config.hpp"
#include "evq/common/op_stats.hpp"
#include "evq/common/tagged_ptr.hpp"
#include "evq/inject/inject.hpp"
#include "evq/registry/llsc_var.hpp"

namespace evq::registry {

template <typename T>
  requires std::is_pointer_v<T>
class SimLlscCell {
 public:
  using value_type = T;

  SimLlscCell() noexcept : word_(0) {}
  explicit SimLlscCell(T init) noexcept : word_(to_word(init)) {}

  SimLlscCell(const SimLlscCell&) = delete;
  SimLlscCell& operator=(const SimLlscCell&) = delete;

  /// Fig. 5 L1–L17, with two deviations from the published pseudocode
  /// (both documented in DESIGN.md's errata):
  ///  * the published `restart = CAS(...)` is corrected to
  ///    `restart = !CAS(...)` — the loop exits on a successful install;
  ///  * after the L7 refcount increment we RE-READ the cell and require it
  ///    to still hold the same tag before reading the owner's node ("L7b").
  ///    Without this, a reader preempted between L5 and L7 can FAA too late
  ///    to stop the owner's ReRegister, then read a node value belonging to
  ///    the owner's NEXT reservation of a different cell, and still succeed
  ///    its L12 CAS when that next reservation landed on the same cell —
  ///    destroying an item. Our model checker found this as a concrete
  ///    non-linearizable schedule in the paper-exact protocol
  ///    (ModelAlg2PaperExact.Sec5WindowRaceFoundByExploration). Once r >= 2
  ///    is published, the owner can never re-install this tag (ReRegister
  ///    abandons the variable), so a validated tag pins a stable,
  ///    consistent node value.
  ///
  /// On return the cell physically holds var|1 and the returned value is
  /// the cell's logical content, also stashed in var->node.
  T ll(LlscVar* var) noexcept {
    for (;;) {
      std::uintptr_t observed = word_.load(std::memory_order_seq_cst);  // L5
      LlscVar* other = nullptr;
      if (lsb_tagged(observed)) {                                       // L6
        other = lsb_untag<LlscVar>(observed);
        // A stall between L5 and L7 is exactly the Sec. 5 window the L7b
        // re-read closes — this point lets the torture profiles pry it open.
        EVQ_INJECT_POINT("registry.sim_llsc.ll.window");
        other->r.fetch_add(1, std::memory_order_seq_cst);               // L7
        stats::on_faa();
        if (word_.load(std::memory_order_seq_cst) != observed) {        // L7b
          other->r.fetch_sub(1, std::memory_order_seq_cst);
          stats::on_faa();
          continue;  // reservation changed while unprotected — retry
        }
        var->node.store(other->node.load(std::memory_order_seq_cst),
                        std::memory_order_seq_cst);                     // L8
      } else {
        var->node.store(observed, std::memory_order_seq_cst);           // L11
      }
      const bool installed = word_.compare_exchange_strong(
          observed, lsb_tag(var), std::memory_order_seq_cst);           // L12
      stats::on_cas(installed);
      if (other != nullptr) {
        other->r.fetch_sub(1, std::memory_order_seq_cst);               // L13-L14
        stats::on_faa();
      }
      if (installed) {
        return from_word(var->node.load(std::memory_order_relaxed));    // L16
      }
    }
  }

  /// Store-conditional: writes `desired` iff our reservation tag survived.
  bool sc(LlscVar* var, T desired) noexcept {
    if (EVQ_INJECT_SC_FAILS("sim_llsc.sc")) {
      // Injected takeover, simulated as "a foreign ll() stole the
      // reservation and then released it". The tag must NOT stay behind: a
      // failed-sc caller may exit its operation, and ReRegister would then
      // reuse the var (r == 1) while its stale tag still sits in this cell
      // — a forged instance of the Sec. 5 ABA no real schedule produces.
      release(var);
      return false;
    }
    std::uintptr_t expected = lsb_tag(var);
    const bool ok = word_.compare_exchange_strong(expected, to_word(desired),
                                                  std::memory_order_seq_cst);
    stats::on_cas(ok);
    return ok;
  }

  /// Undoes a reservation by restoring the value observed at ll() time
  /// (taken from var->node). No-op if the reservation was already taken over.
  void release(LlscVar* var) noexcept {
    std::uintptr_t expected = lsb_tag(var);
    const bool ok =
        word_.compare_exchange_strong(expected, var->node.load(std::memory_order_relaxed),
                                      std::memory_order_seq_cst);
    stats::on_cas(ok);
  }

  /// Tag-aware atomic read of the logical value, without reserving.
  [[nodiscard]] T load() noexcept {
    for (;;) {
      const std::uintptr_t observed = word_.load(std::memory_order_seq_cst);
      if (!lsb_tagged(observed)) {
        return from_word(observed);
      }
      LlscVar* other = lsb_untag<LlscVar>(observed);
      other->r.fetch_add(1, std::memory_order_seq_cst);
      stats::on_faa();
      // Validate AFTER publishing the refcount and BEFORE reading node
      // (same "L7b" rule as ll(); see that function's comment): once r >= 2
      // is visible and the tag is still in place, the node value is pinned.
      const bool valid = word_.load(std::memory_order_seq_cst) == observed;
      const std::uintptr_t value =
          valid ? other->node.load(std::memory_order_seq_cst) : 0;
      other->r.fetch_sub(1, std::memory_order_seq_cst);
      stats::on_faa();
      if (valid) {
        return from_word(value);
      }
    }
  }

  /// Non-atomic initialization/reset (quiescent use only — e.g. queue
  /// construction).
  void reset(T value) noexcept { word_.store(to_word(value), std::memory_order_relaxed); }

  /// Raw physical word — test/diagnostic hook (lets tests see tags).
  [[nodiscard]] std::uintptr_t raw() const noexcept {
    return word_.load(std::memory_order_seq_cst);
  }

 private:
  static std::uintptr_t to_word(T v) noexcept {
    auto w = reinterpret_cast<std::uintptr_t>(v);
    EVQ_DCHECK(!lsb_tagged(w), "logical values must be even (LSB reserved for tags)");
    return w;
  }
  static T from_word(std::uintptr_t w) noexcept { return reinterpret_cast<T>(w); }

  std::atomic<std::uintptr_t> word_;
  static_assert(std::atomic<std::uintptr_t>::is_always_lock_free);
};

}  // namespace evq::registry
