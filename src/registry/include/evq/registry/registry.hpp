// Population-oblivious acquisition of thread-owned LLSC variables —
// the Register / ReRegister / Deregister operations of the paper's Fig. 5
// (a simplification of Herlihy–Luchangco–Moir's space-adaptive collect).
//
// Key properties reproduced from the paper:
//  * No advance bound on thread count: a thread that finds no recyclable
//    variable allocates one and pushes it onto a global lock-free LIFO list.
//  * Space adapts to the *maximum concurrent* number of registered threads,
//    not the total number of threads ever seen: Deregister drops the owner
//    count so later Registers recycle the slot.
//  * A variable is recycled only when its reference count is exactly 0 —
//    i.e. no owner and no foreign reader — via CAS(&r, 0, 1).
//  * Register is lock-free: the traversal is bounded by the list length,
//    which only another successful Register can grow.
#pragma once

#include <atomic>
#include <cstddef>

#include "evq/common/config.hpp"
#include "evq/common/op_stats.hpp"
#include "evq/registry/llsc_var.hpp"

namespace evq::registry {

class Registry {
 public:
  Registry() = default;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Frees the variable list. May only run when no thread is registered or
  /// reading — the usual "destruction is quiescent" rule for lock-free
  /// containers.
  ~Registry() {
    LlscVar* var = first_.load(std::memory_order_acquire);
    while (var != nullptr) {
      LlscVar* next = var->next.load(std::memory_order_relaxed);
      delete var;
      var = next;
    }
  }

  /// Fig. 5 R1–R16: claims a recyclable variable or allocates and publishes
  /// a new one. The returned variable has r >= 1 (owner count held).
  [[nodiscard]] LlscVar* register_var() {
    for (LlscVar* var = first_.load(std::memory_order_acquire); var != nullptr;
         var = var->next.load(std::memory_order_acquire)) {
      if (var->r.load(std::memory_order_relaxed) == 0) {
        std::uint32_t zero = 0;
        const bool claimed =
            var->r.compare_exchange_strong(zero, 1, std::memory_order_acq_rel);
        stats::on_cas(claimed);
        if (claimed) {
          return var;
        }
      }
    }
    auto* var = new LlscVar;
    var->r.store(1, std::memory_order_relaxed);
    LlscVar* head = first_.load(std::memory_order_relaxed);
    bool published = false;
    do {
      var->next.store(head, std::memory_order_relaxed);
      published = first_.compare_exchange_weak(head, var, std::memory_order_acq_rel,
                                               std::memory_order_relaxed);
      stats::on_cas(published);
    } while (!published);
    return var;
  }

  /// Fig. 5 RR1–RR5: must be called between two consecutive queue operations.
  /// Keeps `var` if no foreign thread still reads through it (r == 1);
  /// otherwise abandons it (the readers' decrements will make it recyclable)
  /// and claims a fresh one. This is what prevents the tagged-pointer ABA
  /// described in Sec. 5.
  [[nodiscard]] LlscVar* reregister(LlscVar* var) {
    EVQ_DCHECK(var != nullptr, "reregister of unregistered variable");
    if (var->r.load(std::memory_order_acquire) == 1) {
      return var;
    }
    var->r.fetch_sub(1, std::memory_order_acq_rel);
    stats::on_faa();
    return register_var();
  }

  /// Fig. 5 DR1–DR3: releases the owner count. (The paper's DR2 writes
  /// `var->ref`; the field is `r` — a known erratum, see DESIGN.md.)
  void deregister(LlscVar* var) noexcept {
    EVQ_DCHECK(var != nullptr, "deregister of unregistered variable");
    var->r.fetch_sub(1, std::memory_order_acq_rel);
    stats::on_faa();
  }

  /// Number of variables ever published. Space bound = high-water mark of
  /// concurrent registrations (plus abandoned-but-still-read variables);
  /// tests assert it stays far below "total threads ever".
  [[nodiscard]] std::size_t list_length() const noexcept {
    std::size_t n = 0;
    for (LlscVar* var = first_.load(std::memory_order_acquire); var != nullptr;
         var = var->next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

  /// Number of currently claimed (r > 0) variables — diagnostics for tests.
  [[nodiscard]] std::size_t claimed_count() const noexcept {
    std::size_t n = 0;
    for (LlscVar* var = first_.load(std::memory_order_acquire); var != nullptr;
         var = var->next.load(std::memory_order_acquire)) {
      n += (var->r.load(std::memory_order_relaxed) > 0) ? 1 : 0;
    }
    return n;
  }

 private:
  std::atomic<LlscVar*> first_{nullptr};
};

/// RAII owner-count holder: registers on construction, deregisters on
/// destruction, with reregister() to be called between queue operations.
class Registration {
 public:
  explicit Registration(Registry& reg) : registry_(&reg), var_(reg.register_var()) {}

  Registration(Registration&& other) noexcept : registry_(other.registry_), var_(other.var_) {
    other.registry_ = nullptr;
    other.var_ = nullptr;
  }
  Registration& operator=(Registration&& other) noexcept {
    if (this != &other) {
      release();
      registry_ = other.registry_;
      var_ = other.var_;
      other.registry_ = nullptr;
      other.var_ = nullptr;
    }
    return *this;
  }

  Registration(const Registration&) = delete;
  Registration& operator=(const Registration&) = delete;

  ~Registration() { release(); }

  /// Fresh (reader-free) variable for the next operation.
  [[nodiscard]] LlscVar* fresh() {
    var_ = registry_->reregister(var_);
    return var_;
  }

  [[nodiscard]] LlscVar* get() const noexcept { return var_; }

 private:
  void release() noexcept {
    if (registry_ != nullptr && var_ != nullptr) {
      registry_->deregister(var_);
      registry_ = nullptr;
      var_ = nullptr;
    }
  }

  Registry* registry_;
  LlscVar* var_;
};

}  // namespace evq::registry
