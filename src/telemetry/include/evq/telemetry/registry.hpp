// The telemetry registry: stable queue names -> live QueueMetrics.
//
// Queues register themselves on construction (via ScopedQueueMetrics) under a
// stable NAME, not a per-instance id. Two consequences, both deliberate:
//
//  * Entries are never deleted. A Prometheus counter must be monotone across
//    the life of the process; if "fifo-llsc" disappeared and reappeared at
//    zero every time a bench run rebuilt its queue, every scrape delta would
//    be garbage. Entry pointers are therefore stable for the process
//    lifetime (vector of unique_ptr, append-only).
//  * Same-name live instances SHARE the entry. The harness constructs a
//    fresh queue per run; aggregating them under one name is exactly what an
//    operator (and the bench --telemetry delta) wants. A refcount tracks
//    liveness; depth gauges are per-instance (keyed by owner) and removed on
//    destruction, so depth never reads freed memory.
//
// The registry mutex guards only registration, gauge bookkeeping and
// iteration — never the counter hot path, which is lock-free in
// QueueMetrics.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "evq/telemetry/metrics.hpp"

namespace evq::telemetry {

class Registry {
 public:
  /// Depth gauges are sampled under the registry mutex; callbacks must be
  /// cheap and touch only data that outlives their clear_gauge() call
  /// (ScopedQueueMetrics guarantees this by clearing in its destructor).
  using Gauge = std::function<std::uint64_t()>;

  struct Entry {
    std::string name;
    std::uint32_t id = 0;  // registration order within this registry
    QueueMetrics metrics;
    // --- guarded by the owning registry's mutex ---
    std::size_t live = 0;  // acquire() minus release()
    std::vector<std::pair<const void*, Gauge>> gauges;
  };

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create the entry for `name`; bumps its live count.
  Entry* acquire(std::string_view name);
  void release(Entry* entry) noexcept;

  /// Install/remove a per-instance depth gauge (keyed by `owner` so several
  /// live instances of one name can each contribute).
  void set_gauge(Entry* entry, const void* owner, Gauge fn);
  void clear_gauge(Entry* entry, const void* owner) noexcept;

  /// Visit every entry in registration order. `depth` is the sum of the
  /// entry's gauges (0 when `gauge_count` is 0), sampled under the lock.
  void for_each(
      const std::function<void(const Entry&, std::size_t gauge_count, std::uint64_t depth)>& fn)
      const;

  [[nodiscard]] const Entry* find(std::string_view name) const;
  [[nodiscard]] std::size_t size() const;

  /// The process-wide registry every queue registers into by default.
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// RAII registration handle owned by an instrumented queue. Declare it so
/// that it is destroyed BEFORE the state any depth gauge reads (for a member
/// gauge capturing `this`, declare the handle as the LAST member: members are
/// destroyed in reverse order, so the gauge is cleared while the queue's
/// indices are still alive).
class ScopedQueueMetrics {
 public:
  explicit ScopedQueueMetrics(std::string_view name, Registry* registry = nullptr);
  ~ScopedQueueMetrics();
  ScopedQueueMetrics(const ScopedQueueMetrics&) = delete;
  ScopedQueueMetrics& operator=(const ScopedQueueMetrics&) = delete;

  void inc(Counter c, std::uint64_t n = 1) noexcept { entry_->metrics.inc(c, n); }
  [[nodiscard]] QueueMetrics& metrics() noexcept { return entry_->metrics; }
  [[nodiscard]] const std::string& name() const noexcept { return entry_->name; }
  /// Registry-assigned id; the flight recorder stamps it into trace records.
  [[nodiscard]] std::uint32_t queue_id() const noexcept { return entry_->id; }

  void set_depth_gauge(Registry::Gauge fn);

 private:
  Registry* registry_;
  Registry::Entry* entry_;
};

}  // namespace evq::telemetry
