// Always-on per-queue metrics: cacheline-sharded relaxed counters.
//
// The bench harness's op_stats are opt-in per thread and vanish when the run
// ends; a production queue needs counters that are ALWAYS live and readable
// from outside the operating threads ("which queue is saturated, how many
// help-advances per second?"). QueueMetrics provides that at a hot-path cost
// of ONE relaxed fetch_add on a thread-striped cell:
//
//  * Striping: counters live in kStripes cacheline-aligned stripes and each
//    thread increments the stripe picked by its (process-wide) thread
//    ordinal, so concurrent writers on different cores do not ping-pong a
//    shared line. Reading sums the stripes.
//  * Ordering: increments and reads are memory_order_relaxed. Each cell is a
//    monotone event counter with no inter-counter invariant a reader could
//    rely on, so a snapshot only promises per-counter values that were each
//    current at SOME instant during the read — exactly the guarantee an
//    exporter scrape needs, and the weakest (cheapest) one the hardware
//    offers. No queue synchronization decision ever reads these counters.
//  * Compile-out: building with -DEVQ_TELEMETRY=0 (CMake option
//    EVQ_TELEMETRY=OFF) turns inc() into a no-op while keeping every API
//    compiling, so instrumented code needs no #ifdefs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "evq/common/cacheline.hpp"

#if !defined(EVQ_TELEMETRY)
#define EVQ_TELEMETRY 1
#endif

namespace evq::telemetry {

/// Event taxonomy, uniform across every queue family (DESIGN.md
/// "Observability"). Array queues use the push/pop/slot/help/backoff rows;
/// the reclamation layers use the hp/pool/epoch rows; a queue simply never
/// increments rows that do not apply to it.
enum class Counter : std::uint8_t {
  kPushOk = 0,      // try_push returned true
  kPushFull,        // try_push observed FULL_QUEUE
  kPopOk,           // try_pop returned a value
  kPopEmpty,        // try_pop observed EMPTY_QUEUE
  kSlotScFail,      // slot commit (SC or its CAS stand-in) failed
  kHelpAdvance,     // lagging Head/Tail advanced on a peer's behalf
  kBackoffRound,    // one ContentionPolicy::pause() on a retry path
  kHpScan,          // hazard-pointer scan pass
  kHpRetired,       // node handed to an HP domain's retired list
  kHpFreed,         // node reclaimed by an HP scan
  kPoolHit,         // FreePool::take() returned a recycled node
  kPoolMiss,        // FreePool::make() heap-allocated a fresh node
  kEpochRetired,    // node retired into an epoch bucket
  kEpochAdvance,    // successful global-epoch advance
  kFaaReserve,      // FAA-generation ticket claimed (SCQ head/tail fetch_add)
  kSlotSkip,        // SCQ entry skipped: cycle bumped past or marked unsafe
  kSegSeal,         // segment sealed (CLOSED bit set on a ring's tail)
  kSegAlloc,        // fresh segment appended to a segmented queue
  kSegRetire,       // drained segment unlinked and handed to reclamation
  kCombSubmit,      // op published into a combining-queue announce record
  kCombCombine,     // combiner lock acquired and a combining pass executed
  kCombBatchN,      // ops applied by combiners (sum; / comb_combine = batch)
};

inline constexpr std::size_t kCounterCount = 22;

/// Stable short name ("push_ok", ...): the `op` label of the Prometheus
/// exporter and the key of the JSON telemetry section.
const char* counter_name(Counter c) noexcept;

/// A point-in-time copy of one queue's counters (plain integers: compare,
/// diff and serialize without touching the live atomics).
struct CounterSnapshot {
  std::uint64_t counts[kCounterCount] = {};

  std::uint64_t& operator[](Counter c) noexcept {
    return counts[static_cast<std::size_t>(c)];
  }
  std::uint64_t operator[](Counter c) const noexcept {
    return counts[static_cast<std::size_t>(c)];
  }

  CounterSnapshot& operator+=(const CounterSnapshot& other) noexcept {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      counts[i] += other.counts[i];
    }
    return *this;
  }

  [[nodiscard]] bool any() const noexcept {
    for (std::uint64_t v : counts) {
      if (v != 0) {
        return true;
      }
    }
    return false;
  }
};

/// after - before, per counter. Counters are monotone, so this is the event
/// count of the interval between the two snapshots of one queue.
CounterSnapshot counter_delta(const CounterSnapshot& before,
                              const CounterSnapshot& after) noexcept;

namespace detail {
inline constexpr std::uint32_t kStripeUnassigned = 0xFFFFFFFFu;
/// Process-wide thread ordinal cache (defined in telemetry.cpp — deliberately
/// NOT an inline/COMDAT thread_local, same reasoning as op_stats).
extern thread_local std::uint32_t t_stripe;
std::uint32_t assign_stripe() noexcept;
inline std::uint32_t stripe_ordinal() noexcept {
  const std::uint32_t s = t_stripe;
  return s != kStripeUnassigned ? s : assign_stripe();
}
}  // namespace detail

/// The per-queue counter block. Not copyable/movable (live atomics, and
/// registry entries hand out stable pointers to it).
class QueueMetrics {
 public:
  static constexpr std::size_t kStripes = 8;  // power of two

  QueueMetrics() = default;
  QueueMetrics(const QueueMetrics&) = delete;
  QueueMetrics& operator=(const QueueMetrics&) = delete;

  /// The hot-path hook: one relaxed increment on this thread's stripe.
  ///
  /// Deliberately a relaxed load+store, NOT fetch_add: the lock prefix of an
  /// uncontended RMW costs ~20ns — an order of magnitude more than the whole
  /// queue operation budget the <1% overhead target allows (see DESIGN.md
  /// §10). The store is exact as long as no two live threads share a stripe:
  /// ordinals are handed out consecutively, so a batch of up to kStripes
  /// worker threads (the torture/bench shape) lands on distinct stripes.
  /// When more threads collide on a stripe, a concurrent pair can drop an
  /// increment — counters are monotone rate signals, and that trade buys
  /// the always-on property.
  /// Both accesses stay atomic, so racy readers/writers are TSan-clean.
  void inc(Counter c, std::uint64_t n = 1) noexcept {
#if EVQ_TELEMETRY
    std::atomic<std::uint64_t>& cell = stripes_[detail::stripe_ordinal() & (kStripes - 1)]
                                           .cells[static_cast<std::size_t>(c)];
    cell.store(cell.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
#else
    (void)c;
    (void)n;
#endif
  }

  /// Sum of one counter across stripes (relaxed; see header comment).
  [[nodiscard]] std::uint64_t value(Counter c) const noexcept {
    std::uint64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      total += stripe.cells[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
    }
    return total;
  }

  [[nodiscard]] CounterSnapshot snapshot() const noexcept {
    CounterSnapshot snap;
    for (const Stripe& stripe : stripes_) {
      for (std::size_t i = 0; i < kCounterCount; ++i) {
        snap.counts[i] += stripe.cells[i].load(std::memory_order_relaxed);
      }
    }
    return snap;
  }

 private:
  struct alignas(kCacheLineSize) Stripe {
    std::atomic<std::uint64_t> cells[kCounterCount] = {};
  };

  Stripe stripes_[kStripes] = {};
};

}  // namespace evq::telemetry
