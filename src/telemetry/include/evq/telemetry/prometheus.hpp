// Exporter surface: Prometheus text rendering and a snapshot/delta API.
//
// render_prometheus() writes the classic text exposition format. Output is
// deterministic — entries in registration order, counters in enum order —
// so the format is pinned by a golden test. snapshot_registry()/delta()
// back `evq-bench --telemetry` (per-scenario counter deltas merged into the
// JSON document) and the evq-stats example.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "evq/telemetry/metrics.hpp"
#include "evq/telemetry/registry.hpp"

namespace evq::telemetry {

struct QueueCounters {
  std::string queue;
  std::uint32_t id = 0;  // registry entry id (stable; keys the latency reservoir)
  CounterSnapshot counters;
  bool has_depth = false;  // true when the entry had >= 1 depth gauge
  std::uint64_t depth = 0;
};

struct RegistrySnapshot {
  std::vector<QueueCounters> queues;  // registration order

  [[nodiscard]] const QueueCounters* find(const std::string& queue) const noexcept {
    for (const QueueCounters& q : queues) {
      if (q.queue == queue) {
        return &q;
      }
    }
    return nullptr;
  }
};

RegistrySnapshot snapshot_registry(const Registry& reg = Registry::global());

/// Escapes a string for use inside a Prometheus label VALUE: backslash,
/// double-quote, and newline get backslash-escaped per the text exposition
/// format. Registry entry names are free-form (sharded queues register
/// `<name>/<i>`, segmented inner rings `<name>/ring`) — a label VALUE may
/// carry any UTF-8 as long as these three are escaped, so names never need
/// to be mangled, only escaped.
std::string escape_label_value(std::string_view raw);

/// Per-queue counter deltas `after - before`, keyed by name. Queues absent
/// from `before` (registered mid-interval) contribute their full counts;
/// depth is carried from `after` (a gauge has no meaningful delta).
RegistrySnapshot snapshot_delta(const RegistrySnapshot& before, const RegistrySnapshot& after);

/// evq_queue_ops_total{queue=...,op=...} counters (all 14 per queue) and
/// evq_queue_depth{queue=...} gauges (only queues with a registered gauge).
void render_prometheus(std::ostream& os, const Registry& reg = Registry::global());

}  // namespace evq::telemetry
