// Flight recorder: per-thread lock-free rings of fixed-size trace records.
//
// When a torture run wedges, aggregate counters say WHAT happened but not
// what each thread was doing at the end; the flight recorder answers that.
// Each thread owns a ring of kRecords trace records (timestamp, queue id,
// op, slot index, retry count) written only by that thread; dump routines on
// OTHER threads may read a ring while its owner is still writing, so every
// record field is a relaxed std::atomic — a torn logical record is
// acceptable in a post-mortem, a data race is not (the torture binary runs
// under TSan).
//
// Rings are pooled: a thread attaches on its first traced op, its ring
// returns to a free list at thread exit and is reused by later threads, and
// every ring ever created stays reachable for dumping — so memory is bounded
// by the peak thread count, and records from exited threads survive for the
// post-mortem. Tracing is off by default behind one relaxed global flag; the
// torture harness switches it on, benches leave it off.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "evq/telemetry/metrics.hpp"

namespace evq::telemetry {

enum class TraceOp : std::uint8_t {
  kPushOk = 0,
  kPushFull,
  kPopOk,
  kPopEmpty,
};

const char* trace_op_name(TraceOp op) noexcept;

/// Cheap per-op timestamp: raw TSC where available (ordering within one
/// thread is all dumps need), steady_clock ticks elsewhere.
inline std::uint64_t trace_clock() noexcept {
#if defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

class ThreadTrace {
 public:
  static constexpr std::size_t kRecords = 1024;  // power of two

  struct Record {
    std::atomic<std::uint64_t> tsc{0};
    std::atomic<std::uint64_t> index{0};   // ring slot / queue-local position
    std::atomic<std::uint64_t> op_seq{0};  // owner's per-thread op count at write time
    std::atomic<std::uint32_t> queue_id{0};
    std::atomic<std::uint32_t> retries{0};
    std::atomic<std::uint32_t> thread_ord{0};  // owner at write time (rings are reused)
    std::atomic<std::uint8_t> op{0};
  };

  void record(std::uint32_t queue_id, TraceOp op, std::uint64_t index,
              std::uint32_t retries) noexcept {
    const std::uint64_t at = pos_.fetch_add(1, std::memory_order_relaxed);
    // Single-writer sequence: monotone per OWNER, reset when the ring is
    // reassigned to a new thread (unlike pos_, which spans owners). The
    // health layer's stall detector compares successive reads of op_seq_ —
    // a live thread whose sequence freezes while the rest of the system
    // makes progress is stuck inside an operation.
    const std::uint64_t seq = op_seq_.load(std::memory_order_relaxed) + 1;
    op_seq_.store(seq, std::memory_order_relaxed);
    Record& r = records_[at & (kRecords - 1)];
    r.tsc.store(trace_clock(), std::memory_order_relaxed);
    r.index.store(index, std::memory_order_relaxed);
    r.op_seq.store(seq, std::memory_order_relaxed);
    r.queue_id.store(queue_id, std::memory_order_relaxed);
    r.retries.store(retries, std::memory_order_relaxed);
    r.thread_ord.store(owner_ord_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    r.op.store(static_cast<std::uint8_t>(op), std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total_records() const noexcept {
    return pos_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const Record& record_at(std::uint64_t logical_pos) const noexcept {
    return records_[logical_pos & (kRecords - 1)];
  }
  [[nodiscard]] std::uint32_t owner_ordinal() const noexcept {
    return owner_ord_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool live() const noexcept { return live_.load(std::memory_order_relaxed); }
  /// The CURRENT owner's op count (0 until its first record). Survives ring
  /// wraparound — it counts operations, not surviving records.
  [[nodiscard]] std::uint64_t op_seq() const noexcept {
    return op_seq_.load(std::memory_order_relaxed);
  }

  void assign_owner(std::uint32_t ordinal) noexcept {
    owner_ord_.store(ordinal, std::memory_order_relaxed);
    live_.store(true, std::memory_order_relaxed);
    // Rings are reused across threads: the sequence restarts with the new
    // owner so "per-thread progress" never inherits a predecessor's count.
    op_seq_.store(0, std::memory_order_relaxed);
  }
  void mark_exited() noexcept { live_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> pos_{0};
  std::atomic<std::uint64_t> op_seq_{0};
  std::atomic<std::uint32_t> owner_ord_{0};
  std::atomic<bool> live_{false};
  Record records_[kRecords];
};

namespace detail {
extern std::atomic<bool> g_tracing;
/// This thread's ring, nullptr until first traced op (defined in
/// telemetry.cpp; not inline/COMDAT for the same reason as op_stats).
extern thread_local ThreadTrace* t_trace;
ThreadTrace& attach_trace();
}  // namespace detail

inline bool tracing_enabled() noexcept {
  return detail::g_tracing.load(std::memory_order_relaxed);
}
void set_tracing(bool on) noexcept;

/// The hot-path hook: one relaxed load when tracing is off.
inline void record_trace(std::uint32_t queue_id, TraceOp op, std::uint64_t index,
                         std::uint32_t retries) noexcept {
#if EVQ_TELEMETRY
  if (!tracing_enabled()) {
    return;
  }
  ThreadTrace* t = detail::t_trace;
  if (t == nullptr) {
    t = &detail::attach_trace();
  }
  t->record(queue_id, op, index, retries);
#else
  (void)queue_id;
  (void)op;
  (void)index;
  (void)retries;
#endif
}

/// Snapshot of one ring's most recent record — the torture watchdog's
/// per-thread "last known op" line.
struct LastOpState {
  std::uint32_t thread_ord = 0;
  bool thread_live = false;
  std::uint64_t total_records = 0;
  /// Current owner's monotone op count (health-layer progress signal; resets
  /// when a pooled ring is handed to a new thread).
  std::uint64_t op_seq = 0;
  std::uint64_t tsc = 0;
  std::uint32_t queue_id = 0;
  TraceOp op = TraceOp::kPushOk;
  std::uint64_t index = 0;
  std::uint32_t retries = 0;
};

/// One entry per ring that has recorded at least one event, in attach order.
std::vector<LastOpState> last_ops_per_thread();

/// Human-readable dump of the last `last_n` records of every ring (live and
/// exited), plus a per-thread last-op summary. Safe to call while writers
/// are still running (racy-but-atomic reads).
void dump_flight_recorder(std::ostream& os, std::size_t last_n = 32);

/// The same window as dump_flight_recorder, but as Chrome Trace Format JSON
/// (one track per thread ordinal, one instant event per record) so
/// EVQ_FLIGHT_DUMP_PATH artifacts open directly in Perfetto. Timestamps are
/// raw trace_clock() ticks scaled as if 1 tick == 1 ns — exact relative
/// order within a thread, approximate (~cpu-GHz factor) durations between
/// events. Same concurrency contract as dump_flight_recorder.
void dump_flight_recorder_chrome(std::ostream& os,
                                 std::size_t last_n = ThreadTrace::kRecords);

}  // namespace evq::telemetry
