// Always-available sampled operation-latency reservoir (DESIGN.md §15).
//
// The bench harness measures latency percentiles, but only inside evq-bench
// runs; a production queue needs an SLO signal — "what is p99 enqueue
// latency RIGHT NOW" — without a harness. This is that signal, built with
// the same cost discipline as evq::trace:
//
//  * Sampling off (default): a LatencyTimer construction is one thread-local
//    countdown read plus a predictable branch (the countdown-first gate of
//    trace::detail::arm_sample, reused shape-for-shape); the destructor is a
//    single compare against zero.
//  * Sampling at 1-in-N: the armed timer stamps trace_clock() twice and the
//    destructor writes one relaxed slot of a fixed-size per-queue reservoir
//    ring (multi-writer, so the position bump is a fetch_add — acceptable on
//    a 1-in-N path). EXPERIMENTS.md E11 pins the measured overhead of the
//    health monitor with this reservoir enabled at <= 5%.
//  * -DEVQ_TELEMETRY=0: timers compile to nothing, the snapshot API stays
//    compiled (cold) and returns empty.
//
// The reservoir keeps the newest kLatencySamples raw tick deltas per queue
// and op direction; the health layer (src/health) sorts a snapshot copy and
// publishes p50/p99 as SLO gauges. Ticks convert to nanoseconds with
// ticks_per_ns(), a one-shot steady_clock calibration.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "evq/telemetry/flight_recorder.hpp"
#include "evq/telemetry/metrics.hpp"

namespace evq::telemetry {

/// Samples retained per queue per direction. A power of two; 512 × 8 bytes
/// × 2 directions = 8 KiB per sampled queue — enough for stable p99 at the
/// default 1-in-64 sampling without evicting hot lines.
inline constexpr std::size_t kLatencySamples = 512;

/// Queue ids above this are not sampled (the table is a fixed flat array so
/// the armed path stays lock-free; 256 registry entries covers every suite
/// in the tree with headroom).
inline constexpr std::size_t kLatencyMaxQueues = 256;

/// Enables latency sampling at 1-in-`every` ops per thread (1 = every op,
/// 0 = disable, the default). Also resets the calling thread's countdown so
/// its next op arms immediately (deterministic tests).
void set_latency_sampling(std::uint32_t every) noexcept;
[[nodiscard]] std::uint32_t latency_sampling_period() noexcept;

/// Nanoseconds per trace_clock() tick, calibrated once against
/// steady_clock on first use and cached (~2ms spin, cold path only).
[[nodiscard]] double ns_per_tick() noexcept;

namespace detail {

extern std::atomic<std::uint32_t> g_latency_every;
/// Per-thread countdown (defined in telemetry.cpp; not inline/COMDAT for
/// the same reason as the stripe ordinal).
extern thread_local std::uint32_t t_latency_countdown;

/// Slow half of the gate: consults the global period, re-arms the countdown.
bool arm_latency_slow() noexcept;

/// Countdown-first sampling gate (same shape as trace::detail::arm_sample):
/// the common unsampled op touches ONLY the thread-local counter.
inline bool arm_latency() noexcept {
  const std::uint32_t cd = t_latency_countdown;
  if (cd > 1) {
    t_latency_countdown = cd - 1;
    return false;
  }
  return arm_latency_slow();
}

/// Deposits one sampled duration (raw ticks) into the queue's reservoir,
/// creating the reservoir on first use (CAS-installed, never freed — the
/// health layer may read during process teardown).
void record_latency(std::uint32_t queue_id, bool is_push, std::uint64_t ticks) noexcept;

}  // namespace detail

/// RAII sampling timer wrapped around one queue operation. The ring engine
/// constructs one at push_one/pop_one entry; the destructor covers every
/// return path, so failed ops (push-full, pop-empty) are measured too —
/// operation latency, not success latency, is the SLO quantity.
class LatencyTimer {
 public:
  LatencyTimer(std::uint32_t queue_id, bool is_push) noexcept {
#if EVQ_TELEMETRY
    if (detail::arm_latency()) {
      queue_id_ = queue_id;
      is_push_ = is_push;
      start_ = trace_clock();
    }
#else
    (void)queue_id;
    (void)is_push;
#endif
  }

  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

  ~LatencyTimer() noexcept {
#if EVQ_TELEMETRY
    if (start_ != 0) {
      detail::record_latency(queue_id_, is_push_, trace_clock() - start_);
    }
#endif
  }

 private:
#if EVQ_TELEMETRY
  std::uint64_t start_ = 0;  // 0 = not armed
  std::uint32_t queue_id_ = 0;
  bool is_push_ = true;
#endif
};

/// Snapshot of one queue's reservoir: the surviving window of raw tick
/// deltas, racily-but-atomically copied (same contract as the flight
/// recorder — safe while writers run).
struct LatencyWindow {
  std::uint32_t queue_id = 0;
  std::vector<std::uint64_t> push_ticks;
  std::vector<std::uint64_t> pop_ticks;
};

/// Every queue id with at least one deposited sample, ascending id order.
std::vector<LatencyWindow> latency_windows();

}  // namespace evq::telemetry
