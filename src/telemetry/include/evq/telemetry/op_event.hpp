// Single-increment event accounting for the ring engine (and any queue that
// wants both views of the same event stream).
//
// Before this header existed, ring_engine.hpp double-accounted its
// algorithm-level events: each slot-commit outcome and help-advance called
// BOTH a stats:: hook (the opt-in per-thread op_stats recorder) and
// telemetry_.inc(...) (the always-on per-queue counters) — two
// instrumentation points that could drift apart. count_ring_event() is the
// one call per event: it feeds the telemetry counter and derives the
// op_stats view from the SAME telemetry counter taxonomy, so the per-thread
// recorder is an alias of the telemetry event stream rather than a second
// bookkeeping:
//
//   kPushOk/kPopOk -> one successful slot commit  (slot_sc_attempts++)
//   kSlotScFail    -> one failed slot commit      (attempts++ and failures++)
//   kHelpAdvance   -> help_advances++
//   anything else  -> telemetry only
//
// The mapping is exact because the ring engine's protocol makes it so: a
// completed op commits its slot exactly once (kPushOk/kPopOk <=> SC
// success), a FULL/EMPTY return commits nothing, and every failed commit
// raises kSlotScFail. Cost when op_stats recording is off (the default):
// identical to a bare inc() plus one predictable null-check branch — i.e.
// each event is ONE counter increment on the hot path.
//
// Works under -DEVQ_TELEMETRY=0 too: inc() compiles out but the op_stats
// view keeps functioning (op-profile scenarios do not depend on telemetry).
#pragma once

#include "evq/common/op_stats.hpp"
#include "evq/telemetry/registry.hpp"

namespace evq::telemetry {

inline void count_ring_event(ScopedQueueMetrics& tm, Counter c) noexcept {
  tm.inc(c);
  switch (c) {
    case Counter::kPushOk:
    case Counter::kPopOk:
      stats::on_slot_sc(true);
      break;
    case Counter::kSlotScFail:
      stats::on_slot_sc(false);
      break;
    case Counter::kHelpAdvance:
      stats::on_help_advance();
      break;
    default:
      break;
  }
}

}  // namespace evq::telemetry
