// Out-of-line telemetry state: the stripe-ordinal thread_local, the global
// registry, the flight-recorder ring pool, and the exporter. This TU is part
// of every build (including the fault-injected torture binary) and must stay
// free of injectable headers — it includes only telemetry/ and common/.
#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "evq/telemetry/flight_recorder.hpp"
#include "evq/telemetry/latency.hpp"
#include "evq/telemetry/metrics.hpp"
#include "evq/telemetry/prometheus.hpp"
#include "evq/telemetry/registry.hpp"

namespace evq::telemetry {

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kPushOk:
      return "push_ok";
    case Counter::kPushFull:
      return "push_full";
    case Counter::kPopOk:
      return "pop_ok";
    case Counter::kPopEmpty:
      return "pop_empty";
    case Counter::kSlotScFail:
      return "slot_sc_fail";
    case Counter::kHelpAdvance:
      return "help_advance";
    case Counter::kBackoffRound:
      return "backoff_round";
    case Counter::kHpScan:
      return "hp_scan";
    case Counter::kHpRetired:
      return "hp_retired";
    case Counter::kHpFreed:
      return "hp_freed";
    case Counter::kPoolHit:
      return "pool_hit";
    case Counter::kPoolMiss:
      return "pool_miss";
    case Counter::kEpochRetired:
      return "epoch_retired";
    case Counter::kEpochAdvance:
      return "epoch_advance";
    case Counter::kFaaReserve:
      return "faa_reserve";
    case Counter::kSlotSkip:
      return "slot_skip";
    case Counter::kSegSeal:
      return "seg_seal";
    case Counter::kSegAlloc:
      return "seg_alloc";
    case Counter::kSegRetire:
      return "seg_retire";
    case Counter::kCombSubmit:
      return "comb_submit";
    case Counter::kCombCombine:
      return "comb_combine";
    case Counter::kCombBatchN:
      return "comb_batch_n";
  }
  return "unknown";
}

CounterSnapshot counter_delta(const CounterSnapshot& before,
                              const CounterSnapshot& after) noexcept {
  CounterSnapshot d;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    // Counters are monotone per queue entry; guard anyway so a mismatched
    // pair of snapshots degrades to zero instead of wrapping.
    d.counts[i] = after.counts[i] >= before.counts[i] ? after.counts[i] - before.counts[i] : 0;
  }
  return d;
}

namespace detail {

thread_local std::uint32_t t_stripe = kStripeUnassigned;

std::uint32_t assign_stripe() noexcept {
  static std::atomic<std::uint32_t> next{0};
  t_stripe = next.fetch_add(1, std::memory_order_relaxed);
  return t_stripe;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry::Entry* Registry::acquire(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Entry>& e : entries_) {
    if (e->name == name) {
      ++e->live;
      return e.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name.assign(name);
  entry->id = static_cast<std::uint32_t>(entries_.size());
  entry->live = 1;
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

void Registry::release(Entry* entry) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (entry != nullptr && entry->live > 0) {
    --entry->live;
  }
}

void Registry::set_gauge(Entry* entry, const void* owner, Gauge fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, gauge] : entry->gauges) {
    if (key == owner) {
      gauge = std::move(fn);
      return;
    }
  }
  entry->gauges.emplace_back(owner, std::move(fn));
}

void Registry::clear_gauge(Entry* entry, const void* owner) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  auto& gauges = entry->gauges;
  gauges.erase(std::remove_if(gauges.begin(), gauges.end(),
                              [owner](const auto& kv) { return kv.first == owner; }),
               gauges.end());
}

void Registry::for_each(
    const std::function<void(const Entry&, std::size_t gauge_count, std::uint64_t depth)>& fn)
    const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Entry>& e : entries_) {
    std::uint64_t depth = 0;
    for (const auto& [owner, gauge] : e->gauges) {
      depth += gauge();
    }
    fn(*e, e->gauges.size(), depth);
  }
}

const Registry::Entry* Registry::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Entry>& e : entries_) {
    if (e->name == name) {
      return e.get();
    }
  }
  return nullptr;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Registry& Registry::global() {
  // Leaked on purpose: queues registered in static-storage objects may run
  // their destructors (gauge clearing) after main() returns.
  static Registry* g = new Registry();
  return *g;
}

ScopedQueueMetrics::ScopedQueueMetrics(std::string_view name, Registry* registry)
    : registry_(registry != nullptr ? registry : &Registry::global()),
      entry_(registry_->acquire(name)) {}

ScopedQueueMetrics::~ScopedQueueMetrics() {
  registry_->clear_gauge(entry_, this);
  registry_->release(entry_);
}

void ScopedQueueMetrics::set_depth_gauge(Registry::Gauge fn) {
  registry_->set_gauge(entry_, this, std::move(fn));
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

const char* trace_op_name(TraceOp op) noexcept {
  switch (op) {
    case TraceOp::kPushOk:
      return "push_ok";
    case TraceOp::kPushFull:
      return "push_full";
    case TraceOp::kPopOk:
      return "pop_ok";
    case TraceOp::kPopEmpty:
      return "pop_empty";
  }
  return "unknown";
}

namespace detail {

std::atomic<bool> g_tracing{false};
thread_local ThreadTrace* t_trace = nullptr;

namespace {

std::mutex& trace_mutex() {
  static std::mutex mu;
  return mu;
}

struct TracePool {
  std::vector<ThreadTrace*> all;   // every ring ever created, attach order
  std::vector<ThreadTrace*> free;  // rings of exited threads, ready to reuse
  std::uint32_t next_ordinal = 0;
};

TracePool& trace_pool() {
  // Leaked on purpose: dumps must work during process teardown.
  static TracePool* pool = new TracePool();
  return *pool;
}

/// Thread-exit hook: returns this thread's ring to the pool. The ring itself
/// (and its records) stays reachable through TracePool::all for post-mortem.
struct TraceOwner {
  ThreadTrace* trace = nullptr;
  ~TraceOwner() {
    if (trace != nullptr) {
      trace->mark_exited();
      std::lock_guard<std::mutex> lock(trace_mutex());
      trace_pool().free.push_back(trace);
    }
  }
};

thread_local TraceOwner t_owner;

}  // namespace

ThreadTrace& attach_trace() {
  std::lock_guard<std::mutex> lock(trace_mutex());
  TracePool& pool = trace_pool();
  ThreadTrace* t;
  if (!pool.free.empty()) {
    t = pool.free.back();
    pool.free.pop_back();
  } else {
    t = new ThreadTrace();
    pool.all.push_back(t);
  }
  t->assign_owner(pool.next_ordinal++);
  t_owner.trace = t;
  t_trace = t;
  return *t;
}

}  // namespace detail

void set_tracing(bool on) noexcept {
  detail::g_tracing.store(on, std::memory_order_relaxed);
}

namespace {

LastOpState read_last_op(const ThreadTrace& trace) {
  LastOpState s;
  s.thread_ord = trace.owner_ordinal();
  s.thread_live = trace.live();
  s.total_records = trace.total_records();
  s.op_seq = trace.op_seq();
  if (s.total_records > 0) {
    const ThreadTrace::Record& r = trace.record_at(s.total_records - 1);
    s.tsc = r.tsc.load(std::memory_order_relaxed);
    s.queue_id = r.queue_id.load(std::memory_order_relaxed);
    s.op = static_cast<TraceOp>(r.op.load(std::memory_order_relaxed));
    s.index = r.index.load(std::memory_order_relaxed);
    s.retries = r.retries.load(std::memory_order_relaxed);
  }
  return s;
}

std::string queue_label(std::uint32_t id) {
  std::string name;
  Registry::global().for_each([&](const Registry::Entry& e, std::size_t, std::uint64_t) {
    if (e.id == id) {
      name = e.name;
    }
  });
  std::ostringstream os;
  os << id;
  if (!name.empty()) {
    os << "(" << name << ")";
  }
  return os.str();
}

}  // namespace

std::vector<LastOpState> last_ops_per_thread() {
  std::vector<const ThreadTrace*> traces;
  {
    std::lock_guard<std::mutex> lock(detail::trace_mutex());
    const auto& all = detail::trace_pool().all;
    traces.assign(all.begin(), all.end());
  }
  std::vector<LastOpState> out;
  for (const ThreadTrace* t : traces) {
    LastOpState s = read_last_op(*t);
    if (s.total_records > 0) {
      out.push_back(s);
    }
  }
  return out;
}

void dump_flight_recorder(std::ostream& os, std::size_t last_n) {
  std::vector<const ThreadTrace*> traces;
  {
    std::lock_guard<std::mutex> lock(detail::trace_mutex());
    const auto& all = detail::trace_pool().all;
    traces.assign(all.begin(), all.end());
  }
  os << "=== evq flight recorder: " << traces.size() << " thread ring(s) ===\n";
  for (const ThreadTrace* t : traces) {
    const LastOpState last = read_last_op(*t);
    os << "--- thread ord " << last.thread_ord << (last.thread_live ? " (live)" : " (exited)")
       << ": " << last.total_records << " record(s) total ---\n";
    if (last.total_records == 0) {
      continue;
    }
    const std::uint64_t total = last.total_records;
    const std::uint64_t window =
        std::min<std::uint64_t>({total, ThreadTrace::kRecords, last_n});
    for (std::uint64_t i = total - window; i < total; ++i) {
      const ThreadTrace::Record& r = t->record_at(i);
      os << "  [" << i << "] tsc=" << r.tsc.load(std::memory_order_relaxed)
         << " queue=" << queue_label(r.queue_id.load(std::memory_order_relaxed))
         << " op=" << trace_op_name(static_cast<TraceOp>(r.op.load(std::memory_order_relaxed)))
         << " index=" << r.index.load(std::memory_order_relaxed)
         << " retries=" << r.retries.load(std::memory_order_relaxed)
         << " ord=" << r.thread_ord.load(std::memory_order_relaxed) << "\n";
    }
  }
  os << "=== last op per thread ===\n";
  for (const LastOpState& s : last_ops_per_thread()) {
    os << "  thread ord " << s.thread_ord << (s.thread_live ? " (live)" : " (exited)")
       << ": " << trace_op_name(s.op) << " queue=" << queue_label(s.queue_id)
       << " index=" << s.index << " retries=" << s.retries << " seq=" << s.op_seq
       << " tsc=" << s.tsc << "\n";
  }
}

void dump_flight_recorder_chrome(std::ostream& os, std::size_t last_n) {
  std::vector<const ThreadTrace*> traces;
  {
    std::lock_guard<std::mutex> lock(detail::trace_mutex());
    const auto& all = detail::trace_pool().all;
    traces.assign(all.begin(), all.end());
  }

  // Origin = oldest surviving tsc, so the timeline starts near zero.
  std::uint64_t origin = 0;
  bool seen = false;
  for (const ThreadTrace* t : traces) {
    const std::uint64_t total = t->total_records();
    const std::uint64_t window =
        std::min<std::uint64_t>({total, ThreadTrace::kRecords, last_n});
    for (std::uint64_t i = total - window; i < total; ++i) {
      const std::uint64_t tsc = t->record_at(i).tsc.load(std::memory_order_relaxed);
      if (!seen || tsc < origin) {
        origin = tsc;
        seen = true;
      }
    }
  }

  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  auto begin_event = [&] {
    if (!first) {
      os << ",\n";
    }
    first = false;
  };
  for (const ThreadTrace* t : traces) {
    begin_event();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << t->owner_ordinal()
       << ",\"args\":{\"name\":\"evq worker " << t->owner_ordinal()
       << (t->live() ? " (live)" : " (exited)") << "\"}}";
  }
  for (const ThreadTrace* t : traces) {
    const std::uint64_t total = t->total_records();
    const std::uint64_t window =
        std::min<std::uint64_t>({total, ThreadTrace::kRecords, last_n});
    for (std::uint64_t i = total - window; i < total; ++i) {
      const ThreadTrace::Record& r = t->record_at(i);
      const std::uint64_t tsc = r.tsc.load(std::memory_order_relaxed);
      const std::uint64_t rel = tsc >= origin ? tsc - origin : 0;
      char ts[48];
      std::snprintf(ts, sizeof ts, "%.3f", static_cast<double>(rel) / 1000.0);
      begin_event();
      os << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\""
         << trace_op_name(static_cast<TraceOp>(r.op.load(std::memory_order_relaxed)))
         << "\",\"cat\":\"flight\",\"pid\":0,\"tid\":"
         << r.thread_ord.load(std::memory_order_relaxed) << ",\"ts\":" << ts
         << ",\"args\":{\"queue\":\""
         << queue_label(r.queue_id.load(std::memory_order_relaxed)) << "\",\"index\":"
         << r.index.load(std::memory_order_relaxed) << ",\"retries\":"
         << r.retries.load(std::memory_order_relaxed) << "}}";
    }
  }
  os << (first ? "" : "\n") << "]}\n";
}

// ---------------------------------------------------------------------------
// Latency reservoir
// ---------------------------------------------------------------------------

namespace detail {

std::atomic<std::uint32_t> g_latency_every{0};
thread_local std::uint32_t t_latency_countdown = 0;

namespace {

/// One queue's reservoir: two multi-writer rings of raw tick deltas. Slots
/// are relaxed atomics for the same reason as flight-recorder records — a
/// reader may copy while writers deposit, and a stale slot is fine but a
/// data race is not.
struct LatencyReservoir {
  std::atomic<std::uint64_t> push_pos{0};
  std::atomic<std::uint64_t> pop_pos{0};
  std::atomic<std::uint64_t> push_samples[kLatencySamples]{};
  std::atomic<std::uint64_t> pop_samples[kLatencySamples]{};
};

/// Flat id-indexed table so the armed deposit path is lock-free. Reservoirs
/// are CAS-installed on first sample and leaked on purpose (health snapshots
/// must work during process teardown).
std::atomic<LatencyReservoir*> g_reservoirs[kLatencyMaxQueues]{};

void copy_window(const std::atomic<std::uint64_t>& pos_a,
                 const std::atomic<std::uint64_t> (&ring)[kLatencySamples],
                 std::vector<std::uint64_t>& out) {
  const std::uint64_t pos = pos_a.load(std::memory_order_relaxed);
  const std::uint64_t n = std::min<std::uint64_t>(pos, kLatencySamples);
  out.reserve(n);
  for (std::uint64_t i = pos - n; i < pos; ++i) {
    const std::uint64_t v = ring[i & (kLatencySamples - 1)].load(std::memory_order_relaxed);
    if (v != 0) {  // zero = slot not yet (or being) written; drop it
      out.push_back(v);
    }
  }
}

}  // namespace

bool arm_latency_slow() noexcept {
  const std::uint32_t every = g_latency_every.load(std::memory_order_relaxed);
  if (every == 0) {
    t_latency_countdown = 0;
    return false;
  }
  t_latency_countdown = every;
  return true;
}

void record_latency(std::uint32_t queue_id, bool is_push, std::uint64_t ticks) noexcept {
  if (queue_id >= kLatencyMaxQueues) {
    return;
  }
  LatencyReservoir* r = g_reservoirs[queue_id].load(std::memory_order_acquire);
  if (r == nullptr) {
    auto* fresh = new LatencyReservoir();
    if (g_reservoirs[queue_id].compare_exchange_strong(r, fresh, std::memory_order_acq_rel,
                                                       std::memory_order_acquire)) {
      r = fresh;
    } else {
      delete fresh;  // lost the install race; r now holds the winner
    }
  }
  // A delta of 0 ticks is indistinguishable from an unwritten slot; round up.
  if (ticks == 0) {
    ticks = 1;
  }
  if (is_push) {
    const std::uint64_t at = r->push_pos.fetch_add(1, std::memory_order_relaxed);
    r->push_samples[at & (kLatencySamples - 1)].store(ticks, std::memory_order_relaxed);
  } else {
    const std::uint64_t at = r->pop_pos.fetch_add(1, std::memory_order_relaxed);
    r->pop_samples[at & (kLatencySamples - 1)].store(ticks, std::memory_order_relaxed);
  }
}

}  // namespace detail

void set_latency_sampling(std::uint32_t every) noexcept {
  detail::g_latency_every.store(every, std::memory_order_relaxed);
  detail::t_latency_countdown = 0;  // re-arm this thread on its next op
}

std::uint32_t latency_sampling_period() noexcept {
  return detail::g_latency_every.load(std::memory_order_relaxed);
}

double ns_per_tick() noexcept {
#if defined(__x86_64__)
  // rdtsc frequency != steady_clock frequency: calibrate once by spinning a
  // short wall-clock window. ~2ms keeps the relative error well under the
  // percentile noise floor, and the result is cached for the process.
  static const double cached = [] {
    const auto wall_start = std::chrono::steady_clock::now();
    const std::uint64_t tsc_start = trace_clock();
    for (;;) {
      const auto wall_now = std::chrono::steady_clock::now();
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::nanoseconds>(wall_now - wall_start);
      if (elapsed >= std::chrono::milliseconds(2)) {
        const std::uint64_t tsc_now = trace_clock();
        if (tsc_now <= tsc_start) {
          return 1.0;  // non-monotone TSC; fall back to 1 tick == 1 ns
        }
        return static_cast<double>(elapsed.count()) /
               static_cast<double>(tsc_now - tsc_start);
      }
    }
  }();
  return cached;
#else
  return 1.0;  // trace_clock() is already steady_clock nanoseconds
#endif
}

std::vector<LatencyWindow> latency_windows() {
  std::vector<LatencyWindow> out;
  for (std::size_t id = 0; id < kLatencyMaxQueues; ++id) {
    const detail::LatencyReservoir* r =
        detail::g_reservoirs[id].load(std::memory_order_acquire);
    if (r == nullptr) {
      continue;
    }
    LatencyWindow w;
    w.queue_id = static_cast<std::uint32_t>(id);
    detail::copy_window(r->push_pos, r->push_samples, w.push_ticks);
    detail::copy_window(r->pop_pos, r->pop_samples, w.pop_ticks);
    if (!w.push_ticks.empty() || !w.pop_ticks.empty()) {
      out.push_back(std::move(w));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Exporter
// ---------------------------------------------------------------------------

RegistrySnapshot snapshot_registry(const Registry& reg) {
  RegistrySnapshot snap;
  reg.for_each([&](const Registry::Entry& e, std::size_t gauge_count, std::uint64_t depth) {
    QueueCounters q;
    q.queue = e.name;
    q.id = e.id;
    q.counters = e.metrics.snapshot();
    q.has_depth = gauge_count > 0;
    q.depth = depth;
    snap.queues.push_back(std::move(q));
  });
  return snap;
}

RegistrySnapshot snapshot_delta(const RegistrySnapshot& before, const RegistrySnapshot& after) {
  RegistrySnapshot d;
  for (const QueueCounters& now : after.queues) {
    QueueCounters q;
    q.queue = now.queue;
    q.id = now.id;
    q.has_depth = now.has_depth;
    q.depth = now.depth;
    if (const QueueCounters* was = before.find(now.queue)) {
      q.counters = counter_delta(was->counters, now.counters);
    } else {
      q.counters = now.counters;
    }
    d.queues.push_back(std::move(q));
  }
  return d;
}

std::string escape_label_value(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void render_prometheus(std::ostream& os, const Registry& reg) {
  const RegistrySnapshot snap = snapshot_registry(reg);
  os << "# HELP evq_queue_ops_total Queue operation and reclamation events by queue and op.\n";
  os << "# TYPE evq_queue_ops_total counter\n";
  for (const QueueCounters& q : snap.queues) {
    const std::string label = escape_label_value(q.queue);
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      os << "evq_queue_ops_total{queue=\"" << label << "\",op=\""
         << counter_name(static_cast<Counter>(i)) << "\"} " << q.counters.counts[i] << "\n";
    }
  }
  os << "# HELP evq_queue_depth Approximate queue occupancy (sum of live instance gauges).\n";
  os << "# TYPE evq_queue_depth gauge\n";
  for (const QueueCounters& q : snap.queues) {
    if (q.has_depth) {
      os << "evq_queue_depth{queue=\"" << escape_label_value(q.queue) << "\"} " << q.depth
         << "\n";
    }
  }
}

}  // namespace evq::telemetry
