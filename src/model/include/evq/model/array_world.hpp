// Step-level model of the circular-array FIFO family: Algorithm 1's
// LL/SC-slot queue and the weakened variants whose failures motivate it.
//
// Every shared-memory access of Fig. 3's pseudocode is one atomic step, so
// the explorer can preempt an operation at exactly the program points the
// paper's Sec. 3 scenarios require (e.g. "delayed immediately prior to the
// increment", "preempted anywhere between lines D5 and D10").
//
// Configurable axes (ArrayModelConfig):
//   slot_protocol
//     kLlsc     — slots carry a modification counter; SC fails on any
//                 intervening write (Algorithm 1's defense).
//     kPlainCas — slots are bare words CASed directly (data-ABA and
//                 null-ABA possible — the naive construction).
//     kTwoNull  — bare words + alternating generation nulls
//                 (Tsigas–Zhang-style: null-ABA fixed, data-ABA remains).
//   index_recheck — the E10/D10 "if (t == Tail)" re-validation. Turning it
//                 off models omitting the check the paper's Fig. 4 shows to
//                 be load-bearing.
//   index_modulus — 0 for monotone full-width counters (the paper's index-
//                 ABA cure); a small modulus models Fig. 1's wrapping
//                 indices (the bug strikes once the counter laps).
#pragma once

#include <cstdint>
#include <vector>

#include "evq/common/config.hpp"
#include "evq/model/explorer.hpp"
#include "evq/verify/history.hpp"

namespace evq::model {

enum class SlotProtocol : std::uint8_t { kLlsc, kPlainCas, kTwoNull };

struct ArrayModelConfig {
  std::size_t capacity = 2;
  SlotProtocol slot_protocol = SlotProtocol::kLlsc;
  bool index_recheck = true;
  std::uint64_t index_modulus = 0;  // 0 = monotone (full-width) counters
  std::vector<std::uint64_t> initial_items;
  std::vector<std::vector<ModelOp>> programs;  // one per thread
};

class ArrayQueueWorld {
 public:
  explicit ArrayQueueWorld(ArrayModelConfig config) : cfg_(std::move(config)) {
    EVQ_CHECK(!cfg_.programs.empty(), "need at least one thread program");
    EVQ_CHECK(cfg_.initial_items.size() <= cfg_.capacity, "too many initial items");
    slots_.assign(cfg_.capacity, Slot{});
    if (cfg_.slot_protocol == SlotProtocol::kTwoNull) {
      for (Slot& s : slots_) {
        s.value = kNullOfGen(~std::uint64_t{0});  // "emptied in generation -1"
      }
    }
    for (std::uint64_t item : cfg_.initial_items) {
      EVQ_CHECK(legal_value(item), "initial item collides with a null encoding");
      slots_[index_of(tail_)].value = item;
      tail_ = bump(tail_);
    }
    for (const auto& program : cfg_.programs) {
      for (const ModelOp& op : program) {
        EVQ_CHECK(!op.is_push || legal_value(op.value),
                  "pushed value collides with a null encoding");
      }
    }
    machines_.resize(cfg_.programs.size());
  }

  [[nodiscard]] std::size_t thread_count() const { return machines_.size(); }
  [[nodiscard]] bool thread_done(std::size_t i) const {
    return machines_[i].op_index >= cfg_.programs[i].size();
  }
  [[nodiscard]] bool thread_blocked(std::size_t) const { return false; }
  [[nodiscard]] bool all_done() const {
    for (std::size_t i = 0; i < machines_.size(); ++i) {
      if (!thread_done(i)) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] std::size_t spec_capacity() const { return cfg_.capacity; }

  [[nodiscard]] verify::History history() const {
    verify::History all;
    for (const Machine& m : machines_) {
      all.insert(all.end(), m.completed.begin(), m.completed.end());
    }
    // Items preloaded by the constructor enter the spec as instantaneous
    // pushes that precede everything else.
    // Preloaded item i gets stamps [2i, 2i+1] — mutually ordered and
    // strictly before every real operation (see invoke_stamp below).
    std::uint64_t i = 0;
    for (std::uint64_t item : cfg_.initial_items) {
      verify::Operation op;
      op.kind = verify::OpKind::kPush;
      op.arg = item;
      op.ok = true;
      op.invoke = 2 * i;
      op.response = 2 * i + 1;
      all.push_back(op);
      ++i;
    }
    return all;
  }

  [[nodiscard]] std::uint64_t hash() const {
    StateHasher h;
    h.mix(head_);
    h.mix(tail_);
    for (const Slot& s : slots_) {
      h.mix(s.value);
      h.mix(s.version);
    }
    for (const Machine& m : machines_) {
      h.mix(static_cast<std::uint64_t>(m.op_index) << 8 |
            static_cast<std::uint64_t>(m.pc + 1));
      h.mix(m.t);
      h.mix(m.lv);
      h.mix(m.lver);
      h.mix(m.lv2_);
      h.mix(m.invoke);
      for (const verify::Operation& op : m.completed) {
        h.mix(op.invoke);
        h.mix(op.result + (op.ok ? 1 : 0) * 1000003 + op.arg * 7);
      }
    }
    return h.value();
  }

  /// Advances thread i by one atomic step.
  void step(std::size_t i) {
    Machine& m = machines_[i];
    EVQ_CHECK(!thread_done(i), "stepping a finished thread");
    const ModelOp& op = cfg_.programs[i][m.op_index];
    if (m.pc == kPcStart) {
      m.invoke = invoke_stamp();
      m.pc = 0;
    }
    if (op.is_push) {
      step_push(m, op.value);
    } else {
      step_pop(m);
    }
  }

 private:
  // Slot "null" encodings. 0 is plain empty (kLlsc / kPlainCas); the two
  // generation nulls use values that can never be pushed (pushed values
  // must be > kMaxNull).
  static constexpr std::uint64_t kNull0 = 1;
  static constexpr std::uint64_t kNull1 = 2;
  static std::uint64_t kNullOfGen(std::uint64_t gen) { return (gen & 1) == 0 ? kNull0 : kNull1; }

  [[nodiscard]] bool legal_value(std::uint64_t v) const {
    if (v == 0) {
      return false;  // 0 encodes plain empty (and "pop saw empty" in specs)
    }
    return cfg_.slot_protocol != SlotProtocol::kTwoNull || v > kNull1;
  }

  struct Slot {
    std::uint64_t value = 0;
    std::uint32_t version = 0;  // used by kLlsc only
  };

  static constexpr int kPcStart = -1;

  struct Machine {
    std::size_t op_index = 0;
    int pc = kPcStart;
    // locals (named after Fig. 3's)
    std::uint64_t t = 0;      // index snapshot (t or h)
    std::uint64_t lv = 0;     // linked slot value
    std::uint32_t lver = 0;   // linked slot version
    std::uint64_t lv2_ = 0;   // linked index value (the inner LL of E12/E16)
    std::uint64_t invoke = 0;
    verify::History completed;
  };

  [[nodiscard]] std::size_t index_of(std::uint64_t counter) const {
    return static_cast<std::size_t>(counter % cfg_.capacity);
  }
  [[nodiscard]] std::uint64_t bump(std::uint64_t counter) const {
    const std::uint64_t next = counter + 1;
    return cfg_.index_modulus == 0 ? next : next % cfg_.index_modulus;
  }
  /// Full check under possibly-wrapping counters. With monotone counters
  /// the comparison is SIGNED: a stale tail snapshot (Head already moved
  /// past it) reads as negative occupancy, not as full — the model checker
  /// caught an unsigned version of this check as a spurious-full
  /// linearizability violation (mirrored into the real queues; see
  /// llsc_array_queue.hpp). With a wrapping modulus the ambiguity is
  /// irreparable — that is Fig. 1's point — so the modular distance stays.
  [[nodiscard]] bool occupied_at_least(std::uint64_t head, std::uint64_t tail,
                                       std::uint64_t n) const {
    if (cfg_.index_modulus == 0) {
      return static_cast<std::int64_t>(tail - head) >= static_cast<std::int64_t>(n);
    }
    return (tail + cfg_.index_modulus - head) % cfg_.index_modulus >= n;
  }

  [[nodiscard]] bool slot_empty_for_push(const Slot& s, std::uint64_t t) const {
    switch (cfg_.slot_protocol) {
      case SlotProtocol::kTwoNull:
        // Empty iff it holds the null of the PREVIOUS generation.
        return s.value == kNullOfGen(t / cfg_.capacity - 1);
      default:
        return s.value == 0;
    }
  }
  [[nodiscard]] bool slot_empty_for_pop(const Slot& s) const {
    switch (cfg_.slot_protocol) {
      case SlotProtocol::kTwoNull:
        return s.value == kNull0 || s.value == kNull1;
      default:
        return s.value == 0;
    }
  }
  [[nodiscard]] std::uint64_t empty_marker_for_pop(std::uint64_t h) const {
    return cfg_.slot_protocol == SlotProtocol::kTwoNull ? kNullOfGen(h / cfg_.capacity) : 0;
  }

  void complete_push(Machine& m, std::uint64_t value, bool ok) {
    verify::Operation op;
    op.kind = verify::OpKind::kPush;
    op.arg = value;
    op.ok = ok;
    op.invoke = m.invoke;
    op.response = response_stamp();
    m.completed.push_back(op);
    ++m.op_index;
    m.pc = kPcStart;
  }
  void complete_pop(Machine& m, std::uint64_t result) {
    verify::Operation op;
    op.kind = verify::OpKind::kPop;
    op.result = result;
    op.invoke = m.invoke;
    op.response = response_stamp();
    m.completed.push_back(op);
    ++m.op_index;
    m.pc = kPcStart;
  }

  // Coarse timestamps: precedence between operations is fully determined by
  // "how many operations had completed when I started" vs "my completion
  // rank" — nothing finer matters to the linearizability checker, and the
  // coarseness lets the explorer's memoization collapse schedules that
  // differ only in when individual steps ran. Preloaded items occupy
  // [0, 2K); a real op invoking after c completions gets 2(c+K)+1, and the
  // c-th completion responds at 2(c+K).
  [[nodiscard]] std::uint64_t invoke_stamp() const {
    return 2 * (completed_ + cfg_.initial_items.size()) + 1;
  }
  [[nodiscard]] std::uint64_t response_stamp() {
    ++completed_;
    return 2 * (completed_ + cfg_.initial_items.size());
  }

  /// True iff a slot CAS with the machine's link succeeds (protocol-aware).
  bool slot_sc(Machine& m, Slot& s, std::uint64_t desired) {
    const bool match = cfg_.slot_protocol == SlotProtocol::kLlsc
                           ? (s.value == m.lv && s.version == m.lver)
                           : (s.value == m.lv);
    if (!match) {
      return false;
    }
    s.value = desired;
    ++s.version;
    return true;
  }

  // Fig. 3 Enqueue as one atomic step per shared access.
  //   pc 0: E5      read Tail
  //   pc 1: E6      read Head, full check
  //   pc 2: E9      LL slot
  //   pc 3: E10     re-read Tail (skipped when !index_recheck)
  //   pc 4: E12     LL Tail        (slot occupied: help)
  //   pc 5: E13     SC Tail
  //   pc 6: E15     SC slot (install)
  //   pc 7: E16     LL Tail
  //   pc 8: E17     SC Tail, return OK
  void step_push(Machine& m, std::uint64_t value) {
    const std::uint64_t push_value = value;
    switch (m.pc) {
      case 0:
        m.t = tail_;
        m.pc = 1;
        return;
      case 1:
        if (occupied_at_least(head_, m.t, cfg_.capacity)) {
          complete_push(m, push_value, false);  // FULL_QUEUE
          return;
        }
        m.pc = 2;
        return;
      case 2: {
        const Slot& s = slots_[index_of(m.t)];
        m.lv = s.value;
        m.lver = s.version;
        m.pc = cfg_.index_recheck ? 3 : (slot_empty_for_push(s, m.t) ? 6 : 4);
        return;
      }
      case 3:
        if (m.t != tail_) {
          m.pc = 0;  // stale index: restart
          return;
        }
        m.pc = slot_empty_for_push(Slot{m.lv, m.lver}, m.t) ? 6 : 4;
        return;
      case 4:
        m.lv2_ = tail_;  // LL(&Tail)
        m.pc = 5;
        return;
      case 5:
        if (m.lv2_ == m.t && tail_ == m.lv2_) {
          tail_ = bump(tail_);  // SC succeeds (counter unchanged since LL)
        }
        m.pc = 0;
        return;
      case 6: {
        Slot& s = slots_[index_of(m.t)];
        if (!slot_sc(m, s, push_value)) {
          m.pc = 0;
          return;
        }
        m.pc = 7;
        return;
      }
      case 7:
        m.lv2_ = tail_;
        m.pc = 8;
        return;
      case 8:
        if (m.lv2_ == m.t && tail_ == m.lv2_) {
          tail_ = bump(tail_);
        }
        complete_push(m, push_value, true);
        return;
      default:
        EVQ_CHECK(false, "bad push pc");
    }
  }

  // Fig. 3 Dequeue, mirrored.
  void step_pop(Machine& m) {
    switch (m.pc) {
      case 0:
        m.t = head_;
        m.pc = 1;
        return;
      case 1:
        if (m.t == tail_) {
          complete_pop(m, 0);  // empty
          return;
        }
        m.pc = 2;
        return;
      case 2: {
        const Slot& s = slots_[index_of(m.t)];
        m.lv = s.value;
        m.lver = s.version;
        m.pc = cfg_.index_recheck ? 3 : (slot_empty_for_pop(s) ? 4 : 6);
        return;
      }
      case 3:
        if (m.t != head_) {
          m.pc = 0;
          return;
        }
        m.pc = slot_empty_for_pop(Slot{m.lv, m.lver}) ? 4 : 6;
        return;
      case 4:
        m.lv2_ = head_;
        m.pc = 5;
        return;
      case 5:
        if (m.lv2_ == m.t && head_ == m.lv2_) {
          head_ = bump(head_);
        }
        m.pc = 0;
        return;
      case 6: {
        Slot& s = slots_[index_of(m.t)];
        if (!slot_sc(m, s, empty_marker_for_pop(m.t))) {
          m.pc = 0;
          return;
        }
        m.pc = 7;
        return;
      }
      case 7:
        m.lv2_ = head_;
        m.pc = 8;
        return;
      case 8:
        if (m.lv2_ == m.t && head_ == m.lv2_) {
          head_ = bump(head_);
        }
        complete_pop(m, m.lv);
        return;
      default:
        EVQ_CHECK(false, "bad pop pc");
    }
  }

  ArrayModelConfig cfg_;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
  std::vector<Slot> slots_;
  std::vector<Machine> machines_;
  std::uint64_t completed_ = 0;
};

}  // namespace evq::model
