// Exhaustive interleaving explorer for step-level queue models.
//
// The stress suites sample schedules; this module ENUMERATES them. Each
// algorithm is re-expressed as a step machine whose every shared-memory
// access is one atomic step (src/model/*_world.hpp); the explorer runs a
// depth-first search over all thread interleavings, and checks every
// completed execution's operation history for linearizability against the
// sequential bounded-FIFO spec (the Wing–Gong-style checker from
// src/verify). This is how the repository *mechanically* validates the
// paper's Sec. 3/Sec. 5 arguments: the real algorithms pass exhaustively on
// small configurations, while deliberately weakened variants (wrapping
// indices, plain-CAS slots, no reservation refcount) yield concrete
// counterexample schedules.
//
// A World type provides:
//   std::size_t thread_count() const;
//   bool thread_done(std::size_t i) const;     // program finished
//   bool thread_blocked(std::size_t i) const;  // optional: cannot step now
//   void step(std::size_t i);                  // one atomic step of thread i
//   bool all_done() const;
//   verify::History history() const;           // completed ops w/ intervals
//   std::size_t spec_capacity() const;         // for the FIFO model
//   std::uint64_t hash() const;                // full state incl. histories
//
// Worlds are value types; the DFS copies them at each branch (they are a
// few hundred bytes). Identical (state, history) pairs are memoized by
// 64-bit hash — a collision could in principle hide a schedule, which is
// acceptable for a bug-finding tool and is why the "correct algorithm"
// tests also report how many distinct states were visited.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "evq/verify/lin_check.hpp"

namespace evq::model {

struct ExploreLimits {
  std::uint64_t max_nodes = 4'000'000;  // DFS node budget
  std::uint32_t max_depth = 160;        // schedule length cap (loop cutoff)
};

struct ExploreResult {
  bool violation_found = false;
  std::vector<std::uint8_t> counterexample;  // schedule (thread ids)
  verify::History violating_history;

  std::uint64_t nodes = 0;
  std::uint64_t complete_schedules = 0;
  std::uint64_t truncated_schedules = 0;  // hit max_depth (retry loops)
  bool budget_exhausted = false;          // hit max_nodes before finishing
};

template <typename World>
class Explorer {
 public:
  explicit Explorer(ExploreLimits limits = {}) : limits_(limits) {}

  ExploreResult explore(const World& initial) {
    result_ = ExploreResult{};
    visited_.clear();
    schedule_.clear();
    dfs(initial);
    return result_;
  }

 private:
  /// Returns true to abort the search (violation found or budget gone).
  bool dfs(const World& world) {
    if (result_.nodes >= limits_.max_nodes) {
      result_.budget_exhausted = true;
      return true;
    }
    ++result_.nodes;
    if (world.all_done()) {
      ++result_.complete_schedules;
      verify::LinearizabilityChecker checker(world.spec_capacity());
      if (!checker.check(world.history())) {
        result_.violation_found = true;
        result_.counterexample = schedule_;
        result_.violating_history = world.history();
        return true;
      }
      return false;
    }
    if (schedule_.size() >= limits_.max_depth) {
      ++result_.truncated_schedules;
      return false;
    }
    if (!visited_.insert(world.hash()).second) {
      return false;  // (state, history) already explored
    }
    for (std::size_t i = 0; i < world.thread_count(); ++i) {
      if (world.thread_done(i) || world.thread_blocked(i)) {
        continue;
      }
      World next = world;
      next.step(i);
      schedule_.push_back(static_cast<std::uint8_t>(i));
      const bool abort = dfs(next);
      if (abort) {
        return true;
      }
      schedule_.pop_back();
    }
    return false;
  }

  ExploreLimits limits_;
  ExploreResult result_;
  std::unordered_set<std::uint64_t> visited_;
  std::vector<std::uint8_t> schedule_;
};

/// FNV-1a helper shared by the world types.
class StateHasher {
 public:
  void mix(std::uint64_t x) noexcept {
    h_ ^= x;
    h_ *= 0x100000001b3ull;
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// One queue operation in a thread's scripted program.
struct ModelOp {
  bool is_push = true;
  std::uint64_t value = 0;  // pushed value; pops ignore it. 0 is reserved.
};

inline ModelOp push_op(std::uint64_t v) { return {true, v}; }
inline ModelOp pop_op() { return {false, 0}; }

}  // namespace evq::model
