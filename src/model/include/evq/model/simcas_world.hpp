// Step-level model of Algorithm 2 (Fig. 5): the CAS-only circular array
// queue with simulated LL/SC via LSB-tagged thread-owned variables.
//
// Shared state: monotone Head/Tail counters, slot words that hold either a
// value or a reservation tag {thread, var}, and per-thread pools of LLSCvar
// models {node, r}. Every shared access — including the FetchAndAdds on a
// foreign variable's refcount and the write of one's own var->node — is one
// schedulable step, so the explorer can reproduce the Sec. 5 ABA scenario
// ("B can read the owned variable of A and be preempted ... A may then
// reinsert its owned variable into the same array slot") at will.
//
// The `use_refcount` switch removes the paper's cure: reader FetchAndAdds
// are skipped and ReRegister always keeps the current variable. The model
// tests show the full protocol passes exhaustive exploration while the
// weakened one yields a concrete non-linearizable schedule.
#pragma once

#include <cstdint>
#include <vector>
#ifdef EVQ_MODEL_TRACE
#include <cstdio>
#endif

#include "evq/common/config.hpp"
#include "evq/model/explorer.hpp"
#include "evq/verify/history.hpp"

namespace evq::model {

struct SimCasModelConfig {
  std::size_t capacity = 2;
  bool use_refcount = true;           // Fig. 5's L7/L14 + ReRegister swap
  /// Re-read the cell after the L7 FAA and require the same tag before
  /// reading the owner's node ("L7b" in sim_llsc_cell.hpp). `false` models
  /// the paper's published pseudocode EXACTLY — which this repository's
  /// model checking shows to be racy (see DESIGN.md errata): the L5->L7
  /// window lets a stale reader adopt a node value from the owner's next
  /// reservation and still win its L12 CAS.
  bool validate_after_faa = true;
  std::size_t vars_per_thread = 4;    // private LLSCvar pool (model registry)
  std::vector<std::uint64_t> initial_items;
  std::vector<std::vector<ModelOp>> programs;
};

class SimCasQueueWorld {
 public:
  explicit SimCasQueueWorld(SimCasModelConfig config) : cfg_(std::move(config)) {
    EVQ_CHECK(!cfg_.programs.empty(), "need at least one thread program");
    EVQ_CHECK(cfg_.initial_items.size() <= cfg_.capacity, "too many initial items");
    slots_.assign(cfg_.capacity, Word{});
    for (std::uint64_t item : cfg_.initial_items) {
      EVQ_CHECK(item != 0, "0 is the empty encoding");
      slots_[static_cast<std::size_t>(tail_ % cfg_.capacity)] = Word::value_word(item);
      ++tail_;
    }
    machines_.resize(cfg_.programs.size());
    vars_.assign(cfg_.programs.size(),
                 std::vector<Var>(cfg_.vars_per_thread));
    for (auto& pool : vars_) {
      pool[0].r = 1;  // every thread starts registered on var 0
    }
  }

  [[nodiscard]] std::size_t thread_count() const { return machines_.size(); }
  [[nodiscard]] bool thread_done(std::size_t i) const {
    return machines_[i].op_index >= cfg_.programs[i].size();
  }
  [[nodiscard]] bool thread_blocked(std::size_t) const { return false; }
  [[nodiscard]] bool all_done() const {
    for (std::size_t i = 0; i < machines_.size(); ++i) {
      if (!thread_done(i)) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] std::size_t spec_capacity() const { return cfg_.capacity; }

  [[nodiscard]] verify::History history() const {
    verify::History all;
    for (const Machine& m : machines_) {
      all.insert(all.end(), m.completed.begin(), m.completed.end());
    }
    // Preloaded item i gets stamps [2i, 2i+1] — mutually ordered and
    // strictly before every real operation (see invoke_stamp below).
    std::uint64_t i = 0;
    for (std::uint64_t item : cfg_.initial_items) {
      verify::Operation op;
      op.kind = verify::OpKind::kPush;
      op.arg = item;
      op.ok = true;
      op.invoke = 2 * i;
      op.response = 2 * i + 1;
      all.push_back(op);
      ++i;
    }
    return all;
  }

  [[nodiscard]] std::uint64_t hash() const {
    StateHasher h;
    h.mix(head_);
    h.mix(tail_);
    for (const Word& w : slots_) {
      h.mix(w.is_tag ? (0x8000000000000000ull | (std::uint64_t{w.owner} << 8) | w.var)
                     : w.value);
    }
    for (const auto& pool : vars_) {
      for (const Var& v : pool) {
        h.mix(v.node);
        h.mix(v.r);
      }
    }
    for (const Machine& m : machines_) {
      h.mix(static_cast<std::uint64_t>(m.op_index) << 8 |
            static_cast<std::uint64_t>(m.pc + 1));
      h.mix(m.t);
      h.mix(m.w_is_tag ? 1u : 0u);
      h.mix(m.w_value);
      h.mix((std::uint64_t{m.w_owner} << 8) | m.w_var);
      h.mix(m.observed);
      h.mix(m.cur_var);
      h.mix(m.cas_ok ? 1u : 0u);
      h.mix(m.invoke);
      for (const verify::Operation& op : m.completed) {
        h.mix(op.invoke);
        h.mix(op.result + (op.ok ? 1 : 0) * 1000003 + op.arg * 7);
      }
    }
    return h.value();
  }

  void step(std::size_t i) {
    Machine& m = machines_[i];
    EVQ_CHECK(!thread_done(i), "stepping a finished thread");
    const ModelOp& op = cfg_.programs[i][m.op_index];
    if (m.pc == kPcStart) {
      m.invoke = invoke_stamp();
      m.pc = kPcReregister;
    }
#ifdef EVQ_MODEL_TRACE
    std::printf("done%3llu T%zu op%zu(%s%llu) pc%-3d | h=%llu t=%llu slots=[",
                static_cast<unsigned long long>(completed_), i, m.op_index,
                op.is_push ? "push " : "pop", static_cast<unsigned long long>(op.value),
                m.pc, static_cast<unsigned long long>(head_),
                static_cast<unsigned long long>(tail_));
    for (const Word& w : slots_) {
      if (w.is_tag) {
        std::printf(" T%u.v%u", w.owner, w.var);
      } else {
        std::printf(" %llu", static_cast<unsigned long long>(w.value));
      }
    }
    std::printf(" ] vars:");
    for (std::size_t th = 0; th < vars_.size(); ++th) {
      for (std::size_t v = 0; v < vars_[th].size(); ++v) {
        if (vars_[th][v].r != 0 || vars_[th][v].node != 0) {
          std::printf(" T%zu.v%zu{n=%llu,r=%u}", th, v,
                      static_cast<unsigned long long>(vars_[th][v].node), vars_[th][v].r);
        }
      }
    }
    std::printf("\n");
#endif
    step_op(i, m, op);
  }

 private:
  /// A slot word: a value (0 = empty) or an LSB-tagged reservation marker.
  struct Word {
    bool is_tag = false;
    std::uint64_t value = 0;  // when !is_tag
    std::uint8_t owner = 0;   // when is_tag: thread id
    std::uint8_t var = 0;     // when is_tag: index in owner's var pool

    static Word value_word(std::uint64_t v) { return Word{false, v, 0, 0}; }
    static Word tag_word(std::size_t owner, std::size_t var) {
      return Word{true, 0, static_cast<std::uint8_t>(owner), static_cast<std::uint8_t>(var)};
    }
    friend bool operator==(const Word& a, const Word& b) {
      return a.is_tag == b.is_tag &&
             (a.is_tag ? (a.owner == b.owner && a.var == b.var) : a.value == b.value);
    }
  };

  /// Model of Fig. 5's LLSCvar.
  struct Var {
    std::uint64_t node = 0;
    std::uint32_t r = 0;
  };

  static constexpr int kPcStart = -1;
  static constexpr int kPcReregister = -2;

  struct Machine {
    std::size_t op_index = 0;
    int pc = kPcStart;
    std::uint64_t t = 0;         // index snapshot
    bool w_is_tag = false;       // the word read at L5
    std::uint64_t w_value = 0;
    std::uint8_t w_owner = 0;
    std::uint8_t w_var = 0;
    std::uint64_t observed = 0;  // logical value the LL returned
    std::uint8_t cur_var = 0;    // index of the registered var in the pool
    bool cas_ok = false;
    std::uint64_t invoke = 0;
    verify::History completed;
  };

  Word loaded_word(const Machine& m) const {
    Word w;
    w.is_tag = m.w_is_tag;
    w.value = m.w_value;
    w.owner = m.w_owner;
    w.var = m.w_var;
    return w;
  }

  void complete(Machine& m, const ModelOp& op, bool push_ok, std::uint64_t pop_result) {
    verify::Operation rec;
    rec.kind = op.is_push ? verify::OpKind::kPush : verify::OpKind::kPop;
    rec.arg = op.is_push ? op.value : 0;
    rec.ok = push_ok;
    rec.result = pop_result;
    rec.invoke = m.invoke;
    rec.response = response_stamp();
    m.completed.push_back(rec);
    ++m.op_index;
    m.pc = kPcStart;
  }

  // Coarse completion-rank timestamps — see array_world.hpp's invoke_stamp.
  [[nodiscard]] std::uint64_t invoke_stamp() const {
    return 2 * (completed_ + cfg_.initial_items.size()) + 1;
  }
  [[nodiscard]] std::uint64_t response_stamp() {
    ++completed_;
    return 2 * (completed_ + cfg_.initial_items.size());
  }

  Word& slot_at(std::uint64_t counter) {
    return slots_[static_cast<std::size_t>(counter % cfg_.capacity)];
  }

  // Program counters (shared by push and pop; the branch differs at kSlotSc):
  //   kPcReregister  read own r; swap variable if readers present (one step,
  //                  modelling RR2–RR4 + Register's claim)
  //   0  read Tail (push) / Head (pop)
  //   1  read the other index; full/empty check
  //   2  L5: read the slot word
  //   3  L7: FAA(+1) on the foreign var        (skipped if w not a tag)
  //   4  L8: read foreign var.node
  //   5  L8/L11: write own var.node
  //   6  L12: CAS(slot, w, tag(me))
  //   7  L14: FAA(-1) on the foreign var       (skipped if w not a tag)
  //   8  local: retry LL loop if the install CAS failed
  //   9  re-read the index ("if (t == Tail)")
  //  10  release (index moved): CAS(slot, tag, observed); back to 0
  //  11  occupied/empty mismatch path: release, then
  //  12  help: CAS(index, t, t+1); back to 0
  //  13  the SC: CAS(slot, tag, value-or-0); fail -> 0
  //  14  CAS(index, t, t+1); complete
  void step_op(std::size_t self, Machine& m, const ModelOp& op) {
    auto& my_pool = vars_[self];
    switch (m.pc) {
      case kPcReregister: {
        Var& var = my_pool[m.cur_var];
        if (cfg_.use_refcount && var.r > 1) {
          var.r -= 1;  // abandon: readers still hold references
          EVQ_CHECK(m.cur_var + 1u < my_pool.size(), "model var pool exhausted");
          m.cur_var += 1;  // Register: claim a fresh variable
          my_pool[m.cur_var].r = 1;
        }
        m.pc = 0;
        return;
      }
      case 0:
        m.t = op.is_push ? tail_ : head_;
        m.pc = 1;
        return;
      case 1:
        if (op.is_push) {
          // Signed occupancy — see array_world.hpp's occupied_at_least.
          if (static_cast<std::int64_t>(m.t - head_) >=
              static_cast<std::int64_t>(cfg_.capacity)) {
            complete(m, op, false, 0);
            return;
          }
        } else {
          if (m.t == tail_) {
            complete(m, op, true, 0);  // pop -> empty
            return;
          }
        }
        m.pc = 2;
        return;
      case 2: {
        const Word& w = slot_at(m.t);
        m.w_is_tag = w.is_tag;
        m.w_value = w.value;
        m.w_owner = w.owner;
        m.w_var = w.var;
        m.pc = (w.is_tag && cfg_.use_refcount) ? 3 : (w.is_tag ? 4 : 5);
        return;
      }
      case 3:
        vars_[m.w_owner][m.w_var].r += 1;  // L7
        m.pc = cfg_.validate_after_faa ? 15 : 4;
        return;
      case 15:  // L7b: the tag must still be in place now that r >= 2 holds
        if (slot_at(m.t) == loaded_word(m)) {
          m.pc = 4;
        } else {
          m.pc = 16;  // lost it while unprotected: undo and re-read
        }
        return;
      case 16:
        vars_[m.w_owner][m.w_var].r -= 1;
        m.pc = 2;
        return;
      case 4:
        m.observed = vars_[m.w_owner][m.w_var].node;  // L8
        m.pc = 5;
        return;
      case 5:
        if (!m.w_is_tag) {
          m.observed = m.w_value;  // L11
        }
        my_pool[m.cur_var].node = m.observed;  // shared write of var->node
        m.pc = 6;
        return;
      case 6: {
        Word& slot = slot_at(m.t);
        m.cas_ok = (slot == loaded_word(m));
        if (m.cas_ok) {
          slot = Word::tag_word(self, m.cur_var);  // L12
        }
        m.pc = (m.w_is_tag && cfg_.use_refcount) ? 7 : 8;
        return;
      }
      case 7:
        vars_[m.w_owner][m.w_var].r -= 1;  // L14
        m.pc = 8;
        return;
      case 8:
        m.pc = m.cas_ok ? 9 : 2;  // retry the LL read loop on failure
        return;
      case 9: {
        const std::uint64_t now = op.is_push ? tail_ : head_;
        if (m.t != now) {
          m.pc = 10;
          return;
        }
        const bool mismatch = op.is_push ? (m.observed != 0) : (m.observed == 0);
        m.pc = mismatch ? 11 : 13;
        return;
      }
      case 10: {  // index moved: undo the reservation, restart
        Word& slot = slot_at(m.t);
        if (slot == Word::tag_word(self, m.cur_var)) {
          slot = Word::value_word(m.observed);
        }
        m.pc = 0;
        return;
      }
      case 11: {  // occupied (push) / already emptied (pop): undo, then help
        Word& slot = slot_at(m.t);
        if (slot == Word::tag_word(self, m.cur_var)) {
          slot = Word::value_word(m.observed);
        }
        m.pc = 12;
        return;
      }
      case 12: {  // help the lagging index
        std::uint64_t& index = op.is_push ? tail_ : head_;
        if (index == m.t) {
          index += 1;
        }
        m.pc = 0;
        return;
      }
      case 13: {  // the SC
        Word& slot = slot_at(m.t);
        if (!(slot == Word::tag_word(self, m.cur_var))) {
          m.pc = 0;  // reservation stolen
          return;
        }
        slot = Word::value_word(op.is_push ? op.value : 0);
        m.pc = 14;
        return;
      }
      case 14: {
        std::uint64_t& index = op.is_push ? tail_ : head_;
        if (index == m.t) {
          index += 1;
        }
        if (op.is_push) {
          complete(m, op, true, 0);
        } else {
          complete(m, op, true, m.observed);
        }
        return;
      }
      default:
        EVQ_CHECK(false, "bad simcas pc");
    }
  }

  SimCasModelConfig cfg_;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
  std::vector<Word> slots_;
  std::vector<std::vector<Var>> vars_;
  std::vector<Machine> machines_;
  std::uint64_t completed_ = 0;
};

}  // namespace evq::model
