// Value-semantics adapter over the pointer queues.
//
// The paper's queues transport node pointers (an array slot is a pointer or
// null). Applications usually want `push(T)` / `pop() -> optional<T>`;
// ValueQueue provides that by boxing values in pool-recycled ValueNodes. The
// adapter adds exactly one pointer indirection and one pool push/pop per
// operation — the same "node allocation precedes each enqueue" pattern the
// paper's benchmark workload uses.
//
// Usage: ValueQueue<int, CasArrayQueue> q(capacity);
// The underlying queue template is instantiated over ValueNode<T>.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "evq/core/queue_traits.hpp"
#include "evq/reclaim/free_pool.hpp"

namespace evq {

/// Boxed value for ValueQueue; satisfies the pool-node and alignment
/// requirements of every queue in the library.
template <typename T>
struct alignas(8) ValueNode {
  ValueNode() = default;
  explicit ValueNode(T v) : value(std::move(v)) {}
  T value{};
  ValueNode* free_next = nullptr;
};

template <typename T, template <typename> class QueueT>
class ValueQueue {
 public:
  using Node = ValueNode<T>;
  using Queue = QueueT<Node>;
  static_assert(ConcurrentPtrQueue<Queue>);

  /// Per-thread handle wrapping the underlying queue's handle.
  class Handle {
   public:
    explicit Handle(typename Queue::Handle inner) : inner_(std::move(inner)) {}

   private:
    friend class ValueQueue;
    typename Queue::Handle inner_;
  };

  /// Constructs the underlying queue by forwarding `args` (e.g. capacity).
  template <typename... Args>
  explicit ValueQueue(Args&&... args) : queue_(std::forward<Args>(args)...) {}

  ValueQueue(const ValueQueue&) = delete;
  ValueQueue& operator=(const ValueQueue&) = delete;

  /// Drains boxed values left in the queue back to the pool (quiescent).
  ~ValueQueue() {
    auto h = handle();
    while (auto v = try_pop(h)) {
    }
  }

  [[nodiscard]] Handle handle() { return Handle{queue_.handle()}; }

  /// Enqueues a copy of `value`; false when the queue is full. The argument
  /// is untouched on failure.
  bool try_push(Handle& h, const T& value) {
    Node* node = box(value);
    if (queue_.try_push(h.inner_, node)) {
      return true;
    }
    pool_.put(node);
    return false;
  }

  /// Enqueues a moved-from `value`; false when the queue is full. On failure
  /// the value is moved BACK into the argument, so the caller still owns it
  /// and can retry — a full queue must not destroy the caller's data.
  bool try_push(Handle& h, T&& value) {
    Node* node = box(std::move(value));
    if (queue_.try_push(h.inner_, node)) {
      return true;
    }
    value = std::move(node->value);
    pool_.put(node);
    return false;
  }

  /// Dequeues the oldest value; nullopt when the queue is empty.
  std::optional<T> try_pop(Handle& h) {
    Node* node = queue_.try_pop(h.inner_);
    if (node == nullptr) {
      return std::nullopt;
    }
    std::optional<T> out{std::move(node->value)};
    pool_.put(node);
    return out;
  }

  /// Batch enqueue: copies a maximal prefix of `values[0..count)` and returns
  /// how many landed (maximal-prefix semantics, matching the pointer queues'
  /// try_push_n). Forwards to the underlying queue's native batch op when it
  /// has one (the ring engine's index-reuse amortization, or the combining
  /// facade's announce batching); otherwise loops. Nodes boxed beyond the
  /// landed prefix are unboxed back into the pool, so a short push leaks
  /// nothing.
  std::size_t try_push_n(Handle& h, const T* values, std::size_t count) {
    std::vector<Node*> boxed;  // local: batch ops run concurrently
    boxed.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      boxed.push_back(box(values[i]));
    }
    std::size_t done = 0;
    if constexpr (BatchPtrQueue<Queue>) {
      done = queue_.try_push_n(h.inner_, boxed.data(), count);
    } else {
      while (done < count && queue_.try_push(h.inner_, boxed[done])) {
        ++done;
      }
    }
    for (std::size_t i = done; i < count; ++i) {
      pool_.put(boxed[i]);
    }
    return done;
  }

  /// Batch dequeue: pops up to `count` oldest values into `out[0..)` and
  /// returns how many were transferred.
  std::size_t try_pop_n(Handle& h, T* out, std::size_t count) {
    std::vector<Node*> boxed(count, nullptr);  // local: batch ops run concurrently
    std::size_t got = 0;
    if constexpr (BatchPtrQueue<Queue>) {
      got = queue_.try_pop_n(h.inner_, boxed.data(), count);
    } else {
      while (got < count) {
        Node* node = queue_.try_pop(h.inner_);
        if (node == nullptr) {
          break;
        }
        boxed[got++] = node;
      }
    }
    for (std::size_t i = 0; i < got; ++i) {
      out[i] = std::move(boxed[i]->value);
      pool_.put(boxed[i]);
    }
    return got;
  }

  [[nodiscard]] Queue& underlying() noexcept { return queue_; }

 private:
  /// Boxes a value into a pool-recycled node.
  template <typename U>
  Node* box(U&& value) {
    Node* node = pool_.take();
    if (node != nullptr) {
      node->value = std::forward<U>(value);  // reinitialize a recycled node
    } else {
      node = pool_.make(std::forward<U>(value));
    }
    return node;
  }

  Queue queue_;
  reclaim::FreePool<Node> pool_;
};

}  // namespace evq
