// Sharded composition layer: N independent rings behind one queue facade.
//
// The paper's array queues serialize every operation through two shared
// counters; past a handful of cores the counters' cache lines are the
// bottleneck no matter how cheap the per-slot protocol is (the flat segment
// of Fig. 6 past the knee). ShardedQueue trades strict global FIFO for
// scalability the way SCQ/wCQ-era designs partition load: it stripes
// operations across `shards` inner queues, giving each handle an affinity
// shard (round-robin at handle creation) so steady-state traffic from
// different threads lands on different counters.
//
//   * push: try the affinity shard; when it reports full, overflow into the
//     next shards in ring order (so a push fails only when EVERY shard is
//     full at its probe — total capacity, not shard capacity, is the bound).
//   * pop: try the affinity shard; when it reports empty, steal from the
//     next shards in ring order (a pop fails only when every shard probe
//     reported empty).
//
// Ordering contract: per-handle sequential FIFO is preserved (a single
// thread's fill-then-drain scans shards in the same order on both sides),
// but cross-thread per-producer FIFO is NOT — two items pushed by one
// producer into different shards can be popped in either order. Registry
// entries therefore carry `fifo = false` and the checkers skip the
// per-producer order assertion; conservation and lock-freedom are unchanged
// (each shard is the unmodified paper algorithm).
//
// Batch operations forward natively when the inner queue is a BatchPtrQueue
// (the ring engine), draining/filling one shard before moving to the next.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "evq/common/config.hpp"
#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/telemetry/registry.hpp"

namespace evq {

template <ConcurrentPtrQueue Q>
class ShardedQueue {
 public:
  using value_type = typename Q::value_type;
  using pointer = typename Q::pointer;
  using T = value_type;

  /// One inner handle per shard plus the affinity start index. Movable, not
  /// copyable (inner handles may hold registrations).
  class Handle {
   public:
    Handle(Handle&&) = default;
    Handle& operator=(Handle&&) = default;

   private:
    friend class ShardedQueue;
    Handle(std::vector<typename Q::Handle> inner, std::size_t start)
        : inner_(std::move(inner)), start_(start) {}

    std::vector<typename Q::Handle> inner_;
    std::size_t start_;
  };

  /// `min_total_capacity` is split evenly across `shards` rings. The shard
  /// count is clamped so every shard holds at least 2 slots (the ring
  /// minimum) WITHOUT inflating the total: a capacity-4 request with 4
  /// shards yields 2 shards of 2, not 4 shards of 2 — so for power-of-two
  /// shard counts capacity() stays exactly what a single ring of the same
  /// request would report.
  /// `name` is the facade's telemetry name; shards that accept a name (the
  /// ring engine family) register individually as "<name>/<shard index>", so
  /// the exporter can show both the facade aggregate and the per-shard depth
  /// split the ISSUE's "which shard is hot?" question needs.
  explicit ShardedQueue(std::size_t min_total_capacity, std::size_t shards = 4,
                        std::string_view name = "sharded")
      : shard_count_(std::clamp<std::size_t>(shards, 1, std::max<std::size_t>(
                                                            1, min_total_capacity / 2))),
        telemetry_(name) {
    const std::size_t per_shard =
        (min_total_capacity + shard_count_ - 1) / shard_count_;
    const std::size_t shard_capacity = per_shard < 2 ? 2 : per_shard;
    shards_.reserve(shard_count_);
    for (std::size_t s = 0; s < shard_count_; ++s) {
      if constexpr (std::is_constructible_v<Q, std::size_t, std::string_view>) {
        shards_.push_back(
            std::make_unique<Q>(shard_capacity, std::string(name) + "/" + std::to_string(s)));
      } else {
        shards_.push_back(std::make_unique<Q>(shard_capacity));
      }
    }
    telemetry_.set_depth_gauge(
        [this] { return static_cast<std::uint64_t>(size_estimate()); });
  }

  ShardedQueue(const ShardedQueue&) = delete;
  ShardedQueue& operator=(const ShardedQueue&) = delete;

  [[nodiscard]] Handle handle() {
    std::vector<typename Q::Handle> inner;
    inner.reserve(shard_count_);
    for (auto& shard : shards_) {
      inner.push_back(shard->handle());
    }
    const std::size_t start =
        next_affinity_.fetch_add(1, std::memory_order_relaxed) % shard_count_;
    return Handle{std::move(inner), start};
  }

  /// False only when every shard reported full during the scan.
  bool try_push(Handle& h, T* node) noexcept {
    for (std::size_t i = 0; i < shard_count_; ++i) {
      const std::size_t s = shard_of(h, i);
      if (shards_[s]->try_push(h.inner_[s], node)) {
        telemetry_.inc(telemetry::Counter::kPushOk);
        return true;
      }
    }
    telemetry_.inc(telemetry::Counter::kPushFull);
    return false;
  }

  /// nullptr only when every shard reported empty during the scan.
  T* try_pop(Handle& h) noexcept {
    for (std::size_t i = 0; i < shard_count_; ++i) {
      const std::size_t s = shard_of(h, i);
      if (T* node = shards_[s]->try_pop(h.inner_[s])) {
        telemetry_.inc(telemetry::Counter::kPopOk);
        return node;
      }
    }
    telemetry_.inc(telemetry::Counter::kPopEmpty);
    return nullptr;
  }

  std::size_t try_push_n(Handle& h, T* const* nodes, std::size_t count) noexcept {
    std::size_t done = 0;
    for (std::size_t i = 0; i < shard_count_ && done < count; ++i) {
      const std::size_t s = shard_of(h, i);
      if constexpr (BatchPtrQueue<Q>) {
        done += shards_[s]->try_push_n(h.inner_[s], nodes + done, count - done);
      } else {
        while (done < count && shards_[s]->try_push(h.inner_[s], nodes[done])) {
          ++done;
        }
      }
    }
    telemetry_.inc(telemetry::Counter::kPushOk, done);
    if (done < count) {
      telemetry_.inc(telemetry::Counter::kPushFull);
    }
    return done;
  }

  std::size_t try_pop_n(Handle& h, T** out, std::size_t count) noexcept {
    std::size_t done = 0;
    for (std::size_t i = 0; i < shard_count_ && done < count; ++i) {
      const std::size_t s = shard_of(h, i);
      if constexpr (BatchPtrQueue<Q>) {
        done += shards_[s]->try_pop_n(h.inner_[s], out + done, count - done);
      } else {
        while (done < count) {
          T* node = shards_[s]->try_pop(h.inner_[s]);
          if (node == nullptr) {
            break;
          }
          out[done++] = node;
        }
      }
    }
    telemetry_.inc(telemetry::Counter::kPopOk, done);
    if (done < count) {
      telemetry_.inc(telemetry::Counter::kPopEmpty);
    }
    return done;
  }

  /// Sum of the shard capacities (the real bound on population). Gated on
  /// bounded inner queues: sharding an unbounded queue (the segmented
  /// family) yields an unbounded queue, which must not grow a capacity()
  /// through this facade.
  [[nodiscard]] std::size_t capacity() const noexcept
    requires BoundedPtrQueue<Q>
  {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->capacity();
    }
    return total;
  }

  [[nodiscard]] std::size_t size_estimate() noexcept {
    std::size_t total = 0;
    for (auto& shard : shards_) {
      total += shard->size_estimate();
    }
    return total;
  }

  [[nodiscard]] std::size_t shard_count() const noexcept { return shard_count_; }

  /// Direct shard access for tests and diagnostics.
  [[nodiscard]] Q& shard(std::size_t s) noexcept { return *shards_[s]; }

  /// Facade-level telemetry (each shard additionally has its own entry).
  [[nodiscard]] telemetry::QueueMetrics& metrics() noexcept { return telemetry_.metrics(); }

 private:
  /// The i-th shard a handle probes: affinity first, then ring order.
  [[nodiscard]] std::size_t shard_of(const Handle& h, std::size_t i) const noexcept {
    const std::size_t s = h.start_ + i;
    return s >= shard_count_ ? s - shard_count_ : s;
  }

  std::size_t shard_count_;
  std::vector<std::unique_ptr<Q>> shards_;
  std::atomic<std::size_t> next_affinity_{0};
  // LAST member: destroyed first, clearing the depth gauge (which walks
  // shards_ through `this`) while the shards still exist.
  telemetry::ScopedQueueMetrics telemetry_;
};

static_assert(BoundedPtrQueue<ShardedQueue<CasArrayQueue<int>>>);
static_assert(BatchPtrQueue<ShardedQueue<CasArrayQueue<int>>>);

/// Single-template-parameter aliases so the sharded layer composes with
/// ValueQueue (which takes a template<typename> class).
template <typename T>
using ShardedCasQueue = ShardedQueue<CasArrayQueue<T>>;
template <typename T>
using ShardedLlscQueue = ShardedQueue<LlscArrayQueue<T, llsc::PackedLlsc>>;

}  // namespace evq
