// Algorithm 1 of the paper (Fig. 3): the LL/SC-based non-blocking circular
// array FIFO queue — expressed as a SlotPolicy over the shared ring engine
// (core/ring_engine.hpp), which owns the skeleton the E/D line comments
// refer to.
//
// State:
//   * slots_[0 .. capacity-1], each an LL/SC cell holding a node pointer or
//     nullptr (empty). capacity is a power of two.
//   * head_/tail_ — monotonically increasing 64-bit counters; slot index is
//     counter mod capacity. Queue empty when head == tail, full when
//     tail == head + capacity. Both are LL/SC CounterCells advanced via
//     LlscIndexPolicy (E12-E13/E16-E17).
//
// Why it is ABA-free (Sec. 3 of the paper):
//   * index-ABA: the counters occupy a full word and only increment, so a
//     CAS on them can only succeed wrongly after a 2^64 wrap.
//   * data-ABA / null-ABA: a slot is only written through SC, which fails if
//     the slot changed since the matching LL — a preempted thread cannot act
//     on a stale read of slot contents, however long it slept and however
//     many times the indices lapped the array.
//
// Helping: an enqueuer that finds its reserved slot already occupied knows a
// concurrent enqueuer filled it but was preempted before advancing Tail; it
// advances Tail on that thread's behalf (lines E11–E13), and symmetrically
// for dequeue and Head. This is what makes the queue lock-free: a stalled
// thread leaves at most one lagging index, which any other thread repairs.
// In engine terms: classify() maps nullptr to kEmptyFresh and anything else
// to kOccupied, and the engine's kOccupied arm is the help path.
//
// The SlotCell template parameter selects the LL/SC emulation policy
// (VersionedLlsc = reference semantics, PackedLlsc = single-word,
// WeakLlsc<...> = spurious-failure injection); see evq/llsc/llsc.hpp.
// ContentionPolicy defaults to NoBackoff — the paper's loops retry
// immediately; ExpBackoff is the opt-in bounded spin-then-yield.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "evq/common/backoff.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/core/ring_engine.hpp"
#include "evq/llsc/llsc.hpp"
#include "evq/llsc/versioned_llsc.hpp"

namespace evq {

/// Fig. 3's slot behaviour for the ring engine: a slot is an LL/SC cell over
/// T*, nullptr denotes empty, reservations are stack-local Links (nothing to
/// abandon on retry — an unmatched LL has no footprint, which is exactly what
/// makes Algorithm 1 population-oblivious).
template <typename T, template <typename> class SlotCellT>
class LlscSlotPolicy {
 public:
  using SlotCell = SlotCellT<T*>;
  static_assert(llsc::LlscCell<SlotCell>);

  using Slot = SlotCell;
  /// No per-thread state: LL/SC reservations are carried in stack-local
  /// Links, which is exactly what makes Algorithm 1 population-oblivious
  /// with space depending only on the queue length.
  using Handle = TrivialHandle;
  struct OpCtx {};
  using Reservation = typename SlotCell::Link;

  static constexpr const char* kPushEnter = "core.llsc.push.enter";
  static constexpr const char* kPushReserved = "core.llsc.push.reserved";
  static constexpr const char* kPushCommitted = "core.llsc.push.committed";
  static constexpr const char* kPopEnter = "core.llsc.pop.enter";
  static constexpr const char* kPopReserved = "core.llsc.pop.reserved";
  static constexpr const char* kPopCommitted = "core.llsc.pop.committed";

  void attach(std::size_t) noexcept {}
  void init_slot(Slot&, std::uint64_t) noexcept {}  // default-constructed cell == nullptr == empty
  [[nodiscard]] Handle make_handle() noexcept { return {}; }
  OpCtx begin_op(Handle&) noexcept { return {}; }

  Reservation reserve(Slot& slot, OpCtx&) noexcept { return slot.ll(); }  // E9/D9

  SlotClass classify(const Reservation& res, std::uint64_t) noexcept {    // E11/D11
    return res.value() == nullptr ? SlotClass::kEmptyFresh : SlotClass::kOccupied;
  }

  bool commit_push(Slot& slot, Reservation& res, T* node, std::uint64_t, OpCtx&) noexcept {
    return slot.sc(res, node);                                            // E15
  }

  bool commit_pop(Slot& slot, Reservation& res, std::uint64_t, OpCtx&) noexcept {
    return slot.sc(res, nullptr);                                         // D15
  }

  T* value_of(const Reservation& res) noexcept { return res.value(); }    // D18

  void abandon(Slot&, Reservation&, OpCtx&) noexcept {}  // an LL leaves no trace
};

template <typename T, template <typename> class SlotCellT = llsc::VersionedLlsc,
          typename ContentionPolicy = NoBackoff>
class LlscArrayQueue
    : public BoundedRing<T, LlscSlotPolicy<T, SlotCellT>, LlscIndexPolicy, ContentionPolicy> {
  using Base = BoundedRing<T, LlscSlotPolicy<T, SlotCellT>, LlscIndexPolicy, ContentionPolicy>;

 public:
  using SlotCell = typename LlscSlotPolicy<T, SlotCellT>::SlotCell;

  explicit LlscArrayQueue(std::size_t min_capacity, std::string_view name = "fifo-llsc")
      : Base(min_capacity, name) {}
};

}  // namespace evq
