// Algorithm 1 of the paper (Fig. 3): the LL/SC-based non-blocking circular
// array FIFO queue.
//
// State:
//   * slots_[0 .. capacity-1], each an LL/SC cell holding a node pointer or
//     nullptr (empty). capacity is a power of two.
//   * head_/tail_ — monotonically increasing 64-bit counters; slot index is
//     counter mod capacity. Queue empty when head == tail, full when
//     tail == head + capacity.
//
// Why it is ABA-free (Sec. 3 of the paper):
//   * index-ABA: the counters occupy a full word and only increment, so a
//     CAS on them can only succeed wrongly after a 2^64 wrap.
//   * data-ABA / null-ABA: a slot is only written through SC, which fails if
//     the slot changed since the matching LL — a preempted thread cannot act
//     on a stale read of slot contents, however long it slept and however
//     many times the indices lapped the array.
//
// Helping: an enqueuer that finds its reserved slot already occupied knows a
// concurrent enqueuer filled it but was preempted before advancing Tail; it
// advances Tail on that thread's behalf (lines E11–E13), and symmetrically
// for dequeue and Head. This is what makes the queue lock-free: a stalled
// thread leaves at most one lagging index, which any other thread repairs.
//
// The SlotCell template parameter selects the LL/SC emulation policy
// (VersionedLlsc = reference semantics, PackedLlsc = single-word,
// WeakLlsc<...> = spurious-failure injection); see evq/llsc/llsc.hpp.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/inject/inject.hpp"
#include "evq/llsc/counter_cell.hpp"
#include "evq/llsc/llsc.hpp"
#include "evq/llsc/versioned_llsc.hpp"

namespace evq {

template <typename T, template <typename> class SlotCellT = llsc::VersionedLlsc>
class LlscArrayQueue {
  static_assert(kQueueableV<T>, "element type must be at least 2-byte aligned");

 public:
  using value_type = T;
  using pointer = T*;
  using SlotCell = SlotCellT<T*>;
  static_assert(llsc::LlscCell<SlotCell>);

  /// No per-thread state: LL/SC reservations are carried in stack-local
  /// Links, which is exactly what makes Algorithm 1 population-oblivious
  /// with space depending only on the queue length.
  using Handle = TrivialHandle;

  /// Capacity is rounded up to a power of two (the paper requires Q_LENGTH
  /// to be a power of 2 so index wraparound never skips slots).
  explicit LlscArrayQueue(std::size_t min_capacity)
      : capacity_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<SlotCell[]>(capacity_)) {}

  LlscArrayQueue(const LlscArrayQueue&) = delete;
  LlscArrayQueue& operator=(const LlscArrayQueue&) = delete;

  [[nodiscard]] Handle handle() noexcept { return {}; }

  /// Fig. 3 E1–E21. Returns false iff the queue was full at some instant
  /// during the call (the paper's FULL_QUEUE).
  bool try_push(Handle&, T* node) noexcept {
    EVQ_DCHECK(node != nullptr, "cannot enqueue nullptr (it denotes an empty slot)");
    for (;;) {
      EVQ_INJECT_POINT("core.llsc.push.enter");
      const std::uint64_t t = tail_.value.load();                    // E5
      // E6 — full check. The occupancy must be compared SIGNED: `t` may be
      // stale (another thread advanced Head past it between our two reads),
      // making the unsigned difference underflow and report full spuriously
      // — a bug our model checker found in an earlier unsigned version. A
      // stale-negative occupancy simply proceeds; E10 then catches it.
      if (static_cast<std::int64_t>(t - head_.value.load()) >=
          static_cast<std::int64_t>(capacity_)) {
        return false;                                                // E7
      }
      SlotCell& slot = slots_[t & mask_];                            // E8
      auto link = slot.ll();                                         // E9
      EVQ_INJECT_POINT("core.llsc.push.reserved");
      if (t != tail_.value.load()) {                                 // E10
        continue;
      }
      if (link.value() != nullptr) {                                 // E11
        // A concurrent enqueuer filled this slot but has not advanced Tail
        // yet — help it (E12–E13) and retry with the fresh index.
        auto tail_link = tail_.value.ll();                           // E12
        if (tail_link.value() == t) {
          tail_.value.sc(tail_link, t + 1);                          // E13
        }
      } else if (slot.sc(link, node)) {                              // E15
        // Linearized: the item is in the array but Tail still lags — the
        // state the kill-mid-enqueue profile freezes.
        EVQ_INJECT_POINT("core.llsc.push.committed");
        auto tail_link = tail_.value.ll();                           // E16
        if (tail_link.value() == t) {
          tail_.value.sc(tail_link, t + 1);                          // E17
        }
        return true;                                                 // E18
      }
      // SC failed: the slot changed under our reservation — start over.
    }
  }

  /// Fig. 3 D1–D21. Returns nullptr iff the queue was empty at some instant
  /// during the call.
  T* try_pop(Handle&) noexcept {
    for (;;) {
      EVQ_INJECT_POINT("core.llsc.pop.enter");
      const std::uint64_t h = head_.value.load();                    // D5
      if (h == tail_.value.load()) {                                 // D6
        return nullptr;                                              // D7
      }
      SlotCell& slot = slots_[h & mask_];                            // D8
      auto link = slot.ll();                                         // D9
      EVQ_INJECT_POINT("core.llsc.pop.reserved");
      if (h != head_.value.load()) {                                 // D10
        continue;
      }
      if (link.value() == nullptr) {                                 // D11
        // The item at h was already removed by a dequeuer that has not
        // advanced Head yet — help it (D12–D13) and retry.
        auto head_link = head_.value.ll();                           // D12
        if (head_link.value() == h) {
          head_.value.sc(head_link, h + 1);                          // D13
        }
      } else if (slot.sc(link, nullptr)) {                           // D15
        // Linearized: the slot is empty but Head still lags.
        EVQ_INJECT_POINT("core.llsc.pop.committed");
        auto head_link = head_.value.ll();                           // D16
        if (head_link.value() == h) {
          head_.value.sc(head_link, h + 1);                          // D17
        }
        return link.value();                                         // D18
      }
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Instantaneous size estimate (exact when quiescent).
  [[nodiscard]] std::size_t size_estimate() noexcept {
    const std::uint64_t h = head_.value.load();
    const std::uint64_t t = tail_.value.load();
    return t >= h ? static_cast<std::size_t>(t - h) : 0;
  }

  /// Diagnostic counters for tests.
  [[nodiscard]] std::uint64_t head_index() noexcept { return head_.value.load(); }
  [[nodiscard]] std::uint64_t tail_index() noexcept { return tail_.value.load(); }

 private:
  const std::size_t capacity_;
  const std::size_t mask_;
  // Indices on their own cache lines: both are write-hot and shared.
  CachePadded<llsc::CounterCell> head_{};
  CachePadded<llsc::CounterCell> tail_{};
  std::unique_ptr<SlotCell[]> slots_;
};

}  // namespace evq
