// SCQ — Nikolaev's Scalable Circular Queue (arXiv:1908.04511), the
// FAA-generation successor to the paper's CAS/LL-SC rings, expressed in the
// ring engine's policy vocabulary (DESIGN.md §12 maps the pseudocode lines
// to the hooks here).
//
// Where the paper's engines run load → boundary check → reserve slot →
// re-validate → commit, SCQ claims a ticket with ONE unconditional fetch_add
// (FaaIndexPolicy::reserve) and resolves everything at the slot: each ring
// entry packs {cycle, isSafe, index} into one 64-bit word, an enqueuer
// installs its index with a single CAS on the entry, and a dequeuer consumes
// with a single fetch_or. The indices' cache lines are never spun on, which
// is where the throughput past the paper's Fig. 6 knee comes from.
//
// Structure (Nikolaev's SCQD, the variant that stays single-word for
// arbitrary pointers): two internal index rings of 2n entries over the small
// indices 0..n-1 — `fq` (free indices, initially full) and `aq` (allocated
// indices, initially empty) — plus a plain data array of n pointers.
//
//   push: idx := fq.dequeue()  (⊥ → FULL);  data[idx] := node;  aq.enqueue(idx)
//   pop:  idx := aq.dequeue()  (⊥ → EMPTY); node := data[idx];  fq.enqueue(idx)
//
// At most n indices are ever live, so an internal enqueue into a 2n ring
// always succeeds — the rings need no full check, and every synchronization
// step is a single-word FAA, CAS or OR (the paper's own portability bar).
//
// Entry word layout (ScqLayout), for a ring of 2^order entries:
//
//   [ cycle : 63-order | isSafe : 1 | index : order ]
//
// ⊥ (empty) is the all-ones index field — legal because live indices are
// < n = 2^(order-1) < 2^order - 1. A fully-empty entry is the all-ones WORD:
// index ⊥, safe, and cycle ≡ −1 under the wrap-aware comparison, so cycle 0
// tickets may use it immediately. Cycle comparisons use serial-number
// arithmetic (ScqLayout::cycle_lt) so the packed cycle field may wrap —
// at 2^(63-order) ring revolutions that is unreachable in practice, but the
// comparison is what the cycle-tag ABA defence rests on, so scq_policy_test
// pins its behaviour across the numeric wrap boundary.
//
// Livelock avoidance (the algorithm's subtle half): an empty-side dequeuer
// still claims tickets, and each claimed ticket "uses up" an entry for one
// cycle. The threshold counter bounds that damage: enqueue resets it to
// 3n−1 after every successful install; dequeue decrements it on every
// failed probe and fast-path-returns ⊥ once it goes negative. A dequeuer
// that overtakes the tail also CATCHES THE TAIL UP (catch_up) so lost
// enqueue tickets cannot accumulate — the cautious-dequeue step DESIGN.md
// §12 details. Entries skipped while a slow enqueuer still holds their
// ticket are marked UNSAFE (isSafe := 0); an enqueuer finding its entry
// unsafe may only use it when Head proves no dequeuer can still want it.
//
// Observability: the same counter/trace taxonomy as the engines, plus two
// rows unique to this generation — kFaaReserve (every ticket claim; the
// FAA analogue of a slot reservation) and kSlotSkip (every cycle-bump or
// unsafe-mark; retry pressure that has no CAS-failure signature). Trace
// probes emit the matching faa_reserve / slot_skip phases, catch-up spans
// ride the existing help_advance machinery, so SCQ help chains render in
// the same Perfetto document as the paper queues'.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

#include "evq/common/backoff.hpp"
#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/core/ring_engine.hpp"
#include "evq/inject/inject.hpp"
#include "evq/telemetry/flight_recorder.hpp"
#include "evq/telemetry/latency.hpp"
#include "evq/telemetry/op_event.hpp"
#include "evq/telemetry/registry.hpp"
#include "evq/trace/trace.hpp"

namespace evq {

inline constexpr char kScqIndexReservePoint[] = "core.scq.index.reserve";

/// The FAA ticket policy both internal rings share. Satisfies the engine's
/// RingIndexPolicy, so the advance-attribution tests cover it alongside the
/// CAS and LL/SC policies.
using ScqIndexPolicy = FaaIndexPolicy<kScqIndexReservePoint>;
static_assert(RingIndexPolicy<ScqIndexPolicy>);

/// The packed-entry word layout for one SCQ ring of 2^order entries.
/// Runtime-parameterized (ring sizes are constructor inputs) but fully
/// constexpr so scq_policy_test can pin round-trips and wrap edges at
/// compile time too.
class ScqLayout {
 public:
  explicit constexpr ScqLayout(std::uint32_t order) noexcept
      : order_(order),
        index_mask_((std::uint64_t{1} << order) - 1),
        safe_bit_(std::uint64_t{1} << order),
        cycle_shift_(order + 1),
        cycle_mask_((std::uint64_t{1} << (64 - order - 1)) - 1) {}

  [[nodiscard]] constexpr std::uint64_t make(std::uint64_t cycle, bool safe,
                                             std::uint64_t index) const noexcept {
    return ((cycle & cycle_mask_) << cycle_shift_) |
           (safe ? safe_bit_ : std::uint64_t{0}) | (index & index_mask_);
  }

  [[nodiscard]] constexpr std::uint64_t cycle(std::uint64_t entry) const noexcept {
    return entry >> cycle_shift_;
  }
  [[nodiscard]] constexpr bool is_safe(std::uint64_t entry) const noexcept {
    return (entry & safe_bit_) != 0;
  }
  [[nodiscard]] constexpr std::uint64_t index(std::uint64_t entry) const noexcept {
    return entry & index_mask_;
  }

  /// ⊥: the all-ones index field. Doubles as the fetch_or mask that consumes
  /// an entry (index -> ⊥) while preserving its cycle and safe bits.
  [[nodiscard]] constexpr std::uint64_t bottom() const noexcept { return index_mask_; }

  /// The cycle a raw monotone ticket belongs to, truncated to the stored
  /// cycle width so it compares against ScqLayout::cycle values.
  [[nodiscard]] constexpr std::uint64_t ticket_cycle(std::uint64_t ticket) const noexcept {
    return (ticket >> order_) & cycle_mask_;
  }

  /// Wrap-aware `a < b` over the cycle ring (serial-number arithmetic):
  /// a precedes b iff stepping forward from a reaches b in less than half
  /// the cycle space. Keeps the ABA defence sound across the numeric wrap
  /// of the truncated cycle field.
  [[nodiscard]] constexpr bool cycle_lt(std::uint64_t a, std::uint64_t b) const noexcept {
    const std::uint64_t forward = (b - a) & cycle_mask_;
    return forward != 0 && forward <= (cycle_mask_ >> 1);
  }

  [[nodiscard]] constexpr std::uint32_t order() const noexcept { return order_; }
  [[nodiscard]] constexpr std::uint64_t cycle_mask() const noexcept { return cycle_mask_; }

 private:
  std::uint32_t order_;
  std::uint64_t index_mask_;
  std::uint64_t safe_bit_;
  std::uint64_t cycle_shift_;
  std::uint64_t cycle_mask_;
};

/// Injection-point names for one internal ring (fq and aq get distinct sets
/// so scripted tests can park a thread in exactly one ring's protocol).
struct ScqRingPoints {
  const char* enq_reserve;    // before the enqueue-side ticket FAA
  const char* enq_reserved;   // after the FAA, before the entry CAS — the
                              // pre-seal-straggler window a seal must beat
  const char* enq_commit_sc;  // the entry-install CAS (spurious-fail injectable)
  const char* deq_reserve;    // before the dequeue-side ticket FAA
  const char* deq_reserved;   // after the dequeue-side FAA — stall here to age a ticket
  const char* deq_skip;       // before the skip CAS (cycle bump / unsafe mark)
  const char* deq_skip_sc;    // the skip CAS (spurious-fail injectable)
  const char* catchup_sc;     // the catch-up jump CAS (spurious-fail injectable)
};

/// One SCQ ring over small indices: 2^(half_order+1) packed entries carrying
/// the indices 0..2^half_order-1. Used in pairs by ScqQueue (fq/aq); the
/// caller guarantees at most 2^half_order live indices, so enqueue() never
/// reports full. All public mutators thread the owning queue's telemetry and
/// trace probe through an Io bundle, keeping the ring free of registration
/// state of its own.
class ScqRing {
 public:
  /// dequeue()'s ⊥ return. Distinct from any legal index (indices are < n).
  static constexpr std::uint64_t kBottom = ~std::uint64_t{0};

  struct Io {
    telemetry::ScopedQueueMetrics& tm;
    trace::OpProbe& probe;
    std::uint32_t& retries;
  };

  /// A ring holds indices 0..2^half_order-1 in 2^(half_order+1) entries.
  /// `full` seeds the free-ring shape (every index present, Tail at n,
  /// threshold armed); otherwise the ring starts empty with the threshold
  /// exhausted, so dequeue on a never-filled ring is one load.
  ScqRing(std::uint32_t half_order, bool full, const ScqRingPoints& points)
      : layout_(half_order + 1),
        order_(half_order + 1),
        size_(std::size_t{1} << order_),
        mask_(size_ - 1),
        half_(std::size_t{1} << half_order),
        threshold_init_(3 * static_cast<std::int64_t>(half_) - 1),
        initially_full_(full),
        points_(points),
        entries_(std::make_unique<std::atomic<std::uint64_t>[]>(size_)) {
    reopen();
  }

  ScqRing(const ScqRing&) = delete;
  ScqRing& operator=(const ScqRing&) = delete;

  /// (Re)initializes a QUIESCENT ring to its constructed shape — entries,
  /// indices, threshold, and the seal bit. Used by the segment free pool to
  /// recycle sealed rings; callers must guarantee no concurrent operations.
  void reopen() noexcept {
    for (std::size_t i = 0; i < size_; ++i) {
      // All-ones: index ⊥, safe, cycle ≡ −1 — consumable by cycle-0 tickets.
      entries_[i].store(~std::uint64_t{0}, std::memory_order_relaxed);
    }
    head_.value.store(0, std::memory_order_relaxed);
    if (initially_full_) {
      for (std::size_t i = 0; i < half_; ++i) {
        entries_[remap(i)].store(layout_.make(0, true, i), std::memory_order_relaxed);
      }
      tail_.value.store(half_, std::memory_order_relaxed);
      threshold_.value.store(threshold_init_, std::memory_order_relaxed);
    } else {
      tail_.value.store(0, std::memory_order_relaxed);
      threshold_.value.store(-1, std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  /// Seals the enqueue side (LSCQ's finalize): sets the CLOSED bit on Tail,
  /// so every ticket claimed from now on carries the bit and its enqueue
  /// fails permanently — AND re-arms the dequeue threshold, the paper's
  /// `cq.threshold := 3n-1` finalize step. The re-arm is load-bearing: a
  /// ring can carry a stale negative threshold from an earlier empty phase,
  /// under which dequeue() fast-path-returns ⊥ without claiming a head
  /// ticket, so Head would never advance past a pre-seal straggler's ticket
  /// T and the straggler (parked between its FAA and its entry CAS) could
  /// still install into a ring whose owner already took "⊥ after seal" as
  /// final. Re-armed, the caller's next probe is full-strength: it drives
  /// Head up to the frozen Tail, cycle-bumping or unsafe-marking every
  /// pre-seal entry on the way, so the straggler's install condition can
  /// never hold again and a post-close ⊥ really is final
  /// (tests/segment_race_test.cpp pins the schedule). Idempotent; returns
  /// whether THIS call sealed; callers re-probing a sealed ring call it
  /// again before every probe, exactly as LSCQ re-stores the threshold.
  bool close() noexcept {
    const bool sealed = ScqIndexPolicy::close(tail_.value);
    threshold_.value.store(threshold_init_, std::memory_order_seq_cst);
    return sealed;
  }

  [[nodiscard]] bool closed() noexcept {
    return (ScqIndexPolicy::load(tail_.value) & kRingClosedBit) != 0;
  }

  /// SCQ Enqueue (DESIGN.md §12, E-lines): FAA a ticket, install the index
  /// into the ticket's entry with one CAS, re-arm the threshold. Loops until
  /// an entry admits the install — guaranteed to terminate because at most
  /// `half_` indices are live in a ring of twice that many entries. A ticket
  /// whose entry is from a newer cycle, still occupied, or unsafe while a
  /// dequeuer may want it, is simply abandoned (lost tickets are what the
  /// dequeue side's catch-up repairs).
  ///
  /// Returns false iff the ring is sealed (close()): the FAA ticket itself
  /// carries the CLOSED bit, so the check costs nothing on the open path and
  /// no pre-seal ticket is ever refused — exactly LSCQ's finalize contract.
  template <typename ContentionPolicy = NoBackoff>
  bool enqueue(std::uint64_t index, Io io) noexcept {
    ContentionPolicy backoff;
    for (;;) {
      io.probe.begin_phase(trace::Phase::kFaaReserve);
      EVQ_INJECT_POINT(points_.enq_reserve);
      const std::uint64_t t = ScqIndexPolicy::reserve(tail_.value);         // E: T := FAA(&Tail, 1)
      if ((t & kRingClosedBit) != 0) {
        return false;
      }
      telemetry::count_ring_event(io.tm, telemetry::Counter::kFaaReserve);
      // A thread parked here holds a pre-seal ticket with no entry yet — the
      // straggler close()'s threshold re-arm exists to defeat.
      EVQ_INJECT_POINT(points_.enq_reserved);
      const std::uint64_t t_cycle = layout_.ticket_cycle(t);
      std::atomic<std::uint64_t>& cell = entries_[remap(t)];
      io.probe.begin_phase(trace::Phase::kSlotAttempt);
      std::uint64_t e = cell.load(std::memory_order_seq_cst);               // E: E := Entries[j]
      for (;;) {
        // E: Cycle(E) < Cycle(T) ∧ Index(E) = ⊥ ∧ (IsSafe(E) ∨ Head ≤ T)
        if (!layout_.cycle_lt(layout_.cycle(e), t_cycle) ||
            layout_.index(e) != layout_.bottom() ||
            (!layout_.is_safe(e) &&
             static_cast<std::int64_t>(ScqIndexPolicy::load(head_.value) - t) > 0)) {
          break;  // ticket lost — take a fresh one
        }
        const std::uint64_t desired = layout_.make(t_cycle, true, index);
        if (EVQ_INJECT_SC_FAILS(points_.enq_commit_sc)) {
          telemetry::count_ring_event(io.tm, telemetry::Counter::kSlotScFail);
          ++io.retries;
          e = cell.load(std::memory_order_seq_cst);
          continue;
        }
        if (!cell.compare_exchange_strong(e, desired, std::memory_order_seq_cst)) {
          // e reloaded by the failed CAS — re-evaluate the condition with it.
          telemetry::count_ring_event(io.tm, telemetry::Counter::kSlotScFail);
          ++io.retries;
          continue;
        }
        // E: installed — re-arm the livelock threshold.
        if (threshold_.value.load(std::memory_order_seq_cst) != threshold_init_) {
          threshold_.value.store(threshold_init_, std::memory_order_seq_cst);
        }
        return true;
      }
      telemetry::count_ring_event(io.tm, telemetry::Counter::kBackoffRound);
      io.probe.begin_phase(trace::Phase::kBackoff);
      backoff.pause();
      ++io.retries;
    }
  }

  /// SCQ Dequeue (DESIGN.md §12, D-lines). Returns a stored index, or
  /// kBottom when the ring was empty at some instant during the call. The
  /// cautious part: a probe that finds its entry stale bumps the entry past
  /// its own cycle (or marks a held entry unsafe), then — if it overran the
  /// tail — catches the tail up and charges the threshold; ⊥ is only
  /// reported off the threshold, which enqueue re-arms on every success.
  template <typename ContentionPolicy = NoBackoff>
  std::uint64_t dequeue(Io io) noexcept {
    if (threshold_.value.load(std::memory_order_seq_cst) < 0) {             // D: fast path
      return kBottom;
    }
    ContentionPolicy backoff;
    for (;;) {
      io.probe.begin_phase(trace::Phase::kFaaReserve);
      EVQ_INJECT_POINT(points_.deq_reserve);
      const std::uint64_t h = ScqIndexPolicy::reserve(head_.value);         // D: H := FAA(&Head, 1)
      telemetry::count_ring_event(io.tm, telemetry::Counter::kFaaReserve);
      EVQ_INJECT_POINT(points_.deq_reserved);
      const std::uint64_t h_cycle = layout_.ticket_cycle(h);
      std::atomic<std::uint64_t>& cell = entries_[remap(h)];
      io.probe.begin_phase(trace::Phase::kSlotAttempt);
      std::uint64_t e = cell.load(std::memory_order_seq_cst);               // D: E := Entries[j]
      for (;;) {
        const std::uint64_t e_cycle = layout_.cycle(e);
        if (e_cycle == h_cycle) {
          // D: consume — Index := ⊥, cycle and safe bit preserved. OR, not
          // CAS: a concurrent unsafe-mark on this entry must compose, not
          // race (both are single-word RMWs on the same cell).
          cell.fetch_or(layout_.bottom(), std::memory_order_seq_cst);
          return layout_.index(e);
        }
        if (layout_.cycle_lt(e_cycle, h_cycle)) {
          // D: the entry is from an older cycle — skip it. An empty entry's
          // cycle is bumped to ours (it can serve a same-cycle enqueuer); a
          // HELD entry (a slow enqueuer's install from an older cycle that a
          // matching dequeuer has yet to consume) keeps cycle and index but
          // loses its safe bit, warning that cycle's enqueuers off.
          const std::uint64_t desired =
              layout_.index(e) == layout_.bottom()
                  ? layout_.make(h_cycle, layout_.is_safe(e), layout_.bottom())
                  : layout_.make(e_cycle, false, layout_.index(e));
          io.probe.begin_phase(trace::Phase::kSlotSkip);
          EVQ_INJECT_POINT(points_.deq_skip);
          if (EVQ_INJECT_SC_FAILS(points_.deq_skip_sc)) {
            telemetry::count_ring_event(io.tm, telemetry::Counter::kSlotScFail);
            ++io.retries;
            e = cell.load(std::memory_order_seq_cst);
            continue;  // re-check: an enqueuer may have installed our cycle
          }
          if (!cell.compare_exchange_strong(e, desired, std::memory_order_seq_cst)) {
            telemetry::count_ring_event(io.tm, telemetry::Counter::kSlotScFail);
            ++io.retries;
            continue;  // e reloaded by the failed CAS
          }
          telemetry::count_ring_event(io.tm, telemetry::Counter::kSlotSkip);
        }
        // D: emptiness check. Overran the tail → catch it up, charge the
        // threshold, report ⊥; otherwise ⊥ only once the threshold is spent.
        // The CLOSED bit is stripped for the comparison (a sealed ring drains
        // normally); catch_up takes the raw word so its CAS preserves it.
        io.probe.begin_phase(trace::Phase::kIndexLoad);
        const std::uint64_t t_raw = ScqIndexPolicy::load(tail_.value);
        const std::uint64_t t = t_raw & kRingIndexMask;
        if (static_cast<std::int64_t>(t - (h + 1)) <= 0) {
          catch_up(t_raw, h + 1, io);
          threshold_.value.fetch_sub(1, std::memory_order_seq_cst);
          return kBottom;
        }
        if (threshold_.value.fetch_sub(1, std::memory_order_seq_cst) <= 0) {
          return kBottom;
        }
        break;  // threshold still positive — take a fresh ticket
      }
      telemetry::count_ring_event(io.tm, telemetry::Counter::kBackoffRound);
      io.probe.begin_phase(trace::Phase::kBackoff);
      backoff.pause();
      ++io.retries;
    }
  }

  // --- introspection (tests, size estimates, diagnostics) ---
  [[nodiscard]] std::uint64_t head() noexcept { return ScqIndexPolicy::load(head_.value); }
  [[nodiscard]] std::uint64_t tail() noexcept {
    return ScqIndexPolicy::load(tail_.value) & kRingIndexMask;
  }
  [[nodiscard]] std::int64_t threshold() const noexcept {
    return threshold_.value.load(std::memory_order_seq_cst);
  }
  [[nodiscard]] std::uint64_t entry(std::uint64_t ticket) const noexcept {
    return entries_[remap(ticket)].load(std::memory_order_seq_cst);
  }
  [[nodiscard]] const ScqLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] std::size_t entry_count() const noexcept { return size_; }
  [[nodiscard]] std::int64_t threshold_init() const noexcept { return threshold_init_; }

 private:
  /// Cache remap: rotate the position left by 3 within the ring's order bits,
  /// so consecutive tickets land 8 entries (one 64-byte line) apart and an
  /// FAA burst from different cores does not false-share one line. A
  /// bijection, so wraparound still visits every entry exactly once per
  /// cycle. Identity for tiny rings (order <= 3), where the whole array is
  /// one line anyway.
  [[nodiscard]] std::size_t remap(std::uint64_t ticket) const noexcept {
    const std::size_t pos = static_cast<std::size_t>(ticket) & mask_;
    if (order_ <= 3) {
      return pos;
    }
    return ((pos << 3) | (pos >> (order_ - 3))) & mask_;
  }

  /// SCQ Catchup: drag a lagging Tail forward to `h` so tickets lost by
  /// enqueuers cannot starve the threshold forever. Surfaces as a
  /// help-advance in telemetry and as a helper-side flow event in traces —
  /// it IS this generation's helping step. `t` is the RAW tail word: the
  /// jump CAS must carry the CLOSED bit across, or a catch-up on a sealed
  /// ring would quietly un-seal it.
  void catch_up(std::uint64_t t, std::uint64_t h, Io& io) noexcept {
    for (;;) {
      if (static_cast<std::int64_t>((t & kRingIndexMask) - h) >= 0) {
        return;  // already caught up (or a peer got there first)
      }
      std::uint64_t expected = t;
      if (!EVQ_INJECT_SC_FAILS(points_.catchup_sc) &&
          ScqIndexPolicy::catch_up(tail_.value, expected, h | (t & kRingClosedBit))) {
        telemetry::count_ring_event(io.tm, telemetry::Counter::kHelpAdvance);
        io.probe.help_advance(h, trace::HelpTarget::kTail);
        return;
      }
      h = ScqIndexPolicy::load(head_.value);
      t = ScqIndexPolicy::load(tail_.value);
    }
  }

  const ScqLayout layout_;
  const std::uint32_t order_;
  const std::size_t size_;
  const std::size_t mask_;
  const std::size_t half_;
  const std::int64_t threshold_init_;
  const bool initially_full_;
  const ScqRingPoints points_;
  // Indices and threshold each on their own line: all three are write-hot.
  CachePadded<ScqIndexPolicy::Cell> head_{};
  CachePadded<ScqIndexPolicy::Cell> tail_{};
  CachePadded<std::atomic<std::int64_t>> threshold_{};
  std::unique_ptr<std::atomic<std::uint64_t>[]> entries_;
};

namespace scq_detail {
inline constexpr ScqRingPoints kFreeRingPoints{
    "core.scq.fq.enq.reserve", "core.scq.fq.enq.reserved", "core.scq.fq.enq.commit",
    "core.scq.fq.deq.reserve", "core.scq.fq.deq.reserved", "core.scq.fq.deq.skip",
    "core.scq.fq.deq.skip.sc", "core.scq.fq.catchup",
};
inline constexpr ScqRingPoints kAllocRingPoints{
    "core.scq.aq.enq.reserve", "core.scq.aq.enq.reserved", "core.scq.aq.enq.commit",
    "core.scq.aq.deq.reserve", "core.scq.aq.deq.reserved", "core.scq.aq.deq.skip",
    "core.scq.aq.deq.skip.sc", "core.scq.aq.catchup",
};
}  // namespace scq_detail

/// The SCQD pointer queue: fq/aq index rings plus the data array. Drop-in
/// member of the bounded-queue family — TrivialHandle (no per-thread state),
/// the uniform try_push/try_pop plus native batch operations, capacity
/// rounded up to a power of two, registered telemetry with a depth gauge.
template <typename T, typename ContentionPolicy = NoBackoff>
class ScqQueue {
  static_assert(kQueueableV<T>, "element type must be at least 2-byte aligned");

 public:
  using value_type = T;
  using pointer = T*;
  using Handle = TrivialHandle;

  static constexpr const char* kPushEnter = "core.scq.push.enter";
  static constexpr const char* kPushReserved = "core.scq.push.reserved";
  static constexpr const char* kPushCommitted = "core.scq.push.committed";
  static constexpr const char* kPopEnter = "core.scq.pop.enter";
  static constexpr const char* kPopReserved = "core.scq.pop.reserved";
  static constexpr const char* kPopCommitted = "core.scq.pop.committed";

  explicit ScqQueue(std::size_t min_capacity, std::string_view name = "scq")
      : half_order_(static_cast<std::uint32_t>(
            std::bit_width(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity)) - 1)),
        capacity_(std::size_t{1} << half_order_),
        fq_(half_order_, /*full=*/true, scq_detail::kFreeRingPoints),
        aq_(half_order_, /*full=*/false, scq_detail::kAllocRingPoints),
        data_(std::make_unique<std::atomic<T*>[]>(capacity_)),
        telemetry_(name) {
    telemetry_.set_depth_gauge(
        [this] { return static_cast<std::uint64_t>(size_estimate()); });
  }

  ScqQueue(const ScqQueue&) = delete;
  ScqQueue& operator=(const ScqQueue&) = delete;

  [[nodiscard]] Handle handle() { return Handle{}; }

  /// False iff no free index was available — the queue held `capacity()`
  /// items (counting in-flight pushes that linearize before this call) at
  /// some instant during the call.
  bool try_push(Handle&, T* node) noexcept { return push_one(node); }

  /// nullptr iff the queue was empty at some instant during the call.
  T* try_pop(Handle&) noexcept { return pop_one(); }

  std::size_t try_push_n(Handle& h, T* const* nodes, std::size_t count) noexcept {
    std::size_t done = 0;
    while (done < count && try_push(h, nodes[done])) {
      ++done;
    }
    return done;
  }

  std::size_t try_pop_n(Handle& h, T** out, std::size_t count) noexcept {
    std::size_t done = 0;
    while (done < count) {
      T* node = try_pop(h);
      if (node == nullptr) {
        break;
      }
      out[done++] = node;
    }
    return done;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Instantaneous size estimate off the allocated ring's indices (exact
  /// when quiescent; clamped — an empty-side ticket burst can push the
  /// allocated Head transiently past its Tail).
  [[nodiscard]] std::size_t size_estimate() noexcept {
    const std::int64_t d = static_cast<std::int64_t>(aq_.tail() - aq_.head());
    if (d <= 0) {
      return 0;
    }
    return std::min(static_cast<std::size_t>(d), capacity_);
  }

  [[nodiscard]] telemetry::QueueMetrics& metrics() noexcept { return telemetry_.metrics(); }
  [[nodiscard]] const std::string& telemetry_name() const noexcept { return telemetry_.name(); }

  /// The internal rings, exposed for the policy tests (threshold state,
  /// entry words, unsafe transitions).
  [[nodiscard]] ScqRing& free_ring() noexcept { return fq_; }
  [[nodiscard]] ScqRing& alloc_ring() noexcept { return aq_; }

  /// Seals the queue (segment protocol): the CLOSED bit goes on the ALLOC
  /// ring's tail — pushes that already hold a free index return it and fail
  /// permanently; pops drain what was installed. Also re-arms aq's dequeue
  /// threshold (LSCQ's finalize, see ScqRing::close) so the caller's next
  /// try_pop is a full-strength emptiness probe — required before trusting
  /// a post-seal ⊥ as final. The free ring is never sealed (pop must always
  /// be able to recycle indices). Idempotent; returns whether THIS call
  /// sealed.
  bool close() noexcept { return aq_.close(); }

  [[nodiscard]] bool closed() noexcept { return aq_.closed(); }

  /// Resets a QUIESCENT (typically pool-recycled) queue to its constructed
  /// open-and-empty state. Callers must guarantee no concurrent operations.
  void reopen() noexcept {
    fq_.reopen();
    aq_.reopen();
  }

 private:
  bool push_one(T* node) noexcept {
    EVQ_DCHECK(node != nullptr, "cannot enqueue nullptr (it denotes an empty slot)");
    std::uint32_t retries = 0;
    trace::OpProbe probe(telemetry_.queue_id(), trace::OpProbe::OpKind::kPush);
    telemetry::LatencyTimer latency(telemetry_.queue_id(), /*is_push=*/true);
    EVQ_INJECT_POINT(kPushEnter);
    ScqRing::Io io{telemetry_, probe, retries};
    const std::uint64_t idx = fq_.dequeue<ContentionPolicy>(io);
    if (idx == ScqRing::kBottom) {
      telemetry::count_ring_event(telemetry_, telemetry::Counter::kPushFull);
      telemetry::record_trace(telemetry_.queue_id(), telemetry::TraceOp::kPushFull, 0, retries);
      probe.finish(trace::OpCode::kPushFull, 0, retries);
      return false;
    }
    // The index is exclusively ours until aq publishes it: the data write
    // races with nothing, and the release store pairs with pop_one's
    // acquire load through aq's entry CAS/load.
    data_[idx].store(node, std::memory_order_release);
    EVQ_INJECT_POINT(kPushReserved);
    if (!aq_.enqueue<ContentionPolicy>(idx, io)) {
      // Sealed under us (close()): the node was never published, so hand the
      // free index back and report the paper's FULL outcome — to a caller a
      // sealed queue and a full queue are the same "takes no more items"
      // answer, and the segmented facade counts the seal itself separately.
      fq_.enqueue<ContentionPolicy>(idx, io);
      telemetry::count_ring_event(telemetry_, telemetry::Counter::kPushFull);
      telemetry::record_trace(telemetry_.queue_id(), telemetry::TraceOp::kPushFull, idx, retries);
      probe.finish(trace::OpCode::kPushFull, idx, retries);
      return false;
    }
    // Linearized at the aq entry install (the kill-mid-enqueue freeze spot).
    EVQ_INJECT_POINT(kPushCommitted);
    telemetry::count_ring_event(telemetry_, telemetry::Counter::kPushOk);
    telemetry::record_trace(telemetry_.queue_id(), telemetry::TraceOp::kPushOk, idx, retries);
    probe.finish(trace::OpCode::kPushOk, idx, retries);
    return true;
  }

  T* pop_one() noexcept {
    std::uint32_t retries = 0;
    trace::OpProbe probe(telemetry_.queue_id(), trace::OpProbe::OpKind::kPop);
    telemetry::LatencyTimer latency(telemetry_.queue_id(), /*is_push=*/false);
    EVQ_INJECT_POINT(kPopEnter);
    ScqRing::Io io{telemetry_, probe, retries};
    const std::uint64_t idx = aq_.dequeue<ContentionPolicy>(io);
    if (idx == ScqRing::kBottom) {
      telemetry::count_ring_event(telemetry_, telemetry::Counter::kPopEmpty);
      telemetry::record_trace(telemetry_.queue_id(), telemetry::TraceOp::kPopEmpty, 0, retries);
      probe.finish(trace::OpCode::kPopEmpty, 0, retries);
      return nullptr;
    }
    EVQ_INJECT_POINT(kPopReserved);
    T* node = data_[idx].load(std::memory_order_acquire);
    // Only after the read may the index recycle: fq republishes it to the
    // next push, whose data write the read above must not race.
    fq_.enqueue<ContentionPolicy>(idx, io);
    EVQ_INJECT_POINT(kPopCommitted);
    telemetry::count_ring_event(telemetry_, telemetry::Counter::kPopOk);
    telemetry::record_trace(telemetry_.queue_id(), telemetry::TraceOp::kPopOk, idx, retries);
    probe.finish(trace::OpCode::kPopOk, idx, retries);
    return node;
  }

  const std::uint32_t half_order_;
  const std::size_t capacity_;
  ScqRing fq_;
  ScqRing aq_;
  std::unique_ptr<std::atomic<T*>[]> data_;
  // LAST member on purpose: destroyed first, which clears the depth gauge
  // (it reads aq_ through `this`) while the rings still exist.
  telemetry::ScopedQueueMetrics telemetry_;
};

static_assert(BoundedPtrQueue<ScqQueue<int>>);
static_assert(BatchPtrQueue<ScqQueue<int>>);

}  // namespace evq
