// Algorithm 2 of the paper (Fig. 5): the CAS-only non-blocking circular
// array FIFO queue with simulated LL/SC.
//
// Same circular-array skeleton as Algorithm 1, but each slot is a
// SimLlscCell: LL is simulated by swapping in the LSB-tagged address of a
// thread-owned LLSCvar (the reservation marker), SC by a CAS that expects
// that tag. Only pointer-wide CAS and FetchAndAdd are used — the paper's
// portability requirement for 64-bit machines without double-width CAS.
//
// Per-thread state: each operating thread holds a registered LLSCvar,
// obtained from the queue's population-oblivious Registry (Fig. 5
// Register/ReRegister/Deregister) and carried in a Handle. ReRegister runs
// between consecutive operations: if any foreign reader still holds a
// reference to the variable (r > 1), the variable is abandoned and a fresh
// one claimed — this closes the tagged-pointer ABA analysed in Sec. 5.
//
// Index-ABA is handled exactly as in Algorithm 1 (monotone 64-bit counters,
// `CAS(&Tail, t, t+1)`); data/null-ABA by the simulated reservations; and
// any staleness the simulation's takeover semantics admit is caught by
// re-validating the index after LL (`if (t == Tail)`), per the paper's
// closing observation of Sec. 5.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"
#include "evq/common/op_stats.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/inject/inject.hpp"
#include "evq/registry/registry.hpp"
#include "evq/registry/sim_llsc_cell.hpp"

namespace evq {

template <typename T>
class CasArrayQueue {
  static_assert(kQueueableV<T>, "element type must be at least 2-byte aligned");

 public:
  using value_type = T;
  using pointer = T*;
  using SlotCell = registry::SimLlscCell<T*>;

  /// RAII per-thread registration. Cheap to construct (recycles an existing
  /// LLSCvar when one is free); destruction deregisters. A Handle must not
  /// be used by two threads concurrently — it is the thread's identity —
  /// and must not outlive the queue whose registry it points into.
  class Handle {
   public:
    explicit Handle(registry::Registry& reg) : registration_(reg) {}

   private:
    friend class CasArrayQueue;
    registry::Registration registration_;
  };

  explicit CasArrayQueue(std::size_t min_capacity)
      : capacity_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<SlotCell[]>(capacity_)) {}

  CasArrayQueue(const CasArrayQueue&) = delete;
  CasArrayQueue& operator=(const CasArrayQueue&) = delete;

  [[nodiscard]] Handle handle() { return Handle{registry_}; }

  /// Fig. 5 Enqueue. Returns false iff the queue was full.
  bool try_push(Handle& h, T* node) noexcept {
    EVQ_DCHECK(node != nullptr, "cannot enqueue nullptr (it denotes an empty slot)");
    registry::LlscVar* var = h.registration_.fresh();  // the paper's ReRegister
    for (;;) {
      EVQ_INJECT_POINT("core.cas.push.enter");
      const std::uint64_t t = tail_.value.load(std::memory_order_seq_cst);
      // Signed occupancy: a stale `t` (Head already passed it) must read as
      // negative, not as a spurious full — see llsc_array_queue.hpp's E6
      // comment for the model-checker finding behind this.
      if (static_cast<std::int64_t>(t - head_.value.load(std::memory_order_seq_cst)) >=
          static_cast<std::int64_t>(capacity_)) {
        return false;  // FULL_QUEUE
      }
      SlotCell& slot = slots_[t & mask_];
      T* observed = slot.ll(var);
      EVQ_INJECT_POINT("core.cas.push.reserved");
      if (t == tail_.value.load(std::memory_order_seq_cst)) {
        if (observed != nullptr) {
          // Slot filled by a preempted enqueuer whose Tail update lags:
          // undo our reservation, help advance Tail, retry.
          slot.release(var);
          advance(tail_, t);
        } else if (slot.sc(var, node)) {
          // Linearized: item installed, Tail lags until advance() lands.
          EVQ_INJECT_POINT("core.cas.push.committed");
          advance(tail_, t);
          return true;
        }
        // sc failed: reservation taken over — retry from the top.
      } else {
        slot.release(var);  // index moved under us: restore and retry
      }
    }
  }

  /// Fig. 5 Dequeue. Returns nullptr iff the queue was empty.
  T* try_pop(Handle& h) noexcept {
    registry::LlscVar* var = h.registration_.fresh();
    for (;;) {
      EVQ_INJECT_POINT("core.cas.pop.enter");
      const std::uint64_t head = head_.value.load(std::memory_order_seq_cst);
      if (head == tail_.value.load(std::memory_order_seq_cst)) {
        return nullptr;  // empty
      }
      SlotCell& slot = slots_[head & mask_];
      T* observed = slot.ll(var);
      EVQ_INJECT_POINT("core.cas.pop.reserved");
      if (head == head_.value.load(std::memory_order_seq_cst)) {
        if (observed == nullptr) {
          // Item already removed by a dequeuer whose Head update lags:
          // undo our reservation, help advance Head, retry.
          slot.release(var);
          advance(head_, head);
        } else if (slot.sc(var, nullptr)) {
          // Linearized: slot cleared, Head lags until advance() lands.
          EVQ_INJECT_POINT("core.cas.pop.committed");
          advance(head_, head);
          return observed;
        }
      } else {
        slot.release(var);
      }
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] std::size_t size_estimate() noexcept {
    const std::uint64_t h = head_.value.load(std::memory_order_seq_cst);
    const std::uint64_t t = tail_.value.load(std::memory_order_seq_cst);
    return t >= h ? static_cast<std::size_t>(t - h) : 0;
  }

  /// The queue's registry — exposed so tests can assert the space bound
  /// (LLSCvar count tracks max concurrency, not total threads ever).
  [[nodiscard]] registry::Registry& registry() noexcept { return registry_; }

  [[nodiscard]] std::uint64_t head_index() noexcept {
    return head_.value.load(std::memory_order_seq_cst);
  }
  [[nodiscard]] std::uint64_t tail_index() noexcept {
    return tail_.value.load(std::memory_order_seq_cst);
  }

 private:
  /// `CAS(&Index, i, i+1)` — the paper's index advance (identical to an
  /// LL/SC increment because the counters are monotone; see counter_cell.hpp).
  static void advance(CachePadded<std::atomic<std::uint64_t>>& index,
                      std::uint64_t expected) noexcept {
    // Delay-only point: the advance CAS must always be ATTEMPTED, because
    // its failure is read as "another thread already advanced the index" —
    // skipping it on a stream's final operation would forge a permanently
    // lagging index no real preemption can produce (a CAS, unlike weak
    // LL/SC, never fails spuriously).
    EVQ_INJECT_POINT("core.cas.index.advance");
    stats::on_cas(
        index.value.compare_exchange_strong(expected, expected + 1, std::memory_order_seq_cst));
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  CachePadded<std::atomic<std::uint64_t>> head_{0};
  CachePadded<std::atomic<std::uint64_t>> tail_{0};
  std::unique_ptr<SlotCell[]> slots_;
  registry::Registry registry_;
};

}  // namespace evq
