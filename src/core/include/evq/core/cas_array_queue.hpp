// Algorithm 2 of the paper (Fig. 5): the CAS-only non-blocking circular
// array FIFO queue with simulated LL/SC — expressed as a SlotPolicy over the
// shared ring engine (core/ring_engine.hpp).
//
// Same circular-array skeleton as Algorithm 1 (the engine), but each slot is
// a SimLlscCell: LL is simulated by swapping in the LSB-tagged address of a
// thread-owned LLSCvar (the reservation marker), SC by a CAS that expects
// that tag. Only pointer-wide CAS and FetchAndAdd are used — the paper's
// portability requirement for 64-bit machines without double-width CAS.
//
// Per-thread state: each operating thread holds a registered LLSCvar,
// obtained from the queue's population-oblivious Registry (Fig. 5
// Register/ReRegister/Deregister) and carried in a Handle. ReRegister runs
// between consecutive operations — begin_op() below, once per try_push/
// try_pop AND once per element of a batch: if any foreign reader still holds
// a reference to the variable (r > 1), the variable is abandoned and a fresh
// one claimed — this closes the tagged-pointer ABA analysed in Sec. 5.
//
// Index-ABA is handled exactly as in Algorithm 1 (monotone 64-bit counters,
// `CAS(&Tail, t, t+1)` via CasIndexPolicy); data/null-ABA by the simulated
// reservations; and any staleness the simulation's takeover semantics admit
// is caught by the engine's index re-validation after LL (`if (t == Tail)`),
// per the paper's closing observation of Sec. 5. Unlike Algorithm 1, an
// abandoned attempt must RELEASE its reservation (abandon() below): the
// simulated LL leaves a tag in the slot that would otherwise wedge it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "evq/common/backoff.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/core/ring_engine.hpp"
#include "evq/registry/registry.hpp"
#include "evq/registry/sim_llsc_cell.hpp"

namespace evq {

inline constexpr char kCasIndexAdvancePoint[] = "core.cas.index.advance";

/// Fig. 5's slot behaviour for the ring engine: simulated LL/SC through
/// registered LLSCvars. The policy owns the queue's Registry.
template <typename T>
class CasSlotPolicy {
 public:
  using SlotCell = registry::SimLlscCell<T*>;
  using Slot = SlotCell;

  /// RAII per-thread registration. Cheap to construct (recycles an existing
  /// LLSCvar when one is free); destruction deregisters. A Handle must not
  /// be used by two threads concurrently — it is the thread's identity —
  /// and must not outlive the queue whose registry it points into.
  class Handle {
   public:
    explicit Handle(registry::Registry& reg) : registration_(reg) {}

   private:
    friend class CasSlotPolicy;
    registry::Registration registration_;
  };

  /// The operation's LLSCvar, fetched by ReRegister at operation start.
  struct OpCtx {
    registry::LlscVar* var;
  };
  using Reservation = T*;

  static constexpr const char* kPushEnter = "core.cas.push.enter";
  static constexpr const char* kPushReserved = "core.cas.push.reserved";
  static constexpr const char* kPushCommitted = "core.cas.push.committed";
  static constexpr const char* kPopEnter = "core.cas.pop.enter";
  static constexpr const char* kPopReserved = "core.cas.pop.reserved";
  static constexpr const char* kPopCommitted = "core.cas.pop.committed";

  void attach(std::size_t) noexcept {}
  void init_slot(Slot&, std::uint64_t) noexcept {}  // default-constructed cell == nullptr == empty
  [[nodiscard]] Handle make_handle() { return Handle{registry_}; }

  OpCtx begin_op(Handle& h) noexcept {
    return OpCtx{h.registration_.fresh()};  // the paper's ReRegister
  }

  Reservation reserve(Slot& slot, OpCtx& ctx) noexcept { return slot.ll(ctx.var); }

  SlotClass classify(const Reservation& res, std::uint64_t) noexcept {
    return res == nullptr ? SlotClass::kEmptyFresh : SlotClass::kOccupied;
  }

  bool commit_push(Slot& slot, Reservation&, T* node, std::uint64_t, OpCtx& ctx) noexcept {
    return slot.sc(ctx.var, node);
  }

  bool commit_pop(Slot& slot, Reservation&, std::uint64_t, OpCtx& ctx) noexcept {
    return slot.sc(ctx.var, nullptr);
  }

  T* value_of(const Reservation& res) noexcept { return res; }

  /// Undo a live reservation (retry and help paths). The engine never calls
  /// this after a failed sc — there the reservation was taken over and is no
  /// longer ours to release, exactly Fig. 5's "retry from the top".
  void abandon(Slot& slot, Reservation&, OpCtx& ctx) noexcept { slot.release(ctx.var); }

  [[nodiscard]] registry::Registry& registry() noexcept { return registry_; }

 private:
  registry::Registry registry_;
};

template <typename T, typename ContentionPolicy = NoBackoff>
class CasArrayQueue : public BoundedRing<T, CasSlotPolicy<T>,
                                         CasIndexPolicy<kCasIndexAdvancePoint>, ContentionPolicy> {
  using Base =
      BoundedRing<T, CasSlotPolicy<T>, CasIndexPolicy<kCasIndexAdvancePoint>, ContentionPolicy>;

 public:
  using SlotCell = typename CasSlotPolicy<T>::SlotCell;

  explicit CasArrayQueue(std::size_t min_capacity, std::string_view name = "fifo-simcas")
      : Base(min_capacity, name) {}

  /// The queue's registry — exposed so tests can assert the space bound
  /// (LLSCvar count tracks max concurrency, not total threads ever).
  [[nodiscard]] registry::Registry& registry() noexcept { return this->slot_policy().registry(); }
};

}  // namespace evq
