// Unbounded FIFO queue from a linked list of sealable bounded rings — the
// LCRQ/LSCQ composition (Morrison-Afek PPoPP'13; Nikolaev arXiv:1908.04511)
// over this repository's ring generations, ROADMAP open item 2.
//
// A segment is one bounded ring (any SealableRing: the engine instantiations
// of ring_engine.hpp or the SCQ of scq_queue.hpp) plus a `next` link. The
// queue keeps head/tail segment pointers:
//
//   push: follow tail_ (chasing next links); try the ring; on FULL seal it
//         (ring.close() — the CLOSED tail bit makes the failure permanent),
//         pre-insert the node into a private fresh segment and CAS it onto
//         `next`; losing the race recycles the private segment and retries
//         on the winner's.
//   pop:  try head_'s ring; on ⊥ with a successor linked, seal (idempotent —
//         a linked successor implies the pusher already sealed) and probe
//         ONCE MORE (LSCQ's finalize-then-recheck: a pre-seal straggler may
//         have installed after the first ⊥); a second ⊥ is then FINAL, so
//         the segment is unlinked and retired.
//
// Why the second ⊥ is final: the seal freezes the ring's masked tail (engine
// rings: advance() is strict and stranded commits are reverted; SCQ: tickets
// carry the CLOSED bit and close() re-arms the dequeue threshold — LSCQ's
// `threshold := 3n-1` finalize — so the post-seal probe claims head tickets
// up to the frozen tail and invalidates every pre-seal straggler's entry),
// so a sealed ring that reports empty can never report anything else again.
//
// Reclamation: a retired segment may still be referenced by a stalled peer
// that protected it before it was unlinked, so segments go through a safe
// memory reclamation domain — a template parameter, like the MS baselines:
// HpSegmentDomain (hazard pointers, 2 slots, hand-over-hand) by default or
// EbrSegmentDomain (epoch pin per operation). The HP domain reclaims into a
// FreePool, so steady-state traffic that oscillates across a segment
// boundary reuses pooled segments instead of allocating — allocation-free
// once the pool is primed, and total memory is bounded by the historical
// maximum of live segments.
#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>

#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"
#include "evq/common/op_stats.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/hazard/hp_domain.hpp"
#include "evq/inject/inject.hpp"
#include "evq/reclaim/epoch.hpp"
#include "evq/reclaim/free_pool.hpp"
#include "evq/telemetry/op_event.hpp"
#include "evq/telemetry/registry.hpp"
#include "evq/trace/trace.hpp"

namespace evq {

/// What a ring must provide to serve as a segment: the uniform pointer-queue
/// protocol plus the seal triple — close() (permanent push-side shutdown,
/// idempotent, returns whether this call sealed), closed(), and a quiescent
/// reopen() so the segment free pool can recycle it.
template <typename Q>
concept SealableRing = ConcurrentPtrQueue<Q> && requires(Q& q) {
  { q.close() } -> std::same_as<bool>;
  { q.closed() } -> std::same_as<bool>;
  { q.reopen() };
};

namespace seg_detail {

inline constexpr char kSegPushEnter[] = "core.seg.push.enter";
// After the tail segment is hazard-protected, before its ring is tried: a
// thread parked here across a seal+drain+retire of that segment is exactly
// the use-after-retire race the reclamation domain must absorb.
inline constexpr char kSegPushProtected[] = "core.seg.push.protected";
inline constexpr char kSegPushAppend[] = "core.seg.push.append";
inline constexpr char kSegPopEnter[] = "core.seg.pop.enter";
inline constexpr char kSegPopRetire[] = "core.seg.pop.retire";

/// One link of the chain. `free_next` is the FreePool hook (live only while
/// the segment is pooled); `next` is monotone null -> successor and is only
/// reset by reopen() on a pool-recycled, thread-private segment.
template <typename Ring>
struct Segment {
  Segment(std::size_t capacity, std::string_view name) : ring(capacity, name) {}

  Ring ring;
  std::atomic<Segment*> next{nullptr};
  Segment* free_next = nullptr;
};

}  // namespace seg_detail

/// Hazard-pointer segment reclamation (the default): 2 slots per record (the
/// hand-over-hand walks need both; queue operations use only slot 0),
/// retired segments routed through the domain's reclaimer (the segmented
/// queue supplies its free pool). Operations keep slot 0 published across
/// calls — the resident-slot fast path (protect_resident) makes the steady
/// path fence-free, at the price of each idle handle holding its last
/// segment on the retired list. A stalled reader blocks only the segments
/// it actually holds.
template <typename Node>
class HpSegmentDomain {
 public:
  using Rec = typename hazard::HpDomain<Node, 2>::Record;

  /// Retired nodes reach the reclaimer (here: the segment pool) instead of
  /// `delete`, so the segmented queue can recycle them.
  static constexpr bool kPoolable = true;

  explicit HpSegmentDomain(std::function<void(Node*)> reclaimer)
      : domain_(hazard::ScanMode::kUnsorted, /*threshold_multiplier=*/4, std::move(reclaimer)) {}

  [[nodiscard]] Rec* acquire() { return domain_.acquire(); }
  void release(Rec* rec) noexcept { domain_.release(rec); }

  /// Hazard pointers need no per-operation bracket. Unpin deliberately
  /// leaves the slots standing: slot 0 is the RESIDENT slot (see
  /// protect_resident — keeping it published is what makes the next
  /// operation's fast path sound), and queue operations never publish
  /// slot 1 (only the hand-over-hand walks do, and those release() their
  /// temporary record, which clears everything).
  void pin(Rec*) noexcept {}
  void unpin(Rec*) noexcept {}

  Node* protect(Rec* rec, std::size_t slot, const std::atomic<Node*>& src) noexcept {
    return domain_.protect(rec, slot, src);
  }

  /// Protect with a cross-operation cache (the LCRQ steady-path trick): when
  /// `slot` still holds exactly the pointer `src` currently carries, the
  /// seq_cst publish from the earlier protect never stopped standing, so the
  /// node was never reclaimed in between (a scan cannot free a published
  /// node, and pool reuse only happens after a free) — it is the same live
  /// object, still protected, and the fence-free fast path may return it.
  /// Only sound for a slot the caller keeps published across operations and
  /// only against sources of the owning queue.
  Node* protect_resident(Rec* rec, std::size_t slot, const std::atomic<Node*>& src) noexcept {
    Node* ptr = src.load(std::memory_order_acquire);
    if (rec->hp[slot].load(std::memory_order_relaxed) == ptr) {
      return ptr;
    }
    return domain_.protect(rec, slot, src);
  }

  void retire(Rec* rec, Node* node) { domain_.retire(rec, node); }

  void set_metrics(telemetry::QueueMetrics* metrics, std::uint32_t trace_queue) noexcept {
    domain_.set_metrics(metrics, trace_queue);
  }

  [[nodiscard]] hazard::HpDomain<Node, 2>& domain() noexcept { return domain_; }

 private:
  hazard::HpDomain<Node, 2> domain_;
};

/// Epoch-based segment reclamation: one pin per queue operation instead of a
/// protect loop per segment — cheaper walks, but a stalled pinned thread
/// stops ALL segment reclamation (EBR's documented weakness, here on
/// purpose: the segmented torture tests exercise exactly that trade-off).
/// EpochDomain frees with `delete`, so this domain cannot feed the segment
/// pool (kPoolable = false) and every appended segment is a fresh
/// allocation.
template <typename Node>
class EbrSegmentDomain {
 public:
  using Rec = typename reclaim::EpochDomain<Node>::Record;

  static constexpr bool kPoolable = false;

  explicit EbrSegmentDomain(std::function<void(Node*)> /*reclaimer*/) {}

  [[nodiscard]] Rec* acquire() { return domain_.acquire(); }
  void release(Rec* rec) noexcept { domain_.release(rec); }

  void pin(Rec* rec) noexcept { domain_.pin(rec); }
  void unpin(Rec* rec) noexcept { domain_.unpin(rec); }

  /// While pinned, any pointer reachable from the queue is safe to follow —
  /// a plain acquire load suffices (and "resident" caching is therefore
  /// already free).
  Node* protect(Rec*, std::size_t, const std::atomic<Node*>& src) noexcept {
    return src.load(std::memory_order_acquire);
  }
  Node* protect_resident(Rec*, std::size_t, const std::atomic<Node*>& src) noexcept {
    return src.load(std::memory_order_acquire);
  }

  void retire(Rec* rec, Node* node) { domain_.retire(rec, node); }

  void set_metrics(telemetry::QueueMetrics* metrics, std::uint32_t trace_queue) noexcept {
    domain_.set_metrics(metrics, trace_queue);
  }

  [[nodiscard]] reclaim::EpochDomain<Node>& domain() noexcept { return domain_; }

 private:
  reclaim::EpochDomain<Node> domain_;
};

/// The unbounded composition. `Ring` is a concrete sealable ring type (e.g.
/// CasArrayQueue<T> or ScqQueue<T>); the constructor's capacity argument is
/// the PER-SEGMENT capacity, and the queue as a whole has none — deliberately
/// no capacity() member, so the BoundedPtrQueue concept (and every gate built
/// on it: conformance full-checks, fuzz model capacity, sharded capacity
/// summing) classifies it as unbounded.
///
/// Telemetry: the facade registers under `name` (op outcomes, seg_seal/
/// seg_alloc/seg_retire, HP and pool rows, and a depth gauge that walks the
/// live chain); every segment ring registers under `name + "/seg"`, one
/// shared entry whose per-instance depth gauges the registry sums — the
/// facade gauge and the /seg entry's gauge agree by construction.
template <typename Ring, template <typename> typename DomainTmpl = HpSegmentDomain>
  requires SealableRing<Ring>
class SegmentedQueue {
 public:
  using value_type = typename Ring::value_type;
  using pointer = value_type*;
  using Seg = seg_detail::Segment<Ring>;
  using Domain = DomainTmpl<Seg>;
  using Rec = typename Domain::Rec;

  /// Per-thread reclamation record, RAII-held. Move-only; must not outlive
  /// the queue.
  class Handle {
   public:
    Handle(Handle&& other) noexcept : domain_(other.domain_), rec_(other.rec_) {
      other.domain_ = nullptr;
      other.rec_ = nullptr;
    }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        reset();
        domain_ = other.domain_;
        rec_ = other.rec_;
        other.domain_ = nullptr;
        other.rec_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { reset(); }

   private:
    friend class SegmentedQueue;
    explicit Handle(Domain& domain) : domain_(&domain), rec_(domain.acquire()) {}

    void reset() noexcept {
      if (domain_ != nullptr) {
        domain_->release(rec_);
        domain_ = nullptr;
        rec_ = nullptr;
      }
    }

    Domain* domain_;
    Rec* rec_;
  };

  /// `segment_capacity` sizes each ring (rounded up by the ring itself);
  /// the queue grows by whole segments past it.
  explicit SegmentedQueue(std::size_t segment_capacity, std::string_view name = "seg")
      : segment_capacity_(segment_capacity),
        seg_name_(std::string(name) + "/seg"),
        domain_(make_reclaimer()),
        telemetry_(name) {
    domain_.set_metrics(&telemetry_.metrics(), telemetry_.queue_id());
    pool_.set_metrics(&telemetry_.metrics(), telemetry_.queue_id());
    Seg* first = new Seg(segment_capacity_, seg_name_);
    head_.value.store(first, std::memory_order_relaxed);
    tail_.value.store(first, std::memory_order_relaxed);
    telemetry_.set_depth_gauge([this] { return depth_estimate(); });
  }

  SegmentedQueue(const SegmentedQueue&) = delete;
  SegmentedQueue& operator=(const SegmentedQueue&) = delete;

  /// Quiescent destruction: the live chain is deleted here; segments retired
  /// earlier are freed by the domain (into the pool, which the member order
  /// destroys last) or the epoch sweep.
  ~SegmentedQueue() {
    Seg* seg = head_.value.load(std::memory_order_acquire);
    while (seg != nullptr) {
      Seg* next = seg->next.load(std::memory_order_relaxed);
      delete seg;
      seg = next;
    }
  }

  [[nodiscard]] Handle handle() { return Handle{domain_}; }

  /// Never reports full: a full (or sealed) tail segment is sealed and a
  /// fresh segment appended. Returns false only on allocation failure, which
  /// `new` turns into an exception instead — i.e. never.
  bool try_push(Handle& h, value_type* node) {
    trace::OpProbe probe(telemetry_.queue_id(), trace::OpProbe::OpKind::kPush);
    std::uint32_t retries = 0;
    EVQ_INJECT_POINT(seg_detail::kSegPushEnter);
    domain_.pin(h.rec_);
    for (;;) {
      probe.begin_phase(trace::Phase::kIndexLoad);
      // Slot 0 is the resident slot: on the steady path (same tail segment
      // as the previous operation) the standing publication makes this two
      // plain loads, no fence. The successor needs no hazard at all —
      // operations never dereference it; `next` links are monotone and the
      // value is only ever a CAS operand (help-swing below, head swing in
      // try_pop), so a stale read just makes that CAS fail.
      Seg* seg = domain_.protect_resident(h.rec_, 0, tail_.value);
      Seg* next = seg->next.load(std::memory_order_acquire);
      if (next != nullptr) {
        // tail_ lags a completed append — help it forward and re-resolve.
        const bool ok =
            tail_.value.compare_exchange_strong(seg, next, std::memory_order_seq_cst);
        stats::on_cas(ok);
        ++retries;
        continue;
      }
      EVQ_INJECT_POINT(seg_detail::kSegPushProtected);
      probe.begin_phase(trace::Phase::kSlotAttempt);
      {
        typename Ring::Handle rh = seg->ring.handle();
        if (seg->ring.try_push(rh, node)) {
          return finish_push(h, probe, retries);
        }
      }
      // Full or already sealed: seal (idempotent) and append. The node goes
      // into the fresh segment BEFORE the link CAS, so a won race publishes
      // node and segment atomically — the push linearizes at the CAS and
      // cannot fail.
      probe.begin_phase(trace::Phase::kSegAppend);
      if (seg->ring.close()) {
        telemetry_.metrics().inc(telemetry::Counter::kSegSeal);
      }
      Seg* fresh = alloc_segment();
      {
        typename Ring::Handle fh = fresh->ring.handle();
        const bool seeded = fresh->ring.try_push(fh, node);
        EVQ_CHECK(seeded, "fresh segment refused its first node");
      }
      EVQ_INJECT_POINT(seg_detail::kSegPushAppend);
      Seg* expected = nullptr;
      if (seg->next.compare_exchange_strong(expected, fresh, std::memory_order_seq_cst)) {
        stats::on_cas(true);
        telemetry_.metrics().inc(telemetry::Counter::kSegAlloc);
        const bool moved =
            tail_.value.compare_exchange_strong(seg, fresh, std::memory_order_seq_cst);
        stats::on_cas(moved);
        return finish_push(h, probe, retries);
      }
      stats::on_cas(false);
      // Lost the append race: reclaim our private segment (taking the node
      // back first) and retry through the winner's.
      {
        typename Ring::Handle fh = fresh->ring.handle();
        value_type* back = fresh->ring.try_pop(fh);
        EVQ_CHECK(back == node, "private segment lost its seed node");
      }
      recycle_private(fresh);
      const bool moved =
          tail_.value.compare_exchange_strong(seg, expected, std::memory_order_seq_cst);
      stats::on_cas(moved);
      telemetry::count_ring_event(telemetry_, telemetry::Counter::kBackoffRound);
      ++retries;
    }
  }

  /// nullptr iff the queue was empty at some instant during the call (only
  /// ever reported off the LAST segment — a drained sealed segment with a
  /// successor is unlinked and retired instead).
  value_type* try_pop(Handle& h) {
    trace::OpProbe probe(telemetry_.queue_id(), trace::OpProbe::OpKind::kPop);
    std::uint32_t retries = 0;
    EVQ_INJECT_POINT(seg_detail::kSegPopEnter);
    domain_.pin(h.rec_);
    for (;;) {
      probe.begin_phase(trace::Phase::kIndexLoad);
      Seg* seg = domain_.protect_resident(h.rec_, 0, head_.value);
      probe.begin_phase(trace::Phase::kSlotAttempt);
      {
        typename Ring::Handle rh = seg->ring.handle();
        if (value_type* node = seg->ring.try_pop(rh)) {
          return finish_pop(h, probe, retries, node);
        }
      }
      // No hazard for the successor (same argument as try_push: never
      // dereferenced, only the desired value of the head-swing CAS, and a
      // successful CAS proves `seg` was still linked — so `next` was too).
      Seg* next = seg->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        domain_.unpin(h.rec_);
        telemetry::count_ring_event(telemetry_, telemetry::Counter::kPopEmpty);
        telemetry::record_trace(telemetry_.queue_id(), telemetry::TraceOp::kPopEmpty, 0, retries);
        probe.finish(trace::OpCode::kPopEmpty, 0, retries);
        return nullptr;
      }
      // LSCQ finalize-then-recheck: a linked successor implies the segment
      // is sealed (pushers seal before appending), but this close() is NOT
      // redundant — for SCQ segments it re-arms the dequeue threshold
      // (LSCQ's `threshold := 3n-1` store before every re-probe), making the
      // probe below full-strength: it claims head tickets up to the frozen
      // tail, so it either finds a pre-seal straggler's item or permanently
      // invalidates the straggler's entry. Only then is a second ⊥ final;
      // a fast-path ⊥ off a stale negative threshold would not advance Head
      // and could retire a segment a straggler later installs into.
      seg->ring.close();
      {
        typename Ring::Handle rh = seg->ring.handle();
        if (value_type* node = seg->ring.try_pop(rh)) {
          return finish_pop(h, probe, retries, node);
        }
      }
      probe.begin_phase(trace::Phase::kSegRetire);
      EVQ_INJECT_POINT(seg_detail::kSegPopRetire);
      if (head_.value.compare_exchange_strong(seg, next, std::memory_order_seq_cst)) {
        stats::on_cas(true);
        domain_.retire(h.rec_, seg);
        telemetry_.metrics().inc(telemetry::Counter::kSegRetire);
      } else {
        stats::on_cas(false);
      }
      telemetry::count_ring_event(telemetry_, telemetry::Counter::kBackoffRound);
      ++retries;
    }
  }

  std::size_t try_push_n(Handle& h, value_type* const* nodes, std::size_t count) {
    std::size_t done = 0;
    while (done < count && try_push(h, nodes[done])) {
      ++done;
    }
    return done;
  }

  std::size_t try_pop_n(Handle& h, value_type** out, std::size_t count) {
    std::size_t done = 0;
    while (done < count) {
      value_type* node = try_pop(h);
      if (node == nullptr) {
        break;
      }
      out[done++] = node;
    }
    return done;
  }

  /// Per-segment ring capacity. NOT capacity(): the queue is unbounded and
  /// must not satisfy BoundedPtrQueue.
  [[nodiscard]] std::size_t segment_capacity() const noexcept { return segment_capacity_; }

  /// Occupancy estimate across live segments (the sharded facade and the
  /// depth gauge both read this).
  [[nodiscard]] std::size_t size_estimate() { return static_cast<std::size_t>(depth_estimate()); }

  /// Live segments on the chain (head..tail inclusive; exact when
  /// quiescent). Bounded-memory checks are written against this.
  [[nodiscard]] std::size_t segment_count() {
    Rec* rec = domain_.acquire();
    domain_.pin(rec);
    std::size_t n = 0;
    std::size_t slot = 0;
    Seg* seg = domain_.protect(rec, slot, head_.value);
    while (seg != nullptr) {
      ++n;
      slot ^= 1;
      seg = domain_.protect(rec, slot, seg->next);
    }
    domain_.unpin(rec);
    domain_.release(rec);
    return n;
  }

  /// Sum of the live segments' size estimates (the facade depth gauge).
  [[nodiscard]] std::uint64_t depth_estimate() {
    Rec* rec = domain_.acquire();
    domain_.pin(rec);
    std::uint64_t sum = 0;
    std::size_t slot = 0;
    Seg* seg = domain_.protect(rec, slot, head_.value);
    while (seg != nullptr) {
      sum += static_cast<std::uint64_t>(seg->ring.size_estimate());
      slot ^= 1;
      seg = domain_.protect(rec, slot, seg->next);
    }
    domain_.unpin(rec);
    domain_.release(rec);
    return sum;
  }

  [[nodiscard]] telemetry::QueueMetrics& metrics() noexcept { return telemetry_.metrics(); }
  [[nodiscard]] const std::string& telemetry_name() const noexcept { return telemetry_.name(); }

  /// The reclamation domain and segment pool, exposed for the retirement
  /// race tests and memory-bound assertions.
  [[nodiscard]] Domain& reclaim_domain() noexcept { return domain_; }
  [[nodiscard]] reclaim::FreePool<Seg>& segment_pool() noexcept { return pool_; }

 private:

  bool finish_push(Handle& h, trace::OpProbe& probe, std::uint32_t retries) noexcept {
    domain_.unpin(h.rec_);
    telemetry::count_ring_event(telemetry_, telemetry::Counter::kPushOk);
    telemetry::record_trace(telemetry_.queue_id(), telemetry::TraceOp::kPushOk, 0, retries);
    probe.finish(trace::OpCode::kPushOk, 0, retries);
    return true;
  }

  value_type* finish_pop(Handle& h, trace::OpProbe& probe, std::uint32_t retries,
                         value_type* node) noexcept {
    domain_.unpin(h.rec_);
    telemetry::count_ring_event(telemetry_, telemetry::Counter::kPopOk);
    telemetry::record_trace(telemetry_.queue_id(), telemetry::TraceOp::kPopOk, 0, retries);
    probe.finish(trace::OpCode::kPopOk, 0, retries);
    return node;
  }

  /// A segment private to the calling thread: pooled (reopened here — the
  /// pool hands nodes back as-is) or fresh.
  [[nodiscard]] Seg* alloc_segment() {
    if constexpr (Domain::kPoolable) {
      if (Seg* seg = pool_.take()) {
        seg->next.store(nullptr, std::memory_order_relaxed);
        seg->ring.reopen();
        return seg;
      }
    }
    return pool_.make(segment_capacity_, seg_name_);
  }

  /// Returns a never-published segment. Straight back to the pool (no SMR
  /// lap needed: no other thread ever saw it).
  void recycle_private(Seg* seg) {
    if constexpr (Domain::kPoolable) {
      pool_.put(seg);
    } else {
      delete seg;
    }
  }

  [[nodiscard]] std::function<void(Seg*)> make_reclaimer() {
    if constexpr (Domain::kPoolable) {
      return [this](Seg* seg) { pool_.put(seg); };
    } else {
      return {};
    }
  }

  const std::size_t segment_capacity_;
  const std::string seg_name_;
  // pool_ before domain_: the domain's quiescent destructor sweep routes
  // surviving retired segments through the reclaimer into pool_, so pool_
  // must be destroyed after domain_ (it deletes everything it holds). The
  // QueueMetrics both point at live in the process-lifetime registry entry,
  // so running after ~telemetry_ is safe.
  reclaim::FreePool<Seg> pool_;
  Domain domain_;
  CachePadded<std::atomic<Seg*>> head_{};
  CachePadded<std::atomic<Seg*>> tail_{};
  // LAST member: destroyed first, clearing the depth gauge (which walks the
  // segment chain through `this`) while chain and domain still exist.
  telemetry::ScopedQueueMetrics telemetry_;
};

}  // namespace evq
