// Flat-combining facade over a batch-capable lock-free ring (DESIGN.md §14).
//
// The ring engines fight contention by retrying: every loser of a CAS/SC
// race re-runs the protocol, so past the core count the shared Head/Tail
// lines ping-pong and throughput collapses (the Fig. 6 cliffs). The
// combining idiom — SimQueue / flat combining, and the helping-record
// vocabulary of wCQ (arXiv:2201.02179) — inverts that: a contended thread
// PUBLISHES its operation into a per-thread announce record and one winner
// (the combiner) applies everyone's pending work in a batch, turning N
// cache-line brawls into one pass over the announce array plus N amortized
// ring operations through the batch entry points (try_push_n/try_pop_n,
// which seed each other's index reads — see ring_engine.hpp).
//
// Design:
//  * Announce records are cache-line-striped: one Record per line, claimed
//    by handle slot. The record array is statically PARTITIONED between the
//    two claiming disciplines so they can never meet on one record: the
//    first kExclusiveRecords handles own records [0, kExclusiveRecords)
//    exclusively (publish = plain node store + one release store); every
//    later handle maps round-robin onto the remaining shared records and
//    claims with a CAS, falling back to a direct ring operation when the
//    record is busy — the ring is itself lock-free and linearizable, so a
//    direct op is always correct. (Without the partition an exclusive
//    owner's plain publish could race a sharer's CAS claim on the same
//    record, and one combined result would be handed to two waiters.)
//  * The combiner lock is a single word acquired by CAS. The winner makes
//    ONE bounded pass over the records (≤ kRecordCount ops per
//    acquisition), draining pending pushes through try_push_n and pending
//    pops through try_pop_n, then releases. Losers spin-then-yield on their
//    own record with the existing Backoff; every loser iteration also
//    re-tries the lock, so an unserved announcer becomes the next combiner
//    as soon as the lock frees.
//  * Progress: a pending (unclaimed) announce can always be WITHDRAWN by
//    its owner (CAS pending -> idle) and applied directly to the lock-free
//    ring, so a stalled combiner cannot block ops it has not claimed; the
//    only wait that cannot be escaped is the short claimed->done window in
//    which a combiner is mid-application of the op on the ring. See
//    DESIGN.md §14 for the full bounded-help argument.
//  * Adaptive engagement: combining costs two RMWs + a record scan per op,
//    which would be ~20-30% overhead on an uncontended 50ns ring op. Ops
//    therefore run DIRECTLY on the ring while the queue believes it is
//    uncontended; every handle's kProbeEvery-th op takes the announce path
//    as a probe, and any observed collision (busy record, contended lock,
//    a combine that served more than its own op) flips the queue into
//    combining mode. A combiner that has served only itself for
//    kSoloStreakLimit consecutive passes flips back. The heuristic is
//    performance-only — both paths are linearizable at all times — and is
//    what keeps the single-thread overhead within the ≤5% CI gate.
//
// Telemetry: comb_submit (announce-path ops), comb_combine (combining
// passes), comb_batch_n (ops applied by combiners; batch_n / combine is the
// mean batch size). Trace: when the combiner applies a PEER's op it records
// a help span with HelpTarget::kCombiner keyed by a per-queue serial, and
// the served thread drops the matching helped marker — the exporter joins
// the two into combiner→helped flow arrows (visible in the pairwise
// scenario with --trace).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

#include "evq/common/backoff.hpp"
#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/telemetry/registry.hpp"
#include "evq/trace/trace.hpp"

namespace evq {

template <typename Q>
  requires ConcurrentPtrQueue<Q> && BatchPtrQueue<Q>
class CombiningQueue {
 public:
  using value_type = typename Q::value_type;
  using pointer = value_type*;
  using T = value_type;

  /// One announce record per handle slot. How many is a latency/footprint
  /// trade: the combiner's bounded pass touches every record, so the array
  /// must stay small enough to scan in the shadow of one ring operation.
  /// 16 lines = 1 KiB.
  static constexpr std::size_t kRecordCount = 16;
  /// Static partition of the record array between the two claiming
  /// disciplines. Records [0, kExclusiveRecords) belong to the first
  /// kExclusiveRecords handles one-to-one (plain-store publish, no claim
  /// CAS); records [kExclusiveRecords, kRecordCount) are shared round-robin
  /// by every later handle and claimed by CAS. The ranges are disjoint, so
  /// an exclusive owner's plain publish can never race a sharer's claim —
  /// the partition is a correctness requirement, not a tuning knob.
  static constexpr std::size_t kExclusiveRecords = kRecordCount / 2;
  static constexpr std::size_t kSharedRecords = kRecordCount - kExclusiveRecords;
  /// Every handle's kProbeEvery-th op takes the announce path while the
  /// queue is in direct mode, so contention is (re)discovered without
  /// taxing the uncontended fast path.
  static constexpr std::uint32_t kProbeEvery = 64;
  /// Consecutive self-only combining passes before falling back to direct
  /// mode.
  static constexpr std::uint32_t kSoloStreakLimit = 64;

  class Handle {
   public:
    explicit Handle(typename Q::Handle inner, std::uint32_t slot)
        : inner_(std::move(inner)), slot_(slot) {}

   private:
    friend class CombiningQueue;
    typename Q::Handle inner_;
    std::uint32_t slot_;
    std::uint32_t probe_clock_ = 0;
  };

  /// `min_capacity` is forwarded to the inner ring (which rounds to a power
  /// of two); `name` is this facade's telemetry name, the inner ring
  /// registers under "<name>/ring".
  explicit CombiningQueue(std::size_t min_capacity, std::string_view name = "comb")
      : CombiningQueue(min_capacity, name,
                       std::bool_constant<std::is_constructible_v<Q, std::size_t, std::string_view>>{}) {}

  CombiningQueue(const CombiningQueue&) = delete;
  CombiningQueue& operator=(const CombiningQueue&) = delete;

  [[nodiscard]] Handle handle() {
    return Handle{inner_.handle(), next_slot_.fetch_add(1, std::memory_order_relaxed)};
  }

  bool try_push(Handle& h, T* node) noexcept {
    if (!engaged(h)) {
      return inner_.try_push(h.inner_, node);
    }
    return submit_push(h, node);
  }

  T* try_pop(Handle& h) noexcept {
    if (!engaged(h)) {
      return inner_.try_pop(h.inner_);
    }
    return submit_pop(h);
  }

  /// Batch entry points (maximal-prefix semantics, like the ring's). In
  /// direct mode these forward to the ring's amortized batch ops — the
  /// composition the combiner itself relies on; in combining mode each
  /// element is its own announce (the cross-thread batching the combiner
  /// performs dwarfs the per-call hint saving).
  std::size_t try_push_n(Handle& h, T* const* nodes, std::size_t count) noexcept {
    if (!engaged(h)) {
      return inner_.try_push_n(h.inner_, nodes, count);
    }
    std::size_t done = 0;
    while (done < count && submit_push(h, nodes[done])) {
      ++done;
    }
    return done;
  }

  std::size_t try_pop_n(Handle& h, T** out, std::size_t count) noexcept {
    if (!engaged(h)) {
      return inner_.try_pop_n(h.inner_, out, count);
    }
    std::size_t done = 0;
    while (done < count) {
      T* node = submit_pop(h);
      if (node == nullptr) {
        break;
      }
      out[done++] = node;
    }
    return done;
  }

  [[nodiscard]] std::size_t capacity() const noexcept
    requires BoundedPtrQueue<Q>
  {
    return inner_.capacity();
  }

  [[nodiscard]] std::size_t size_estimate() noexcept {
    if constexpr (requires { inner_.size_estimate(); }) {
      return inner_.size_estimate();
    } else {
      return 0;
    }
  }

  /// True while the adaptive heuristic routes ops through announce records
  /// (exposed for tests; racy read, like the heuristic itself).
  [[nodiscard]] bool combining_mode() const noexcept {
    return state_.mode.load(std::memory_order_relaxed) != 0;
  }

  [[nodiscard]] Q& underlying() noexcept { return inner_; }
  [[nodiscard]] telemetry::QueueMetrics& metrics() noexcept { return telemetry_.metrics(); }

 private:
  // --- announce-record protocol words ------------------------------------
  // idle -> setup (claim, shared slots only) -> pending -> taken -> done ->
  // idle. Owners may withdraw pending -> idle; only a combiner moves
  // pending -> taken, and only it completes taken -> done.
  static constexpr std::uint64_t kIdle = 0;
  static constexpr std::uint64_t kSetup = 1;
  static constexpr std::uint64_t kPendingPush = 2;
  static constexpr std::uint64_t kPendingPop = 3;
  static constexpr std::uint64_t kTakenPush = 4;
  static constexpr std::uint64_t kTakenPop = 5;
  static constexpr std::uint64_t kDonePushOk = 6;
  static constexpr std::uint64_t kDonePushFull = 7;
  static constexpr std::uint64_t kDonePopOk = 8;
  static constexpr std::uint64_t kDonePopEmpty = 9;

  static constexpr bool is_done(std::uint64_t w) noexcept { return w >= kDonePushOk; }

  struct alignas(kCacheLineSize) Record {
    std::atomic<std::uint64_t> word{kIdle};
    // Plain fields, ordered by the word's release/acquire transitions: the
    // publisher writes node before releasing pending; the combiner writes
    // node (pop result) and serial before releasing done.
    T* node = nullptr;
    std::uint64_t serial = 0;
  };

  struct alignas(kCacheLineSize) CombinerState {
    std::atomic<std::uint32_t> lock{0};
    std::atomic<std::uint32_t> mode{0};  // 0 = direct, 1 = combining
    // Guarded by `lock` (plain fields; successive holders are ordered by
    // the lock's acquire/release pair).
    std::uint64_t serial = 0;
    std::uint32_t solo_streak = 0;
  };

  CombiningQueue(std::size_t min_capacity, std::string_view name, std::true_type)
      : inner_(min_capacity, std::string(name) + "/ring"), telemetry_(name) {
    init();
  }
  CombiningQueue(std::size_t min_capacity, std::string_view name, std::false_type)
      : inner_(min_capacity), telemetry_(name) {
    init();
  }

  void init() {
    telemetry_.set_depth_gauge([this] { return static_cast<std::uint64_t>(size_estimate()); });
  }

  /// The per-op routing decision: announce when the queue believes it is
  /// contended, probe the announce path every kProbeEvery-th op otherwise.
  /// One relaxed load + a handle-local counter on the direct fast path.
  [[nodiscard]] bool engaged(Handle& h) noexcept {
    if (state_.mode.load(std::memory_order_relaxed) != 0) {
      return true;
    }
    if (++h.probe_clock_ >= kProbeEvery) {
      h.probe_clock_ = 0;
      return true;
    }
    return false;
  }

  [[nodiscard]] Record& record_of(const Handle& h) noexcept {
    if (owns_exclusively(h)) {
      return records_[h.slot_];
    }
    return records_[kExclusiveRecords + (h.slot_ - kExclusiveRecords) % kSharedRecords];
  }

  [[nodiscard]] bool owns_exclusively(const Handle& h) const noexcept {
    return h.slot_ < kExclusiveRecords;
  }

  [[nodiscard]] bool try_acquire_lock() noexcept {
    return state_.lock.load(std::memory_order_relaxed) == 0 &&
           state_.lock.exchange(1, std::memory_order_acquire) == 0;
  }

  void release_lock() noexcept { state_.lock.store(0, std::memory_order_release); }

  void enter_combining_mode() noexcept {
    state_.mode.store(1, std::memory_order_relaxed);
  }

  /// Publishes the op into this handle's record. Returns nullptr when the
  /// record is busy (shared slot in use by another thread) — the caller
  /// falls back to a direct ring op.
  Record* announce(Handle& h, std::uint64_t pending_word, T* node) noexcept {
    Record& r = record_of(h);
    if (owns_exclusively(h)) {
      EVQ_DCHECK(r.word.load(std::memory_order_relaxed) == kIdle,
                 "exclusive announce record reused while in flight");
    } else {
      std::uint64_t expected = kIdle;
      if (!r.word.compare_exchange_strong(expected, kSetup, std::memory_order_acquire)) {
        // Another thread shares this record and is mid-op: observed
        // contention, but no announce possible — go direct.
        enter_combining_mode();
        return nullptr;
      }
    }
    r.node = node;
    r.word.store(pending_word, std::memory_order_release);
    return &r;
  }

  /// Waits for `r` to complete, combining or withdrawing as opportunities
  /// arise. Returns the done-state word, or kIdle when the op was
  /// withdrawn (caller applies it directly).
  std::uint64_t await(Handle& h, Record& r, std::uint64_t pending_word,
                      trace::OpProbe& probe) noexcept {
    Backoff spin;
    bool lock_missed = false;
    bool self_combined = false;
    for (;;) {
      const std::uint64_t w = r.word.load(std::memory_order_acquire);
      if (is_done(w)) {
        if (lock_missed) {
          enter_combining_mode();
        }
        if (!self_combined) {
          probe.helped(r.serial, trace::HelpTarget::kCombiner);
        }
        return w;
      }
      if (try_acquire_lock()) {
        combine(h, &r, probe);
        release_lock();
        self_combined = true;
        continue;  // combine() serves every pending record, ours included
      }
      lock_missed = true;
      probe.begin_phase(trace::Phase::kBackoff);
      spin.pause();
      if (spin.is_yielding()) {
        // The combiner is taking long (parked, preempted, or stalled
        // pre-claim): withdraw and run the op on the lock-free ring
        // directly. Fails only if a combiner already claimed the record,
        // in which case its completion is imminent — keep waiting.
        // acq_rel: the release half publishes our plain `node` write to
        // whoever claims this record next (a shared-slot CAS claimer
        // synchronizes on this store, just as it does on the release kIdle
        // stores in submit_push/submit_pop).
        std::uint64_t expected = pending_word;
        if (r.word.compare_exchange_strong(expected, kIdle, std::memory_order_acq_rel)) {
          enter_combining_mode();
          return kIdle;
        }
      }
    }
  }

  bool submit_push(Handle& h, T* node) noexcept {
    telemetry_.inc(telemetry::Counter::kCombSubmit);
    trace::OpProbe probe(telemetry_.queue_id(), trace::OpProbe::OpKind::kPush);
    Record* r = announce(h, kPendingPush, node);
    if (r == nullptr) {
      return inner_.try_push(h.inner_, node);
    }
    const std::uint64_t w = await(h, *r, kPendingPush, probe);
    if (w == kIdle) {
      return inner_.try_push(h.inner_, node);  // withdrawn
    }
    const std::uint64_t serial = r->serial;  // read BEFORE releasing the record
    r->word.store(kIdle, std::memory_order_release);
    probe.finish(w == kDonePushOk ? trace::OpCode::kPushOk : trace::OpCode::kPushFull,
                 serial, 0);
    return w == kDonePushOk;
  }

  T* submit_pop(Handle& h) noexcept {
    telemetry_.inc(telemetry::Counter::kCombSubmit);
    trace::OpProbe probe(telemetry_.queue_id(), trace::OpProbe::OpKind::kPop);
    Record* r = announce(h, kPendingPop, nullptr);
    if (r == nullptr) {
      return inner_.try_pop(h.inner_);
    }
    const std::uint64_t w = await(h, *r, kPendingPop, probe);
    if (w == kIdle) {
      return inner_.try_pop(h.inner_);  // withdrawn
    }
    T* node = w == kDonePopOk ? r->node : nullptr;
    const std::uint64_t serial = r->serial;
    r->word.store(kIdle, std::memory_order_release);
    probe.finish(node != nullptr ? trace::OpCode::kPopOk : trace::OpCode::kPopEmpty, serial, 0);
    return node;
  }

  /// One bounded combining pass (holding the lock): claim every pending
  /// record, apply pushes and pops through the ring's batch entry points,
  /// publish results. At most kRecordCount ops per acquisition — the bound
  /// that keeps a single acquisition's work finite.
  void combine(Handle& h, Record* self, trace::OpProbe& probe) noexcept {
    telemetry_.inc(telemetry::Counter::kCombCombine);
    T* push_nodes[kRecordCount];
    Record* push_recs[kRecordCount];
    Record* pop_recs[kRecordCount];
    std::size_t pushes = 0;
    std::size_t pops = 0;
    for (Record& r : records_) {
      std::uint64_t w = r.word.load(std::memory_order_acquire);
      if (w == kPendingPush) {
        if (r.word.compare_exchange_strong(w, kTakenPush, std::memory_order_acquire)) {
          push_recs[pushes] = &r;
          push_nodes[pushes] = r.node;  // read AFTER the claim: no ABA window
          ++pushes;
        }
      } else if (w == kPendingPop) {
        if (r.word.compare_exchange_strong(w, kTakenPop, std::memory_order_acquire)) {
          pop_recs[pops++] = &r;
        }
      }
    }
    if (pushes > 0) {
      const std::size_t landed = inner_.try_push_n(h.inner_, push_nodes, pushes);
      for (std::size_t i = 0; i < pushes; ++i) {
        Record* r = push_recs[i];
        r->serial = ++state_.serial;
        if (r != self) {
          probe.help_advance(r->serial, trace::HelpTarget::kCombiner);
        }
        r->word.store(i < landed ? kDonePushOk : kDonePushFull, std::memory_order_release);
      }
      telemetry_.inc(telemetry::Counter::kCombBatchN, pushes);
    }
    if (pops > 0) {
      T* out[kRecordCount];
      const std::size_t got = inner_.try_pop_n(h.inner_, out, pops);
      for (std::size_t i = 0; i < pops; ++i) {
        Record* r = pop_recs[i];
        r->node = i < got ? out[i] : nullptr;
        r->serial = ++state_.serial;
        if (r != self) {
          probe.help_advance(r->serial, trace::HelpTarget::kCombiner);
        }
        r->word.store(i < got ? kDonePopOk : kDonePopEmpty, std::memory_order_release);
      }
      telemetry_.inc(telemetry::Counter::kCombBatchN, pops);
    }
    // Mode decay: a combiner that keeps finding only its own op is paying
    // the announce tax for no batching — return to direct mode.
    const std::size_t total = pushes + pops;
    if (total > 1) {
      state_.solo_streak = 0;
      enter_combining_mode();
    } else if (state_.mode.load(std::memory_order_relaxed) != 0 &&
               ++state_.solo_streak >= kSoloStreakLimit) {
      state_.solo_streak = 0;
      state_.mode.store(0, std::memory_order_relaxed);
    }
  }

  Q inner_;
  Record records_[kRecordCount];
  CombinerState state_;
  std::atomic<std::uint32_t> next_slot_{0};
  // LAST member on purpose: destroyed first, clearing the depth gauge while
  // the inner queue it reads still exists.
  telemetry::ScopedQueueMetrics telemetry_;
};

}  // namespace evq
