// The uniform queue interface shared by the paper's algorithms and every
// baseline in this repository.
//
// All queues in the paper's study transport *pointers to nodes*: an array
// slot holds either a node pointer or null (= empty slot), and Algorithm 2
// additionally steals the pointer's least significant bit. The common API is
// therefore a pointer queue:
//
//   * try_push(handle, p) — p must be non-null and at least 2-byte aligned;
//     returns false when the queue is full (the paper's FULL_QUEUE).
//   * try_pop(handle)     — returns nullptr when the queue is empty.
//
// Some implementations need per-thread state (Algorithm 2's registered
// LLSCvar, hazard-pointer records); others need none. Every queue exposes a
// Handle type and a handle() factory so generic code treats them uniformly;
// stateless queues use TrivialHandle.
#pragma once

#include <concepts>
#include <cstddef>
#include <type_traits>

namespace evq {

/// Handle for queues without per-thread state.
struct TrivialHandle {};

/// A concurrent MPMC pointer queue with per-thread handles.
template <typename Q>
concept ConcurrentPtrQueue = requires(Q& q, typename Q::Handle& h, typename Q::pointer p) {
  typename Q::value_type;
  typename Q::Handle;
  requires std::same_as<typename Q::pointer, typename Q::value_type*>;
  { q.handle() } -> std::same_as<typename Q::Handle>;
  { q.try_push(h, p) } -> std::same_as<bool>;
  { q.try_pop(h) } -> std::same_as<typename Q::pointer>;
};

/// A pointer queue with a fixed capacity (the array-based family).
template <typename Q>
concept BoundedPtrQueue = ConcurrentPtrQueue<Q> && requires(const Q& q) {
  { q.capacity() } -> std::convertible_to<std::size_t>;
};

/// A pointer queue with native batch operations (the ring-engine family and
/// compositions over it): try_push_n pushes a maximal FIFO prefix and
/// try_pop_n pops a maximal FIFO run, each returning the count transferred.
template <typename Q>
concept BatchPtrQueue =
    ConcurrentPtrQueue<Q> &&
    requires(Q& q, typename Q::Handle& h, typename Q::pointer const* in, typename Q::pointer* out,
             std::size_t n) {
      { q.try_push_n(h, in, n) } -> std::same_as<std::size_t>;
      { q.try_pop_n(h, out, n) } -> std::same_as<std::size_t>;
    };

/// Element types legal for pointer queues: the LSB of a valid element
/// pointer must be unused.
template <typename T>
inline constexpr bool kQueueableV = alignof(T) >= 2;

}  // namespace evq
