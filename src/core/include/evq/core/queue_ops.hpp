// Waiting wrappers over the non-blocking queue API.
//
// The algorithms themselves are non-blocking by design — try_push/try_pop
// return immediately with full/empty indications, exactly as in the paper's
// pseudocode. Applications that want to WAIT for space or data (the
// examples' pipelines, the benchmark workload) all need the same
// spin-with-backoff loop; these helpers centralize it. They spin, then
// yield — they never touch a kernel primitive, so a preempted peer cannot
// deadlock them, only delay them.
#pragma once

#include <cstdint>

#include "evq/common/backoff.hpp"
#include "evq/core/queue_traits.hpp"

namespace evq {

/// Pushes `node`, waiting (bounded spin, then yield) while the queue is
/// full. Returns the number of failed attempts before success.
template <ConcurrentPtrQueue Q>
std::uint64_t push_wait(Q& queue, typename Q::Handle& handle, typename Q::pointer node) {
  std::uint64_t retries = 0;
  Backoff backoff;
  while (!queue.try_push(handle, node)) {
    ++retries;
    backoff.pause();
  }
  return retries;
}

/// Pops the oldest item, waiting while the queue is empty. Never returns
/// nullptr.
template <ConcurrentPtrQueue Q>
typename Q::pointer pop_wait(Q& queue, typename Q::Handle& handle,
                             std::uint64_t* retries_out = nullptr) {
  std::uint64_t retries = 0;
  Backoff backoff;
  for (;;) {
    if (typename Q::pointer node = queue.try_pop(handle)) {
      if (retries_out != nullptr) {
        *retries_out = retries;
      }
      return node;
    }
    ++retries;
    backoff.pause();
  }
}

/// Bounded-attempts variants: give up (returning false / nullptr) after
/// `max_attempts` failed tries — for callers that need forward progress
/// guarantees even if the peer side died.
template <ConcurrentPtrQueue Q>
bool push_wait_bounded(Q& queue, typename Q::Handle& handle, typename Q::pointer node,
                       std::uint64_t max_attempts) {
  Backoff backoff;
  for (std::uint64_t attempt = 0; attempt <= max_attempts; ++attempt) {
    if (queue.try_push(handle, node)) {
      return true;
    }
    backoff.pause();
  }
  return false;
}

template <ConcurrentPtrQueue Q>
typename Q::pointer pop_wait_bounded(Q& queue, typename Q::Handle& handle,
                                     std::uint64_t max_attempts) {
  Backoff backoff;
  for (std::uint64_t attempt = 0; attempt <= max_attempts; ++attempt) {
    if (typename Q::pointer node = queue.try_pop(handle)) {
      return node;
    }
    backoff.pause();
  }
  return nullptr;
}

}  // namespace evq
