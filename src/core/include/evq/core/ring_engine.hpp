// The policy-based circular-array ring engine.
//
// Both paper algorithms (Fig. 3 and Fig. 5) and the array baselines
// (Tsigas-Zhang, Shann et al.) share one skeleton: monotone 64-bit Head/Tail
// counters, a power-of-two slot array, and per operation
//
//   load index -> full/empty check -> reserve slot -> re-validate index ->
//   classify slot -> commit | help-advance the lagging index | retry.
//
// BoundedRing factors that skeleton out once; what distinguishes the
// algorithms is injected through three policies:
//
//   SlotPolicy   — what a slot IS and how it is reserved/committed/abandoned
//                  (LL/SC cell, simulated-LL/SC cell, bare two-null CAS word,
//                  double-width {pointer, counter} word). Also owns per-queue
//                  shared state (Algorithm 2's Registry) and the fault-
//                  injection point names, so a policy-instantiated queue hits
//                  byte-identical injection streams to its hand-written
//                  predecessor.
//   IndexPolicy  — what Head/Tail ARE and how a lagging one is advanced
//                  (LL/SC CounterCell for Fig. 3 E12-E13/E16-E17 vs. plain
//                  `CAS(&Index, i, i+1)` for Fig. 5 and the baselines).
//   ContentionPolicy — what a retry costs, and WHO runs the op. The policy
//                  satisfies the op-submission seam of common/backoff.hpp
//                  (ContentionSeam): at op entry it may take the operation
//                  over entirely (try_delegate — the combining layer's hook),
//                  and on every retry it sees the op kind, retry count and
//                  batch hint (on_retry). NoBackoff reproduces the paper's
//                  published loops (retry immediately); ExpBackoff adds the
//                  bounded spin-then-yield of common/backoff.hpp on every
//                  retry path. Priced by bench_backoff.
//
// The engine also provides batch operations try_push_n/try_pop_n: after a
// successful operation the next slot index is already known (t+1), so a batch
// seeds the next iteration's index read with it and skips one shared-counter
// load per amortized operation. The hint is only ever <= the live index
// (indices are monotone and the hint is an index this thread itself advanced
// past), which keeps both boundary checks conservative: a stale-low tail can
// only under-report occupancy (the signed E6 check and the E10 re-validation
// catch it), and a stale-low head makes the D6 empty check compare equal only
// when the queue is genuinely empty at the moment of the Tail load.
#pragma once

#include <atomic>
#include <bit>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

#include "evq/common/backoff.hpp"
#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"
#include "evq/common/op_stats.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/inject/inject.hpp"
#include "evq/llsc/counter_cell.hpp"
#include "evq/telemetry/flight_recorder.hpp"
#include "evq/telemetry/latency.hpp"
#include "evq/telemetry/op_event.hpp"
#include "evq/telemetry/registry.hpp"
#include "evq/trace/trace.hpp"

namespace evq {

/// What a reservation found in its slot, relative to operation index i:
///   kEmptyFresh — empty and writable for index i's generation (push commits
///                 here; pop treats it as a lagging-Head leftover and helps);
///   kOccupied   — holds a value (pop commits here; push helps the lagging
///                 Tail, Fig. 3 E11-E13);
///   kStaleEmpty — empty but for the WRONG generation (Tsigas-Zhang's
///                 other-null): the index is stale, plain retry.
enum class SlotClass : std::uint8_t { kEmptyFresh, kOccupied, kStaleEmpty };

/// Seal protocol (segmented_queue.hpp): bit 63 of the Tail counter marks a
/// ring CLOSED. The indices are 64-bit monotone counters that in practice
/// never reach 2^63, so the bit is free; setting it (one fetch_or / LL-SC
/// loop) makes every in-flight and future push fail permanently while pops
/// drain the remainder. The load/advance arithmetic below strips the bit
/// (kRingIndexMask) wherever a tail VALUE is needed, and keeps advance()
/// STRICT — a CAS expecting the unsealed raw value — so that once the bit is
/// set the masked tail is frozen forever: no helper or straggler can publish
/// another item, which is what makes "closed and pop saw empty" a FINAL
/// state a segment owner may retire on.
inline constexpr std::uint64_t kRingClosedBit = std::uint64_t{1} << 63;
inline constexpr std::uint64_t kRingIndexMask = kRingClosedBit - 1;

/// The slot-side policy contract. A policy is an instance member of the ring
/// (it may own shared state such as Algorithm 2's Registry) and must provide
/// the six injection-point names of the torture substrate.
template <typename P, typename T>
concept RingSlotPolicy =
    requires(P p, typename P::Slot& slot, typename P::Handle& h, typename P::OpCtx& ctx,
             typename P::Reservation& res, T* node, std::uint64_t index) {
      { p.attach(std::size_t{1}) };
      { p.init_slot(slot, index) };
      { p.make_handle() } -> std::same_as<typename P::Handle>;
      { p.begin_op(h) } -> std::same_as<typename P::OpCtx>;
      { p.reserve(slot, ctx) } -> std::same_as<typename P::Reservation>;
      { p.classify(res, index) } -> std::same_as<SlotClass>;
      { p.commit_push(slot, res, node, index, ctx) } -> std::same_as<bool>;
      { p.commit_pop(slot, res, index, ctx) } -> std::same_as<bool>;
      { p.value_of(res) } -> std::same_as<T*>;
      { p.abandon(slot, res, ctx) };
      { P::kPushEnter } -> std::convertible_to<const char*>;
      { P::kPushReserved } -> std::convertible_to<const char*>;
      { P::kPushCommitted } -> std::convertible_to<const char*>;
      { P::kPopEnter } -> std::convertible_to<const char*>;
      { P::kPopReserved } -> std::convertible_to<const char*>;
      { P::kPopCommitted } -> std::convertible_to<const char*>;
    };

/// The index-side policy contract: a Cell holding a monotone 64-bit counter.
///
/// Advance-attribution contract (the help-chain flow arrows of DESIGN.md §11
/// depend on it): advance() returns whether THIS call moved the index from
/// `expected` to `expected + 1` — false means no movement is attributable to
/// this call, either because a peer already advanced it (the caller was
/// helped) or, for weak LL/SC, because the SC failed spuriously. Every index
/// move must be attributed to exactly one advance() (or reserve(), below)
/// return; the engines use the result only for best-effort trace
/// attribution, never for control flow.
///
/// Policies whose algorithms claim tickets UNCONDITIONALLY (the SCQ
/// generation's fetch_add) must expose that as a distinct reserve() returning
/// the claimed ticket — never by widening advance(): an unconditional
/// primitive always moves the index, so it could never report the "a peer
/// advanced it for me" outcome that advance()'s false return means, and a
/// policy that returned constant-true through advance() would silently turn
/// every helped op into a self-advance in the exported flow arrows. With the
/// split, attribution stays exact for free: a fetch_add moves the index by
/// exactly one and no other call observes that move as its own.
template <typename P>
concept RingIndexPolicy = requires(typename P::Cell& cell, std::uint64_t expected) {
  { P::load(cell) } -> std::same_as<std::uint64_t>;
  { P::advance(cell, expected) } -> std::same_as<bool>;
  { P::close(cell) } -> std::same_as<bool>;
};

/// Fig. 3's index handling: Head/Tail are LL/SC cells and a lagging index is
/// advanced with LL; compare; SC (E12-E13 on behalf of a peer, E16-E17 to
/// publish one's own operation — the paper uses the identical sequence for
/// both, which is why helping is safe: a failed SC means someone else already
/// moved the index).
struct LlscIndexPolicy {
  using Cell = llsc::CounterCell;

  static std::uint64_t load(Cell& cell) noexcept { return cell.load(); }

  static bool advance(Cell& cell, std::uint64_t expected) noexcept {
    auto link = cell.ll();                 // E12/E16 (D12/D16)
    if (link.value() == expected) {
      return cell.sc(link, expected + 1);  // E13/E17 (D13/D17)
    }
    return false;
  }

  /// Sets the CLOSED bit with an LL/SC loop (there is no single-word OR in
  /// the LL/SC repertoire, but the loop is equivalent: it terminates because
  /// a failed SC means either the bit is already set — done — or the counter
  /// moved, and counters move at most capacity times past any observed
  /// value). Returns whether THIS call set the bit.
  static bool close(Cell& cell) noexcept {
    for (;;) {
      auto link = cell.ll();
      if ((link.value() & kRingClosedBit) != 0) {
        return false;
      }
      if (cell.sc(link, link.value() | kRingClosedBit)) {
        return true;
      }
    }
  }
};

/// Fig. 5's (and the CAS baselines') index handling: plain
/// `CAS(&Index, i, i+1)` — identical to an LL/SC increment because the
/// counters are monotone (see counter_cell.hpp). AdvancePoint is the
/// queue-specific injection-point name ("core.cas.index.advance", ...).
template <const char* AdvancePoint>
struct CasIndexPolicy {
  using Cell = std::atomic<std::uint64_t>;

  static std::uint64_t load(Cell& cell) noexcept {
    return cell.load(std::memory_order_seq_cst);
  }

  static bool advance(Cell& cell, std::uint64_t expected) noexcept {
    // Delay-only point: the advance CAS must always be ATTEMPTED, because
    // its failure is read as "another thread already advanced the index" —
    // skipping it on a stream's final operation would forge a permanently
    // lagging index no real preemption can produce (a CAS, unlike weak
    // LL/SC, never fails spuriously).
    EVQ_INJECT_POINT(AdvancePoint);
    const bool ok =
        cell.compare_exchange_strong(expected, expected + 1, std::memory_order_seq_cst);
    stats::on_cas(ok);
    return ok;
  }

  /// Sets the CLOSED bit; returns whether THIS call set it.
  static bool close(Cell& cell) noexcept {
    return (cell.fetch_or(kRingClosedBit, std::memory_order_seq_cst) & kRingClosedBit) == 0;
  }
};

/// SCQ-generation index handling (core/scq_queue.hpp): a ticket is RESERVED
/// with one unconditional fetch_add instead of the engines' load → boundary
/// check → conditional advance round trip — the reservation can never fail
/// and never spins, which is where the SCQ family's scalability comes from.
/// advance() keeps the conditional contract above (SCQ's cautious dequeue
/// repairs a lagging Tail with it, via catch_up), so the policy satisfies
/// RingIndexPolicy and help attribution composes unchanged.
template <const char* ReservePoint>
struct FaaIndexPolicy {
  using Cell = std::atomic<std::uint64_t>;

  static std::uint64_t load(Cell& cell) noexcept {
    return cell.load(std::memory_order_seq_cst);
  }

  /// Unconditional ticket claim; returns the PRIOR index value (the caller's
  /// ticket). Per the attribution contract, the one-step move is attributed
  /// to this call, always — reserve() cannot fail and cannot be helped.
  static std::uint64_t reserve(Cell& cell) noexcept {
    // Delay-only point, like CasIndexPolicy::advance: the FAA must always be
    // ISSUED — skipping it would hand two threads the same ticket, a state
    // no real preemption can produce.
    EVQ_INJECT_POINT(ReservePoint);
    return cell.fetch_add(1, std::memory_order_seq_cst);
  }

  /// Conditional advance, identical semantics to CasIndexPolicy::advance.
  static bool advance(Cell& cell, std::uint64_t expected) noexcept {
    const bool ok =
        cell.compare_exchange_strong(expected, expected + 1, std::memory_order_seq_cst);
    stats::on_cas(ok);
    return ok;
  }

  /// SCQ's Catchup step: one conditional jump `expected -> to` (to is ahead
  /// of expected). Returns whether THIS call moved the index — the same
  /// attribution rule as advance(), covering moves of more than one step.
  static bool catch_up(Cell& cell, std::uint64_t expected, std::uint64_t to) noexcept {
    const bool ok = cell.compare_exchange_strong(expected, to, std::memory_order_seq_cst);
    stats::on_cas(ok);
    return ok;
  }

  /// Sets the CLOSED bit; returns whether THIS call set it. Reserved tickets
  /// taken after this carry the bit, which is how SCQ's enqueue observes the
  /// seal (scq_queue.hpp).
  static bool close(Cell& cell) noexcept {
    return (cell.fetch_or(kRingClosedBit, std::memory_order_seq_cst) & kRingClosedBit) == 0;
  }
};

/// The shared circular-array skeleton. Thin queue fronts (LlscArrayQueue,
/// CasArrayQueue, TsigasZhangQueue, ShannQueue) derive from this and add only
/// their documentation and algorithm-specific accessors.
template <typename T, typename SlotPolicy, typename IndexPolicy,
          typename ContentionPolicy = NoBackoff>
  requires RingSlotPolicy<SlotPolicy, T> && RingIndexPolicy<IndexPolicy> &&
           ContentionSeam<ContentionPolicy>
class BoundedRing {
  static_assert(kQueueableV<T>, "element type must be at least 2-byte aligned");

 public:
  using value_type = T;
  using pointer = T*;
  using Handle = typename SlotPolicy::Handle;
  using Slot = typename SlotPolicy::Slot;

  /// Capacity is rounded up to a power of two (the paper requires Q_LENGTH
  /// to be a power of 2 so index wraparound never skips slots). `name` is the
  /// stable telemetry name this instance registers (and aggregates) under.
  explicit BoundedRing(std::size_t min_capacity, std::string_view name = "ring")
      : capacity_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<Slot[]>(capacity_)),
        telemetry_(name) {
    policy_.attach(capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      policy_.init_slot(slots_[i], static_cast<std::uint64_t>(i));
    }
    telemetry_.set_depth_gauge(
        [this] { return static_cast<std::uint64_t>(size_estimate()); });
  }

  BoundedRing(const BoundedRing&) = delete;
  BoundedRing& operator=(const BoundedRing&) = delete;

  [[nodiscard]] Handle handle() { return policy_.make_handle(); }

  /// Fig. 3 E1-E21 / Fig. 5 Enqueue. Returns false iff the queue was full at
  /// some instant during the call (the paper's FULL_QUEUE).
  bool try_push(Handle& h, T* node) noexcept { return push_one(h, node, nullptr); }

  /// Fig. 3 D1-D21 / Fig. 5 Dequeue. Returns nullptr iff the queue was empty
  /// at some instant during the call.
  T* try_pop(Handle& h) noexcept { return pop_one(h, nullptr); }

  /// Pushes up to `count` nodes in FIFO order; returns how many landed. Stops
  /// at the first full-queue report, so a short return means the queue was
  /// full at that instant. Consecutive pushes seed each other's index read
  /// (one shared Tail load saved per amortized operation); each element still
  /// runs the full per-operation protocol (Algorithm 2 re-registers per
  /// element, as the paper's ReRegister requires between operations).
  std::size_t try_push_n(Handle& h, T* const* nodes, std::size_t count) noexcept {
    std::uint64_t hint = kNoHint;
    std::size_t done = 0;
    while (done < count && push_one(h, nodes[done], &hint)) {
      ++done;
    }
    return done;
  }

  /// Pops up to `count` nodes in FIFO order into `out`; returns how many were
  /// obtained. Stops at the first empty report.
  std::size_t try_pop_n(Handle& h, T** out, std::size_t count) noexcept {
    std::uint64_t hint = kNoHint;
    std::size_t done = 0;
    while (done < count) {
      T* node = pop_one(h, &hint);
      if (node == nullptr) {
        break;
      }
      out[done++] = node;
    }
    return done;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Instantaneous size estimate (exact when quiescent).
  [[nodiscard]] std::size_t size_estimate() noexcept {
    const std::uint64_t h = IndexPolicy::load(head_.value);
    const std::uint64_t t = IndexPolicy::load(tail_.value) & kRingIndexMask;
    return t >= h ? static_cast<std::size_t>(t - h) : 0;
  }

  /// Diagnostic counters for tests.
  [[nodiscard]] std::uint64_t head_index() noexcept { return IndexPolicy::load(head_.value); }
  [[nodiscard]] std::uint64_t tail_index() noexcept {
    return IndexPolicy::load(tail_.value) & kRingIndexMask;
  }

  /// Seals the ring: every in-flight and future push fails permanently with
  /// the FULL_QUEUE outcome while pops drain the remaining items. Idempotent;
  /// returns whether THIS call performed the seal (the segmented facade
  /// counts seals with it). Safe to call from any thread at any time.
  bool close() noexcept { return IndexPolicy::close(tail_.value); }

  [[nodiscard]] bool closed() noexcept {
    return (IndexPolicy::load(tail_.value) & kRingClosedBit) != 0;
  }

  /// A closed ring whose Head caught up with the frozen Tail holds nothing
  /// and can never hold anything again (advance() is strict, so the masked
  /// tail at seal time is final). Exact, not an estimate — but only once
  /// closed() is true.
  [[nodiscard]] bool drained() noexcept {
    const std::uint64_t raw = IndexPolicy::load(tail_.value);
    return (raw & kRingClosedBit) != 0 &&
           IndexPolicy::load(head_.value) == (raw & kRingIndexMask);
  }

  /// Resets a QUIESCENT ring (typically one recycled through a segment free
  /// pool) to its freshly-constructed open state. Callers must guarantee no
  /// concurrent operations — the segmented queue only reopens segments that
  /// are private to the reopening thread.
  void reopen() noexcept {
    for (std::size_t i = 0; i < capacity_; ++i) {
      policy_.init_slot(slots_[i], static_cast<std::uint64_t>(i));
    }
    head_.value.store(0);
    tail_.value.store(0);
  }

  /// This instance's live telemetry counters (shared with same-name queues).
  [[nodiscard]] telemetry::QueueMetrics& metrics() noexcept { return telemetry_.metrics(); }
  [[nodiscard]] const std::string& telemetry_name() const noexcept { return telemetry_.name(); }

 protected:
  /// The policy instance — derived queues expose algorithm-specific state
  /// through it (e.g. CasArrayQueue::registry()).
  [[nodiscard]] SlotPolicy& slot_policy() noexcept { return policy_; }

 private:
  static constexpr std::uint64_t kNoHint = ~std::uint64_t{0};

  /// The one retry round every push/pop retry path funnels through (this
  /// used to be four copy-pasted tails). Side-effect order is load-bearing
  /// and preserved exactly: count the round, open the backoff trace phase,
  /// let the policy wait (or, for an op-aware policy, react to the
  /// contention context), then bump the retry counter — so the context the
  /// policy sees carries the retries burned BEFORE this round.
  EVQ_ALWAYS_INLINE void retry_round(ContentionPolicy& backoff, trace::OpProbe& probe,
                                     std::uint32_t& retries, ContentionOp op,
                                     bool batched) noexcept {
    telemetry::count_ring_event(telemetry_, telemetry::Counter::kBackoffRound);
    probe.begin_phase(trace::Phase::kBackoff);
    backoff.on_retry(ContentionCtx{op, retries, batched});
    ++retries;
  }

  /// Takes back a node this thread committed at index `t` in a ring whose
  /// Tail was sealed frozen at exactly t (see the stranded-push comment in
  /// push_one). This thread is the only one referencing slot t, so the
  /// pop-protocol loop below terminates: classification is kOccupied (our
  /// own node, generation t) and only a spurious SC can make the commit
  /// fail. Mirrors pop_one's commit discipline — no abandon after a failed
  /// commit, abandon on a classification miss.
  void revert_stranded_push(Slot& slot, std::uint64_t t,
                            typename SlotPolicy::OpCtx& ctx) noexcept {
    for (;;) {
      typename SlotPolicy::Reservation res = policy_.reserve(slot, ctx);
      if (policy_.classify(res, t) == SlotClass::kOccupied) {
        if (policy_.commit_pop(slot, res, t, ctx)) {
          return;
        }
        telemetry::count_ring_event(telemetry_, telemetry::Counter::kSlotScFail);
        continue;
      }
      policy_.abandon(slot, res, ctx);
    }
  }

  /// One full enqueue. `hint`, when non-null and armed, replaces the initial
  /// Tail load (batch amortization) and is re-armed with t+1 on success; any
  /// retry falls back to the live index.
  bool push_one(Handle& h, T* node, std::uint64_t* hint) noexcept {
    EVQ_DCHECK(node != nullptr, "cannot enqueue nullptr (it denotes an empty slot)");
    typename SlotPolicy::OpCtx ctx = policy_.begin_op(h);
    ContentionPolicy backoff;
    std::uint32_t retries = 0;
    trace::OpProbe probe(telemetry_.queue_id(), trace::OpProbe::OpKind::kPush);
    // SLO reservoir sample (off = one countdown decrement). Scoped to the
    // whole op so every return path — including push-full — is measured.
    telemetry::LatencyTimer latency(telemetry_.queue_id(), /*is_push=*/true);
    // Submission seam: an op-aware policy may run the whole op elsewhere
    // (e.g. hand it to a combiner). The trivial policies decline inline and
    // the branch folds away.
    OpSubmission sub{ContentionOp::kPush, node, hint != nullptr};
    switch (backoff.try_delegate(sub)) {
      case Delegation::kNone:
        break;
      case Delegation::kDone:
        telemetry::count_ring_event(telemetry_, telemetry::Counter::kPushOk);
        probe.finish(trace::OpCode::kPushOk, 0, retries);
        return true;
      case Delegation::kRefused:
        telemetry::count_ring_event(telemetry_, telemetry::Counter::kPushFull);
        probe.finish(trace::OpCode::kPushFull, 0, retries);
        return false;
    }
    for (;;) {
      EVQ_INJECT_POINT(SlotPolicy::kPushEnter);
      probe.begin_phase(trace::Phase::kIndexLoad);
      std::uint64_t t;
      if (hint != nullptr && *hint != kNoHint) {
        t = *hint;
        *hint = kNoHint;  // one-shot: any retry reloads the live index
      } else {
        t = IndexPolicy::load(tail_.value);                          // E5
      }
      // Sealed ring: the push side is permanently shut (segment protocol).
      // Checked before ANY index arithmetic — a raw value carrying the
      // CLOSED bit would corrupt the signed occupancy check and the slot
      // index below. Reported as the paper's FULL_QUEUE outcome: to a caller
      // a sealed ring and a full ring are the same "this ring takes no more
      // items" answer, and the segmented facade counts the seal itself
      // separately (kSegSeal).
      if ((t & kRingClosedBit) != 0) {
        t &= kRingIndexMask;
        telemetry::count_ring_event(telemetry_, telemetry::Counter::kPushFull);
        telemetry::record_trace(telemetry_.queue_id(), telemetry::TraceOp::kPushFull, t, retries);
        probe.finish(trace::OpCode::kPushFull, t, retries);
        return false;
      }
      // E6 — full check. The occupancy must be compared SIGNED: `t` may be
      // stale (another thread advanced Head past it between our two reads),
      // making the unsigned difference underflow and report full spuriously
      // — a bug our model checker found in an earlier unsigned version. A
      // stale-negative occupancy simply proceeds; E10 then catches it.
      if (static_cast<std::int64_t>(t - IndexPolicy::load(head_.value)) >=
          static_cast<std::int64_t>(capacity_)) {
        telemetry::count_ring_event(telemetry_, telemetry::Counter::kPushFull);
        telemetry::record_trace(telemetry_.queue_id(), telemetry::TraceOp::kPushFull, t, retries);
        probe.finish(trace::OpCode::kPushFull, t, retries);
        return false;                                                // E7
      }
      probe.begin_phase(trace::Phase::kSlotAttempt);
      Slot& slot = slots_[t & mask_];                                // E8
      typename SlotPolicy::Reservation res = policy_.reserve(slot, ctx);  // E9
      EVQ_INJECT_POINT(SlotPolicy::kPushReserved);
      if (t != IndexPolicy::load(tail_.value)) {                     // E10
        policy_.abandon(slot, res, ctx);  // index moved under us: restore and retry
        retry_round(backoff, probe, retries, ContentionOp::kPush, hint != nullptr);
        continue;
      }
      switch (policy_.classify(res, t)) {
        case SlotClass::kOccupied:
          // A concurrent enqueuer filled this slot but has not advanced Tail
          // yet — help it (E11-E13) and retry with the fresh index.
          policy_.abandon(slot, res, ctx);
          telemetry::count_ring_event(telemetry_, telemetry::Counter::kHelpAdvance);
          probe.begin_phase(trace::Phase::kHelpAdvance);
          IndexPolicy::advance(tail_.value, t);
          probe.help_advance(t, trace::HelpTarget::kTail);
          break;
        case SlotClass::kEmptyFresh:
          if (policy_.commit_push(slot, res, node, t, ctx)) {        // E15
            // Linearized: the item is in the array but Tail still lags —
            // the state the kill-mid-enqueue profile freezes.
            EVQ_INJECT_POINT(SlotPolicy::kPushCommitted);
            if (!IndexPolicy::advance(tail_.value, t)) {             // E16-E17
              // Either a peer advanced Tail for us (the helped side of
              // E11-E13) or the ring was sealed between our E10 check and
              // the advance. The two are distinguishable from the raw tail:
              // a seal that caught us freezes it at exactly t|CLOSED, and
              // because advance() is strict no later value can ever carry
              // that combination. In that case the committed node can never
              // become visible (visibility needs masked Tail > t, which is
              // now unreachable) — take it back and report the push failed,
              // so the caller still owns the node. Safe because no other
              // thread touches slot t: poppers stop at the frozen masked
              // tail (== t) and peer pushers bail at the sealed-check above
              // before helping Tail past it.
              const std::uint64_t raw = IndexPolicy::load(tail_.value);
              if (raw == (t | kRingClosedBit)) {
                revert_stranded_push(slot, t, ctx);
                telemetry::count_ring_event(telemetry_, telemetry::Counter::kPushFull);
                telemetry::record_trace(telemetry_.queue_id(), telemetry::TraceOp::kPushFull, t,
                                        retries);
                probe.finish(trace::OpCode::kPushFull, t, retries);
                return false;
              }
              probe.helped(t, trace::HelpTarget::kTail);
            }
            if (hint != nullptr) {
              *hint = t + 1;
            }
            telemetry::count_ring_event(telemetry_, telemetry::Counter::kPushOk);
            telemetry::record_trace(telemetry_.queue_id(), telemetry::TraceOp::kPushOk, t,
                                    retries);
            probe.finish(trace::OpCode::kPushOk, t, retries);
            return true;                                             // E18
          }
          // SC failed: the slot changed under our reservation — start over.
          telemetry::count_ring_event(telemetry_, telemetry::Counter::kSlotScFail);
          break;
        case SlotClass::kStaleEmpty:
          // Empty for the wrong generation (two-null scheme): stale index.
          break;
      }
      retry_round(backoff, probe, retries, ContentionOp::kPush, hint != nullptr);
    }
  }

  /// One full dequeue; `hint` as in push_one.
  T* pop_one(Handle& h, std::uint64_t* hint) noexcept {
    typename SlotPolicy::OpCtx ctx = policy_.begin_op(h);
    ContentionPolicy backoff;
    std::uint32_t retries = 0;
    trace::OpProbe probe(telemetry_.queue_id(), trace::OpProbe::OpKind::kPop);
    telemetry::LatencyTimer latency(telemetry_.queue_id(), /*is_push=*/false);
    OpSubmission sub{ContentionOp::kPop, nullptr, hint != nullptr};
    switch (backoff.try_delegate(sub)) {
      case Delegation::kNone:
        break;
      case Delegation::kDone:
        // A policy may report kDone with a null node (pop completed, queue
        // empty at its linearization point) — count/trace that as an empty
        // pop, not a successful one, so telemetry and trace joins stay
        // truthful to what the caller receives.
        if (sub.node != nullptr) {
          telemetry::count_ring_event(telemetry_, telemetry::Counter::kPopOk);
          probe.finish(trace::OpCode::kPopOk, 0, retries);
        } else {
          telemetry::count_ring_event(telemetry_, telemetry::Counter::kPopEmpty);
          probe.finish(trace::OpCode::kPopEmpty, 0, retries);
        }
        return static_cast<T*>(sub.node);
      case Delegation::kRefused:
        telemetry::count_ring_event(telemetry_, telemetry::Counter::kPopEmpty);
        probe.finish(trace::OpCode::kPopEmpty, 0, retries);
        return nullptr;
    }
    for (;;) {
      EVQ_INJECT_POINT(SlotPolicy::kPopEnter);
      probe.begin_phase(trace::Phase::kIndexLoad);
      std::uint64_t head;
      if (hint != nullptr && *hint != kNoHint) {
        head = *hint;
        *hint = kNoHint;
      } else {
        head = IndexPolicy::load(head_.value);                       // D5
      }
      // D6 — the CLOSED bit is stripped: pops drain a sealed ring normally,
      // and with the masked tail frozen (strict advance) "empty" here is a
      // FINAL verdict for a closed ring.
      if (head == (IndexPolicy::load(tail_.value) & kRingIndexMask)) {
        telemetry::count_ring_event(telemetry_, telemetry::Counter::kPopEmpty);
        telemetry::record_trace(telemetry_.queue_id(), telemetry::TraceOp::kPopEmpty, head,
                                retries);
        probe.finish(trace::OpCode::kPopEmpty, head, retries);
        return nullptr;                                              // D7
      }
      probe.begin_phase(trace::Phase::kSlotAttempt);
      Slot& slot = slots_[head & mask_];                             // D8
      typename SlotPolicy::Reservation res = policy_.reserve(slot, ctx);  // D9
      EVQ_INJECT_POINT(SlotPolicy::kPopReserved);
      if (head != IndexPolicy::load(head_.value)) {                  // D10
        policy_.abandon(slot, res, ctx);
        retry_round(backoff, probe, retries, ContentionOp::kPop, hint != nullptr);
        continue;
      }
      if (policy_.classify(res, head) == SlotClass::kOccupied) {
        if (policy_.commit_pop(slot, res, head, ctx)) {              // D15
          // Linearized: the slot is empty but Head still lags.
          EVQ_INJECT_POINT(SlotPolicy::kPopCommitted);
          if (!IndexPolicy::advance(head_.value, head)) {            // D16-D17
            // A peer advanced Head for us — the helped side of D11-D13.
            probe.helped(head, trace::HelpTarget::kHead);
          }
          if (hint != nullptr) {
            *hint = head + 1;
          }
          telemetry::count_ring_event(telemetry_, telemetry::Counter::kPopOk);
          telemetry::record_trace(telemetry_.queue_id(), telemetry::TraceOp::kPopOk, head,
                                  retries);
          probe.finish(trace::OpCode::kPopOk, head, retries);
          return policy_.value_of(res);                              // D18
        }
        telemetry::count_ring_event(telemetry_, telemetry::Counter::kSlotScFail);
      } else {
        // The item at head was already removed by a dequeuer that has not
        // advanced Head yet — help it (D11-D13) and retry.
        policy_.abandon(slot, res, ctx);
        telemetry::count_ring_event(telemetry_, telemetry::Counter::kHelpAdvance);
        probe.begin_phase(trace::Phase::kHelpAdvance);
        IndexPolicy::advance(head_.value, head);
        probe.help_advance(head, trace::HelpTarget::kHead);
      }
      retry_round(backoff, probe, retries, ContentionOp::kPop, hint != nullptr);
    }
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  // Indices on their own cache lines: both are write-hot and shared.
  CachePadded<typename IndexPolicy::Cell> head_{};
  CachePadded<typename IndexPolicy::Cell> tail_{};
  std::unique_ptr<Slot[]> slots_;
  [[no_unique_address]] SlotPolicy policy_;
  // LAST member on purpose: destroyed first, which clears the depth gauge
  // (it reads head_/tail_ through `this`) while those indices still exist.
  telemetry::ScopedQueueMetrics telemetry_;
};

}  // namespace evq
