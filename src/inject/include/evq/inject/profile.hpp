// Named, seeded fault-injection profiles for the torture harness.
//
// A Profile is a declarative description of an adversarial schedule shape:
// how often SCs fail spuriously, where yield-bursts open preemption windows,
// and which single victim thread gets parked at which injection point. A
// ProfileInjector turns that description into a deterministic per-thread
// decision stream — thread t of a run with seed s always draws the same
// decisions, so a failing (queue, profile, seed) triple reproduces.
//
// The four registered profiles map to the failure classes the paper argues
// about (see DESIGN.md §8 and tests/torture_test.cpp):
//
//   sc-storm          heavy spurious SC failure on every cell + scattered
//                     yield bursts (Sec. 5 limitation #3 at full size)
//   stalled-consumer  one consumer parked while holding a freshly-taken
//                     reservation; everyone else must take it over / help
//   reclaim-pressure  long delays inside retire/scan/pool/epoch paths, so
//                     reclamation lags far behind the mutators
//   kill-mid-enqueue  one producer "killed" (parked for a long schedule
//                     quantum) right after its slot write linearizes but
//                     BEFORE it publishes Tail — the canonical lagging-index
//                     state that only helping can repair
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <thread>
#include <vector>

#include "evq/common/config.hpp"
#include "evq/common/rng.hpp"
#include "evq/inject/inject.hpp"

namespace evq::inject {

/// Which workload role a thread plays — profiles can aim a stall at one side.
enum class Role : std::uint8_t { kProducer, kConsumer, kMixed, kAny };

[[nodiscard]] constexpr bool role_matches(Role wanted, Role actual) noexcept {
  return wanted == Role::kAny || wanted == actual;
}

struct Profile {
  const char* name;
  const char* description;

  // Spurious SC failure at EVQ_INJECT_SC_FAILS sites whose name contains
  // sc_fail_match ("" = every site). Probability sc_fail_num/sc_fail_den.
  std::uint32_t sc_fail_num = 0;
  std::uint32_t sc_fail_den = 100;
  const char* sc_fail_match = "";

  // Yield bursts (1..delay_max_yields sched yields) with probability
  // delay_num/delay_den at points whose name contains delay_match.
  std::uint32_t delay_num = 0;
  std::uint32_t delay_den = 100;
  std::uint32_t delay_max_yields = 0;
  const char* delay_match = "";

  // Single-victim stall: the FIRST thread of stall_role to reach a point
  // containing stall_match parks there (once per run) until the run's
  // StallGate releases it or its spin budget runs out.
  const char* stall_match = nullptr;
  Role stall_role = Role::kAny;
};

/// Cross-thread coordination for one torture run's single-victim stall.
/// Claiming is first-come-first-served; parking is a bounded yield loop so a
/// run can never deadlock even if the driver forgets to release.
class StallGate {
 public:
  explicit StallGate(std::uint64_t max_park_yields = 1u << 16)
      : max_park_yields_(max_park_yields) {}

  StallGate(const StallGate&) = delete;
  StallGate& operator=(const StallGate&) = delete;

  /// True for exactly one caller per run.
  [[nodiscard]] bool try_claim() noexcept {
    bool expected = false;
    return claimed_.compare_exchange_strong(expected, true, std::memory_order_acq_rel);
  }

  /// Parks the victim until release() or the yield budget is exhausted.
  void park() noexcept {
    parked_.store(true, std::memory_order_release);
    for (std::uint64_t spins = 0;
         !released_.load(std::memory_order_acquire) && spins < max_park_yields_; ++spins) {
      std::this_thread::yield();
    }
    parked_.store(false, std::memory_order_release);
  }

  void release() noexcept { released_.store(true, std::memory_order_release); }

  [[nodiscard]] bool claimed() const noexcept { return claimed_.load(std::memory_order_acquire); }
  [[nodiscard]] bool parked() const noexcept { return parked_.load(std::memory_order_acquire); }

 private:
  const std::uint64_t max_park_yields_;
  std::atomic<bool> claimed_{false};
  std::atomic<bool> parked_{false};
  std::atomic<bool> released_{false};
};

/// Deterministic per-thread realization of a Profile. One instance per
/// worker thread, seeded from (run seed, thread id); all threads of a run
/// share the run's StallGate.
class ProfileInjector final : public Injector {
 public:
  ProfileInjector(const Profile& profile, std::uint64_t seed, std::uint32_t thread_id, Role role,
                  StallGate* gate = nullptr) noexcept
      : profile_(profile),
        rng_(XorShift64Star::for_stream(seed, thread_id)),
        role_(role),
        gate_(gate) {}

  void at_point(const char* point) noexcept override {
    points_hit_ += 1;
    maybe_stall(point);
    maybe_delay(point);
  }

  bool fail_sc(const char* point) noexcept override {
    points_hit_ += 1;
    maybe_stall(point);
    maybe_delay(point);
    if (profile_.sc_fail_num == 0 || !matches(point, profile_.sc_fail_match)) {
      return false;
    }
    const bool fail = rng_.chance(profile_.sc_fail_num, profile_.sc_fail_den);
    sc_failures_forced_ += fail ? 1 : 0;
    return fail;
  }

  [[nodiscard]] std::uint64_t points_hit() const noexcept { return points_hit_; }
  [[nodiscard]] std::uint64_t sc_failures_forced() const noexcept { return sc_failures_forced_; }
  [[nodiscard]] std::uint64_t delays() const noexcept { return delays_; }
  [[nodiscard]] bool stalled() const noexcept { return stalled_; }

 private:
  static bool matches(const char* point, const char* pattern) noexcept {
    if (pattern == nullptr) {
      return false;
    }
    return pattern[0] == '\0' || std::strstr(point, pattern) != nullptr;
  }

  void maybe_stall(const char* point) noexcept {
    if (stalled_ || gate_ == nullptr || profile_.stall_match == nullptr ||
        !role_matches(profile_.stall_role, role_) || !matches(point, profile_.stall_match)) {
      return;
    }
    if (gate_->try_claim()) {
      stalled_ = true;  // set before parking: never re-enter from this thread
      gate_->park();
    }
  }

  void maybe_delay(const char* point) noexcept {
    if (profile_.delay_num == 0 || profile_.delay_max_yields == 0 ||
        !matches(point, profile_.delay_match) ||
        !rng_.chance(profile_.delay_num, profile_.delay_den)) {
      return;
    }
    delays_ += 1;
    const std::uint64_t yields = 1 + rng_.next_below(profile_.delay_max_yields);
    for (std::uint64_t i = 0; i < yields; ++i) {
      std::this_thread::yield();
    }
  }

  const Profile& profile_;
  XorShift64Star rng_;
  const Role role_;
  StallGate* gate_;
  std::uint64_t points_hit_ = 0;
  std::uint64_t sc_failures_forced_ = 0;
  std::uint64_t delays_ = 0;
  bool stalled_ = false;
};

/// All registered torture profiles, in documentation order.
inline const std::vector<Profile>& all_profiles() {
  static const std::vector<Profile> profiles = {
      {"sc-storm",
       "spurious SC failure on every cell (25%) plus scattered yield bursts",
       /*sc_fail=*/25, 100, "",
       /*delay=*/1, 8, 3, "",
       /*stall=*/nullptr, Role::kAny},
      {"stalled-consumer",
       "one consumer parked holding a fresh reservation; mild SC noise",
       /*sc_fail=*/5, 100, "",
       /*delay=*/1, 10, 2, "",
       /*stall=*/"pop.reserved", Role::kConsumer},
      {"reclaim-pressure",
       "long delays inside retire/scan/pool/epoch paths; mild SC noise",
       /*sc_fail=*/10, 100, "",
       /*delay=*/3, 4, 6, "reclaim",
       /*stall=*/nullptr, Role::kAny},
      {"kill-mid-enqueue",
       "one producer parked between its linearizing slot write and the Tail "
       "publication — the lagging index only helping repairs",
       /*sc_fail=*/5, 100, "",
       /*delay=*/1, 12, 2, "",
       /*stall=*/"push.committed", Role::kProducer},
  };
  return profiles;
}

/// Lookup by name; fatal on unknown names (profiles are test infrastructure,
/// so a typo is a bug, not an input error).
inline const Profile& find_profile(std::string_view name) {
  for (const Profile& profile : all_profiles()) {
    if (name == profile.name) {
      return profile;
    }
  }
  EVQ_CHECK(false, "unknown injection profile");
  __builtin_unreachable();
}

}  // namespace evq::inject
