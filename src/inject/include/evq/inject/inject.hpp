// Fault-injection substrate: named per-thread injection points compiled into
// the hot paths of every queue and reclamation layer.
//
// The paper's central claims are liveness and safety under adversarial
// schedules — spurious SC failures (Sec. 5 limitation #3), stalled threads
// holding reservations, helped (lagging) indices. The stress suites only
// *sample* those schedules and the model checker only explores tiny
// step-machine configurations; this layer lets tests FORCE the rare
// interleavings on the full-size implementations:
//
//   EVQ_INJECT_POINT("core.llsc.push.reserved");   // delay / stall / kill here
//   if (EVQ_INJECT_SC_FAILS("packed_llsc.sc")) return false;  // spurious SC
//
// Cost model. Injection is a *compile-time* feature: unless the translation
// unit is built with EVQ_INJECT_ENABLED=1, both macros expand to constants
// (`(void)0` / `false`) and the queues compile to exactly the code they had
// before this header existed — verified by the bench guard (bench_micro_ops,
// built without the flag, must stay within noise of the seed numbers). Only
// the dedicated torture binary (tests/torture_test.cpp) defines the flag, so
// the injected and uninjected worlds never mix inside one binary (mixing
// would be an ODR violation for the header-only queue templates).
//
// Dispatch model. When enabled, each point consults a THREAD-LOCAL Injector
// (nullptr by default → a single predictable branch). Per-thread injectors
// are what make schedules scriptable: a torture run gives every worker its
// own deterministic decision stream seeded from (profile seed, thread id),
// and a scripted test can park exactly one victim thread at exactly one
// point while the driver arranges the adversarial state around it.
#pragma once

#include <cstdint>

namespace evq::inject {

/// Receives injection-point callbacks for the installing thread. Implement
/// at_point() to delay/stall/park and fail_sc() to force spurious SC
/// failures. Both run on the queue's hot path with the operation's state
/// live, so implementations must be async-signal-ish in spirit: no locks
/// shared with queue code, no reentrant queue calls.
class Injector {
 public:
  virtual ~Injector() = default;

  /// Called at every EVQ_INJECT_POINT the thread passes.
  virtual void at_point(const char* point) noexcept = 0;

  /// Called at every EVQ_INJECT_SC_FAILS site; returning true makes the SC
  /// (or helper CAS) fail spuriously WITHOUT attempting the hardware
  /// operation — indistinguishable from a reservation lost to preemption.
  virtual bool fail_sc(const char* point) noexcept = 0;
};

/// The calling thread's current injector slot (nullptr = injection inert).
inline Injector*& current() noexcept {
  thread_local Injector* injector = nullptr;
  return injector;
}

inline void hit(const char* point) noexcept {
  if (Injector* injector = current()) {
    injector->at_point(point);
  }
}

[[nodiscard]] inline bool sc_fails(const char* point) noexcept {
  Injector* injector = current();
  return injector != nullptr && injector->fail_sc(point);
}

/// RAII installation of an injector for the current thread (restores the
/// previous one, so scripted tests can nest).
class ScopedInjector {
 public:
  explicit ScopedInjector(Injector& injector) noexcept : prev_(current()) {
    current() = &injector;
  }

  ScopedInjector(const ScopedInjector&) = delete;
  ScopedInjector& operator=(const ScopedInjector&) = delete;

  ~ScopedInjector() { current() = prev_; }

 private:
  Injector* prev_;
};

}  // namespace evq::inject

#if defined(EVQ_INJECT_ENABLED) && EVQ_INJECT_ENABLED
#define EVQ_INJECT_POINT(point) (::evq::inject::hit(point))
#define EVQ_INJECT_SC_FAILS(point) (::evq::inject::sc_fails(point))
#else
/// No-ops unless the TU opts in: injection must cost zero in release builds.
#define EVQ_INJECT_POINT(point) ((void)0)
#define EVQ_INJECT_SC_FAILS(point) (false)
#endif
