// Stream-level FIFO correctness checkers for MPMC stress tests.
//
// Full linearizability checking (lin_check.hpp) is exponential and only
// feasible for tiny histories. For large stress runs we check the two
// queue properties that are both necessary for linearizable FIFO behaviour
// and tractable at scale:
//
//  * Conservation — every token pushed is popped exactly once (no loss, no
//    duplication), modulo tokens still in the queue at the end.
//  * Per-producer order — the subsequence of any single producer's tokens,
//    as seen by ANY single consumer, appears in production order. (A FIFO
//    queue may interleave producers arbitrarily, but can never reorder one
//    producer's items; and since each consumer's pops are themselves ordered,
//    each consumer must observe each producer's sequence monotonically.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace evq::verify {

/// A stress-test token: identifies its producer and its rank in that
/// producer's push sequence. Aligned so token pointers are queueable.
struct alignas(8) Token {
  std::uint32_t producer = 0;
  std::uint64_t seq = 0;
  Token* free_next = nullptr;  // pool linkage for allocation-free stress runs
};

/// Everything one consumer observed, in pop order.
using ConsumerLog = std::vector<Token>;

/// Result of a stream check; `ok` plus a human-readable reason on failure.
struct CheckResult {
  bool ok = true;
  std::string reason;

  static CheckResult failure(std::string why) { return {false, std::move(why)}; }
};

/// Conservation: with `producers` producers having pushed `pushed[p]` tokens
/// each, every (producer, seq < pushed[p]) pair must appear exactly once
/// across all consumer logs plus the drained leftovers.
inline CheckResult check_conservation(const std::vector<ConsumerLog>& logs,
                                      const std::vector<std::uint64_t>& pushed) {
  std::vector<std::vector<std::uint8_t>> seen(pushed.size());
  for (std::size_t p = 0; p < pushed.size(); ++p) {
    seen[p].assign(static_cast<std::size_t>(pushed[p]), 0);
  }
  for (const ConsumerLog& log : logs) {
    for (const Token& tok : log) {
      if (tok.producer >= pushed.size()) {
        return CheckResult::failure("token from unknown producer " +
                                    std::to_string(tok.producer));
      }
      if (tok.seq >= pushed[tok.producer]) {
        return CheckResult::failure("token (" + std::to_string(tok.producer) + "," +
                                    std::to_string(tok.seq) + ") was never pushed");
      }
      auto& flag = seen[tok.producer][static_cast<std::size_t>(tok.seq)];
      if (flag != 0) {
        return CheckResult::failure("token (" + std::to_string(tok.producer) + "," +
                                    std::to_string(tok.seq) + ") popped twice");
      }
      flag = 1;
    }
  }
  for (std::size_t p = 0; p < pushed.size(); ++p) {
    for (std::size_t s = 0; s < seen[p].size(); ++s) {
      if (seen[p][s] == 0) {
        return CheckResult::failure("token (" + std::to_string(p) + "," + std::to_string(s) +
                                    ") lost");
      }
    }
  }
  return {};
}

/// Per-producer FIFO order within each consumer's log (see file comment).
inline CheckResult check_per_producer_order(const std::vector<ConsumerLog>& logs,
                                            std::size_t producers) {
  for (std::size_t c = 0; c < logs.size(); ++c) {
    std::vector<std::int64_t> last(producers, -1);
    for (const Token& tok : logs[c]) {
      if (tok.producer >= producers) {
        return CheckResult::failure("token from unknown producer");
      }
      const auto seq = static_cast<std::int64_t>(tok.seq);
      if (seq <= last[tok.producer]) {
        return CheckResult::failure(
            "consumer " + std::to_string(c) + " saw producer " + std::to_string(tok.producer) +
            " tokens out of order: " + std::to_string(seq) + " after " +
            std::to_string(last[tok.producer]));
      }
      last[tok.producer] = seq;
    }
  }
  return {};
}

/// Strict global FIFO for single-consumer runs: the one consumer must see
/// every producer's tokens gap-free in order (seq exactly 0,1,2,... per
/// producer).
inline CheckResult check_single_consumer_gapless(const ConsumerLog& log, std::size_t producers) {
  std::vector<std::uint64_t> next(producers, 0);
  for (const Token& tok : log) {
    if (tok.producer >= producers) {
      return CheckResult::failure("token from unknown producer");
    }
    if (tok.seq != next[tok.producer]) {
      return CheckResult::failure("producer " + std::to_string(tok.producer) + " expected seq " +
                                  std::to_string(next[tok.producer]) + " got " +
                                  std::to_string(tok.seq));
    }
    ++next[tok.producer];
  }
  return {};
}

}  // namespace evq::verify
