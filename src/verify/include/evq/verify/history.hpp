// Concurrent operation histories for linearizability checking.
//
// A history is a set of operations with invocation/response "timestamps"
// drawn from one global atomic counter. Timestamps give a sound
// happens-before approximation: if op A's response timestamp is smaller
// than op B's invocation timestamp, A really did complete before B began,
// so every linearization must order A before B. (Ops whose windows overlap
// may be ordered either way — that freedom is what the checker searches.)
//
// Values are plain integers; 0 is reserved for "pop returned empty".
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace evq::verify {

enum class OpKind : std::uint8_t {
  kPush,  // arg = value; ok = accepted (false => queue reported full)
  kPop,   // result = value popped, or 0 if queue reported empty
};

struct Operation {
  OpKind kind = OpKind::kPush;
  std::uint64_t arg = 0;     // pushed value (kPush only)
  std::uint64_t result = 0;  // popped value or 0 = empty (kPop only)
  bool ok = true;            // push accepted (kPush only)
  std::uint64_t invoke = 0;
  std::uint64_t response = 0;
  std::uint32_t thread = 0;
  // Batch membership (try_push_n / try_pop_n): a batch call of k items is k
  // linearization points that all lie inside the ONE call's real-time window
  // and must linearize in argument order. Sub-ops of one call share
  // invoke/response and carry the same nonzero `batch` id; `batch_rank`
  // orders them. 0 = not part of a batch.
  std::uint64_t batch = 0;
  std::uint32_t batch_rank = 0;

  [[nodiscard]] std::string to_string() const {
    const std::string suffix =
        " [" + std::to_string(invoke) + "," + std::to_string(response) + ")t" +
        std::to_string(thread) +
        (batch != 0 ? " b" + std::to_string(batch) + "#" + std::to_string(batch_rank) : "");
    if (kind == OpKind::kPush) {
      return "push(" + std::to_string(arg) + ")=" + (ok ? "ok" : "full") + suffix;
    }
    return "pop()=" + (result == 0 ? std::string("empty") : std::to_string(result)) + suffix;
  }
};

using History = std::vector<Operation>;

/// Thread-safe recorder: wrap each queue call between begin()/end calls.
class HistoryRecorder {
 public:
  /// Reserve per-thread space up front so recording does not allocate (and
  /// therefore does not serialize) inside the measured region.
  HistoryRecorder(std::uint32_t threads, std::size_t ops_per_thread) : per_thread_(threads) {
    for (auto& v : per_thread_) {
      v.reserve(ops_per_thread);
    }
  }

  [[nodiscard]] std::uint64_t begin() noexcept {
    return clock_.fetch_add(1, std::memory_order_acq_rel);
  }

  void end_push(std::uint32_t thread, std::uint64_t invoke, std::uint64_t value, bool ok) {
    const std::uint64_t response = clock_.fetch_add(1, std::memory_order_acq_rel);
    per_thread_[thread].push_back(
        {OpKind::kPush, value, 0, ok, invoke, response, thread});
  }

  void end_pop(std::uint32_t thread, std::uint64_t invoke, std::uint64_t result) {
    const std::uint64_t response = clock_.fetch_add(1, std::memory_order_acq_rel);
    per_thread_[thread].push_back(
        {OpKind::kPop, 0, result, true, invoke, response, thread});
  }

  /// Records one try_push_n(values[0..attempted)) call that landed the first
  /// `landed` items: `landed` push(v)=ok sub-ops in argument order, plus —
  /// when the batch came up short — ONE push=full sub-op for the item that
  /// observed the boundary (maximal-prefix semantics: the remaining items
  /// were never offered, so they produce no operations at all). All sub-ops
  /// share the call's invoke/response window; their in-call order is carried
  /// by (batch, batch_rank), NOT by sub-intervals of the window — carving the
  /// window up would invent real-time precedence against OTHER threads' ops
  /// that the implementation never promised, making the checker reject legal
  /// histories.
  void end_push_n(std::uint32_t thread, std::uint64_t invoke, const std::uint64_t* values,
                  std::size_t attempted, std::size_t landed) {
    const std::uint64_t response = clock_.fetch_add(1, std::memory_order_acq_rel);
    const std::uint64_t batch = invoke;  // begin() values are unique: free batch id
    auto& log = per_thread_[thread];
    for (std::size_t i = 0; i < landed; ++i) {
      log.push_back({OpKind::kPush, values[i], 0, true, invoke, response, thread, batch,
                     static_cast<std::uint32_t>(i)});
    }
    if (landed < attempted) {
      log.push_back({OpKind::kPush, values[landed], 0, false, invoke, response, thread, batch,
                     static_cast<std::uint32_t>(landed)});
    }
  }

  /// Records one try_pop_n call that returned `got` of `requested` values:
  /// `got` pop()=v sub-ops in return order, plus ONE pop()=empty sub-op when
  /// the batch stopped short (the call observed empty at that point). Same
  /// shared-window/batch-rank encoding as end_push_n.
  void end_pop_n(std::uint32_t thread, std::uint64_t invoke, const std::uint64_t* results,
                 std::size_t got, std::size_t requested) {
    const std::uint64_t response = clock_.fetch_add(1, std::memory_order_acq_rel);
    const std::uint64_t batch = invoke;
    auto& log = per_thread_[thread];
    for (std::size_t i = 0; i < got; ++i) {
      log.push_back({OpKind::kPop, 0, results[i], true, invoke, response, thread, batch,
                     static_cast<std::uint32_t>(i)});
    }
    if (got < requested) {
      log.push_back({OpKind::kPop, 0, 0, true, invoke, response, thread, batch,
                     static_cast<std::uint32_t>(got)});
    }
  }

  /// Merges the per-thread logs (call after all threads joined).
  [[nodiscard]] History collect() const {
    History all;
    for (const auto& v : per_thread_) {
      all.insert(all.end(), v.begin(), v.end());
    }
    return all;
  }

 private:
  std::atomic<std::uint64_t> clock_{1};
  std::vector<History> per_thread_;
};

}  // namespace evq::verify
