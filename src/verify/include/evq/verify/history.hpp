// Concurrent operation histories for linearizability checking.
//
// A history is a set of operations with invocation/response "timestamps"
// drawn from one global atomic counter. Timestamps give a sound
// happens-before approximation: if op A's response timestamp is smaller
// than op B's invocation timestamp, A really did complete before B began,
// so every linearization must order A before B. (Ops whose windows overlap
// may be ordered either way — that freedom is what the checker searches.)
//
// Values are plain integers; 0 is reserved for "pop returned empty".
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace evq::verify {

enum class OpKind : std::uint8_t {
  kPush,  // arg = value; ok = accepted (false => queue reported full)
  kPop,   // result = value popped, or 0 if queue reported empty
};

struct Operation {
  OpKind kind = OpKind::kPush;
  std::uint64_t arg = 0;     // pushed value (kPush only)
  std::uint64_t result = 0;  // popped value or 0 = empty (kPop only)
  bool ok = true;            // push accepted (kPush only)
  std::uint64_t invoke = 0;
  std::uint64_t response = 0;
  std::uint32_t thread = 0;

  [[nodiscard]] std::string to_string() const {
    if (kind == OpKind::kPush) {
      return "push(" + std::to_string(arg) + ")=" + (ok ? "ok" : "full") + " [" +
             std::to_string(invoke) + "," + std::to_string(response) + ")t" +
             std::to_string(thread);
    }
    return "pop()=" + (result == 0 ? std::string("empty") : std::to_string(result)) + " [" +
           std::to_string(invoke) + "," + std::to_string(response) + ")t" +
           std::to_string(thread);
  }
};

using History = std::vector<Operation>;

/// Thread-safe recorder: wrap each queue call between begin()/end calls.
class HistoryRecorder {
 public:
  /// Reserve per-thread space up front so recording does not allocate (and
  /// therefore does not serialize) inside the measured region.
  HistoryRecorder(std::uint32_t threads, std::size_t ops_per_thread) : per_thread_(threads) {
    for (auto& v : per_thread_) {
      v.reserve(ops_per_thread);
    }
  }

  [[nodiscard]] std::uint64_t begin() noexcept {
    return clock_.fetch_add(1, std::memory_order_acq_rel);
  }

  void end_push(std::uint32_t thread, std::uint64_t invoke, std::uint64_t value, bool ok) {
    const std::uint64_t response = clock_.fetch_add(1, std::memory_order_acq_rel);
    per_thread_[thread].push_back(
        {OpKind::kPush, value, 0, ok, invoke, response, thread});
  }

  void end_pop(std::uint32_t thread, std::uint64_t invoke, std::uint64_t result) {
    const std::uint64_t response = clock_.fetch_add(1, std::memory_order_acq_rel);
    per_thread_[thread].push_back(
        {OpKind::kPop, 0, result, true, invoke, response, thread});
  }

  /// Merges the per-thread logs (call after all threads joined).
  [[nodiscard]] History collect() const {
    History all;
    for (const auto& v : per_thread_) {
      all.insert(all.end(), v.begin(), v.end());
    }
    return all;
  }

 private:
  std::atomic<std::uint64_t> clock_{1};
  std::vector<History> per_thread_;
};

}  // namespace evq::verify
