// Exhaustive linearizability checker for bounded-FIFO-queue histories, in
// the spirit of Wing & Gong [16] (the paper's reference for testing
// concurrent objects).
//
// Given a history of push/pop operations with real-time precedence (from
// history.hpp timestamps), the checker searches for a total order that (a)
// respects precedence — an op that completed before another began must come
// first — and (b) is legal for a sequential bounded FIFO queue:
//
//    push(v)=ok    : queue not full  -> v appended
//    push(v)=full  : queue full      -> no change
//    pop()=v       : queue front == v -> front removed
//    pop()=empty   : queue empty     -> no change
//
// The search is exponential in the worst case; memoizing (chosen-set,
// queue-content) states keeps small histories (<= ~24 ops, a few threads)
// comfortably fast. Use for targeted tests, never inside benchmarks.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "evq/common/config.hpp"
#include "evq/verify/history.hpp"

namespace evq::verify {

class LinearizabilityChecker {
 public:
  /// capacity == 0 means unbounded (push never legally reports full).
  explicit LinearizabilityChecker(std::size_t capacity) : capacity_(capacity) {}

  /// True iff `history` has at least one legal linearization.
  [[nodiscard]] bool check(const History& history) {
    ops_ = history;
    std::sort(ops_.begin(), ops_.end(),
              [](const Operation& a, const Operation& b) { return a.invoke < b.invoke; });
    EVQ_CHECK(ops_.size() <= 64, "exhaustive checker limited to 64 operations");
    // Batch ordering (history.hpp end_push_n/end_pop_n): sub-ops of one
    // batch call share a real-time window but must linearize in batch_rank
    // order. Encode that as a per-op prerequisite mask — op i may only be
    // chosen once every same-batch op with a smaller rank has been.
    prereq_.assign(ops_.size(), 0);
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (ops_[i].batch == 0) {
        continue;
      }
      for (std::size_t j = 0; j < ops_.size(); ++j) {
        if (j != i && ops_[j].batch == ops_[i].batch &&
            ops_[j].batch_rank < ops_[i].batch_rank) {
          prereq_[i] |= 1ull << j;
        }
      }
    }
    visited_.clear();
    std::deque<std::uint64_t> queue;
    return dfs(0, queue);
  }

 private:
  [[nodiscard]] bool dfs(std::uint64_t chosen_mask, std::deque<std::uint64_t>& queue) {
    const std::size_t n = ops_.size();
    if (std::popcount(chosen_mask) == static_cast<int>(n)) {
      return true;
    }
    if (!visited_.insert(state_key(chosen_mask, queue)).second) {
      return false;  // state already explored fruitlessly
    }
    // The earliest response among unchosen ops bounds which ops may
    // linearize next: an op invoked after that response is preceded by it.
    std::uint64_t min_response = UINT64_MAX;
    for (std::size_t i = 0; i < n; ++i) {
      if ((chosen_mask & (1ull << i)) == 0) {
        min_response = std::min(min_response, ops_[i].response);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if ((chosen_mask & (1ull << i)) != 0) {
        continue;
      }
      const Operation& op = ops_[i];
      if (op.invoke > min_response) {
        continue;  // some unchosen op strictly precedes this one
      }
      if ((prereq_[i] & chosen_mask) != prereq_[i]) {
        continue;  // earlier-ranked sub-ops of this batch not yet linearized
      }
      if (!apply(op, queue)) {
        continue;  // illegal in the current sequential state
      }
      if (dfs(chosen_mask | (1ull << i), queue)) {
        return true;
      }
      undo(op, queue);
    }
    return false;
  }

  /// Applies op to the model if legal; returns false (state untouched)
  /// otherwise.
  bool apply(const Operation& op, std::deque<std::uint64_t>& queue) const {
    if (op.kind == OpKind::kPush) {
      const bool full = capacity_ != 0 && queue.size() >= capacity_;
      if (op.ok) {
        if (full) {
          return false;
        }
        queue.push_back(op.arg);
        return true;
      }
      return full;  // reporting full is legal only when actually full
    }
    if (op.result == 0) {
      return queue.empty();  // reporting empty is legal only when empty
    }
    if (queue.empty() || queue.front() != op.result) {
      return false;
    }
    queue.pop_front();
    return true;
  }

  void undo(const Operation& op, std::deque<std::uint64_t>& queue) const {
    if (op.kind == OpKind::kPush) {
      if (op.ok) {
        queue.pop_back();
      }
    } else if (op.result != 0) {
      queue.push_front(op.result);
    }
  }

  [[nodiscard]] std::uint64_t state_key(std::uint64_t mask,
                                        const std::deque<std::uint64_t>& queue) const {
    // FNV-1a over (mask, queue contents). The queue contents are implied by
    // WHICH pushes/pops were chosen plus their order of application; two
    // different application orders with the same mask can differ, so the
    // contents must participate in the key.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t x) {
      h ^= x;
      h *= 0x100000001b3ull;
    };
    mix(mask);
    for (std::uint64_t v : queue) {
      mix(v);
    }
    return h;
  }

  const std::size_t capacity_;
  History ops_;
  std::vector<std::uint64_t> prereq_;
  std::unordered_set<std::uint64_t> visited_;
};

}  // namespace evq::verify
