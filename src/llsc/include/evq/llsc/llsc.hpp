// Load-linked / store-conditional emulation layer.
//
// The paper's Algorithm 1 (Fig. 3) assumes LL/SC with the *theoretical*
// semantics of its Fig. 2: SC(X, Y) succeeds iff no write to X occurred since
// this thread's LL(X), with arbitrarily many threads holding independent
// reservations and LL/SC pairs free to nest (the queue holds a reservation on
// a slot while doing LL/SC on Tail).
//
// No commodity hardware delivers those semantics (Sec. 5 lists the real
// restrictions) and this repository's benchmark platform is x86-64, which has
// no LL/SC at all — so, per the reproduction's substitution rule, we emulate:
//
//  * VersionedLlsc  — {value, 64-bit version} updated with cmpxchg16b. Exact
//    Fig. 2 semantics up to 2^64 version wraps.
//  * PackedLlsc     — 48-bit pointer + 16-bit version in ONE 64-bit word,
//    showing the algorithm genuinely runs on pointer-wide primitives.
//    Exact semantics up to 2^16 wraps within one LL/SC window.
//  * WeakLlsc<P>    — decorator adding random spurious SC failures, modelling
//    hardware limitation #3 (cache-line eviction / preemption clears the
//    reservation). Used to demonstrate the algorithm's retry loops absorb
//    spurious failure.
//
// API shape: a reservation is an explicit value-type Link returned by ll()
// and consumed by sc(). Explicit links (rather than hidden per-CPU
// reservation state) are what makes nesting trivially correct and makes the
// emulation population-oblivious.
#pragma once

#include <concepts>
#include <type_traits>

namespace evq::llsc {

/// Value types storable in an emulated LL/SC cell: raw pointers and
/// word-sized trivially copyable scalars.
template <typename T>
concept LlscValue =
    (std::is_pointer_v<T> || (std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(void*)));

/// An LL/SC cell policy. `Link` is an opaque snapshot naming "the state of
/// the cell at LL time"; sc(link, v) succeeds iff the cell has not been
/// successfully written since that LL.
template <typename P>
concept LlscCell = requires(P& cell, const P& ccell, typename P::Link link,
                            typename P::value_type v) {
  typename P::value_type;
  typename P::Link;
  requires std::copyable<typename P::Link>;
  { cell.ll() } -> std::same_as<typename P::Link>;
  { link.value() } -> std::convertible_to<typename P::value_type>;
  { cell.sc(link, v) } -> std::same_as<bool>;
  { cell.load() } -> std::same_as<typename P::value_type>;
};

}  // namespace evq::llsc
