// LL/SC view of a monotone counter.
//
// For the queue's Head/Tail indices LL/SC and plain CAS coincide: the paper
// deliberately lets the counters occupy a full word and only ever increments
// them (Sec. 3, index-ABA), so a value can recur only after a full 2^64 wrap
// — `CAS(&Tail, t, t+1)` therefore IS a faithful `LL(&Tail)==t; SC(&Tail,t+1)`.
// CounterCell packages that equivalence behind the same Link API as the slot
// cells so Algorithm 1 reads like the paper's pseudocode.
#pragma once

#include <atomic>
#include <cstdint>

#include "evq/common/op_stats.hpp"
#include "evq/inject/inject.hpp"
#include "evq/llsc/llsc.hpp"

namespace evq::llsc {

class CounterCell {
 public:
  using value_type = std::uint64_t;

  class Link {
   public:
    [[nodiscard]] std::uint64_t value() const noexcept { return snap_; }

   private:
    friend class CounterCell;
    explicit Link(std::uint64_t snap) noexcept : snap_(snap) {}
    std::uint64_t snap_;
  };

  CounterCell() noexcept : word_(0) {}
  explicit CounterCell(std::uint64_t init) noexcept : word_(init) {}

  CounterCell(const CounterCell&) = delete;
  CounterCell& operator=(const CounterCell&) = delete;

  [[nodiscard]] Link ll() noexcept { return Link{word_.load(std::memory_order_seq_cst)}; }

  /// Valid only for monotone use: desired must differ from every value the
  /// counter held since `link` (trivially true for increments).
  ///
  /// Deliberately a delay/stall point, NOT an EVQ_INJECT_SC_FAILS site: the
  /// CAS==LL/SC equivalence is EXACT (a CAS never fails spuriously), and
  /// Algorithm 1's one-shot index advances (E13/E17, D13/D17) lean on that
  /// exactness — they interpret failure as "another thread already advanced
  /// the index". A forced spurious failure on the stream's final operation
  /// would leave the index lagging with no helper ever coming, an execution
  /// no real schedule produces.
  bool sc(Link link, std::uint64_t desired) noexcept {
    EVQ_INJECT_POINT("counter_cell.sc");
    std::uint64_t expected = link.snap_;
    const bool ok = word_.compare_exchange_strong(expected, desired, std::memory_order_seq_cst);
    stats::on_cas(ok);
    return ok;
  }

  /// Validate: true iff the counter still holds the linked value (monotone
  /// counters cannot ABA, so equality is exact).
  [[nodiscard]] bool validate(Link link) noexcept {
    return word_.load(std::memory_order_seq_cst) == link.snap_;
  }

  [[nodiscard]] std::uint64_t load() noexcept { return word_.load(std::memory_order_seq_cst); }

  void store(std::uint64_t v) noexcept { word_.store(v, std::memory_order_seq_cst); }

 private:
  std::atomic<std::uint64_t> word_;
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free);
};

}  // namespace evq::llsc
