// LL/SC emulation via a {value, version} pair and double-width CAS.
//
// This is the reference emulation: a 64-bit version counter bumped on every
// successful SC or store makes the Fig. 2 semantics exact for any practical
// execution (an SC can only succeed wrongly after 2^64 intervening writes).
// It is NOT single-word — it stands in for the PowerPC's native lwarx/stwcx
// in experiments, while PackedLlsc demonstrates the single-word claim.
#pragma once

#include <cstdint>

#include "evq/common/dwcas.hpp"
#include "evq/inject/inject.hpp"
#include "evq/llsc/llsc.hpp"

namespace evq::llsc {

template <LlscValue T>
class VersionedLlsc {
 public:
  using value_type = T;

  /// Snapshot of the cell at LL time.
  class Link {
   public:
    [[nodiscard]] T value() const noexcept { return from_word(snap_.lo); }

   private:
    friend class VersionedLlsc;
    explicit Link(DwWord snap) noexcept : snap_(snap) {}
    DwWord snap_;
  };

  VersionedLlsc() noexcept : cell_(DwWord{0, 0}) {}
  explicit VersionedLlsc(T init) noexcept : cell_(DwWord{to_word(init), 0}) {}

  VersionedLlsc(const VersionedLlsc&) = delete;
  VersionedLlsc& operator=(const VersionedLlsc&) = delete;

  /// Load-linked: returns a reservation naming the current {value, version}.
  [[nodiscard]] Link ll() noexcept { return Link{cell_.load()}; }

  /// Store-conditional: succeeds iff no successful write happened since `link`.
  bool sc(Link link, T desired) noexcept {
    if (EVQ_INJECT_SC_FAILS("versioned_llsc.sc")) {
      return false;  // injected reservation loss — nothing written
    }
    DwWord expected = link.snap_;
    return cell_.compare_exchange(expected, DwWord{to_word(desired), expected.hi + 1});
  }

  /// Validate (the VL companion of LL/SC): true iff no write happened since
  /// `link` — i.e. an SC with this link would still succeed.
  [[nodiscard]] bool validate(Link link) noexcept { return cell_.load() == link.snap_; }

  /// Plain atomic read of the current value (no reservation).
  [[nodiscard]] T load() noexcept { return from_word(cell_.load().lo); }

  /// Unconditional write (bumps the version, so it invalidates reservations).
  void store(T desired) noexcept {
    DwWord expected = cell_.load();
    while (!cell_.compare_exchange(expected, DwWord{to_word(desired), expected.hi + 1})) {
    }
  }

  /// Current version counter — exposed for tests and diagnostics.
  [[nodiscard]] std::uint64_t version() noexcept { return cell_.load().hi; }

 private:
  static std::uint64_t to_word(T v) noexcept {
    if constexpr (std::is_pointer_v<T>) {
      return reinterpret_cast<std::uint64_t>(v);
    } else {
      return static_cast<std::uint64_t>(v);
    }
  }
  static T from_word(std::uint64_t w) noexcept {
    if constexpr (std::is_pointer_v<T>) {
      return reinterpret_cast<T>(w);
    } else {
      return static_cast<T>(w);
    }
  }

  AtomicDwWord cell_;
};

}  // namespace evq::llsc
