// Single-word LL/SC emulation: 48-bit pointer + 16-bit version in one
// 64-bit atomic.
//
// This policy backs the claim that Algorithm 1 needs nothing wider than a
// pointer: the version rides in the 16 canonical-address bits of an x86-64
// user-space pointer. The emulation is exact unless a reservation window
// spans 2^16 successful writes to the same cell — the same "bounded version,
// astronomically unlikely" trade-off the paper accepts for its indices
// (Sec. 3), only with a smaller bound. The conformance and stress suites run
// Algorithm 1 under this policy to show the bound is a non-issue in practice.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "evq/common/op_stats.hpp"
#include "evq/common/tagged_ptr.hpp"
#include "evq/inject/inject.hpp"
#include "evq/llsc/llsc.hpp"

namespace evq::llsc {

template <typename T>
  requires std::is_pointer_v<T>
class PackedLlsc {
 public:
  using value_type = T;

  class Link {
   public:
    [[nodiscard]] T value() const noexcept { return snap_.template ptr<std::remove_pointer_t<T>>(); }

   private:
    friend class PackedLlsc;
    explicit Link(PackedPtr snap) noexcept : snap_(snap) {}
    PackedPtr snap_;
  };

  PackedLlsc() noexcept : word_(0) {}
  explicit PackedLlsc(T init) noexcept : word_(PackedPtr::make(init, 0).raw()) {}

  PackedLlsc(const PackedLlsc&) = delete;
  PackedLlsc& operator=(const PackedLlsc&) = delete;

  [[nodiscard]] Link ll() noexcept {
    return Link{PackedPtr{word_.load(std::memory_order_seq_cst)}};
  }

  bool sc(Link link, T desired) noexcept {
    if (EVQ_INJECT_SC_FAILS("packed_llsc.sc")) {
      return false;  // injected reservation loss — nothing written
    }
    std::uint64_t expected = link.snap_.raw();
    const std::uint64_t next = link.snap_.bumped(desired).raw();
    const bool ok = word_.compare_exchange_strong(expected, next, std::memory_order_seq_cst);
    stats::on_cas(ok);
    return ok;
  }

  /// Validate (the VL companion of LL/SC): true iff no write happened since
  /// `link` — i.e. an SC with this link would still succeed.
  [[nodiscard]] bool validate(Link link) noexcept {
    return word_.load(std::memory_order_seq_cst) == link.snap_.raw();
  }

  [[nodiscard]] T load() noexcept {
    return PackedPtr{word_.load(std::memory_order_seq_cst)}.template ptr<std::remove_pointer_t<T>>();
  }

  void store(T desired) noexcept {
    std::uint64_t cur = word_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t next = PackedPtr{cur}.bumped(desired).raw();
      const bool ok = word_.compare_exchange_weak(cur, next, std::memory_order_seq_cst);
      stats::on_cas(ok);
      if (ok) {
        return;
      }
    }
  }

  [[nodiscard]] std::uint16_t version() noexcept {
    return PackedPtr{word_.load(std::memory_order_seq_cst)}.version();
  }

 private:
  std::atomic<std::uint64_t> word_;
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free);
};

}  // namespace evq::llsc
