// Spurious-failure decorator for LL/SC cells.
//
// Real LL/SC hardware may fail an SC even though nobody wrote the location
// (limitation #3 in Sec. 5: cache-line replacement or preemption clears the
// reservation bit). Algorithm 1's loops treat SC failure as "retry", so they
// must remain correct — merely slower — under arbitrary spurious failure.
// WeakLlsc injects such failures with a configurable probability so tests can
// demonstrate exactly that, and the A1 ablation bench can price it.
#pragma once

#include <atomic>
#include <cstdint>

#include "evq/common/rng.hpp"
#include "evq/inject/inject.hpp"
#include "evq/llsc/llsc.hpp"

namespace evq::llsc {

/// Wraps an LL/SC cell policy; each sc() additionally fails spuriously with
/// probability FailNum/FailDen. Probabilities are compile-time so the hot
/// path stays branch-cheap and cells stay default-constructible in arrays.
template <LlscCell Inner, std::uint32_t FailNum, std::uint32_t FailDen = 100>
class WeakLlsc {
  static_assert(FailDen > 0 && FailNum < FailDen, "failure probability must be in [0,1)");

 public:
  using value_type = typename Inner::value_type;
  using Link = typename Inner::Link;

  WeakLlsc() = default;
  explicit WeakLlsc(value_type init) noexcept : inner_(init) {}

  [[nodiscard]] Link ll() noexcept { return inner_.ll(); }

  bool sc(Link link, value_type desired) noexcept {
    if (EVQ_INJECT_SC_FAILS("weak_llsc.sc")) {
      return false;  // injected reservation loss — nothing written
    }
    if (FailNum != 0 && spurious_failure()) {
      return false;  // reservation "lost" — nothing written
    }
    return inner_.sc(link, desired);
  }

  /// Validation is a read, not a store — it does not fail spuriously.
  [[nodiscard]] bool validate(Link link) noexcept { return inner_.validate(link); }

  [[nodiscard]] value_type load() noexcept { return inner_.load(); }
  void store(value_type desired) noexcept { inner_.store(desired); }

 private:
  /// Deterministic per-object pseudo-random failure stream: a relaxed
  /// Weyl-sequence counter mixed by SplitMix64. The counter is shared by
  /// all threads touching this cell, which is exactly the granularity at
  /// which real reservation loss occurs (it is the cell's cache line that
  /// gets evicted).
  bool spurious_failure() noexcept {
    const std::uint64_t tick = mix_.fetch_add(0x9E3779B97F4A7C15ull, std::memory_order_relaxed);
    SplitMix64 mixer(tick ^ reinterpret_cast<std::uintptr_t>(this));
    return mixer.next() % FailDen < FailNum;
  }

  Inner inner_;
  std::atomic<std::uint64_t> mix_{0};
};

}  // namespace evq::llsc
