// evq::health — the interpretation layer of the observability stack
// (DESIGN.md §15). Layer one (evq::telemetry) counts raw events; layer two
// (evq::trace) samples op phases; this third layer turns both into verdicts:
// derived per-queue rates, per-thread progress, and typed findings with
// hysteresis. Everything here is cold-path — the only hot-path cost of
// running a Monitor is the telemetry layer's latency-reservoir sampling it
// enables (1-in-N countdown, gated at <= 5% total by CI's health-overhead
// job).
//
// The split between the pieces is deliberate:
//  * rate derivation (Monitor, monitor.hpp) owns the registry/flight-
//    recorder snapshots and the interval bookkeeping;
//  * the Diagnoser here is PURE over its inputs — rates in, findings out —
//    so detector rules and hysteresis are unit-testable without queues,
//    threads, or time;
//  * the sinks (render_prometheus_health, health_json) are pure formatting
//    over a HealthSnapshot.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace evq::health {

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// The typed verdicts the rule engine can reach. Each maps to a concrete
/// queue pathology with a deterministic injection-driven repro in
/// tests/health_injection_test.cpp:
enum class FindingType : std::uint8_t {
  /// SCQ livelock-avoidance threshold burn: `slot_skip`/op stays above
  /// threshold — dequeuers spend their threshold budget skipping unsafe or
  /// empty slots (the wCQ motivation: a preempted/parked ticket holder
  /// taxes every ring revolution).
  kThresholdBurn = 0,
  /// Combining collapse: ops keep electing the announce path
  /// (`comb_submit` rises) but no combiner completes passes — the combiner
  /// is stuck or batches degenerate, so announcers burn their spin window
  /// and withdraw to the direct path every time.
  kCombinerCollapse,
  /// Segmented-queue drift: `seg_alloc` − `seg_retire` keeps growing — a
  /// consumer pinned a segment (or retirement is wedged) while producers
  /// keep allocating.
  kSegmentLeak,
  /// A live thread's flight-recorder op sequence froze while the rest of
  /// the system made progress — it is stuck INSIDE an operation; the
  /// finding carries the stalled op phase from its ring.
  kThreadStalled,
  /// Cache thrash (layer 4, evq::perf): the queue's whole-queue perf scopes
  /// report sustained LLC misses per op above threshold — its hot words
  /// ping-pong between cores (false sharing / layout regression) instead of
  /// staying resident. Repro: two queues' index words pinned to one
  /// cacheline vs. a CachePadded quiet twin (tests/perf_test.cpp).
  kCacheThrash,
};

inline constexpr std::size_t kFindingTypeCount = 5;

/// Stable lowercase identifier ("threshold_burn", ...) used in Prometheus
/// labels, JSON, and evq-top.
const char* finding_type_name(FindingType t) noexcept;

struct Finding {
  FindingType type = FindingType::kThresholdBurn;
  /// What the finding is about: a registry queue name, or "thread <ord>".
  std::string subject;
  /// The rate that tripped the rule (units depend on type) — lets sinks
  /// sort by how far past the threshold the subject is.
  double severity = 0.0;
  /// Human-readable one-liner with the numbers behind the verdict.
  std::string detail;
  /// Poll index at which the finding became active (after hysteresis).
  std::uint64_t since_poll = 0;
};

// ---------------------------------------------------------------------------
// Derived inputs
// ---------------------------------------------------------------------------

/// One queue's interval rates, derived from telemetry counter deltas by the
/// Monitor (monitor.hpp documents the formulas).
struct QueueRates {
  std::string queue;
  std::uint32_t queue_id = 0;
  /// Completed op attempts this interval: push_ok+push_full+pop_ok+pop_empty.
  std::uint64_t ops = 0;
  double cas_fail_ratio = 0.0;    // slot SC/CAS failures per slot attempt
  double slot_skip_per_op = 0.0;  // SCQ unsafe/empty skips per op
  double faa_waste = 0.0;         // fraction of FAA tickets not matched by a success
  double comb_engagement = 0.0;   // announce-path ops per op
  double comb_mean_batch = 0.0;   // ops applied per combine pass (0 = no passes)
  std::uint64_t comb_submits = 0;
  std::uint64_t comb_combines = 0;
  /// CUMULATIVE seg_alloc − seg_retire (not an interval delta): live
  /// segments in flight. The facade invariant is ≤ 1 + segments holding
  /// data; sustained growth is a leak.
  std::int64_t seg_in_flight = 0;
  bool has_depth = false;
  std::uint64_t depth = 0;
  /// Latency-reservoir percentiles in nanoseconds; < 0 = no samples.
  double push_p50_ns = -1.0;
  double push_p99_ns = -1.0;
  double pop_p50_ns = -1.0;
  double pop_p99_ns = -1.0;
  /// Layer-4 rates, joined from the perf attribution table by queue name
  /// when the Monitor has one (MonitorOptions::perf). perf_live gates the
  /// whole block; per-op values are -1 when that event is unavailable.
  bool perf_live = false;
  std::uint64_t perf_ops = 0;  // ops attributed by perf scopes this interval
  double cycles_per_op = -1.0;
  double ipc = -1.0;
  double llc_miss_per_op = -1.0;
};

/// One flight-recorder ring's progress view for this interval.
struct ThreadProgress {
  std::uint32_t thread_ord = 0;
  bool live = false;
  /// Monotone per-owner op count (ThreadTrace::op_seq).
  std::uint64_t op_seq = 0;
  /// True when the Monitor judged this thread stalled THIS interval (live,
  /// previously active, sequence frozen while the system made progress).
  /// The Diagnoser applies hysteresis on top.
  bool stalled_now = false;
  /// Consecutive stalled intervals (Monitor bookkeeping, informational).
  std::uint32_t stalled_polls = 0;
  /// Last op from the ring — the "stalled op phase" shown in the finding.
  std::string last_op;
  std::string last_queue;
  std::uint64_t last_index = 0;
  std::uint32_t last_retries = 0;
};

// ---------------------------------------------------------------------------
// Rules + hysteresis
// ---------------------------------------------------------------------------

struct Thresholds {
  /// Rules that divide by ops stay quiet below this interval volume — rates
  /// over a handful of ops are noise, not signal.
  std::uint64_t min_ops = 64;
  /// kThresholdBurn: slot_skip / op above this.
  double slot_skip_per_op = 0.25;
  /// kCombinerCollapse: announce-path engagement above this while combine
  /// passes are absent or degenerate...
  double comb_engagement = 0.5;
  /// ...where "degenerate" is a mean batch below this (a healthy combiner
  /// under load batches > 1 op per pass).
  double comb_batch_floor = 1.05;
  /// kSegmentLeak: cumulative alloc − retire above this.
  std::int64_t seg_in_flight = 4;
  /// kCacheThrash: LLC misses per op above this while perf rates are live.
  /// A resident uncontended queue op misses ~0–1 lines; sustained > 2 means
  /// its hot lines bounce between cores every operation.
  double llc_miss_per_op = 2.0;
  /// Hysteresis: a rule must breach this many CONSECUTIVE polls to raise a
  /// finding...
  std::uint32_t trip_polls = 2;
  /// ...and pass this many consecutive polls to clear it. Transient spikes
  /// (one bursty interval) never flap a finding.
  std::uint32_t clear_polls = 2;
};

/// The full output of one Monitor poll.
struct HealthSnapshot {
  std::uint64_t poll = 0;  // 1-based poll index (0 = never polled)
  std::vector<QueueRates> queues;
  std::vector<ThreadProgress> threads;
  std::vector<Finding> findings;  // active after hysteresis, stable order
};

/// Pure rule engine: feeds interval rates through the five detectors and a
/// per-(rule, subject) trip/clear streak machine. Deterministic — same input
/// sequence, same findings — which is what the unit tests pin.
class Diagnoser {
 public:
  explicit Diagnoser(Thresholds thresholds = {}) : thresholds_(thresholds) {}

  /// Evaluates one interval and returns the findings active AFTER it.
  std::vector<Finding> evaluate(std::uint64_t poll, const std::vector<QueueRates>& queues,
                                const std::vector<ThreadProgress>& threads);

  [[nodiscard]] const Thresholds& thresholds() const noexcept { return thresholds_; }

 private:
  struct RuleState {
    FindingType type = FindingType::kThresholdBurn;
    std::string subject;
    std::uint32_t breach_streak = 0;
    std::uint32_t clear_streak = 0;
    bool active = false;
    std::uint64_t since_poll = 0;
    double severity = 0.0;
    std::string detail;
  };

  void observe(std::uint64_t poll, FindingType type, const std::string& subject, bool breached,
               double severity, std::string detail);

  Thresholds thresholds_;
  /// Keyed "<type>:<subject>"; ordered map so finding order is stable.
  std::map<std::string, RuleState> states_;
};

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Prometheus text-format rendering of a snapshot: evq_health_rate gauges
/// (one per derived rate per queue), evq_health_latency_ns quantile gauges
/// (queues with reservoir samples only), and evq_health_finding_active 1
/// gauges for the snapshot's active findings (absent series = quiet).
/// Labels go through telemetry::escape_label_value. Deterministic output,
/// pinned by a golden-style unit test.
void render_prometheus_health(std::ostream& os, const HealthSnapshot& snap);

inline constexpr int kHealthSchemaVersion = 1;

/// Versioned JSON document of a snapshot ("health_schema_version": 1).
/// Consumers (scripts/health_report.py, bench_diff.py, evq-top piping) may
/// rely on existing keys; new keys are additive, removals bump the version —
/// the same convention as the bench document.
void health_json(std::ostream& os, const HealthSnapshot& snap);

}  // namespace evq::health
