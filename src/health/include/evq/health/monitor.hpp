// Monitor: the stateful half of evq::health — snapshots the telemetry
// registry and flight recorder on an interval, derives QueueRates /
// ThreadProgress, and runs them through the Diagnoser.
//
// Two pumping modes, same poll() core:
//  * caller-pumped: construct, call poll() whenever convenient (the torture
//    watchdog pumps it from its 1ms wait loop; evq-bench pumps it per cell);
//  * background: start(interval) spawns one thread that polls until stop().
//
// Rate formulas (over the interval delta D of each counter, S = cumulative
// after-snapshot):
//    ops              = D[push_ok]+D[push_full]+D[pop_ok]+D[pop_empty]
//    cas_fail_ratio   = D[slot_sc_fail] / (D[slot_sc_fail]+D[push_ok]+D[pop_ok])
//    slot_skip_per_op = D[slot_skip] / ops
//    faa_waste        = max(0, D[faa_reserve] − 2·(D[push_ok]+D[pop_ok]))
//                         / max(D[faa_reserve], 1)
//    comb_engagement  = D[comb_submit] / ops — except for a combining
//                       facade entry paired with a "<name>/ring" sibling,
//                       where the denominator is the PAIR's op flow (the
//                       facade's own op counters are always zero; every
//                       push/pop lands on the inner ring's entry)
//    comb_mean_batch  = D[comb_combine] > 0 ? D[comb_batch_n]/D[comb_combine] : 0
//    seg_in_flight    = S[seg_alloc] − S[seg_retire]          (cumulative!)
//
// Thread progress: a ring is "stalled now" when its owner is live, tracing
// is enabled, the owner has recorded at least one op SINCE THE MONITOR'S
// BASELINE (rings of long-idle threads — a gtest main thread, a parked
// helper — never count), its op_seq did not advance this interval, and the
// system as a whole completed >= min_ops (so a globally idle process is
// quiet, not "everyone stalled").
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "evq/health/health.hpp"
#include "evq/perf/perf.hpp"
#include "evq/telemetry/prometheus.hpp"
#include "evq/telemetry/registry.hpp"

namespace evq::health {

struct MonitorOptions {
  /// Registry to watch; nullptr = telemetry::Registry::global().
  telemetry::Registry* registry = nullptr;
  Thresholds thresholds;
  /// The Monitor enables the telemetry latency reservoir at this 1-in-N
  /// period for its lifetime (previous period restored on destruction).
  /// 0 = leave the global sampling setting untouched.
  std::uint32_t latency_sample_every = 64;
  /// Optional layer-4 source: when set, each poll also deltas this perf
  /// attribution table and joins the per-queue cycles/op, IPC and LLC
  /// misses/op into QueueRates by queue name (perf keys with no telemetry
  /// entry get a rates-only entry), arming the cache_thrash detector.
  /// Typically &perf::AttributionTable::global(); nullptr = layer 4 off.
  perf::AttributionTable* perf = nullptr;
};

class Monitor {
 public:
  explicit Monitor(MonitorOptions options = {});
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Runs one interval: registry delta + flight-recorder progress +
  /// latency percentiles -> Diagnoser -> snapshot (also retained for
  /// last()). Thread-safe; concurrent polls serialize.
  HealthSnapshot poll();

  /// Spawns the background poller (no-op if already running).
  void start(std::chrono::milliseconds interval);
  /// Joins the background poller (no-op if not running). Idempotent.
  void stop();

  /// The most recent snapshot (empty, poll == 0, if never polled).
  [[nodiscard]] HealthSnapshot last() const;

 private:
  struct ThreadState {
    std::uint64_t baseline_seq = 0;  // op_seq when first seen by this Monitor
    std::uint64_t prev_seq = 0;
    bool ever_advanced = false;
    std::uint32_t stalled_polls = 0;
  };

  HealthSnapshot poll_locked();

  MonitorOptions options_;
  telemetry::Registry* registry_;
  std::uint32_t saved_latency_every_ = 0;

  mutable std::mutex mu_;
  telemetry::RegistrySnapshot prev_;
  perf::AttributionSnapshot prev_perf_;
  std::unordered_map<std::uint32_t, ThreadState> thread_states_;  // by ordinal
  Diagnoser diagnoser_;
  std::uint64_t polls_ = 0;
  HealthSnapshot last_;

  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool running_ = false;
  std::thread poller_;
};

}  // namespace evq::health
