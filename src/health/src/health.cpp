// evq::health implementation: Diagnoser rule engine + hysteresis, Monitor
// polling core, and the Prometheus/JSON sinks. Cold path throughout — this
// TU includes no injectable headers (telemetry + std only), so evq_health is
// safe to link into the EVQ_INJECT_ENABLED torture binary.
#include <algorithm>
#include <cstdio>
#include <ostream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "evq/health/health.hpp"
#include "evq/health/monitor.hpp"
#include "evq/telemetry/flight_recorder.hpp"
#include "evq/telemetry/latency.hpp"
#include "evq/telemetry/metrics.hpp"
#include "evq/telemetry/prometheus.hpp"

namespace evq::health {

namespace {

/// Deterministic double formatting for both sinks (no locale, fixed
/// precision) — the unit tests pin rendered output.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

const char* finding_type_name(FindingType t) noexcept {
  switch (t) {
    case FindingType::kThresholdBurn:
      return "threshold_burn";
    case FindingType::kCombinerCollapse:
      return "combiner_collapse";
    case FindingType::kSegmentLeak:
      return "segment_leak";
    case FindingType::kThreadStalled:
      return "thread_stalled";
    case FindingType::kCacheThrash:
      return "cache_thrash";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Diagnoser
// ---------------------------------------------------------------------------

void Diagnoser::observe(std::uint64_t poll, FindingType type, const std::string& subject,
                        bool breached, double severity, std::string detail) {
  const std::string key = std::string(finding_type_name(type)) + ":" + subject;
  auto it = states_.find(key);
  if (it == states_.end()) {
    if (!breached) {
      return;  // never breached: no state to carry, keep the map bounded
    }
    it = states_.emplace(key, RuleState{}).first;
    it->second.type = type;
    it->second.subject = subject;
  }
  RuleState& s = it->second;
  if (breached) {
    s.clear_streak = 0;
    ++s.breach_streak;
    s.severity = severity;
    s.detail = std::move(detail);
    if (!s.active && s.breach_streak >= thresholds_.trip_polls) {
      s.active = true;
      s.since_poll = poll;
    }
  } else {
    s.breach_streak = 0;
    ++s.clear_streak;
    if (s.active && s.clear_streak >= thresholds_.clear_polls) {
      s.active = false;
    }
  }
}

std::vector<Finding> Diagnoser::evaluate(std::uint64_t poll,
                                         const std::vector<QueueRates>& queues,
                                         const std::vector<ThreadProgress>& threads) {
  for (const QueueRates& q : queues) {
    const bool enough = q.ops >= thresholds_.min_ops;

    const bool burn = enough && q.slot_skip_per_op > thresholds_.slot_skip_per_op;
    observe(poll, FindingType::kThresholdBurn, q.queue, burn, q.slot_skip_per_op,
            "slot_skip/op " + fmt(q.slot_skip_per_op) + " over " + std::to_string(q.ops) +
                " ops (threshold " + fmt(thresholds_.slot_skip_per_op) + ")");

    // The combining facade's registry entry carries only comb_* counters
    // (every push/pop, direct or combined, lands on its "<name>/ring"
    // sibling), so the collapse rule accepts submit volume as its gate.
    const bool collapse = (enough || q.comb_submits >= thresholds_.min_ops) &&
                          q.comb_submits > 0 &&
                          q.comb_engagement > thresholds_.comb_engagement &&
                          (q.comb_combines == 0 ||
                           q.comb_mean_batch < thresholds_.comb_batch_floor);
    observe(poll, FindingType::kCombinerCollapse, q.queue, collapse, q.comb_engagement,
            "engagement " + fmt(q.comb_engagement) + " with " +
                std::to_string(q.comb_combines) + " combine pass(es), mean batch " +
                fmt(q.comb_mean_batch) + " (floor " + fmt(thresholds_.comb_batch_floor) + ")");

    const bool leak = q.seg_in_flight > thresholds_.seg_in_flight;
    observe(poll, FindingType::kSegmentLeak, q.queue, leak,
            static_cast<double>(q.seg_in_flight),
            std::to_string(q.seg_in_flight) + " segment(s) in flight (alloc - retire, limit " +
                std::to_string(thresholds_.seg_in_flight) + ")");

    // Layer-4 rule: gated on the perf scopes' own op count, not telemetry
    // ops, so it works for queues attributed only through QueuePerfScope.
    const bool thrash = q.perf_live && q.perf_ops >= thresholds_.min_ops &&
                        q.llc_miss_per_op > thresholds_.llc_miss_per_op;
    observe(poll, FindingType::kCacheThrash, q.queue, thrash, q.llc_miss_per_op,
            "llc_miss/op " + fmt(q.llc_miss_per_op) + " over " + std::to_string(q.perf_ops) +
                " ops, cycles/op " + fmt(q.cycles_per_op) + ", ipc " + fmt(q.ipc) +
                " (threshold " + fmt(thresholds_.llc_miss_per_op) + ")");
  }

  for (const ThreadProgress& t : threads) {
    observe(poll, FindingType::kThreadStalled, "thread " + std::to_string(t.thread_ord),
            t.stalled_now, static_cast<double>(t.stalled_polls),
            "op_seq frozen at " + std::to_string(t.op_seq) + " for " +
                std::to_string(t.stalled_polls) + " poll(s); last op " + t.last_op +
                " queue=" + t.last_queue + " index=" + std::to_string(t.last_index) +
                " retries=" + std::to_string(t.last_retries));
  }

  std::vector<Finding> active;
  for (const auto& [key, s] : states_) {
    if (s.active) {
      Finding f;
      f.type = s.type;
      f.subject = s.subject;
      f.severity = s.severity;
      f.detail = s.detail;
      f.since_poll = s.since_poll;
      active.push_back(std::move(f));
    }
  }
  return active;
}

// ---------------------------------------------------------------------------
// Monitor
// ---------------------------------------------------------------------------

Monitor::Monitor(MonitorOptions options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry : &telemetry::Registry::global()),
      diagnoser_(options.thresholds) {
  if (options_.latency_sample_every > 0) {
    saved_latency_every_ = telemetry::latency_sampling_period();
    telemetry::set_latency_sampling(options_.latency_sample_every);
  }
}

Monitor::~Monitor() {
  stop();
  if (options_.latency_sample_every > 0) {
    telemetry::set_latency_sampling(saved_latency_every_);
  }
}

HealthSnapshot Monitor::poll() {
  std::lock_guard<std::mutex> lock(mu_);
  return poll_locked();
}

HealthSnapshot Monitor::last() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

namespace {

using Ctr = telemetry::Counter;

std::uint64_t ctr(const telemetry::CounterSnapshot& s, Ctr c) {
  return s.counts[static_cast<std::size_t>(c)];
}

/// p in [0, 1] over a sorted-in-place tick vector; < 0 when empty.
double percentile_ns(std::vector<std::uint64_t>& ticks, double p) {
  if (ticks.empty()) {
    return -1.0;
  }
  std::sort(ticks.begin(), ticks.end());
  const auto idx = static_cast<std::size_t>(
      static_cast<double>(ticks.size() - 1) * p + 0.5);
  return static_cast<double>(ticks[idx]) * telemetry::ns_per_tick();
}

}  // namespace

HealthSnapshot Monitor::poll_locked() {
  const telemetry::RegistrySnapshot after = telemetry::snapshot_registry(*registry_);
  const telemetry::RegistrySnapshot delta = telemetry::snapshot_delta(prev_, after);

  HealthSnapshot snap;
  snap.poll = ++polls_;

  // --- Per-queue rates -----------------------------------------------------
  std::unordered_map<std::uint32_t, std::vector<telemetry::LatencyWindow>::const_iterator>
      window_of;
  const std::vector<telemetry::LatencyWindow> windows = telemetry::latency_windows();
  for (auto it = windows.begin(); it != windows.end(); ++it) {
    window_of.emplace(it->queue_id, it);
  }

  std::unordered_map<std::uint32_t, std::string> name_of_id;
  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < delta.queues.size(); ++i) {
    const telemetry::QueueCounters& d = delta.queues[i];
    const telemetry::QueueCounters& cum = after.queues[i];  // delta preserves order
    name_of_id.emplace(cum.id, cum.queue);

    QueueRates r;
    r.queue = d.queue;
    r.queue_id = cum.id;
    const std::uint64_t push_ok = ctr(d.counters, Ctr::kPushOk);
    const std::uint64_t pop_ok = ctr(d.counters, Ctr::kPopOk);
    r.ops = push_ok + ctr(d.counters, Ctr::kPushFull) + pop_ok +
            ctr(d.counters, Ctr::kPopEmpty);
    total_ops += r.ops;

    const std::uint64_t sc_fail = ctr(d.counters, Ctr::kSlotScFail);
    if (sc_fail + push_ok + pop_ok > 0) {
      r.cas_fail_ratio =
          static_cast<double>(sc_fail) / static_cast<double>(sc_fail + push_ok + pop_ok);
    }
    if (r.ops > 0) {
      r.slot_skip_per_op =
          static_cast<double>(ctr(d.counters, Ctr::kSlotSkip)) / static_cast<double>(r.ops);
    }
    const std::uint64_t faa = ctr(d.counters, Ctr::kFaaReserve);
    if (faa > 0) {
      // A matched SCQ op consumes two FAA tickets (fq + aq side); the rest
      // is wasted reservation work.
      const std::uint64_t matched = 2 * (push_ok + pop_ok);
      r.faa_waste = faa > matched ? static_cast<double>(faa - matched) /
                                        static_cast<double>(faa)
                                  : 0.0;
    }
    r.comb_submits = ctr(d.counters, Ctr::kCombSubmit);
    r.comb_combines = ctr(d.counters, Ctr::kCombCombine);
    if (r.ops > 0) {
      r.comb_engagement =
          static_cast<double>(r.comb_submits) / static_cast<double>(r.ops);
    }
    if (r.comb_combines > 0) {
      r.comb_mean_batch = static_cast<double>(ctr(d.counters, Ctr::kCombBatchN)) /
                          static_cast<double>(r.comb_combines);
    }
    // Cumulative on purpose: a leak is segments alive NOW, not this interval.
    r.seg_in_flight =
        static_cast<std::int64_t>(ctr(cum.counters, Ctr::kSegAlloc)) -
        static_cast<std::int64_t>(ctr(cum.counters, Ctr::kSegRetire));
    r.has_depth = d.has_depth;
    r.depth = d.depth;

    if (const auto wit = window_of.find(r.queue_id); wit != window_of.end()) {
      std::vector<std::uint64_t> push_ticks = wit->second->push_ticks;
      std::vector<std::uint64_t> pop_ticks = wit->second->pop_ticks;
      r.push_p50_ns = percentile_ns(push_ticks, 0.50);
      r.push_p99_ns = percentile_ns(push_ticks, 0.99);
      r.pop_p50_ns = percentile_ns(pop_ticks, 0.50);
      r.pop_p99_ns = percentile_ns(pop_ticks, 0.99);
    }
    snap.queues.push_back(std::move(r));
  }

  // A combining facade registers two entries: "<name>" holds the comb_*
  // counters, while every ring op — direct-path, withdrawn, or applied by a
  // combiner batch — lands on "<name>/ring". Pair them so the facade's
  // comb_engagement is announce-path ops per actual op, not per the facade
  // entry's (always-zero) op count.
  std::unordered_map<std::string, std::size_t> index_of_name;
  for (std::size_t i = 0; i < snap.queues.size(); ++i) {
    index_of_name.emplace(snap.queues[i].queue, i);
  }
  for (QueueRates& r : snap.queues) {
    if (r.comb_submits == 0) {
      continue;
    }
    const auto rit = index_of_name.find(r.queue + "/ring");
    if (rit == index_of_name.end()) {
      continue;
    }
    const std::uint64_t flow = r.ops + snap.queues[rit->second].ops;
    if (flow > 0) {
      r.comb_engagement = static_cast<double>(r.comb_submits) / static_cast<double>(flow);
    }
  }

  // --- Layer-4 perf join ---------------------------------------------------
  // Whole-queue attribution deltas merged into QueueRates by registry name.
  // The attribution table is append-only (like the registry), so a
  // before/after snapshot pair is an exact interval delta.
  if (options_.perf != nullptr) {
    const perf::AttributionSnapshot pafter = options_.perf->snapshot();
    std::unordered_map<std::string, std::size_t> rate_index;
    for (std::size_t i = 0; i < snap.queues.size(); ++i) {
      rate_index.emplace(snap.queues[i].queue, i);
    }
    for (const auto& [name, agg] : pafter.queues) {
      const perf::PerfAgg* before = prev_perf_.find(name);
      const perf::PerfAgg delta =
          before != nullptr ? perf::agg_delta(agg, *before) : agg;
      if (delta.scopes == 0 && delta.ops == 0) {
        continue;  // no deposits this interval
      }
      QueueRates* r;
      if (const auto it = rate_index.find(name); it != rate_index.end()) {
        r = &snap.queues[it->second];
      } else {
        QueueRates fresh;
        fresh.queue = name;
        snap.queues.push_back(std::move(fresh));
        r = &snap.queues.back();
      }
      r->perf_live = true;
      r->perf_ops = delta.ops;
      r->cycles_per_op = delta.per_op(perf::Event::kCycles);
      r->ipc = delta.ipc();
      r->llc_miss_per_op = delta.per_op(perf::Event::kLlcMisses);
    }
    prev_perf_ = pafter;
  }

  // --- Per-thread progress -------------------------------------------------
  const bool system_progressing = total_ops >= options_.thresholds.min_ops;
  const bool tracing = telemetry::tracing_enabled();
  for (const telemetry::LastOpState& s : telemetry::last_ops_per_thread()) {
    auto [it, fresh] = thread_states_.try_emplace(s.thread_ord);
    ThreadState& st = it->second;
    if (fresh) {
      // First sight of this ring: baseline only. A ring that never advances
      // past its baseline is idle-from-our-perspective, never stalled.
      st.baseline_seq = s.op_seq;
      st.prev_seq = s.op_seq;
    }
    ThreadProgress p;
    p.thread_ord = s.thread_ord;
    p.live = s.thread_live;
    p.op_seq = s.op_seq;
    if (s.op_seq != st.prev_seq) {
      st.ever_advanced = true;
    }
    const bool frozen = !fresh && s.op_seq == st.prev_seq;
    p.stalled_now = tracing && s.thread_live && st.ever_advanced && frozen &&
                    system_progressing;
    st.stalled_polls = p.stalled_now ? st.stalled_polls + 1 : 0;
    p.stalled_polls = st.stalled_polls;
    st.prev_seq = s.op_seq;

    p.last_op = telemetry::trace_op_name(s.op);
    const auto nit = name_of_id.find(s.queue_id);
    p.last_queue = nit != name_of_id.end() ? nit->second : std::to_string(s.queue_id);
    p.last_index = s.index;
    p.last_retries = s.retries;
    snap.threads.push_back(std::move(p));
  }

  snap.findings = diagnoser_.evaluate(snap.poll, snap.queues, snap.threads);

  prev_ = after;
  last_ = snap;
  return snap;
}

void Monitor::start(std::chrono::milliseconds interval) {
  std::lock_guard<std::mutex> lock(run_mu_);
  if (running_) {
    return;
  }
  if (poller_.joinable()) {
    poller_.join();  // a previous start/stop cycle finished; reap it
  }
  running_ = true;
  poller_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lk(run_mu_);
    while (running_) {
      if (run_cv_.wait_for(lk, interval, [this] { return !running_; })) {
        break;
      }
      lk.unlock();
      poll();
      lk.lock();
    }
  });
}

void Monitor::stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    running_ = false;
  }
  run_cv_.notify_all();
  if (poller_.joinable()) {
    poller_.join();
  }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

void render_prometheus_health(std::ostream& os, const HealthSnapshot& snap) {
  os << "# HELP evq_health_rate Derived per-queue health rates over the last poll interval.\n";
  os << "# TYPE evq_health_rate gauge\n";
  for (const QueueRates& q : snap.queues) {
    const std::string label = telemetry::escape_label_value(q.queue);
    auto rate = [&](const char* name, const std::string& value) {
      os << "evq_health_rate{queue=\"" << label << "\",rate=\"" << name << "\"} " << value
         << "\n";
    };
    rate("ops", std::to_string(q.ops));
    rate("cas_fail_ratio", fmt(q.cas_fail_ratio));
    rate("slot_skip_per_op", fmt(q.slot_skip_per_op));
    rate("faa_waste", fmt(q.faa_waste));
    rate("comb_engagement", fmt(q.comb_engagement));
    rate("comb_mean_batch", fmt(q.comb_mean_batch));
    rate("seg_in_flight", std::to_string(q.seg_in_flight));
    if (q.has_depth) {
      rate("depth", std::to_string(q.depth));
    }
    if (q.perf_live) {
      rate("perf_ops", std::to_string(q.perf_ops));
      if (q.cycles_per_op >= 0.0) {
        rate("cycles_per_op", fmt(q.cycles_per_op));
      }
      if (q.ipc >= 0.0) {
        rate("ipc", fmt(q.ipc));
      }
      if (q.llc_miss_per_op >= 0.0) {
        rate("llc_miss_per_op", fmt(q.llc_miss_per_op));
      }
    }
  }
  os << "# HELP evq_health_latency_ns Sampled operation latency quantiles (SLO reservoir).\n";
  os << "# TYPE evq_health_latency_ns gauge\n";
  for (const QueueRates& q : snap.queues) {
    const std::string label = telemetry::escape_label_value(q.queue);
    auto quantile = [&](const char* op, const char* qn, double v) {
      if (v >= 0.0) {
        os << "evq_health_latency_ns{queue=\"" << label << "\",op=\"" << op
           << "\",quantile=\"" << qn << "\"} " << fmt(v) << "\n";
      }
    };
    quantile("push", "p50", q.push_p50_ns);
    quantile("push", "p99", q.push_p99_ns);
    quantile("pop", "p50", q.pop_p50_ns);
    quantile("pop", "p99", q.pop_p99_ns);
  }
  os << "# HELP evq_health_finding_active Health findings currently firing (after hysteresis).\n";
  os << "# TYPE evq_health_finding_active gauge\n";
  for (const Finding& f : snap.findings) {
    os << "evq_health_finding_active{type=\"" << finding_type_name(f.type) << "\",subject=\""
       << telemetry::escape_label_value(f.subject) << "\"} 1\n";
  }
}

void health_json(std::ostream& os, const HealthSnapshot& snap) {
  os << "{\"health_schema_version\":" << kHealthSchemaVersion << ",\"poll\":" << snap.poll
     << ",\"queues\":[";
  bool first = true;
  for (const QueueRates& q : snap.queues) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"queue\":\"" << json_escape(q.queue) << "\",\"id\":" << q.queue_id
       << ",\"ops\":" << q.ops << ",\"rates\":{\"cas_fail_ratio\":" << fmt(q.cas_fail_ratio)
       << ",\"slot_skip_per_op\":" << fmt(q.slot_skip_per_op)
       << ",\"faa_waste\":" << fmt(q.faa_waste)
       << ",\"comb_engagement\":" << fmt(q.comb_engagement)
       << ",\"comb_mean_batch\":" << fmt(q.comb_mean_batch)
       << ",\"seg_in_flight\":" << q.seg_in_flight << "}";
    if (q.has_depth) {
      os << ",\"depth\":" << q.depth;
    }
    if (q.push_p50_ns >= 0.0 || q.pop_p50_ns >= 0.0) {
      os << ",\"latency_ns\":{";
      bool lfirst = true;
      auto emit = [&](const char* key, double v) {
        if (v >= 0.0) {
          os << (lfirst ? "" : ",") << "\"" << key << "\":" << fmt(v);
          lfirst = false;
        }
      };
      emit("push_p50", q.push_p50_ns);
      emit("push_p99", q.push_p99_ns);
      emit("pop_p50", q.pop_p50_ns);
      emit("pop_p99", q.pop_p99_ns);
      os << "}";
    }
    if (q.perf_live) {
      os << ",\"perf\":{\"ops\":" << q.perf_ops;
      auto pemit = [&](const char* key, double v) {
        if (v >= 0.0) {
          os << ",\"" << key << "\":" << fmt(v);
        }
      };
      pemit("cycles_per_op", q.cycles_per_op);
      pemit("ipc", q.ipc);
      pemit("llc_miss_per_op", q.llc_miss_per_op);
      os << "}";
    }
    os << "}";
  }
  os << "],\"threads\":[";
  first = true;
  for (const ThreadProgress& t : snap.threads) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"ord\":" << t.thread_ord << ",\"live\":" << (t.live ? "true" : "false")
       << ",\"op_seq\":" << t.op_seq
       << ",\"stalled_now\":" << (t.stalled_now ? "true" : "false")
       << ",\"stalled_polls\":" << t.stalled_polls << ",\"last_op\":\""
       << json_escape(t.last_op) << "\",\"last_queue\":\"" << json_escape(t.last_queue)
       << "\",\"last_index\":" << t.last_index << ",\"last_retries\":" << t.last_retries
       << "}";
  }
  os << "],\"findings\":[";
  first = true;
  for (const Finding& f : snap.findings) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"type\":\"" << finding_type_name(f.type) << "\",\"subject\":\""
       << json_escape(f.subject) << "\",\"severity\":" << fmt(f.severity)
       << ",\"since_poll\":" << f.since_poll << ",\"detail\":\"" << json_escape(f.detail)
       << "\"}";
  }
  os << "]}\n";
}

}  // namespace evq::health
