#include "evq/common/op_stats.hpp"

namespace evq::stats::detail {

// Defined here (not inline in the header) so the TLS symbol lives in exactly
// one translation unit — see DESIGN.md's note on the COMDAT-TLS linker issue.
thread_local OpCounters* t_recorder = nullptr;

}  // namespace evq::stats::detail
