// Small deterministic PRNGs for tests, failure injection and workloads.
//
// Benchmark and stress code must not share a global RNG (the lock inside
// std::random_device / contention on a shared engine would serialize the very
// threads whose contention we are measuring), so each thread owns an
// independently seeded XorShift64Star.
#pragma once

#include <cstdint>

namespace evq {

/// SplitMix64 — used to derive well-mixed seeds from small integers
/// (thread ids, run indices).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xorshift64* — fast, decent-quality 64-bit generator for hot paths.
class XorShift64Star {
 public:
  explicit constexpr XorShift64Star(std::uint64_t seed = 0x853C49E6748FEA9Bull) noexcept
      : state_(seed != 0 ? seed : 0x2545F4914F6CDD1Dull) {}

  /// Derives an independent stream for (seed, stream) — e.g. (run, thread).
  static XorShift64Star for_stream(std::uint64_t seed, std::uint64_t stream) noexcept {
    SplitMix64 mix(seed * 0x9E3779B97F4A7C15ull + stream + 1);
    return XorShift64Star(mix.next());
  }

  constexpr std::uint64_t next() noexcept {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform value in [0, bound) (bound > 0). Slight modulo bias is
  /// acceptable for workload shaping and failure injection.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept { return next() % bound; }

  /// Bernoulli trial with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) noexcept {
    return next_below(den) < num;
  }

 private:
  std::uint64_t state_;
};

}  // namespace evq
