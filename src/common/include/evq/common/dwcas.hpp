// Double-width (16-byte) compare-and-swap.
//
// The paper's whole motivation is that emerging 64-bit architectures do NOT
// let you pack a large version counter next to a pointer and CAS both at once
// — wide CAS is either absent or expensive. This module exists to *implement
// the competitors* that need it (Shann et al.'s per-slot {value, counter}
// words, and the VersionedLlsc emulation policy) and to *measure* the
// narrow-vs-wide cost ratio the paper quotes (4.5x on its AMD machine); the
// contributed algorithms themselves never touch it.
//
// On x86-64 we issue `lock cmpxchg16b` directly via inline asm so the
// operation is genuinely lock-free (GCC's libatomic also uses cmpxchg16b at
// run time but std::atomic refuses to advertise lock-freedom for 16-byte
// types). A __atomic builtin fallback covers other platforms.
#pragma once

#include <cstdint>
#include <cstring>

#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"
#include "evq/common/op_stats.hpp"

namespace evq {

/// A 16-byte value manipulated by double-width CAS: two 64-bit lanes,
/// conventionally {lo = value/pointer, hi = version/counter}.
struct alignas(16) DwWord {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const DwWord& a, const DwWord& b) noexcept {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

namespace detail {

#if EVQ_ARCH_X86_64 && (defined(__GNUC__) || defined(__clang__))

EVQ_ALWAYS_INLINE bool dwcas_impl(DwWord* addr, DwWord& expected, const DwWord& desired) noexcept {
  bool ok;
  asm volatile("lock cmpxchg16b %[mem]"
               : [mem] "+m"(*addr), "=@ccz"(ok), "+a"(expected.lo), "+d"(expected.hi)
               : "b"(desired.lo), "c"(desired.hi)
               : "memory");
  return ok;
}

#else

EVQ_ALWAYS_INLINE bool dwcas_impl(DwWord* addr, DwWord& expected, const DwWord& desired) noexcept {
  return __atomic_compare_exchange(addr, &expected, const_cast<DwWord*>(&desired),
                                   /*weak=*/false, __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST);
}

#endif

}  // namespace detail

/// A 16-byte atomic cell with sequentially consistent load/store/CAS.
///
/// load() is implemented as a CAS with an arbitrary expected value (the
/// standard cmpxchg16b idiom, also what libatomic does), so the cell must
/// live in writable memory.
class AtomicDwWord {
 public:
  AtomicDwWord() noexcept = default;
  explicit AtomicDwWord(DwWord init) noexcept : word_(init) {}

  AtomicDwWord(const AtomicDwWord&) = delete;
  AtomicDwWord& operator=(const AtomicDwWord&) = delete;

  /// Atomically reads the current 16-byte value.
  [[nodiscard]] DwWord load() noexcept {
    stats::on_wide_load();
    DwWord expected{};  // arbitrary; CAS writes back the real value on failure
    detail::dwcas_impl(&word_, expected, expected);
    return expected;
  }

  /// Atomically replaces the value (CAS loop).
  void store(const DwWord& desired) noexcept {
    DwWord expected = load();
    while (!compare_exchange(expected, desired)) {
    }
  }

  /// Strong compare-and-swap. On failure, `expected` is updated with the
  /// value observed in memory.
  bool compare_exchange(DwWord& expected, const DwWord& desired) noexcept {
    const bool ok = detail::dwcas_impl(&word_, expected, desired);
    stats::on_wide_cas(ok);
    return ok;
  }

 private:
  DwWord word_{};
};

static_assert(sizeof(AtomicDwWord) == 16);
static_assert(alignof(AtomicDwWord) == 16);

}  // namespace evq
