// CPU pause primitive and bounded exponential backoff.
//
// The paper's retry loops (every failed CAS/SC restarts the operation) are
// where contention melts throughput; a short bounded spin-then-yield backoff
// keeps the algorithms lock-free while taming the retry storm. Backoff is a
// tuning aid, not a correctness requirement — the conformance tests run every
// queue both with and without it.
#pragma once

#include <cstdint>
#include <thread>

#include "evq/common/config.hpp"

namespace evq {

/// Hint to the CPU that we are in a spin-wait loop.
EVQ_ALWAYS_INLINE void cpu_relax() noexcept {
#if EVQ_ARCH_X86_64
  __builtin_ia32_pause();
#else
  // Portable fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

/// Bounded exponential backoff: spins with cpu_relax() doubling each round up
/// to kSpinLimit iterations, then degrades to std::this_thread::yield() so an
/// oversubscribed loser donates its timeslice to the thread it is waiting out.
class Backoff {
 public:
  static constexpr std::uint32_t kInitialSpin = 4;
  static constexpr std::uint32_t kSpinLimit = 1024;

  /// Performs one backoff round. Each call waits roughly twice as long as the
  /// previous one until the spin limit is reached, after which it yields.
  void pause() noexcept {
    if (spin_ <= kSpinLimit) {
      for (std::uint32_t i = 0; i < spin_; ++i) {
        cpu_relax();
      }
      spin_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

  /// True once pause() has escalated past pure spinning.
  [[nodiscard]] bool is_yielding() const noexcept { return spin_ > kSpinLimit; }

  /// Resets to the initial (shortest) wait.
  void reset() noexcept { spin_ = kInitialSpin; }

 private:
  std::uint32_t spin_ = kInitialSpin;
};

/// A no-op drop-in for Backoff, used to measure raw retry-storm behaviour.
class NullBackoff {
 public:
  void pause() noexcept {}
  [[nodiscard]] bool is_yielding() const noexcept { return false; }
  void reset() noexcept {}
};

/// ContentionPolicy names used by the ring engine (core/ring_engine.hpp):
/// NoBackoff is the paper-faithful default (the published loops retry
/// immediately); ExpBackoff is the opt-in spin-then-yield policy priced by
/// bench_backoff.
using NoBackoff = NullBackoff;
using ExpBackoff = Backoff;

}  // namespace evq
