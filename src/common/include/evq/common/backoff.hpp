// CPU pause primitive, bounded exponential backoff, and the op-submission
// contention seam.
//
// The paper's retry loops (every failed CAS/SC restarts the operation) are
// where contention melts throughput; a short bounded spin-then-yield backoff
// keeps the algorithms lock-free while taming the retry storm. Backoff is a
// tuning aid, not a correctness requirement — the conformance tests run every
// queue both with and without it.
//
// The ContentionPolicy seam (DESIGN.md §14) generalizes the original blind
// pause() hook into an OP-AWARE submission interface: on every retry the ring
// engine hands the policy the op kind, the retry count so far and whether the
// op arrived through a batch entry point (ContentionCtx), and at op entry it
// offers the policy the chance to take the operation over entirely
// (try_delegate over an OpSubmission) — the hook a combining/delegation layer
// needs to divert a contended op into an announce record instead of letting
// it join the CAS storm. NoBackoff/ExpBackoff are trivial instantiations
// (BasicContention) that never delegate and map on_retry to the historical
// pause(), so every pre-seam queue behaves bit-for-bit as before.
#pragma once

#include <concepts>
#include <cstdint>
#include <thread>

#include "evq/common/config.hpp"

namespace evq {

/// Which queue operation a contention event belongs to.
enum class ContentionOp : std::uint8_t { kPush = 0, kPop };

/// What an op-aware ContentionPolicy sees on each retry: the op kind, how
/// many retries this operation has already burned, and whether the op came
/// in through a batch entry point (try_push_n/try_pop_n) — a batched op is a
/// cheap hint that more same-kind work follows immediately, which a
/// delegating policy can use to size its announce.
struct ContentionCtx {
  ContentionOp op = ContentionOp::kPush;
  std::uint32_t retries = 0;
  bool batched = false;
};

/// A whole operation offered to the policy for takeover. For a push, `node`
/// carries the element in; for a pop the policy stores the obtained element
/// (or leaves it null) back through `node`. The pointer is type-erased so the
/// seam stays independent of the ring's element type; the engine casts back.
struct OpSubmission {
  ContentionOp op = ContentionOp::kPush;
  void* node = nullptr;
  bool batched = false;
};

/// try_delegate outcome. kNone: the policy declined; the engine runs the op
/// itself (the only outcome the trivial policies ever produce). kDone: the
/// policy completed the op — push accepted / pop produced sub.node (a null
/// sub.node is legal and means the pop observed empty at the policy's
/// linearization point; the engine accounts it as an empty pop). kRefused:
/// the policy completed the op with the queue-boundary outcome — push saw
/// FULL_QUEUE / pop saw EMPTY_QUEUE.
enum class Delegation : std::uint8_t { kNone = 0, kDone, kRefused };

/// The op-aware contention seam contract (ring_engine.hpp requires it of its
/// ContentionPolicy parameter). pause()/is_yielding()/reset() are the
/// original blind interface, kept because non-engine retry loops (the SCQ
/// ring internals, combiner loser-spins) still want a plain wait.
template <typename P>
concept ContentionSeam = requires(P p, const ContentionCtx& ctx, OpSubmission& sub) {
  { p.pause() };
  { p.is_yielding() } -> std::convertible_to<bool>;
  { p.reset() };
  { p.on_retry(ctx) };
  { p.try_delegate(sub) } -> std::same_as<Delegation>;
};

/// Hint to the CPU that we are in a spin-wait loop.
EVQ_ALWAYS_INLINE void cpu_relax() noexcept {
#if EVQ_ARCH_X86_64
  __builtin_ia32_pause();
#else
  // Portable fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

/// Bounded exponential backoff: spins with cpu_relax() doubling each round up
/// to kSpinLimit iterations, then degrades to std::this_thread::yield() so an
/// oversubscribed loser donates its timeslice to the thread it is waiting out.
class Backoff {
 public:
  static constexpr std::uint32_t kInitialSpin = 4;
  static constexpr std::uint32_t kSpinLimit = 1024;

  /// Performs one backoff round. Each call waits roughly twice as long as the
  /// previous one until the spin limit is reached, after which it yields.
  void pause() noexcept {
    if (spin_ <= kSpinLimit) {
      for (std::uint32_t i = 0; i < spin_; ++i) {
        cpu_relax();
      }
      spin_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

  /// True once pause() has escalated past pure spinning.
  [[nodiscard]] bool is_yielding() const noexcept { return spin_ > kSpinLimit; }

  /// Resets to the initial (shortest) wait.
  void reset() noexcept { spin_ = kInitialSpin; }

 private:
  std::uint32_t spin_ = kInitialSpin;
};

/// A no-op drop-in for Backoff, used to measure raw retry-storm behaviour.
class NullBackoff {
 public:
  void pause() noexcept {}
  [[nodiscard]] bool is_yielding() const noexcept { return false; }
  void reset() noexcept {}
};

/// Adapts a blind waiter (Backoff/NullBackoff) to the op-aware seam: every
/// retry waits exactly as the bare waiter would have, and delegation is
/// always declined — which is what makes the seam refactor behavior-
/// preserving for every pre-existing registry entry.
template <typename Waiter>
class BasicContention {
 public:
  void pause() noexcept { waiter_.pause(); }
  [[nodiscard]] bool is_yielding() const noexcept { return waiter_.is_yielding(); }
  void reset() noexcept { waiter_.reset(); }

  /// Op-aware retry hook: the trivial policies ignore the context entirely.
  void on_retry(const ContentionCtx& /*ctx*/) noexcept { waiter_.pause(); }

  /// Never takes over an op.
  Delegation try_delegate(OpSubmission& /*sub*/) noexcept { return Delegation::kNone; }

 private:
  [[no_unique_address]] Waiter waiter_{};
};

/// ContentionPolicy names used by the ring engine (core/ring_engine.hpp):
/// NoBackoff is the paper-faithful default (the published loops retry
/// immediately); ExpBackoff is the opt-in spin-then-yield policy priced by
/// bench_backoff. Both are trivial instantiations of the op-submission seam.
using NoBackoff = BasicContention<NullBackoff>;
using ExpBackoff = BasicContention<Backoff>;

static_assert(ContentionSeam<NoBackoff> && ContentionSeam<ExpBackoff>);

}  // namespace evq
