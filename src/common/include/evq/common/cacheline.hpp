// Cache-line geometry and padding helpers.
//
// Array-based queues put Head, Tail and the slot array in shared memory that
// every thread hammers; false sharing between the two indices (or between an
// index and the slots) distorts exactly the contention behaviour the paper
// measures, so all shared control words are padded to a destructive
// interference boundary.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace evq {

#ifdef __cpp_lib_hardware_interference_size
// GCC warns that this constant may differ between -mtune targets (an ABI
// hazard for libraries exposing it in public layouts). evq is built from
// source in one configuration, so the tuned value is what we want.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif
inline constexpr std::size_t kCacheLineSize = std::hardware_destructive_interference_size;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#else
inline constexpr std::size_t kCacheLineSize = 64;
#endif

/// Wraps a value in storage padded and aligned to a full cache line so that
/// adjacent CachePadded objects never share a line.
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  static_assert(!std::is_reference_v<T>);

  constexpr CachePadded() = default;

  template <typename... Args>
  explicit constexpr CachePadded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T value{};

 private:
  // Trailing pad so sizeof is a multiple of the line even when T is small and
  // the compiler would otherwise only round up to alignof(T).
  char pad_[kCacheLineSize - (sizeof(T) % kCacheLineSize == 0 ? kCacheLineSize : sizeof(T) % kCacheLineSize)]{};
};

}  // namespace evq
