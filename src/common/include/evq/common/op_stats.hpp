// Per-thread atomic-operation profiling.
//
// The paper's cost arguments are phrased in instruction counts: Michael &
// Scott pay "2 successful CAS to enqueue and 1 to dequeue", the CAS-based
// array queue "three 32-bit CAS and two FetchAndAdd", Shann et al. "a 32-
// and a 64-bit CAS", and the Doherty comparator "7 successful CAS". This
// module lets tests and the bench_op_profile binary measure those counts
// directly from the running implementations instead of trusting the prose.
//
// Recording is opt-in per thread: every instrumented primitive checks a
// thread-local recorder pointer (one predictable branch when disabled, so
// the figure benches — which never enable it — pay ~nothing). Enable with a
// ScopedOpRecording on the thread whose operations you want profiled.
#pragma once

#include <cstdint>

namespace evq::stats {

struct OpCounters {
  std::uint64_t cas_attempts = 0;   // pointer-wide CAS issued
  std::uint64_t cas_success = 0;    // ... that succeeded
  std::uint64_t wide_cas_attempts = 0;  // double-width CAS issued
  std::uint64_t wide_cas_success = 0;
  std::uint64_t wide_loads = 0;     // double-width atomic loads (cmpxchg16b)
  std::uint64_t faa = 0;            // FetchAndAdd / FetchAndSub

  OpCounters& operator-=(const OpCounters& other) noexcept {
    cas_attempts -= other.cas_attempts;
    cas_success -= other.cas_success;
    wide_cas_attempts -= other.wide_cas_attempts;
    wide_cas_success -= other.wide_cas_success;
    wide_loads -= other.wide_loads;
    faa -= other.faa;
    return *this;
  }
};

namespace detail {
/// Thread-local recorder target; null = recording disabled (defined in
/// op_stats.cpp — deliberately NOT an inline/COMDAT thread_local).
extern thread_local OpCounters* t_recorder;
}  // namespace detail

/// Hooks called by the instrumented primitives.
inline void on_cas(bool success) noexcept {
  if (OpCounters* rec = detail::t_recorder) {
    ++rec->cas_attempts;
    rec->cas_success += success ? 1 : 0;
  }
}
inline void on_wide_cas(bool success) noexcept {
  if (OpCounters* rec = detail::t_recorder) {
    ++rec->wide_cas_attempts;
    rec->wide_cas_success += success ? 1 : 0;
  }
}
inline void on_wide_load() noexcept {
  if (OpCounters* rec = detail::t_recorder) {
    ++rec->wide_loads;
  }
}
inline void on_faa() noexcept {
  if (OpCounters* rec = detail::t_recorder) {
    ++rec->faa;
  }
}

/// RAII: routes this thread's instrumented operations into `sink` (zeroing
/// it first). Nesting replaces the target for the inner scope.
class ScopedOpRecording {
 public:
  explicit ScopedOpRecording(OpCounters& sink) noexcept
      : previous_(detail::t_recorder) {
    sink = OpCounters{};
    detail::t_recorder = &sink;
  }
  ~ScopedOpRecording() noexcept { detail::t_recorder = previous_; }

  ScopedOpRecording(const ScopedOpRecording&) = delete;
  ScopedOpRecording& operator=(const ScopedOpRecording&) = delete;

 private:
  OpCounters* previous_;
};

}  // namespace evq::stats
