// Per-thread atomic-operation profiling.
//
// The paper's cost arguments are phrased in instruction counts: Michael &
// Scott pay "2 successful CAS to enqueue and 1 to dequeue", the CAS-based
// array queue "three 32-bit CAS and two FetchAndAdd", Shann et al. "a 32-
// and a 64-bit CAS", and the Doherty comparator "7 successful CAS". This
// module lets tests and the bench_op_profile binary measure those counts
// directly from the running implementations instead of trusting the prose.
//
// Recording is opt-in per thread: every instrumented primitive checks a
// thread-local recorder pointer (one predictable branch when disabled, so
// the figure benches — which never enable it — pay ~nothing). Enable with a
// ScopedOpRecording on the thread whose operations you want profiled.
#pragma once

#include <cstdint>

namespace evq::stats {

struct OpCounters {
  std::uint64_t cas_attempts = 0;   // pointer-wide CAS issued
  std::uint64_t cas_success = 0;    // ... that succeeded
  std::uint64_t wide_cas_attempts = 0;  // double-width CAS issued
  std::uint64_t wide_cas_success = 0;
  std::uint64_t wide_loads = 0;     // double-width atomic loads (cmpxchg16b)
  std::uint64_t faa = 0;            // FetchAndAdd / FetchAndSub

  // Ring-engine algorithm-level events (core/ring_engine.hpp), uniform across
  // the array-queue family. Kept separate from the primitive counters above
  // so the paper's exact instruction-count assertions are unaffected.
  std::uint64_t slot_sc_attempts = 0;  // slot commit attempts (SC or the CAS standing in for it)
  std::uint64_t slot_sc_failures = 0;  // ... that failed (lost/spurious reservation)
  std::uint64_t help_advances = 0;     // lagging Head/Tail repaired on a peer's behalf (E11-E13/D11-D13)

  // Hazard-pointer reclamation events (hazard/hp_domain.hpp). The telemetry
  // layer reports the same events per queue; both read the same hooks so the
  // two views can never disagree about what happened.
  std::uint64_t hp_scans = 0;    // scan passes over the hazard table
  std::uint64_t hp_retired = 0;  // nodes handed to a retired list
  std::uint64_t hp_freed = 0;    // nodes reclaimed by scans

  OpCounters& operator+=(const OpCounters& other) noexcept {
    cas_attempts += other.cas_attempts;
    cas_success += other.cas_success;
    wide_cas_attempts += other.wide_cas_attempts;
    wide_cas_success += other.wide_cas_success;
    wide_loads += other.wide_loads;
    faa += other.faa;
    slot_sc_attempts += other.slot_sc_attempts;
    slot_sc_failures += other.slot_sc_failures;
    help_advances += other.help_advances;
    hp_scans += other.hp_scans;
    hp_retired += other.hp_retired;
    hp_freed += other.hp_freed;
    return *this;
  }

  OpCounters& operator-=(const OpCounters& other) noexcept {
    cas_attempts -= other.cas_attempts;
    cas_success -= other.cas_success;
    wide_cas_attempts -= other.wide_cas_attempts;
    wide_cas_success -= other.wide_cas_success;
    wide_loads -= other.wide_loads;
    faa -= other.faa;
    slot_sc_attempts -= other.slot_sc_attempts;
    slot_sc_failures -= other.slot_sc_failures;
    help_advances -= other.help_advances;
    hp_scans -= other.hp_scans;
    hp_retired -= other.hp_retired;
    hp_freed -= other.hp_freed;
    return *this;
  }
};

namespace detail {
/// Thread-local recorder target; null = recording disabled (defined in
/// op_stats.cpp — deliberately NOT an inline/COMDAT thread_local).
extern thread_local OpCounters* t_recorder;
}  // namespace detail

/// Hooks called by the instrumented primitives.
inline void on_cas(bool success) noexcept {
  if (OpCounters* rec = detail::t_recorder) {
    ++rec->cas_attempts;
    rec->cas_success += success ? 1 : 0;
  }
}
inline void on_wide_cas(bool success) noexcept {
  if (OpCounters* rec = detail::t_recorder) {
    ++rec->wide_cas_attempts;
    rec->wide_cas_success += success ? 1 : 0;
  }
}
inline void on_wide_load() noexcept {
  if (OpCounters* rec = detail::t_recorder) {
    ++rec->wide_loads;
  }
}
inline void on_faa() noexcept {
  if (OpCounters* rec = detail::t_recorder) {
    ++rec->faa;
  }
}
inline void on_slot_sc(bool success) noexcept {
  if (OpCounters* rec = detail::t_recorder) {
    ++rec->slot_sc_attempts;
    rec->slot_sc_failures += success ? 0 : 1;
  }
}
inline void on_help_advance() noexcept {
  if (OpCounters* rec = detail::t_recorder) {
    ++rec->help_advances;
  }
}
inline void on_hp_scan() noexcept {
  if (OpCounters* rec = detail::t_recorder) {
    ++rec->hp_scans;
  }
}
inline void on_hp_retire() noexcept {
  if (OpCounters* rec = detail::t_recorder) {
    ++rec->hp_retired;
  }
}
inline void on_hp_free(std::uint64_t n) noexcept {
  if (OpCounters* rec = detail::t_recorder) {
    rec->hp_freed += n;
  }
}

/// RAII: routes this thread's instrumented operations into `sink` (zeroing
/// it first). Nesting replaces the target for the inner scope.
class ScopedOpRecording {
 public:
  explicit ScopedOpRecording(OpCounters& sink) noexcept
      : previous_(detail::t_recorder) {
    sink = OpCounters{};
    detail::t_recorder = &sink;
  }
  ~ScopedOpRecording() noexcept { detail::t_recorder = previous_; }

  ScopedOpRecording(const ScopedOpRecording&) = delete;
  ScopedOpRecording& operator=(const ScopedOpRecording&) = delete;

 private:
  OpCounters* previous_;
};

}  // namespace evq::stats
