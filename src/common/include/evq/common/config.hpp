// Platform detection, build configuration and assertion macros shared by all
// evq modules.
//
// The library targets 64-bit platforms with pointer-wide lock-free atomics.
// The double-width (16-byte) compare-and-swap used by the Shann baseline and
// the versioned LL/SC emulation is only required when those components are
// instantiated; everything the paper labels "single word" genuinely compiles
// down to pointer-wide operations.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#define EVQ_VERSION_MAJOR 1
#define EVQ_VERSION_MINOR 0
#define EVQ_VERSION_PATCH 0

#if defined(__x86_64__) || defined(_M_X64)
#define EVQ_ARCH_X86_64 1
#else
#define EVQ_ARCH_X86_64 0
#endif

#if defined(__GNUC__) || defined(__clang__)
#define EVQ_LIKELY(x) __builtin_expect(!!(x), 1)
#define EVQ_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define EVQ_NOINLINE __attribute__((noinline))
#define EVQ_ALWAYS_INLINE __attribute__((always_inline)) inline
#else
#define EVQ_LIKELY(x) (x)
#define EVQ_UNLIKELY(x) (x)
#define EVQ_NOINLINE
#define EVQ_ALWAYS_INLINE inline
#endif

namespace evq {

/// Terminates the process with a diagnostic. Used for invariant violations
/// that indicate a bug in the library itself (never for caller errors, which
/// are reported through return values as in the paper's pseudocode).
[[noreturn]] inline void fatal(const char* file, int line, const char* msg) noexcept {
  std::fprintf(stderr, "evq fatal: %s:%d: %s\n", file, line, msg);
  std::abort();
}

}  // namespace evq

/// Always-on invariant check (cheap predicates only; hot paths avoid it).
#define EVQ_CHECK(cond, msg)                      \
  do {                                            \
    if (EVQ_UNLIKELY(!(cond))) {                  \
      ::evq::fatal(__FILE__, __LINE__, (msg));    \
    }                                             \
  } while (0)

/// Debug-only invariant check.
#ifdef NDEBUG
#define EVQ_DCHECK(cond, msg) ((void)0)
#else
#define EVQ_DCHECK(cond, msg) EVQ_CHECK(cond, msg)
#endif
