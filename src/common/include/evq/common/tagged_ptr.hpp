// Pointer tagging utilities.
//
// Two tagging schemes are used in this library, both exploiting properties of
// real 64-bit pointers so that everything still fits in one machine word —
// the paper's central portability constraint:
//
//  * LSB tagging (Sec. 5 of the paper): heap allocations are at least 2-byte
//    aligned, so bit 0 of a valid node pointer is always 0. Algorithm 2 sets
//    bit 0 to mark "this word holds the address of a thread-owned LLSCvar,
//    not application data" (the `var^1` trick of Fig. 5).
//
//  * High-bit version packing: x86-64 canonical user-space addresses fit in
//    the low 48 bits, leaving 16 bits for a modification counter. PackedLlsc
//    uses this to emulate LL/SC in a genuinely single 64-bit word.
#pragma once

#include <cstdint>

#include "evq/common/config.hpp"

namespace evq {

// ---------------------------------------------------------------------------
// LSB tagging (Algorithm 2's `var^1`)
// ---------------------------------------------------------------------------

/// True when the word carries an LSB tag (i.e. is odd).
EVQ_ALWAYS_INLINE bool lsb_tagged(std::uintptr_t word) noexcept { return (word & 1u) != 0; }

/// Sets the LSB tag on a (2-byte-or-more aligned) pointer.
template <typename T>
EVQ_ALWAYS_INLINE std::uintptr_t lsb_tag(T* ptr) noexcept {
  auto word = reinterpret_cast<std::uintptr_t>(ptr);
  EVQ_DCHECK((word & 1u) == 0, "pointer must be at least 2-byte aligned to carry an LSB tag");
  return word | 1u;
}

/// Removes the LSB tag, recovering the original pointer.
template <typename T>
EVQ_ALWAYS_INLINE T* lsb_untag(std::uintptr_t word) noexcept {
  return reinterpret_cast<T*>(word & ~std::uintptr_t{1});
}

// ---------------------------------------------------------------------------
// 48-bit pointer + 16-bit version packing (PackedLlsc)
// ---------------------------------------------------------------------------

/// A {pointer, 16-bit version} pair packed into one 64-bit word.
///
/// The version occupies bits 48..63; the pointer must be canonical (sign bit
/// region unused), which is true for user-space heap pointers on x86-64 and
/// AArch64 without top-byte-ignore tricks.
class PackedPtr {
 public:
  static constexpr unsigned kVersionShift = 48;
  static constexpr std::uint64_t kPtrMask = (std::uint64_t{1} << kVersionShift) - 1;

  constexpr PackedPtr() = default;
  constexpr explicit PackedPtr(std::uint64_t raw) noexcept : raw_(raw) {}

  template <typename T>
  static PackedPtr make(T* ptr, std::uint16_t version) noexcept {
    auto word = reinterpret_cast<std::uint64_t>(ptr);
    EVQ_DCHECK((word & ~kPtrMask) == 0, "pointer does not fit in 48 bits (non-canonical)");
    return PackedPtr{word | (std::uint64_t{version} << kVersionShift)};
  }

  template <typename T>
  [[nodiscard]] T* ptr() const noexcept {
    return reinterpret_cast<T*>(raw_ & kPtrMask);
  }

  [[nodiscard]] std::uint16_t version() const noexcept {
    return static_cast<std::uint16_t>(raw_ >> kVersionShift);
  }

  [[nodiscard]] std::uint64_t raw() const noexcept { return raw_; }

  /// Same pointer, version advanced by one (wraps mod 2^16).
  template <typename T>
  [[nodiscard]] PackedPtr bumped(T* new_ptr) const noexcept {
    return make(new_ptr, static_cast<std::uint16_t>(version() + 1));
  }

  friend bool operator==(PackedPtr a, PackedPtr b) noexcept { return a.raw_ == b.raw_; }
  friend bool operator!=(PackedPtr a, PackedPtr b) noexcept { return a.raw_ != b.raw_; }

 private:
  std::uint64_t raw_ = 0;
};

}  // namespace evq
