// Sense-reversing spin barrier.
//
// The paper synchronizes all benchmark threads "so that none can begin its
// iterations before all others finished their initialization phase". A
// kernel-free spin barrier keeps that synchronization out of the measured
// region and reusable across repeated runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "evq/common/backoff.hpp"
#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"

namespace evq {

/// Reusable barrier for a fixed set of participants. wait() returns true for
/// exactly one participant per phase (the last arriver), which benchmark code
/// uses to start/stop timers.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t participants) noexcept
      : participants_(participants) {
    EVQ_CHECK(participants > 0, "barrier needs at least one participant");
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  bool wait() noexcept {
    const bool my_sense = !sense_.value.load(std::memory_order_relaxed);
    if (arrived_.value.fetch_add(1, std::memory_order_acq_rel) + 1 == participants_) {
      arrived_.value.store(0, std::memory_order_relaxed);
      sense_.value.store(my_sense, std::memory_order_release);  // release the others
      return true;
    }
    std::uint32_t spins = 0;
    while (sense_.value.load(std::memory_order_acquire) != my_sense) {
      if (++spins < 64) {
        cpu_relax();
      } else {
        std::this_thread::yield();  // mandatory on oversubscribed hosts
      }
    }
    return false;
  }

 private:
  const std::uint32_t participants_;
  CachePadded<std::atomic<std::uint32_t>> arrived_{0};
  CachePadded<std::atomic<bool>> sense_{false};
};

}  // namespace evq
