// Hazard-pointer safe memory reclamation (Michael, IEEE TPDS 2004 — the
// paper's reference [10]), as used by the MS-Hazard-Pointers comparators in
// Fig. 6.
//
// Design points reproduced from the paper's experimental setup:
//  * Population-oblivious: hazard records live in a global lock-free list;
//    threads acquire one by test-and-setting its active flag and release it
//    on exit, so the record count tracks maximum concurrency.
//  * A thread scans (attempts to free its retired nodes) when it holds
//    "4 times the number of threads" retired nodes — the paper's setting,
//    which "results in a huge waste of memory [but] the cost to reclaim the
//    nodes becomes fairly low". The multiplier is a domain parameter so the
//    A2 ablation bench can sweep it.
//  * Both scan strategies of Fig. 6 are provided: *sorted* (collect all
//    hazards, sort, binary-search each retired node — pays off at high
//    thread counts) and *unsorted* (linear membership test — cheaper when
//    few threads).
//
// The domain is a per-queue object, not a global: tests and benchmarks need
// isolated reclamation accounting.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"
#include "evq/common/op_stats.hpp"
#include "evq/inject/inject.hpp"
#include "evq/telemetry/metrics.hpp"
#include "evq/trace/trace.hpp"

namespace evq::hazard {

/// Scan strategy for membership of retired nodes in the hazard set.
enum class ScanMode : std::uint8_t {
  kUnsorted,  // linear search of the collected hazard array
  kSorted,    // sort + binary search
};

/// Safe memory reclamation domain for nodes of type Node, reclaimed with
/// `delete` by default or a custom reclaimer supplied at construction (e.g.
/// a free pool). The reclaimer is a domain property, not a per-call
/// argument: every reclamation path — threshold scans, the release()
/// last-chance scan, and the destructor's quiescent sweep — must route
/// retired nodes to the same place, or nodes retired to a pool would be
/// `delete`d when the domain shuts down.
///
/// K is the number of hazard slots per thread (the MS queue needs 2:
/// head/tail plus next).
template <typename Node, std::size_t K = 2>
class HpDomain {
 public:
  using Reclaimer = std::function<void(Node*)>;
  struct Record {
    std::atomic<const Node*> hp[K];
    std::atomic<bool> active{false};
    std::atomic<Record*> next{nullptr};
    // Retired list is thread-private while the record is held; a record
    // released with leftovers keeps them until the record is re-acquired or
    // the domain is destroyed.
    std::vector<Node*> retired;
  };

  explicit HpDomain(ScanMode mode = ScanMode::kUnsorted, std::size_t threshold_multiplier = 4,
                    Reclaimer reclaimer = {})
      : mode_(mode),
        threshold_multiplier_(threshold_multiplier),
        reclaimer_(reclaimer ? std::move(reclaimer) : Reclaimer([](Node* n) { delete n; })) {
    EVQ_CHECK(threshold_multiplier >= 1, "scan threshold multiplier must be >= 1");
  }

  HpDomain(const HpDomain&) = delete;
  HpDomain& operator=(const HpDomain&) = delete;

  /// Quiescent destruction: reclaims every retired node (through the
  /// domain's reclaimer) and frees records.
  ~HpDomain() {
    Record* rec = head_.load(std::memory_order_acquire);
    while (rec != nullptr) {
      Record* next = rec->next.load(std::memory_order_relaxed);
      for (Node* node : rec->retired) {
        reclaimer_(node);
      }
      delete rec;
      rec = next;
    }
  }

  /// Claims a hazard record for the calling thread (recycling an inactive
  /// one when possible — population-oblivious acquisition).
  [[nodiscard]] Record* acquire() {
    for (Record* rec = head_.load(std::memory_order_acquire); rec != nullptr;
         rec = rec->next.load(std::memory_order_acquire)) {
      if (!rec->active.load(std::memory_order_relaxed)) {
        bool expected = false;
        const bool claimed =
            rec->active.compare_exchange_strong(expected, true, std::memory_order_acq_rel);
        stats::on_cas(claimed);
        if (claimed) {
          return rec;
        }
      }
    }
    auto* rec = new Record;
    rec->active.store(true, std::memory_order_relaxed);
    Record* head = head_.load(std::memory_order_relaxed);
    do {
      rec->next.store(head, std::memory_order_relaxed);
    } while (!head_.compare_exchange_weak(head, rec, std::memory_order_acq_rel,
                                          std::memory_order_relaxed));
    records_.fetch_add(1, std::memory_order_relaxed);
    return rec;
  }

  /// Releases the record: clears hazards, makes one reclamation attempt, and
  /// hands leftovers to whichever thread acquires the record next.
  void release(Record* rec) noexcept {
    for (std::size_t i = 0; i < K; ++i) {
      rec->hp[i].store(nullptr, std::memory_order_release);
    }
    if (!rec->retired.empty()) {
      scan(*rec);
    }
    rec->active.store(false, std::memory_order_release);
  }

  /// Protects the pointer currently stored in `src`: publishes it as a
  /// hazard and re-reads until the publication provably happened before the
  /// pointer left `src` (the standard protect loop).
  Node* protect(Record* rec, std::size_t slot, const std::atomic<Node*>& src) noexcept {
    EVQ_DCHECK(slot < K, "hazard slot out of range");
    Node* ptr = src.load(std::memory_order_acquire);
    for (;;) {
      rec->hp[slot].store(ptr, std::memory_order_seq_cst);
      // Widens the publish/re-read race: the pointer may leave `src` while
      // the hazard store is in flight, forcing another protect iteration.
      EVQ_INJECT_POINT("hazard.protect");
      Node* again = src.load(std::memory_order_seq_cst);
      if (again == ptr) {
        return ptr;
      }
      ptr = again;
    }
  }

  /// Clears one hazard slot.
  void clear(Record* rec, std::size_t slot) noexcept {
    rec->hp[slot].store(nullptr, std::memory_order_release);
  }

  /// Retires a node removed from the data structure; reclaims a batch once
  /// the per-thread retired count reaches multiplier x (current records).
  void retire(Record* rec, Node* node) {
    EVQ_INJECT_POINT("hazard.reclaim.retire");
    stats::on_hp_retire();
    if (metrics_ != nullptr) {
      metrics_->inc(telemetry::Counter::kHpRetired);
    }
    rec->retired.push_back(node);
    const std::size_t threshold =
        threshold_multiplier_ * std::max<std::size_t>(1, records_.load(std::memory_order_relaxed));
    if (rec->retired.size() >= threshold) {
      scan(*rec);
    }
  }

  /// One reclamation pass: frees (through the domain's reclaimer) every
  /// retired node whose address is not published as a hazard by any record.
  /// Returns the number reclaimed.
  std::size_t scan(Record& rec) {
    trace::ReclaimProbe probe(trace_queue_, trace::ReclaimKind::kHpScan);
    EVQ_INJECT_POINT("hazard.reclaim.scan.enter");
    stats::on_hp_scan();
    if (metrics_ != nullptr) {
      metrics_->inc(telemetry::Counter::kHpScan);
    }
    std::vector<const Node*> hazards;
    hazards.reserve(K * records_.load(std::memory_order_relaxed));
    for (Record* r = head_.load(std::memory_order_acquire); r != nullptr;
         r = r->next.load(std::memory_order_acquire)) {
      for (std::size_t i = 0; i < K; ++i) {
        if (const Node* p = r->hp[i].load(std::memory_order_seq_cst)) {
          hazards.push_back(p);
        }
      }
    }
    // A stall here is a scanner working from a stale hazard snapshot —
    // safe (retired nodes cannot gain new hazards), but it delays frees.
    EVQ_INJECT_POINT("hazard.reclaim.scan.collected");
    if (mode_ == ScanMode::kSorted) {
      std::sort(hazards.begin(), hazards.end());
    }
    std::vector<Node*> survivors;
    survivors.reserve(rec.retired.size());
    std::size_t freed = 0;
    for (Node* node : rec.retired) {
      const bool hazardous =
          mode_ == ScanMode::kSorted
              ? std::binary_search(hazards.begin(), hazards.end(), static_cast<const Node*>(node))
              : std::find(hazards.begin(), hazards.end(), static_cast<const Node*>(node)) !=
                    hazards.end();
      if (hazardous) {
        survivors.push_back(node);
      } else {
        reclaimer_(node);
        ++freed;
      }
    }
    rec.retired = std::move(survivors);
    reclaimed_.fetch_add(freed, std::memory_order_relaxed);
    stats::on_hp_free(freed);
    if (metrics_ != nullptr && freed > 0) {
      metrics_->inc(telemetry::Counter::kHpFreed, freed);
    }
    return freed;
  }

  /// Total records ever created (= maximum concurrent acquires observed).
  [[nodiscard]] std::size_t record_count() const noexcept {
    return records_.load(std::memory_order_relaxed);
  }

  /// Total nodes reclaimed by scans (diagnostics for tests/ablation).
  [[nodiscard]] std::uint64_t reclaimed_count() const noexcept {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] ScanMode mode() const noexcept { return mode_; }

  /// Routes this domain's retire/scan/free events into a queue's telemetry
  /// counters. The owning queue installs this at construction and must keep
  /// `metrics` alive for the domain's lifetime (including its destructor's
  /// quiescent sweep, which does not count events). `trace_queue` attributes
  /// this domain's scan spans to that queue's track in exported traces.
  void set_metrics(telemetry::QueueMetrics* metrics,
                   std::uint32_t trace_queue = trace::kNoQueue) noexcept {
    metrics_ = metrics;
    trace_queue_ = trace_queue;
  }

 private:
  const ScanMode mode_;
  const std::size_t threshold_multiplier_;
  const Reclaimer reclaimer_;
  std::atomic<Record*> head_{nullptr};
  std::atomic<std::size_t> records_{0};
  std::atomic<std::uint64_t> reclaimed_{0};
  telemetry::QueueMetrics* metrics_ = nullptr;
  std::uint32_t trace_queue_ = trace::kNoQueue;
};

/// RAII record holder.
template <typename Node, std::size_t K = 2>
class HpGuard {
 public:
  using Domain = HpDomain<Node, K>;

  explicit HpGuard(Domain& domain) : domain_(&domain), rec_(domain.acquire()) {}

  HpGuard(HpGuard&& other) noexcept : domain_(other.domain_), rec_(other.rec_) {
    other.domain_ = nullptr;
    other.rec_ = nullptr;
  }
  HpGuard& operator=(HpGuard&& other) noexcept {
    if (this != &other) {
      reset();
      domain_ = other.domain_;
      rec_ = other.rec_;
      other.domain_ = nullptr;
      other.rec_ = nullptr;
    }
    return *this;
  }

  HpGuard(const HpGuard&) = delete;
  HpGuard& operator=(const HpGuard&) = delete;

  ~HpGuard() { reset(); }

  [[nodiscard]] typename Domain::Record* record() const noexcept { return rec_; }

 private:
  void reset() noexcept {
    if (domain_ != nullptr && rec_ != nullptr) {
      domain_->release(rec_);
      domain_ = nullptr;
      rec_ = nullptr;
    }
  }

  Domain* domain_;
  typename Domain::Record* rec_;
};

}  // namespace evq::hazard
