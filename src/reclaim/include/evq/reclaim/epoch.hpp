// Epoch-based reclamation (EBR).
//
// The paper's related-work section lists "ignore [reclamation] and assume
// the presence of a garbage collector" as the easiest way out for
// link-based queues, and benchmarks two of the practical alternatives
// (hazard pointers, Doherty's LL/SC construction). EBR is the third
// practical point on that spectrum — cheaper per-operation than hazard
// pointers (no per-pointer store+fence, just an epoch pin per operation)
// but NOT population-oblivious in effect: one stalled thread pins its
// epoch and stops ALL reclamation, the exact failure mode the paper's
// array queues are immune to. It is provided as an extension baseline so
// the benches can show that trade-off.
//
// Classic 3-epoch scheme (Fraser): a global epoch e advances only when
// every pinned thread has observed e; nodes retired in e become safe to
// free once the epoch has advanced twice (no pinned thread can still hold
// a reference from e-2).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "evq/common/cacheline.hpp"
#include "evq/common/config.hpp"
#include "evq/inject/inject.hpp"
#include "evq/telemetry/metrics.hpp"
#include "evq/trace/trace.hpp"

namespace evq::reclaim {

/// EBR domain for nodes of type Node (freed with `delete`).
template <typename Node>
class EpochDomain {
 public:
  static constexpr std::uint64_t kEpochs = 3;

  struct Record {
    /// Even = not pinned; odd = pinned in epoch (value >> 1).
    std::atomic<std::uint64_t> state{0};
    std::atomic<bool> active{false};
    std::atomic<Record*> next{nullptr};
    std::vector<Node*> retired[kEpochs];
  };

  explicit EpochDomain(std::size_t flush_threshold = 64)
      : flush_threshold_(flush_threshold) {}

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Quiescent destruction: frees every retired node and all records.
  ~EpochDomain() {
    Record* rec = head_.load(std::memory_order_acquire);
    while (rec != nullptr) {
      Record* next = rec->next.load(std::memory_order_relaxed);
      for (auto& bucket : rec->retired) {
        for (Node* node : bucket) {
          delete node;
        }
      }
      delete rec;
      rec = next;
    }
  }

  /// Claims a record (population-oblivious acquisition, as hp_domain).
  [[nodiscard]] Record* acquire() {
    for (Record* rec = head_.load(std::memory_order_acquire); rec != nullptr;
         rec = rec->next.load(std::memory_order_acquire)) {
      if (!rec->active.load(std::memory_order_relaxed)) {
        bool expected = false;
        if (rec->active.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
          return rec;
        }
      }
    }
    auto* rec = new Record;
    rec->active.store(true, std::memory_order_relaxed);
    Record* head = head_.load(std::memory_order_relaxed);
    do {
      rec->next.store(head, std::memory_order_relaxed);
    } while (!head_.compare_exchange_weak(head, rec, std::memory_order_acq_rel,
                                          std::memory_order_relaxed));
    return rec;
  }

  void release(Record* rec) noexcept {
    EVQ_DCHECK((rec->state.load() & 1) == 0, "release while pinned");
    rec->active.store(false, std::memory_order_release);
  }

  /// Pins the calling thread in the current epoch. Must bracket every
  /// operation that dereferences shared nodes.
  void pin(Record* rec) noexcept {
    const std::uint64_t e = global_epoch_.value.load(std::memory_order_seq_cst);
    rec->state.store(e << 1 | 1, std::memory_order_seq_cst);
  }

  void unpin(Record* rec) noexcept {
    rec->state.store(global_epoch_.value.load(std::memory_order_relaxed) << 1,
                     std::memory_order_release);
  }

  /// Retires a node observed unreachable during the current pin; tries to
  /// advance the epoch (and free two-epochs-old garbage) when the local
  /// batch grows past the threshold.
  void retire(Record* rec, Node* node) {
    EVQ_INJECT_POINT("epoch.reclaim.retire");
    if (metrics_ != nullptr) {
      metrics_->inc(telemetry::Counter::kEpochRetired);
    }
    const std::uint64_t e = global_epoch_.value.load(std::memory_order_acquire);
    auto& bucket = rec->retired[e % kEpochs];
    bucket.push_back(node);
    if (bucket.size() >= flush_threshold_) {
      try_advance(rec);
    }
  }

  /// Attempts one epoch advance: succeeds only if every pinned record has
  /// observed the current epoch (one straggler blocks everyone — EBR's
  /// documented weakness). On success frees this record's bucket from two
  /// epochs ago.
  bool try_advance(Record* rec) {
    trace::ReclaimProbe probe(trace_queue_, trace::ReclaimKind::kEpochAdvance);
    EVQ_INJECT_POINT("epoch.reclaim.flush");
    const std::uint64_t e = global_epoch_.value.load(std::memory_order_seq_cst);
    for (Record* r = head_.load(std::memory_order_acquire); r != nullptr;
         r = r->next.load(std::memory_order_acquire)) {
      const std::uint64_t s = r->state.load(std::memory_order_seq_cst);
      if ((s & 1) != 0 && (s >> 1) != e) {
        return false;  // a pinned thread lags behind
      }
    }
    std::uint64_t expected = e;
    if (!global_epoch_.value.compare_exchange_strong(expected, e + 1,
                                                     std::memory_order_seq_cst)) {
      return false;  // someone else advanced; our garbage ages anyway
    }
    // Epoch is now e+1: nodes retired in (e+1) - 2 are unreachable by any
    // pinned thread. (e+1-2) % 3 == (e+2) % 3.
    auto& freeable = rec->retired[(e + 2) % kEpochs];
    reclaimed_.fetch_add(freeable.size(), std::memory_order_relaxed);
    if (metrics_ != nullptr) {
      metrics_->inc(telemetry::Counter::kEpochAdvance);
    }
    for (Node* node : freeable) {
      delete node;
    }
    freeable.clear();
    return true;
  }

  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return global_epoch_.value.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reclaimed_count() const noexcept {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  /// Routes retire/advance events into a queue's telemetry counters; the
  /// owning queue must keep `metrics` alive for the domain's lifetime.
  /// `trace_queue` attributes advance-attempt spans to that queue's track in
  /// exported traces.
  void set_metrics(telemetry::QueueMetrics* metrics,
                   std::uint32_t trace_queue = trace::kNoQueue) noexcept {
    metrics_ = metrics;
    trace_queue_ = trace_queue;
  }

 private:
  const std::size_t flush_threshold_;
  CachePadded<std::atomic<std::uint64_t>> global_epoch_{std::uint64_t{0}};
  std::atomic<Record*> head_{nullptr};
  std::atomic<std::uint64_t> reclaimed_{0};
  telemetry::QueueMetrics* metrics_ = nullptr;
  std::uint32_t trace_queue_ = trace::kNoQueue;
};

/// RAII pin for one operation.
template <typename Node>
class EpochGuard {
 public:
  EpochGuard(EpochDomain<Node>& domain, typename EpochDomain<Node>::Record* rec) noexcept
      : domain_(domain), rec_(rec) {
    domain_.pin(rec_);
  }
  ~EpochGuard() { domain_.unpin(rec_); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochDomain<Node>& domain_;
  typename EpochDomain<Node>::Record* rec_;
};

}  // namespace evq::reclaim
