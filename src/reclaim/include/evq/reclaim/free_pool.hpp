// Lock-free node free pool (Treiber stack with a versioned single-word top).
//
// This is the "store dequeued nodes in a free pool for subsequent reuse"
// reclamation scheme from the paper's related-work discussion: memory is
// never returned to the allocator while the pool lives, so a stale thread
// may still dereference a pooled node safely — the queues built on top only
// have to defend against *reuse*, not use-after-free. The pool's own pop-side
// ABA is killed by a 16-bit version packed into the top pointer (PackedLlsc),
// dogfooding the same single-word discipline the paper advocates.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>

#include "evq/common/config.hpp"
#include "evq/inject/inject.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/telemetry/metrics.hpp"
#include "evq/trace/trace.hpp"

// Node linkage is accessed through std::atomic_ref: a racing take() may read
// the free_next of a node that another take() just popped and recycled; the
// versioned top then fails our sc and the stale value is discarded, but the
// read itself must still be a (relaxed) atomic access, not a plain load.

namespace evq::reclaim {

/// Node must expose a `Node* free_next` member used for pool linkage while
/// the node is idle. The pool owns pushed nodes and deletes survivors on
/// destruction (which must be quiescent).
template <typename Node>
class FreePool {
 public:
  FreePool() = default;

  FreePool(const FreePool&) = delete;
  FreePool& operator=(const FreePool&) = delete;

  ~FreePool() {
    Node* n = top_.load();
    while (n != nullptr) {
      Node* next = n->free_next;
      delete n;
      n = next;
    }
  }

  /// Returns a node to the pool.
  void put(Node* node) noexcept {
    EVQ_DCHECK(node != nullptr, "null node returned to pool");
    for (;;) {
      EVQ_INJECT_POINT("free_pool.reclaim.put");
      auto link = top_.ll();
      std::atomic_ref<Node*>(node->free_next).store(link.value(), std::memory_order_relaxed);
      if (top_.sc(link, node)) {
        size_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }

  /// Pops a node, or nullptr when the pool is empty. Reading
  /// `node->free_next` of a node that a racing take() just recycled yields a
  /// stale value (memory itself is never freed while the pool lives); the
  /// version bump in the top word then fails our sc, discarding it.
  [[nodiscard]] Node* take() noexcept {
    // Sampled (1-in-N, same gate as OpProbe): take() is on the MS-pool
    // enqueue hot path, so it must not record unconditionally.
    trace::ReclaimProbe probe(trace_queue_, trace::ReclaimKind::kPoolTake);
    for (;;) {
      auto link = top_.ll();
      Node* node = link.value();
      if (node == nullptr) {
        return nullptr;
      }
      Node* next = std::atomic_ref<Node*>(node->free_next).load(std::memory_order_relaxed);
      // The classic Treiber pop ABA window: top may be popped and re-pushed
      // while we sleep here; the versioned top then fails our sc.
      EVQ_INJECT_POINT("free_pool.reclaim.take.reserved");
      if (top_.sc(link, next)) {
        size_.fetch_sub(1, std::memory_order_relaxed);
        if (metrics_ != nullptr) {
          metrics_->inc(telemetry::Counter::kPoolHit);
        }
        return node;
      }
    }
  }

  /// Heap-allocates a fresh node (counted in allocated()). Use when take()
  /// came back empty; recycled nodes come back as-is and the caller
  /// reinitializes what it needs (deliberate: queues built on pools must
  /// control exactly which fields a recycle may touch).
  template <typename... Args>
  [[nodiscard]] Node* make(Args&&... args) {
    allocated_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) {
      metrics_->inc(telemetry::Counter::kPoolMiss);
    }
    return new Node(std::forward<Args>(args)...);
  }

  /// Pops a node or heap-allocates a default-constructed fresh one.
  [[nodiscard]] Node* take_or_new() {
    if (Node* node = take()) {
      return node;
    }
    return make();
  }

  /// Approximate pool occupancy (exact when quiescent).
  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

  /// Nodes heap-allocated through take_or_new — the pool's space footprint.
  [[nodiscard]] std::size_t allocated() const noexcept {
    return allocated_.load(std::memory_order_relaxed);
  }

  /// Routes hit/miss events into a queue's telemetry counters; the owning
  /// queue must keep `metrics` alive for the pool's lifetime. `trace_queue`
  /// attributes take() spans to that queue's track in exported traces.
  void set_metrics(telemetry::QueueMetrics* metrics,
                   std::uint32_t trace_queue = trace::kNoQueue) noexcept {
    metrics_ = metrics;
    trace_queue_ = trace_queue;
  }

 private:
  llsc::PackedLlsc<Node*> top_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> allocated_{0};
  telemetry::QueueMetrics* metrics_ = nullptr;
  std::uint32_t trace_queue_ = trace::kNoQueue;
};

}  // namespace evq::reclaim
