// Tests for the CAS-simulated LL/SC cell (Fig. 5 L1–L17): reservation
// install/steal semantics, logical-value preservation, refcount protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "evq/common/tagged_ptr.hpp"
#include "evq/registry/registry.hpp"
#include "evq/registry/sim_llsc_cell.hpp"

namespace {

using namespace evq;
using namespace evq::registry;

int g_values[8];

class SimCellTest : public ::testing::Test {
 protected:
  Registry reg_;
};

TEST_F(SimCellTest, LlReturnsLogicalValueAndInstallsTag) {
  SimLlscCell<int*> cell(&g_values[0]);
  LlscVar* var = reg_.register_var();
  EXPECT_EQ(cell.ll(var), &g_values[0]);
  EXPECT_TRUE(lsb_tagged(cell.raw()));
  EXPECT_EQ(lsb_untag<LlscVar>(cell.raw()), var);
  // The logical value lives in the var while reserved.
  EXPECT_EQ(reinterpret_cast<int*>(var->node.load()), &g_values[0]);
  reg_.deregister(var);
}

TEST_F(SimCellTest, ScWritesWhenReservationIntact) {
  SimLlscCell<int*> cell(&g_values[0]);
  LlscVar* var = reg_.register_var();
  cell.ll(var);
  EXPECT_TRUE(cell.sc(var, &g_values[1]));
  EXPECT_EQ(cell.load(), &g_values[1]);
  EXPECT_FALSE(lsb_tagged(cell.raw()));
  reg_.deregister(var);
}

TEST_F(SimCellTest, ScFailsAfterTakeover) {
  SimLlscCell<int*> cell(&g_values[0]);
  LlscVar* a = reg_.register_var();
  LlscVar* b = reg_.register_var();
  cell.ll(a);
  EXPECT_EQ(cell.ll(b), &g_values[0]) << "takeover must preserve the logical value";
  EXPECT_FALSE(cell.sc(a, &g_values[1])) << "a's reservation was stolen by b";
  EXPECT_TRUE(cell.sc(b, &g_values[2]));
  EXPECT_EQ(cell.load(), &g_values[2]);
  reg_.deregister(a);
  reg_.deregister(b);
}

TEST_F(SimCellTest, LoadReadsThroughForeignReservation) {
  SimLlscCell<int*> cell(&g_values[3]);
  LlscVar* var = reg_.register_var();
  cell.ll(var);
  EXPECT_EQ(cell.load(), &g_values[3]) << "load must see the logical value under a tag";
  reg_.deregister(var);
}

TEST_F(SimCellTest, ReleaseRestoresObservedValue) {
  SimLlscCell<int*> cell(&g_values[4]);
  LlscVar* var = reg_.register_var();
  cell.ll(var);
  cell.release(var);
  EXPECT_FALSE(lsb_tagged(cell.raw()));
  EXPECT_EQ(cell.load(), &g_values[4]);
  reg_.deregister(var);
}

TEST_F(SimCellTest, ReleaseAfterTakeoverIsNoop) {
  SimLlscCell<int*> cell(&g_values[0]);
  LlscVar* a = reg_.register_var();
  LlscVar* b = reg_.register_var();
  cell.ll(a);
  cell.ll(b);             // steals a's reservation
  cell.release(a);        // must not disturb b's reservation
  EXPECT_EQ(lsb_untag<LlscVar>(cell.raw()), b);
  EXPECT_TRUE(cell.sc(b, &g_values[1]));
  reg_.deregister(a);
  reg_.deregister(b);
}

TEST_F(SimCellTest, TakeoverChainPreservesValue) {
  SimLlscCell<int*> cell(&g_values[5]);
  std::vector<LlscVar*> vars;
  for (int i = 0; i < 6; ++i) {
    vars.push_back(reg_.register_var());
    EXPECT_EQ(cell.ll(vars.back()), &g_values[5]) << "takeover " << i;
  }
  EXPECT_TRUE(cell.sc(vars.back(), &g_values[6]));
  EXPECT_EQ(cell.load(), &g_values[6]);
  for (LlscVar* v : vars) {
    reg_.deregister(v);
  }
}

TEST_F(SimCellTest, RefcountReturnsToOwnerOnlyAfterReads) {
  SimLlscCell<int*> cell(&g_values[0]);
  LlscVar* a = reg_.register_var();
  cell.ll(a);
  // After a foreign ll completes, a's refcount must be back to 1 (owner):
  LlscVar* b = reg_.register_var();
  cell.ll(b);
  EXPECT_EQ(a->r.load(), 1u);
  EXPECT_TRUE(reg_.reregister(a) == a) << "no lingering reader => var kept";
  cell.sc(b, &g_values[1]);
  reg_.deregister(a);
  reg_.deregister(b);
}

TEST_F(SimCellTest, NullLogicalValueRoundTrips) {
  SimLlscCell<int*> cell;  // holds nullptr
  LlscVar* var = reg_.register_var();
  EXPECT_EQ(cell.ll(var), nullptr);
  EXPECT_TRUE(cell.sc(var, &g_values[0]));
  LlscVar* var2 = reg_.reregister(var);
  EXPECT_EQ(cell.ll(var2), &g_values[0]);
  EXPECT_TRUE(cell.sc(var2, nullptr));
  EXPECT_EQ(cell.load(), nullptr);
  reg_.deregister(var2);
}

TEST_F(SimCellTest, ConcurrentLlScSerializesWrites) {
  // Each thread repeatedly ll+sc-increments a shared counter encoded as a
  // pointer offset into a big array; total increments must be exact.
  constexpr int kThreads = 4;
  constexpr int kIncrements = 5000;
  static int arena[kThreads * kIncrements + 1];
  SimLlscCell<int*> cell(&arena[0]);
  Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Registration r(reg);
      for (int i = 0; i < kIncrements;) {
        LlscVar* var = r.fresh();
        int* cur = cell.ll(var);
        if (cell.sc(var, cur + 1)) {
          ++i;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(cell.load(), &arena[kThreads * kIncrements]);
}

TEST_F(SimCellTest, ConcurrentLoadNeverSeesTornOrTaggedValue) {
  // Writers flip the cell between two legal values via ll/sc while readers
  // load(); readers must only ever see one of the two values.
  SimLlscCell<int*> cell(&g_values[0]);
  Registry reg;
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::thread writer([&] {
    Registration r(reg);
    for (int i = 0; i < 20000; ++i) {
      LlscVar* var = r.fresh();
      int* cur = cell.ll(var);
      cell.sc(var, cur == &g_values[0] ? &g_values[1] : &g_values[0]);
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      int* v = cell.load();
      if (v != &g_values[0] && v != &g_values[1]) {
        bad.store(true);
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(bad.load());
}

}  // namespace
