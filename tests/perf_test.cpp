// Tests for evq::perf — observability layer 4 (DESIGN.md §16).
//
// Everything numeric runs against the MockBackend, whose read() fabricates
// the kernel's PERF_FORMAT_GROUP buffer and decodes it through the
// production decode_group_read — so the layout and multiplexing-scale
// arithmetic under test here is exactly what a real perf_event group uses.
// The real backend gets one skip-gated smoke test (most CI containers have
// no PMU or a paranoid kernel; the fallback matrix in backend.hpp is the
// contract those hosts exercise instead).
//
// The CacheThrash suite is the E11-style repro/twin pair for the layer-4
// detector: a genuine false-sharing workload (two queues' head/tail index
// words packed into ONE cacheline, hammered from two threads each) beside a
// CachePadded quiet twin, with deterministic mock counter profiles standing
// in for the PMU so the diagnosis is reproducible on counter-less hosts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "evq/common/cacheline.hpp"
#include "evq/health/health.hpp"
#include "evq/health/monitor.hpp"
#include "evq/perf/backend.hpp"
#include "evq/perf/perf.hpp"
#include "evq/telemetry/registry.hpp"

namespace {

using namespace evq::perf;

constexpr std::size_t idx(Event e) { return static_cast<std::size_t>(e); }

// ---------------------------------------------------------------------------
// decode_group_read: the kernel buffer layout
// ---------------------------------------------------------------------------

std::array<std::uint64_t, kEventCount> fake_ids() {
  std::array<std::uint64_t, kEventCount> ids{};
  for (std::size_t e = 0; e < kEventCount; ++e) {
    ids[e] = 100 + e;
  }
  return ids;
}

std::array<bool, kEventCount> all_opened() {
  std::array<bool, kEventCount> opened{};
  opened.fill(true);
  return opened;
}

TEST(DecodeGroupRead, FullGroupNoMultiplexing) {
  // nr=6, enabled == running: raw values pass through, scale 1.
  const auto ids = fake_ids();
  std::vector<std::uint64_t> buf = {6, 1000, 1000};
  for (std::size_t e = 0; e < kEventCount; ++e) {
    buf.push_back(10 * (e + 1));  // value
    buf.push_back(ids[e]);        // PERF_FORMAT_ID
  }
  const CounterSample s = decode_group_read(buf.data(), buf.size(), ids, all_opened());
  for (std::size_t e = 0; e < kEventCount; ++e) {
    SCOPED_TRACE(event_name(static_cast<Event>(e)));
    EXPECT_TRUE(s.events[e].available);
    EXPECT_EQ(s.events[e].raw, 10 * (e + 1));
    EXPECT_EQ(s.events[e].value, 10 * (e + 1));
    EXPECT_DOUBLE_EQ(s.events[e].scale, 1.0);
  }
}

TEST(DecodeGroupRead, MultiplexedGroupScalesAsAUnit) {
  // running/enabled = 1/4: the estimate is raw * 4 for EVERY member (a perf
  // group schedules as a unit — one duty cycle for all events).
  const auto ids = fake_ids();
  std::vector<std::uint64_t> buf = {2, 4000, 1000, /*cycles*/ 250, ids[idx(Event::kCycles)],
                                    /*instructions*/ 100, ids[idx(Event::kInstructions)]};
  const CounterSample s = decode_group_read(buf.data(), buf.size(), ids, all_opened());
  EXPECT_EQ(s[Event::kCycles].value, 1000u);
  EXPECT_EQ(s[Event::kCycles].raw, 250u);
  EXPECT_DOUBLE_EQ(s[Event::kCycles].scale, 0.25);
  EXPECT_EQ(s[Event::kInstructions].value, 400u);
  EXPECT_DOUBLE_EQ(s[Event::kInstructions].scale, 0.25);
  EXPECT_FALSE(s[Event::kLlcMisses].available) << "absent group member must stay unavailable";
}

TEST(DecodeGroupRead, EnabledButNeverScheduled) {
  // running == 0 with enabled > 0: zero confidence — value 0, scale 0.
  const auto ids = fake_ids();
  std::vector<std::uint64_t> buf = {1, 1000, 0, 77, ids[idx(Event::kCycles)]};
  const CounterSample s = decode_group_read(buf.data(), buf.size(), ids, all_opened());
  ASSERT_TRUE(s[Event::kCycles].available);
  EXPECT_EQ(s[Event::kCycles].value, 0u);
  EXPECT_DOUBLE_EQ(s[Event::kCycles].scale, 0.0);
}

TEST(DecodeGroupRead, TruncatedAndMalformedBuffersDecodeEmpty) {
  const auto ids = fake_ids();
  const std::array<std::uint64_t, 8> buf = {6, 1000, 1000, 10, 100, 20, 101, 30};
  // Too short for the header, and too short for the claimed nr=6 entries.
  for (const std::size_t n_words : {std::size_t{0}, std::size_t{2}, buf.size()}) {
    const CounterSample s = decode_group_read(buf.data(), n_words, ids, all_opened());
    for (std::size_t e = 0; e < kEventCount; ++e) {
      EXPECT_FALSE(s.events[e].available) << n_words;
    }
  }
  const CounterSample null_buf = decode_group_read(nullptr, 99, ids, all_opened());
  EXPECT_FALSE(null_buf[Event::kCycles].available);
}

TEST(DecodeGroupRead, UnopenedEventsAndUnknownIdsAreIgnored) {
  auto ids = fake_ids();
  std::array<bool, kEventCount> opened{};
  opened[idx(Event::kCycles)] = true;  // only cycles was opened
  std::vector<std::uint64_t> buf = {2, 500, 500, 42, ids[idx(Event::kCycles)],
                                    /*stranger*/ 77, 9999};
  const CounterSample s = decode_group_read(buf.data(), buf.size(), ids, opened);
  EXPECT_TRUE(s[Event::kCycles].available);
  EXPECT_EQ(s[Event::kCycles].value, 42u);
  for (std::size_t e = 1; e < kEventCount; ++e) {
    EXPECT_FALSE(s.events[e].available);
  }
}

// ---------------------------------------------------------------------------
// MockBackend: deterministic virtual-clock counting
// ---------------------------------------------------------------------------

TEST(MockBackend, CountsRatePerTick) {
  MockBackend backend;  // default rates: 3000 cycles, 2400 instructions, ...
  auto counter = backend.open_thread_counter();
  counter->start();
  backend.tick(10);
  const CounterSample s = counter->read();
  EXPECT_EQ(s[Event::kCycles].value, 30000u);
  EXPECT_EQ(s[Event::kInstructions].value, 24000u);
  EXPECT_EQ(s[Event::kLlcMisses].value, 20u);
  EXPECT_TRUE(s[Event::kContextSwitches].available) << "rate 0 still counts (as zero)";
  EXPECT_EQ(s[Event::kContextSwitches].value, 0u);
  EXPECT_DOUBLE_EQ(s[Event::kCycles].scale, 1.0);
}

TEST(MockBackend, MultiplexingRoundTripsThroughProductionDecode) {
  // mux = 0.5: raw counts are halved but the decoded estimate recovers the
  // true count — the exact raw * enabled/running arithmetic the real
  // backend relies on.
  MockBackend::Config config;
  config.mux = 0.5;
  MockBackend backend(config);
  auto counter = backend.open_thread_counter();
  counter->start();
  backend.tick(100);
  const CounterSample s = counter->read();
  EXPECT_EQ(s[Event::kCycles].raw, 150000u);
  EXPECT_EQ(s[Event::kCycles].value, 300000u);
  EXPECT_DOUBLE_EQ(s[Event::kCycles].scale, 0.5);
}

TEST(MockBackend, AbsentEventsStayUnavailable) {
  MockBackend::Config config;
  config.present[idx(Event::kLlcMisses)] = false;
  MockBackend backend(config);
  auto counter = backend.open_thread_counter();
  counter->start();
  backend.tick(5);
  const CounterSample s = counter->read();
  EXPECT_FALSE(s[Event::kLlcMisses].available);
  EXPECT_TRUE(s[Event::kCycles].available);
}

// ---------------------------------------------------------------------------
// ThreadPerfScope: harvest deltas and nesting
// ---------------------------------------------------------------------------

TEST(ThreadPerfScope, HarvestReturnsDeltasWithoutStopping) {
  MockBackend backend;
  ThreadPerfScope scope(&backend);
  ASSERT_TRUE(scope.live());

  backend.tick(10);
  const PerfAgg first = scope.harvest(100);
  EXPECT_EQ(first.ops, 100u);
  EXPECT_EQ(first.scopes, 1u);
  EXPECT_EQ(first.total(Event::kCycles), 30000u);
  EXPECT_DOUBLE_EQ(first.per_op(Event::kCycles), 300.0);
  EXPECT_DOUBLE_EQ(first.ipc(), 2400.0 / 3000.0);

  // Counting continued across the harvest: the second harvest sees only the
  // new interval, not the cumulative total.
  backend.tick(5);
  const PerfAgg second = scope.harvest(50);
  EXPECT_EQ(second.total(Event::kCycles), 15000u);
  EXPECT_DOUBLE_EQ(second.per_op(Event::kCycles), 300.0);
}

TEST(ThreadPerfScope, ScopesNestAsIndependentGroups) {
  MockBackend backend;
  ThreadPerfScope outer(&backend);
  backend.tick(10);
  ThreadPerfScope inner(&backend);  // opens its own group at t=10
  backend.tick(10);
  const PerfAgg inner_agg = inner.harvest(1);
  PerfAgg outer_agg = outer.harvest(1);
  EXPECT_EQ(inner_agg.total(Event::kCycles), 30000u) << "inner counts its own interval only";
  EXPECT_EQ(outer_agg.total(Event::kCycles), 60000u) << "outer spans both intervals";
}

TEST(ThreadPerfScope, DeadScopeHarvestsOpsOnly) {
  NullBackend backend("denied for the test");
  ThreadPerfScope scope(&backend);
  EXPECT_FALSE(scope.live());
  const PerfAgg agg = scope.harvest(42);
  EXPECT_EQ(agg.ops, 42u);
  EXPECT_FALSE(agg.any_available());
  EXPECT_DOUBLE_EQ(agg.per_op(Event::kCycles), -1.0);
  EXPECT_DOUBLE_EQ(agg.ipc(), -1.0);
}

// ---------------------------------------------------------------------------
// PerfAgg arithmetic
// ---------------------------------------------------------------------------

TEST(PerfAgg, AccumulateAndDerive) {
  MockBackend backend;
  ThreadPerfScope a(&backend);
  ThreadPerfScope b(&backend);
  backend.tick(10);
  PerfAgg sum;
  sum += a.harvest(100);
  sum += b.harvest(300);
  EXPECT_EQ(sum.ops, 400u);
  EXPECT_EQ(sum.scopes, 2u);
  EXPECT_EQ(sum.total(Event::kCycles), 60000u);
  EXPECT_DOUBLE_EQ(sum.per_op(Event::kCycles), 150.0);

  PerfAgg empty;
  EXPECT_FALSE(empty.any_available());
  EXPECT_DOUBLE_EQ(empty.per_op(Event::kCycles), -1.0);
  empty.ops = 10;  // ops without events: still no per-op claims
  EXPECT_DOUBLE_EQ(empty.per_op(Event::kCycles), -1.0);
}

TEST(PerfAgg, WorstMuxScaleIsTheMinimumSeen) {
  MockBackend::Config muxed;
  muxed.mux = 0.25;
  MockBackend heavy(muxed);
  MockBackend clean;
  ThreadPerfScope sa(&clean);
  ThreadPerfScope sb(&heavy);
  clean.tick(4);
  heavy.tick(4);
  PerfAgg sum;
  sum += sa.harvest(1);
  EXPECT_DOUBLE_EQ(sum.worst_mux_scale, 1.0);
  sum += sb.harvest(1);
  EXPECT_DOUBLE_EQ(sum.worst_mux_scale, 0.25);
}

TEST(PerfAgg, DeltaOfCumulativeAggregates) {
  MockBackend backend;
  ThreadPerfScope scope(&backend);
  backend.tick(10);
  PerfAgg earlier;
  earlier += scope.harvest(100);
  backend.tick(10);
  PerfAgg later = earlier;
  later += scope.harvest(100);
  const PerfAgg d = agg_delta(later, earlier);
  EXPECT_EQ(d.ops, 100u);
  EXPECT_EQ(d.scopes, 1u);
  EXPECT_EQ(d.total(Event::kCycles), 30000u);
  EXPECT_DOUBLE_EQ(d.per_op(Event::kCycles), 300.0);
}

// ---------------------------------------------------------------------------
// Whole-queue attribution
// ---------------------------------------------------------------------------

TEST(AttributionTable, DepositAndSnapshot) {
  AttributionTable table;
  MockBackend backend;
  {
    QueuePerfScope scope("q-a", &backend, &table);
    ASSERT_TRUE(scope.live());
    backend.tick(10);
    scope.add_ops(100);
    scope.flush();
    backend.tick(10);
    scope.add_ops(100);
    // Destructor flushes the second interval.
  }
  const AttributionSnapshot snap = table.snapshot();
  ASSERT_EQ(snap.queues.size(), 1u);
  const PerfAgg* agg = snap.find("q-a");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->ops, 200u);
  EXPECT_EQ(agg->scopes, 2u);
  EXPECT_EQ(agg->total(Event::kCycles), 60000u);
  EXPECT_EQ(snap.find("q-missing"), nullptr);

  table.reset_for_testing();
  EXPECT_TRUE(table.snapshot().queues.empty());
}

TEST(AttributionTable, SnapshotIsNameSorted) {
  AttributionTable table;
  MockBackend backend;
  for (const char* name : {"zeta", "alpha", "mid"}) {
    QueuePerfScope scope(name, &backend, &table);
    backend.tick(1);
    scope.add_ops(1);
  }
  const AttributionSnapshot snap = table.snapshot();
  ASSERT_EQ(snap.queues.size(), 3u);
  EXPECT_EQ(snap.queues[0].first, "alpha");
  EXPECT_EQ(snap.queues[1].first, "mid");
  EXPECT_EQ(snap.queues[2].first, "zeta");
}

TEST(QueuePerfScope, DegradedScopeDropsOpsExplicitly) {
  AttributionTable table;
  NullBackend backend("denied");
  QueuePerfScope scope("q-dead", &backend, &table);
  EXPECT_FALSE(scope.live());
  scope.add_ops(1000);
  scope.flush();
  EXPECT_TRUE(table.snapshot().queues.empty())
      << "a dead scope must not deposit misleading ops-without-events rows";
}

// ---------------------------------------------------------------------------
// Prometheus exporter
// ---------------------------------------------------------------------------

TEST(RenderPrometheusPerf, PinnedOutput) {
  AttributionTable table;
  MockBackend backend;
  {
    QueuePerfScope scope("q-hot", &backend, &table);
    backend.tick(10);
    scope.add_ops(100);
  }
  std::ostringstream os;
  render_prometheus_perf(os, table.snapshot(), &backend);
  const std::string expected =
      "# HELP evq_perf_backend_available Hardware perf backend status (1 = counting).\n"
      "# TYPE evq_perf_backend_available gauge\n"
      "evq_perf_backend_available{backend=\"mock\",reason=\"\"} 1\n"
      "# HELP evq_perf_ops Queue operations attributed to whole-queue perf scopes.\n"
      "# TYPE evq_perf_ops counter\n"
      "evq_perf_ops{queue=\"q-hot\"} 100\n"
      "# HELP evq_perf_per_op Multiplex-corrected hardware events per queue operation.\n"
      "# TYPE evq_perf_per_op gauge\n"
      "evq_perf_per_op{queue=\"q-hot\",event=\"cycles\"} 300\n"
      "evq_perf_per_op{queue=\"q-hot\",event=\"instructions\"} 240\n"
      "evq_perf_per_op{queue=\"q-hot\",event=\"l1d_misses\"} 2\n"
      "evq_perf_per_op{queue=\"q-hot\",event=\"llc_misses\"} 0.2\n"
      "evq_perf_per_op{queue=\"q-hot\",event=\"branch_misses\"} 0.5\n"
      "evq_perf_per_op{queue=\"q-hot\",event=\"ctx_switches\"} 0\n"
      "# HELP evq_perf_ipc Instructions retired per cycle.\n"
      "# TYPE evq_perf_ipc gauge\n"
      "evq_perf_ipc{queue=\"q-hot\"} 0.8\n"
      "# HELP evq_perf_mux_scale Worst multiplexing duty cycle seen (1 = true counts).\n"
      "# TYPE evq_perf_mux_scale gauge\n"
      "evq_perf_mux_scale{queue=\"q-hot\"} 1\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(RenderPrometheusPerf, DegradedBackendExportsReasonNotSilence) {
  AttributionTable table;
  NullBackend backend("no hardware PMU (errno=2, perf_event_paranoid=2)");
  std::ostringstream os;
  render_prometheus_perf(os, table.snapshot(), &backend);
  const std::string out = os.str();
  EXPECT_NE(out.find("evq_perf_backend_available{backend=\"null\",reason=\"no hardware PMU "
                     "(errno=2, perf_event_paranoid=2)\"} 0\n"),
            std::string::npos);
  EXPECT_EQ(out.find("evq_perf_per_op{"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

TEST(BackendSelection, OverrideWinsAndRestores) {
  MockBackend mock;
  set_default_backend_for_testing(&mock);
  EXPECT_EQ(&default_backend(), static_cast<Backend*>(&mock));
  set_default_backend_for_testing(nullptr);
  EXPECT_NE(&default_backend(), static_cast<Backend*>(&mock));
}

TEST(BackendSelection, ProbedBackendSatisfiesTheFallbackMatrix) {
  Backend& backend = default_backend();
  if (backend.available()) {
    EXPECT_TRUE(backend.unavailable_reason().empty()) << backend.unavailable_reason();
    EXPECT_STREQ(backend.name(), "perf_event");
  } else {
    // Every degraded cell of the matrix carries a reason and the null name.
    EXPECT_FALSE(backend.unavailable_reason().empty());
    EXPECT_STREQ(backend.name(), "null");
  }
}

TEST(BackendSelection, RealCountersCountRealWork) {
  Backend& backend = default_backend();
  if (!backend.available()) {
    GTEST_SKIP() << "hardware counting unavailable: " << backend.unavailable_reason();
  }
  ThreadPerfScope scope;
  ASSERT_TRUE(scope.live());
  // Burn deterministic-ish work; any PMU worth the name counts > 0 cycles.
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 2000000; ++i) {
    sink += i * i;
  }
  const PerfAgg agg = scope.harvest(1);
  EXPECT_TRUE(agg.has(Event::kCycles));
  EXPECT_GT(agg.total(Event::kCycles), 0u);
  EXPECT_GT(agg.worst_mux_scale, 0.0);
}

// ---------------------------------------------------------------------------
// CacheThrash: deterministic false-sharing repro + padded quiet twin
// ---------------------------------------------------------------------------

// The repro subject: two queues' head/tail index words deliberately packed
// into ONE cacheline (what CachePadded exists to prevent) so every increment
// by one pair's owners invalidates the line under the other pair's feet.
struct Indices {
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
};

struct SharedLine {
  Indices a;  // "queue A"'s control words...
  Indices b;  // ...and "queue B"'s, 16 bytes later on the SAME line
};
static_assert(sizeof(SharedLine) <= evq::kCacheLineSize,
              "repro requires both index pairs on one destructive-interference line");

// The twin: the repo's own padding idiom — each pair owns a full line.
struct PaddedPair {
  evq::CachePadded<Indices> a;
  evq::CachePadded<Indices> b;
};
static_assert(sizeof(PaddedPair) >= 2 * evq::kCacheLineSize);

/// Hammers one Indices pair from two threads for exactly `ops_per_thread`
/// increments each — the fixed op count keeps the mock-derived per-op rates
/// below fully deterministic.
void hammer(Indices& ix, std::uint64_t ops_per_thread) {
  std::thread head_side([&] {
    for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
      ix.head.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread tail_side([&] {
    for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
      ix.tail.fetch_add(1, std::memory_order_relaxed);
    }
  });
  head_side.join();
  tail_side.join();
}

TEST(CacheThrash, ReproTripsAndPaddedTwinStaysQuiet) {
  constexpr std::uint64_t kOpsPerThread = 50000;
  constexpr std::uint64_t kOps = 2 * kOpsPerThread;

  // Physical layer: run the actual false-sharing workload and its padded
  // twin. On this host we cannot assert PMU numbers (CI containers rarely
  // count), so the workload's role is to BE the documented repro; the
  // deterministic mock profiles below stand in for what a PMU measures on
  // it: adjacent-line indices thrash (~6 LLC misses/op), padded ones don't.
  SharedLine shared;
  hammer(shared.a, kOpsPerThread);
  hammer(shared.b, kOpsPerThread);
  PaddedPair padded;
  hammer(padded.a.value, kOpsPerThread);
  hammer(padded.b.value, kOpsPerThread);
  ASSERT_EQ(shared.a.head.load(), kOpsPerThread);
  ASSERT_EQ(padded.a.value.head.load(), kOpsPerThread);

  // Diagnosis layer: attribute deterministic counter profiles for the two
  // workloads and run the real Monitor/Diagnoser over them. One virtual
  // tick per op; the hot profile pays 6 LLC misses/op (>> threshold 2), the
  // padded twin 2 per 100 ops.
  MockBackend::Config hot_config;
  hot_config.rate[idx(Event::kLlcMisses)] = 6;
  MockBackend hot(hot_config);
  MockBackend::Config quiet_config;
  quiet_config.rate[idx(Event::kLlcMisses)] = 0;
  MockBackend quiet(quiet_config);

  AttributionTable table;
  evq::telemetry::Registry registry;  // private + empty: rates come from perf only
  evq::health::MonitorOptions options;
  options.registry = &registry;
  options.latency_sample_every = 0;
  options.perf = &table;
  evq::health::Monitor monitor(options);

  auto attribute_interval = [&] {
    {
      QueuePerfScope scope("thrash-repro", &hot, &table);
      hot.tick(kOps);
      scope.add_ops(kOps);
    }
    {
      QueuePerfScope scope("thrash-twin", &quiet, &table);
      quiet.tick(kOps);
      scope.add_ops(kOps);
    }
  };

  // trip_polls = 2: the first breaching interval arms the rule, the second
  // raises the finding — for the repro key only.
  attribute_interval();
  evq::health::HealthSnapshot snap = monitor.poll();
  EXPECT_TRUE(snap.findings.empty()) << "hysteresis: one breach must not trip";
  const evq::health::QueueRates* repro = nullptr;
  for (const evq::health::QueueRates& q : snap.queues) {
    if (q.queue == "thrash-repro") {
      repro = &q;
    }
  }
  ASSERT_NE(repro, nullptr);
  EXPECT_TRUE(repro->perf_live);
  EXPECT_EQ(repro->perf_ops, kOps);
  EXPECT_DOUBLE_EQ(repro->llc_miss_per_op, 6.0);

  attribute_interval();
  snap = monitor.poll();
  ASSERT_EQ(snap.findings.size(), 1u);
  const evq::health::Finding& f = snap.findings[0];
  EXPECT_EQ(f.type, evq::health::FindingType::kCacheThrash);
  EXPECT_EQ(f.subject, "thrash-repro");
  EXPECT_DOUBLE_EQ(f.severity, 6.0);
  EXPECT_NE(f.detail.find("llc_miss/op"), std::string::npos);

  // The padded twin never trips, and two quiet intervals clear the repro.
  for (int i = 0; i < 2; ++i) {
    {
      QueuePerfScope scope("thrash-repro", &quiet, &table);
      quiet.tick(kOps);
      scope.add_ops(kOps);
    }
    snap = monitor.poll();
  }
  EXPECT_TRUE(snap.findings.empty()) << "clear_polls = 2 quiet intervals must clear";
}

TEST(CacheThrash, HealthSinksCarryPerfRates) {
  // The joined layer-4 rates must surface through both health sinks so
  // evq-top and the JSON consumers see them.
  MockBackend::Config hot_config;
  hot_config.rate[idx(Event::kLlcMisses)] = 6;
  MockBackend hot(hot_config);
  AttributionTable table;
  evq::telemetry::Registry registry;
  evq::health::MonitorOptions options;
  options.registry = &registry;
  options.latency_sample_every = 0;
  options.perf = &table;
  evq::health::Monitor monitor(options);
  {
    QueuePerfScope scope("sink-queue", &hot, &table);
    hot.tick(1000);
    scope.add_ops(1000);
  }
  const evq::health::HealthSnapshot snap = monitor.poll();

  std::ostringstream prom;
  evq::health::render_prometheus_health(prom, snap);
  EXPECT_NE(prom.str().find("evq_health_rate{queue=\"sink-queue\",rate=\"perf_ops\"} 1000"),
            std::string::npos)
      << prom.str();
  EXPECT_NE(prom.str().find("rate=\"llc_miss_per_op\"} 6"), std::string::npos);

  std::ostringstream json;
  evq::health::health_json(json, snap);
  EXPECT_NE(json.str().find("\"perf\":{\"ops\":1000,\"cycles_per_op\":3000,"), std::string::npos)
      << json.str();
}

}  // namespace
