// Tests for the op-submission contention seam (common/backoff.hpp +
// core/ring_engine.hpp, DESIGN.md §14).
//
// The seam's contract has two halves:
//   * trivial policies (NoBackoff/ExpBackoff = BasicContention<Waiter>) must
//     behave bit-for-bit like the historical blind pause() hook — on_retry is
//     exactly one waiter pause, try_delegate always declines — which is what
//     keeps every pre-seam registry entry unchanged;
//   * an op-aware policy may take a whole operation over at entry
//     (try_delegate), and the engine must then honour the verdict without
//     touching the ring: kDone is a successful push/pop (pop's element rides
//     back through OpSubmission::node), kRefused is the queue-boundary
//     outcome (FULL_QUEUE / EMPTY_QUEUE).
// The StackDelegate double below stands in for the combining layer and checks
// both the verdict plumbing and the ContentionCtx/OpSubmission field flow
// (op kind, batched hint).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "evq/common/backoff.hpp"
#include "evq/core/cas_array_queue.hpp"
#include "evq/telemetry/metrics.hpp"

namespace {

using namespace evq;

static_assert(ContentionSeam<NoBackoff>);
static_assert(ContentionSeam<ExpBackoff>);

// ---------------------------------------------------------------------------
// BasicContention: the behaviour-preserving trivial instantiation
// ---------------------------------------------------------------------------

/// Waiter double that counts pause() calls (process-global: the engine
/// default-constructs a fresh policy per operation, so instance state would
/// be invisible to the test).
struct CountingWaiter {
  static inline int pauses = 0;
  static inline int resets = 0;
  void pause() noexcept { ++pauses; }
  [[nodiscard]] bool is_yielding() const noexcept { return false; }
  void reset() noexcept { ++resets; }
};

TEST(ContentionSeam, BasicContentionMapsOnRetryToExactlyOneWaiterPause) {
  CountingWaiter::pauses = 0;
  BasicContention<CountingWaiter> policy;
  policy.on_retry(ContentionCtx{ContentionOp::kPop, 3, true});
  EXPECT_EQ(CountingWaiter::pauses, 1);
  policy.on_retry(ContentionCtx{ContentionOp::kPush, 0, false});
  EXPECT_EQ(CountingWaiter::pauses, 2);
  policy.pause();  // the blind interface still reaches the waiter too
  EXPECT_EQ(CountingWaiter::pauses, 3);
}

TEST(ContentionSeam, BasicContentionNeverDelegates) {
  BasicContention<CountingWaiter> policy;
  std::uint64_t value = 7;
  OpSubmission push_sub{ContentionOp::kPush, &value, false};
  EXPECT_EQ(policy.try_delegate(push_sub), Delegation::kNone);
  EXPECT_EQ(push_sub.node, &value) << "a declining policy must not touch the submission";
  OpSubmission pop_sub{ContentionOp::kPop, nullptr, true};
  EXPECT_EQ(policy.try_delegate(pop_sub), Delegation::kNone);
  EXPECT_EQ(pop_sub.node, nullptr);
}

TEST(ContentionSeam, ExpBackoffStillEscalatesToYield) {
  // The op-aware wrapper must not lose the spin-then-yield escalation the
  // bench prices: enough on_retry rounds push the underlying Backoff past
  // its spin limit.
  ExpBackoff policy;
  EXPECT_FALSE(policy.is_yielding());
  for (int i = 0; i < 16; ++i) {
    policy.on_retry(ContentionCtx{ContentionOp::kPush, static_cast<std::uint32_t>(i), false});
  }
  EXPECT_TRUE(policy.is_yielding());
  policy.reset();
  EXPECT_FALSE(policy.is_yielding());
}

// ---------------------------------------------------------------------------
// Delegation end-to-end through the ring engine
// ---------------------------------------------------------------------------

/// A seam policy standing in for a combining/delegation layer: takes over
/// every op and completes it against a process-global LIFO side stack,
/// recording each submission it saw. The engine default-constructs a policy
/// per operation, so all state is static; the tests are single-threaded.
struct StackDelegate {
  static inline std::vector<void*> stack;
  static inline std::vector<OpSubmission> seen;
  static inline bool refuse = false;

  static void reset_state() {
    stack.clear();
    seen.clear();
    refuse = false;
  }

  void pause() noexcept {}
  [[nodiscard]] bool is_yielding() const noexcept { return false; }
  void reset() noexcept {}
  void on_retry(const ContentionCtx& /*ctx*/) noexcept {}

  Delegation try_delegate(OpSubmission& sub) noexcept {
    seen.push_back(sub);
    if (refuse) {
      return Delegation::kRefused;
    }
    if (sub.op == ContentionOp::kPush) {
      stack.push_back(sub.node);
      return Delegation::kDone;
    }
    if (stack.empty()) {
      return Delegation::kRefused;  // EMPTY_QUEUE
    }
    sub.node = stack.back();
    stack.pop_back();
    return Delegation::kDone;
  }
};

static_assert(ContentionSeam<StackDelegate>);

using DelegatedQueue = CasArrayQueue<std::uint64_t, StackDelegate>;

TEST(ContentionSeam, DelegatedOpsNeverTouchTheRing) {
  StackDelegate::reset_state();
  DelegatedQueue q(4, "seam-delegate-a");
  auto h = q.handle();
  std::uint64_t a = 1, b = 2;
  EXPECT_TRUE(q.try_push(h, &a));
  EXPECT_TRUE(q.try_push(h, &b));
  // The ops were completed by the policy; the ring itself stayed untouched.
  EXPECT_EQ(q.size_estimate(), 0u);
  EXPECT_EQ(q.head_index(), 0u);
  EXPECT_EQ(q.tail_index(), 0u);
  // kDone pops surface the policy's element through OpSubmission::node.
  EXPECT_EQ(q.try_pop(h), &b);
  EXPECT_EQ(q.try_pop(h), &a);
  // Stack drained: the policy reports EMPTY_QUEUE via kRefused.
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(ContentionSeam, RefusedDelegationReportsQueueBoundaryOutcomes) {
  StackDelegate::reset_state();
  StackDelegate::refuse = true;
  DelegatedQueue q(4, "seam-delegate-b");
  auto h = q.handle();
  std::uint64_t v = 9;
  EXPECT_FALSE(q.try_push(h, &v)) << "kRefused on push is FULL_QUEUE";
  EXPECT_EQ(q.try_pop(h), nullptr) << "kRefused on pop is EMPTY_QUEUE";
  EXPECT_EQ(q.size_estimate(), 0u);
}

TEST(ContentionSeam, SubmissionCarriesOpKindAndBatchHint) {
  StackDelegate::reset_state();
  DelegatedQueue q(8, "seam-delegate-c");
  auto h = q.handle();
  std::uint64_t vals[3] = {1, 2, 3};
  std::uint64_t* nodes[3] = {&vals[0], &vals[1], &vals[2]};
  ASSERT_TRUE(q.try_push(h, &vals[0]));            // single: batched = false
  ASSERT_EQ(q.try_push_n(h, nodes, 3), 3u);        // batch entry: batched = true
  std::uint64_t* out[4] = {};
  ASSERT_EQ(q.try_pop_n(h, out, 4), 4u);
  ASSERT_EQ(q.try_pop(h), nullptr);                // empty single pop

  ASSERT_EQ(StackDelegate::seen.size(), 9u);
  EXPECT_EQ(StackDelegate::seen[0].op, ContentionOp::kPush);
  EXPECT_FALSE(StackDelegate::seen[0].batched);
  EXPECT_EQ(StackDelegate::seen[0].node, &vals[0]);
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(StackDelegate::seen[i].op, ContentionOp::kPush);
    EXPECT_TRUE(StackDelegate::seen[i].batched) << "try_push_n must set the batch hint";
  }
  for (int i = 4; i <= 7; ++i) {
    EXPECT_EQ(StackDelegate::seen[i].op, ContentionOp::kPop);
    EXPECT_TRUE(StackDelegate::seen[i].batched);
  }
  EXPECT_EQ(StackDelegate::seen[8].op, ContentionOp::kPop);
  EXPECT_FALSE(StackDelegate::seen[8].batched);
}

/// Policy that completes every op as kDone but never produces a pop element
/// (leaves OpSubmission::node null) — the legal "pop completed, queue empty
/// at my linearization point" result channel.
struct NullPopDelegate {
  void pause() noexcept {}
  [[nodiscard]] bool is_yielding() const noexcept { return false; }
  void reset() noexcept {}
  void on_retry(const ContentionCtx& /*ctx*/) noexcept {}
  Delegation try_delegate(OpSubmission& sub) noexcept {
    if (sub.op == ContentionOp::kPop) {
      sub.node = nullptr;
    }
    return Delegation::kDone;
  }
};

static_assert(ContentionSeam<NullPopDelegate>);

TEST(ContentionSeam, DoneDelegationWithNullPopCountsAsEmptyNotOk) {
  // kDone with a null pop node must reach the caller as nullptr AND be
  // accounted as an empty pop — counting it kPopOk would report successful
  // pops that handed out nothing, skewing telemetry/trace joins.
  CasArrayQueue<std::uint64_t, NullPopDelegate> q(4, "seam-delegate-nullpop");
  auto h = q.handle();
  EXPECT_EQ(q.try_pop(h), nullptr);
#if EVQ_TELEMETRY
  const telemetry::CounterSnapshot snap = q.metrics().snapshot();
  EXPECT_EQ(snap[telemetry::Counter::kPopOk], 0u);
  EXPECT_EQ(snap[telemetry::Counter::kPopEmpty], 1u);
#endif
}

TEST(ContentionSeam, DelegatedOutcomesStillCountInTelemetry) {
#if !EVQ_TELEMETRY
  GTEST_SKIP() << "counter values compiled out with EVQ_TELEMETRY=0";
#else
  StackDelegate::reset_state();
  DelegatedQueue q(4, "seam-delegate-telemetry");
  auto h = q.handle();
  std::uint64_t v = 5;
  ASSERT_TRUE(q.try_push(h, &v));
  ASSERT_EQ(q.try_pop(h), &v);
  ASSERT_EQ(q.try_pop(h), nullptr);  // policy stack empty -> kRefused
  const telemetry::CounterSnapshot snap = q.metrics().snapshot();
  EXPECT_EQ(snap[telemetry::Counter::kPushOk], 1u);
  EXPECT_EQ(snap[telemetry::Counter::kPopOk], 1u);
  EXPECT_EQ(snap[telemetry::Counter::kPopEmpty], 1u);
#endif
}

}  // namespace
