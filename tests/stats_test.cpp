// Tests for the measurement substrate of evq-bench (harness/stats.hpp):
// percentile correctness of the log-scale histogram on known distributions,
// merge associativity, and the CV-based adaptive stop rule.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "evq/common/rng.hpp"
#include "evq/harness/stats.hpp"
#include "evq/harness/tsc.hpp"

namespace {

using namespace evq::harness;

// The histogram's relative quantization error bound: values land in
// sub-buckets of width 2^-kSubBucketBits of their octave, and the reported
// representative is the bucket midpoint.
constexpr double kRelTol = 1.0 / LogHistogram::kSubBuckets;

void expect_close(std::uint64_t got, double want, const char* what) {
  const double tol = std::max(1.0, want * kRelTol);
  EXPECT_NEAR(static_cast<double>(got), want, tol) << what;
}

TEST(Summary, CoefficientOfVariation) {
  const Summary s = summarize({10.0, 10.0, 10.0, 10.0});
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);

  const Summary spread = summarize({8.0, 12.0});
  EXPECT_GT(spread.cv(), 0.0);
  EXPECT_DOUBLE_EQ(spread.cv(), spread.stddev / spread.mean);

  Summary zero;  // empty/degenerate: mean 0 must not divide
  EXPECT_DOUBLE_EQ(zero.cv(), 0.0);
}

TEST(LogHistogram, EmptyIsAllZero) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p999(), 0u);
}

TEST(LogHistogram, SmallValuesAreExact) {
  // Values below 2^kSubBucketBits get one bucket each: percentiles are exact.
  LogHistogram h;
  for (std::uint64_t v = 0; v < LogHistogram::kSubBuckets; ++v) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), LogHistogram::kSubBuckets);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), LogHistogram::kSubBuckets - 1);
  EXPECT_EQ(h.value_at_percentile(100.0), LogHistogram::kSubBuckets - 1);
  // 16 values: the 50th percentile is the 8th ranked recording, value 7.
  EXPECT_EQ(h.p50(), LogHistogram::kSubBuckets / 2 - 1);
}

TEST(LogHistogram, PercentilesOnUniformDistribution) {
  // Uniform over [1, 100000]: p-th percentile ~= p% of the range.
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 100000u);
  expect_close(h.p50(), 50000.0, "p50");
  expect_close(h.p90(), 90000.0, "p90");
  expect_close(h.p99(), 99000.0, "p99");
  expect_close(h.p999(), 99900.0, "p999");
  expect_close(h.value_at_percentile(10.0), 10000.0, "p10");
  EXPECT_EQ(h.value_at_percentile(0.0), h.min());
  EXPECT_EQ(h.value_at_percentile(100.0), h.max());
  expect_close(static_cast<std::uint64_t>(h.mean()), 50000.5, "mean");
}

TEST(LogHistogram, PercentilesOnBimodalDistribution) {
  // 99% fast ops at ~100, 1% slow at ~100000: p50/p90 must sit in the fast
  // mode and p999 in the slow mode — the exact shape a latency histogram
  // exists to expose.
  LogHistogram h;
  h.record_n(100, 9900);
  h.record_n(100000, 100);
  expect_close(h.p50(), 100.0, "p50");
  expect_close(h.p90(), 100.0, "p90");
  expect_close(h.p999(), 100000.0, "p999");
}

TEST(LogHistogram, RecordNMatchesRepeatedRecord) {
  LogHistogram a;
  LogHistogram b;
  for (int i = 0; i < 37; ++i) {
    a.record(1234);
  }
  b.record_n(1234, 37);
  EXPECT_EQ(a, b);
  b.record_n(99, 0);  // zero weight is a no-op
  EXPECT_EQ(a, b);
}

TEST(LogHistogram, MergeIsAssociativeAndCommutative) {
  evq::SplitMix64 rng(7);
  std::vector<LogHistogram> parts(3);
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 1000; ++i) {
      parts[static_cast<std::size_t>(p)].record(rng.next() >> 40);
    }
  }
  // (a + b) + c
  LogHistogram left = parts[0];
  left.merge(parts[1]);
  left.merge(parts[2]);
  // a + (b + c)
  LogHistogram bc = parts[1];
  bc.merge(parts[2]);
  LogHistogram right = parts[0];
  right.merge(bc);
  // c + b + a
  LogHistogram rev = parts[2];
  rev.merge(parts[1]);
  rev.merge(parts[0]);
  EXPECT_EQ(left, right);
  EXPECT_EQ(left, rev);
  EXPECT_EQ(left.count(), 3000u);
}

TEST(LogHistogram, MergeWithEmptyIsIdentity) {
  LogHistogram h;
  h.record(42);
  h.record(7);
  const LogHistogram before = h;
  LogHistogram empty;
  h.merge(empty);
  EXPECT_EQ(h, before);
  empty.merge(h);
  EXPECT_EQ(empty, before);
}

TEST(StopRule, FixedRunCountWhenCvDisabled) {
  const StopRule rule{0.0, 3, 0};
  EXPECT_FALSE(stop_sampling({1.0}, rule));
  EXPECT_FALSE(stop_sampling({1.0, 5.0}, rule));
  // Stops at exactly min_runs regardless of how unstable the series is.
  EXPECT_TRUE(stop_sampling({1.0, 5.0, 25.0}, rule));
}

TEST(StopRule, StopsEarlyOnceStable) {
  const StopRule rule{0.05, 2, 10};
  EXPECT_FALSE(stop_sampling({1.0}, rule)) << "below min_runs";
  EXPECT_TRUE(stop_sampling({1.0, 1.0}, rule)) << "CV 0 <= target at min_runs";
  EXPECT_FALSE(stop_sampling({1.0, 2.0}, rule)) << "CV far above target";
}

TEST(StopRule, CapsAtMaxRuns) {
  const StopRule rule{0.0001, 2, 4};
  std::vector<double> noisy = {1.0, 3.0, 9.0};
  EXPECT_FALSE(stop_sampling(noisy, rule));
  noisy.push_back(27.0);  // still wildly unstable, but n == max_runs
  EXPECT_TRUE(stop_sampling(noisy, rule));

  const StopRule defaulted{0.0001, 3, 0};  // max_runs 0 = 4 x min_runs
  EXPECT_EQ(defaulted.effective_max(), 12u);
}

TEST(Tsc, MonotonicAndConvertible) {
  const std::uint64_t a = tsc_now();
  const std::uint64_t b = tsc_now();
  EXPECT_GE(b, a);
  EXPECT_GT(tsc_ns_per_tick(), 0.0);
  // A 1ms spin must register between 0.1ms and 1s of converted time — loose
  // bounds, but they catch a calibration that is off by orders of magnitude.
  const std::uint64_t start = tsc_now();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
  while (std::chrono::steady_clock::now() < deadline) {
  }
  const double ns = tsc_to_ns(tsc_now() - start);
  EXPECT_GT(ns, 1e5);
  EXPECT_LT(ns, 1e9);
}

}  // namespace
