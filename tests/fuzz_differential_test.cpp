// Differential fuzzing: every queue implementation is driven with long
// randomized push/pop sequences and compared operation-by-operation against
// a reference std::deque model. Single-threaded, so the comparison is exact
// — this nails the sequential corner cases (full/empty boundaries, wrap
// parity, helping left-overs) that the concurrent stress suites can only
// probe statistically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "evq/baselines/ms_ebr_queue.hpp"
#include "evq/baselines/ms_hp_queue.hpp"
#include "evq/baselines/ms_pool_queue.hpp"
#include "evq/baselines/ms_sim_queue.hpp"
#include "evq/baselines/mutex_queue.hpp"
#include "evq/baselines/shann_queue.hpp"
#include "evq/baselines/tsigas_zhang_queue.hpp"
#include "evq/baselines/unsync_ring.hpp"
#include "evq/common/rng.hpp"
#include "evq/core/cas_array_queue.hpp"
#include "evq/core/combining_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/scq_queue.hpp"
#include "evq/core/segmented_queue.hpp"
#include "evq/core/sharded_queue.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/verify/fifo_checkers.hpp"

namespace {

using namespace evq;
using verify::Token;

template <typename Q>
Q* make_queue(std::size_t capacity) {
  if constexpr (std::is_constructible_v<Q, std::size_t>) {
    return new Q(capacity);
  } else {
    return new Q();
  }
}

/// Drives `ops` random operations against queue and model in lock-step.
/// bias_push in [0,100]: probability that a step is a push.
template <typename Q>
void fuzz_against_model(std::size_t capacity, std::uint64_t seed, int ops, int bias_push) {
  std::unique_ptr<Q> q(make_queue<Q>(capacity));
  std::size_t model_capacity = SIZE_MAX;
  if constexpr (BoundedPtrQueue<Q>) {
    model_capacity = q->capacity();
  }
  auto h = q->handle();
  XorShift64Star rng(seed);
  std::vector<Token> arena(static_cast<std::size_t>(ops) + 1);
  std::size_t next_token = 0;
  std::deque<Token*> model;
  for (int i = 0; i < ops; ++i) {
    if (rng.chance(static_cast<std::uint64_t>(bias_push), 100)) {
      Token* tok = &arena[next_token];
      const bool pushed = q->try_push(h, tok);
      const bool model_pushed = model.size() < model_capacity;
      ASSERT_EQ(pushed, model_pushed) << "push disagreement at op " << i;
      if (pushed) {
        model.push_back(tok);
        ++next_token;
      }
    } else {
      Token* popped = q->try_pop(h);
      if (model.empty()) {
        ASSERT_EQ(popped, nullptr) << "pop from empty disagreement at op " << i;
      } else {
        ASSERT_EQ(popped, model.front()) << "FIFO order disagreement at op " << i;
        model.pop_front();
      }
    }
  }
  // Drain and compare the leftovers too.
  while (!model.empty()) {
    ASSERT_EQ(q->try_pop(h), model.front());
    model.pop_front();
  }
  ASSERT_EQ(q->try_pop(h), nullptr);
}

/// Batch differential: random try_push_n / try_pop_n calls (sizes 0..8)
/// against the same deque model. Batch semantics are the maximal prefix —
/// push_n transfers min(n, free) items, pop_n min(n, size), both in FIFO
/// order — so the model predicts the exact count AND the exact items.
template <typename Q>
void fuzz_batch_against_model(std::size_t capacity, std::uint64_t seed, int ops, int bias_push) {
  std::unique_ptr<Q> q(make_queue<Q>(capacity));
  std::size_t model_capacity = SIZE_MAX;
  if constexpr (BoundedPtrQueue<Q>) {
    model_capacity = q->capacity();
  }
  auto h = q->handle();
  XorShift64Star rng(seed);
  std::vector<Token> arena(static_cast<std::size_t>(ops) * 8 + 8);
  std::size_t next_token = 0;
  std::deque<Token*> model;
  for (int i = 0; i < ops; ++i) {
    const std::size_t n = rng.next() % 9;
    if (rng.chance(static_cast<std::uint64_t>(bias_push), 100)) {
      std::vector<Token*> in(n);
      for (std::size_t k = 0; k < n; ++k) {
        in[k] = &arena[next_token + k];
      }
      const std::size_t pushed = q->try_push_n(h, in.data(), n);
      const std::size_t expect =
          model_capacity == SIZE_MAX ? n : std::min(n, model_capacity - model.size());
      ASSERT_EQ(pushed, expect) << "push_n count disagreement at op " << i;
      for (std::size_t k = 0; k < pushed; ++k) {
        model.push_back(in[k]);
      }
      next_token += pushed;
    } else {
      std::vector<Token*> out(n, nullptr);
      const std::size_t popped = q->try_pop_n(h, out.data(), n);
      ASSERT_EQ(popped, std::min(n, model.size())) << "pop_n count disagreement at op " << i;
      for (std::size_t k = 0; k < popped; ++k) {
        ASSERT_EQ(out[k], model.front()) << "pop_n order disagreement at op " << i;
        model.pop_front();
      }
    }
  }
  while (!model.empty()) {
    ASSERT_EQ(q->try_pop(h), model.front());
    model.pop_front();
  }
  ASSERT_EQ(q->try_pop(h), nullptr);
}

/// Sharded differential: cross-shard scans drop global FIFO, so the model is
/// a multiset with the total-capacity bound — push fails only when the whole
/// structure is full, pop only when it is empty, and every pop returns a live
/// member (single-threaded, so probes cannot race and these are exact).
template <typename Q>
void fuzz_sharded_against_multiset(std::size_t capacity, std::size_t shards, std::uint64_t seed,
                                   int ops, int bias_push) {
  ShardedQueue<Q> q(capacity, shards);
  const std::size_t total_capacity = q.capacity();
  auto h = q.handle();
  XorShift64Star rng(seed);
  std::vector<Token> arena(static_cast<std::size_t>(ops) + 1);
  std::size_t next_token = 0;
  std::multiset<Token*> model;
  for (int i = 0; i < ops; ++i) {
    if (rng.chance(static_cast<std::uint64_t>(bias_push), 100)) {
      Token* tok = &arena[next_token];
      const bool pushed = q.try_push(h, tok);
      ASSERT_EQ(pushed, model.size() < total_capacity) << "push disagreement at op " << i;
      if (pushed) {
        model.insert(tok);
        ++next_token;
      }
    } else {
      Token* popped = q.try_pop(h);
      if (model.empty()) {
        ASSERT_EQ(popped, nullptr) << "pop from empty disagreement at op " << i;
      } else {
        auto it = model.find(popped);
        ASSERT_NE(it, model.end()) << "pop returned a non-member at op " << i;
        model.erase(it);
      }
    }
  }
  while (!model.empty()) {
    Token* popped = q.try_pop(h);
    auto it = model.find(popped);
    ASSERT_NE(it, model.end()) << "drain returned a non-member";
    model.erase(it);
  }
  ASSERT_EQ(q.try_pop(h), nullptr);
}

struct FuzzCase {
  std::size_t capacity;
  std::uint64_t seed;
  int bias_push;  // percent
};

class DifferentialFuzz : public ::testing::TestWithParam<FuzzCase> {};

constexpr int kOps = 20000;

TEST_P(DifferentialFuzz, LlscArrayQueue) {
  const auto p = GetParam();
  fuzz_against_model<LlscArrayQueue<Token>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, LlscArrayQueuePacked) {
  const auto p = GetParam();
  fuzz_against_model<LlscArrayQueue<Token, llsc::PackedLlsc>>(p.capacity, p.seed, kOps,
                                                              p.bias_push);
}

TEST_P(DifferentialFuzz, CasArrayQueue) {
  const auto p = GetParam();
  fuzz_against_model<CasArrayQueue<Token>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, ShannQueue) {
  const auto p = GetParam();
  fuzz_against_model<baselines::ShannQueue<Token>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, TsigasZhangQueue) {
  const auto p = GetParam();
  fuzz_against_model<baselines::TsigasZhangQueue<Token>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, MutexQueue) {
  const auto p = GetParam();
  fuzz_against_model<baselines::MutexQueue<Token>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, UnsyncRing) {
  const auto p = GetParam();
  fuzz_against_model<baselines::UnsyncRing<Token>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, MsHpQueue) {
  const auto p = GetParam();
  fuzz_against_model<baselines::MsHpQueue<Token>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, MsPoolQueue) {
  const auto p = GetParam();
  fuzz_against_model<baselines::MsPoolQueue<Token>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, MsEbrQueue) {
  const auto p = GetParam();
  fuzz_against_model<baselines::MsEbrQueue<Token>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, MsSimQueue) {
  const auto p = GetParam();
  fuzz_against_model<baselines::MsSimQueue<Token>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, LlscArrayQueueBackoff) {
  const auto p = GetParam();
  fuzz_against_model<LlscArrayQueue<Token, llsc::PackedLlsc, ExpBackoff>>(p.capacity, p.seed, kOps,
                                                                          p.bias_push);
}

TEST_P(DifferentialFuzz, CasArrayQueueBackoff) {
  const auto p = GetParam();
  fuzz_against_model<CasArrayQueue<Token, ExpBackoff>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, LlscArrayQueueBatch) {
  const auto p = GetParam();
  fuzz_batch_against_model<LlscArrayQueue<Token, llsc::PackedLlsc>>(p.capacity, p.seed, kOps / 4,
                                                                    p.bias_push);
}

TEST_P(DifferentialFuzz, CasArrayQueueBatch) {
  const auto p = GetParam();
  fuzz_batch_against_model<CasArrayQueue<Token>>(p.capacity, p.seed, kOps / 4, p.bias_push);
}

TEST_P(DifferentialFuzz, ShannQueueBatch) {
  const auto p = GetParam();
  fuzz_batch_against_model<baselines::ShannQueue<Token>>(p.capacity, p.seed, kOps / 4, p.bias_push);
}

TEST_P(DifferentialFuzz, TsigasZhangQueueBatch) {
  const auto p = GetParam();
  fuzz_batch_against_model<baselines::TsigasZhangQueue<Token>>(p.capacity, p.seed, kOps / 4,
                                                               p.bias_push);
}

TEST_P(DifferentialFuzz, ScqQueue) {
  const auto p = GetParam();
  fuzz_against_model<ScqQueue<Token>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, ScqQueueBatch) {
  const auto p = GetParam();
  fuzz_batch_against_model<ScqQueue<Token>>(p.capacity, p.seed, kOps / 4, p.bias_push);
}

// Segmented queues: `capacity` sizes one segment, the queue is unbounded, so
// the model capacity auto-degrades to SIZE_MAX (pushes never fail) while the
// FIFO-order comparison stays exact across every segment boundary.
TEST_P(DifferentialFuzz, SegmentedCasQueue) {
  const auto p = GetParam();
  fuzz_against_model<SegmentedQueue<CasArrayQueue<Token>>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, SegmentedScqQueue) {
  const auto p = GetParam();
  fuzz_against_model<SegmentedQueue<ScqQueue<Token>>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, SegmentedScqQueueEbr) {
  const auto p = GetParam();
  fuzz_against_model<SegmentedQueue<ScqQueue<Token>, EbrSegmentDomain>>(p.capacity, p.seed, kOps,
                                                                        p.bias_push);
}

TEST_P(DifferentialFuzz, SegmentedScqQueueBatch) {
  const auto p = GetParam();
  fuzz_batch_against_model<SegmentedQueue<ScqQueue<Token>>>(p.capacity, p.seed, kOps / 4,
                                                            p.bias_push);
}

TEST_P(DifferentialFuzz, ShardedSegmentedScqQueue) {
  // The sharded facade over an unbounded inner is itself unbounded: the
  // multiset model's capacity bound degrades to "never full".
  const auto p = GetParam();
  ShardedQueue<SegmentedQueue<ScqQueue<Token>>> q(p.capacity * 4, 4);
  auto h = q.handle();
  XorShift64Star rng(p.seed);
  std::vector<Token> arena(static_cast<std::size_t>(kOps) + 1);
  std::size_t next_token = 0;
  std::multiset<Token*> model;
  for (int i = 0; i < kOps; ++i) {
    if (rng.chance(static_cast<std::uint64_t>(p.bias_push), 100)) {
      Token* tok = &arena[next_token];
      ASSERT_TRUE(q.try_push(h, tok)) << "unbounded sharded push failed at op " << i;
      model.insert(tok);
      ++next_token;
    } else {
      Token* popped = q.try_pop(h);
      if (model.empty()) {
        ASSERT_EQ(popped, nullptr) << "pop from empty disagreement at op " << i;
      } else {
        auto it = model.find(popped);
        ASSERT_NE(it, model.end()) << "pop returned a non-member at op " << i;
        model.erase(it);
      }
    }
  }
  while (!model.empty()) {
    Token* popped = q.try_pop(h);
    auto it = model.find(popped);
    ASSERT_NE(it, model.end()) << "drain returned a non-member";
    model.erase(it);
  }
  ASSERT_EQ(q.try_pop(h), nullptr);
}

// Combining facades: single-threaded the adaptive heuristic mostly stays on
// the direct path, but every kProbeEvery-th op still runs the full
// announce/combine/harvest protocol (the probe), so the fuzz walks both
// paths and their hand-off at every full/empty boundary the model reaches.
TEST_P(DifferentialFuzz, CombiningCasQueue) {
  const auto p = GetParam();
  fuzz_against_model<CombiningQueue<CasArrayQueue<Token>>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, CombiningScqQueue) {
  const auto p = GetParam();
  fuzz_against_model<CombiningQueue<ScqQueue<Token>>>(p.capacity, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, CombiningCasQueueBatch) {
  const auto p = GetParam();
  fuzz_batch_against_model<CombiningQueue<CasArrayQueue<Token>>>(p.capacity, p.seed, kOps / 4,
                                                                 p.bias_push);
}

TEST_P(DifferentialFuzz, CombiningScqQueueBatch) {
  const auto p = GetParam();
  fuzz_batch_against_model<CombiningQueue<ScqQueue<Token>>>(p.capacity, p.seed, kOps / 4,
                                                            p.bias_push);
}

TEST_P(DifferentialFuzz, ShardedCombiningScqQueue) {
  const auto p = GetParam();
  fuzz_sharded_against_multiset<CombiningQueue<ScqQueue<Token>>>(p.capacity * 4, 4, p.seed, kOps,
                                                                 p.bias_push);
}

TEST_P(DifferentialFuzz, ShardedScqQueue) {
  const auto p = GetParam();
  fuzz_sharded_against_multiset<ScqQueue<Token>>(p.capacity * 4, 4, p.seed, kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, ShardedLlscQueue) {
  const auto p = GetParam();
  fuzz_sharded_against_multiset<LlscArrayQueue<Token, llsc::PackedLlsc>>(p.capacity * 4, 4, p.seed,
                                                                         kOps, p.bias_push);
}

TEST_P(DifferentialFuzz, ShardedCasQueue) {
  const auto p = GetParam();
  fuzz_sharded_against_multiset<CasArrayQueue<Token>>(p.capacity * 4, 4, p.seed, kOps, p.bias_push);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DifferentialFuzz,
    ::testing::Values(FuzzCase{2, 0xA11CE, 50}, FuzzCase{2, 0xB0B, 80}, FuzzCase{2, 0xC0DE, 20},
                      FuzzCase{8, 0xD00D, 50}, FuzzCase{8, 0xE66, 90},
                      FuzzCase{64, 0xF00D, 50}, FuzzCase{1024, 0xFEED, 60}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "cap" + std::to_string(info.param.capacity) + "_bias" +
             std::to_string(info.param.bias_push) + "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
