// Tests for the Tsigas–Zhang-style baseline, including its two-null
// machinery and the boundary of its documented preemption assumption.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "evq/baselines/tsigas_zhang_queue.hpp"
#include "evq/common/op_stats.hpp"

namespace {

using namespace evq;
using Queue = baselines::TsigasZhangQueue<std::uint64_t>;

std::uint64_t g_items[16];

TEST(TzQueue, BasicFifoAndBounds) {
  Queue q(4);
  auto h = q.handle();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_push(h, &g_items[i]));
  }
  EXPECT_FALSE(q.try_push(h, &g_items[4]));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(q.try_pop(h), &g_items[i]);
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(TzQueue, NullSentinelsAreNotValidPointers) {
  EXPECT_NE(Queue::kNull0, Queue::kNull1);
  EXPECT_NE(Queue::kNull0 % 8, 0u);
  EXPECT_NE(Queue::kNull1 % 8, 0u);
}

TEST(TzQueue, NullGenerationAlternatesAcrossWraps) {
  // Drive the queue through several full generations; every op must keep
  // working, which exercises the null0/null1 alternation at each wrap.
  Queue q(2);
  auto h = q.handle();
  for (std::uint64_t round = 0; round < 1000; ++round) {
    ASSERT_TRUE(q.try_push(h, &g_items[0]));
    ASSERT_TRUE(q.try_push(h, &g_items[1]));
    ASSERT_EQ(q.try_pop(h), &g_items[0]);
    ASSERT_EQ(q.try_pop(h), &g_items[1]);
  }
  EXPECT_EQ(q.head_index(), 2000u);
}

TEST(TzQueue, StaleNullFromOldGenerationIsRejected) {
  // Script the null-ABA defense: an enqueue CAS expecting the CURRENT
  // generation's empty marker must fail against a slot still holding the
  // OTHER null (i.e. a slot the paper's "1st interval" discussion covers).
  Queue q(2);
  auto h = q.handle();
  // After one full generation the slots hold null(0); generation-1 enqueues
  // expect exactly that and succeed:
  ASSERT_TRUE(q.try_push(h, &g_items[0]));
  ASSERT_TRUE(q.try_push(h, &g_items[1]));
  ASSERT_EQ(q.try_pop(h), &g_items[0]);
  ASSERT_EQ(q.try_pop(h), &g_items[1]);
  ASSERT_TRUE(q.try_push(h, &g_items[2]));  // generation 1
  EXPECT_EQ(q.try_pop(h), &g_items[2]);
}

TEST(TzQueue, SingleCasPerSlotUpdate) {
  // The cost edge the algorithm family trades safety for: exactly one
  // narrow CAS on the slot plus one on the index, and nothing else.
  Queue q(8);
  auto h = q.handle();
  stats::OpCounters c;
  {
    stats::ScopedOpRecording rec(c);
    ASSERT_TRUE(q.try_push(h, &g_items[0]));
  }
  EXPECT_EQ(c.cas_attempts, 2u);
  EXPECT_EQ(c.cas_success, 2u);
  EXPECT_EQ(c.faa, 0u);
  EXPECT_EQ(c.wide_cas_attempts, 0u);
  {
    stats::ScopedOpRecording rec(c);
    ASSERT_EQ(q.try_pop(h), &g_items[0]);
  }
  EXPECT_EQ(c.cas_attempts, 2u);
  EXPECT_EQ(c.cas_success, 2u);
}

TEST(TzQueue, UniqueTokenMpmcStressConserves) {
  // With tokens that are never re-enqueued the data-ABA assumption is
  // vacuous and the queue must be fully correct under contention.
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 3000;
  Queue q(64);
  std::vector<std::vector<std::uint64_t>> tokens(kThreads);
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    tokens[t].resize(kPerThread);
    threads.emplace_back([&, t] {
      auto h = q.handle();
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        while (!q.try_push(h, &tokens[t][i])) {
          std::this_thread::yield();
        }
        while (q.try_pop(h) == nullptr) {
          std::this_thread::yield();
        }
        popped.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(popped.load(), kThreads * kPerThread);
  EXPECT_EQ(q.head_index(), q.tail_index());
}

}  // namespace
