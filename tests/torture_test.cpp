// Deterministic fault-injection torture harness.
//
// This binary — and ONLY this binary — is compiled with EVQ_INJECT_ENABLED=1,
// so every EVQ_INJECT_POINT / EVQ_INJECT_SC_FAILS in the queues, the LL/SC
// cells and the reclamation layers is live. Each worker thread installs a
// ProfileInjector seeded from (run seed, thread id); a failing
// (queue, profile) pair therefore reproduces exactly.
//
// Three test groups:
//
//  * TortureMatrix — every registered queue under every registered profile,
//    validated with the stream checkers (conservation + per-producer FIFO).
//    The queues must absorb forced SC failures, yield-burst preemption,
//    a parked consumer holding a live reservation, a producer "killed"
//    between its linearizing slot write and the Tail publication, and
//    starving reclamation.
//
//  * TortureCoverage — structural checks that the matrix really covers what
//    it claims: the runner table must equal the shared kTortureCoveredQueues
//    list (whose other half — "every registry queue is on that list" — lives
//    in the uninjected evq_tests binary; see tests/torture_queues.hpp for why
//    the check is split), and the profile list must match inject profiles.
//
//  * TortureTeeth — proof the harness can catch real bugs: a deliberately
//    weakened queue variant (PlainCasCell: LL/SC "emulated" by a bare
//    unversioned CAS, i.e. Sec. 3's index-ABA defence removed from the slots)
//    must FAIL. A scripted single-victim schedule makes it lose a token
//    deterministically, the same schedule leaves the real PackedLlsc queue
//    correct, and the stochastic sc-storm profile finds the bug on its own.
//
// Note the per-producer token pools are preallocated and never recycled
// within a run: Tsigas-Zhang's published algorithm assumes values are not
// reinserted while a stale reader may hold them (its data-ABA caveat), and
// the matrix tests the algorithms' claims, not their caveats. The teeth
// tests, by contrast, are free to create whatever traffic exposes their prey.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <vector>

#include "evq/baselines/ms_ebr_queue.hpp"
#include "evq/baselines/ms_hp_queue.hpp"
#include "evq/baselines/ms_pool_queue.hpp"
#include "evq/baselines/ms_sim_queue.hpp"
#include "evq/baselines/mutex_queue.hpp"
#include "evq/baselines/shann_queue.hpp"
#include "evq/baselines/tsigas_zhang_queue.hpp"
#include "evq/baselines/unsync_ring.hpp"
#include "evq/common/rng.hpp"
#include "evq/core/cas_array_queue.hpp"
#include "evq/core/combining_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/scq_queue.hpp"
#include "evq/core/segmented_queue.hpp"
#include "evq/core/sharded_queue.hpp"
#include "evq/hazard/hp_domain.hpp"
#include "evq/health/health.hpp"
#include "evq/health/monitor.hpp"
#include "evq/inject/inject.hpp"
#include "evq/inject/profile.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/perf/perf.hpp"
#include "evq/llsc/versioned_llsc.hpp"
#include "evq/telemetry/flight_recorder.hpp"
#include "evq/trace/chrome_trace.hpp"
#include "evq/trace/trace.hpp"
#include "evq/verify/fifo_checkers.hpp"
#include "torture_queues.hpp"

#if !defined(EVQ_INJECT_ENABLED) || !EVQ_INJECT_ENABLED
#error "torture_test.cpp must be compiled with EVQ_INJECT_ENABLED=1"
#endif

namespace evq {
namespace {

using verify::Token;

struct TortureConfig {
  std::size_t producers = 2;
  std::size_t consumers = 2;
  std::uint64_t tokens_per_producer = 400;
  std::size_t capacity = 8;
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
  // A consumer that sees this many consecutive empty polls AFTER all
  // producers finished declares the run wedged (tokens unaccounted for).
  std::uint64_t stuck_poll_limit = 1u << 20;
  std::chrono::milliseconds deadline{60000};
  // On a wedged run, dump the flight recorder's per-thread last-op state to
  // stderr (and to EVQ_FLIGHT_DUMP_PATH or torture_flight_dump.txt for CI
  // artifact upload). Teeth tests that wedge on purpose turn this off.
  bool dump_on_timeout = true;
};

struct TortureOutcome {
  bool timed_out = false;
  std::uint64_t points_hit = 0;
  std::uint64_t sc_failures_forced = 0;
  std::uint64_t delays = 0;
  bool stalled = false;
  verify::CheckResult conservation;
  verify::CheckResult order;

  [[nodiscard]] bool checks_ok() const { return !timed_out && conservation.ok && order.ok; }
};

/// Generic MPMC torture run: cfg.producers push preallocated tokens (stable
/// addresses, never recycled), cfg.consumers pop until every token is
/// accounted for, every thread under its own deterministic ProfileInjector.
template <typename Q>
TortureOutcome run_torture(Q& queue, const inject::Profile& profile, const TortureConfig& cfg) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + cfg.deadline;
  // Keep the flight recorder armed so a wedged run can report what each
  // thread was doing instead of a bare timeout, and record every evq::trace
  // span (1-in-1 sampling — post-mortem fidelity beats overhead here).
  telemetry::set_tracing(true);
  trace::set_sampling(1);

  std::vector<std::vector<Token>> tokens(cfg.producers);
  for (std::size_t p = 0; p < cfg.producers; ++p) {
    tokens[p].resize(cfg.tokens_per_producer);
    for (std::uint64_t s = 0; s < cfg.tokens_per_producer; ++s) {
      tokens[p][s].producer = static_cast<std::uint32_t>(p);
      tokens[p][s].seq = s;
    }
  }

  inject::StallGate gate;
  std::vector<std::unique_ptr<inject::ProfileInjector>> injectors;
  for (std::size_t t = 0; t < cfg.producers + cfg.consumers; ++t) {
    const inject::Role role = t < cfg.producers ? inject::Role::kProducer : inject::Role::kConsumer;
    injectors.push_back(std::make_unique<inject::ProfileInjector>(
        profile, cfg.seed, static_cast<std::uint32_t>(t), role, &gate));
  }

  std::atomic<std::uint64_t> remaining{cfg.producers * cfg.tokens_per_producer};
  std::atomic<std::size_t> producers_active{cfg.producers};
  std::atomic<bool> abort{false};
  std::vector<std::uint64_t> pushed(cfg.producers, 0);
  std::vector<verify::ConsumerLog> logs(cfg.consumers);

  std::vector<std::thread> threads;
  threads.reserve(cfg.producers + cfg.consumers);
  for (std::size_t p = 0; p < cfg.producers; ++p) {
    threads.emplace_back([&, p] {
      inject::ScopedInjector install(*injectors[p]);
      // Layer 4: hardware counters for this worker, attributed to the
      // "torture" key (the run is one queue instance; its registry name is
      // not visible through the template, and one key is enough for the
      // wedge diagnosis). Flushed by the scope destructor before join.
      perf::QueuePerfScope pscope("torture");
      auto h = queue.handle();
      std::uint64_t done = 0;
      for (; done < cfg.tokens_per_producer; ++done) {
        bool ok = false;
        while (!abort.load(std::memory_order_relaxed)) {
          if (queue.try_push(h, &tokens[p][done])) {
            ok = true;
            break;
          }
          std::this_thread::yield();
        }
        if (!ok) {
          break;
        }
      }
      pscope.add_ops(done);
      pushed[p] = done;
      producers_active.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  for (std::size_t c = 0; c < cfg.consumers; ++c) {
    threads.emplace_back([&, c] {
      inject::ScopedInjector install(*injectors[cfg.producers + c]);
      perf::QueuePerfScope pscope("torture");
      auto h = queue.handle();
      std::uint64_t empty_polls = 0;
      while (remaining.load(std::memory_order_acquire) != 0) {
        if (Token* tok = queue.try_pop(h)) {
          logs[c].push_back(*tok);
          pscope.add_ops(1);
          remaining.fetch_sub(1, std::memory_order_acq_rel);
          empty_polls = 0;
        } else {
          if (abort.load(std::memory_order_relaxed)) {
            break;
          }
          if (producers_active.load(std::memory_order_acquire) == 0 &&
              ++empty_polls > cfg.stuck_poll_limit) {
            abort.store(true, std::memory_order_release);  // wedged: tokens lost
            break;
          }
          std::this_thread::yield();
        }
      }
    });
  }

  // The driver releases the run's stall victim once the run is over (a
  // victim whose park blocks completion wakes by itself: the gate's park
  // budget is bounded precisely so a stalled thread cannot deadlock a run).
  // The watchdog also pumps a health Monitor (~every 32ms) so a wedge is
  // declared WITH a diagnosis, not just raw counters. Layer 4 rides along:
  // the workers' perf scopes deposit into the global attribution table, so
  // on counting hosts the diagnosis includes cycles/op and misses/op (and
  // the cache_thrash detector is armed); on perf-denied hosts the scopes are
  // dead and the join is a no-op.
  health::MonitorOptions monitor_options;
  monitor_options.perf = &perf::AttributionTable::global();
  health::Monitor monitor(monitor_options);
  std::uint32_t watchdog_ticks = 0;
  while (remaining.load(std::memory_order_acquire) != 0 &&
         !abort.load(std::memory_order_acquire) && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (++watchdog_ticks % 32 == 0) {
      monitor.poll();
    }
  }
  if (remaining.load(std::memory_order_acquire) != 0) {
    abort.store(true, std::memory_order_release);
  }
  gate.release();
  for (std::thread& t : threads) {
    t.join();
  }

  TortureOutcome out;
  out.timed_out = abort.load(std::memory_order_acquire);
  if (out.timed_out && cfg.dump_on_timeout) {
    telemetry::dump_flight_recorder(std::cerr, /*last_n=*/8);
    const char* env_path = std::getenv("EVQ_FLIGHT_DUMP_PATH");
    const char* fmt = std::getenv("EVQ_FLIGHT_DUMP_FORMAT");
    std::ofstream dump(env_path != nullptr ? env_path : "torture_flight_dump.txt");
    if (dump) {
      if (fmt != nullptr && std::string_view(fmt) == "trace") {
        telemetry::dump_flight_recorder_chrome(dump);
      } else {
        telemetry::dump_flight_recorder(dump, /*last_n=*/32);
      }
    }
    // Health diagnosis: one final poll over the wedged state (workers are
    // joined, so a thread that died mid-op shows a frozen op_seq), dumped to
    // stderr and as a versioned JSON artifact next to the flight record.
    const health::HealthSnapshot diagnosis = monitor.poll();
    std::cerr << "=== evq health diagnosis (" << diagnosis.findings.size()
              << " finding(s)) ===\n";
    for (const health::Finding& f : diagnosis.findings) {
      std::cerr << "  [" << health::finding_type_name(f.type) << "] " << f.subject << ": "
                << f.detail << "\n";
    }
    const char* health_path = std::getenv("EVQ_HEALTH_DUMP_PATH");
    std::ofstream health_dump(health_path != nullptr ? health_path : "torture_health.json");
    if (health_dump) {
      health::health_json(health_dump, diagnosis);
    }
    // Phase-level post-mortem: the evq::trace spans of the wedged run as a
    // Perfetto-loadable Chrome trace, next to the flight record — annotated
    // with the active findings so the diagnosis opens inside Perfetto too.
    const char* trace_path = std::getenv("EVQ_TRACE_DUMP_PATH");
    std::ofstream wedge_trace(trace_path != nullptr ? trace_path : "torture_wedge_trace.json");
    if (wedge_trace) {
      trace::ExportOptions trace_opts;
      for (const health::Finding& f : diagnosis.findings) {
        trace_opts.annotations.push_back(std::string(health::finding_type_name(f.type)) + " " +
                                         f.subject + ": " + f.detail);
      }
      trace::export_chrome_trace(wedge_trace, trace_opts);
    }
  }
  out.conservation = verify::check_conservation(logs, pushed);
  out.order = verify::check_per_producer_order(logs, cfg.producers);
  for (const auto& inj : injectors) {
    out.points_hit += inj->points_hit();
    out.sc_failures_forced += inj->sc_failures_forced();
    out.delays += inj->delays();
    out.stalled = out.stalled || inj->stalled();
  }
  return out;
}

/// Single-threaded run for the non-concurrent baseline (unsync): one thread
/// interleaves pushes and pops under a kMixed injector. No injection points
/// exist in UnsyncRing, so this degenerates to a randomized smoke run — kept
/// so the matrix covers every registry name.
TortureOutcome run_unsync(const inject::Profile& profile, const TortureConfig& cfg) {
  baselines::UnsyncRing<Token> queue(cfg.capacity);
  inject::StallGate gate;
  inject::ProfileInjector injector(profile, cfg.seed, 0, inject::Role::kMixed, &gate);
  inject::ScopedInjector install(injector);

  const std::uint64_t total = cfg.tokens_per_producer;
  std::vector<Token> tokens(total);
  for (std::uint64_t s = 0; s < total; ++s) {
    tokens[s].producer = 0;
    tokens[s].seq = s;
  }

  XorShift64Star rng = XorShift64Star::for_stream(cfg.seed, 1);
  auto h = queue.handle();
  std::vector<verify::ConsumerLog> logs(1);
  std::uint64_t next_push = 0;
  std::uint64_t popped = 0;
  while (popped < total) {
    const bool want_push = next_push < total && (popped == next_push || rng.chance(1, 2));
    if (want_push && queue.try_push(h, &tokens[next_push])) {
      ++next_push;
    } else if (Token* tok = queue.try_pop(h)) {
      logs[0].push_back(*tok);
      ++popped;
    }
  }
  gate.release();

  TortureOutcome out;
  out.conservation = verify::check_conservation(logs, {total});
  out.order = verify::check_single_consumer_gapless(logs[0], 1);
  out.points_hit = injector.points_hit();
  return out;
}

// ---------------------------------------------------------------------------
// Runner table: one entry per registry queue name, mirroring the exact
// template instantiations of src/harness/src/queue_registry.cpp over Token.
// (The torture binary cannot link the registry itself — see the ODR note in
// torture_queues.hpp — so the mirror is kept honest by TortureCoverage tests
// on both sides of the divide.)
// ---------------------------------------------------------------------------

using RunFn = TortureOutcome (*)(const inject::Profile&, const TortureConfig&);

struct RunnerEntry {
  const char* name;
  RunFn run;
};

constexpr RunnerEntry kRunners[] = {
    {"fifo-llsc",
     +[](const inject::Profile& p, const TortureConfig& c) {
       LlscArrayQueue<Token, llsc::PackedLlsc> q(c.capacity);
       return run_torture(q, p, c);
     }},
    {"fifo-llsc-versioned",
     +[](const inject::Profile& p, const TortureConfig& c) {
       LlscArrayQueue<Token, llsc::VersionedLlsc> q(c.capacity);
       return run_torture(q, p, c);
     }},
    {"fifo-simcas",
     +[](const inject::Profile& p, const TortureConfig& c) {
       CasArrayQueue<Token> q(c.capacity);
       return run_torture(q, p, c);
     }},
    {"ms-hp",
     +[](const inject::Profile& p, const TortureConfig& c) {
       baselines::MsHpQueue<Token> q(hazard::ScanMode::kUnsorted, 4);
       return run_torture(q, p, c);
     }},
    {"ms-hp-sorted",
     +[](const inject::Profile& p, const TortureConfig& c) {
       baselines::MsHpQueue<Token> q(hazard::ScanMode::kSorted, 4);
       return run_torture(q, p, c);
     }},
    {"ms-doherty",
     +[](const inject::Profile& p, const TortureConfig& c) {
       baselines::MsSimQueue<Token> q;
       return run_torture(q, p, c);
     }},
    {"shann",
     +[](const inject::Profile& p, const TortureConfig& c) {
       baselines::ShannQueue<Token> q(c.capacity);
       return run_torture(q, p, c);
     }},
    {"ms-pool",
     +[](const inject::Profile& p, const TortureConfig& c) {
       baselines::MsPoolQueue<Token> q;
       return run_torture(q, p, c);
     }},
    {"ms-ebr",
     +[](const inject::Profile& p, const TortureConfig& c) {
       baselines::MsEbrQueue<Token> q;
       return run_torture(q, p, c);
     }},
    {"tsigas-zhang",
     +[](const inject::Profile& p, const TortureConfig& c) {
       baselines::TsigasZhangQueue<Token> q(c.capacity);
       return run_torture(q, p, c);
     }},
    {"mutex",
     +[](const inject::Profile& p, const TortureConfig& c) {
       baselines::MutexQueue<Token> q(c.capacity);
       return run_torture(q, p, c);
     }},
    {"unsync", +[](const inject::Profile& p, const TortureConfig& c) { return run_unsync(p, c); }},
    {"fifo-llsc-backoff",
     +[](const inject::Profile& p, const TortureConfig& c) {
       LlscArrayQueue<Token, llsc::PackedLlsc, ExpBackoff> q(c.capacity);
       return run_torture(q, p, c);
     }},
    {"fifo-simcas-backoff",
     +[](const inject::Profile& p, const TortureConfig& c) {
       CasArrayQueue<Token, ExpBackoff> q(c.capacity);
       return run_torture(q, p, c);
     }},
    // The sharded compositions do not promise per-producer FIFO under MPMC
    // (overflow/steal reorder across shards), so the order check is cleared;
    // conservation and wedge-freedom are still asserted in full.
    {"sharded-llsc",
     +[](const inject::Profile& p, const TortureConfig& c) {
       ShardedQueue<LlscArrayQueue<Token, llsc::PackedLlsc>> q(c.capacity * 4, 4);
       TortureOutcome out = run_torture(q, p, c);
       out.order = {};
       return out;
     }},
    {"sharded-simcas",
     +[](const inject::Profile& p, const TortureConfig& c) {
       ShardedQueue<CasArrayQueue<Token>> q(c.capacity * 4, 4);
       TortureOutcome out = run_torture(q, p, c);
       out.order = {};
       return out;
     }},
    {"scq",
     +[](const inject::Profile& p, const TortureConfig& c) {
       ScqQueue<Token> q(c.capacity);
       return run_torture(q, p, c);
     }},
    {"scq-backoff",
     +[](const inject::Profile& p, const TortureConfig& c) {
       ScqQueue<Token, ExpBackoff> q(c.capacity, "scq-backoff");
       return run_torture(q, p, c);
     }},
    {"sharded-scq",
     +[](const inject::Profile& p, const TortureConfig& c) {
       ShardedQueue<ScqQueue<Token>> q(c.capacity * 4, 4);
       TortureOutcome out = run_torture(q, p, c);
       out.order = {};
       return out;
     }},
    // The segmented compositions are unbounded, so the capacity knob sizes
    // individual SEGMENTS instead — and deliberately small (16 slots), so
    // every run churns through many seal/append/retire transitions with
    // injectors parked at the segment lifecycle points. Per-producer FIFO
    // carries across segments (segments drain in link order, each ring is
    // FIFO), so the order check stays on for the unsharded pair.
    {"seg-cas",
     +[](const inject::Profile& p, const TortureConfig& c) {
       SegmentedQueue<CasArrayQueue<Token>> q(16, "seg-cas");
       return run_torture(q, p, c);
     }},
    {"seg-scq",
     +[](const inject::Profile& p, const TortureConfig& c) {
       SegmentedQueue<ScqQueue<Token>> q(16, "seg-scq");
       return run_torture(q, p, c);
     }},
    {"sharded-seg-scq",
     +[](const inject::Profile& p, const TortureConfig& c) {
       ShardedQueue<SegmentedQueue<ScqQueue<Token>>> q(16 * 4, 4, "sharded-seg-scq");
       TortureOutcome out = run_torture(q, p, c);
       out.order = {};
       return out;
     }},
    // The combining facades stay linearizable FIFO (announced ops linearize
    // at the combiner's batch application), so the order check stays ON —
    // and the injectors now park threads inside the INNER ring while peers
    // wait on announce records, stressing the withdraw/cancel escape path.
    {"comb-cas",
     +[](const inject::Profile& p, const TortureConfig& c) {
       CombiningQueue<CasArrayQueue<Token>> q(c.capacity, "comb-cas");
       return run_torture(q, p, c);
     }},
    {"comb-scq",
     +[](const inject::Profile& p, const TortureConfig& c) {
       CombiningQueue<ScqQueue<Token>> q(c.capacity, "comb-scq");
       return run_torture(q, p, c);
     }},
    {"sharded-comb-scq",
     +[](const inject::Profile& p, const TortureConfig& c) {
       ShardedQueue<CombiningQueue<ScqQueue<Token>>> q(c.capacity * 4, 4, "sharded-comb-scq");
       TortureOutcome out = run_torture(q, p, c);
       out.order = {};
       return out;
     }},
};

const RunnerEntry* find_runner(std::string_view name) {
  for (const RunnerEntry& entry : kRunners) {
    if (name == entry.name) {
      return &entry;
    }
  }
  return nullptr;
}

/// Queues with no injection points: torture degrades to a plain stress run.
bool has_injection_points(std::string_view name) {
  return name != "mutex" && name != "unsync";
}

constexpr const char* kProfileNames[] = {
    "sc-storm",
    "stalled-consumer",
    "reclaim-pressure",
    "kill-mid-enqueue",
};

// ---------------------------------------------------------------------------
// TortureCoverage
// ---------------------------------------------------------------------------

TEST(TortureCoverage, RunnerTableMatchesSharedQueueList) {
  ASSERT_EQ(std::size(kRunners), testing::kTortureCoveredQueueCount);
  for (std::size_t i = 0; i < std::size(kRunners); ++i) {
    EXPECT_STREQ(kRunners[i].name, testing::kTortureCoveredQueues[i]);
  }
}

TEST(TortureCoverage, ProfileListMatchesRegisteredProfiles) {
  const auto& profiles = inject::all_profiles();
  ASSERT_EQ(profiles.size(), std::size(kProfileNames));
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_STREQ(profiles[i].name, kProfileNames[i]);
  }
}

// ---------------------------------------------------------------------------
// TortureMatrix: every queue x every profile
// ---------------------------------------------------------------------------

class TortureMatrix : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(TortureMatrix, StreamChecksHoldUnderProfile) {
  const auto [queue_name, profile_name] = GetParam();
  const RunnerEntry* entry = find_runner(queue_name);
  ASSERT_NE(entry, nullptr) << queue_name;
  const inject::Profile& profile = inject::find_profile(profile_name);

  TortureConfig cfg;
  const TortureOutcome out = entry->run(profile, cfg);

  EXPECT_FALSE(out.timed_out) << queue_name << " wedged under " << profile_name
                              << " (tokens unaccounted for or deadline hit)";
  EXPECT_TRUE(out.conservation.ok) << out.conservation.reason;
  EXPECT_TRUE(out.order.ok) << out.order.reason;
  if (has_injection_points(queue_name)) {
    EXPECT_GT(out.points_hit, 0u) << "profile " << profile_name
                                  << " never reached an injection point in " << queue_name;
  }
}

std::string matrix_test_name(const ::testing::TestParamInfo<TortureMatrix::ParamType>& info) {
  std::string name = std::string(std::get<0>(info.param)) + "_" + std::get<1>(info.param);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllQueuesAllProfiles, TortureMatrix,
                         ::testing::Combine(::testing::ValuesIn(testing::kTortureCoveredQueues),
                                            ::testing::ValuesIn(kProfileNames)),
                         matrix_test_name);

// ---------------------------------------------------------------------------
// TortureTeeth: the harness must catch a deliberately broken queue
// ---------------------------------------------------------------------------

/// The weakened slot cell: LL/SC "emulated" by a bare CAS with NO version —
/// exactly the mistake the paper's Sec. 3 versioning exists to prevent. The
/// injection point inside sc() sits after the caller's index re-validation
/// (Fig. 3 E10) and before the CAS, so a parked thread's stale null-expected
/// CAS can land on a slot the queue has since wrapped and drained.
template <typename T>
class PlainCasCell {
 public:
  using value_type = T;

  class Link {
   public:
    [[nodiscard]] T value() const noexcept { return snap_; }

   private:
    friend class PlainCasCell;
    explicit Link(T snap) noexcept : snap_(snap) {}
    T snap_;
  };

  PlainCasCell() noexcept : word_(T{}) {}

  PlainCasCell(const PlainCasCell&) = delete;
  PlainCasCell& operator=(const PlainCasCell&) = delete;

  [[nodiscard]] Link ll() noexcept { return Link{word_.load(std::memory_order_seq_cst)}; }

  bool sc(Link link, T desired) noexcept {
    EVQ_INJECT_POINT("plaincas.sc.window");  // the unprotected LL -> CAS gap
    T expected = link.snap_;
    return word_.compare_exchange_strong(expected, desired, std::memory_order_seq_cst);
  }

  [[nodiscard]] bool validate(Link link) noexcept {
    return word_.load(std::memory_order_seq_cst) == link.snap_;
  }

  [[nodiscard]] T load() noexcept { return word_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<T> word_;
};

static_assert(llsc::LlscCell<PlainCasCell<Token*>>);

/// Scripted ABA: park a pusher inside PlainCasCell::sc (after E10 passed),
/// wrap and drain the capacity-2 queue under it, then let its stale
/// expected-null CAS land. The push reports success but the token is
/// invisible: Head == Tail says "empty" while the token sits in the slot.
TEST(TortureTeeth, PlainCasLosesTokenUnderScriptedTakeover) {
  LlscArrayQueue<Token, PlainCasCell> q(2);
  inject::StallGate gate(1u << 22);
  const inject::Profile script{"scripted-plaincas-stall",
                               "park one pusher inside the weakened cell's sc",
                               /*sc_fail=*/0, 100, "",
                               /*delay=*/0, 100, 0, "",
                               /*stall=*/"plaincas.sc.window", inject::Role::kAny};

  Token x{0, 0};
  Token y{1, 0};
  Token z{1, 1};
  std::thread victim([&] {
    inject::ProfileInjector injector(script, /*seed=*/1, /*thread_id=*/0,
                                     inject::Role::kProducer, &gate);
    inject::ScopedInjector install(injector);
    auto h = q.handle();
    EXPECT_TRUE(q.try_push(h, &x));  // reports success — but see below
  });
  for (int i = 0; i < 1 << 22 && !gate.parked(); ++i) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(gate.parked()) << "victim never reached plaincas.sc.window";

  auto h = q.handle();
  ASSERT_TRUE(q.try_push(h, &y));
  ASSERT_TRUE(q.try_push(h, &z));
  ASSERT_EQ(q.try_pop(h), &y);
  ASSERT_EQ(q.try_pop(h), &z);
  // Head == Tail == 2 -> the victim's slot (index 0) is null again. Without
  // a version, its stale CAS cannot tell this state from the one it linked.
  gate.release();
  victim.join();

  EXPECT_EQ(q.try_pop(h), nullptr) << "expected the weakened queue to lose the token";
}

/// Control: the identical schedule against the real PackedLlsc cell. The
/// victim parks inside sc() at the same spot (the packed_llsc.sc SC_FAILS
/// site doubles as a stallable point); its stale sc then FAILS on the version
/// bump, the push retries cleanly, and the token comes out.
TEST(TortureTeeth, PackedLlscSurvivesSameSchedule) {
  LlscArrayQueue<Token, llsc::PackedLlsc> q(2);
  inject::StallGate gate(1u << 22);
  const inject::Profile script{"scripted-packed-stall",
                               "park one pusher inside PackedLlsc::sc",
                               /*sc_fail=*/0, 100, "",
                               /*delay=*/0, 100, 0, "",
                               /*stall=*/"packed_llsc.sc", inject::Role::kAny};

  Token x{0, 0};
  Token y{1, 0};
  Token z{1, 1};
  std::thread victim([&] {
    inject::ProfileInjector injector(script, /*seed=*/1, /*thread_id=*/0,
                                     inject::Role::kProducer, &gate);
    inject::ScopedInjector install(injector);
    auto h = q.handle();
    EXPECT_TRUE(q.try_push(h, &x));
  });
  for (int i = 0; i < 1 << 22 && !gate.parked(); ++i) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(gate.parked()) << "victim never reached packed_llsc.sc";

  auto h = q.handle();
  ASSERT_TRUE(q.try_push(h, &y));
  ASSERT_TRUE(q.try_push(h, &z));
  ASSERT_EQ(q.try_pop(h), &y);
  ASSERT_EQ(q.try_pop(h), &z);
  gate.release();
  victim.join();

  EXPECT_EQ(q.try_pop(h), &x) << "the versioned queue must deliver the retried push";
  EXPECT_EQ(q.try_pop(h), nullptr);
}

/// The stochastic requirement: sc-storm (yield bursts inside the unprotected
/// CAS window, SC noise on the index cells) must find the weakened queue's
/// bug on its own within a bounded number of short rounds. Detection shows
/// up as token loss (conservation / wedge) or as a zombie token revived out
/// of order.
TEST(TortureTeeth, PlainCasFailsUnderScStorm) {
  const inject::Profile& storm = inject::find_profile("sc-storm");
  TortureConfig cfg;
  cfg.producers = 2;
  cfg.consumers = 2;
  cfg.tokens_per_producer = 64;
  cfg.capacity = 2;
  cfg.stuck_poll_limit = 20000;
  cfg.deadline = std::chrono::milliseconds(5000);
  cfg.dump_on_timeout = false;  // this test WANTS wedged runs; don't spam dumps

  bool detected = false;
  for (std::uint64_t round = 0; round < 2000 && !detected; ++round) {
    cfg.seed = 0x7053ull + round * 0x9E3779B9ull;
    LlscArrayQueue<Token, PlainCasCell> q(cfg.capacity);
    const TortureOutcome out = run_torture(q, storm, cfg);
    detected = !out.checks_ok();
  }
  EXPECT_TRUE(detected) << "sc-storm failed to expose the version-free CAS queue";
}

}  // namespace
}  // namespace evq
