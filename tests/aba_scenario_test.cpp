// Scripted reconstructions of the three ABA classes of the paper's Sec. 3
// (Fig. 1 index-ABA, the 2-slot data-ABA example, and null-ABA), each in two
// versions:
//   * a NAIVE build of the scenario (wrapping index / plain CAS slots) that
//     demonstrates the failure the paper describes, and
//   * the paper's cure (monotone full-word counters / LL-SC slots), shown to
//     make the delayed thread's final step fail instead of corrupting state.
//
// These tests script each interleaving as straight-line code over the same
// primitives the queues use, which is the only way to make a preemption at
// a specific program point deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "evq/llsc/counter_cell.hpp"
#include "evq/llsc/versioned_llsc.hpp"
#include "evq/registry/registry.hpp"
#include "evq/registry/sim_llsc_cell.hpp"

namespace {

using namespace evq;

int g_items[8];  // A, B, C, D, ... as stable addresses
int* const A = &g_items[0];
int* const B = &g_items[1];
int* const C = &g_items[2];
int* const D = &g_items[3];

// ---------------------------------------------------------------------------
// Index-ABA (Fig. 1): T1 inserts at Tail=0 and stalls before the increment;
// T2/T3 wrap the queue so Tail is 0 again; T1 resumes and increments Tail,
// corrupting it.
// ---------------------------------------------------------------------------

TEST(AbaScenario, Fig1IndexAbaStrikesWrappingIndex) {
  // NAIVE: 2-bit index stored mod 4 (the array size), advanced by CAS.
  constexpr std::uint32_t kSize = 4;
  std::atomic<std::uint32_t> tail{0};

  const std::uint32_t t1 = tail.load();  // T1 reads Tail=0, inserts A, stalls
  // T2 advances Tail for its own insert, then inserts B, C, D (Tail wraps).
  for (int i = 0; i < 4; ++i) {
    std::uint32_t cur = tail.load();
    tail.compare_exchange_strong(cur, (cur + 1) % kSize);
  }
  ASSERT_EQ(tail.load(), 0u) << "scenario setup: Tail wrapped back to 0";
  // T3 dequeues A, B, C (does not move Tail). T1 resumes:
  std::uint32_t expected = t1;
  EXPECT_TRUE(tail.compare_exchange_strong(expected, (t1 + 1) % kSize))
      << "the naive CAS wrongly succeeds — this IS the Fig. 1 bug";
  EXPECT_EQ(tail.load(), 1u) << "next insertion would wrongly target Q[1]";
}

TEST(AbaScenario, Fig1IndexAbaPreventedByMonotoneCounter) {
  // CURE: full-word monotone counter (Sec. 3), slot = counter mod size.
  llsc::CounterCell tail{0};

  const auto t1 = tail.ll();  // T1 reads Tail=0, inserts A, stalls
  for (int i = 0; i < 4; ++i) {
    auto link = tail.ll();
    tail.sc(link, link.value() + 1);  // T2's four advances: 1,2,3,4
  }
  ASSERT_EQ(tail.load() % 4, 0u) << "slot index wrapped to 0 as in Fig. 1";
  EXPECT_FALSE(tail.sc(t1, t1.value() + 1))
      << "monotone counter: the delayed increment must fail (4 != 0)";
  EXPECT_EQ(tail.load(), 4u);
}

// ---------------------------------------------------------------------------
// Data-ABA (Sec. 3's 2-slot example): a dequeuer reads item A, stalls;
// others dequeue A, enqueue B then A again into the same slot; the stalled
// dequeuer's CAS(A -> null) succeeds and removes the WRONG A (the new one,
// which is now behind B in FIFO order).
// ---------------------------------------------------------------------------

TEST(AbaScenario, DataAbaStrikesPlainCasSlot) {
  std::atomic<int*> slot{A};

  int* read = slot.load();  // dequeuer reads A, stalls before removing it
  // Other threads: dequeue A, enqueue B elsewhere, then enqueue A back here.
  slot.store(nullptr);
  slot.store(A);
  int* expected = read;
  EXPECT_TRUE(slot.compare_exchange_strong(expected, nullptr))
      << "plain CAS cannot see the A->null->A history — the data-ABA bug";
}

TEST(AbaScenario, DataAbaPreventedByLlScSlot) {
  llsc::VersionedLlsc<int*> slot{A};

  auto link = slot.ll();  // dequeuer reserves, reads A, stalls
  slot.store(nullptr);    // A dequeued by someone else
  slot.store(A);          // ... and re-enqueued into the same slot
  EXPECT_FALSE(slot.sc(link, nullptr))
      << "SC must fail: the slot was written since the reservation";
  EXPECT_EQ(slot.load(), A) << "the (new) A is still queued, FIFO intact";
}

TEST(AbaScenario, DataAbaPreventedBySimulatedLlScSlot) {
  registry::Registry reg;
  registry::SimLlscCell<int*> slot{A};
  registry::LlscVar* stalled = reg.register_var();
  registry::LlscVar* other = reg.register_var();

  EXPECT_EQ(slot.ll(stalled), A);  // dequeuer reserves+reads A, stalls
  // Another dequeuer takes the reservation over and removes A ...
  EXPECT_EQ(slot.ll(other), A);
  ASSERT_TRUE(slot.sc(other, nullptr));
  // ... and an enqueuer re-inserts A into the same slot.
  registry::LlscVar* other2 = reg.reregister(other);
  EXPECT_EQ(slot.ll(other2), nullptr);
  ASSERT_TRUE(slot.sc(other2, A));
  // The stalled dequeuer resumes: its SC must fail (its tag is long gone).
  EXPECT_FALSE(slot.sc(stalled, nullptr));
  EXPECT_EQ(slot.load(), A);
  reg.deregister(stalled);
  reg.deregister(other2);
}

// ---------------------------------------------------------------------------
// Null-ABA (Sec. 3): an enqueuer reads an empty never-used slot ("3rd
// interval"), stalls; others fill and then drain the array, so the slot is
// now empty-after-removal ("1st interval"); the stalled enqueuer's
// CAS(null -> item) succeeds, inserting BEHIND the logical head.
// ---------------------------------------------------------------------------

TEST(AbaScenario, NullAbaStrikesPlainCasSlot) {
  std::atomic<int*> slot{nullptr};  // never-used empty slot

  int* read = slot.load();  // enqueuer sees empty, stalls before inserting
  slot.store(B);            // another thread enqueues here ...
  slot.store(nullptr);      // ... and a dequeuer drains it (1st interval now)
  int* expected = read;
  EXPECT_TRUE(slot.compare_exchange_strong(expected, C))
      << "plain CAS cannot distinguish the two kinds of empty — null-ABA bug";
}

TEST(AbaScenario, NullAbaPreventedByLlScSlot) {
  llsc::VersionedLlsc<int*> slot;  // empty

  auto link = slot.ll();  // enqueuer reserves the empty slot, stalls
  slot.store(B);          // filled ...
  slot.store(nullptr);    // ... and drained: same bits, different interval
  EXPECT_FALSE(slot.sc(link, C))
      << "SC must fail even though the slot LOOKS identical (null == null)";
}

TEST(AbaScenario, NullAbaPreventedBySimulatedLlScSlot) {
  registry::Registry reg;
  registry::SimLlscCell<int*> slot;  // empty
  registry::LlscVar* stalled = reg.register_var();
  registry::LlscVar* other = reg.register_var();

  EXPECT_EQ(slot.ll(stalled), nullptr);  // enqueuer reserves empty, stalls
  EXPECT_EQ(slot.ll(other), nullptr);    // takeover
  ASSERT_TRUE(slot.sc(other, B));        // fill
  registry::LlscVar* other2 = reg.reregister(other);
  EXPECT_EQ(slot.ll(other2), B);
  ASSERT_TRUE(slot.sc(other2, nullptr));  // drain
  EXPECT_FALSE(slot.sc(stalled, C)) << "stalled enqueuer must not insert into 1st interval";
  reg.deregister(stalled);
  reg.deregister(other2);
}

// ---------------------------------------------------------------------------
// Fig. 4: a dequeuer reads Head=h then stalls; the array wraps so Q[h mod s]
// now holds a NEWER item. The D10 re-check (`h == Head`) is what saves the
// queue. Reconstructed with the actual components: the re-check must expose
// the staleness.
// ---------------------------------------------------------------------------

TEST(AbaScenario, Fig4StaleHeadDetectedByRecheck) {
  llsc::CounterCell head{1};  // snapshot of Fig. 4: Head = h = 1
  llsc::VersionedLlsc<int*> slot1{A};  // Q[1] holds A (oldest)

  const std::uint64_t h = head.load();  // dequeuer reads h = 1, stalls (D5)
  // Interim traffic: A,B dequeued; C,D,E,F enqueued; Head ends at 3 and the
  // wrapped Q[1] now holds F (not the oldest item).
  head.store(3);
  slot1.store(nullptr);
  slot1.store(&g_items[5]);  // "F"
  // Dequeuer resumes at D9/D10:
  auto link = slot1.ll();
  EXPECT_NE(link.value(), A) << "the slot indeed holds a newer item";
  EXPECT_NE(h, head.load()) << "D10: h != Head — dequeuer must restart, not remove F";
}

}  // namespace
