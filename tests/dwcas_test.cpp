// Unit and concurrency tests for the double-width CAS substrate.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "evq/common/dwcas.hpp"

namespace {

using namespace evq;

TEST(DwWord, EqualityComparesBothLanes) {
  EXPECT_EQ((DwWord{1, 2}), (DwWord{1, 2}));
  EXPECT_FALSE((DwWord{1, 2}) == (DwWord{1, 3}));
  EXPECT_FALSE((DwWord{0, 2}) == (DwWord{1, 2}));
}

TEST(AtomicDwWord, LoadReturnsInitialValue) {
  AtomicDwWord cell(DwWord{0xDEAD, 0xBEEF});
  const DwWord v = cell.load();
  EXPECT_EQ(v.lo, 0xDEADu);
  EXPECT_EQ(v.hi, 0xBEEFu);
}

TEST(AtomicDwWord, StoreThenLoadRoundTrips) {
  AtomicDwWord cell;
  cell.store(DwWord{7, 9});
  EXPECT_EQ(cell.load(), (DwWord{7, 9}));
}

TEST(AtomicDwWord, CasSucceedsOnMatch) {
  AtomicDwWord cell(DwWord{1, 1});
  DwWord expected{1, 1};
  EXPECT_TRUE(cell.compare_exchange(expected, DwWord{2, 2}));
  EXPECT_EQ(cell.load(), (DwWord{2, 2}));
}

TEST(AtomicDwWord, CasFailsOnMismatchAndReportsActual) {
  AtomicDwWord cell(DwWord{1, 1});
  DwWord expected{1, 2};  // hi lane differs
  EXPECT_FALSE(cell.compare_exchange(expected, DwWord{9, 9}));
  EXPECT_EQ(expected, (DwWord{1, 1}));  // failure writes back the real value
  EXPECT_EQ(cell.load(), (DwWord{1, 1}));
}

TEST(AtomicDwWord, CasIsSensitiveToEachLaneIndividually) {
  AtomicDwWord cell(DwWord{5, 6});
  DwWord bad_lo{4, 6};
  EXPECT_FALSE(cell.compare_exchange(bad_lo, DwWord{0, 0}));
  DwWord bad_hi{5, 7};
  EXPECT_FALSE(cell.compare_exchange(bad_hi, DwWord{0, 0}));
  DwWord good{5, 6};
  EXPECT_TRUE(cell.compare_exchange(good, DwWord{0, 0}));
}

// The canonical torture test: concurrent increments of BOTH lanes through
// CAS must lose no updates and keep the lanes in lock-step (any tearing or
// lost update breaks lo == hi at the end).
TEST(AtomicDwWord, ConcurrentCasLosesNoUpdates) {
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  AtomicDwWord cell(DwWord{0, 0});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        DwWord cur = cell.load();
        while (!cell.compare_exchange(cur, DwWord{cur.lo + 1, cur.hi + 1})) {
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const DwWord v = cell.load();
  EXPECT_EQ(v.lo, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(v.hi, v.lo);
}

}  // namespace
