// Tests for the benchmark harness: stats, queue registry, workload
// mechanics (capacity rule, run accounting) and CLI parsing.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "evq/harness/any_queue.hpp"
#include "evq/harness/cli.hpp"
#include "evq/harness/queue_registry.hpp"
#include "evq/harness/stats.hpp"
#include "evq/harness/workload.hpp"

namespace {

using namespace evq::harness;

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(Stats, SingleSample) {
  const Summary s = summarize({3.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Stats, KnownDistribution) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.29099, 1e-4);  // sample stddev
}

TEST(Stats, MedianOddCount) {
  EXPECT_DOUBLE_EQ(summarize({5.0, 1.0, 3.0}).median, 3.0);
}

// ---------------------------------------------------------------------------
// Queue registry
// ---------------------------------------------------------------------------

TEST(Registry, ContainsAllFigureSixAlgorithms) {
  for (const char* name : {"fifo-llsc", "fifo-simcas", "ms-hp", "ms-hp-sorted", "ms-doherty",
                           "shann"}) {
    const QueueSpec& spec = find_queue(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.paper_label.empty());
  }
}

TEST(Registry, EveryFactoryProducesAWorkingQueue) {
  for (const QueueSpec& spec : all_queues()) {
    SCOPED_TRACE(spec.name);
    auto queue = spec.make(16);
    ASSERT_NE(queue, nullptr);
    auto handle = queue->handle();
    auto* p = new Payload{7, nullptr};
    ASSERT_TRUE(handle->try_push(p));
    Payload* out = handle->try_pop();
    ASSERT_EQ(out, p);
    EXPECT_EQ(out->value, 7u);
    delete out;
    EXPECT_EQ(handle->try_pop(), nullptr);
  }
}

TEST(Registry, BoundedQueuesRespectCapacity) {
  for (const QueueSpec& spec : all_queues()) {
    if (!spec.bounded) {
      continue;
    }
    SCOPED_TRACE(spec.name);
    auto queue = spec.make(4);
    auto handle = queue->handle();
    std::vector<Payload*> nodes;
    int pushed = 0;
    for (int i = 0; i < 10; ++i) {
      auto* p = new Payload{static_cast<std::uint64_t>(i), nullptr};
      if (handle->try_push(p)) {
        ++pushed;
        nodes.push_back(p);
      } else {
        delete p;
      }
    }
    EXPECT_EQ(pushed, 4) << "capacity-4 queue must accept exactly 4 of 10 pushes";
    for (int i = 0; i < pushed; ++i) {
      delete handle->try_pop();
    }
  }
}

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

TEST(Workload, AutoCapacityRespectsDeadlockBound) {
  WorkloadParams p;
  p.threads = 64;
  p.burst = 5;
  p.capacity = 0;
  EXPECT_GE(effective_capacity(p), 5u * 64u);
  p.threads = 1;
  EXPECT_GE(effective_capacity(p), 256u) << "floor keeps small runs comparable";
}

TEST(Workload, ExplicitCapacityWins) {
  WorkloadParams p;
  p.capacity = 1024;
  EXPECT_EQ(effective_capacity(p), 1024u);
}

TEST(Workload, RunOnceCompletesAndReturnsPositiveTime) {
  const QueueSpec& spec = find_queue("fifo-simcas");
  WorkloadParams p;
  p.threads = 2;
  p.iterations = 200;
  p.runs = 1;
  auto queue = spec.make(effective_capacity(p));
  const double seconds = run_once(*queue, p);
  EXPECT_GT(seconds, 0.0);
  // Queue must be drained: the workload is balanced.
  auto h = queue->handle();
  EXPECT_EQ(h->try_pop(), nullptr);
}

TEST(Workload, RunWorkloadProducesRequestedRunCount) {
  const QueueSpec& spec = find_queue("mutex");
  WorkloadParams p;
  p.threads = 2;
  p.iterations = 100;
  p.runs = 3;
  const std::vector<double> times = run_workload(spec, p);
  EXPECT_EQ(times.size(), 3u);
  for (double t : times) {
    EXPECT_GT(t, 0.0);
  }
}

TEST(Workload, RandomMixedPatternCompletesBalanced) {
  const QueueSpec& spec = find_queue("fifo-simcas");
  WorkloadParams p;
  p.threads = 3;
  p.iterations = 100;
  p.runs = 1;
  p.pattern = WorkloadPattern::kRandomMixed;
  p.push_bias_pct = 70;
  // run_workload asserts the queue drained; completing without the
  // EVQ_CHECK aborting is the balance proof.
  const std::vector<double> times = run_workload(spec, p);
  EXPECT_EQ(times.size(), 1u);
  EXPECT_GT(times[0], 0.0);
}

TEST(Workload, RandomMixedRespectsBiasExtremes) {
  for (unsigned bias : {0u, 100u}) {
    const QueueSpec& spec = find_queue("mutex");
    WorkloadParams p;
    p.threads = 2;
    p.iterations = 50;
    p.runs = 1;
    p.pattern = WorkloadPattern::kRandomMixed;
    p.push_bias_pct = bias;  // degenerate biases must still terminate
    const std::vector<double> times = run_workload(spec, p);
    EXPECT_GT(times[0], 0.0) << "bias=" << bias;
  }
}

TEST(Workload, AllConcurrentQueuesSurviveASmallRun) {
  WorkloadParams p;
  p.threads = 3;
  p.iterations = 50;
  p.runs = 1;
  for (const QueueSpec& spec : all_queues()) {
    if (!spec.concurrent) {
      continue;
    }
    SCOPED_TRACE(spec.name);
    const std::vector<double> times = run_workload(spec, p);
    EXPECT_EQ(times.size(), 1u);
    EXPECT_GT(times[0], 0.0);
  }
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

std::vector<char*> argv_of(std::initializer_list<const char*> args) {
  static std::vector<std::string> storage;
  storage.assign(args.begin(), args.end());
  std::vector<char*> out;
  for (auto& s : storage) {
    out.push_back(s.data());
  }
  return out;
}

TEST(Cli, DefaultsApplyWithoutArguments) {
  auto argv = argv_of({"bench"});
  const CliOptions opts = parse_cli(1, argv.data(), {1, 2, 4}, 1000, 3);
  EXPECT_EQ(opts.thread_counts, (std::vector<unsigned>{1, 2, 4}));
  EXPECT_EQ(opts.workload.iterations, 1000u);
  EXPECT_EQ(opts.workload.runs, 3u);
  EXPECT_FALSE(opts.csv);
}

TEST(Cli, ParsesThreadListAndScalars) {
  auto argv = argv_of({"bench", "--threads", "1,8,32", "--iters", "500", "--runs", "7",
                       "--burst", "3", "--capacity", "128", "--csv"});
  const CliOptions opts = parse_cli(static_cast<int>(argv.size()), argv.data(), {1}, 10, 1);
  EXPECT_EQ(opts.thread_counts, (std::vector<unsigned>{1, 8, 32}));
  EXPECT_EQ(opts.workload.iterations, 500u);
  EXPECT_EQ(opts.workload.runs, 7u);
  EXPECT_EQ(opts.workload.burst, 3u);
  EXPECT_EQ(opts.workload.capacity, 128u);
  EXPECT_TRUE(opts.csv);
}

TEST(Cli, PaperFlagSelectsPaperScale) {
  auto argv = argv_of({"bench", "--paper"});
  const CliOptions opts = parse_cli(static_cast<int>(argv.size()), argv.data(), {1}, 10, 1);
  EXPECT_EQ(opts.workload.iterations, 100000u);
  EXPECT_EQ(opts.workload.runs, 50u);
}

TEST(Cli, MeasurementFlagsParse) {
  auto argv = argv_of({"bench", "--latency-sample", "64", "--stable-cv", "5", "--max-runs",
                       "20", "--op-stats", "--json", "out.json"});
  const CliOptions opts = parse_cli(static_cast<int>(argv.size()), argv.data(), {1}, 10, 1);
  EXPECT_EQ(opts.workload.latency_sample_every, 64u);
  EXPECT_DOUBLE_EQ(opts.workload.stable_cv, 0.05);  // --stable-cv takes a percentage
  EXPECT_EQ(opts.workload.max_runs, 20u);
  EXPECT_TRUE(opts.workload.record_op_stats);
  EXPECT_EQ(opts.json_path, "out.json");
}

TEST(Cli, OverridesRecordOnlyWhatWasSet) {
  auto argv = argv_of({"bench", "--runs", "7"});
  const CliOverrides ov = parse_overrides(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(ov.runs.has_value());
  EXPECT_FALSE(ov.iterations.has_value());
  EXPECT_FALSE(ov.thread_counts.has_value());
  EXPECT_FALSE(ov.op_stats);

  // Applying over two different defaults keeps each scenario's own values.
  CliOptions a;
  a.workload.iterations = 111;
  a.workload.runs = 1;
  ov.apply(a);
  EXPECT_EQ(a.workload.iterations, 111u);
  EXPECT_EQ(a.workload.runs, 7u);

  // Explicit flags beat --paper regardless of argument order.
  auto argv2 = argv_of({"bench", "--iters", "42", "--paper"});
  const CliOptions paper = parse_cli(static_cast<int>(argv2.size()), argv2.data(), {1}, 10, 1);
  EXPECT_EQ(paper.workload.iterations, 42u);
  EXPECT_EQ(paper.workload.runs, 50u);
}

}  // namespace
