// Tests for the LL/SC emulation policies: Fig. 2 semantics (SC succeeds iff
// no write since LL), nesting, independence of reservations across threads,
// spurious-failure injection, and the version-width trade-offs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "evq/llsc/counter_cell.hpp"
#include "evq/llsc/llsc.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/llsc/versioned_llsc.hpp"
#include "evq/llsc/weak_llsc.hpp"

namespace {

using namespace evq;

static_assert(llsc::LlscCell<llsc::VersionedLlsc<int*>>);
static_assert(llsc::LlscCell<llsc::PackedLlsc<int*>>);
static_assert(llsc::LlscCell<llsc::WeakLlsc<llsc::VersionedLlsc<int*>, 10>>);

int g_values[8];  // stable addresses for pointer payloads

// Typed test over both pointer-cell policies.
template <typename Cell>
class LlscPolicyTest : public ::testing::Test {};

using PointerCells = ::testing::Types<llsc::VersionedLlsc<int*>, llsc::PackedLlsc<int*>,
                                      llsc::WeakLlsc<llsc::VersionedLlsc<int*>, 0>>;
TYPED_TEST_SUITE(LlscPolicyTest, PointerCells);

TYPED_TEST(LlscPolicyTest, DefaultConstructedHoldsNull) {
  TypeParam cell;
  EXPECT_EQ(cell.load(), nullptr);
}

TYPED_TEST(LlscPolicyTest, InitialValueIsVisible) {
  TypeParam cell(&g_values[0]);
  EXPECT_EQ(cell.load(), &g_values[0]);
  EXPECT_EQ(cell.ll().value(), &g_values[0]);
}

TYPED_TEST(LlscPolicyTest, ScSucceedsWithoutInterference) {
  TypeParam cell(&g_values[0]);
  auto link = cell.ll();
  EXPECT_TRUE(cell.sc(link, &g_values[1]));
  EXPECT_EQ(cell.load(), &g_values[1]);
}

TYPED_TEST(LlscPolicyTest, ScFailsAfterInterveningStore) {
  TypeParam cell(&g_values[0]);
  auto link = cell.ll();
  cell.store(&g_values[2]);  // interference
  EXPECT_FALSE(cell.sc(link, &g_values[1]));
  EXPECT_EQ(cell.load(), &g_values[2]);
}

TYPED_TEST(LlscPolicyTest, ScFailsAfterAbaPattern) {
  // The whole point versus plain CAS: A -> B -> A still fails the SC.
  TypeParam cell(&g_values[0]);
  auto link = cell.ll();
  cell.store(&g_values[1]);
  cell.store(&g_values[0]);  // back to the linked value
  EXPECT_FALSE(cell.sc(link, &g_values[3]));
}

TYPED_TEST(LlscPolicyTest, ScConsumesTheLink) {
  TypeParam cell(&g_values[0]);
  auto link = cell.ll();
  EXPECT_TRUE(cell.sc(link, &g_values[1]));
  // Reusing the stale link must fail: a successful SC is a write.
  EXPECT_FALSE(cell.sc(link, &g_values[2]));
}

TYPED_TEST(LlscPolicyTest, ValidateTracksInterference) {
  TypeParam cell(&g_values[0]);
  auto link = cell.ll();
  EXPECT_TRUE(cell.validate(link));
  cell.store(&g_values[1]);
  EXPECT_FALSE(cell.validate(link));
}

TYPED_TEST(LlscPolicyTest, NestedReservationsAreIndependent) {
  // Algorithm 1 nests LL(Tail) inside an open LL(slot); the emulation must
  // keep per-link state, not per-thread state.
  TypeParam a(&g_values[0]);
  TypeParam b(&g_values[1]);
  auto la = a.ll();
  auto lb = b.ll();
  EXPECT_TRUE(b.sc(lb, &g_values[2]));  // inner pair completes first
  EXPECT_TRUE(a.sc(la, &g_values[3]));  // outer still valid
  EXPECT_EQ(a.load(), &g_values[3]);
  EXPECT_EQ(b.load(), &g_values[2]);
}

TYPED_TEST(LlscPolicyTest, ConcurrentScWinnersAreExclusive) {
  // N threads LL the same cell, then all try SC: exactly one SC per round
  // may succeed.
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  TypeParam cell(&g_values[0]);
  std::atomic<int> successes{0};
  std::atomic<int> round_gate{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        // crude round alignment: spin until all threads reach round r
        round_gate.fetch_add(1);
        while (round_gate.load() < (r + 1) * kThreads) {
        }
        auto link = cell.ll();
        if (cell.sc(link, &g_values[t % 8])) {
          successes.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // At least one success per round is not guaranteed per-round by this
  // crude alignment, but successes can never exceed rounds x 1 winner ...
  // they CAN be fewer (a slow thread SCs after the next round's winner).
  // The hard invariant testable here: successes <= kRounds * kThreads and
  // > 0; exclusivity is covered deterministically by ScConsumesTheLink and
  // ScFailsAfterInterveningStore.
  EXPECT_GT(successes.load(), 0);
}

// ---------------------------------------------------------------------------
// Policy-specific behaviour
// ---------------------------------------------------------------------------

TEST(VersionedLlsc, VersionAdvancesOnEveryWrite) {
  llsc::VersionedLlsc<int*> cell(&g_values[0]);
  EXPECT_EQ(cell.version(), 0u);
  auto link = cell.ll();
  ASSERT_TRUE(cell.sc(link, &g_values[1]));
  EXPECT_EQ(cell.version(), 1u);
  cell.store(&g_values[2]);
  EXPECT_EQ(cell.version(), 2u);
}

TEST(VersionedLlsc, WorksWithIntegerPayload) {
  llsc::VersionedLlsc<std::uint64_t> cell(5);
  auto link = cell.ll();
  EXPECT_EQ(link.value(), 5u);
  EXPECT_TRUE(cell.sc(link, 6));
  EXPECT_EQ(cell.load(), 6u);
}

TEST(PackedLlsc, VersionWrapsAfter65536Writes) {
  llsc::PackedLlsc<int*> cell(&g_values[0]);
  for (int i = 0; i < 65536; ++i) {
    cell.store(&g_values[i % 2]);
  }
  EXPECT_EQ(cell.version(), 0u);  // wrapped exactly
  // ... and a reservation spanning exactly 2^16 writes that lands back on
  // the SAME pointer is the documented false-positive window:
  auto link = cell.ll();  // links {g_values[1], version 0}
  for (int i = 0; i < 65536; ++i) {
    cell.store(&g_values[1]);  // same value: only the version moves (and wraps)
  }
  EXPECT_EQ(cell.load(), &g_values[1]);
  EXPECT_TRUE(cell.sc(link, &g_values[2]))
      << "2^16-write wrap onto the same value is expected to slip past the "
         "16-bit version (the documented PackedLlsc trade-off)";
  // One write short of the wrap is still caught:
  auto link2 = cell.ll();
  for (int i = 0; i < 65535; ++i) {
    cell.store(&g_values[2]);
  }
  EXPECT_FALSE(cell.sc(link2, &g_values[3]));
}

TEST(WeakLlsc, ZeroRateNeverFailsSpuriously) {
  llsc::WeakLlsc<llsc::VersionedLlsc<int*>, 0> cell(&g_values[0]);
  for (int i = 0; i < 1000; ++i) {
    auto link = cell.ll();
    EXPECT_TRUE(cell.sc(link, &g_values[i % 4]));
  }
}

TEST(WeakLlsc, InjectsRoughlyTheConfiguredFailureRate) {
  llsc::WeakLlsc<llsc::VersionedLlsc<int*>, 25> cell(&g_values[0]);
  int failures = 0;
  constexpr int kIters = 20000;
  for (int i = 0; i < kIters; ++i) {
    auto link = cell.ll();
    if (!cell.sc(link, &g_values[i % 4])) {
      ++failures;
    }
  }
  EXPECT_GT(failures, kIters / 8);      // ~25% nominal
  EXPECT_LT(failures, kIters * 3 / 8);
}

TEST(WeakLlsc, SpuriousFailureWritesNothing) {
  llsc::WeakLlsc<llsc::VersionedLlsc<int*>, 50> cell(&g_values[0]);
  for (int i = 0; i < 200; ++i) {
    auto link = cell.ll();
    if (!cell.sc(link, &g_values[1])) {
      EXPECT_EQ(cell.load(), &g_values[0]);  // still the old value
    } else {
      cell.store(&g_values[0]);  // reset for the next round
    }
  }
}

TEST(WeakLlsc, RetryLoopAlwaysEventuallySucceeds) {
  llsc::WeakLlsc<llsc::VersionedLlsc<int*>, 50> cell(&g_values[0]);
  for (int i = 0; i < 100; ++i) {
    for (;;) {
      auto link = cell.ll();
      if (cell.sc(link, &g_values[i % 8])) {
        break;
      }
    }
    EXPECT_EQ(cell.load(), &g_values[i % 8]);
  }
}

// ---------------------------------------------------------------------------
// CounterCell
// ---------------------------------------------------------------------------

TEST(CounterCell, LlScIncrement) {
  llsc::CounterCell c(10);
  auto link = c.ll();
  EXPECT_EQ(link.value(), 10u);
  EXPECT_TRUE(c.sc(link, 11));
  EXPECT_EQ(c.load(), 11u);
}

TEST(CounterCell, ScFailsIfCounterMoved) {
  llsc::CounterCell c(0);
  auto link = c.ll();
  c.store(1);
  EXPECT_FALSE(c.sc(link, 1));
}

TEST(CounterCell, ValidateMatchesCurrentValue) {
  llsc::CounterCell c(3);
  auto link = c.ll();
  EXPECT_TRUE(c.validate(link));
  c.store(4);
  EXPECT_FALSE(c.validate(link));
}

TEST(CounterCell, ConcurrentIncrementsNeverSkip) {
  // Helping discipline of the queues: many threads all try to advance the
  // counter by exactly one; the counter must never jump.
  constexpr int kThreads = 4;
  constexpr std::uint64_t kTarget = 20000;
  llsc::CounterCell c(0);
  std::vector<std::thread> threads;
  std::atomic<bool> skipped{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        auto link = c.ll();
        const std::uint64_t v = link.value();
        if (v >= kTarget) {
          return;
        }
        if (c.sc(link, v + 1) && c.load() > kTarget) {
          skipped.store(true);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(skipped.load());
  EXPECT_EQ(c.load(), kTarget);
}

}  // namespace
