// Tests for the evq::telemetry subsystem: counter taxonomy and snapshot
// arithmetic, the cacheline-striped QueueMetrics under concurrent writers
// (exact totals, race-free under TSan), registry acquire/release sharing and
// per-instance depth gauges, the Prometheus exporter (text format pinned by
// tests/golden/telemetry_prometheus_v1.txt — regenerate with
// EVQ_REGEN_GOLDEN=1), the flight recorder, and end-to-end instrumentation
// of the ring engine and the sharded facade.
//
// Counter-value assertions are guarded by EVQ_TELEMETRY: a -DEVQ_TELEMETRY=0
// build compiles every API but inc() is a no-op, so those builds assert
// zeros/emptiness instead.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/scq_queue.hpp"
#include "evq/core/segmented_queue.hpp"
#include "evq/core/sharded_queue.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/telemetry/flight_recorder.hpp"
#include "evq/telemetry/metrics.hpp"
#include "evq/telemetry/prometheus.hpp"
#include "evq/telemetry/registry.hpp"

namespace {

using namespace evq::telemetry;

// ---------------------------------------------------------------------------
// Counters and snapshots
// ---------------------------------------------------------------------------

TEST(TelemetryCounters, NamesAreStableAndDistinct) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    names.emplace_back(counter_name(static_cast<Counter>(i)));
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    EXPECT_NE(names[i], "unknown");
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
  EXPECT_EQ(names[0], "push_ok");  // exporter `op` labels are API
  EXPECT_EQ(names[kCounterCount - 1], "comb_batch_n");
  // The SCQ-generation pair, the segmented-lifecycle triple, and the
  // combining triple sit at the tail of the taxonomy; these labels are
  // exporter API just like the op labels above.
  EXPECT_EQ(names[static_cast<std::size_t>(Counter::kFaaReserve)], "faa_reserve");
  EXPECT_EQ(names[static_cast<std::size_t>(Counter::kSlotSkip)], "slot_skip");
  EXPECT_EQ(names[static_cast<std::size_t>(Counter::kSegSeal)], "seg_seal");
  EXPECT_EQ(names[static_cast<std::size_t>(Counter::kSegAlloc)], "seg_alloc");
  EXPECT_EQ(names[static_cast<std::size_t>(Counter::kSegRetire)], "seg_retire");
  EXPECT_EQ(names[static_cast<std::size_t>(Counter::kCombSubmit)], "comb_submit");
  EXPECT_EQ(names[static_cast<std::size_t>(Counter::kCombCombine)], "comb_combine");
  EXPECT_EQ(names[static_cast<std::size_t>(Counter::kCombBatchN)], "comb_batch_n");
}

TEST(TelemetryCounters, SnapshotArithmetic) {
  CounterSnapshot a;
  EXPECT_FALSE(a.any());
  a[Counter::kPushOk] = 10;
  a[Counter::kPopEmpty] = 3;
  EXPECT_TRUE(a.any());
  EXPECT_EQ(a[Counter::kPushOk], 10u);

  CounterSnapshot b;
  b[Counter::kPushOk] = 5;
  b[Counter::kHpScan] = 2;
  a += b;
  EXPECT_EQ(a[Counter::kPushOk], 15u);
  EXPECT_EQ(a[Counter::kHpScan], 2u);
  EXPECT_EQ(a[Counter::kPopEmpty], 3u);
}

TEST(TelemetryCounters, DeltaIsMonotoneAndUnderflowSafe) {
  CounterSnapshot before;
  before[Counter::kPushOk] = 100;
  before[Counter::kPopOk] = 50;
  CounterSnapshot after;
  after[Counter::kPushOk] = 160;
  after[Counter::kPopOk] = 20;  // mismatched pair: must clamp, not wrap

  const CounterSnapshot d = counter_delta(before, after);
  EXPECT_EQ(d[Counter::kPushOk], 60u);
  EXPECT_EQ(d[Counter::kPopOk], 0u);
  EXPECT_EQ(d[Counter::kPushFull], 0u);
}

// ---------------------------------------------------------------------------
// QueueMetrics under concurrency
// ---------------------------------------------------------------------------

TEST(QueueMetrics, ConcurrentIncrementsSumExactly) {
  QueueMetrics m;
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;

  std::atomic<bool> stop{false};
  // A racing reader: snapshots must be race-free against live writers (TSan
  // proves it); exactness is only asserted after the join below.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)m.snapshot();
    }
  });
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&m] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        m.inc(Counter::kPushOk);
      }
      m.inc(Counter::kHpFreed, 7);
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

#if EVQ_TELEMETRY
  EXPECT_EQ(m.value(Counter::kPushOk), kThreads * kPerThread);
  EXPECT_EQ(m.value(Counter::kHpFreed), kThreads * 7u);
  const CounterSnapshot snap = m.snapshot();
  EXPECT_EQ(snap[Counter::kPushOk], kThreads * kPerThread);
#else
  EXPECT_EQ(m.value(Counter::kPushOk), 0u) << "EVQ_TELEMETRY=0 must compile inc() out";
#endif
  EXPECT_EQ(m.value(Counter::kEpochAdvance), 0u);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(TelemetryRegistry, SameNameSharesEntryAndIdsFollowRegistrationOrder) {
  Registry reg;
  Registry::Entry* a1 = reg.acquire("queue-a");
  Registry::Entry* b = reg.acquire("queue-b");
  Registry::Entry* a2 = reg.acquire("queue-a");
  EXPECT_EQ(a1, a2) << "same-name live instances must share one entry";
  EXPECT_NE(a1, b);
  EXPECT_EQ(a1->id, 0u);
  EXPECT_EQ(b->id, 1u);
  EXPECT_EQ(a1->live, 2u);
  EXPECT_EQ(reg.size(), 2u);

  reg.release(a2);
  EXPECT_EQ(a1->live, 1u);
  reg.release(a1);
  reg.release(b);
  // Entries are never deleted (Prometheus monotonicity): still findable.
  EXPECT_NE(reg.find("queue-a"), nullptr);
  EXPECT_EQ(reg.find("queue-a")->live, 0u);
  EXPECT_EQ(reg.find("no-such"), nullptr);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(TelemetryRegistry, DepthGaugesArePerInstanceAndClearedOnDestruction) {
  Registry reg;
  {
    ScopedQueueMetrics q1("gauged", &reg);
    q1.set_depth_gauge([] { return std::uint64_t{7}; });
    {
      ScopedQueueMetrics q2("gauged", &reg);
      q2.set_depth_gauge([] { return std::uint64_t{5}; });
      reg.for_each([](const Registry::Entry& e, std::size_t gauges, std::uint64_t depth) {
        EXPECT_EQ(e.name, "gauged");
        EXPECT_EQ(gauges, 2u);
        EXPECT_EQ(depth, 12u) << "depth must sum the live instances' gauges";
      });
    }
    reg.for_each([](const Registry::Entry&, std::size_t gauges, std::uint64_t depth) {
      EXPECT_EQ(gauges, 1u) << "destroyed instance must remove its gauge";
      EXPECT_EQ(depth, 7u);
    });
  }
  reg.for_each([](const Registry::Entry& e, std::size_t gauges, std::uint64_t) {
    EXPECT_EQ(gauges, 0u);
    EXPECT_EQ(e.live, 0u);
  });
}

// ---------------------------------------------------------------------------
// Exporter: snapshots, deltas, Prometheus text format
// ---------------------------------------------------------------------------

TEST(TelemetryExporter, SnapshotDeltaHandlesNewQueues) {
  RegistrySnapshot before;
  QueueCounters old_q;
  old_q.queue = "seen";
  old_q.counters[Counter::kPushOk] = 10;
  before.queues.push_back(old_q);

  RegistrySnapshot after;
  QueueCounters now_q;
  now_q.queue = "seen";
  now_q.counters[Counter::kPushOk] = 25;
  now_q.has_depth = true;
  now_q.depth = 4;
  after.queues.push_back(now_q);
  QueueCounters fresh;
  fresh.queue = "fresh";
  fresh.counters[Counter::kPopOk] = 9;
  after.queues.push_back(fresh);

  const RegistrySnapshot d = snapshot_delta(before, after);
  ASSERT_EQ(d.queues.size(), 2u);
  const QueueCounters* seen = d.find("seen");
  ASSERT_NE(seen, nullptr);
  EXPECT_EQ(seen->counters[Counter::kPushOk], 15u);
  EXPECT_TRUE(seen->has_depth);
  EXPECT_EQ(seen->depth, 4u) << "depth carries from `after` (gauges have no delta)";
  const QueueCounters* f = d.find("fresh");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->counters[Counter::kPopOk], 9u) << "mid-interval queues contribute full counts";
}

TEST(TelemetryExporter, EscapeLabelValueHandlesAllThreeSpecials) {
  // Prometheus text format requires exactly three escapes inside a label
  // value: backslash, double quote, newline. Everything else passes through.
  EXPECT_EQ(escape_label_value("plain/name-0"), "plain/name-0");
  EXPECT_EQ(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(escape_label_value(""), "");
  EXPECT_EQ(escape_label_value("\\\\"), "\\\\\\\\");
}

TEST(TelemetryExporter, GoldenFilePinsPrometheusTextFormat) {
#if !EVQ_TELEMETRY
  GTEST_SKIP() << "counter values compiled out with EVQ_TELEMETRY=0";
#else
  // A private registry keeps the rendering independent of every other test
  // in this binary (the global registry accumulates across the process).
  Registry reg;
  ScopedQueueMetrics alpha("alpha", &reg);
  ScopedQueueMetrics beta("beta", &reg);
  alpha.inc(Counter::kPushOk, 3);
  alpha.inc(Counter::kPopOk, 2);
  alpha.inc(Counter::kSlotScFail);
  alpha.set_depth_gauge([] { return std::uint64_t{1}; });
  beta.inc(Counter::kPushFull, 4);
  // A hostile name: every character class the escaper must handle ends up
  // byte-exact in the golden file.
  ScopedQueueMetrics weird("weird\"\\\nq", &reg);
  weird.inc(Counter::kPopEmpty, 1);

  std::ostringstream os;
  render_prometheus(os, reg);
  const std::string doc = os.str();

  const std::string golden_path =
      std::string(EVQ_TEST_GOLDEN_DIR) + "/telemetry_prometheus_v1.txt";
  if (std::getenv("EVQ_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << golden_path;
    out << doc;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream golden(golden_path);
  ASSERT_TRUE(golden.good()) << "missing golden file; see this test's header comment";
  std::stringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(doc, want.str())
      << "Prometheus text format drifted. If intentional, regenerate with "
         "EVQ_REGEN_GOLDEN=1 and mention the change in DESIGN.md Observability.";
#endif
}

TEST(TelemetryRegistry, EntryChurnRacesWithSnapshotsSafely) {
  // TSan teeth for registration/teardown: two threads create and destroy
  // same-named ScopedQueueMetrics handles (shared entry refcount churn, gauge
  // attach/detach) while the main thread snapshots and renders the global
  // registry. No assertions beyond well-formed output — the point is that
  // snapshotting never races entry lifetime.
  std::atomic<bool> stop{false};
  std::thread churn_a([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ScopedQueueMetrics m("tmtest-churn-a");
      m.inc(Counter::kPushOk);
    }
  });
  std::thread churn_b([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ScopedQueueMetrics m("tmtest-churn-b");
      m.set_depth_gauge([] { return std::uint64_t{1}; });
      m.inc(Counter::kPopEmpty);
    }
  });
  for (int i = 0; i < 200; ++i) {
    const RegistrySnapshot snap = snapshot_registry();
    EXPECT_LE(snap.queues.size(), 4096u);  // sanity: bounded, well-formed
    std::ostringstream os;
    render_prometheus(os);
    EXPECT_NE(os.str().find("# TYPE"), std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  churn_a.join();
  churn_b.join();
}

TEST(TelemetryExporter, RenderRacesWithWritersSafely) {
  // TSan teeth: scrape the GLOBAL registry while a named queue hammers its
  // counters. No assertion beyond well-formed output — the point is the race.
  evq::LlscArrayQueue<int, evq::llsc::PackedLlsc> q(8, "tmtest-render-race");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    auto h = q.handle();
    int v = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      if (q.try_push(h, &v)) {
        (void)q.try_pop(h);
      }
    }
  });
  for (int i = 0; i < 50; ++i) {
    std::ostringstream os;
    render_prometheus(os);
    EXPECT_NE(os.str().find("evq_queue_ops_total"), std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorder, RecordsLastOpsAndDumps) {
  set_tracing(true);
  record_trace(1, TraceOp::kPushOk, 5, 0);
  record_trace(1, TraceOp::kPopEmpty, 6, 2);
  set_tracing(false);

#if EVQ_TELEMETRY
  ASSERT_NE(detail::t_trace, nullptr) << "record_trace must attach a ring";
  const std::uint32_t my_ord = detail::t_trace->owner_ordinal();
  bool found = false;
  for (const LastOpState& s : last_ops_per_thread()) {
    if (s.thread_ord == my_ord) {
      found = true;
      EXPECT_TRUE(s.thread_live);
      EXPECT_GE(s.total_records, 2u);
      EXPECT_EQ(s.op, TraceOp::kPopEmpty) << "last op wins";
      EXPECT_EQ(s.index, 6u);
      EXPECT_EQ(s.retries, 2u);
    }
  }
  EXPECT_TRUE(found);

  std::ostringstream os;
  dump_flight_recorder(os, 4);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("evq flight recorder"), std::string::npos);
  EXPECT_NE(dump.find("last op per thread"), std::string::npos);
  EXPECT_NE(dump.find("op=pop_empty"), std::string::npos);
#endif
}

TEST(FlightRecorder, DisabledTracingRecordsNothing) {
  set_tracing(false);
  const std::size_t before = last_ops_per_thread().size();
  std::thread t([] {
    record_trace(0, TraceOp::kPushOk, 0, 0);  // flag off: must not attach
  });
  t.join();
  EXPECT_EQ(last_ops_per_thread().size(), before);
}

TEST(FlightRecorder, RingWrapKeepsMostRecentRecords) {
#if !EVQ_TELEMETRY
  GTEST_SKIP() << "tracing compiled out with EVQ_TELEMETRY=0";
#else
  set_tracing(true);
  for (std::uint64_t i = 0; i < ThreadTrace::kRecords + 17; ++i) {
    record_trace(2, TraceOp::kPushOk, i, 0);
  }
  set_tracing(false);
  ASSERT_NE(detail::t_trace, nullptr);
  const ThreadTrace& trace = *detail::t_trace;
  const std::uint64_t total = trace.total_records();
  EXPECT_GE(total, ThreadTrace::kRecords + 17);
  // The latest logical record is intact; its slot holds the newest write.
  const ThreadTrace::Record& last = trace.record_at(total - 1);
  EXPECT_EQ(last.index.load(std::memory_order_relaxed), ThreadTrace::kRecords + 16);
#endif
}

TEST(FlightRecorder, OpSeqIsMonotoneAcrossRingWraparound) {
#if !EVQ_TELEMETRY
  GTEST_SKIP() << "tracing compiled out with EVQ_TELEMETRY=0";
#else
  // The health stall detector compares successive op_seq reads, so the
  // counter must keep climbing even while the record ring wraps and
  // overwrites slots.
  set_tracing(true);
  record_trace(3, TraceOp::kPushOk, 0, 0);
  ASSERT_NE(detail::t_trace, nullptr);
  const ThreadTrace& trace = *detail::t_trace;
  const std::uint64_t seq_before = trace.op_seq();
  constexpr std::uint64_t kOps = ThreadTrace::kRecords * 2 + 5;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    record_trace(3, TraceOp::kPopOk, i, 0);
  }
  set_tracing(false);
  EXPECT_EQ(trace.op_seq(), seq_before + kOps) << "one tick per recorded op";
  const std::uint64_t total = trace.total_records();
  // Post-wrap slots carry coherent, strictly increasing op_seq stamps.
  const std::uint64_t last_seq =
      trace.record_at(total - 1).op_seq.load(std::memory_order_relaxed);
  const std::uint64_t prev_seq =
      trace.record_at(total - 2).op_seq.load(std::memory_order_relaxed);
  EXPECT_EQ(last_seq, seq_before + kOps);
  EXPECT_EQ(prev_seq + 1, last_seq);
#endif
}

TEST(FlightRecorder, OpSeqResetsWhenRingChangesOwner) {
#if !EVQ_TELEMETRY
  GTEST_SKIP() << "tracing compiled out with EVQ_TELEMETRY=0";
#else
  // Rings are recycled across threads via assign_owner(), which must zero
  // op_seq — otherwise the health monitor would inherit the previous owner's
  // count as the new thread's baseline. Whether the second thread reuses the
  // first thread's ring (free-list hit) or attaches a fresh one, its first
  // record must observe op_seq == 1.
  set_tracing(true);
  std::thread first([] {
    for (int i = 0; i < 7; ++i) {
      record_trace(4, TraceOp::kPushOk, 0, 0);
    }
    ASSERT_NE(detail::t_trace, nullptr);
    EXPECT_GE(detail::t_trace->op_seq(), 7u);
  });
  first.join();
  std::thread second([] {
    record_trace(4, TraceOp::kPopOk, 0, 0);
    ASSERT_NE(detail::t_trace, nullptr);
    EXPECT_EQ(detail::t_trace->op_seq(), 1u)
        << "recycled ring must not inherit the dead owner's op count";
  });
  second.join();
  set_tracing(false);
#endif
}

// ---------------------------------------------------------------------------
// End-to-end: instrumented queues feed the registry
// ---------------------------------------------------------------------------

TEST(TelemetryEndToEnd, RingQueueCountsOpsAndExportsDepth) {
  int a = 1;
  int b = 2;
  {
    evq::LlscArrayQueue<int, evq::llsc::PackedLlsc> q(4, "tmtest-ring");
    auto h = q.handle();
    ASSERT_TRUE(q.try_push(h, &a));
    ASSERT_TRUE(q.try_push(h, &b));

    const RegistrySnapshot live = snapshot_registry();
    const QueueCounters* qc = live.find("tmtest-ring");
    ASSERT_NE(qc, nullptr);
    EXPECT_TRUE(qc->has_depth);
#if EVQ_TELEMETRY
    EXPECT_EQ(qc->counters[Counter::kPushOk], 2u);
    EXPECT_EQ(qc->depth, 2u) << "depth gauge must report the live occupancy";
#endif
    EXPECT_EQ(q.try_pop(h), &a);
    EXPECT_EQ(q.try_pop(h), &b);
    EXPECT_EQ(q.try_pop(h), nullptr);
#if EVQ_TELEMETRY
    EXPECT_EQ(q.metrics().value(Counter::kPopOk), 2u);
    EXPECT_EQ(q.metrics().value(Counter::kPopEmpty), 1u);
#endif
  }
  // Destruction removes the gauge but the entry (a monotone counter series)
  // survives for the process lifetime.
  const RegistrySnapshot after = snapshot_registry();
  const QueueCounters* qc = after.find("tmtest-ring");
  ASSERT_NE(qc, nullptr);
  EXPECT_FALSE(qc->has_depth);
}

TEST(TelemetryEndToEnd, ScqQueueCountsFaaReservesAndSlotSkips) {
  int a = 1;
  int b = 2;
  {
    evq::ScqQueue<int> q(4, "tmtest-scq");
    auto h = q.handle();
    ASSERT_TRUE(q.try_push(h, &a));
    ASSERT_TRUE(q.try_push(h, &b));

    const RegistrySnapshot live = snapshot_registry();
    const QueueCounters* qc = live.find("tmtest-scq");
    ASSERT_NE(qc, nullptr);
    EXPECT_TRUE(qc->has_depth);
#if EVQ_TELEMETRY
    EXPECT_EQ(qc->counters[Counter::kPushOk], 2u);
    // Every push claims at least two FAA tickets (one on the free ring, one
    // on the allocated ring): the FAA-generation counter must already show
    // activity where a CAS-generation queue would report index CASes.
    EXPECT_GE(qc->counters[Counter::kFaaReserve], 4u);
    EXPECT_EQ(qc->depth, 2u);
#endif
    EXPECT_EQ(q.try_pop(h), &a);
    EXPECT_EQ(q.try_pop(h), &b);
    // A pop against the drained queue walks the empty-probe path: one more
    // FAA ticket plus a cycle-bump skip CAS on the allocated ring.
    EXPECT_EQ(q.try_pop(h), nullptr);
#if EVQ_TELEMETRY
    EXPECT_EQ(q.metrics().value(Counter::kPopOk), 2u);
    EXPECT_EQ(q.metrics().value(Counter::kPopEmpty), 1u);
    EXPECT_GE(q.metrics().value(Counter::kSlotSkip), 1u);
    EXPECT_GE(q.metrics().value(Counter::kFaaReserve), 7u);
#endif
  }
  const RegistrySnapshot after = snapshot_registry();
  const QueueCounters* qc = after.find("tmtest-scq");
  ASSERT_NE(qc, nullptr);
  EXPECT_FALSE(qc->has_depth);
}

TEST(TelemetryEndToEnd, ShardedFacadeAggregatesShardCounters) {
  constexpr std::size_t kTokens = 64;
  int vals[kTokens];
  evq::ShardedQueue<evq::CasArrayQueue<int>> q(32, 4, "tmtest-sharded");
  ASSERT_EQ(q.shard_count(), 4u);
  auto h = q.handle();
  for (std::size_t i = 0; i < kTokens; ++i) {
    vals[i] = static_cast<int>(i);
    while (!q.try_push(h, &vals[i])) {
      ASSERT_NE(q.try_pop(h), nullptr);  // keep space: facade is capacity 32
    }
  }
  std::size_t popped = 0;
  while (q.try_pop(h) != nullptr) {
    ++popped;
  }
  EXPECT_GT(popped, 0u);

#if EVQ_TELEMETRY
  // Facade push_ok must equal the sum of the shard entries' push_ok: every
  // facade-accepted push landed in exactly one shard.
  const RegistrySnapshot snap = snapshot_registry();
  const QueueCounters* facade = snap.find("tmtest-sharded");
  ASSERT_NE(facade, nullptr);
  std::uint64_t shard_push_ok = 0;
  std::uint64_t shard_pop_ok = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    const QueueCounters* shard = snap.find("tmtest-sharded/" + std::to_string(s));
    ASSERT_NE(shard, nullptr) << "shard " << s << " must register individually";
    shard_push_ok += shard->counters[Counter::kPushOk];
    shard_pop_ok += shard->counters[Counter::kPopOk];
  }
  EXPECT_EQ(facade->counters[Counter::kPushOk], kTokens);
  EXPECT_EQ(shard_push_ok, kTokens);
  EXPECT_EQ(facade->counters[Counter::kPopOk], shard_pop_ok);
#endif
}

TEST(TelemetryEndToEnd, SegmentedFacadeDepthMatchesSegmentEntrySum) {
  // The segmented facade registers under its own name; every segment ring
  // registers under "<facade>/seg", sharing ONE entry whose depth is the sum
  // of the live per-segment gauges. The facade's own gauge walks the chain —
  // the two must agree at every quiescent point.
  constexpr std::size_t kTokens = 10;
  int vals[kTokens];
  evq::SegmentedQueue<evq::CasArrayQueue<int>> q(4, "tmtest-seg");
  auto h = q.handle();
  for (std::size_t i = 0; i < kTokens; ++i) {
    vals[i] = static_cast<int>(i);
    ASSERT_TRUE(q.try_push(h, &vals[i]));
  }

  {
    const RegistrySnapshot snap = snapshot_registry();
    const QueueCounters* facade = snap.find("tmtest-seg");
    const QueueCounters* segs = snap.find("tmtest-seg/seg");
    ASSERT_NE(facade, nullptr);
    ASSERT_NE(segs, nullptr) << "segments must register under <facade>/seg";
    EXPECT_TRUE(facade->has_depth);
    EXPECT_TRUE(segs->has_depth);
#if EVQ_TELEMETRY
    EXPECT_EQ(facade->counters[Counter::kPushOk], kTokens);
    // Single-threaded, so every item (including append seeds) landed in
    // exactly one ring push with no contention retries.
    EXPECT_EQ(segs->counters[Counter::kPushOk], kTokens);
    EXPECT_EQ(facade->depth, kTokens);
    EXPECT_EQ(segs->depth, facade->depth)
        << "facade gauge must equal the sum across live segment gauges";
#endif
  }

  for (std::size_t i = 0; i < kTokens; ++i) {
    ASSERT_NE(q.try_pop(h), nullptr);
  }
  const RegistrySnapshot snap = snapshot_registry();
  const QueueCounters* facade = snap.find("tmtest-seg");
  const QueueCounters* segs = snap.find("tmtest-seg/seg");
  ASSERT_NE(facade, nullptr);
  ASSERT_NE(segs, nullptr);
#if EVQ_TELEMETRY
  EXPECT_EQ(facade->depth, 0u);
  EXPECT_EQ(segs->depth, facade->depth) << "drained facade and segment sums must both be zero";
#endif
}

}  // namespace
