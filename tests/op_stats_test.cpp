// Tests for the atomic-operation profiler AND, through it, the paper's
// per-operation instruction-count claims (Sec. 6), asserted exactly in the
// uncontended single-thread regime.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "evq/baselines/ms_hp_queue.hpp"
#include "evq/baselines/ms_sim_queue.hpp"
#include "evq/baselines/shann_queue.hpp"
#include "evq/common/dwcas.hpp"
#include "evq/common/op_stats.hpp"
#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/llsc/versioned_llsc.hpp"
#include "evq/llsc/weak_llsc.hpp"

namespace {

using namespace evq;
using stats::OpCounters;
using stats::ScopedOpRecording;

struct Item {
  int x = 0;
};

template <typename T>
using WeakSlot = llsc::WeakLlsc<llsc::VersionedLlsc<T>, 20>;

TEST(OpStats, DisabledByDefault) {
  // No recording scope: hooks must not crash and must count nowhere.
  stats::on_cas(true);
  stats::on_faa();
  OpCounters c;
  {
    ScopedOpRecording rec(c);
  }
  EXPECT_EQ(c.cas_attempts, 0u);
}

TEST(OpStats, RecordsWithinScopeOnly) {
  OpCounters c;
  stats::on_cas(true);  // outside: ignored
  {
    ScopedOpRecording rec(c);
    stats::on_cas(true);
    stats::on_cas(false);
    stats::on_faa();
    stats::on_wide_cas(true);
    stats::on_wide_load();
  }
  stats::on_cas(true);  // outside again: ignored
  EXPECT_EQ(c.cas_attempts, 2u);
  EXPECT_EQ(c.cas_success, 1u);
  EXPECT_EQ(c.faa, 1u);
  EXPECT_EQ(c.wide_cas_attempts, 1u);
  EXPECT_EQ(c.wide_cas_success, 1u);
  EXPECT_EQ(c.wide_loads, 1u);
}

TEST(OpStats, ScopeZeroesTheSink) {
  OpCounters c;
  c.cas_attempts = 99;
  {
    ScopedOpRecording rec(c);
  }
  EXPECT_EQ(c.cas_attempts, 0u);
}

TEST(OpStats, RecordingIsPerThread) {
  OpCounters mine;
  ScopedOpRecording rec(mine);
  std::thread other([] {
    // This thread has no recorder: its ops must not land in `mine`.
    for (int i = 0; i < 100; ++i) {
      stats::on_cas(true);
    }
  });
  other.join();
  EXPECT_EQ(mine.cas_attempts, 0u);
}

// ---------------------------------------------------------------------------
// The paper's instruction-count claims, measured exactly (uncontended).
// ---------------------------------------------------------------------------

TEST(OpProfile, AlgorithmOnePacked_TwoCasPerOp) {
  // Alg. 1 over single-word LL/SC: LL is a plain load; enqueue = SC(slot) +
  // SC(Tail) = 2 CAS; dequeue likewise.
  LlscArrayQueue<Item, llsc::PackedLlsc> q(8);
  auto h = q.handle();
  Item item;
  OpCounters c;
  {
    ScopedOpRecording rec(c);
    ASSERT_TRUE(q.try_push(h, &item));
  }
  EXPECT_EQ(c.cas_attempts, 2u);
  EXPECT_EQ(c.cas_success, 2u);
  EXPECT_EQ(c.faa, 0u);
  EXPECT_EQ(c.wide_cas_attempts, 0u) << "single-word algorithm must never issue a wide CAS";
  {
    ScopedOpRecording rec(c);
    ASSERT_EQ(q.try_pop(h), &item);
  }
  EXPECT_EQ(c.cas_attempts, 2u);
  EXPECT_EQ(c.cas_success, 2u);
  EXPECT_EQ(c.wide_cas_attempts, 0u);
}

TEST(OpProfile, AlgorithmTwo_ThreeCasPerOp) {
  // The paper: "our CAS-based implementation requires three 32-bit CAS and
  // two FetchAndAdd operations". The three CAS are exact in the uncontended
  // case: install reservation + SC + index advance. The two FAA occur when
  // reading through a FOREIGN reservation (contended case) — uncontended
  // there are none from the slot protocol (ReRegister keeps the variable
  // without touching r when it has no readers).
  CasArrayQueue<Item> q(8);
  auto h = q.handle();
  Item item;
  // Warm-up so registration (allocation path) is out of the way:
  ASSERT_TRUE(q.try_push(h, &item));
  ASSERT_EQ(q.try_pop(h), &item);
  OpCounters c;
  {
    ScopedOpRecording rec(c);
    ASSERT_TRUE(q.try_push(h, &item));
  }
  EXPECT_EQ(c.cas_attempts, 3u);
  EXPECT_EQ(c.cas_success, 3u);
  EXPECT_EQ(c.faa, 0u) << "no foreign reservations to read through when uncontended";
  EXPECT_EQ(c.wide_cas_attempts, 0u) << "pointer-wide only — the paper's portability claim";
  {
    ScopedOpRecording rec(c);
    ASSERT_EQ(q.try_pop(h), &item);
  }
  EXPECT_EQ(c.cas_attempts, 3u);
  EXPECT_EQ(c.cas_success, 3u);
  EXPECT_EQ(c.wide_cas_attempts, 0u);
}

TEST(OpProfile, Shann_OneNarrowPlusOneWideCasPerOp) {
  // The paper: Shann et al. "uses a 32- and a 64-bit CAS operation to
  // enqueue or dequeue a node" (narrow index CAS + wide slot CAS), plus the
  // wide slot read.
  baselines::ShannQueue<Item> q(8);
  auto h = q.handle();
  Item item;
  OpCounters c;
  {
    ScopedOpRecording rec(c);
    ASSERT_TRUE(q.try_push(h, &item));
  }
  EXPECT_EQ(c.cas_attempts, 1u);   // index advance
  EXPECT_EQ(c.wide_cas_attempts, 1u);  // slot install
  EXPECT_EQ(c.wide_cas_success, 1u);
  EXPECT_EQ(c.wide_loads, 1u);     // slot read
  {
    ScopedOpRecording rec(c);
    ASSERT_EQ(q.try_pop(h), &item);
  }
  EXPECT_EQ(c.cas_attempts, 1u);
  EXPECT_EQ(c.wide_cas_attempts, 1u);
}

TEST(OpProfile, MsHp_TwoCasEnqueueOneCasDequeue) {
  // The paper: MS is "the algorithm with the least number of
  // synchronization instructions" — 2 successful CAS to enqueue (link +
  // tail swing), 1 to dequeue (head move).
  baselines::MsHpQueue<Item> q;
  auto h = q.handle();
  Item item;
  OpCounters c;
  {
    ScopedOpRecording rec(c);
    ASSERT_TRUE(q.try_push(h, &item));
  }
  EXPECT_EQ(c.cas_attempts, 2u);
  EXPECT_EQ(c.cas_success, 2u);
  {
    ScopedOpRecording rec(c);
    ASSERT_EQ(q.try_pop(h), &item);
  }
  EXPECT_EQ(c.cas_attempts, 1u);
  EXPECT_EQ(c.cas_success, 1u);
}

TEST(OpProfile, MsDoherty_ManyOpsPerQueueOperation) {
  // The paper: "7 successful CAS instructions per queueing operation" for
  // the CAS-simulated-LL/SC MS queue — the reason it is the slowest curve.
  // Our comparator's uncontended enqueue: ll(Tail) install + ll(next)
  // install + sc(next) + sc(Tail) = 4 CAS plus pool put/take CAS and guard
  // FAAs; enqueue+dequeue together land in the same "several per op" band.
  baselines::MsSimQueue<Item> q;
  auto h = q.handle();
  Item item;
  ASSERT_TRUE(q.try_push(h, &item));  // warm-up (pool allocation)
  ASSERT_EQ(q.try_pop(h), &item);
  OpCounters c;
  {
    ScopedOpRecording rec(c);
    ASSERT_TRUE(q.try_push(h, &item));
    ASSERT_EQ(q.try_pop(h), &item);
  }
  // enq: 4 CAS (2 installs + 2 SC) + 1 pool-take CAS; deq: 3 CAS (install +
  // SC(head) ... Tail untouched) + release + 1 pool-put CAS => >= 8 total.
  EXPECT_GE(c.cas_attempts, 8u);
  EXPECT_GE(c.faa, 4u) << "guard protocol: +1/-1 per dereferenced node";
  EXPECT_EQ(c.wide_cas_attempts, 0u) << "Doherty-style scheme is pointer-wide only";
}

// ---------------------------------------------------------------------------
// Ring-engine algorithm-level counters (slot SC attempts/failures, help
// advances). The deterministic schedules that FORCE a failure and a help live
// in the injected binary (tests/stats_injection_test.cpp); here the counters
// are pinned in the uncontended regime and against a spuriously-failing cell.
// ---------------------------------------------------------------------------

TEST(OpProfile, RingEngineCountersUncontendedBaseline) {
  // Uncontended, both algorithms: every slot commit succeeds on the first
  // try and nobody needs help — and the new counters must not perturb the
  // exact primitive counts asserted above.
  LlscArrayQueue<Item, llsc::PackedLlsc> llsc_q(8);
  CasArrayQueue<Item> cas_q(8);
  auto lh = llsc_q.handle();
  auto ch = cas_q.handle();
  Item item;
  OpCounters c;
  {
    ScopedOpRecording rec(c);
    ASSERT_TRUE(llsc_q.try_push(lh, &item));
    ASSERT_EQ(llsc_q.try_pop(lh), &item);
  }
  EXPECT_EQ(c.slot_sc_attempts, 2u);  // one commit per operation
  EXPECT_EQ(c.slot_sc_failures, 0u);
  EXPECT_EQ(c.help_advances, 0u);
  {
    ScopedOpRecording rec(c);
    ASSERT_TRUE(cas_q.try_push(ch, &item));
    ASSERT_EQ(cas_q.try_pop(ch), &item);
  }
  EXPECT_EQ(c.slot_sc_attempts, 2u);
  EXPECT_EQ(c.slot_sc_failures, 0u);
  EXPECT_EQ(c.help_advances, 0u);
}

TEST(OpProfile, RingEngineCountsSpuriousScFailures) {
  // WeakLlsc makes the slot SC fail spuriously ~20% of the time from a
  // deterministic per-object stream; the engine's retry loop absorbs every
  // failure and the counter must see each one.
  LlscArrayQueue<Item, WeakSlot> q(8);
  auto h = q.handle();
  Item item;
  OpCounters c;
  {
    ScopedOpRecording rec(c);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(q.try_push(h, &item));
      ASSERT_EQ(q.try_pop(h), &item);
    }
  }
  EXPECT_EQ(c.slot_sc_attempts - c.slot_sc_failures, 400u)
      << "exactly one SUCCESSFUL slot commit per completed operation";
  EXPECT_GT(c.slot_sc_failures, 0u) << "a 20% spurious-failure cell must trip the counter";
  EXPECT_EQ(c.help_advances, 0u) << "single-threaded: no lagging index to repair";
}

TEST(OpProfile, ContendedAttemptAccountingIsConsistent) {
  // Attempt/success accounting under contention. (Failed attempts are NOT
  // guaranteed: on a single-core host the scheduler can serialize the
  // threads so every CAS succeeds — so the hard assertions are the
  // inequalities that must hold on every schedule.)
  CasArrayQueue<Item> q(2);
  constexpr int kThreads = 4;
  constexpr int kOps = 3000;
  std::vector<OpCounters> counters(kThreads);
  std::vector<Item> items(kThreads);  // distinct address per thread
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Item& item = items[t];
      auto h = q.handle();
      ScopedOpRecording rec(counters[t]);
      for (int i = 0; i < kOps; ++i) {
        while (!q.try_push(h, &item)) {
          std::this_thread::yield();
        }
        while (q.try_pop(h) == nullptr) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  for (const auto& c : counters) {
    attempts += c.cas_attempts;
    successes += c.cas_success;
  }
  EXPECT_GE(attempts, successes);
  // Successful slot+index CAS pairs are conserved: every completed push/pop
  // performed exactly 2 required successful CASes + helps; totals are
  // bounded below by 2 ops x 2 CAS x kThreads x kOps.
  EXPECT_GE(successes, 4ull * kThreads * kOps);
  EXPECT_GT(successes, 0u);
}

}  // namespace
