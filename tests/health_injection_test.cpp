// Deterministic injection-driven repros for every evq::health finding type,
// each paired with a no-false-positive test that runs the SAME thresholds
// over a healthy workload (DESIGN.md §15).
//
//  kThresholdBurn     a dequeuer parked at core.scq.aq.deq.reserved holds a
//                     head ticket whose entry goes unsafe-held: every later
//                     Head revolution skips that cell (kSlotSkip) and every
//                     Tail revolution loses a ticket — the wCQ preempted-
//                     ticket-holder tax, sustained for as long as the park.
//  kCombinerCollapse  a thread's kProbeEvery-th op elects it combiner; it
//                     parks inside combine()'s batch push on the inner ring
//                     (core.cas.push.reserved) HOLDING the combiner lock.
//                     Announcers keep submitting, miss the lock, withdraw to
//                     the direct path — engagement ~1 with zero completed
//                     passes.
//  kSegmentLeak       a consumer parked at core.seg.pop.retire wedges
//                     retirement while the producer keeps allocating
//                     segments: cumulative seg_alloc − seg_retire grows
//                     without bound.
//  kThreadStalled     a producer parked at core.cas.push.reserved AFTER
//                     advancing past the Monitor's baseline freezes its
//                     flight-recorder op_seq while the rest of the system
//                     progresses.
//
// The quiet halves pin the other side of the contract: balanced churn with
// identical thresholds raises nothing. The thresholds here are deliberately
// tighter than the defaults (the repros are small and single-digit-percent
// rates must register); the quiet workloads are chosen so their breach rates
// are exactly zero, not merely below the default cut.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "evq/core/cas_array_queue.hpp"
#include "evq/core/combining_queue.hpp"
#include "evq/core/scq_queue.hpp"
#include "evq/core/segmented_queue.hpp"
#include "evq/health/health.hpp"
#include "evq/health/monitor.hpp"
#include "evq/inject/inject.hpp"
#include "evq/inject/profile.hpp"
#include "evq/telemetry/flight_recorder.hpp"
#include "evq/verify/fifo_checkers.hpp"

namespace {

using namespace evq;
using verify::Token;

/// Shared by every trigger AND every quiet test: min_ops low enough for the
/// small repro intervals to register, slot_skip tight enough to see the one
/// poisoned-cell skip per ring revolution (~0.07/op on a capacity-4 SCQ).
health::Thresholds injection_thresholds() {
  health::Thresholds t;
  t.min_ops = 32;
  t.slot_skip_per_op = 0.04;
  t.comb_engagement = 0.5;
  t.comb_batch_floor = 1.05;
  t.seg_in_flight = 4;
  t.trip_polls = 2;
  t.clear_polls = 2;
  return t;
}

health::MonitorOptions injection_monitor_options() {
  health::MonitorOptions o;
  o.thresholds = injection_thresholds();
  o.latency_sample_every = 0;  // leave the global reservoir setting alone
  return o;
}

const health::Finding* find_finding(const health::HealthSnapshot& snap,
                                    health::FindingType type) {
  for (const health::Finding& f : snap.findings) {
    if (f.type == type) {
      return &f;
    }
  }
  return nullptr;
}

bool await_parked(inject::StallGate& gate) {
  for (int i = 0; i < 1 << 26 && !gate.parked(); ++i) {
    std::this_thread::yield();
  }
  return gate.parked();
}

/// Releases the gate and joins the victim on every exit path — an early
/// ASSERT return must not leave a parked thread joinable (std::terminate).
struct VictimGuard {
  inject::StallGate& gate;
  std::thread& victim;
  ~VictimGuard() {
    gate.release();
    if (victim.joinable()) {
      victim.join();
    }
  }
};

// ---------------------------------------------------------------------------
// kThresholdBurn
// ---------------------------------------------------------------------------

TEST(HealthInjection, ParkedDequeueTicketTripsThresholdBurn) {
  ScqQueue<Token> q(4, "health-burn-scq");
  auto h = q.handle();
  Token seed;
  ASSERT_TRUE(q.try_push(h, &seed));  // arms aq, gives the victim a ticket to hold

  inject::StallGate gate(1u << 26);
  const inject::Profile script{"scripted-health-burn",
                               "park a dequeuer on a fresh aq head ticket; its held entry "
                               "goes unsafe and taxes every ring revolution",
                               /*sc_fail=*/0, 100, "",
                               /*delay=*/0, 100, 0, "",
                               /*stall=*/"core.scq.aq.deq.reserved", inject::Role::kConsumer};
  std::thread victim([&] {
    inject::ProfileInjector injector(script, /*seed=*/1, /*thread_id=*/0,
                                     inject::Role::kConsumer, &gate);
    inject::ScopedInjector install(injector);
    auto vh = q.handle();
    EXPECT_EQ(q.try_pop(vh), &seed);  // resumes after the churn, consumes its held entry
  });
  VictimGuard guard{gate, victim};
  ASSERT_TRUE(await_parked(gate)) << "victim never reached core.scq.aq.deq.reserved";

  health::Monitor monitor(injection_monitor_options());
  monitor.poll();  // baseline

  // Strict push/pop alternation. Skips in this shape come ONLY from the
  // victim's held-unsafe cell — roughly one per Head revolution, forever.
  Token churn_tok;
  health::HealthSnapshot snap;
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(q.try_push(h, &churn_tok));
      ASSERT_NE(q.try_pop(h), nullptr);
    }
    snap = monitor.poll();
  }
  const health::Finding* f = find_finding(snap, health::FindingType::kThresholdBurn);
  ASSERT_NE(f, nullptr) << "parked ticket holder must trip kThresholdBurn";
  EXPECT_EQ(f->subject, "health-burn-scq");
  EXPECT_GT(f->severity, injection_thresholds().slot_skip_per_op);

  // Hysteresis clear: release the victim (it consumes the poisoned cell);
  // two clean polls of the same churn must retire the finding.
  gate.release();
  victim.join();
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(q.try_push(h, &churn_tok));
      ASSERT_NE(q.try_pop(h), nullptr);
    }
    snap = monitor.poll();
  }
  EXPECT_EQ(find_finding(snap, health::FindingType::kThresholdBurn), nullptr)
      << "finding must clear after clear_polls healthy intervals";
}

TEST(HealthInjection, BalancedScqChurnRaisesNoFindings) {
  ScqQueue<Token> q(4, "health-quiet-scq");
  health::Monitor monitor(injection_monitor_options());
  monitor.poll();  // baseline

  auto h = q.handle();
  Token tok;
  health::HealthSnapshot snap;
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(q.try_push(h, &tok));
      ASSERT_NE(q.try_pop(h), nullptr);
    }
    snap = monitor.poll();
    EXPECT_TRUE(snap.findings.empty())
        << "balanced alternation must stay quiet under the repro thresholds";
  }
  // The same thresholds, the same queue family, zero skips: rates are real.
  for (const health::QueueRates& r : snap.queues) {
    if (r.queue == "health-quiet-scq") {
      EXPECT_GE(r.ops, injection_thresholds().min_ops);
      EXPECT_DOUBLE_EQ(r.slot_skip_per_op, 0.0);
      EXPECT_DOUBLE_EQ(r.faa_waste, 0.0);
    }
  }
}

// ---------------------------------------------------------------------------
// kCombinerCollapse
// ---------------------------------------------------------------------------

TEST(HealthInjection, ParkedCombinerTripsCombinerCollapse) {
  using CombQ = CombiningQueue<CasArrayQueue<Token>>;
  CombQ q(64, "health-comb");

  inject::StallGate gate(1u << 26);
  const inject::Profile script{"scripted-health-comb-collapse",
                               "park the elected combiner inside its batch push on the inner "
                               "ring, holding the combiner lock",
                               /*sc_fail=*/0, 100, "",
                               /*delay=*/0, 100, 0, "",
                               /*stall=*/CasSlotPolicy<Token>::kPushReserved,
                               inject::Role::kProducer};
  std::vector<Token> victim_toks(CombQ::kProbeEvery + 1);
  std::thread victim([&] {
    auto vh = q.handle();  // slot 0: exclusive announce record
    // kProbeEvery−1 direct warm ops, injector NOT yet installed: the next op
    // is the probe that takes the announce path.
    for (std::uint32_t i = 0; i + 1 < CombQ::kProbeEvery; ++i) {
      if (i % 2 == 0) {
        EXPECT_TRUE(q.try_push(vh, &victim_toks[i]));
      } else {
        EXPECT_NE(q.try_pop(vh), nullptr);
      }
    }
    inject::ProfileInjector injector(script, /*seed=*/1, /*thread_id=*/0,
                                     inject::Role::kProducer, &gate);
    inject::ScopedInjector install(injector);
    // The probe op: announce, win the uncontended combiner lock, and park
    // inside combine() -> try_push_n -> core.cas.push.reserved.
    (void)q.try_push(vh, &victim_toks[CombQ::kProbeEvery]);
  });
  VictimGuard guard{gate, victim};
  ASSERT_TRUE(await_parked(gate)) << "victim never parked inside its combining pass";
  EXPECT_FALSE(q.combining_mode()) << "nothing has collided yet";

  // Announcer churn: every op past each handle's first probe submits, misses
  // the held lock, withdraws, and completes on the ring directly.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> churn_ops{0};
  Token churn_toks[2];
  auto churner = [&](int idx) {
    auto ch = q.handle();
    while (!stop.load(std::memory_order_relaxed)) {
      (void)q.try_push(ch, &churn_toks[idx]);
      (void)q.try_pop(ch);
      churn_ops.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread c1(churner, 0);
  std::thread c2(churner, 1);

  health::Monitor monitor(injection_monitor_options());
  monitor.poll();  // baseline
  health::HealthSnapshot snap;
  for (int p = 0; p < 3; ++p) {
    const std::uint64_t base = churn_ops.load(std::memory_order_relaxed);
    while (churn_ops.load(std::memory_order_relaxed) < base + 200) {
      std::this_thread::yield();
    }
    snap = monitor.poll();
  }
  stop.store(true, std::memory_order_relaxed);
  c1.join();
  c2.join();

  EXPECT_TRUE(q.combining_mode()) << "lock misses must have flipped the queue to combining";
  const health::Finding* f = find_finding(snap, health::FindingType::kCombinerCollapse);
  ASSERT_NE(f, nullptr) << "a parked lock-holding combiner must trip kCombinerCollapse";
  EXPECT_EQ(f->subject, "health-comb");
  EXPECT_GT(f->severity, injection_thresholds().comb_engagement);
}

TEST(HealthInjection, SoloCombiningChurnRaisesNoFindings) {
  CombiningQueue<CasArrayQueue<Token>> q(64, "health-quiet-comb");
  health::Monitor monitor(injection_monitor_options());
  monitor.poll();  // baseline

  auto h = q.handle();
  Token tok;
  health::HealthSnapshot snap;
  for (int p = 0; p < 3; ++p) {
    // 800 ops per poll: ~12 of them are probes that announce and self-combine
    // successfully — submits exist, but engagement stays ~1/kProbeEvery.
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(q.try_push(h, &tok));
      ASSERT_NE(q.try_pop(h), nullptr);
    }
    snap = monitor.poll();
    EXPECT_TRUE(snap.findings.empty())
        << "a progressing self-combining queue must stay quiet";
  }
}

// ---------------------------------------------------------------------------
// kSegmentLeak
// ---------------------------------------------------------------------------

TEST(HealthInjection, WedgedRetirementTripsSegmentLeak) {
  SegmentedQueue<ScqQueue<Token>> q(4, "health-leak-seg");
  auto h = q.handle();
  const std::size_t seg_cap = q.segment_capacity();
  std::vector<Token> items(seg_cap * 16 + 1);
  std::size_t next = 0;
  // Fill segment 1 and start segment 2, so the victim's drain crosses the
  // boundary and reaches the retire CAS.
  for (std::size_t i = 0; i <= seg_cap; ++i) {
    ASSERT_TRUE(q.try_push(h, &items[next++]));
  }

  inject::StallGate gate(1u << 26);
  const inject::Profile script{"scripted-health-seg-leak",
                               "park a consumer at the segment-retire CAS so retirement "
                               "wedges while producers keep allocating",
                               /*sc_fail=*/0, 100, "",
                               /*delay=*/0, 100, 0, "",
                               /*stall=*/seg_detail::kSegPopRetire, inject::Role::kConsumer};
  std::thread victim([&] {
    inject::ProfileInjector injector(script, /*seed=*/1, /*thread_id=*/0,
                                     inject::Role::kConsumer, &gate);
    inject::ScopedInjector install(injector);
    auto vh = q.handle();
    // Drains segment 1, then the boundary-crossing pop parks at the retire.
    for (std::size_t i = 0; i <= seg_cap; ++i) {
      EXPECT_NE(q.try_pop(vh), nullptr);
    }
  });
  VictimGuard guard{gate, victim};
  ASSERT_TRUE(await_parked(gate)) << "victim never reached core.seg.pop.retire";

  health::Monitor monitor(injection_monitor_options());
  monitor.poll();  // baseline
  health::HealthSnapshot snap;
  for (int p = 0; p < 2; ++p) {
    for (std::size_t i = 0; i < seg_cap * 6; ++i) {
      ASSERT_TRUE(q.try_push(h, &items[next++]));
    }
    snap = monitor.poll();
  }
  const health::Finding* f = find_finding(snap, health::FindingType::kSegmentLeak);
  ASSERT_NE(f, nullptr) << "wedged retirement under allocation must trip kSegmentLeak";
  EXPECT_EQ(f->subject, "health-leak-seg");
  EXPECT_GT(f->severity, static_cast<double>(injection_thresholds().seg_in_flight));

  // Unwedge, drain, and watch the finding clear once retirement catches up.
  gate.release();
  victim.join();
  while (q.try_pop(h) != nullptr) {
  }
  for (int p = 0; p < 3; ++p) {
    snap = monitor.poll();
  }
  EXPECT_EQ(find_finding(snap, health::FindingType::kSegmentLeak), nullptr)
      << "in-flight segments back under the limit must clear the finding";
}

TEST(HealthInjection, RetiringSegmentChurnRaisesNoLeak) {
  SegmentedQueue<ScqQueue<Token>> q(4, "health-quiet-seg");
  health::Monitor monitor(injection_monitor_options());
  monitor.poll();  // baseline

  auto h = q.handle();
  const std::size_t seg_cap = q.segment_capacity();
  std::vector<Token> items(seg_cap + 1);
  health::HealthSnapshot snap;
  for (int p = 0; p < 3; ++p) {
    // Each cycle seals + appends + retires one segment: allocation and
    // retirement stay in lockstep, in_flight never exceeds 2.
    for (int cycle = 0; cycle < 20; ++cycle) {
      for (auto& tok : items) {
        ASSERT_TRUE(q.try_push(h, &tok));
      }
      for (std::size_t i = 0; i < items.size(); ++i) {
        ASSERT_NE(q.try_pop(h), nullptr);
      }
    }
    snap = monitor.poll();
    EXPECT_EQ(find_finding(snap, health::FindingType::kSegmentLeak), nullptr)
        << "lockstep seal/drain/retire churn must not look like a leak";
    EXPECT_EQ(find_finding(snap, health::FindingType::kThreadStalled), nullptr);
  }
  for (const health::QueueRates& r : snap.queues) {
    if (r.queue == "health-quiet-seg") {
      EXPECT_LE(r.seg_in_flight, injection_thresholds().seg_in_flight);
    }
  }
}

// ---------------------------------------------------------------------------
// kThreadStalled
// ---------------------------------------------------------------------------

TEST(HealthInjection, ParkedThreadTripsThreadStalled) {
  telemetry::set_tracing(true);  // the stall detector reads flight-recorder op_seq
  CasArrayQueue<Token> q(8, "health-stall-cas");

  inject::StallGate gate(1u << 26);
  const inject::Profile script{"scripted-health-thread-stall",
                               "park a previously-active producer mid-push so its op_seq "
                               "freezes while the system progresses",
                               /*sc_fail=*/0, 100, "",
                               /*delay=*/0, 100, 0, "",
                               /*stall=*/CasSlotPolicy<Token>::kPushReserved,
                               inject::Role::kProducer};
  // Handshake: the victim must complete ops BOTH before the Monitor's
  // baseline poll (so its ring exists) and after it (so ever_advanced is
  // set) — a ring first seen at a frozen seq is idle, not stalled.
  std::atomic<int> phase{0};
  Token victim_toks[4];
  std::thread victim([&] {
    auto vh = q.handle();
    for (int i = 0; i < 4; ++i) {  // phase A: establish the ring
      EXPECT_TRUE(q.try_push(vh, &victim_toks[i % 4]));
      EXPECT_NE(q.try_pop(vh), nullptr);
    }
    phase.store(1, std::memory_order_release);
    while (phase.load(std::memory_order_acquire) < 2) {
      std::this_thread::yield();
    }
    for (int i = 0; i < 4; ++i) {  // phase B: advance past the baseline
      EXPECT_TRUE(q.try_push(vh, &victim_toks[i % 4]));
      EXPECT_NE(q.try_pop(vh), nullptr);
    }
    phase.store(3, std::memory_order_release);
    while (phase.load(std::memory_order_acquire) < 4) {
      std::this_thread::yield();
    }
    inject::ProfileInjector injector(script, /*seed=*/1, /*thread_id=*/0,
                                     inject::Role::kProducer, &gate);
    inject::ScopedInjector install(injector);
    (void)q.try_push(vh, &victim_toks[0]);  // parks holding a reserved slot
  });
  VictimGuard guard{gate, victim};

  while (phase.load(std::memory_order_acquire) < 1) {
    std::this_thread::yield();
  }
  health::Monitor monitor(injection_monitor_options());
  monitor.poll();  // baseline: victim ring seen
  phase.store(2, std::memory_order_release);
  while (phase.load(std::memory_order_acquire) < 3) {
    std::this_thread::yield();
  }
  monitor.poll();  // victim advanced since baseline: ever_advanced set
  phase.store(4, std::memory_order_release);
  ASSERT_TRUE(await_parked(gate)) << "victim never parked mid-push";

  // Main-thread churn keeps the SYSTEM progressing (the victim's uncommitted
  // slot wedges FIFO pops, but push_full/pop_empty attempts count as ops)
  // while the victim's op_seq stays frozen.
  auto h = q.handle();
  Token churn_tok;
  health::HealthSnapshot snap;
  for (int p = 0; p < 2; ++p) {
    for (int i = 0; i < 200; ++i) {
      (void)q.try_push(h, &churn_tok);
      (void)q.try_pop(h);
    }
    snap = monitor.poll();
  }
  const health::Finding* f = find_finding(snap, health::FindingType::kThreadStalled);
  ASSERT_NE(f, nullptr) << "a frozen op_seq in a progressing system must trip kThreadStalled";
  EXPECT_EQ(f->subject.rfind("thread ", 0), 0u) << f->subject;
  EXPECT_NE(f->detail.find("op_seq frozen"), std::string::npos) << f->detail;

  // Release: the victim finishes its push and exits; its ring goes non-live
  // and two clean polls clear the finding.
  gate.release();
  victim.join();
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 200; ++i) {
      (void)q.try_push(h, &churn_tok);
      (void)q.try_pop(h);
    }
    snap = monitor.poll();
  }
  EXPECT_EQ(find_finding(snap, health::FindingType::kThreadStalled), nullptr)
      << "a released thread must stop reading as stalled";
  telemetry::set_tracing(false);
}

TEST(HealthInjection, ProgressingThreadsRaiseNoStall) {
  telemetry::set_tracing(true);
  CasArrayQueue<Token> q(64, "health-quiet-cas");

  std::atomic<bool> stop{false};
  std::array<std::atomic<std::uint64_t>, 4> worker_ops{};
  Token toks[4];
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      auto h = q.handle();
      while (!stop.load(std::memory_order_relaxed)) {
        (void)q.try_push(h, &toks[w]);
        (void)q.try_pop(h);
        worker_ops[w].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  health::Monitor monitor(injection_monitor_options());
  monitor.poll();  // baseline
  for (int p = 0; p < 4; ++p) {
    // Wait until every worker completed >= 2 ops since the last poll, so at
    // least one full op per worker falls strictly INSIDE the interval — each
    // ring's op_seq has provably advanced when we poll.
    std::array<std::uint64_t, 4> base{};
    for (int w = 0; w < 4; ++w) {
      base[w] = worker_ops[w].load(std::memory_order_relaxed);
    }
    for (int w = 0; w < 4; ++w) {
      while (worker_ops[w].load(std::memory_order_relaxed) < base[w] + 2) {
        std::this_thread::yield();
      }
    }
    const health::HealthSnapshot snap = monitor.poll();
    EXPECT_TRUE(snap.findings.empty())
        << "threads that complete ops every interval must never read as stalled";
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) {
    t.join();
  }
  telemetry::set_tracing(false);
}

}  // namespace
