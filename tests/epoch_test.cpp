// Tests for epoch-based reclamation and the MS-EBR extension baseline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "evq/baselines/ms_ebr_queue.hpp"
#include "evq/reclaim/epoch.hpp"

namespace {

using namespace evq;
using namespace evq::reclaim;

struct ENode {
  int id = 0;
};

using Domain = EpochDomain<ENode>;

TEST(Epoch, AcquireRecyclesReleasedRecords) {
  Domain domain;
  auto* r1 = domain.acquire();
  domain.release(r1);
  EXPECT_EQ(domain.acquire(), r1);
  domain.release(r1);
}

TEST(Epoch, AdvanceSucceedsWhenNobodyIsPinned) {
  Domain domain(1);
  auto* rec = domain.acquire();
  const std::uint64_t before = domain.epoch();
  EXPECT_TRUE(domain.try_advance(rec));
  EXPECT_EQ(domain.epoch(), before + 1);
  domain.release(rec);
}

TEST(Epoch, PinnedLaggardBlocksAdvance) {
  Domain domain(1);
  auto* fast = domain.acquire();
  auto* slow = domain.acquire();
  domain.pin(slow);
  ASSERT_TRUE(domain.try_advance(fast)) << "laggard has observed the current epoch";
  // slow is now pinned in the PREVIOUS epoch: no further advance possible.
  EXPECT_FALSE(domain.try_advance(fast));
  EXPECT_FALSE(domain.try_advance(fast));
  domain.unpin(slow);
  EXPECT_TRUE(domain.try_advance(fast)) << "unpinned: epoch may move again";
  domain.release(fast);
  domain.release(slow);
}

TEST(Epoch, RetiredNodesFreeAfterTwoAdvances) {
  Domain domain(1000);  // manual advances only
  auto* rec = domain.acquire();
  domain.pin(rec);
  domain.retire(rec, new ENode{1});
  domain.unpin(rec);
  EXPECT_EQ(domain.reclaimed_count(), 0u);
  ASSERT_TRUE(domain.try_advance(rec));  // e -> e+1: still too young
  EXPECT_EQ(domain.reclaimed_count(), 0u);
  ASSERT_TRUE(domain.try_advance(rec));  // e+1 -> e+2: our bucket frees
  EXPECT_EQ(domain.reclaimed_count(), 1u);
  domain.release(rec);
}

TEST(Epoch, RetireTriggersAdvanceAtThreshold) {
  Domain domain(4);
  auto* rec = domain.acquire();
  for (int round = 0; round < 10; ++round) {
    domain.pin(rec);
    for (int i = 0; i < 4; ++i) {
      domain.retire(rec, new ENode{i});
    }
    domain.unpin(rec);
  }
  EXPECT_GT(domain.reclaimed_count(), 0u) << "thresholded retires must reclaim eventually";
  domain.release(rec);
}

TEST(Epoch, ConcurrentPinUnpinRetireIsSafe) {
  Domain domain(8);
  constexpr int kThreads = 4;
  constexpr int kIters = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto* rec = domain.acquire();
      for (int i = 0; i < kIters; ++i) {
        domain.pin(rec);
        domain.retire(rec, new ENode{i});
        domain.unpin(rec);
      }
      domain.release(rec);
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_GT(domain.reclaimed_count(), 0u);
  // Whatever was not reclaimed is freed by the domain destructor (ASan
  // verifies no leak and no double free).
}

// ---------------------------------------------------------------------------
// MsEbrQueue
// ---------------------------------------------------------------------------

struct Item {
  std::uint64_t id = 0;
};

TEST(MsEbrQueue, BasicFifo) {
  baselines::MsEbrQueue<Item> q;
  auto h = q.handle();
  Item items[5];
  for (std::uint64_t i = 0; i < 5; ++i) {
    items[i].id = i;
    EXPECT_TRUE(q.try_push(h, &items[i]));
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    Item* out = q.try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->id, i);
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(MsEbrQueue, ReclaimsNodesDuringTraffic) {
  baselines::MsEbrQueue<Item> q(8);
  auto h = q.handle();
  Item item;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.try_push(h, &item));
    ASSERT_EQ(q.try_pop(h), &item);
  }
  EXPECT_GT(q.domain().reclaimed_count(), 0u);
}

TEST(MsEbrQueue, MpmcConservation) {
  baselines::MsEbrQueue<Item> q(16);
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 3000;
  std::vector<std::vector<Item>> items(kThreads);
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    items[t].resize(kPerThread);
    threads.emplace_back([&, t] {
      auto h = q.handle();
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        while (!q.try_push(h, &items[t][i])) {
        }
        while (q.try_pop(h) == nullptr) {
          std::this_thread::yield();
        }
        popped.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(popped.load(), kThreads * kPerThread);
  auto h = q.handle();
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(MsEbrQueue, StalledHandleDoesNotBlockOperationsOnlyReclamation) {
  // The EBR weakness, demonstrated: a handle pinned "forever" (simulated by
  // a raw pin without unpin) stops the epoch, but the QUEUE stays lock-free
  // — operations keep succeeding, memory just stops being recycled.
  baselines::MsEbrQueue<Item> q(4);
  auto stalled = q.handle();
  // Pin via an operation-sized window we never close: emulate by pinning
  // the record directly through the domain.
  auto& domain = q.domain();
  auto* rec = domain.acquire();
  domain.pin(rec);
  const std::uint64_t epoch_before = domain.epoch();

  auto h = q.handle();
  Item item;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(q.try_push(h, &item));
    ASSERT_EQ(q.try_pop(h), &item);
  }
  EXPECT_LE(domain.epoch(), epoch_before + 1)
      << "a stalled pin must freeze the epoch (at most one more advance)";
  domain.unpin(rec);
  domain.release(rec);
}

}  // namespace
