// Tests for the stream-level FIFO checkers themselves: they must accept
// valid executions and pinpoint each violation class.
#include <gtest/gtest.h>

#include "evq/verify/fifo_checkers.hpp"

namespace {

using namespace evq::verify;

Token tok(std::uint32_t producer, std::uint64_t seq) {
  Token t;
  t.producer = producer;
  t.seq = seq;
  return t;
}

// ---------------------------------------------------------------------------
// check_conservation
// ---------------------------------------------------------------------------

TEST(Conservation, AcceptsExactCoverage) {
  std::vector<ConsumerLog> logs{{tok(0, 0), tok(1, 0)}, {tok(0, 1)}};
  EXPECT_TRUE(check_conservation(logs, {2, 1}).ok);
}

TEST(Conservation, DetectsLostToken) {
  std::vector<ConsumerLog> logs{{tok(0, 0)}};
  const auto r = check_conservation(logs, {2});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("lost"), std::string::npos);
}

TEST(Conservation, DetectsDuplicatedToken) {
  std::vector<ConsumerLog> logs{{tok(0, 0)}, {tok(0, 0), tok(0, 1)}};
  const auto r = check_conservation(logs, {2});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("twice"), std::string::npos);
}

TEST(Conservation, DetectsPhantomToken) {
  std::vector<ConsumerLog> logs{{tok(0, 5)}};
  const auto r = check_conservation(logs, {2});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("never pushed"), std::string::npos);
}

TEST(Conservation, DetectsUnknownProducer) {
  std::vector<ConsumerLog> logs{{tok(7, 0)}};
  EXPECT_FALSE(check_conservation(logs, {2}).ok);
}

TEST(Conservation, AcceptsEmptyRun) {
  EXPECT_TRUE(check_conservation({}, {0, 0}).ok);
}

// ---------------------------------------------------------------------------
// check_per_producer_order
// ---------------------------------------------------------------------------

TEST(PerProducerOrder, AcceptsInterleavedProducersInOrder) {
  std::vector<ConsumerLog> logs{{tok(0, 0), tok(1, 0), tok(0, 1), tok(1, 1)}};
  EXPECT_TRUE(check_per_producer_order(logs, 2).ok);
}

TEST(PerProducerOrder, DetectsReorderingWithinProducer) {
  std::vector<ConsumerLog> logs{{tok(0, 1), tok(0, 0)}};
  const auto r = check_per_producer_order(logs, 1);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("out of order"), std::string::npos);
}

TEST(PerProducerOrder, DetectsDuplicateAsOrderViolation) {
  std::vector<ConsumerLog> logs{{tok(0, 0), tok(0, 0)}};
  EXPECT_FALSE(check_per_producer_order(logs, 1).ok);
}

TEST(PerProducerOrder, ChecksEachConsumerIndependently) {
  // Each consumer's view is ordered even though they split the stream.
  std::vector<ConsumerLog> logs{{tok(0, 0), tok(0, 2)}, {tok(0, 1), tok(0, 3)}};
  EXPECT_TRUE(check_per_producer_order(logs, 1).ok);
}

TEST(PerProducerOrder, GapsAreLegal) {
  // Order checking permits gaps (another consumer may own the gap tokens).
  std::vector<ConsumerLog> logs{{tok(0, 0), tok(0, 5), tok(0, 9)}};
  EXPECT_TRUE(check_per_producer_order(logs, 1).ok);
}

// ---------------------------------------------------------------------------
// check_single_consumer_gapless
// ---------------------------------------------------------------------------

TEST(SingleConsumer, AcceptsGaplessInterleaving) {
  ConsumerLog log{tok(1, 0), tok(0, 0), tok(0, 1), tok(1, 1)};
  EXPECT_TRUE(check_single_consumer_gapless(log, 2).ok);
}

TEST(SingleConsumer, RejectsGap) {
  ConsumerLog log{tok(0, 0), tok(0, 2)};
  const auto r = check_single_consumer_gapless(log, 1);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.reason.find("expected seq 1"), std::string::npos);
}

TEST(SingleConsumer, RejectsReplay) {
  ConsumerLog log{tok(0, 0), tok(0, 0)};
  EXPECT_FALSE(check_single_consumer_gapless(log, 1).ok);
}

}  // namespace
