// Registry names covered by the fault-injection torture harness
// (tests/torture_test.cpp).
//
// This list is deliberately a plain header with NO evq includes: it is shared
// between two binaries that must not share evq template instantiations —
// evq_tests (compiled without EVQ_INJECT_ENABLED, links evq_harness) and
// evq_torture (compiled entirely with EVQ_INJECT_ENABLED=1, which therefore
// must not link any library holding uninjected copies of the same inline
// queue code). evq_tests checks every harness::all_queues() entry appears
// here; evq_torture checks it can actually run every name listed here. The
// two checks together prove torture coverage without ODR-unsafe linkage.
#pragma once

#include <cstddef>

namespace evq::testing {

inline constexpr const char* kTortureCoveredQueues[] = {
    "fifo-llsc", "fifo-llsc-versioned", "fifo-simcas", "ms-hp",
    "ms-hp-sorted", "ms-doherty", "shann", "ms-pool",
    "ms-ebr", "tsigas-zhang", "mutex", "unsync",
    "fifo-llsc-backoff", "fifo-simcas-backoff", "sharded-llsc", "sharded-simcas",
    "scq", "scq-backoff", "sharded-scq", "seg-cas",
    "seg-scq", "sharded-seg-scq", "comb-cas", "comb-scq",
    "sharded-comb-scq",
};

inline constexpr std::size_t kTortureCoveredQueueCount =
    sizeof(kTortureCoveredQueues) / sizeof(kTortureCoveredQueues[0]);

}  // namespace evq::testing
