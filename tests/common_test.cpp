// Unit tests for the common substrate: cache-line padding, backoff, tagged
// pointers, PRNGs and the spin barrier.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "evq/common/backoff.hpp"
#include "evq/common/cacheline.hpp"
#include "evq/common/rng.hpp"
#include "evq/common/spin_barrier.hpp"
#include "evq/common/tagged_ptr.hpp"

namespace {

using namespace evq;

// ---------------------------------------------------------------------------
// CachePadded
// ---------------------------------------------------------------------------

TEST(CachePadded, SizeIsMultipleOfCacheLine) {
  EXPECT_EQ(sizeof(CachePadded<char>) % kCacheLineSize, 0u);
  EXPECT_EQ(sizeof(CachePadded<std::uint64_t>) % kCacheLineSize, 0u);
  EXPECT_EQ(sizeof(CachePadded<std::atomic<std::uint64_t>>) % kCacheLineSize, 0u);
}

TEST(CachePadded, AlignmentIsCacheLine) {
  EXPECT_EQ(alignof(CachePadded<char>), kCacheLineSize);
}

TEST(CachePadded, AdjacentElementsDoNotShareLines) {
  CachePadded<std::uint64_t> a[2];
  const auto pa = reinterpret_cast<std::uintptr_t>(&a[0].value);
  const auto pb = reinterpret_cast<std::uintptr_t>(&a[1].value);
  EXPECT_GE(pb - pa, kCacheLineSize);
}

TEST(CachePadded, ForwardsConstructorArguments) {
  CachePadded<std::uint64_t> v{42u};
  EXPECT_EQ(v.value, 42u);
}

TEST(CachePadded, LargerThanLineTypeRoundsUp) {
  struct Big {
    char data[100];
  };
  EXPECT_EQ(sizeof(CachePadded<Big>) % kCacheLineSize, 0u);
  EXPECT_GE(sizeof(CachePadded<Big>), sizeof(Big));
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

TEST(Backoff, EscalatesToYieldingAfterEnoughRounds) {
  Backoff b;
  EXPECT_FALSE(b.is_yielding());
  for (int i = 0; i < 20; ++i) {
    b.pause();
  }
  EXPECT_TRUE(b.is_yielding());
}

TEST(Backoff, ResetReturnsToSpinning) {
  Backoff b;
  for (int i = 0; i < 20; ++i) {
    b.pause();
  }
  b.reset();
  EXPECT_FALSE(b.is_yielding());
}

TEST(Backoff, NullBackoffNeverYields) {
  NullBackoff b;
  for (int i = 0; i < 100; ++i) {
    b.pause();
  }
  EXPECT_FALSE(b.is_yielding());
}

// ---------------------------------------------------------------------------
// LSB tagging
// ---------------------------------------------------------------------------

TEST(LsbTag, RoundTrip) {
  std::uint64_t x = 0;
  const std::uintptr_t tagged = lsb_tag(&x);
  EXPECT_TRUE(lsb_tagged(tagged));
  EXPECT_EQ(lsb_untag<std::uint64_t>(tagged), &x);
}

TEST(LsbTag, PlainPointerIsNotTagged) {
  std::uint64_t x = 0;
  EXPECT_FALSE(lsb_tagged(reinterpret_cast<std::uintptr_t>(&x)));
}

TEST(LsbTag, NullIsNotTagged) { EXPECT_FALSE(lsb_tagged(0)); }

// ---------------------------------------------------------------------------
// PackedPtr
// ---------------------------------------------------------------------------

TEST(PackedPtr, RoundTripPointerAndVersion) {
  std::uint64_t x = 0;
  const auto p = PackedPtr::make(&x, 0x1234);
  EXPECT_EQ(p.ptr<std::uint64_t>(), &x);
  EXPECT_EQ(p.version(), 0x1234);
}

TEST(PackedPtr, NullPointerWithVersion) {
  const auto p = PackedPtr::make(static_cast<std::uint64_t*>(nullptr), 7);
  EXPECT_EQ(p.ptr<std::uint64_t>(), nullptr);
  EXPECT_EQ(p.version(), 7);
}

TEST(PackedPtr, BumpAdvancesVersionAndSwapsPointer) {
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  const auto p = PackedPtr::make(&x, 41);
  const auto q = p.bumped(&y);
  EXPECT_EQ(q.ptr<std::uint64_t>(), &y);
  EXPECT_EQ(q.version(), 42);
}

TEST(PackedPtr, VersionWrapsAt16Bits) {
  std::uint64_t x = 0;
  const auto p = PackedPtr::make(&x, 0xFFFF);
  EXPECT_EQ(p.bumped(&x).version(), 0);
}

TEST(PackedPtr, EqualityComparesWholeWord) {
  std::uint64_t x = 0;
  EXPECT_EQ(PackedPtr::make(&x, 1), PackedPtr::make(&x, 1));
  EXPECT_NE(PackedPtr::make(&x, 1), PackedPtr::make(&x, 2));
}

// ---------------------------------------------------------------------------
// PRNGs
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  XorShift64Star a(123);
  XorShift64Star b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, StreamsAreIndependent) {
  auto a = XorShift64Star::for_stream(1, 0);
  auto b = XorShift64Star::for_stream(1, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.next() == b.next()) ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowStaysInRange) {
  XorShift64Star rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, ZeroSeedIsRemapped) {
  XorShift64Star rng(0);
  EXPECT_NE(rng.next(), 0u);  // all-zero state would be a fixed point
}

TEST(Rng, ChanceZeroNeverFires) {
  XorShift64Star rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0, 100));
  }
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  XorShift64Star rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.chance(25, 100) ? 1 : 0;
  }
  EXPECT_GT(hits, 2000);
  EXPECT_LT(hits, 3000);
}

// ---------------------------------------------------------------------------
// SpinBarrier
// ---------------------------------------------------------------------------

TEST(SpinBarrier, SingleParticipantPassesImmediately) {
  SpinBarrier barrier(1);
  EXPECT_TRUE(barrier.wait());
  EXPECT_TRUE(barrier.wait());  // reusable
}

TEST(SpinBarrier, ExactlyOneLastArriverPerPhase) {
  constexpr unsigned kThreads = 4;
  constexpr int kPhases = 25;
  SpinBarrier barrier(kThreads);
  std::atomic<int> last_count{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        if (barrier.wait()) {
          last_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(last_count.load(), kPhases);
}

TEST(SpinBarrier, NoPhaseSkewUnderContention) {
  constexpr unsigned kThreads = 4;
  constexpr int kPhases = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<bool> skew{false};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        counter.fetch_add(1);
        barrier.wait();
        // After the barrier every thread's increment for this phase landed.
        if (counter.load() < (p + 1) * static_cast<int>(kThreads)) {
          skew.store(true);
        }
        barrier.wait();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(skew.load());
}

}  // namespace
