// Tests for the Treiber free pool with single-word versioned top.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "evq/reclaim/free_pool.hpp"

namespace {

struct PoolNode {
  int id = 0;
  PoolNode* free_next = nullptr;
};

using Pool = evq::reclaim::FreePool<PoolNode>;

TEST(FreePool, EmptyPoolTakeReturnsNull) {
  Pool pool;
  EXPECT_EQ(pool.take(), nullptr);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(FreePool, PutThenTakeRoundTrips) {
  Pool pool;
  auto* n = pool.make();
  n->id = 7;
  pool.put(n);
  EXPECT_EQ(pool.size(), 1u);
  PoolNode* out = pool.take();
  EXPECT_EQ(out, n);
  EXPECT_EQ(out->id, 7);
  EXPECT_EQ(pool.size(), 0u);
  pool.put(out);  // return so the pool destructor frees it
}

TEST(FreePool, LifoOrder) {
  Pool pool;
  auto* a = pool.make();
  auto* b = pool.make();
  pool.put(a);
  pool.put(b);
  EXPECT_EQ(pool.take(), b);
  EXPECT_EQ(pool.take(), a);
  pool.put(a);
  pool.put(b);
}

TEST(FreePool, TakeOrNewAllocatesWhenEmpty) {
  Pool pool;
  PoolNode* n = pool.take_or_new();
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(pool.allocated(), 1u);
  pool.put(n);
  EXPECT_EQ(pool.take_or_new(), n);  // recycles, does not allocate
  EXPECT_EQ(pool.allocated(), 1u);
  pool.put(n);
}

TEST(FreePool, ConcurrentPutTakeConservesNodes) {
  // Threads continuously recycle nodes; at the end every node must be back
  // exactly once (no loss, no duplication through the versioned top).
  constexpr int kThreads = 4;
  constexpr int kNodesPerThread = 8;
  constexpr int kIters = 20000;
  Pool pool;
  std::set<PoolNode*> all;
  for (int i = 0; i < kThreads * kNodesPerThread; ++i) {
    auto* n = pool.make();
    all.insert(n);
    pool.put(n);
  }
  std::atomic<bool> double_take{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        PoolNode* n = pool.take();
        if (n == nullptr) {
          continue;
        }
        // Mark-in-use trick: id flips to 1 while held; seeing 1 on take
        // means two threads hold the same node.
        if (n->id != 0) {
          double_take.store(true);
        }
        n->id = 1;
        n->id = 0;
        pool.put(n);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(double_take.load());
  EXPECT_EQ(pool.size(), all.size());
  std::set<PoolNode*> back;
  while (PoolNode* n = pool.take()) {
    EXPECT_TRUE(back.insert(n).second) << "node handed out twice";
  }
  EXPECT_EQ(back, all);
  for (PoolNode* n : back) {
    pool.put(n);
  }
}

}  // namespace
