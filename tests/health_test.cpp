// Unit tests for evq::health (DESIGN.md §15): the Diagnoser's rule engine
// and hysteresis over synthetic inputs, the deterministic sink formats, and
// the Monitor's rate derivation over a private registry with hand-rolled
// counter deltas. The injection-driven end-to-end repros for each finding
// type live in tests/health_injection_test.cpp (torture binary).
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "evq/core/cas_array_queue.hpp"
#include "evq/health/health.hpp"
#include "evq/health/monitor.hpp"
#include "evq/telemetry/latency.hpp"
#include "evq/telemetry/metrics.hpp"
#include "evq/telemetry/registry.hpp"

namespace {

using namespace evq;
using health::Diagnoser;
using health::Finding;
using health::FindingType;
using health::HealthSnapshot;
using health::QueueRates;
using health::ThreadProgress;
using health::Thresholds;

QueueRates burn_rates(double skip_per_op, std::uint64_t ops = 100) {
  QueueRates q;
  q.queue = "q";
  q.ops = ops;
  q.slot_skip_per_op = skip_per_op;
  return q;
}

const Finding* find_finding(const std::vector<Finding>& findings, FindingType type) {
  for (const Finding& f : findings) {
    if (f.type == type) {
      return &f;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Diagnoser: rules + hysteresis
// ---------------------------------------------------------------------------

TEST(Diagnoser, TripsOnlyAfterConsecutiveBreaches) {
  Diagnoser d;  // default thresholds: trip_polls = 2
  auto f1 = d.evaluate(1, {burn_rates(0.5)}, {});
  EXPECT_EQ(find_finding(f1, FindingType::kThresholdBurn), nullptr)
      << "one breaching poll must not trip";
  auto f2 = d.evaluate(2, {burn_rates(0.5)}, {});
  const Finding* f = find_finding(f2, FindingType::kThresholdBurn);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->subject, "q");
  EXPECT_EQ(f->since_poll, 2u);
  EXPECT_DOUBLE_EQ(f->severity, 0.5);
}

TEST(Diagnoser, TransientSpikesNeverFlap) {
  Diagnoser d;
  for (std::uint64_t poll = 1; poll <= 8; ++poll) {
    // Alternate breach / clean: the streak never reaches trip_polls.
    const double skip = (poll % 2 == 1) ? 0.9 : 0.0;
    auto findings = d.evaluate(poll, {burn_rates(skip)}, {});
    EXPECT_TRUE(findings.empty()) << "poll " << poll;
  }
}

TEST(Diagnoser, ClearsOnlyAfterClearPolls) {
  Diagnoser d;  // clear_polls = 2
  d.evaluate(1, {burn_rates(0.5)}, {});
  d.evaluate(2, {burn_rates(0.5)}, {});  // active
  auto f3 = d.evaluate(3, {burn_rates(0.0)}, {});
  EXPECT_NE(find_finding(f3, FindingType::kThresholdBurn), nullptr)
      << "one clean poll must not clear";
  auto f4 = d.evaluate(4, {burn_rates(0.0)}, {});
  EXPECT_EQ(find_finding(f4, FindingType::kThresholdBurn), nullptr)
      << "clear_polls clean polls must clear";
  // A breach mid-clearing resets the clear streak.
  d.evaluate(5, {burn_rates(0.5)}, {});
  auto f6 = d.evaluate(6, {burn_rates(0.5)}, {});
  EXPECT_NE(find_finding(f6, FindingType::kThresholdBurn), nullptr);
}

TEST(Diagnoser, QuietRatesBelowMinOpsAreIgnored) {
  Diagnoser d;  // min_ops = 64
  for (std::uint64_t poll = 1; poll <= 4; ++poll) {
    auto findings = d.evaluate(poll, {burn_rates(0.9, /*ops=*/10)}, {});
    EXPECT_TRUE(findings.empty()) << "rates over a handful of ops are noise";
  }
}

TEST(Diagnoser, CombinerCollapseAcceptsSubmitVolumeGate) {
  // The combining facade's registry entry has ops == 0 (its op flow lands on
  // the "/ring" sibling); submit volume alone must open the gate.
  Diagnoser d;
  QueueRates q;
  q.queue = "comb";
  q.ops = 0;
  q.comb_submits = 500;
  q.comb_engagement = 0.95;
  q.comb_combines = 0;
  d.evaluate(1, {q}, {});
  auto findings = d.evaluate(2, {q}, {});
  const Finding* f = find_finding(findings, FindingType::kCombinerCollapse);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->subject, "comb");

  // A healthy combiner (passes complete, batches form) never collapses.
  Diagnoser healthy;
  q.comb_combines = 100;
  q.comb_mean_batch = 3.0;
  healthy.evaluate(1, {q}, {});
  auto none = healthy.evaluate(2, {q}, {});
  EXPECT_EQ(find_finding(none, FindingType::kCombinerCollapse), nullptr);
}

TEST(Diagnoser, SegmentLeakHasNoOpsGate) {
  Diagnoser d;  // seg_in_flight limit = 4
  QueueRates q;
  q.queue = "seg";
  q.ops = 0;  // a wedged consumer means NO ops — the leak must still trip
  q.seg_in_flight = 9;
  d.evaluate(1, {q}, {});
  auto findings = d.evaluate(2, {q}, {});
  const Finding* f = find_finding(findings, FindingType::kSegmentLeak);
  ASSERT_NE(f, nullptr);
  EXPECT_DOUBLE_EQ(f->severity, 9.0);
}

TEST(Diagnoser, ThreadStallSubjectsAreOrdinalScoped) {
  Diagnoser d;
  ThreadProgress stalled;
  stalled.thread_ord = 7;
  stalled.live = true;
  stalled.op_seq = 42;
  stalled.stalled_now = true;
  stalled.last_op = "push_ok";
  stalled.last_queue = "q";
  ThreadProgress fine;
  fine.thread_ord = 8;
  fine.live = true;
  d.evaluate(1, {}, {stalled, fine});
  auto findings = d.evaluate(2, {}, {stalled, fine});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].type, FindingType::kThreadStalled);
  EXPECT_EQ(findings[0].subject, "thread 7");
  EXPECT_NE(findings[0].detail.find("op_seq frozen at 42"), std::string::npos);
  EXPECT_NE(findings[0].detail.find("push_ok"), std::string::npos);
}

QueueRates thrash_rates(double llc_per_op, std::uint64_t perf_ops = 1000,
                        bool perf_live = true) {
  QueueRates q;
  q.queue = "hot";
  q.ops = perf_ops;
  q.perf_live = perf_live;
  q.perf_ops = perf_ops;
  q.llc_miss_per_op = llc_per_op;
  q.cycles_per_op = 500.0;
  q.ipc = 0.8;
  return q;
}

TEST(Diagnoser, CacheThrashTripsOnSustainedLlcMisses) {
  Diagnoser d;  // llc_miss_per_op threshold = 2.0, trip_polls = 2
  auto f1 = d.evaluate(1, {thrash_rates(5.0)}, {});
  EXPECT_EQ(find_finding(f1, FindingType::kCacheThrash), nullptr);
  auto f2 = d.evaluate(2, {thrash_rates(5.0)}, {});
  const Finding* f = find_finding(f2, FindingType::kCacheThrash);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->subject, "hot");
  EXPECT_DOUBLE_EQ(f->severity, 5.0);
  EXPECT_NE(f->detail.find("llc_miss/op 5"), std::string::npos);
  EXPECT_NE(f->detail.find("cycles/op 500"), std::string::npos);

  // clear_polls = 2 resident intervals clear it.
  d.evaluate(3, {thrash_rates(0.1)}, {});
  auto f4 = d.evaluate(4, {thrash_rates(0.1)}, {});
  EXPECT_EQ(find_finding(f4, FindingType::kCacheThrash), nullptr);
}

TEST(Diagnoser, CacheThrashRequiresLivePerfAndVolume) {
  // Without live perf rates (the degraded-host case) the detector must stay
  // silent no matter what the stale -1/default fields say...
  Diagnoser no_perf;
  for (std::uint64_t poll = 1; poll <= 4; ++poll) {
    auto findings = no_perf.evaluate(poll, {thrash_rates(9.0, 1000, /*perf_live=*/false)}, {});
    EXPECT_EQ(find_finding(findings, FindingType::kCacheThrash), nullptr) << poll;
  }
  // ...and a handful of attributed ops is noise, not thrash (min_ops = 64).
  Diagnoser low_volume;
  for (std::uint64_t poll = 1; poll <= 4; ++poll) {
    auto findings = low_volume.evaluate(poll, {thrash_rates(9.0, /*perf_ops=*/10)}, {});
    EXPECT_EQ(find_finding(findings, FindingType::kCacheThrash), nullptr) << poll;
  }
  // A resident queue under volume never trips.
  Diagnoser resident;
  for (std::uint64_t poll = 1; poll <= 4; ++poll) {
    auto findings = resident.evaluate(poll, {thrash_rates(0.5)}, {});
    EXPECT_EQ(find_finding(findings, FindingType::kCacheThrash), nullptr) << poll;
  }
}

TEST(Diagnoser, FindingTypeNamesAreStable) {
  EXPECT_STREQ(health::finding_type_name(FindingType::kThresholdBurn), "threshold_burn");
  EXPECT_STREQ(health::finding_type_name(FindingType::kCombinerCollapse),
               "combiner_collapse");
  EXPECT_STREQ(health::finding_type_name(FindingType::kSegmentLeak), "segment_leak");
  EXPECT_STREQ(health::finding_type_name(FindingType::kThreadStalled), "thread_stalled");
  EXPECT_STREQ(health::finding_type_name(FindingType::kCacheThrash), "cache_thrash");
}

// ---------------------------------------------------------------------------
// Sinks: deterministic formats
// ---------------------------------------------------------------------------

HealthSnapshot sink_snapshot() {
  HealthSnapshot snap;
  snap.poll = 4;
  QueueRates q;
  q.queue = "burn\"q";  // exercises label escaping end to end
  q.queue_id = 7;
  q.ops = 10;
  q.cas_fail_ratio = 0.5;
  q.slot_skip_per_op = 0.25;
  q.faa_waste = 0.1;
  q.comb_engagement = 0.75;
  q.comb_mean_batch = 1.5;
  q.seg_in_flight = 2;
  q.has_depth = true;
  q.depth = 3;
  q.push_p50_ns = 100.5;
  q.push_p99_ns = 200.0;
  snap.queues.push_back(q);
  ThreadProgress t;
  t.thread_ord = 3;
  t.live = true;
  t.op_seq = 42;
  t.last_op = "push";
  t.last_queue = "burn\"q";
  t.last_index = 5;
  t.last_retries = 1;
  snap.threads.push_back(t);
  Finding f;
  f.type = FindingType::kThresholdBurn;
  f.subject = "burn\"q";
  f.severity = 5.0;
  f.detail = "d";
  f.since_poll = 2;
  snap.findings.push_back(f);
  return snap;
}

TEST(HealthSinks, PrometheusRenderingIsPinned) {
  std::ostringstream os;
  health::render_prometheus_health(os, sink_snapshot());
  const std::string expected =
      "# HELP evq_health_rate Derived per-queue health rates over the last poll interval.\n"
      "# TYPE evq_health_rate gauge\n"
      "evq_health_rate{queue=\"burn\\\"q\",rate=\"ops\"} 10\n"
      "evq_health_rate{queue=\"burn\\\"q\",rate=\"cas_fail_ratio\"} 0.5\n"
      "evq_health_rate{queue=\"burn\\\"q\",rate=\"slot_skip_per_op\"} 0.25\n"
      "evq_health_rate{queue=\"burn\\\"q\",rate=\"faa_waste\"} 0.1\n"
      "evq_health_rate{queue=\"burn\\\"q\",rate=\"comb_engagement\"} 0.75\n"
      "evq_health_rate{queue=\"burn\\\"q\",rate=\"comb_mean_batch\"} 1.5\n"
      "evq_health_rate{queue=\"burn\\\"q\",rate=\"seg_in_flight\"} 2\n"
      "evq_health_rate{queue=\"burn\\\"q\",rate=\"depth\"} 3\n"
      "# HELP evq_health_latency_ns Sampled operation latency quantiles (SLO reservoir).\n"
      "# TYPE evq_health_latency_ns gauge\n"
      "evq_health_latency_ns{queue=\"burn\\\"q\",op=\"push\",quantile=\"p50\"} 100.5\n"
      "evq_health_latency_ns{queue=\"burn\\\"q\",op=\"push\",quantile=\"p99\"} 200\n"
      "# HELP evq_health_finding_active Health findings currently firing (after hysteresis).\n"
      "# TYPE evq_health_finding_active gauge\n"
      "evq_health_finding_active{type=\"threshold_burn\",subject=\"burn\\\"q\"} 1\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(HealthSinks, HealthJsonIsPinnedAndVersioned) {
  std::ostringstream os;
  health::health_json(os, sink_snapshot());
  const std::string expected =
      "{\"health_schema_version\":1,\"poll\":4,\"queues\":["
      "{\"queue\":\"burn\\\"q\",\"id\":7,\"ops\":10,\"rates\":{"
      "\"cas_fail_ratio\":0.5,\"slot_skip_per_op\":0.25,\"faa_waste\":0.1,"
      "\"comb_engagement\":0.75,\"comb_mean_batch\":1.5,\"seg_in_flight\":2},"
      "\"depth\":3,\"latency_ns\":{\"push_p50\":100.5,\"push_p99\":200}}],"
      "\"threads\":[{\"ord\":3,\"live\":true,\"op_seq\":42,\"stalled_now\":false,"
      "\"stalled_polls\":0,\"last_op\":\"push\",\"last_queue\":\"burn\\\"q\","
      "\"last_index\":5,\"last_retries\":1}],"
      "\"findings\":[{\"type\":\"threshold_burn\",\"subject\":\"burn\\\"q\","
      "\"severity\":5,\"since_poll\":2,\"detail\":\"d\"}]}\n";
  EXPECT_EQ(os.str(), expected);
}

// ---------------------------------------------------------------------------
// Monitor: rate derivation over a private registry
// ---------------------------------------------------------------------------

TEST(Monitor, DerivesRatesFromCounterDeltas) {
  telemetry::Registry reg;
  telemetry::ScopedQueueMetrics qm("unit-q", &reg);

  health::MonitorOptions o;
  o.registry = &reg;
  o.latency_sample_every = 0;
  health::Monitor m(o);
  m.poll();  // baseline

  auto bump = [&] {
    qm.inc(telemetry::Counter::kPushOk, 60);
    qm.inc(telemetry::Counter::kPopOk, 40);
    qm.inc(telemetry::Counter::kSlotSkip, 30);
    qm.inc(telemetry::Counter::kSlotScFail, 25);
    qm.inc(telemetry::Counter::kFaaReserve, 250);
    qm.inc(telemetry::Counter::kCombSubmit, 80);
    qm.inc(telemetry::Counter::kCombCombine, 4);
    qm.inc(telemetry::Counter::kCombBatchN, 10);
    qm.inc(telemetry::Counter::kSegAlloc, 3);
    qm.inc(telemetry::Counter::kSegRetire, 1);
  };
  bump();
  HealthSnapshot snap = m.poll();
  ASSERT_EQ(snap.queues.size(), 1u);
  const QueueRates& r = snap.queues[0];
  EXPECT_EQ(r.queue, "unit-q");
  EXPECT_EQ(r.ops, 100u);
  EXPECT_DOUBLE_EQ(r.slot_skip_per_op, 0.3);
  EXPECT_DOUBLE_EQ(r.cas_fail_ratio, 0.2);  // 25 / (25 + 60 + 40)
  EXPECT_DOUBLE_EQ(r.faa_waste, 0.2);       // (250 − 2·100) / 250
  EXPECT_DOUBLE_EQ(r.comb_engagement, 0.8);
  EXPECT_DOUBLE_EQ(r.comb_mean_batch, 2.5);
  EXPECT_EQ(r.seg_in_flight, 2);

  // Burn trips on the second consecutive breaching interval.
  bump();
  snap = m.poll();
  EXPECT_NE(find_finding(snap.findings, FindingType::kThresholdBurn), nullptr);
  EXPECT_EQ(find_finding(snap.findings, FindingType::kCombinerCollapse), nullptr)
      << "healthy batches (mean 2.5) must not read as collapse";

  // An idle interval: rates are deltas (zero), but seg_in_flight stays
  // cumulative.
  snap = m.poll();
  ASSERT_EQ(snap.queues.size(), 1u);
  EXPECT_EQ(snap.queues[0].ops, 0u);
  EXPECT_DOUBLE_EQ(snap.queues[0].slot_skip_per_op, 0.0);
  EXPECT_EQ(snap.queues[0].seg_in_flight, 4);  // 6 allocs − 2 retires, all time
}

TEST(Monitor, PairsCombiningFacadeWithItsRingEntry) {
  telemetry::Registry reg;
  telemetry::ScopedQueueMetrics facade("fc", &reg);
  telemetry::ScopedQueueMetrics ring("fc/ring", &reg);

  health::MonitorOptions o;
  o.registry = &reg;
  o.latency_sample_every = 0;
  health::Monitor m(o);
  m.poll();  // baseline

  // 100 facade submits, 100 ring ops, zero facade ops: engagement must be
  // computed over the pair's flow (1.0), not the facade's op count (∞/0).
  facade.inc(telemetry::Counter::kCombSubmit, 100);
  ring.inc(telemetry::Counter::kPushOk, 60);
  ring.inc(telemetry::Counter::kPopOk, 40);
  HealthSnapshot snap = m.poll();
  const QueueRates* fc = nullptr;
  for (const QueueRates& q : snap.queues) {
    if (q.queue == "fc") {
      fc = &q;
    }
  }
  ASSERT_NE(fc, nullptr);
  EXPECT_EQ(fc->ops, 0u);
  EXPECT_DOUBLE_EQ(fc->comb_engagement, 1.0);
}

TEST(Monitor, LatencyReservoirFeedsPercentiles) {
  health::MonitorOptions o;
  o.latency_sample_every = 1;  // sample every op for the test
  health::Monitor m(o);
  m.poll();  // baseline

  CasArrayQueue<int> q(8, "health-lat-q");
  auto h = q.handle();
  int v = 0;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(q.try_push(h, &v));
    ASSERT_NE(q.try_pop(h), nullptr);
  }
  HealthSnapshot snap = m.poll();
  const QueueRates* r = nullptr;
  for (const QueueRates& qr : snap.queues) {
    if (qr.queue == "health-lat-q") {
      r = &qr;
    }
  }
  ASSERT_NE(r, nullptr);
#if EVQ_TELEMETRY
  EXPECT_GE(r->push_p50_ns, 0.0) << "reservoir must hold push samples";
  EXPECT_GE(r->pop_p50_ns, 0.0) << "reservoir must hold pop samples";
  EXPECT_GE(r->push_p99_ns, r->push_p50_ns);
  EXPECT_GE(r->pop_p99_ns, r->pop_p50_ns);
#endif
}

TEST(Monitor, BackgroundPollerStartsAndStops) {
  health::MonitorOptions o;
  o.latency_sample_every = 0;
  health::Monitor m(o);
  m.start(std::chrono::milliseconds(1));
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (m.last().poll == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  m.stop();
  EXPECT_GE(m.last().poll, 1u);
  const std::uint64_t settled = m.last().poll;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(m.last().poll, settled) << "stop() must join the poller";
  m.stop();  // idempotent
}

}  // namespace
