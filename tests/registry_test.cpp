// Tests for the population-oblivious LLSCvar registry
// (Fig. 5 Register / ReRegister / Deregister).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "evq/registry/registry.hpp"

namespace {

using namespace evq::registry;

TEST(Registry, RegisterReturnsClaimedVariable) {
  Registry reg;
  LlscVar* var = reg.register_var();
  ASSERT_NE(var, nullptr);
  EXPECT_EQ(var->r.load(), 1u);
  EXPECT_EQ(reg.list_length(), 1u);
  reg.deregister(var);
}

TEST(Registry, DistinctVariablesForConcurrentOwners) {
  Registry reg;
  LlscVar* a = reg.register_var();
  LlscVar* b = reg.register_var();
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.list_length(), 2u);
  reg.deregister(a);
  reg.deregister(b);
}

TEST(Registry, DeregisterMakesVariableRecyclable) {
  Registry reg;
  LlscVar* a = reg.register_var();
  reg.deregister(a);
  LlscVar* b = reg.register_var();
  EXPECT_EQ(a, b);  // recycled, not grown
  EXPECT_EQ(reg.list_length(), 1u);
  reg.deregister(b);
}

TEST(Registry, ReaderRefBlocksRecycling) {
  Registry reg;
  LlscVar* a = reg.register_var();
  a->r.fetch_add(1);  // simulate a foreign reader (Fig. 5 L7)
  reg.deregister(a);  // owner leaves; r drops to 1, not 0
  LlscVar* b = reg.register_var();
  EXPECT_NE(a, b) << "variable with an active reader must not be recycled";
  a->r.fetch_sub(1);  // reader leaves (L14)
  LlscVar* c = reg.register_var();
  EXPECT_EQ(c, a);  // now recyclable
  reg.deregister(b);
  reg.deregister(c);
}

TEST(Registry, ReregisterKeepsVariableWithoutReaders) {
  Registry reg;
  LlscVar* a = reg.register_var();
  EXPECT_EQ(reg.reregister(a), a);  // r == 1: same variable back
  reg.deregister(a);
}

TEST(Registry, ReregisterSwapsVariableWithReaders) {
  Registry reg;
  LlscVar* a = reg.register_var();
  a->r.fetch_add(1);  // foreign reader present
  LlscVar* b = reg.reregister(a);
  EXPECT_NE(b, a) << "ReRegister must abandon a variable that has readers";
  EXPECT_EQ(a->r.load(), 1u);  // owner count gone, reader count remains
  a->r.fetch_sub(1);
  reg.deregister(b);
}

TEST(Registry, SpaceTracksMaxConcurrencyNotTotalThreads) {
  // The paper's population-oblivious claim: serially re-registering many
  // "threads" reuses one variable.
  Registry reg;
  for (int i = 0; i < 100; ++i) {
    LlscVar* v = reg.register_var();
    reg.deregister(v);
  }
  EXPECT_EQ(reg.list_length(), 1u);
}

TEST(Registry, ClaimedCountReflectsLiveOwners) {
  Registry reg;
  LlscVar* a = reg.register_var();
  LlscVar* b = reg.register_var();
  EXPECT_EQ(reg.claimed_count(), 2u);
  reg.deregister(a);
  EXPECT_EQ(reg.claimed_count(), 1u);
  reg.deregister(b);
  EXPECT_EQ(reg.claimed_count(), 0u);
}

TEST(Registry, RegistrationRaiiReleasesOnDestruction) {
  Registry reg;
  {
    Registration r1(reg);
    EXPECT_EQ(reg.claimed_count(), 1u);
  }
  EXPECT_EQ(reg.claimed_count(), 0u);
}

TEST(Registry, RegistrationMoveTransfersOwnership) {
  Registry reg;
  Registration r1(reg);
  LlscVar* var = r1.get();
  Registration r2(std::move(r1));
  EXPECT_EQ(r2.get(), var);
  EXPECT_EQ(r1.get(), nullptr);
  EXPECT_EQ(reg.claimed_count(), 1u);
}

TEST(Registry, FreshReturnsReaderFreeVariable) {
  Registry reg;
  Registration r1(reg);
  LlscVar* var = r1.get();
  var->r.fetch_add(1);  // reader appears
  LlscVar* fresh = r1.fresh();
  EXPECT_NE(fresh, var);
  EXPECT_EQ(fresh->r.load(), 1u);
  var->r.fetch_sub(1);
}

TEST(Registry, ConcurrentRegistrationIsExclusive) {
  // Hammer register/deregister from several threads; no variable may ever
  // be owned twice, and the list length must stay near max concurrency.
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  Registry reg;
  std::atomic<bool> double_claim{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        LlscVar* v = reg.register_var();
        // Claim gives r >= 1; if another owner claimed the same var the
        // CAS(0 -> 1) discipline is broken and r would briefly be > 1
        // without any reader. We can't observe that directly, but we can
        // check the var is never handed out with r == 0.
        if (v->r.load() == 0) {
          double_claim.store(true);
        }
        reg.deregister(v);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(double_claim.load());
  EXPECT_LE(reg.list_length(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(reg.claimed_count(), 0u);
}

TEST(Registry, ConcurrentDistinctness) {
  // All threads hold a registration simultaneously: variables must be
  // pairwise distinct.
  constexpr int kThreads = 8;
  Registry reg;
  std::vector<LlscVar*> vars(kThreads, nullptr);
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      vars[t] = reg.register_var();
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
        std::this_thread::yield();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::set<LlscVar*> unique(vars.begin(), vars.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
  for (LlscVar* v : vars) {
    reg.deregister(v);
  }
}

}  // namespace
