// Tag-overflow and index-wrap edges of the single-word synchronization
// cells, with the ABA windows forced deterministically through the
// fault-injection substrate (this TU is part of evq_torture and is compiled
// with EVQ_INJECT_ENABLED=1).
//
// What is being pinned down:
//  * PackedLlsc's 16-bit version makes its LL/SC emulation exact only up to
//    2^16 successful writes inside one reservation window (the bound the
//    paper accepts for its indices, here with a smaller constant). The first
//    two tests EXHIBIT the bound — a stale sc really does land after an
//    exact wrap, and the 64-bit VersionedLlsc rejects the same history.
//  * Algorithm 1 does not rest on the cell version alone: the E10/D10 index
//    re-validation rejects a stale operation even when its slot's version
//    has wrapped to an identical word. The third test parks a pusher in
//    that exact state (via a scripted stall) and shows the queue stays
//    correct — defense in depth over the wrapped cell.
//  * CounterCell's CAS==LL/SC equivalence holds across the 2^64 index wrap.
//    (CounterCell deliberately has NO spurious-failure site: the one-shot
//    index advances E13/E17/D13/D17 read an sc failure as "someone else
//    advanced the index", so forcing one would forge an execution no real
//    CAS can produce — see the comment in counter_cell.hpp. Spurious
//    failure is injected only where a retry loop absorbs it, and the last
//    test checks that contract on PackedLlsc.)
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "evq/core/llsc_array_queue.hpp"
#include "evq/inject/inject.hpp"
#include "evq/inject/profile.hpp"
#include "evq/llsc/counter_cell.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/llsc/versioned_llsc.hpp"
#include "evq/verify/fifo_checkers.hpp"

#if !defined(EVQ_INJECT_ENABLED) || !EVQ_INJECT_ENABLED
#error "tag_wrap_test.cpp must be compiled with EVQ_INJECT_ENABLED=1"
#endif

namespace evq {
namespace {

using verify::Token;

TEST(PackedLlscWrap, StaleScSucceedsAfterExactVersionWrap) {
  Token a{0, 0};
  Token b{0, 1};
  Token c{0, 2};
  llsc::PackedLlsc<Token*> cell(&a);
  const std::uint16_t v0 = cell.version();

  auto link = cell.ll();
  // 2^16 successful writes ending on the linked value: the version field
  // wraps to exactly where the reservation saw it.
  for (int i = 0; i < 1 << 15; ++i) {
    cell.store(&b);
    cell.store(&a);
  }
  ASSERT_EQ(cell.version(), v0);
  ASSERT_EQ(cell.load(), &a);

  // The emulation can no longer tell the difference — this IS the bound.
  EXPECT_TRUE(cell.validate(link));
  EXPECT_TRUE(cell.sc(link, &c));
  EXPECT_EQ(cell.load(), &c);
}

TEST(PackedLlscWrap, VersionedCellRejectsTheSameHistory) {
  Token a{0, 0};
  Token b{0, 1};
  Token c{0, 2};
  llsc::VersionedLlsc<Token*> cell(&a);

  auto link = cell.ll();
  for (int i = 0; i < 1 << 15; ++i) {
    cell.store(&b);
    cell.store(&a);
  }
  ASSERT_EQ(cell.load(), &a);

  // 64-bit version: 2^16 writes move it, full stop.
  EXPECT_FALSE(cell.validate(link));
  EXPECT_FALSE(cell.sc(link, &c));
  EXPECT_EQ(cell.load(), &a);
}

/// Park a pusher between its slot LL and the E10 index re-validation, wrap
/// its slot's 16-bit version to an IDENTICAL word underneath it (32768
/// push/pop cycles through the capacity-2 ring), and let it resume. The
/// slot cell alone would now accept the stale sc (first test above) — the
/// queue must still be correct because E10 sees that Tail moved.
TEST(PackedLlscWrap, QueueIndexRevalidationMasksCellWrap) {
  LlscArrayQueue<Token, llsc::PackedLlsc> q(2);
  inject::StallGate gate(1u << 26);
  const inject::Profile script{"scripted-wrap-stall",
                               "park one pusher with a reservation while its slot version wraps",
                               /*sc_fail=*/0, 100, "",
                               /*delay=*/0, 100, 0, "",
                               /*stall=*/"core.llsc.push.reserved", inject::Role::kAny};

  Token x{0, 0};
  std::thread victim([&] {
    inject::ProfileInjector injector(script, /*seed=*/1, /*thread_id=*/0,
                                     inject::Role::kProducer, &gate);
    inject::ScopedInjector install(injector);
    auto h = q.handle();
    EXPECT_TRUE(q.try_push(h, &x));
  });
  for (int i = 0; i < 1 << 26 && !gate.parked(); ++i) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(gate.parked()) << "victim never reached core.llsc.push.reserved";

  // 65536 single-item cycles: slot 0 takes one push-write and one pop-write
  // every second cycle — exactly 2^16 version bumps — and Head == Tail ends
  // back on slot 0 with the slot word bit-identical to the victim's link.
  auto h = q.handle();
  Token filler{1, 0};
  for (int i = 0; i < 1 << 16; ++i) {
    ASSERT_TRUE(q.try_push(h, &filler));
    ASSERT_EQ(q.try_pop(h), &filler);
  }
  gate.release();
  victim.join();

  // The victim's push must have landed exactly once, at the NEW tail.
  EXPECT_EQ(q.try_pop(h), &x);
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(CounterCellEdge, IncrementWrapsAtUint64Max) {
  llsc::CounterCell counter(~std::uint64_t{0});
  auto link = counter.ll();
  EXPECT_EQ(link.value(), ~std::uint64_t{0});
  // The 2^64 index wrap the paper writes off as unreachable — the cell
  // itself handles it like any other increment.
  EXPECT_TRUE(counter.sc(link, link.value() + 1));
  EXPECT_EQ(counter.load(), 0u);
  EXPECT_FALSE(counter.validate(link));
}

TEST(CounterCellEdge, LosingContenderFailsAndRevalidates) {
  llsc::CounterCell counter(7);
  auto first = counter.ll();
  auto second = counter.ll();
  EXPECT_TRUE(counter.sc(first, 8));
  EXPECT_FALSE(counter.sc(second, 8)) << "stale link must not double-advance the index";
  EXPECT_FALSE(counter.validate(second));
  EXPECT_EQ(counter.load(), 8u);
}

/// Forces one SC failure via the substrate and checks the contract the
/// queues rely on: an injected failure attempts NO hardware operation, so
/// the cell is untouched and the very same link still succeeds on retry
/// (indistinguishable from a reservation lost to preemption).
class ScFailOnce final : public inject::Injector {
 public:
  explicit ScFailOnce(const char* match) noexcept : match_(match) {}

  void at_point(const char* /*point*/) noexcept override {}

  bool fail_sc(const char* point) noexcept override {
    if (!armed_ || std::strstr(point, match_) == nullptr) {
      return false;
    }
    armed_ = false;
    return true;
  }

 private:
  const char* match_;
  bool armed_ = true;
};

TEST(PackedLlscWrap, InjectedScFailureLeavesWordUntouched) {
  Token a{0, 0};
  Token b{0, 1};
  llsc::PackedLlsc<Token*> cell(&a);
  ScFailOnce injector("packed_llsc.sc");
  inject::ScopedInjector install(injector);

  auto link = cell.ll();
  const std::uint16_t v0 = cell.version();
  EXPECT_FALSE(cell.sc(link, &b));
  EXPECT_EQ(cell.load(), &a);
  EXPECT_EQ(cell.version(), v0);
  EXPECT_TRUE(cell.sc(link, &b));
  EXPECT_EQ(cell.load(), &b);
}

}  // namespace
}  // namespace evq
