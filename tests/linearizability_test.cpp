// Tests for the Wing–Gong-style exhaustive linearizability checker, plus
// end-to-end checks of recorded histories from the real queues.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "evq/core/cas_array_queue.hpp"
#include "evq/core/combining_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/scq_queue.hpp"
#include "evq/core/segmented_queue.hpp"
#include "evq/verify/history.hpp"
#include "evq/verify/lin_check.hpp"

namespace {

using namespace evq;
using namespace evq::verify;

Operation push_op(std::uint64_t v, bool ok, std::uint64_t inv, std::uint64_t resp,
                  std::uint32_t thread = 0) {
  return Operation{OpKind::kPush, v, 0, ok, inv, resp, thread};
}

Operation pop_op(std::uint64_t result, std::uint64_t inv, std::uint64_t resp,
                 std::uint32_t thread = 0) {
  return Operation{OpKind::kPop, 0, result, true, inv, resp, thread};
}

/// Sub-op of a try_push_n batch: shares the call window, ordered by rank.
Operation batch_push_op(std::uint64_t v, bool ok, std::uint64_t inv, std::uint64_t resp,
                        std::uint32_t thread, std::uint64_t batch, std::uint32_t rank) {
  return Operation{OpKind::kPush, v, 0, ok, inv, resp, thread, batch, rank};
}

/// Sub-op of a try_pop_n batch.
Operation batch_pop_op(std::uint64_t result, std::uint64_t inv, std::uint64_t resp,
                       std::uint32_t thread, std::uint64_t batch, std::uint32_t rank) {
  return Operation{OpKind::kPop, 0, result, true, inv, resp, thread, batch, rank};
}

// ---------------------------------------------------------------------------
// Sequential histories (precedence fully ordered)
// ---------------------------------------------------------------------------

TEST(LinCheck, AcceptsSequentialFifo) {
  LinearizabilityChecker chk(0);
  EXPECT_TRUE(chk.check({push_op(1, true, 0, 1), push_op(2, true, 2, 3), pop_op(1, 4, 5),
                         pop_op(2, 6, 7)}));
}

TEST(LinCheck, RejectsLifoOrder) {
  LinearizabilityChecker chk(0);
  EXPECT_FALSE(chk.check({push_op(1, true, 0, 1), push_op(2, true, 2, 3), pop_op(2, 4, 5),
                          pop_op(1, 6, 7)}));
}

TEST(LinCheck, RejectsPopOfNeverPushedValue) {
  LinearizabilityChecker chk(0);
  EXPECT_FALSE(chk.check({push_op(1, true, 0, 1), pop_op(9, 2, 3)}));
}

TEST(LinCheck, AcceptsEmptyPopBeforeAnyPush) {
  LinearizabilityChecker chk(0);
  EXPECT_TRUE(chk.check({pop_op(0, 0, 1), push_op(1, true, 2, 3), pop_op(1, 4, 5)}));
}

TEST(LinCheck, RejectsEmptyPopWhileItemQueued) {
  LinearizabilityChecker chk(0);
  EXPECT_FALSE(chk.check({push_op(1, true, 0, 1), pop_op(0, 2, 3)}));
}

TEST(LinCheck, RejectsDoublePop) {
  LinearizabilityChecker chk(0);
  EXPECT_FALSE(chk.check({push_op(1, true, 0, 1), pop_op(1, 2, 3), pop_op(1, 4, 5)}));
}

// ---------------------------------------------------------------------------
// Bounded-queue semantics
// ---------------------------------------------------------------------------

TEST(LinCheck, AcceptsLegitimateFullReport) {
  LinearizabilityChecker chk(1);
  EXPECT_TRUE(chk.check({push_op(1, true, 0, 1), push_op(2, false, 2, 3), pop_op(1, 4, 5)}));
}

TEST(LinCheck, RejectsBogusFullReport) {
  LinearizabilityChecker chk(2);  // capacity 2, only one item in
  EXPECT_FALSE(chk.check({push_op(1, true, 0, 1), push_op(2, false, 2, 3)}));
}

TEST(LinCheck, RejectsPushBeyondCapacity) {
  LinearizabilityChecker chk(1);
  EXPECT_FALSE(chk.check({push_op(1, true, 0, 1), push_op(2, true, 2, 3)}));
}

// ---------------------------------------------------------------------------
// Concurrent (overlapping) histories
// ---------------------------------------------------------------------------

TEST(LinCheck, OverlappingOpsMayReorder) {
  // push(1) and push(2) overlap; pop sees 2 first — legal, because the
  // pushes may linearize in either order.
  LinearizabilityChecker chk(0);
  EXPECT_TRUE(chk.check({push_op(1, true, 0, 10, 0), push_op(2, true, 1, 9, 1),
                         pop_op(2, 11, 12), pop_op(1, 13, 14)}));
}

TEST(LinCheck, NonOverlappingOpsMayNot) {
  // push(1) completes strictly before push(2) begins; pop order 2,1 is a
  // genuine FIFO violation.
  LinearizabilityChecker chk(0);
  EXPECT_FALSE(chk.check({push_op(1, true, 0, 1, 0), push_op(2, true, 2, 3, 1),
                          pop_op(2, 4, 5), pop_op(1, 6, 7)}));
}

TEST(LinCheck, PopOverlappingPushMaySeeIt) {
  // pop overlaps the only push: both pop()=v and pop()=empty are legal.
  LinearizabilityChecker chk(0);
  EXPECT_TRUE(chk.check({push_op(5, true, 0, 10), pop_op(5, 1, 9, 1)}));
  EXPECT_TRUE(chk.check({push_op(5, true, 0, 10), pop_op(0, 1, 9, 1)}));
}

TEST(LinCheck, EmptyPopAfterCompletedPushIsIllegal) {
  LinearizabilityChecker chk(0);
  EXPECT_FALSE(chk.check({push_op(5, true, 0, 1), pop_op(0, 2, 3, 1)}));
}

TEST(LinCheck, ThreeThreadInterleavingSearchesAllOrders) {
  // pushes of 1,2,3 all overlap; the pops (sequential afterwards) may report
  // any permutation order — every one must be accepted.
  LinearizabilityChecker chk(0);
  for (std::uint64_t a = 1; a <= 3; ++a) {
    for (std::uint64_t b = 1; b <= 3; ++b) {
      for (std::uint64_t c = 1; c <= 3; ++c) {
        if (a == b || b == c || a == c) {
          continue;
        }
        EXPECT_TRUE(chk.check({push_op(1, true, 0, 10, 0), push_op(2, true, 1, 11, 1),
                               push_op(3, true, 2, 12, 2), pop_op(a, 20, 21), pop_op(b, 22, 23),
                               pop_op(c, 24, 25)}))
            << a << b << c;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Batch operations (try_push_n / try_pop_n histories)
// ---------------------------------------------------------------------------

TEST(LinCheck, BatchPushSubOpsKeepArgumentOrder) {
  // One try_push_n(1,2): pops must observe 1 before 2 even though the two
  // sub-ops share a window (which, without the batch constraint, would let
  // them linearize in either order).
  LinearizabilityChecker chk(0);
  EXPECT_TRUE(chk.check({batch_push_op(1, true, 0, 1, 0, 7, 0), batch_push_op(2, true, 0, 1, 0, 7, 1),
                         pop_op(1, 2, 3), pop_op(2, 4, 5)}));
  EXPECT_FALSE(chk.check({batch_push_op(1, true, 0, 1, 0, 7, 0),
                          batch_push_op(2, true, 0, 1, 0, 7, 1), pop_op(2, 2, 3),
                          pop_op(1, 4, 5)}));
}

TEST(LinCheck, BatchPopSubOpsKeepReturnOrder) {
  LinearizabilityChecker chk(0);
  EXPECT_TRUE(chk.check({push_op(1, true, 0, 1), push_op(2, true, 2, 3),
                         batch_pop_op(1, 4, 5, 0, 9, 0), batch_pop_op(2, 4, 5, 0, 9, 1)}));
  // A pop_n that CLAIMS it returned (2,1) is a FIFO violation.
  EXPECT_FALSE(chk.check({push_op(1, true, 0, 1), push_op(2, true, 2, 3),
                          batch_pop_op(2, 4, 5, 0, 9, 0), batch_pop_op(1, 4, 5, 0, 9, 1)}));
}

TEST(LinCheck, ConcurrentOpMayInterleaveInsideBatchWindow) {
  // push(3) from another thread overlaps the try_push_n(1,2) window: pops of
  // 1,3,2 are legal (3 linearized between the batch's sub-ops). This is the
  // case the shared-window encoding exists for — carving the window into
  // per-sub-op sub-intervals would wrongly reject it.
  LinearizabilityChecker chk(0);
  EXPECT_TRUE(chk.check({batch_push_op(1, true, 0, 10, 0, 7, 0),
                         batch_push_op(2, true, 0, 10, 0, 7, 1), push_op(3, true, 1, 9, 1),
                         pop_op(1, 11, 12), pop_op(3, 13, 14), pop_op(2, 15, 16)}));
}

TEST(LinCheck, BatchShortPushBoundaryIsOneFullReport) {
  // Capacity 2: try_push_n(1,2,3) lands 2 and reports full on the third —
  // legal. Claiming full after landing only ONE item is not (the queue had
  // room).
  LinearizabilityChecker chk(2);
  EXPECT_TRUE(chk.check({batch_push_op(1, true, 0, 1, 0, 7, 0),
                         batch_push_op(2, true, 0, 1, 0, 7, 1),
                         batch_push_op(3, false, 0, 1, 0, 7, 2)}));
  EXPECT_FALSE(chk.check({batch_push_op(1, true, 0, 1, 0, 7, 0),
                          batch_push_op(3, false, 0, 1, 0, 7, 1)}));
}

TEST(LinCheck, BatchShortPopBoundaryIsOneEmptyReport) {
  // try_pop_n(3) against a single queued item: one pop()=v plus one
  // pop()=empty — legal. An empty report while an item remains queued is not.
  LinearizabilityChecker chk(0);
  EXPECT_TRUE(chk.check({push_op(1, true, 0, 1), batch_pop_op(1, 2, 3, 0, 9, 0),
                         batch_pop_op(0, 2, 3, 0, 9, 1)}));
  EXPECT_FALSE(chk.check({push_op(1, true, 0, 1), push_op(2, true, 10, 11),
                          batch_pop_op(1, 12, 13, 0, 9, 0), batch_pop_op(0, 12, 13, 0, 9, 1)}));
}

TEST(LinCheck, RecorderBatchEndsShareWindowAndBatchId) {
  HistoryRecorder recorder(1, 8);
  const std::uint64_t values[3] = {1, 2, 3};
  const std::uint64_t inv = recorder.begin();
  recorder.end_push_n(0, inv, values, 3, 2);  // attempted 3, landed 2
  History h = recorder.collect();
  ASSERT_EQ(h.size(), 3u);  // two ok pushes + one boundary full
  EXPECT_TRUE(h[0].ok);
  EXPECT_TRUE(h[1].ok);
  EXPECT_FALSE(h[2].ok);
  EXPECT_EQ(h[2].arg, 3u);
  for (const Operation& op : h) {
    EXPECT_EQ(op.invoke, h[0].invoke);
    EXPECT_EQ(op.response, h[0].response);
    EXPECT_EQ(op.batch, h[0].batch);
    EXPECT_NE(op.batch, 0u);
  }
  EXPECT_EQ(h[0].batch_rank, 0u);
  EXPECT_EQ(h[1].batch_rank, 1u);
  EXPECT_EQ(h[2].batch_rank, 2u);
}

// ---------------------------------------------------------------------------
// Recorded histories from the real queues
// ---------------------------------------------------------------------------

TEST(LinCheck, RecordedCasQueueHistoriesAreLinearizable) {
  // Unique-pointer-per-value variant: each push uses a distinct arena cell,
  // so pointer identity <-> value identity and the model applies exactly.
  constexpr std::uint32_t kThreads = 3;
  constexpr int kPushesPerThread = 3;
  for (int round = 0; round < 20; ++round) {
    CasArrayQueue<std::uint64_t> queue(2);  // tiny capacity: full is reachable
    static std::uint64_t arena[kThreads * kPushesPerThread + 1];
    for (std::uint64_t i = 1; i <= kThreads * kPushesPerThread; ++i) {
      arena[i] = i;
    }
    HistoryRecorder recorder(kThreads, 2 * kPushesPerThread);
    std::vector<std::thread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto h = queue.handle();
        for (int i = 0; i < kPushesPerThread; ++i) {
          const std::uint64_t value = t * kPushesPerThread + i + 1;
          const std::uint64_t inv = recorder.begin();
          const bool ok = queue.try_push(h, &arena[value]);
          recorder.end_push(t, inv, value, ok);
          const std::uint64_t inv2 = recorder.begin();
          std::uint64_t* out = queue.try_pop(h);
          recorder.end_pop(t, inv2, out == nullptr ? 0 : *out);
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    LinearizabilityChecker chk(queue.capacity());
    EXPECT_TRUE(chk.check(recorder.collect())) << "round " << round;
  }
}

TEST(LinCheck, RecordedLlscQueueHistoriesAreLinearizable) {
  constexpr std::uint32_t kThreads = 3;
  constexpr int kPushesPerThread = 3;
  for (int round = 0; round < 20; ++round) {
    LlscArrayQueue<std::uint64_t> queue(2);
    static std::uint64_t arena[kThreads * kPushesPerThread + 1];
    for (std::uint64_t i = 1; i <= kThreads * kPushesPerThread; ++i) {
      arena[i] = i;
    }
    HistoryRecorder recorder(kThreads, 2 * kPushesPerThread);
    std::vector<std::thread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto h = queue.handle();
        for (int i = 0; i < kPushesPerThread; ++i) {
          const std::uint64_t value = t * kPushesPerThread + i + 1;
          const std::uint64_t inv = recorder.begin();
          const bool ok = queue.try_push(h, &arena[value]);
          recorder.end_push(t, inv, value, ok);
          const std::uint64_t inv2 = recorder.begin();
          std::uint64_t* out = queue.try_pop(h);
          recorder.end_pop(t, inv2, out == nullptr ? 0 : *out);
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    LinearizabilityChecker chk(queue.capacity());
    EXPECT_TRUE(chk.check(recorder.collect())) << "round " << round;
  }
}

// The FAA-generation queue: full/empty reports come off the threshold and
// free-index machinery rather than an index comparison, so the recorded
// histories are the direct evidence those reports linearize.
TEST(LinCheck, RecordedScqQueueHistoriesAreLinearizable) {
  constexpr std::uint32_t kThreads = 3;
  constexpr int kPushesPerThread = 3;
  for (int round = 0; round < 20; ++round) {
    ScqQueue<std::uint64_t> queue(2);
    static std::uint64_t arena[kThreads * kPushesPerThread + 1];
    for (std::uint64_t i = 1; i <= kThreads * kPushesPerThread; ++i) {
      arena[i] = i;
    }
    HistoryRecorder recorder(kThreads, 2 * kPushesPerThread);
    std::vector<std::thread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto h = queue.handle();
        for (int i = 0; i < kPushesPerThread; ++i) {
          const std::uint64_t value = t * kPushesPerThread + i + 1;
          const std::uint64_t inv = recorder.begin();
          const bool ok = queue.try_push(h, &arena[value]);
          recorder.end_push(t, inv, value, ok);
          const std::uint64_t inv2 = recorder.begin();
          std::uint64_t* out = queue.try_pop(h);
          recorder.end_pop(t, inv2, out == nullptr ? 0 : *out);
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    LinearizabilityChecker chk(queue.capacity());
    EXPECT_TRUE(chk.check(recorder.collect())) << "round " << round;
  }
}

// The segmented composition: segment capacity 2 forces seal/append/retire
// transitions inside nearly every round, so the recorded histories cover the
// cross-segment handoff. Capacity 0 = unbounded for the checker (a push may
// never legally report full).
TEST(LinCheck, RecordedSegmentedQueueHistoriesAreLinearizable) {
  constexpr std::uint32_t kThreads = 3;
  constexpr int kPushesPerThread = 3;
  for (int round = 0; round < 20; ++round) {
    SegmentedQueue<ScqQueue<std::uint64_t>> queue(2, "lin-seg-scq");
    static std::uint64_t arena[kThreads * kPushesPerThread + 1];
    for (std::uint64_t i = 1; i <= kThreads * kPushesPerThread; ++i) {
      arena[i] = i;
    }
    HistoryRecorder recorder(kThreads, 2 * kPushesPerThread);
    std::vector<std::thread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto h = queue.handle();
        for (int i = 0; i < kPushesPerThread; ++i) {
          const std::uint64_t value = t * kPushesPerThread + i + 1;
          const std::uint64_t inv = recorder.begin();
          const bool ok = queue.try_push(h, &arena[value]);
          recorder.end_push(t, inv, value, ok);
          const std::uint64_t inv2 = recorder.begin();
          std::uint64_t* out = queue.try_pop(h);
          recorder.end_pop(t, inv2, out == nullptr ? 0 : *out);
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    LinearizabilityChecker chk(0);
    EXPECT_TRUE(chk.check(recorder.collect())) << "round " << round;
  }
}

// The combining facade: three threads hammering a capacity-2 inner ring keep
// the combiner lock contended, so the recorded histories exercise announced
// ops completed by PEER combiners — the cross-thread helping whose
// linearizability this checker exists to certify.
TEST(LinCheck, RecordedCombiningQueueHistoriesAreLinearizable) {
  constexpr std::uint32_t kThreads = 3;
  constexpr int kPushesPerThread = 3;
  for (int round = 0; round < 20; ++round) {
    CombiningQueue<ScqQueue<std::uint64_t>> queue(2, "lin-comb-scq");
    static std::uint64_t arena[kThreads * kPushesPerThread + 1];
    for (std::uint64_t i = 1; i <= kThreads * kPushesPerThread; ++i) {
      arena[i] = i;
    }
    HistoryRecorder recorder(kThreads, 2 * kPushesPerThread);
    std::vector<std::thread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto h = queue.handle();
        for (int i = 0; i < kPushesPerThread; ++i) {
          const std::uint64_t value = t * kPushesPerThread + i + 1;
          const std::uint64_t inv = recorder.begin();
          const bool ok = queue.try_push(h, &arena[value]);
          recorder.end_push(t, inv, value, ok);
          const std::uint64_t inv2 = recorder.begin();
          std::uint64_t* out = queue.try_pop(h);
          recorder.end_pop(t, inv2, out == nullptr ? 0 : *out);
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    LinearizabilityChecker chk(queue.capacity());
    EXPECT_TRUE(chk.check(recorder.collect())) << "round " << round;
  }
}

// Batch histories from a real queue: concurrent try_push_n / try_pop_n calls
// recorded through end_push_n/end_pop_n and certified by the batch-aware
// checker — the end-to-end path the combiner's batch application relies on.
TEST(LinCheck, BatchRecordedCombiningQueueHistoriesAreLinearizable) {
  constexpr std::uint32_t kThreads = 3;
  constexpr int kBatchesPerThread = 2;
  constexpr std::size_t kBatch = 2;
  for (int round = 0; round < 20; ++round) {
    CombiningQueue<CasArrayQueue<std::uint64_t>> queue(4, "lin-comb-cas");
    static std::uint64_t arena[kThreads * kBatchesPerThread * kBatch + 1];
    for (std::uint64_t i = 1; i <= kThreads * kBatchesPerThread * kBatch; ++i) {
      arena[i] = i;
    }
    HistoryRecorder recorder(kThreads, 4 * kBatchesPerThread * kBatch);
    std::vector<std::thread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto h = queue.handle();
        for (int i = 0; i < kBatchesPerThread; ++i) {
          std::uint64_t values[kBatch];
          std::uint64_t* nodes[kBatch];
          for (std::size_t k = 0; k < kBatch; ++k) {
            values[k] = (t * kBatchesPerThread + i) * kBatch + k + 1;
            nodes[k] = &arena[values[k]];
          }
          const std::uint64_t inv = recorder.begin();
          const std::size_t landed = queue.try_push_n(h, nodes, kBatch);
          recorder.end_push_n(t, inv, values, kBatch, landed);
          std::uint64_t* out[kBatch] = {};
          const std::uint64_t inv2 = recorder.begin();
          const std::size_t got = queue.try_pop_n(h, out, kBatch);
          std::uint64_t results[kBatch] = {};
          for (std::size_t k = 0; k < got; ++k) {
            results[k] = *out[k];
          }
          recorder.end_pop_n(t, inv2, results, got, kBatch);
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    LinearizabilityChecker chk(queue.capacity());
    EXPECT_TRUE(chk.check(recorder.collect())) << "round " << round;
  }
}

}  // namespace
