// Tests for Algorithm 2 (Fig. 5): CAS-only queue with simulated LL/SC,
// including registry integration (population-obliviousness).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "evq/core/cas_array_queue.hpp"

namespace {

using namespace evq;

struct Item {
  std::uint64_t id = 0;
};

using Queue = CasArrayQueue<Item>;

TEST(CasArrayQueue, EmptyQueuePopsNull) {
  Queue q(8);
  auto h = q.handle();
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(CasArrayQueue, PushPopSingleItem) {
  Queue q(8);
  auto h = q.handle();
  Item a{1};
  EXPECT_TRUE(q.try_push(h, &a));
  EXPECT_EQ(q.try_pop(h), &a);
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(CasArrayQueue, FifoOrderPreserved) {
  Queue q(16);
  auto h = q.handle();
  Item items[10];
  for (std::uint64_t i = 0; i < 10; ++i) {
    items[i].id = i;
    ASSERT_TRUE(q.try_push(h, &items[i]));
  }
  for (std::uint64_t i = 0; i < 10; ++i) {
    Item* out = q.try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->id, i);
  }
}

TEST(CasArrayQueue, FullQueueRejectsPush) {
  Queue q(4);
  auto h = q.handle();
  Item items[5];
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_push(h, &items[i]));
  }
  EXPECT_FALSE(q.try_push(h, &items[4]));
  ASSERT_NE(q.try_pop(h), nullptr);
  EXPECT_TRUE(q.try_push(h, &items[4]));
}

TEST(CasArrayQueue, WrapAroundManyTimes) {
  Queue q(4);
  auto h = q.handle();
  Item items[3];
  for (std::uint64_t round = 0; round < 1000; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(q.try_push(h, &items[i]));
    }
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(q.try_pop(h), &items[i]);
    }
  }
  EXPECT_EQ(q.head_index(), 3000u);
  EXPECT_EQ(q.tail_index(), 3000u);
}

TEST(CasArrayQueue, SlotsAreCleanAfterQuiescence) {
  // After balanced operations no slot may be left holding a reservation tag.
  Queue q(4);
  auto h = q.handle();
  Item a{1};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.try_push(h, &a));
    ASSERT_EQ(q.try_pop(h), &a);
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(CasArrayQueue, RegistryGrowsWithConcurrentHandlesOnly) {
  Queue q(16);
  {
    auto h1 = q.handle();
    auto h2 = q.handle();
    auto h3 = q.handle();
    EXPECT_EQ(q.registry().claimed_count(), 3u);
  }
  EXPECT_EQ(q.registry().claimed_count(), 0u);
  // Serial handle churn must recycle, not grow (population-oblivious space).
  for (int i = 0; i < 50; ++i) {
    auto h = q.handle();
    Item a{1};
    ASSERT_TRUE(q.try_push(h, &a));
    ASSERT_EQ(q.try_pop(h), &a);
  }
  EXPECT_LE(q.registry().list_length(), 4u);
}

TEST(CasArrayQueue, HandlesAreIndependent) {
  Queue q(8);
  auto h1 = q.handle();
  auto h2 = q.handle();
  Item a{1};
  Item b{2};
  EXPECT_TRUE(q.try_push(h1, &a));
  EXPECT_TRUE(q.try_push(h2, &b));
  EXPECT_EQ(q.try_pop(h2), &a);
  EXPECT_EQ(q.try_pop(h1), &b);
}

TEST(CasArrayQueue, MinimumCapacityIsTwo) {
  Queue q(1);
  EXPECT_EQ(q.capacity(), 2u);
  auto h = q.handle();
  Item a{1};
  Item b{2};
  EXPECT_TRUE(q.try_push(h, &a));
  EXPECT_TRUE(q.try_push(h, &b));
  EXPECT_FALSE(q.try_push(h, &a));
  EXPECT_EQ(q.try_pop(h), &a);
  EXPECT_EQ(q.try_pop(h), &b);
}

TEST(CasArrayQueue, TwoThreadPingPongKeepsOrder) {
  Queue q(4);
  constexpr std::uint64_t kItems = 20000;
  std::vector<Item> items(kItems);
  std::thread producer([&] {
    auto h = q.handle();
    for (std::uint64_t i = 0; i < kItems; ++i) {
      items[i].id = i;
      while (!q.try_push(h, &items[i])) {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t expected = 0;
  bool order_ok = true;
  {
    auto h = q.handle();
    while (expected < kItems) {
      Item* out = q.try_pop(h);
      if (out == nullptr) {
        std::this_thread::yield();
        continue;
      }
      order_ok = order_ok && (out->id == expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(order_ok);
}

TEST(CasArrayQueue, HandleChurnDuringTraffic) {
  // Threads create and destroy handles between operations (worst case for
  // the registry) while traffic flows; conservation is checked by counting.
  Queue q(64);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  std::vector<Item> items(kThreads * kPerThread);
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        Item* item = &items[t * kPerThread + i];
        {
          auto h = q.handle();
          while (!q.try_push(h, item)) {
            std::this_thread::yield();
          }
        }
        {
          auto h = q.handle();
          Item* out = nullptr;
          while ((out = q.try_pop(h)) == nullptr) {
            std::this_thread::yield();
          }
          popped.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(popped.load(), kThreads * kPerThread);
  // Space bound: far fewer variables than total handle constructions.
  EXPECT_LE(q.registry().list_length(), 3u * kThreads);
}

}  // namespace
