// Seal protocol and segmented composition tests.
//
// The typed half pins the seal triple (close/closed/reopen) on every sealable
// ring generation — the four engine instantiations and SCQ — since the
// segmented queue's retire-finality argument rests on "sealed + empty is
// FINAL" holding uniformly. The concrete half exercises the SegmentedQueue
// lifecycle: growth past segment capacity, the burst/drain memory bound
// (seg_alloc − seg_retire ≤ 1 once drained), pool recycling in steady state,
// and the EBR domain variant.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "evq/baselines/shann_queue.hpp"
#include "evq/baselines/tsigas_zhang_queue.hpp"
#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/scq_queue.hpp"
#include "evq/core/segmented_queue.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/llsc/versioned_llsc.hpp"
#include "evq/telemetry/metrics.hpp"
#include "evq/verify/fifo_checkers.hpp"

namespace {

using namespace evq;
using verify::Token;

// ---------------------------------------------------------------------------
// Seal triple across every sealable ring generation
// ---------------------------------------------------------------------------

template <typename Q>
class SealableRingTest : public ::testing::Test {};

using AllSealableRings = ::testing::Types<CasArrayQueue<Token>,
                                          LlscArrayQueue<Token, llsc::PackedLlsc>,
                                          LlscArrayQueue<Token, llsc::VersionedLlsc>,
                                          baselines::ShannQueue<Token>,
                                          baselines::TsigasZhangQueue<Token>,
                                          ScqQueue<Token>>;
TYPED_TEST_SUITE(SealableRingTest, AllSealableRings);

static_assert(SealableRing<CasArrayQueue<Token>>);
static_assert(SealableRing<LlscArrayQueue<Token, llsc::PackedLlsc>>);
static_assert(SealableRing<baselines::ShannQueue<Token>>);
static_assert(SealableRing<baselines::TsigasZhangQueue<Token>>);
static_assert(SealableRing<ScqQueue<Token>>);

TYPED_TEST(SealableRingTest, CloseIsPermanentAndIdempotent) {
  TypeParam q(4);
  auto h = q.handle();
  std::vector<Token> tokens(3);
  for (std::uint64_t i = 0; i < 2; ++i) {
    tokens[i].seq = i;
    ASSERT_TRUE(q.try_push(h, &tokens[i]));
  }
  EXPECT_FALSE(q.closed());
  EXPECT_TRUE(q.close()) << "first close must report that THIS call sealed";
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.close()) << "second close must report already-sealed";
  // The push side is permanently shut, and stays shut across pops.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(q.try_push(h, &tokens[2]));
  }
  // The pop side drains what was in flight, in order.
  EXPECT_EQ(q.try_pop(h)->seq, 0u);
  EXPECT_FALSE(q.try_push(h, &tokens[2])) << "a pop must not reopen a sealed ring";
  EXPECT_EQ(q.try_pop(h)->seq, 1u);
  // Sealed + empty is FINAL: empty reports must be stable.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q.try_pop(h), nullptr);
  }
  EXPECT_TRUE(q.closed());
}

TYPED_TEST(SealableRingTest, CloseOnEmptyRingShutsPushSideImmediately) {
  TypeParam q(4);
  auto h = q.handle();
  EXPECT_TRUE(q.close());
  Token tok;
  EXPECT_FALSE(q.try_push(h, &tok));
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TYPED_TEST(SealableRingTest, ReopenRestoresFullFifoService) {
  TypeParam q(4);
  auto h = q.handle();
  std::vector<Token> tokens(5);
  for (std::uint64_t i = 0; i < tokens.size(); ++i) {
    tokens[i].seq = i;
  }
  ASSERT_TRUE(q.try_push(h, &tokens[0]));
  ASSERT_TRUE(q.close());
  EXPECT_EQ(q.try_pop(h), &tokens[0]);
  EXPECT_EQ(q.try_pop(h), nullptr);

  // Quiescent reopen: the ring must serve a full capacity cycle again, with
  // the full-queue bound intact.
  q.reopen();
  EXPECT_FALSE(q.closed());
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_push(h, &tokens[i])) << "slot " << i << " after reopen";
  }
  EXPECT_FALSE(q.try_push(h, &tokens[4])) << "reopen must not inflate capacity";
  for (std::uint64_t i = 0; i < 4; ++i) {
    Token* out = q.try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->seq, i);
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
}

// ---------------------------------------------------------------------------
// SegmentedQueue lifecycle
// ---------------------------------------------------------------------------

TEST(SegmentedQueue, GrowsByExactSegmentsAndCountsThem) {
  SegmentedQueue<CasArrayQueue<Token>> q(4, "segtest-growth");
  auto h = q.handle();
  std::vector<Token> tokens(10);
  for (std::uint64_t i = 0; i < tokens.size(); ++i) {
    tokens[i].seq = i;
    ASSERT_TRUE(q.try_push(h, &tokens[i]));
  }
  // 10 items over capacity-4 segments: 4 + 4 + 2 = three live segments.
  EXPECT_EQ(q.segment_count(), 3u);
  EXPECT_EQ(q.depth_estimate(), 10u);
  EXPECT_EQ(q.size_estimate(), 10u);
  EXPECT_EQ(q.segment_capacity(), 4u);
  for (std::uint64_t i = 0; i < tokens.size(); ++i) {
    Token* out = q.try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->seq, i);
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
  EXPECT_EQ(q.depth_estimate(), 0u);
  EXPECT_LE(q.segment_count(), 2u) << "drained chain must shrink back";
}

TEST(SegmentedQueue, BurstThenDrainReturnsToBoundedMemory) {
  // The E9 acceptance shape: a 100x burst over one segment's capacity must
  // be absorbed without a single push failure, and after the drain the live
  // chain must be back to <= 2 segments — verified both structurally
  // (segment_count) and through the telemetry ledger (every counted alloc
  // but at most one has a matching retire).
  constexpr std::size_t kSegmentCapacity = 64;
  constexpr std::size_t kBurst = 100 * kSegmentCapacity;
  SegmentedQueue<ScqQueue<Token>> q(kSegmentCapacity, "segtest-burst");
  auto h = q.handle();

  // Steady state first: oscillate below one segment's capacity.
  std::vector<Token> steady(16);
  for (int round = 0; round < 32; ++round) {
    for (auto& tok : steady) {
      ASSERT_TRUE(q.try_push(h, &tok));
    }
    for (std::size_t i = 0; i < steady.size(); ++i) {
      ASSERT_NE(q.try_pop(h), nullptr);
    }
  }

  const telemetry::CounterSnapshot before = q.metrics().snapshot();
  std::vector<Token> burst(kBurst);
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    burst[i].seq = i;
    ASSERT_TRUE(q.try_push(h, &burst[i])) << "burst push " << i << " must not fail";
  }
  EXPECT_GE(q.segment_count(), kBurst / kSegmentCapacity);
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    Token* out = q.try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->seq, i);
  }
  EXPECT_EQ(q.try_pop(h), nullptr);

  const telemetry::CounterSnapshot delta = telemetry::counter_delta(before, q.metrics().snapshot());
#if EVQ_TELEMETRY
  EXPECT_GE(delta[telemetry::Counter::kSegAlloc], kBurst / kSegmentCapacity - 1);
  EXPECT_GE(delta[telemetry::Counter::kSegSeal], delta[telemetry::Counter::kSegAlloc]);
  EXPECT_LE(delta[telemetry::Counter::kSegAlloc] - delta[telemetry::Counter::kSegRetire], 1u)
      << "every appended segment but at most the live tail must have been retired";
#endif
  EXPECT_LE(q.segment_count(), 2u);
}

TEST(SegmentedQueue, SteadyStateRecyclesSegmentsThroughThePool) {
  // HP domain: retired segments reach the free pool via the domain reclaimer,
  // so traffic that keeps crossing a segment boundary stops allocating once
  // the pool is primed.
  SegmentedQueue<CasArrayQueue<Token>> q(4, "segtest-pool");
  auto h = q.handle();
  std::vector<Token> tokens(6);
  for (int round = 0; round < 64; ++round) {
    for (auto& tok : tokens) {
      ASSERT_TRUE(q.try_push(h, &tok));
    }
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      ASSERT_NE(q.try_pop(h), nullptr);
    }
  }
#if EVQ_TELEMETRY
  EXPECT_GT(q.metrics().value(telemetry::Counter::kSegRetire), 0u);
  EXPECT_GT(q.metrics().value(telemetry::Counter::kPoolHit), 0u)
      << "steady-state appends must come from the pool, not the heap";
#endif
  EXPECT_LE(q.segment_count(), 2u);
}

TEST(SegmentedQueue, EbrDomainVariantConservesAcrossSegments) {
  // The epoch-based domain: per-op pin/unpin instead of hazard slots, fresh
  // heap segment per append (kPoolable = false). Same external contract.
  SegmentedQueue<ScqQueue<Token>, EbrSegmentDomain> q(4, "segtest-ebr");
  auto h = q.handle();
  std::vector<Token> tokens(40);
  for (std::uint64_t i = 0; i < tokens.size(); ++i) {
    tokens[i].seq = i;
    ASSERT_TRUE(q.try_push(h, &tokens[i]));
  }
  for (std::uint64_t i = 0; i < tokens.size(); ++i) {
    Token* out = q.try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->seq, i);
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
#if EVQ_TELEMETRY
  EXPECT_EQ(q.metrics().value(telemetry::Counter::kPoolHit), 0u)
      << "the EBR domain frees with delete and must never feed the pool";
#endif
}

TEST(SegmentedQueue, HandleIsMoveOnlyAndStaysUsable) {
  SegmentedQueue<CasArrayQueue<Token>> q(4, "segtest-handle");
  auto h = q.handle();
  Token a;
  ASSERT_TRUE(q.try_push(h, &a));
  auto h2 = std::move(h);
  EXPECT_EQ(q.try_pop(h2), &a);
  EXPECT_EQ(q.try_pop(h2), nullptr);
  h = std::move(h2);
  Token b;
  ASSERT_TRUE(q.try_push(h, &b));
  EXPECT_EQ(q.try_pop(h), &b);
}

}  // namespace
